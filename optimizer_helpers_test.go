package stordep_test

import (
	"time"

	"stordep"
	"stordep/internal/casestudy"
	"stordep/internal/failure"
	"stordep/internal/hierarchy"
	"stordep/internal/opt"
	"stordep/internal/units"
)

// optimizerKnobs exposes the Table 7 moves for root-level benchmarks.
func optimizerKnobs() []opt.Knob {
	weeklyVault := casestudy.VaultPolicy()
	weeklyVault.Primary.AccW = units.Week
	weeklyVault.Primary.HoldW = 12 * time.Hour
	weeklyVault.RetCnt = 156

	fi := casestudy.BackupPolicy()
	fi.Primary.AccW = 48 * time.Hour
	fi.Primary.PropW = 48 * time.Hour
	fi.Secondary = &hierarchy.WindowSet{
		AccW: 24 * time.Hour, PropW: 12 * time.Hour, HoldW: time.Hour,
		Rep: hierarchy.RepPartial,
	}
	fi.CycleCnt = 5

	dailyF := casestudy.BackupPolicy()
	dailyF.Primary.AccW = 24 * time.Hour
	dailyF.Primary.PropW = 12 * time.Hour
	dailyF.RetCnt = 28

	return []opt.Knob{
		opt.PolicyKnob("vaulting",
			[]string{"4-weekly", "weekly"},
			[]hierarchy.Policy{casestudy.VaultPolicy(), weeklyVault}),
		opt.PolicyKnob("backup",
			[]string{"weekly full", "F+I", "daily full"},
			[]hierarchy.Policy{casestudy.BackupPolicy(), fi, dailyF}),
		opt.PiTKnob("split-mirror"),
	}
}

func tuneBaseline(knobs []opt.Knob, scenarios []failure.Scenario) (*stordep.Solution, error) {
	return stordep.Tune(casestudy.Baseline(), knobs, scenarios, stordep.WorstTotalObjective())
}
