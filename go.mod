module stordep

go 1.22
