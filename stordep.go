// Package stordep evaluates the dependability of data storage system
// designs, implementing the modeling framework of Keeton & Merchant,
// "A Framework for Evaluating Storage System Dependability" (DSN 2004).
//
// A design composes data protection techniques — split mirrors, virtual
// snapshots, inter-array mirroring, tape backup, remote vaulting — over a
// fleet of modeled devices. Given a workload and business requirements,
// the framework predicts, for any hypothesized failure scope:
//
//   - normal-mode bandwidth and capacity utilization of every device,
//   - worst-case recovery time (how long until the application runs again),
//   - worst-case recent data loss (how many recent updates are gone),
//   - overall cost: annualized outlays plus outage and loss penalties.
//
// # Quick start
//
//	sys, err := stordep.Baseline().Build()
//	if err != nil { ... }
//	a, err := sys.Assess(stordep.Scenario{Scope: stordep.ScopeSite})
//	fmt.Println(a.RecoveryTime, a.DataLoss, a.Cost.Total())
//
// Custom designs are assembled with NewDesign:
//
//	sys, err := stordep.NewDesign("my-db").
//		Workload(stordep.Cello()).
//		Penalties(50_000, 50_000).
//		Device(stordep.MidrangeArray(), stordep.Placement{Array: "a1", Site: "hq"}).
//		Device(stordep.TapeLibrary(), stordep.Placement{Array: "l1", Site: "hq"}).
//		PrimaryOn(stordep.NameDiskArray).
//		Protect(&stordep.SplitMirror{Array: stordep.NameDiskArray, Pol: stordep.SplitMirrorPolicy()}).
//		Protect(&stordep.Backup{SourceArray: stordep.NameDiskArray, Target: stordep.NameTapeLibrary, Pol: stordep.BackupPolicy()}).
//		Build()
//
// The subpackages under internal/ hold the component models; this package
// re-exports the stable surface.
package stordep

import (
	"time"

	"stordep/internal/casestudy"
	"stordep/internal/core"
	"stordep/internal/cost"
	"stordep/internal/device"
	"stordep/internal/failure"
	"stordep/internal/hierarchy"
	"stordep/internal/protect"
	"stordep/internal/units"
	"stordep/internal/workload"
)

// Core composition types.
type (
	// Design is a complete storage system design.
	Design = core.Design
	// System is a built design ready for assessment.
	System = core.System
	// Assessment is the evaluation under one failure scenario.
	Assessment = core.Assessment
	// Utilization is the normal-mode utilization report.
	Utilization = core.Utilization
	// PlacedDevice binds a device spec to a location.
	PlacedDevice = core.PlacedDevice
	// Facility is a shared recovery facility.
	Facility = core.Facility
)

// Workload types.
type (
	// Workload summarizes the foreground workload (Table 2 of the paper).
	Workload = workload.Workload
	// BatchPoint is one breakpoint of the unique-update-rate curve.
	BatchPoint = workload.BatchPoint
)

// Device types.
type (
	// DeviceSpec describes a storage, interconnect or transport device.
	DeviceSpec = device.Spec
	// CostModel prices a device (fixed / per-GB / per-MBps / per-shipment).
	CostModel = device.CostModel
	// Spare describes a device's spare resources.
	Spare = device.Spare
)

// Hierarchy and policy types.
type (
	// Policy configures one protection level's retrieval-point management.
	Policy = hierarchy.Policy
	// WindowSet groups accumulation/propagation/hold windows.
	WindowSet = hierarchy.WindowSet
	// Chain is the ordered list of protection levels.
	Chain = hierarchy.Chain
)

// Technique types.
type (
	// Technique is a configured data protection technique.
	Technique = protect.Technique
	// Primary is the level-0 copy.
	Primary = protect.Primary
	// SplitMirror maintains split-mirror PiT copies.
	SplitMirror = protect.SplitMirror
	// Snapshot maintains copy-on-write virtual snapshots.
	Snapshot = protect.Snapshot
	// Mirror is inter-array mirroring (sync, async or batched async).
	Mirror = protect.Mirror
	// Backup copies RPs to a backup device in full/incremental cycles.
	Backup = protect.Backup
	// Vaulting ships expiring backups to an off-site vault.
	Vaulting = protect.Vaulting
	// ErasureCode spreads coded fragments across sites (extension).
	ErasureCode = protect.ErasureCode
)

// Failure-scenario types.
type (
	// Scenario is a failure scope plus recovery target.
	Scenario = failure.Scenario
	// Placement locates a device in the physical world.
	Placement = failure.Placement
)

// Cost types.
type (
	// Requirements are the business penalty rates.
	Requirements = cost.Requirements
	// Money is an amount of US dollars.
	Money = units.Money
	// ByteSize is a data size in bytes.
	ByteSize = units.ByteSize
	// Rate is a transfer rate in bytes per second.
	Rate = units.Rate
)

// Failure scopes.
const (
	ScopeObject   = failure.ScopeObject
	ScopeArray    = failure.ScopeArray
	ScopeBuilding = failure.ScopeBuilding
	ScopeSite     = failure.ScopeSite
	ScopeRegion   = failure.ScopeRegion
)

// Mirroring protocols.
const (
	MirrorSync       = protect.MirrorSync
	MirrorAsync      = protect.MirrorAsync
	MirrorAsyncBatch = protect.MirrorAsyncBatch
)

// Retrieval-point representations.
const (
	RepFull    = hierarchy.RepFull
	RepPartial = hierarchy.RepPartial
)

// Size and rate units.
const (
	KB = units.KB
	MB = units.MB
	GB = units.GB
	TB = units.TB

	KBPerSec = units.KBPerSec
	MBPerSec = units.MBPerSec
	GBPerSec = units.GBPerSec

	// Day, Week and Year are the calendar durations of policy windows.
	Day  = units.Day
	Week = units.Week
	Year = units.Year

	// Forever marks unbounded recovery time or loss.
	Forever = units.Forever
)

// Catalog device names.
const (
	NameDiskArray   = device.NameDiskArray
	NameMirrorArray = device.NameMirrorArray
	NameTapeLibrary = device.NameTapeLibrary
	NameTapeVault   = device.NameTapeVault
	NameAirShipment = device.NameAirShipment
	NameWANLinks    = device.NameWANLinks
)

// Build validates a design, applies its normal-mode demands and returns a
// System ready for assessment.
func Build(d *Design) (*System, error) { return core.Build(d) }

// Cello returns the paper's measured workgroup file-server workload.
func Cello() *Workload { return workload.Cello() }

// Workload presets for what-if studies (rates scale with the object size).
func OLTPWorkload(dataCap ByteSize) *Workload       { return workload.OLTP(dataCap) }
func FileServerWorkload(dataCap ByteSize) *Workload { return workload.FileServer(dataCap) }
func WarehouseWorkload(dataCap ByteSize) *Workload  { return workload.Warehouse(dataCap) }

// MergeWorkloads combines workloads that will share one protected object
// (consolidation studies).
func MergeWorkloads(name string, workloads ...*Workload) (*Workload, error) {
	return workload.Merge(name, workloads...)
}

// CaseStudyScenarios returns the paper's three failure scenarios: object
// corruption, array failure and site disaster.
func CaseStudyScenarios() []Scenario { return failure.CaseStudyScenarios() }

// Catalog devices (Table 4 of the paper).
func MidrangeArray() DeviceSpec       { return device.MidrangeArray() }
func TapeLibrary() DeviceSpec         { return device.TapeLibrary() }
func TapeVault() DeviceSpec           { return device.TapeVault() }
func AirShipment() DeviceSpec         { return device.AirShipment() }
func WANLinks(n int) DeviceSpec       { return device.WANLinks(n) }
func RemoteMirrorArray() DeviceSpec   { return device.RemoteMirrorArray() }
func SharedRecoveryArray() DeviceSpec { return device.SharedRecoveryArray() }

// Extended catalog (beyond the paper's Table 4).
func VirtualTapeLibrary() DeviceSpec { return device.VirtualTapeLibrary() }
func GigELinks(n int) DeviceSpec     { return device.GigELinks(n) }
func EconomyArray() DeviceSpec       { return device.EconomyArray() }

// Case-study designs (§4 of the paper).
func Baseline() *DesignBuilder { return wrap(casestudy.Baseline()) }

// WhatIfDesigns returns the paper's Table 7 designs, baseline first.
func WhatIfDesigns() []*Design { return casestudy.WhatIfDesigns() }

// Case-study policies (Table 3).
func SplitMirrorPolicy() Policy      { return casestudy.SplitMirrorPolicy() }
func BackupPolicy() Policy           { return casestudy.BackupPolicy() }
func VaultPolicy() Policy            { return casestudy.VaultPolicy() }
func AsyncBatchMirrorPolicy() Policy { return casestudy.AsyncBatchMirrorPolicy() }

// SimplePolicy builds a single-stream policy: accumulate every accW, hold
// holdW, propagate over propW, retain retCnt RPs for retW, all full
// copies.
func SimplePolicy(accW, propW, holdW time.Duration, retCnt int, retW time.Duration) Policy {
	return Policy{
		Primary: WindowSet{AccW: accW, PropW: propW, HoldW: holdW, Rep: RepFull},
		RetCnt:  retCnt,
		RetW:    retW,
		CopyRep: RepFull,
	}
}

// CyclicPolicy builds a full+incremental policy: the full window set fires
// once per cycle, the incremental set cycleCnt times.
func CyclicPolicy(full, incr WindowSet, cycleCnt, retCnt int, retW time.Duration) Policy {
	if full.Rep == 0 {
		full.Rep = RepFull
	}
	if incr.Rep == 0 {
		incr.Rep = RepPartial
	}
	return Policy{
		Primary:   full,
		Secondary: &incr,
		CycleCnt:  cycleCnt,
		RetCnt:    retCnt,
		RetW:      retW,
		CopyRep:   RepFull,
	}
}

// PerHour converts a dollars-per-hour penalty figure into the framework's
// penalty rate.
func PerHour(dollars float64) units.PenaltyRate { return units.PerHour(dollars) }
