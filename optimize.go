package stordep

import (
	"stordep/internal/opt"
)

// Automated design optimization (the paper's §1 "inner-most loop of an
// automated optimization loop", following Keeton et al., FAST 2004).
type (
	// Knob is one tunable aspect of a design.
	Knob = opt.Knob
	// OptObjective scores a candidate; lower is better.
	OptObjective = opt.Objective
	// Solution is a tuning result: the tuned design, its score and the
	// chosen option per knob.
	Solution = opt.Solution
)

// Tune runs coordinate descent over the knobs from the base design,
// minimizing the objective across the scenarios.
func Tune(base *Design, knobs []Knob, scenarios []Scenario, objective OptObjective) (*Solution, error) {
	return opt.Tune(base, knobs, scenarios, objective)
}

// TuneExhaustive enumerates every knob combination and returns the
// global optimum; use when knobs interact and coordinate descent might
// stall. Enumeration is streaming (O(workers) memory), so the space size
// is limited only by time; opt.ExhaustiveOpts adds budgets and sharding.
func TuneExhaustive(base *Design, knobs []Knob, scenarios []Scenario, objective OptObjective) (*Solution, error) {
	return opt.Exhaustive(base, knobs, scenarios, objective)
}

// CloneDesign deep-copies a design (via its JSON form), so it can be
// mutated without touching the original.
func CloneDesign(d *Design) (*Design, error) { return opt.Clone(d) }

// WorstTotalObjective minimizes the worst-scenario total cost.
func WorstTotalObjective() OptObjective { return opt.WorstTotalObjective() }

// ExpectedObjective minimizes frequency-weighted expected annual cost.
func ExpectedObjective(freqs Frequencies) OptObjective { return opt.ExpectedObjective(freqs) }

// ConstrainedOutlayObjective minimizes outlays among designs meeting the
// RTO/RPO objectives under every scenario.
func ConstrainedOutlayObjective(obj Objectives) OptObjective {
	return opt.ConstrainedOutlayObjective(obj)
}

// Standard knob constructors.
var (
	// PolicyKnob selects among complete policies for one level.
	PolicyKnob = opt.PolicyKnob
	// AccWKnob sweeps a level's accumulation window, keeping retention
	// covered.
	AccWKnob = opt.AccWKnob
	// RetCntKnob sweeps a level's retention count, scaling its window.
	RetCntKnob = opt.RetCntKnob
	// PiTKnob swaps split mirrors for virtual snapshots and back.
	PiTKnob = opt.PiTKnob
	// LinkCountKnob sweeps an interconnect's provisioned link count.
	LinkCountKnob = opt.LinkCountKnob
)
