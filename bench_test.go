// Benchmarks regenerating every table and figure of the paper's
// evaluation (§4). Each benchmark runs the same code path the cmd/paper
// tool uses, reports the framework's throughput on that experiment, and —
// once per run — prints the regenerated artifact so `go test -bench`
// output doubles as an experiment log (see EXPERIMENTS.md for the
// paper-vs-measured comparison).
package stordep_test

import (
	"fmt"
	"testing"
	"time"

	"stordep"
	"stordep/internal/casestudy"
	"stordep/internal/core"
	"stordep/internal/failure"
	"stordep/internal/report"
	"stordep/internal/sim"
	"stordep/internal/trace"
	"stordep/internal/units"
	"stordep/internal/whatif"
	"stordep/internal/workload"
)

// printOnce emits a regenerated artifact a single time per benchmark.
func printOnce(b *testing.B, artifact func() string) {
	b.Helper()
	if b.N > 1 {
		return
	}
	fmt.Println(artifact())
}

// BenchmarkTable2TraceAnalysis regenerates Table 2's measurement path: a
// synthetic cello-like trace is generated and analyzed into the five
// workload parameters (the published cello numbers themselves are inputs;
// the benchmark exercises the analyzer that would produce them from a
// trace).
func BenchmarkTable2TraceAnalysis(b *testing.B) {
	cfg := trace.CelloLike(1, 200)
	cfg.Duration = 12 * time.Hour
	tr, err := trace.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	windows := []time.Duration{time.Minute, time.Hour, 12 * time.Hour}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := trace.Analyze(tr, time.Minute, windows)
		if err != nil {
			b.Fatal(err)
		}
		if a.AvgUpdateRate <= 0 {
			b.Fatal("empty analysis")
		}
	}
	b.StopTimer()
	printOnce(b, func() string { return report.Table2(workload.Cello()) })
}

// BenchmarkTable5Utilization regenerates Table 5: build the baseline and
// compute every device's per-technique normal-mode utilization.
func BenchmarkTable5Utilization(b *testing.B) {
	var u core.Utilization
	for i := 0; i < b.N; i++ {
		sys, err := core.Build(casestudy.Baseline())
		if err != nil {
			b.Fatal(err)
		}
		u = sys.Utilization()
	}
	b.StopTimer()
	printOnce(b, func() string { return report.Table5(u) })
}

// BenchmarkTable6Dependability regenerates Table 6: assess the baseline
// under the three case-study failure scenarios.
func BenchmarkTable6Dependability(b *testing.B) {
	sys, err := core.Build(casestudy.Baseline())
	if err != nil {
		b.Fatal(err)
	}
	scs := failure.CaseStudyScenarios()
	var out []*core.Assessment
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err = sys.AssessAll(scs)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printOnce(b, func() string { return report.Table6(out) })
}

// BenchmarkFigure5Costs regenerates Figure 5: the cost breakdown
// (per-technique outlays plus outage and loss penalties) per scenario.
func BenchmarkFigure5Costs(b *testing.B) {
	sys, err := core.Build(casestudy.Baseline())
	if err != nil {
		b.Fatal(err)
	}
	scs := failure.CaseStudyScenarios()
	var out []*core.Assessment
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err = sys.AssessAll(scs)
		if err != nil {
			b.Fatal(err)
		}
		for _, a := range out {
			if a.Cost.Total() <= 0 {
				b.Fatal("empty cost")
			}
		}
	}
	b.StopTimer()
	printOnce(b, func() string { return report.Figure5(out) })
}

// BenchmarkTable7WhatIf regenerates Table 7: evaluate all seven what-if
// designs under array failure and site disaster.
func BenchmarkTable7WhatIf(b *testing.B) {
	scs := []failure.Scenario{
		{Scope: failure.ScopeArray},
		{Scope: failure.ScopeSite},
	}
	var rows []report.WhatIfRow
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, d := range casestudy.WhatIfDesigns() {
			sys, err := core.Build(d)
			if err != nil {
				b.Fatal(err)
			}
			arr, err := sys.Assess(scs[0])
			if err != nil {
				b.Fatal(err)
			}
			site, err := sys.Assess(scs[1])
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, report.WhatIfRow{Design: d.Name, Array: arr, Site: site})
		}
	}
	b.StopTimer()
	printOnce(b, func() string { return report.Table7(rows) })
}

// BenchmarkFigure3RangeMath regenerates Figure 3's guaranteed-RP-range
// math across the baseline hierarchy.
func BenchmarkFigure3RangeMath(b *testing.B) {
	sys, err := core.Build(casestudy.Baseline())
	if err != nil {
		b.Fatal(err)
	}
	chain := sys.Chain()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 1; j <= len(chain); j++ {
			if chain.GuaranteedRange(j).Empty() {
				b.Fatal("unexpected empty range")
			}
		}
	}
	b.StopTimer()
	printOnce(b, func() string { return report.Figure3(chain) })
}

// BenchmarkFigure4Recovery regenerates Figure 4's recovery-time
// dependency resolution for the site-disaster path (vault -> shipment ->
// library -> array with overlapped provisioning).
func BenchmarkFigure4Recovery(b *testing.B) {
	sys, err := core.Build(casestudy.Baseline())
	if err != nil {
		b.Fatal(err)
	}
	sc := failure.Scenario{Scope: failure.ScopeSite}
	var a *core.Assessment
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err = sys.Assess(sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printOnce(b, func() string { return report.Figure4(a) })
}

// BenchmarkSimulationValidation runs the discrete-event cross-validation
// of the analytic loss bounds (the paper's proposed validation, measured
// here): 10 weeks of RP propagation plus a thousand-instant loss study.
func BenchmarkSimulationValidation(b *testing.B) {
	chain := casestudy.Baseline().Chain()
	for i := 0; i < b.N; i++ {
		s, err := sim.New(chain)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Run(20 * units.Week); err != nil {
			b.Fatal(err)
		}
		st, err := s.LossStudy([]int{2, 3}, 0, 12*units.Week, 19*units.Week, time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		if st.Max > 217*time.Hour {
			b.Fatalf("bound violated: %v", st.Max)
		}
	}
}

// BenchmarkWhatIfSearch measures the automated-design inner loop the
// framework is positioned to serve: a 20-candidate link sweep ranked and
// queried for the cheapest design meeting an RTO/RPO.
func BenchmarkWhatIfSearch(b *testing.B) {
	counts := make([]int, 20)
	for i := range counts {
		counts[i] = i + 1
	}
	scs := []failure.Scenario{{Scope: failure.ScopeArray}, {Scope: failure.ScopeSite}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		designs := whatif.Sweep(counts, casestudy.AsyncBMirror)
		results, err := whatif.Evaluate(designs, scs)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := whatif.Cheapest(results, whatif.Objectives{
			RTO: 12 * time.Hour, RPO: time.Hour,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEnd measures one full public-API evaluation: build the
// baseline, assess all scenarios, total the costs.
func BenchmarkEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := stordep.Baseline().Build()
		if err != nil {
			b.Fatal(err)
		}
		for _, sc := range stordep.CaseStudyScenarios() {
			a, err := sys.Assess(sc)
			if err != nil {
				b.Fatal(err)
			}
			_ = a.Cost.Total()
		}
	}
}
