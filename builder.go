package stordep

import (
	"time"

	"stordep/internal/core"
	"stordep/internal/cost"
	"stordep/internal/protect"
)

// DesignBuilder assembles a Design fluently. Errors surface at Build, so
// chains stay clean:
//
//	sys, err := stordep.NewDesign("web-tier").
//		Workload(stordep.Cello()).
//		Penalties(50_000, 50_000).
//		Device(stordep.MidrangeArray(), stordep.Placement{Array: "a1", Site: "hq"}).
//		PrimaryOn(stordep.NameDiskArray).
//		Build()
type DesignBuilder struct {
	d *core.Design
}

// NewDesign starts a builder for a named design.
func NewDesign(name string) *DesignBuilder {
	return &DesignBuilder{d: &core.Design{Name: name}}
}

// wrap adopts an existing design (case-study builders).
func wrap(d *core.Design) *DesignBuilder { return &DesignBuilder{d: d} }

// Workload sets the foreground workload.
func (b *DesignBuilder) Workload(w *Workload) *DesignBuilder {
	b.d.Workload = w
	return b
}

// Penalties sets the business requirements in dollars per hour of outage
// and per hour of lost updates.
func (b *DesignBuilder) Penalties(unavailPerHour, lossPerHour float64) *DesignBuilder {
	b.d.Requirements = cost.Requirements{
		UnavailPenaltyRate: PerHour(unavailPerHour),
		LossPenaltyRate:    PerHour(lossPerHour),
	}
	return b
}

// Device adds a device at a placement. The spare, if the spec has one, is
// assumed co-located at the device's site in separate hardware.
func (b *DesignBuilder) Device(spec DeviceSpec, at Placement) *DesignBuilder {
	b.d.Devices = append(b.d.Devices, core.PlacedDevice{Spec: spec, Placement: at})
	return b
}

// DeviceWithSpare adds a device whose spare lives at an explicit placement
// (e.g. a hot standby array in another building).
func (b *DesignBuilder) DeviceWithSpare(spec DeviceSpec, at, spareAt Placement) *DesignBuilder {
	b.d.Devices = append(b.d.Devices, core.PlacedDevice{
		Spec:           spec,
		Placement:      at,
		SparePlacement: spareAt,
	})
	return b
}

// PrimaryOn declares which array holds the primary copy (level 0).
func (b *DesignBuilder) PrimaryOn(arrayName string) *DesignBuilder {
	b.d.Primary = &protect.Primary{Array: arrayName}
	return b
}

// Protect appends a data protection technique as the next hierarchy level.
func (b *DesignBuilder) Protect(t Technique) *DesignBuilder {
	b.d.Levels = append(b.d.Levels, t)
	return b
}

// RecoveryFacility configures the shared recovery facility used when a
// device and its spare both fall inside a failure's scope.
func (b *DesignBuilder) RecoveryFacility(at Placement, provision time.Duration, costFactor float64) *DesignBuilder {
	b.d.Facility = &core.Facility{
		Placement:     at,
		ProvisionTime: provision,
		CostFactor:    costFactor,
	}
	return b
}

// Design returns the assembled design without building it (for JSON
// export or further mutation).
func (b *DesignBuilder) Design() *Design { return b.d }

// Build validates the design and returns an assessable System.
func (b *DesignBuilder) Build() (*System, error) { return core.Build(b.d) }
