// Archival scenario: a media company keeps a 20 TB asset archive. The
// update stream is batch loads (bursty, append-mostly) and the business
// tolerates a day of recovery but wants regional-disaster durability for
// decades of footage.
//
// The example compares two protection philosophies across the framework's
// failure scopes, including a regional disaster the paper's tape designs
// never face:
//
//  1. Classic: daily backups to a virtual tape library + weekly vaulting.
//  2. Extension: a 5-of-3 wide-area erasure code over economy arrays in
//     five regions (1.67x storage instead of full copies), disseminated
//     over GigE links — loss drops from days to the dissemination window
//     at every failure scope.
package main

import (
	"fmt"
	"log"
	"time"

	"stordep"
	"stordep/internal/workload"
)

func archive() *stordep.Workload { return workload.Warehouse(20 * stordep.TB) }

var hq = stordep.Placement{Array: "hq-arr", Building: "dc", Site: "hq", Region: "west"}

// primaryArray is a 256 TB economy array holding the archive, with a
// dedicated hot spare (the catalog default has none).
func primaryArray() stordep.DeviceSpec {
	spec := stordep.EconomyArray()
	spec.Name = "hq-archive"
	spec.Spare = stordep.Spare{Kind: 2 /* dedicated */, ProvisionTime: 5 * time.Minute, Discount: 1}
	return spec
}

func requirements() *stordep.DesignBuilder {
	return stordep.NewDesign("").
		Workload(archive()).
		Penalties(20_000, 20_000).
		RecoveryFacility(stordep.Placement{Site: "rec", Region: "rec-region"}, 9*time.Hour, 0.2)
}

// classic: nightly backup to a VTL, weekly vault shipments.
func classic() *stordep.Design {
	d := requirements().
		Device(primaryArray(), hq).
		Device(stordep.VirtualTapeLibrary(), stordep.Placement{Array: "vtl", Building: "dc", Site: "hq", Region: "west"}).
		Device(stordep.TapeVault(), stordep.Placement{Array: "vault", Site: "vault-city", Region: "east"}).
		Device(stordep.AirShipment(), stordep.Placement{}).
		PrimaryOn("hq-archive").
		Protect(&stordep.Backup{
			SourceArray: "hq-archive",
			Target:      "virtual-tape-library",
			Pol:         stordep.SimplePolicy(24*time.Hour, 20*time.Hour, time.Hour, 3, 3*stordep.Day),
		}).
		Protect(&stordep.Vaulting{
			BackupDevice: "virtual-tape-library",
			Vault:        stordep.NameTapeVault,
			Transport:    stordep.NameAirShipment,
			Pol:          stordep.SimplePolicy(stordep.Week, 24*time.Hour, 3*stordep.Day, 52, stordep.Year),
			BackupRetW:   3 * stordep.Day,
		}).
		Design()
	d.Name = "daily VTL backup + weekly vault"
	return d
}

// erasure: 5-of-3 fragments on economy arrays in five regions.
func erasure() *stordep.Design {
	b := requirements().
		Device(primaryArray(), hq).
		Device(stordep.GigELinks(2), stordep.Placement{})
	regions := []string{"central", "east", "north", "south", "overseas"}
	sites := make([]string, len(regions))
	for i, region := range regions {
		spec := stordep.EconomyArray()
		spec.Name = fmt.Sprintf("fragment-%s", region)
		sites[i] = spec.Name
		b.Device(spec, stordep.Placement{
			Array: spec.Name, Building: "colo", Site: "colo-" + region, Region: region,
		})
	}
	d := b.PrimaryOn("hq-archive").
		Protect(&stordep.ErasureCode{
			Fragments: 5,
			Threshold: 3,
			Sites:     sites,
			Links:     "gige-links",
			Pol:       stordep.SimplePolicy(time.Hour, time.Hour, 0, 2, 2*time.Hour),
		}).
		Design()
	d.Name = "5-of-3 erasure code, five regions"
	return d
}

func main() {
	log.SetFlags(0)

	scenarios := []stordep.Scenario{
		{Name: "array", Scope: stordep.ScopeArray},
		{Name: "site", Scope: stordep.ScopeSite},
		{Name: "region", Scope: stordep.ScopeRegion},
	}
	for _, d := range []*stordep.Design{classic(), erasure()} {
		sys, err := stordep.Build(d)
		if err != nil {
			log.Fatalf("%s: %v", d.Name, err)
		}
		fmt.Printf("%s (outlays %v/yr)\n", d.Name, sys.Outlays().Total())
		for _, sc := range scenarios {
			a, err := sys.Assess(sc)
			if err != nil {
				log.Fatal(err)
			}
			if a.WholeObjectLost {
				fmt.Printf("  %-7s ARCHIVE LOST\n", sc.DisplayName()+":")
				continue
			}
			fmt.Printf("  %-7s recover from %-22s RT %-10v loss %v\n",
				sc.DisplayName()+":", a.Plan.SourceName,
				a.RecoveryTime.Round(time.Minute), a.DataLoss.Round(time.Minute))
		}
		fmt.Println()
	}
	fmt.Println("Both survive a regional disaster (the vault is cross-region), but the")
	fmt.Println("tape design loses up to 12 days of loads where the hourly erasure-coded")
	fmt.Println("dissemination loses two hours — at a 1.67x storage stretch instead of")
	fmt.Println("the 50+ full copies the vault accumulates.")
}
