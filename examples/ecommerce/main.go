// E-commerce scenario: an online retailer runs a 4 TB order database with
// strict business requirements — every hour of downtime costs $250,000
// (the paper's §1 motivation: a quarter of surveyed businesses put outage
// costs above $250k/hr) and every hour of lost orders costs $400,000.
//
// The operator wants the cheapest design whose worst case meets:
//
//	RTO <= 4 hours, RPO <= 15 minutes for an array failure, and
//	RTO <= 12 hours, RPO <= 15 minutes for a site disaster.
//
// Tape-era designs cannot hit a 15-minute RPO; the example explores the
// candidate family — baseline tape protection, snapshots + daily fulls,
// and inter-array mirroring at several link counts — and reports what
// each achieves, then picks the cheapest conforming design.
package main

import (
	"fmt"
	"log"
	"time"

	"stordep"
)

// orderDB describes the retailer's workload: a 4 TB database with a heavy
// update stream that coalesces strongly (orders update hot rows).
func orderDB() *stordep.Workload {
	return &stordep.Workload{
		Name:          "order-db",
		DataCap:       4 * stordep.TB,
		AvgAccessRate: 12 * stordep.MBPerSec,
		AvgUpdateRate: 4 * stordep.MBPerSec,
		BurstMult:     6,
		BatchCurve: []stordep.BatchPoint{
			{Window: time.Minute, Rate: 3.5 * stordep.MBPerSec},
			{Window: time.Hour, Rate: 2 * stordep.MBPerSec},
			{Window: 24 * time.Hour, Rate: 1 * stordep.MBPerSec},
			{Window: stordep.Week, Rate: 0.8 * stordep.MBPerSec},
		},
	}
}

// Placements for the retailer's two data centers and a vault service.
var (
	hqArray  = stordep.Placement{Array: "hq-array", Building: "dc1", Site: "hq", Region: "east"}
	hqTapes  = stordep.Placement{Array: "hq-tapes", Building: "dc1", Site: "hq", Region: "east"}
	drArray  = stordep.Placement{Array: "dr-array", Building: "dc2", Site: "dr-site", Region: "central"}
	vaultLoc = stordep.Placement{Array: "vault", Building: "v1", Site: "vault-city", Region: "west"}
	drSite   = stordep.Placement{Site: "dr-site", Region: "central"}
)

// base starts every candidate with the workload, penalties and recovery
// facility shared across designs.
func base(name string) *stordep.DesignBuilder {
	return stordep.NewDesign(name).
		Workload(orderDB()).
		Penalties(250_000, 400_000).
		RecoveryFacility(drSite, 9*time.Hour, 0.2)
}

// tapeDesign is classic nightly protection: snapshots for fast object
// rollback, daily full backups, weekly vaulting.
func tapeDesign() *stordep.Design {
	return base("snapshots + daily fulls + vault").
		Device(stordep.MidrangeArray(), hqArray).
		Device(stordep.TapeLibrary(), hqTapes).
		Device(stordep.TapeVault(), vaultLoc).
		Device(stordep.AirShipment(), stordep.Placement{}).
		PrimaryOn(stordep.NameDiskArray).
		Protect(&stordep.Snapshot{
			Array: stordep.NameDiskArray,
			Pol:   stordep.SimplePolicy(6*time.Hour, 0, 0, 4, stordep.Day),
		}).
		Protect(&stordep.Backup{
			SourceArray: stordep.NameDiskArray,
			Target:      stordep.NameTapeLibrary,
			Pol:         stordep.SimplePolicy(24*time.Hour, 8*time.Hour, time.Hour, 14, 2*stordep.Week),
		}).
		Protect(&stordep.Vaulting{
			BackupDevice: stordep.NameTapeLibrary,
			Vault:        stordep.NameTapeVault,
			Transport:    stordep.NameAirShipment,
			Pol:          stordep.SimplePolicy(stordep.Week, 24*time.Hour, 12*time.Hour, 52, stordep.Year),
			BackupRetW:   2 * stordep.Week,
		}).
		Design()
}

// mirrorDesign replicates to the DR site with one-minute batches over n
// OC-3 links, keeping snapshots for object rollback.
func mirrorDesign(links int) *stordep.Design {
	return base(fmt.Sprintf("snapshots + asyncB mirror, %d links", links)).
		Device(stordep.MidrangeArray(), hqArray).
		Device(stordep.RemoteMirrorArray(), drArray).
		Device(stordep.WANLinks(links), stordep.Placement{}).
		PrimaryOn(stordep.NameDiskArray).
		Protect(&stordep.Snapshot{
			Array: stordep.NameDiskArray,
			Pol:   stordep.SimplePolicy(6*time.Hour, 0, 0, 4, stordep.Day),
		}).
		Protect(&stordep.Mirror{
			Mode:      stordep.MirrorAsyncBatch,
			DestArray: stordep.NameMirrorArray,
			Links:     stordep.NameWANLinks,
			Pol:       stordep.AsyncBatchMirrorPolicy(),
		}).
		Design()
}

func main() {
	log.SetFlags(0)

	candidates := []*stordep.Design{tapeDesign()}
	for _, links := range []int{1, 2, 4, 8, 16} {
		candidates = append(candidates, mirrorDesign(links))
	}

	scenarios := []stordep.Scenario{
		{Name: "array failure", Scope: stordep.ScopeArray},
		{Name: "site disaster", Scope: stordep.ScopeSite},
	}
	objectives := map[string]struct{ rto, rpo time.Duration }{
		"array failure": {4 * time.Hour, 15 * time.Minute},
		"site disaster": {12 * time.Hour, 15 * time.Minute},
	}

	type verdict struct {
		design  *stordep.Design
		outlays stordep.Money
		ok      bool
	}
	var best *verdict

	for _, d := range candidates {
		sys, err := stordep.Build(d)
		if err != nil {
			log.Fatalf("%s: %v", d.Name, err)
		}
		fmt.Printf("%s (outlays %v/yr)\n", d.Name, sys.Outlays().Total())
		meets := true
		for _, sc := range scenarios {
			a, err := sys.Assess(sc)
			if err != nil {
				log.Fatal(err)
			}
			obj := objectives[sc.DisplayName()]
			ok := !a.WholeObjectLost && a.RecoveryTime <= obj.rto && a.DataLoss <= obj.rpo
			meets = meets && ok
			status := "meets"
			if !ok {
				status = "MISSES"
			}
			fmt.Printf("  %-13s RT %-9v DL %-9v -> %s RTO %v / RPO %v\n",
				sc.DisplayName()+":", a.RecoveryTime.Round(time.Minute),
				a.DataLoss.Round(time.Second), status, obj.rto, obj.rpo)
		}
		fmt.Println()
		if meets {
			v := verdict{design: d, outlays: sys.Outlays().Total(), ok: true}
			if best == nil || v.outlays < best.outlays {
				best = &v
			}
		}
	}

	if best == nil {
		fmt.Println("No candidate meets the objectives; relax the RPO or add links.")
		return
	}
	fmt.Printf("Cheapest conforming design: %s at %v/yr\n", best.design.Name, best.outlays)
}
