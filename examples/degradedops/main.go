// Degraded operations: the tape library's robot broke on Friday and the
// vendor offers two repair contracts — standard (two weeks) or expedited
// (two days, $40k extra). Is the expedite worth it?
//
// The framework answers with the degraded-mode model (§5 of the paper):
// while backups are down, every day adds a day to the worst-case loss of
// any failure that must recover from tape. Weighting by failure
// frequencies turns that exposure into expected dollars per repair
// option, plus a tornado chart showing which estimate the decision
// hinges on.
package main

import (
	"fmt"
	"log"
	"time"

	"stordep"
	"stordep/internal/report"
	"stordep/internal/units"
)

func main() {
	log.SetFlags(0)

	design := stordep.WhatIfDesigns()[0] // the paper's baseline
	arrayFailure := stordep.Scenario{Scope: stordep.ScopeArray}

	// Exposure while the backup technique is down.
	outages := []time.Duration{2 * stordep.Day, stordep.Week, 2 * stordep.Week}
	rows, err := stordep.DegradedStudy(design, arrayFailure, outages)
	if err != nil {
		log.Fatal(err)
	}
	var backupRows []stordep.DegradedOutcome
	for _, r := range rows {
		if r.Level == "backup" {
			backupRows = append(backupRows, r)
		}
	}
	fmt.Println(report.DegradedTable("array", backupRows))

	// Expected cost of each repair option: the extra loss penalty only
	// bites if an array failure actually strikes during (or right after)
	// the outage; weight by the array failure rate (once every three
	// years) times the at-risk window.
	freqPerYear := stordep.TypicalFrequencies()[stordep.ScopeArray]
	fmt.Printf("Array failures strike %.2fx/year; expected extra penalty if one lands at the end of the outage:\n", freqPerYear)
	for _, r := range backupRows {
		atRisk := r.Outage
		probDuring := freqPerYear * float64(atRisk) / float64(units.Year)
		expected := stordep.Money(probDuring) * r.ExtraPenalty
		fmt.Printf("  robot down %-4s worst extra penalty %-8v expected %v\n",
			units.FormatDuration(r.Outage)+":", r.ExtraPenalty, expected)
	}
	twoDay, twoWeek := backupRows[0], backupRows[2]
	expediteValue := stordep.Money(freqPerYear/float64(units.Year)) *
		(stordep.Money(float64(twoWeek.Outage))*twoWeek.ExtraPenalty -
			stordep.Money(float64(twoDay.Outage))*twoDay.ExtraPenalty)
	fmt.Printf("\nExpected value of expediting (2wk -> 2d): %v", expediteValue)
	if expediteValue > 40_000 {
		fmt.Println(" -> pay the $40k expedite fee.")
	} else {
		fmt.Println(" -> the $40k expedite fee is not justified on expectation;")
		fmt.Println("   but note the worst case above if the board is risk-averse.")
	}

	// Which estimate does the conclusion hinge on?
	sens, err := stordep.SensitivityStudy(design, arrayFailure, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSensitivity of the array-failure total to ±50% in each input:")
	for _, r := range sens {
		fmt.Printf("  %-28s %v .. %v (spread %v)\n", r.Parameter, r.Low, r.High, r.Spread())
	}
}
