// Quickstart: evaluate the paper's baseline design — split mirroring,
// weekly tape backup and monthly vaulting protecting a workgroup file
// server — under the three case-study failure scenarios, and print the
// four output metrics the framework produces for each.
package main

import (
	"fmt"
	"log"

	"stordep"
)

func main() {
	log.SetFlags(0)

	// Build the case-study baseline (Tables 2-4 of the paper).
	sys, err := stordep.Baseline().Build()
	if err != nil {
		log.Fatal(err)
	}

	// Normal-mode utilization is scenario-independent: the design must
	// carry its own protection workload.
	u := sys.Utilization()
	fmt.Printf("Normal mode: %.1f%% bandwidth (%s), %.1f%% capacity (%s)\n\n",
		u.BW*100, u.BWDevice, u.Cap*100, u.CapDevice)

	// Assess a corrupted object, an array failure and a site disaster.
	for _, sc := range stordep.CaseStudyScenarios() {
		a, err := sys.Assess(sc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s failure:\n", sc.DisplayName())
		fmt.Printf("  recover from:     %s\n", a.Plan.SourceName)
		fmt.Printf("  recovery time:    %v\n", a.RecoveryTime)
		fmt.Printf("  recent data loss: %v\n", a.DataLoss)
		fmt.Printf("  overall cost:     %v (outlays %v + penalties %v)\n\n",
			a.Cost.Total(), a.Cost.Outlays.Total(), a.Cost.Penalties.Total())
	}
}
