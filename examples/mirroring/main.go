// Mirroring economics: sweep the number of WAN links provisioned for
// batched asynchronous mirroring and chart how recovery time, penalties
// and total cost move — reproducing the "ironic" conclusion of the
// paper's Table 7: at $50k/hr penalties, a thin pipe with a day-long
// recovery beats a fat pipe, because links cost more per year than the
// outage they avoid.
//
// The example also contrasts the three mirroring protocols' link demand
// (sync must carry the burst peak; async the average; batched async only
// the coalesced unique-update rate).
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"stordep"
	"stordep/internal/report"
)

func main() {
	log.SetFlags(0)

	w := stordep.Cello()
	fmt.Println("Link bandwidth each protocol must sustain for the cello workload:")
	pol := stordep.AsyncBatchMirrorPolicy()
	for _, mode := range []stordep.Mirror{
		{Mode: stordep.MirrorSync, DestArray: "d", Links: "l", Pol: pol},
		{Mode: stordep.MirrorAsync, DestArray: "d", Links: "l", Pol: pol},
		{Mode: stordep.MirrorAsyncBatch, DestArray: "d", Links: "l", Pol: pol},
	} {
		fmt.Printf("  %-12s %v\n", mode.Mode, mode.LinkRate(w))
	}
	fmt.Println()

	scenario := stordep.Scenario{Scope: stordep.ScopeSite}
	tbl := report.NewTable(
		"AsyncB mirroring vs provisioned OC-3 links (site disaster, $50k/hr penalties)",
		"Links", "Outlays/yr", "Recovery time", "Penalties", "Total cost")

	type row struct {
		links int
		total stordep.Money
	}
	var best row
	for _, links := range []int{1, 2, 3, 4, 6, 8, 10, 16} {
		sys, err := stordep.Build(mirrorDesign(links))
		if err != nil {
			log.Fatal(err)
		}
		a, err := sys.Assess(scenario)
		if err != nil {
			log.Fatal(err)
		}
		total := a.Cost.Total()
		tbl.AddRow(
			fmt.Sprintf("%d", links),
			a.Cost.Outlays.Total().String(),
			a.RecoveryTime.Round(time.Minute).String(),
			a.Cost.Penalties.Total().String(),
			total.String(),
		)
		if best.links == 0 || total < best.total {
			best = row{links: links, total: total}
		}
	}
	fmt.Println(tbl.String())
	fmt.Printf("Cheapest overall: %d link(s) at %v — penalties never justify a fat pipe here.\n",
		best.links, best.total)
	fmt.Println(strings.Repeat("-", 72))
	fmt.Println("Raise the outage penalty to $2M/hr and the answer flips:")

	expensive := mirrorDesign(1)
	expensive.Requirements = stordep.Requirements{
		UnavailPenaltyRate: stordep.PerHour(2_000_000),
		LossPenaltyRate:    stordep.PerHour(2_000_000),
	}
	cheapSys, err := stordep.Build(expensive)
	if err != nil {
		log.Fatal(err)
	}
	one, err := cheapSys.Assess(scenario)
	if err != nil {
		log.Fatal(err)
	}
	big := mirrorDesign(10)
	big.Requirements = expensive.Requirements
	bigSys, err := stordep.Build(big)
	if err != nil {
		log.Fatal(err)
	}
	ten, err := bigSys.Assess(scenario)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  1 link:   total %v (RT %v)\n", one.Cost.Total(), one.RecoveryTime.Round(time.Minute))
	fmt.Printf("  10 links: total %v (RT %v)\n", ten.Cost.Total(), ten.RecoveryTime.Round(time.Minute))
	if ten.Cost.Total() < one.Cost.Total() {
		fmt.Println("  -> at $2M/hr, the fat pipe wins.")
	}
}

// mirrorDesign is the paper's asyncB configuration with n links.
func mirrorDesign(links int) *stordep.Design {
	ds := stordep.WhatIfDesigns()
	_ = ds // the case-study family fixes 1 and 10 links; build a custom n
	return stordep.NewDesign(fmt.Sprintf("asyncB %d links", links)).
		Workload(stordep.Cello()).
		Penalties(50_000, 50_000).
		Device(stordep.MidrangeArray(), stordep.Placement{Array: "arr-primary", Building: "b1", Site: "primary", Region: "west"}).
		Device(stordep.RemoteMirrorArray(), stordep.Placement{Array: "arr-mirror", Building: "m1", Site: "mirror", Region: "central"}).
		Device(stordep.WANLinks(links), stordep.Placement{}).
		PrimaryOn(stordep.NameDiskArray).
		Protect(&stordep.Mirror{
			Mode:      stordep.MirrorAsyncBatch,
			DestArray: stordep.NameMirrorArray,
			Links:     stordep.NameWANLinks,
			Pol:       stordep.AsyncBatchMirrorPolicy(),
		}).
		RecoveryFacility(stordep.Placement{Site: "recovery", Region: "east"}, 9*time.Hour, 0.2).
		Design()
}
