// Multi-object service: a retail platform stores three data objects on a
// shared fleet — a small product catalog, a session store, and the order
// database — with recovery dependencies: orders cannot come back before
// the catalog, and the storefront (sessions) needs both. The example
// shows the §3.1.1 extension in action: demands aggregate on shared
// devices, and the service-level recovery time is the critical path
// through the dependency DAG, not any single object's restore.
package main

import (
	"fmt"
	"log"
	"time"

	"stordep"
)

func smallWorkload(name string, gb float64, updateKBs float64) *stordep.Workload {
	return &stordep.Workload{
		Name:          name,
		DataCap:       stordep.ByteSize(gb) * stordep.GB,
		AvgAccessRate: 4 * stordep.Rate(updateKBs) * stordep.KBPerSec,
		AvgUpdateRate: stordep.Rate(updateKBs) * stordep.KBPerSec,
		BurstMult:     5,
		BatchCurve: []stordep.BatchPoint{
			{Window: time.Minute, Rate: stordep.Rate(updateKBs) * 0.9 * stordep.KBPerSec},
			{Window: 12 * time.Hour, Rate: stordep.Rate(updateKBs) * 0.4 * stordep.KBPerSec},
		},
	}
}

func main() {
	log.SetFlags(0)

	hq := stordep.Placement{Array: "arr-1", Building: "dc1", Site: "hq", Region: "west"}
	tapes := stordep.Placement{Array: "lib-1", Building: "dc1", Site: "hq", Region: "west"}
	vault := stordep.Placement{Array: "vault", Site: "vault-city", Region: "east"}

	mirrors := func(name string) stordep.Technique {
		return &stordep.SplitMirror{
			InstanceName: name,
			Array:        stordep.NameDiskArray,
			Pol:          stordep.SimplePolicy(6*time.Hour, 0, 0, 4, stordep.Day),
		}
	}
	backup := func(name string) stordep.Technique {
		return &stordep.Backup{
			InstanceName: name,
			SourceArray:  stordep.NameDiskArray,
			Target:       stordep.NameTapeLibrary,
			Pol:          stordep.SimplePolicy(24*time.Hour, 8*time.Hour, time.Hour, 14, 2*stordep.Week),
		}
	}

	md := &stordep.MultiDesign{
		Name: "retail-platform",
		Requirements: stordep.Requirements{
			UnavailPenaltyRate: stordep.PerHour(100_000),
			LossPenaltyRate:    stordep.PerHour(100_000),
		},
		Devices: []stordep.PlacedDevice{
			{Spec: stordep.MidrangeArray(), Placement: hq},
			{Spec: stordep.TapeLibrary(), Placement: tapes},
			{Spec: stordep.TapeVault(), Placement: vault},
			{Spec: stordep.AirShipment()},
		},
		Facility: &stordep.Facility{
			Placement:     stordep.Placement{Site: "dr-site", Region: "central"},
			ProvisionTime: 9 * time.Hour,
			CostFactor:    0.2,
		},
		Objects: []stordep.ObjectSpec{
			{
				Name:     "catalog",
				Workload: smallWorkload("catalog", 80, 50),
				Primary:  &stordep.Primary{Array: stordep.NameDiskArray},
				Levels:   []stordep.Technique{mirrors("catalog-mirror"), backup("catalog-backup")},
			},
			{
				Name:      "orders",
				Workload:  smallWorkload("orders", 900, 600),
				Primary:   &stordep.Primary{Array: stordep.NameDiskArray},
				DependsOn: []string{"catalog"},
				Levels:    []stordep.Technique{mirrors("orders-mirror"), backup("orders-backup")},
			},
			{
				Name:      "sessions",
				Workload:  smallWorkload("sessions", 200, 800),
				Primary:   &stordep.Primary{Array: stordep.NameDiskArray},
				DependsOn: []string{"catalog", "orders"},
				Levels:    []stordep.Technique{mirrors("sessions-mirror"), backup("sessions-backup")},
			},
		},
	}

	ms, err := stordep.BuildMulti(md)
	if err != nil {
		log.Fatal(err)
	}
	u := ms.Utilization()
	fmt.Printf("Shared fleet: %.1f%% bandwidth (%s), %.1f%% capacity (%s); outlays %v/yr\n\n",
		u.BW*100, u.BWDevice, u.Cap*100, u.CapDevice, ms.Outlays().Total())

	sa, err := ms.Assess(stordep.Scenario{Scope: stordep.ScopeArray})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Array failure, per object (own restore vs dependency-gated):")
	for _, oa := range sa.Objects {
		fmt.Printf("  %-9s from %-14s own RT %-9v effective RT %-9v loss %v\n",
			oa.Object, oa.Plan.SourceName,
			oa.RecoveryTime.Round(time.Minute), oa.EffectiveRT.Round(time.Minute),
			oa.DataLoss)
	}
	fmt.Printf("\nService back online after %v (critical path: catalog -> orders -> sessions)\n",
		sa.RecoveryTime.Round(time.Minute))
	fmt.Printf("Service-level loss %v; overall cost %v\n", sa.DataLoss, sa.Cost.Total())
}
