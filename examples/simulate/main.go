// Analytic-vs-simulation validation: replay the baseline hierarchy's
// retrieval-point lifecycle on a discrete-event simulator, inject
// failures at thousands of instants, and compare the measured data loss
// against the framework's closed-form worst-case bounds (§3.3.3 of the
// paper).
//
// Expected outcome: the simulated maximum never exceeds the analytic
// bound, and gets within one sampling step of it — the bounds are tight.
// The one exception the simulator exposes is the cyclic full+incremental
// policy, where the paper's formula misses the incremental-free gap
// during the full's window (see EXPERIMENTS.md).
package main

import (
	"fmt"
	"log"
	"time"

	"stordep"
	"stordep/internal/report"
	"stordep/internal/sim"
)

func main() {
	log.SetFlags(0)

	sys, err := stordep.Baseline().Build()
	if err != nil {
		log.Fatal(err)
	}
	chain := sys.Chain()

	simulator, err := sim.New(chain)
	if err != nil {
		log.Fatal(err)
	}
	horizon := 30 * stordep.Week
	fmt.Printf("Simulating %v of RP propagation for: %s\n\n",
		horizon, chain)
	if err := simulator.Run(horizon); err != nil {
		log.Fatal(err)
	}

	cases := []struct {
		name      string
		surviving []int
		targetAge time.Duration
	}{
		{"object corruption (roll back 24h; mirrors survive)", []int{1, 2, 3}, 24 * time.Hour},
		{"array failure (mirrors lost; tapes survive)", []int{2, 3}, 0},
		{"site disaster (only the vault survives)", []int{3}, 0},
	}

	tbl := report.NewTable("Worst-case data loss: analytic bound vs discrete-event simulation",
		"Failure", "Analytic", "Simulated max", "Simulated mean", "Samples")
	from, to, step := 20*stordep.Week, horizon-stordep.Week, time.Hour
	for _, tc := range cases {
		// The analytic bound: loss at the best surviving level.
		bound := time.Duration(-1)
		for _, j := range tc.surviving {
			if loss, ok := chain.WorstCaseLoss(j, tc.targetAge); ok && (bound < 0 || loss < bound) {
				bound = loss
			}
		}
		st, err := simulator.LossStudy(tc.surviving, tc.targetAge, from, to, step)
		if err != nil {
			log.Fatal(err)
		}
		if st.Unrecoverable > 0 {
			log.Fatalf("%s: %d unrecoverable instants in steady state", tc.name, st.Unrecoverable)
		}
		verdict := "OK (within bound)"
		if st.Max > bound {
			verdict = "VIOLATION"
		}
		tbl.AddRow(
			tc.name,
			fmt.Sprintf("%.1f hr", bound.Hours()),
			fmt.Sprintf("%.1f hr (%s)", st.Max.Hours(), verdict),
			fmt.Sprintf("%.1f hr", st.Mean.Hours()),
			fmt.Sprintf("%d", st.Samples),
		)
	}
	fmt.Println(tbl.String())

	// Show the guaranteed range holding in practice for the mirrors.
	r := chain.GuaranteedRange(1)
	fmt.Printf("Split-mirror guaranteed range %v: probing a failure at week 25...\n", r)
	failAt := 25 * stordep.Week
	for _, age := range []time.Duration{r.Newest, (r.Newest + r.Oldest) / 2, r.Oldest} {
		_, lvl, ok := simulator.Loss([]int{1}, failAt, age)
		fmt.Printf("  target now-%v: recoverable=%v (level %d)\n", age, ok, lvl)
	}
}
