// Consolidation study: an IT department runs three servers — an OLTP
// database, a file server and a small data warehouse — and wants to
// consolidate their protection onto one shared array and tape library.
// Two modeling approaches answer different questions:
//
//  1. Merge the workloads into one protected object (one policy fits
//     all): quick capacity/bandwidth sizing of the shared fleet.
//  2. Keep the objects separate in a multi-object design with per-object
//     policies and recovery dependencies: per-application dependability,
//     aggregated demands, and the service-level critical path.
//
// The contrast shows why the multi-object extension matters: merged
// sizing says the fleet fits, but only the per-object view reveals that
// the warehouse's relaxed policy is free while the database still gets
// its tight one.
package main

import (
	"fmt"
	"log"
	"time"

	"stordep"
)

var (
	hq    = stordep.Placement{Array: "arr-1", Building: "dc", Site: "hq", Region: "west"}
	tapes = stordep.Placement{Array: "lib-1", Building: "dc", Site: "hq", Region: "west"}
)

func fleet(b *stordep.DesignBuilder) *stordep.DesignBuilder {
	return b.
		Device(stordep.MidrangeArray(), hq).
		Device(stordep.TapeLibrary(), tapes).
		RecoveryFacility(stordep.Placement{Site: "dr", Region: "central"}, 9*time.Hour, 0.2)
}

func main() {
	log.SetFlags(0)

	oltp := stordep.OLTPWorkload(400 * stordep.GB)
	files := stordep.FileServerWorkload(800 * stordep.GB)
	warehouse := stordep.WarehouseWorkload(stordep.TB)

	// Approach 1: merged sizing.
	merged, err := stordep.MergeWorkloads("consolidated", oltp, files, warehouse)
	if err != nil {
		log.Fatal(err)
	}
	mergedSys, err := fleet(stordep.NewDesign("one-size-fits-all").
		Workload(merged).
		Penalties(100_000, 100_000)).
		PrimaryOn(stordep.NameDiskArray).
		Protect(&stordep.SplitMirror{Array: stordep.NameDiskArray,
			Pol: stordep.SimplePolicy(12*time.Hour, 0, 0, 1, 12*time.Hour)}).
		Protect(&stordep.Backup{SourceArray: stordep.NameDiskArray, Target: stordep.NameTapeLibrary,
			Pol: stordep.SimplePolicy(24*time.Hour, 12*time.Hour, time.Hour, 14, 2*stordep.Week)}).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	u := mergedSys.Utilization()
	fmt.Printf("Merged sizing (%v of data): %.1f%% capacity, %.1f%% bandwidth — the fleet fits.\n",
		merged.DataCap, u.Cap*100, u.BW*100)
	a, err := mergedSys.Assess(stordep.Scenario{Scope: stordep.ScopeArray})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("One-size policy, array failure: loss %v for EVERY application.\n\n", a.DataLoss)

	// Approach 2: per-object policies; the database mirrors 4-hourly, the
	// warehouse settles for weekly backups, and the file server sits in
	// between. The file server must come back before the database
	// (it hosts its configuration).
	mirror := func(name string, accW time.Duration, ret int) stordep.Technique {
		return &stordep.SplitMirror{InstanceName: name, Array: stordep.NameDiskArray,
			Pol: stordep.SimplePolicy(accW, 0, 0, ret, time.Duration(ret)*accW)}
	}
	backup := func(name string, accW, propW time.Duration, ret int) stordep.Technique {
		return &stordep.Backup{InstanceName: name, SourceArray: stordep.NameDiskArray,
			Target: stordep.NameTapeLibrary,
			Pol:    stordep.SimplePolicy(accW, propW, time.Hour, ret, time.Duration(ret)*accW)}
	}
	md := &stordep.MultiDesign{
		Name: "per-application",
		Requirements: stordep.Requirements{
			UnavailPenaltyRate: stordep.PerHour(100_000),
			LossPenaltyRate:    stordep.PerHour(100_000),
		},
		Devices: []stordep.PlacedDevice{
			{Spec: stordep.MidrangeArray(), Placement: hq},
			{Spec: stordep.TapeLibrary(), Placement: tapes},
		},
		Facility: &stordep.Facility{
			Placement:     stordep.Placement{Site: "dr", Region: "central"},
			ProvisionTime: 9 * time.Hour,
			CostFactor:    0.2,
		},
		Objects: []stordep.ObjectSpec{
			{
				Name: "files", Workload: files,
				Primary: &stordep.Primary{Array: stordep.NameDiskArray},
				Levels: []stordep.Technique{
					mirror("files-mirror", 12*time.Hour, 2),
					backup("files-backup", 24*time.Hour, 12*time.Hour, 14),
				},
			},
			{
				Name: "oltp", Workload: oltp, DependsOn: []string{"files"},
				Primary: &stordep.Primary{Array: stordep.NameDiskArray},
				Levels: []stordep.Technique{
					mirror("oltp-mirror", 4*time.Hour, 3),
					backup("oltp-backup", 24*time.Hour, 12*time.Hour, 14),
				},
			},
			{
				Name: "warehouse", Workload: warehouse,
				Primary: &stordep.Primary{Array: stordep.NameDiskArray},
				Levels: []stordep.Technique{
					backup("warehouse-backup", stordep.Week, 48*time.Hour, 4),
				},
			},
		},
	}
	ms, err := stordep.BuildMulti(md)
	if err != nil {
		log.Fatal(err)
	}
	mu := ms.Utilization()
	fmt.Printf("Per-application fleet: %.1f%% capacity, %.1f%% bandwidth; outlays %v/yr.\n",
		mu.Cap*100, mu.BW*100, ms.Outlays().Total())
	sa, err := ms.Assess(stordep.Scenario{Scope: stordep.ScopeArray})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Array failure, per application:")
	for _, oa := range sa.Objects {
		fmt.Printf("  %-10s loss %-9v own RT %-9v effective RT %v\n",
			oa.Object, oa.DataLoss, oa.RecoveryTime.Round(time.Minute),
			oa.EffectiveRT.Round(time.Minute))
	}
	fmt.Printf("Service back after %v; worst loss %v (the warehouse's relaxed policy).\n",
		sa.RecoveryTime.Round(time.Minute), sa.DataLoss)
}
