package stordep_test

import (
	"fmt"
	"log"
	"time"

	"stordep"
)

// Example evaluates the paper's baseline under a site disaster.
func Example() {
	sys, err := stordep.Baseline().Build()
	if err != nil {
		log.Fatal(err)
	}
	a, err := sys.Assess(stordep.Scenario{Scope: stordep.ScopeSite})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recover from %s: loss %.0f hr\n", a.Plan.SourceName, a.DataLoss.Hours())
	// Output: recover from vaulting: loss 1429 hr
}

// ExampleNewDesign assembles a custom mirrored design with the builder.
func ExampleNewDesign() {
	sys, err := stordep.NewDesign("mirrored-db").
		Workload(stordep.Cello()).
		Penalties(50_000, 50_000).
		Device(stordep.MidrangeArray(), stordep.Placement{Array: "a1", Site: "hq", Region: "west"}).
		Device(stordep.RemoteMirrorArray(), stordep.Placement{Array: "a2", Site: "dr", Region: "east"}).
		Device(stordep.WANLinks(4), stordep.Placement{}).
		PrimaryOn(stordep.NameDiskArray).
		Protect(&stordep.Mirror{
			Mode:      stordep.MirrorAsyncBatch,
			DestArray: stordep.NameMirrorArray,
			Links:     stordep.NameWANLinks,
			Pol:       stordep.AsyncBatchMirrorPolicy(),
		}).
		RecoveryFacility(stordep.Placement{Site: "rec", Region: "central"}, 9*time.Hour, 0.2).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	a, err := sys.Assess(stordep.Scenario{Scope: stordep.ScopeArray})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loss %v\n", a.DataLoss)
	// Output: loss 2m0s
}

// ExampleSystem_AssessDegraded shows degraded-mode evaluation: the
// exposure after the backup system has been broken for a week.
func ExampleSystem_AssessDegraded() {
	sys, err := stordep.Baseline().Build()
	if err != nil {
		log.Fatal(err)
	}
	healthy, err := sys.Assess(stordep.Scenario{Scope: stordep.ScopeArray})
	if err != nil {
		log.Fatal(err)
	}
	degraded, err := sys.AssessDegraded(stordep.Scenario{Scope: stordep.ScopeArray},
		"backup", 7*24*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healthy %.0f hr, degraded %.0f hr\n",
		healthy.DataLoss.Hours(), degraded.DataLoss.Hours())
	// Output: healthy 217 hr, degraded 385 hr
}

// ExampleTune runs the automated-design loop over the WAN link count.
func ExampleTune() {
	designs := stordep.WhatIfDesigns()
	base := designs[5] // AsyncB mirror, 1 link
	sol, err := stordep.Tune(base,
		[]stordep.Knob{stordep.LinkCountKnob(stordep.NameWANLinks, []int{1, 2, 4, 8})},
		[]stordep.Scenario{{Scope: stordep.ScopeArray}, {Scope: stordep.ScopeSite}},
		stordep.WorstTotalObjective())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sol.Choices[0].Option)
	// Output: 2 links
}

// ExampleEvaluateDesigns ranks the paper's Table 7 family.
func ExampleEvaluateDesigns() {
	results, err := stordep.EvaluateDesigns(stordep.WhatIfDesigns(),
		[]stordep.Scenario{{Scope: stordep.ScopeArray}, {Scope: stordep.ScopeSite}})
	if err != nil {
		log.Fatal(err)
	}
	ranked := stordep.RankDesigns(results)
	fmt.Println(ranked[0].Design)
	// Output: AsyncB mirror, 1 link(s)
}
