// Benchmarks for the parallel-evaluation substrate, delegating to the
// internal/bench trajectory suite so `go test -bench` and cmd/bench
// measure identical bodies (cmd/bench additionally snapshots results to
// a BENCH_<date>.json file; see README "Performance").
package stordep_test

import (
	"testing"

	"stordep/internal/bench"
)

func delegate(b *testing.B, name string) {
	b.Helper()
	for _, c := range bench.Suite() {
		if c.Name == name {
			c.Bench(b)
			return
		}
	}
	b.Fatalf("no bench case %q", name)
}

func BenchmarkCloneJSON(b *testing.B)       { delegate(b, "clone/json") }
func BenchmarkCloneStructural(b *testing.B) { delegate(b, "clone/structural") }

func BenchmarkExhaustiveSeedBaseline(b *testing.B) { delegate(b, "exhaustive/seed-baseline") }
func BenchmarkExhaustiveSerial(b *testing.B)       { delegate(b, "exhaustive/serial") }
func BenchmarkExhaustiveParallel(b *testing.B)     { delegate(b, "exhaustive/parallel4") }

// The large cases enumerate a 6144-candidate space — beyond the seed
// implementation's 4096-combination cap — via the streaming search.
func BenchmarkExhaustiveLargeSerial(b *testing.B)   { delegate(b, "exhaustive/large-serial") }
func BenchmarkExhaustiveLargeParallel(b *testing.B) { delegate(b, "exhaustive/large-parallel4") }

func BenchmarkTuneSerial(b *testing.B)   { delegate(b, "tune/serial") }
func BenchmarkTuneParallel(b *testing.B) { delegate(b, "tune/parallel4") }

func BenchmarkParallelWhatIf(b *testing.B) { delegate(b, "whatif/parallel4") }

func BenchmarkChaosCampaignSerial(b *testing.B)   { delegate(b, "chaos/serial") }
func BenchmarkChaosCampaignParallel(b *testing.B) { delegate(b, "chaos/parallel4") }
