package main

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"stordep/internal/dist"
)

// solutionBlock strips the mode-specific header: everything after the
// first blank line is the solution report, which must be identical
// across the single-process, sharded-merge and coordinator paths.
func solutionBlock(t *testing.T, out string) string {
	t.Helper()
	i := strings.Index(out, "\n\n")
	if i < 0 {
		t.Fatalf("no solution block in output:\n%s", out)
	}
	return out[i+2:]
}

func exhaustiveReference(t *testing.T) string {
	t.Helper()
	var buf strings.Builder
	if err := run(&buf, options{objective: "worst", exhaustive: true}); err != nil {
		t.Fatal(err)
	}
	return solutionBlock(t, buf.String())
}

// TestRunShardOutMergeRoundTrip covers the offline flow: every shard
// saved with -out, then -merge reproduces the unsharded report exactly.
func TestRunShardOutMergeRoundTrip(t *testing.T) {
	want := exhaustiveReference(t)
	dir := t.TempDir()

	const shards = 3
	files := make([]string, shards)
	for s := 0; s < shards; s++ {
		files[s] = filepath.Join(dir, fmt.Sprintf("shard%d.json", s))
		var buf strings.Builder
		o := options{objective: "worst", shard: fmt.Sprintf("%d/%d", s, shards), out: files[s]}
		if err := run(&buf, o); err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
		if !strings.Contains(buf.String(), "Wrote shard result to") {
			t.Errorf("shard %d output missing the -out note:\n%s", s, buf.String())
		}
	}

	var merged strings.Builder
	if err := runMerge(&merged, files); err != nil {
		t.Fatal(err)
	}
	if got := solutionBlock(t, merged.String()); got != want {
		t.Errorf("merged report differs from unsharded:\n--- merged\n%s\n--- unsharded\n%s", got, want)
	}

	// A duplicated shard file changes nothing.
	var dup strings.Builder
	if err := runMerge(&dup, append(append([]string{}, files...), files[1])); err != nil {
		t.Fatal(err)
	}
	if got := solutionBlock(t, dup.String()); got != want {
		t.Errorf("merge with a duplicate file diverged:\n%s", got)
	}
}

func TestRunMergeRejects(t *testing.T) {
	if err := runMerge(&strings.Builder{}, nil); err == nil {
		t.Error("merge without files accepted")
	}

	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{oops"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runMerge(&strings.Builder{}, []string{bad}); err == nil {
		t.Error("garbage result file accepted")
	}
	if err := runMerge(&strings.Builder{}, []string{filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("nonexistent file accepted")
	}

	// A partial merge (one shard of three) must fail loudly.
	partial := filepath.Join(dir, "partial.json")
	var buf strings.Builder
	if err := run(&buf, options{objective: "worst", shard: "0/3", out: partial}); err != nil {
		t.Fatal(err)
	}
	if err := runMerge(&strings.Builder{}, []string{partial}); err == nil || !strings.Contains(err.Error(), "missing shard") {
		t.Errorf("partial merge: err = %v, want a missing-shard error", err)
	}
}

func TestRunOutRequiresCandidateIndex(t *testing.T) {
	var buf strings.Builder
	err := run(&buf, options{objective: "worst", out: filepath.Join(t.TempDir(), "x.json")})
	if err == nil || !strings.Contains(err.Error(), "-out") {
		t.Errorf("coordinate descent with -out: err = %v", err)
	}
}

// TestRunOutInfeasibleShard: a shard whose slice has no feasible
// candidate still writes a mergeable result carrying its evaluations.
func TestRunOutInfeasibleShard(t *testing.T) {
	dir := t.TempDir()
	files := []string{filepath.Join(dir, "s0.json"), filepath.Join(dir, "s1.json")}
	for s, f := range files {
		var buf strings.Builder
		o := options{objective: "worst", links: true, rto: "1m", rpo: "1m",
			shard: fmt.Sprintf("%d/2", s), out: f}
		if err := run(&buf, o); err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
		if !strings.Contains(buf.String(), "No feasible candidate") {
			t.Errorf("shard %d output:\n%s", s, buf.String())
		}
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		res, err := dist.DecodeResult(data)
		if err != nil {
			t.Fatal(err)
		}
		if res.Feasible || res.Evaluations != 4 {
			t.Errorf("shard %d result: %+v, want infeasible with 4 evaluations", s, res)
		}
	}
	// Merging two infeasible halves reports no feasible design, not a
	// bogus winner.
	if err := runMerge(&strings.Builder{}, files); err == nil {
		t.Error("all-infeasible merge should fail")
	}
}

// TestRunCoordinator drives the real coordinator path against two
// in-process worker servers and requires the same report as the
// single-process exhaustive run.
func TestRunCoordinator(t *testing.T) {
	want := exhaustiveReference(t)

	a := httptest.NewServer(dist.NewHandler(dist.HandlerOptions{}))
	defer a.Close()
	b := httptest.NewServer(dist.NewHandler(dist.HandlerOptions{}))
	defer b.Close()

	var buf strings.Builder
	o := options{
		objective:      "worst",
		coordinator:    a.URL + ", " + b.URL + "/",
		attemptTimeout: 30 * time.Second,
		speculateAfter: 5 * time.Second,
	}
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "across 2 workers") {
		t.Errorf("output missing the worker count:\n%s", out)
	}
	if got := solutionBlock(t, out); got != want {
		t.Errorf("coordinator report differs from single-process:\n--- coordinator\n%s\n--- single\n%s", got, want)
	}
}

func TestRunCoordinatorRejects(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, options{objective: "worst", coordinator: "http://x", shard: "0/2"}); err == nil ||
		!strings.Contains(err.Error(), "-shard") {
		t.Error("coordinator with -shard should be rejected")
	}
	if err := run(&buf, options{objective: "worst", coordinator: " , "}); err == nil {
		t.Error("coordinator without URLs accepted")
	}
	dead := httptest.NewServer(nil)
	url := dead.URL
	dead.Close()
	if err := run(&buf, options{objective: "worst", coordinator: url}); err == nil {
		t.Error("unreachable worker accepted")
	}
}

// TestRunCoordinatorByzantineValidation is the CI e2e scenario
// in-process: three authenticated workers, one wrapped to always lie,
// and -validate 2 — the report must still match the single-process
// exhaustive run exactly.
func TestRunCoordinatorByzantineValidation(t *testing.T) {
	want := exhaustiveReference(t)

	const token = "ci-shared-secret"
	var urls []string
	for i := 0; i < 3; i++ {
		srv := httptest.NewServer(dist.NewHandler(dist.HandlerOptions{AuthToken: token}))
		defer srv.Close()
		urls = append(urls, srv.URL)
	}

	var buf strings.Builder
	o := options{
		objective:      "worst",
		coordinator:    strings.Join(urls, ","),
		attemptTimeout: 30 * time.Second,
		authToken:      token,
		validateK:      2,
		chaosLiars:     1,
	}
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	if got := solutionBlock(t, buf.String()); got != want {
		t.Errorf("byzantine coordinator report differs from single-process:\n--- coordinator\n%s\n--- single\n%s", got, want)
	}
}

// TestRunCoordinatorWrongTokenFails: a coordinator holding the wrong
// secret is rejected by every worker and the run fails loudly.
func TestRunCoordinatorWrongTokenFails(t *testing.T) {
	srv := httptest.NewServer(dist.NewHandler(dist.HandlerOptions{AuthToken: "right"}))
	defer srv.Close()

	var buf strings.Builder
	o := options{
		objective:   "worst",
		coordinator: srv.URL,
		authToken:   "wrong",
	}
	err := run(&buf, o)
	if err == nil || !strings.Contains(err.Error(), "unauthenticated") {
		t.Errorf("err = %v, want an unauthenticated-job failure", err)
	}
}
