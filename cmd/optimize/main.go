// Command optimize runs the automated-design loop on the paper's case
// study: coordinate descent over the Table 7 design moves (vaulting
// cadence, backup policy, PiT technique) and, for mirrored designs, the
// WAN link count.
//
// Usage:
//
//	optimize                      # tune the tape-based baseline
//	optimize -objective expected  # minimize frequency-weighted expected cost
//	optimize -links               # tune the asyncB mirror's link count
//	optimize -rto 12h -rpo 1h     # cheapest design meeting objectives
//	optimize -exhaustive          # streaming full enumeration (no space cap)
//	optimize -shard 1/4           # run one shard of a sharded enumeration
//	optimize -cpuprofile opt.pprof
//
// Exhaustive enumeration streams: candidates are decoded from their
// global index on the fly, so memory stays O(workers) however large the
// knob product is. -budget caps the space size (0 = unbounded); -shard
// k/m (0-based) evaluates only the k-th of m contiguous slices, so a big
// space can be split across processes or hosts — each shard prints its
// winner's global candidate index, and the overall optimum is the lowest
// score across shards with ties to the lowest candidate index
// (opt.MergeShards applies the same rule programmatically).
//
// -cpuprofile and -memprofile write pprof profiles; the CPU profile is
// labeled with phase=build|assess|reduce on the optimizer's inner loop,
// so `go tool pprof -tagfocus phase=assess` isolates model evaluation
// from candidate construction.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"stordep/internal/casestudy"
	"stordep/internal/core"
	"stordep/internal/failure"
	"stordep/internal/hierarchy"
	"stordep/internal/opt"
	"stordep/internal/units"
	"stordep/internal/whatif"
)

// options carries the parsed command line.
type options struct {
	objective  string
	links      bool
	rto, rpo   string
	workers    int
	exhaustive bool
	shard      string
	budget     int
	cpuProfile string
	memProfile string
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("optimize: ")

	var o options
	flag.StringVar(&o.objective, "objective", "worst", "worst | expected")
	flag.BoolVar(&o.links, "links", false, "tune the asyncB mirror link count instead of the tape design")
	flag.StringVar(&o.rto, "rto", "", "constrain to designs meeting this recovery time objective")
	flag.StringVar(&o.rpo, "rpo", "", "constrain to designs meeting this recovery point objective")
	flag.IntVar(&o.workers, "workers", 0, "concurrent candidate evaluations (0 = all CPUs); any worker count returns the same solution")
	flag.BoolVar(&o.exhaustive, "exhaustive", false, "enumerate every knob combination (streaming; no space cap) instead of coordinate descent")
	flag.StringVar(&o.shard, "shard", "", "evaluate one slice k/m (0-based) of the exhaustive space; implies -exhaustive")
	flag.IntVar(&o.budget, "budget", 0, "refuse exhaustive spaces larger than this many combinations (0 = unbounded)")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile (with phase=build|assess|reduce labels) to this file")
	flag.StringVar(&o.memProfile, "memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if err := run(os.Stdout, o); err != nil {
		log.Fatal(err)
	}
}

// parseShard parses "k/m" into an opt.Shard; "" means unsharded.
func parseShard(s string) (opt.Shard, error) {
	if s == "" {
		return opt.Shard{}, nil
	}
	ks, ms, ok := strings.Cut(s, "/")
	if !ok {
		return opt.Shard{}, fmt.Errorf("bad -shard %q: want k/m (0-based index / shard count)", s)
	}
	k, errK := strconv.Atoi(ks)
	m, errM := strconv.Atoi(ms)
	if errK != nil || errM != nil {
		return opt.Shard{}, fmt.Errorf("bad -shard %q: want k/m (0-based index / shard count)", s)
	}
	return opt.Shard{Index: k, Count: m}, nil
}

func run(w io.Writer, o options) error {
	if o.workers < 0 {
		return fmt.Errorf("-workers must be non-negative, got %d", o.workers)
	}
	shard, err := parseShard(o.shard)
	if err != nil {
		return err
	}

	if o.cpuProfile != "" {
		f, err := os.Create(o.cpuProfile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		opt.PhaseProfiling(true)
		defer func() {
			pprof.StopCPUProfile()
			opt.PhaseProfiling(false)
			f.Close()
		}()
	}

	scenarios := []failure.Scenario{
		{Scope: failure.ScopeArray},
		{Scope: failure.ScopeSite},
	}

	objective, objLabel, err := buildObjective(o.objective, o.rto, o.rpo)
	if err != nil {
		return err
	}

	base := casestudy.Baseline()
	knobs := tapeKnobs()
	if o.links {
		base = casestudy.AsyncBMirror(1)
		knobs = []opt.Knob{opt.LinkCountKnob("wan-links", []int{1, 2, 3, 4, 6, 8, 12, 16})}
	}

	var sol *opt.Solution
	if o.exhaustive || o.shard != "" {
		fmt.Fprintf(w, "Exhaustively searching %q over %d knobs, objective: %s\n", base.Name, len(knobs), objLabel)
		if o.shard != "" {
			fmt.Fprintf(w, "Shard %s: merge shard winners by lowest score, ties to lowest candidate index (opt.MergeShards)\n", o.shard)
		}
		fmt.Fprintln(w)
		sol, err = opt.ExhaustiveOpts(base, knobs, scenarios, objective, opt.ExhaustiveOptions{
			Workers: o.workers,
			Budget:  o.budget,
			Shard:   shard,
		})
	} else {
		fmt.Fprintf(w, "Tuning %q over %d knobs, objective: %s\n\n", base.Name, len(knobs), objLabel)
		sol, err = opt.TuneWorkers(base, knobs, scenarios, objective, o.workers)
	}
	if err != nil {
		return err
	}
	for _, c := range sol.Choices {
		fmt.Fprintf(w, "  %-28s -> %s\n", c.Knob, c.Option)
	}
	if sol.CandidateIndex >= 0 {
		fmt.Fprintf(w, "\nScore: %v (candidate #%d; %d evaluations, %d passes)\n",
			sol.Score, sol.CandidateIndex, sol.Evaluations, sol.Passes)
	} else {
		fmt.Fprintf(w, "\nScore: %v (%d evaluations, %d passes)\n",
			sol.Score, sol.Evaluations, sol.Passes)
	}

	results, err := whatif.Evaluate([]*core.Design{sol.Design}, scenarios)
	if err != nil {
		return err
	}
	for _, o := range results[0].Outcomes {
		fmt.Fprintf(w, "  %-6s RT %-10v DL %-10v total %v\n",
			o.Scenario.DisplayName(), o.RecoveryTime.Round(time.Minute),
			o.DataLoss.Round(time.Minute), o.Total)
	}

	if o.memProfile != "" {
		f, err := os.Create(o.memProfile)
		if err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
	}
	return nil
}

func buildObjective(name, rto, rpo string) (opt.Objective, string, error) {
	if rto != "" || rpo != "" {
		obj := whatif.Objectives{RTO: units.Forever, RPO: units.Forever}
		if rto != "" {
			d, err := units.ParseDuration(rto)
			if err != nil {
				return nil, "", fmt.Errorf("bad -rto: %w", err)
			}
			obj.RTO = d
		}
		if rpo != "" {
			d, err := units.ParseDuration(rpo)
			if err != nil {
				return nil, "", fmt.Errorf("bad -rpo: %w", err)
			}
			obj.RPO = d
		}
		return opt.ConstrainedOutlayObjective(obj),
			fmt.Sprintf("cheapest outlays meeting RTO %s / RPO %s", orAny(rto), orAny(rpo)), nil
	}
	switch name {
	case "worst":
		return opt.WorstTotalObjective(), "minimize worst-scenario total cost", nil
	case "expected":
		return opt.ExpectedObjective(whatif.TypicalFrequencies()),
			"minimize expected annual cost (typical failure frequencies)", nil
	default:
		return nil, "", fmt.Errorf("unknown objective %q", name)
	}
}

func orAny(s string) string {
	if s == "" {
		return "any"
	}
	return s
}

// tapeKnobs exposes the Table 7 moves.
func tapeKnobs() []opt.Knob {
	weeklyVault := casestudy.VaultPolicy()
	weeklyVault.Primary.AccW = units.Week
	weeklyVault.Primary.HoldW = 12 * time.Hour
	weeklyVault.RetCnt = 156

	fi := casestudy.BackupPolicy()
	fi.Primary.AccW = 48 * time.Hour
	fi.Primary.PropW = 48 * time.Hour
	fi.Secondary = &hierarchy.WindowSet{
		AccW: 24 * time.Hour, PropW: 12 * time.Hour, HoldW: time.Hour,
		Rep: hierarchy.RepPartial,
	}
	fi.CycleCnt = 5

	dailyF := casestudy.BackupPolicy()
	dailyF.Primary.AccW = 24 * time.Hour
	dailyF.Primary.PropW = 12 * time.Hour
	dailyF.RetCnt = 28

	return []opt.Knob{
		opt.PolicyKnob("vaulting",
			[]string{"4-weekly", "weekly"},
			[]hierarchy.Policy{casestudy.VaultPolicy(), weeklyVault}),
		opt.PolicyKnob("backup",
			[]string{"weekly full", "F+I", "daily full"},
			[]hierarchy.Policy{casestudy.BackupPolicy(), fi, dailyF}),
		opt.PiTKnob("split-mirror"),
	}
}
