// Command optimize runs the automated-design loop on the paper's case
// study: coordinate descent over the Table 7 design moves (vaulting
// cadence, backup policy, PiT technique) and, for mirrored designs, the
// WAN link count.
//
// Usage:
//
//	optimize                      # tune the tape-based baseline
//	optimize -objective expected  # minimize frequency-weighted expected cost
//	optimize -objective expected -trials 1000  # Monte Carlo expected cost
//	optimize -links               # tune the asyncB mirror's link count
//	optimize -rto 12h -rpo 1h     # cheapest design meeting objectives
//	optimize -exhaustive          # streaming full enumeration (no space cap)
//	optimize -exhaustive -prune   # bound-guided enumeration (same answer)
//	optimize -pareto              # full RT/DL/cost non-dominated surface
//	optimize -shard 1/4           # run one shard of a sharded enumeration
//	optimize -shard 1/4 -out s1.json   # save the shard's result for -merge
//	optimize -merge s0.json s1.json s2.json s3.json
//	optimize -coordinator http://host1:7700,http://host2:7700
//	optimize -coordinator ... -auth-token s3cret -validate 2
//	optimize -cpuprofile opt.pprof
//
// Exhaustive enumeration streams: candidates are decoded from their
// global index on the fly, so memory stays O(workers) however large the
// knob product is. -prune turns on branch-and-bound subtree pruning
// (internal/opt/bound.go): admissible lower bounds from the compiled
// group tables retire whole index ranges whose bound exceeds the best
// score achieved so far. The printed solution is byte-identical to the
// unpruned run — only the assessed/pruned split changes, reported on a
// "Pruned:" line. -pareto sweeps the same space but returns the full
// recovery-time/data-loss/outlay non-dominated surface instead of one
// argmin (opt.Frontier); it runs locally only and ignores -objective,
// since the frontier is what a decision-maker picks from before
// committing to a single objective. -budget caps the space size
// (0 = unbounded); -shard
// k/m (0-based) evaluates only the k-th of m contiguous slices, so a big
// space can be split across processes or hosts — each shard prints its
// winner's global candidate index, and the overall optimum is the lowest
// score across shards with ties to the lowest candidate index
// (opt.MergeShards applies the same rule programmatically).
//
// Sharded runs compose offline or online. Offline, -out writes each
// shard's wire Result (internal/dist schema) and -merge combines the
// files into exactly the Solution the unsharded search prints — every
// shard of one partitioning must be present, duplicates are deduped.
// Online, -coordinator distributes the same enumeration across running
// cmd/worker processes: the space splits into more shards than workers,
// failed or straggling shards are re-dispatched (see -attempt-timeout,
// -speculate-after), and the merged answer is byte-identical to the
// single-process -exhaustive run for any worker count or failure
// pattern. Workers are health-probed during the run (-probe-interval)
// and evicted into quarantine when they stop answering; -auth-token
// HMAC-signs every job and verifies every result; -validate K sends
// each shard to K distinct workers and accepts only a matching
// majority, quarantining any worker whose answer disagrees — a lying
// worker cannot poison the merge while an honest majority remains.
// -dist-metrics dumps the coordinator's Prometheus-style counters to
// stderr afterwards.
//
// -trials N swaps the analytic expected-cost objective for a Monte
// Carlo one: every candidate is scored by expected annual cost (outlay
// plus expected annualized penalties) estimated from N seeded trials
// (internal/mc). All candidates share one seed — common random numbers —
// so they are compared on identical sampled fault schedules and the
// sampling noise cancels out of the comparison. It composes only with
// -objective expected and local coordinate descent.
//
// -cpuprofile and -memprofile write pprof profiles; the CPU profile is
// labeled with phase=build|assess|reduce on the optimizer's inner loop,
// so `go tool pprof -tagfocus phase=assess` isolates model evaluation
// from candidate construction.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"stordep/internal/casestudy"
	"stordep/internal/core"
	"stordep/internal/dist"
	"stordep/internal/failure"
	"stordep/internal/hierarchy"
	"stordep/internal/mc"
	"stordep/internal/opt"
	"stordep/internal/units"
	"stordep/internal/whatif"
)

// options carries the parsed command line.
type options struct {
	objective      string
	links          bool
	rto, rpo       string
	trials         int
	seed           int64
	workers        int
	exhaustive     bool
	prune          bool
	pareto         bool
	shard          string
	budget         int
	out            string
	merge          bool
	coordinator    string
	shards         int
	attemptTimeout time.Duration
	speculateAfter time.Duration
	authToken      string
	validateK      int
	probeInterval  time.Duration
	chaosLiars     int
	distMetrics    bool
	cpuProfile     string
	memProfile     string
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("optimize: ")

	var o options
	flag.StringVar(&o.objective, "objective", "worst", "worst | expected")
	flag.BoolVar(&o.links, "links", false, "tune the asyncB mirror link count instead of the tape design")
	flag.StringVar(&o.rto, "rto", "", "constrain to designs meeting this recovery time objective")
	flag.StringVar(&o.rpo, "rpo", "", "constrain to designs meeting this recovery point objective")
	flag.IntVar(&o.trials, "trials", 0, "score candidates by Monte Carlo expected cost over this many seeded trials (requires -objective expected; 0 = analytic)")
	flag.Int64Var(&o.seed, "seed", 1, "campaign seed for -trials; all candidates share it (common random numbers)")
	flag.IntVar(&o.workers, "workers", 0, "concurrent candidate evaluations (0 = all CPUs); any worker count returns the same solution")
	flag.BoolVar(&o.exhaustive, "exhaustive", false, "enumerate every knob combination (streaming; no space cap) instead of coordinate descent")
	flag.BoolVar(&o.prune, "prune", false, "bound-guided subtree pruning for -exhaustive / -pareto; identical answer, fewer candidates assessed")
	flag.BoolVar(&o.pareto, "pareto", false, "sweep the space for the full RT/DL/cost non-dominated surface instead of a single optimum")
	flag.StringVar(&o.shard, "shard", "", "evaluate one slice k/m (0-based) of the exhaustive space; implies -exhaustive")
	flag.IntVar(&o.budget, "budget", 0, "refuse exhaustive spaces larger than this many combinations (0 = unbounded)")
	flag.StringVar(&o.out, "out", "", "write the run's shard result (wire JSON) to this file, for -merge")
	flag.BoolVar(&o.merge, "merge", false, "merge shard result files (the non-flag arguments) instead of searching")
	flag.StringVar(&o.coordinator, "coordinator", "", "comma-separated worker URLs; distribute the exhaustive search across them")
	flag.IntVar(&o.shards, "shards", 0, "shard count for -coordinator (0 = 4 per worker)")
	flag.DurationVar(&o.attemptTimeout, "attempt-timeout", 2*time.Minute, "per-shard dispatch timeout for -coordinator (0 = none)")
	flag.DurationVar(&o.speculateAfter, "speculate-after", 30*time.Second, "re-dispatch a straggling shard after this long (0 = never)")
	flag.StringVar(&o.authToken, "auth-token", "", "shared secret for -coordinator; jobs are HMAC-signed and worker results verified")
	flag.IntVar(&o.validateK, "validate", 1, "dispatch each shard to K distinct workers and require a matching majority (byzantine cross-validation; 1 = off)")
	flag.DurationVar(&o.probeInterval, "probe-interval", 5*time.Second, "health-probe cadence for -coordinator worker eviction (0 = no probing)")
	flag.IntVar(&o.chaosLiars, "chaos-liars", 0, "testing: wrap the first N workers in always-lying fault injectors (exercises -validate)")
	flag.BoolVar(&o.distMetrics, "dist-metrics", false, "dump coordinator metrics (Prometheus text format) to stderr")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile (with phase=build|assess|reduce labels) to this file")
	flag.StringVar(&o.memProfile, "memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	var err error
	if o.merge {
		if o.pareto {
			err = fmt.Errorf("-pareto runs a local sweep; drop -merge")
		} else {
			err = runMerge(os.Stdout, flag.Args())
		}
	} else {
		err = run(os.Stdout, o)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// parseShard parses "k/m" into an opt.Shard; "" means unsharded.
func parseShard(s string) (opt.Shard, error) {
	if s == "" {
		return opt.Shard{}, nil
	}
	ks, ms, ok := strings.Cut(s, "/")
	if !ok {
		return opt.Shard{}, fmt.Errorf("bad -shard %q: want k/m (0-based index / shard count)", s)
	}
	k, errK := strconv.Atoi(ks)
	m, errM := strconv.Atoi(ms)
	if errK != nil || errM != nil {
		return opt.Shard{}, fmt.Errorf("bad -shard %q: want k/m (0-based index / shard count)", s)
	}
	return opt.Shard{Index: k, Count: m}, nil
}

func run(w io.Writer, o options) error {
	if o.workers < 0 {
		return fmt.Errorf("-workers must be non-negative, got %d", o.workers)
	}
	shard, err := parseShard(o.shard)
	if err != nil {
		return err
	}

	if o.cpuProfile != "" {
		f, err := os.Create(o.cpuProfile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		opt.PhaseProfiling(true)
		defer func() {
			pprof.StopCPUProfile()
			opt.PhaseProfiling(false)
			f.Close()
		}()
	}

	scenarios := []failure.Scenario{
		{Scope: failure.ScopeArray},
		{Scope: failure.ScopeSite},
	}

	objective, floor, objLabel, err := buildObjective(o.objective, o.rto, o.rpo)
	if err != nil {
		return err
	}

	// Knob definitions are wire specs first (internal/dist), then built
	// into closures: the local search, the -out shard files and the
	// coordinator's workers all enumerate the exact same space.
	base := casestudy.Baseline()
	specs, err := tapeKnobSpecs()
	if err != nil {
		return err
	}
	if o.links {
		base = casestudy.AsyncBMirror(1)
		specs = []dist.KnobSpec{dist.LinkCountKnobSpec("wan-links", []int{1, 2, 3, 4, 6, 8, 12, 16})}
	}
	knobs, err := dist.BuildKnobs(specs)
	if err != nil {
		return err
	}

	if o.trials > 0 {
		if o.objective != "expected" || o.rto != "" || o.rpo != "" {
			return fmt.Errorf("-trials scores candidates by Monte Carlo expected cost; it requires -objective expected and no -rto/-rpo")
		}
		if o.exhaustive || o.shard != "" || o.coordinator != "" || o.pareto || o.prune || o.out != "" {
			return fmt.Errorf("-trials runs local coordinate descent; drop -exhaustive/-shard/-coordinator/-pareto/-prune/-out")
		}
		return runMC(w, o, base, knobs)
	}

	if o.pareto {
		if o.coordinator != "" {
			return fmt.Errorf("-pareto runs a local sweep; drop -coordinator")
		}
		if o.out != "" {
			return fmt.Errorf("-out writes scalar shard results; it has no frontier form, drop it with -pareto")
		}
		return runPareto(w, o, base, knobs, scenarios, shard)
	}
	if o.prune && !o.exhaustive && o.shard == "" && o.coordinator == "" {
		return fmt.Errorf("-prune needs an enumeration; add -exhaustive, -shard or -coordinator")
	}

	if o.coordinator != "" {
		return runCoordinator(w, o, base, specs, scenarios, objLabel)
	}

	var sol *opt.Solution
	if o.exhaustive || o.shard != "" {
		fmt.Fprintf(w, "Exhaustively searching %q over %d knobs, objective: %s\n", base.Name, len(knobs), objLabel)
		if o.shard != "" {
			fmt.Fprintf(w, "Shard %s: merge shard winners by lowest score, ties to lowest candidate index (opt.MergeShards)\n", o.shard)
		}
		fmt.Fprintln(w)
		var stats opt.SearchStats
		sol, err = opt.ExhaustiveOpts(base, knobs, scenarios, objective, opt.ExhaustiveOptions{
			Workers: o.workers,
			Budget:  o.budget,
			Shard:   shard,
			Prune:   o.prune,
			Floor:   floor,
			Stats:   &stats,
		})
		if o.out != "" && isNoFeasible(err) {
			// The shard's slice holds no feasible candidate: still a valid
			// result — the merge needs its evaluation count.
			return writeInfeasibleResult(w, o.out, shard, stats)
		}
	} else {
		fmt.Fprintf(w, "Tuning %q over %d knobs, objective: %s\n\n", base.Name, len(knobs), objLabel)
		sol, err = opt.TuneWorkers(base, knobs, scenarios, objective, o.workers)
	}
	if err != nil {
		return err
	}
	if err := printSolution(w, sol, scenarios); err != nil {
		return err
	}

	if o.out != "" {
		if sol.CandidateIndex < 0 {
			return fmt.Errorf("-out needs an exhaustive or sharded run (coordinate descent has no candidate index); add -exhaustive or -shard")
		}
		res, err := dist.SolutionResult(sol, dist.ShardSpec{Index: shard.Index, Count: shard.Count})
		if err != nil {
			return err
		}
		if err := writeResult(o.out, res); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nWrote shard result to %s\n", o.out)
	}

	if o.memProfile != "" {
		f, err := os.Create(o.memProfile)
		if err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
	}
	return nil
}

// runMC tunes by Monte Carlo expected cost: coordinate descent where
// every candidate is scored by a seeded campaign sharing one trial
// budget (common random numbers — see mc.(*Campaign).Scorer), then the
// winner's full dependability report is printed so the nines and
// confidence intervals behind the score are visible.
func runMC(w io.Writer, o options, base *core.Design, knobs []opt.Knob) error {
	camp := &mc.Campaign{Seed: o.seed, Trials: o.trials, Workers: o.workers}
	fmt.Fprintf(w, "Tuning %q over %d knobs, objective: minimize Monte Carlo expected annual cost (%d trials per candidate, seed %d)\n\n",
		base.Name, len(knobs), o.trials, o.seed)
	sol, err := opt.TuneScored(base, knobs, camp.Scorer())
	if err != nil {
		return err
	}
	for _, c := range sol.Choices {
		fmt.Fprintf(w, "  %-28s -> %s\n", c.Knob, c.Option)
	}
	fmt.Fprintf(w, "\nScore: %v expected annual cost (%d campaigns, %d memo hits, %d passes)\n\n",
		sol.Score, sol.Evaluations, sol.MemoHits, sol.Passes)
	final := *camp
	final.Design = sol.Design
	rep, err := final.Run()
	if err != nil {
		return err
	}
	fmt.Fprint(w, rep.String())
	return nil
}

// runPareto sweeps the knob space for the full non-dominated surface
// and prints it cheapest-first. The surface is byte-identical for every
// -workers value and unchanged by -prune.
func runPareto(w io.Writer, o options, base *core.Design, knobs []opt.Knob, scenarios []failure.Scenario, shard opt.Shard) error {
	fmt.Fprintf(w, "Pareto sweep of %q over %d knobs: worst-case RT / worst-case DL / annual outlays\n", base.Name, len(knobs))
	fr, err := opt.Frontier(base, knobs, scenarios, opt.FrontierOpts{
		Workers: o.workers,
		Budget:  o.budget,
		Shard:   shard,
		Prune:   o.prune,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n%d non-dominated designs (%d candidates assessed", len(fr.Points), fr.Evaluations)
	if fr.CandidatesPruned > 0 {
		fmt.Fprintf(w, ", %d pruned", fr.CandidatesPruned)
	}
	fmt.Fprintf(w, ")\n")
	for _, p := range fr.Points {
		fmt.Fprintf(w, "\n  candidate #%-6d outlays %-12v RT %-10v DL %v\n",
			p.CandidateIndex, p.Outlays, p.RecoveryTime.Round(time.Minute), p.DataLoss.Round(time.Minute))
		for _, c := range p.Choices {
			fmt.Fprintf(w, "    %-28s -> %s\n", c.Knob, c.Option)
		}
	}
	return nil
}

// runCoordinator distributes the exhaustive search across remote
// cmd/worker processes and prints the merged solution — byte-identical
// to the single-process -exhaustive output's solution lines.
func runCoordinator(w io.Writer, o options, base *core.Design, specs []dist.KnobSpec, scenarios []failure.Scenario, objLabel string) error {
	if o.shard != "" {
		return fmt.Errorf("-coordinator owns the sharding; drop -shard")
	}
	var workers []dist.Worker
	for _, u := range strings.Split(o.coordinator, ",") {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			continue
		}
		workers = append(workers, &dist.HTTPWorker{BaseURL: u, AuthToken: o.authToken})
	}
	if len(workers) == 0 {
		return fmt.Errorf("-coordinator needs at least one worker URL")
	}
	ctx, cancelCtx := context.WithCancel(context.Background())
	defer cancelCtx()
	for _, wk := range workers {
		hctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		err := wk.(*dist.HTTPWorker).Health(hctx)
		cancel()
		if err != nil {
			return err
		}
	}
	for i := 0; i < o.chaosLiars && i < len(workers); i++ {
		// Testing hook for the byzantine e2e: this worker's results are
		// plausibly wrong, so only -validate >= 2 keeps the answer exact.
		workers[i] = dist.NewChaosWorker(workers[i], dist.ChaosOptions{Seed: int64(i) + 1, PLie: 1})
	}

	job, err := dist.NewJob(base, specs, dist.ScenarioSpecs(scenarios), objectiveSpec(o))
	if err != nil {
		return err
	}
	job.Budget = o.budget
	job.Prune = o.prune

	// A live registry backs the run: workers that miss health probes are
	// evicted into quarantine mid-run and readmitted when they recover.
	reg := dist.NewRegistry(dist.RegistryOptions{
		ProbeInterval: o.probeInterval,
		Logf:          log.Printf,
	})
	for _, wk := range workers {
		if err := reg.Add(wk); err != nil {
			return err
		}
	}
	if o.probeInterval > 0 {
		go reg.Start(ctx)
	}
	c, err := dist.NewCoordinatorRegistry(reg, dist.Options{
		Shards:         o.shards,
		AttemptTimeout: o.attemptTimeout,
		SpeculateAfter: o.speculateAfter,
		ValidateK:      o.validateK,
		WorkersPerJob:  o.workers,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Distributing exhaustive search of %q across %d workers, objective: %s\n\n",
		base.Name, len(workers), objLabel)
	sol, err := c.Run(ctx, job)
	if o.distMetrics {
		// Dump even on failure: the counters say which worker misbehaved.
		c.Metrics().WritePrometheus(os.Stderr, time.Now()) //nolint:errcheck
	}
	if err != nil {
		return err
	}
	return printSolution(w, sol, scenarios)
}

// runMerge combines shard result files written by -out into the
// Solution the unsharded search prints.
func runMerge(w io.Writer, files []string) error {
	if len(files) == 0 {
		return fmt.Errorf("-merge needs shard result files as arguments")
	}
	results := make([]*dist.Result, len(files))
	for i, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		if results[i], err = dist.DecodeResult(data); err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
	}
	sol, err := dist.MergeResults(results)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Merging %d shard results\n\n", len(files))
	scenarios := []failure.Scenario{
		{Scope: failure.ScopeArray},
		{Scope: failure.ScopeSite},
	}
	return printSolution(w, sol, scenarios)
}

// printSolution writes the chosen knobs, the score line and the winning
// design's per-scenario outcomes — the block CI diffs across the
// single-process, sharded-merge and coordinator paths.
func printSolution(w io.Writer, sol *opt.Solution, scenarios []failure.Scenario) error {
	for _, c := range sol.Choices {
		fmt.Fprintf(w, "  %-28s -> %s\n", c.Knob, c.Option)
	}
	if sol.CandidateIndex >= 0 {
		fmt.Fprintf(w, "\nScore: %v (candidate #%d; %d evaluations, %d passes)\n",
			sol.Score, sol.CandidateIndex, sol.Evaluations, sol.Passes)
	} else {
		fmt.Fprintf(w, "\nScore: %v (%d evaluations, %d passes)\n",
			sol.Score, sol.Evaluations, sol.Passes)
	}
	if sol.CandidatesPruned > 0 {
		fmt.Fprintf(w, "Pruned: %d candidates retired by bound (%d bounds computed)\n",
			sol.CandidatesPruned, sol.BoundsComputed)
	}

	results, err := whatif.Evaluate([]*core.Design{sol.Design}, scenarios)
	if err != nil {
		return err
	}
	for _, o := range results[0].Outcomes {
		fmt.Fprintf(w, "  %-6s RT %-10v DL %-10v total %v\n",
			o.Scenario.DisplayName(), o.RecoveryTime.Round(time.Minute),
			o.DataLoss.Round(time.Minute), o.Total)
	}
	return nil
}

// isNoFeasible reports whether an exhaustive search failed only because
// the evaluated slice holds no feasible candidate.
func isNoFeasible(err error) bool {
	return errors.Is(err, opt.ErrNoFeasible)
}

// writeInfeasibleResult records an infeasible shard for -merge: no
// winner, but the slice's assessed and pruned counts must reach the
// merged totals (a pruned infeasible shard assesses fewer candidates,
// and under-reporting either count would break the sharded-vs-whole
// accounting equivalence).
func writeInfeasibleResult(w io.Writer, path string, shard opt.Shard, stats opt.SearchStats) error {
	res := &dist.Result{
		Version:        dist.Version,
		Shard:          dist.ShardSpec{Index: shard.Index, Count: shard.Count},
		Feasible:       false,
		Evaluations:    stats.Assessed,
		Pruned:         stats.Pruned,
		BoundsComputed: stats.BoundsComputed,
		CandidateIndex: -1,
	}
	if err := writeResult(path, res); err != nil {
		return err
	}
	fmt.Fprintf(w, "No feasible candidate in this shard; wrote its evaluation count to %s\n", path)
	return nil
}

func writeResult(path string, res *dist.Result) error {
	data, err := res.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// objectiveSpec mirrors buildObjective for the wire: explicit RTO/RPO
// turn the objective into the constrained-outlay rule, exactly as the
// local path does.
func objectiveSpec(o options) dist.ObjectiveSpec {
	if o.rto != "" || o.rpo != "" {
		return dist.ObjectiveSpec{Kind: "constrained", RTO: o.rto, RPO: o.rpo}
	}
	return dist.ObjectiveSpec{Kind: o.objective}
}

// buildObjective resolves the objective flags into the scoring closure,
// its admissible pruning floor (the -prune counterpart, see
// opt.ObjectiveFloor), and a display label.
func buildObjective(name, rto, rpo string) (opt.Objective, opt.ObjectiveFloor, string, error) {
	if rto != "" || rpo != "" {
		obj := whatif.Objectives{RTO: units.Forever, RPO: units.Forever}
		if rto != "" {
			d, err := units.ParseDuration(rto)
			if err != nil {
				return nil, nil, "", fmt.Errorf("bad -rto: %w", err)
			}
			obj.RTO = d
		}
		if rpo != "" {
			d, err := units.ParseDuration(rpo)
			if err != nil {
				return nil, nil, "", fmt.Errorf("bad -rpo: %w", err)
			}
			obj.RPO = d
		}
		return opt.ConstrainedOutlayObjective(obj), opt.ConstrainedOutlayFloor(obj),
			fmt.Sprintf("cheapest outlays meeting RTO %s / RPO %s", orAny(rto), orAny(rpo)), nil
	}
	switch name {
	case "worst":
		return opt.WorstTotalObjective(), opt.WorstTotalFloor(), "minimize worst-scenario total cost", nil
	case "expected":
		return opt.ExpectedObjective(whatif.TypicalFrequencies()), opt.ExpectedFloor(whatif.TypicalFrequencies()),
			"minimize expected annual cost (typical failure frequencies)", nil
	default:
		return nil, nil, "", fmt.Errorf("unknown objective %q", name)
	}
}

func orAny(s string) string {
	if s == "" {
		return "any"
	}
	return s
}

// tapeKnobSpecs exposes the Table 7 moves as wire specs, the single
// definition both the local search and distributed workers build from.
func tapeKnobSpecs() ([]dist.KnobSpec, error) {
	weeklyVault := casestudy.VaultPolicy()
	weeklyVault.Primary.AccW = units.Week
	weeklyVault.Primary.HoldW = 12 * time.Hour
	weeklyVault.RetCnt = 156

	fi := casestudy.BackupPolicy()
	fi.Primary.AccW = 48 * time.Hour
	fi.Primary.PropW = 48 * time.Hour
	fi.Secondary = &hierarchy.WindowSet{
		AccW: 24 * time.Hour, PropW: 12 * time.Hour, HoldW: time.Hour,
		Rep: hierarchy.RepPartial,
	}
	fi.CycleCnt = 5

	dailyF := casestudy.BackupPolicy()
	dailyF.Primary.AccW = 24 * time.Hour
	dailyF.Primary.PropW = 12 * time.Hour
	dailyF.RetCnt = 28

	vault, err := dist.PolicyKnobSpec("vaulting",
		[]string{"4-weekly", "weekly"},
		[]hierarchy.Policy{casestudy.VaultPolicy(), weeklyVault})
	if err != nil {
		return nil, err
	}
	backup, err := dist.PolicyKnobSpec("backup",
		[]string{"weekly full", "F+I", "daily full"},
		[]hierarchy.Policy{casestudy.BackupPolicy(), fi, dailyF})
	if err != nil {
		return nil, err
	}
	return []dist.KnobSpec{vault, backup, dist.PiTKnobSpec("split-mirror")}, nil
}
