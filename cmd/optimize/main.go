// Command optimize runs the automated-design loop on the paper's case
// study: coordinate descent over the Table 7 design moves (vaulting
// cadence, backup policy, PiT technique) and, for mirrored designs, the
// WAN link count.
//
// Usage:
//
//	optimize                      # tune the tape-based baseline
//	optimize -objective expected  # minimize frequency-weighted expected cost
//	optimize -links               # tune the asyncB mirror's link count
//	optimize -rto 12h -rpo 1h     # cheapest design meeting objectives
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"stordep/internal/casestudy"
	"stordep/internal/core"
	"stordep/internal/failure"
	"stordep/internal/hierarchy"
	"stordep/internal/opt"
	"stordep/internal/units"
	"stordep/internal/whatif"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("optimize: ")

	var (
		objective = flag.String("objective", "worst", "worst | expected")
		links     = flag.Bool("links", false, "tune the asyncB mirror link count instead of the tape design")
		rto       = flag.String("rto", "", "constrain to designs meeting this recovery time objective")
		rpo       = flag.String("rpo", "", "constrain to designs meeting this recovery point objective")
		workers   = flag.Int("workers", 0, "concurrent candidate evaluations (0 = all CPUs); any worker count returns the same solution")
	)
	flag.Parse()

	if err := run(os.Stdout, *objective, *links, *rto, *rpo, *workers); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, objectiveName string, links bool, rto, rpo string, workers int) error {
	if workers < 0 {
		return fmt.Errorf("-workers must be non-negative, got %d", workers)
	}
	scenarios := []failure.Scenario{
		{Scope: failure.ScopeArray},
		{Scope: failure.ScopeSite},
	}

	objective, objLabel, err := buildObjective(objectiveName, rto, rpo)
	if err != nil {
		return err
	}

	base := casestudy.Baseline()
	knobs := tapeKnobs()
	if links {
		base = casestudy.AsyncBMirror(1)
		knobs = []opt.Knob{opt.LinkCountKnob("wan-links", []int{1, 2, 3, 4, 6, 8, 12, 16})}
	}

	fmt.Fprintf(w, "Tuning %q over %d knobs, objective: %s\n\n", base.Name, len(knobs), objLabel)
	sol, err := opt.TuneWorkers(base, knobs, scenarios, objective, workers)
	if err != nil {
		return err
	}
	for _, c := range sol.Choices {
		fmt.Fprintf(w, "  %-28s -> %s\n", c.Knob, c.Option)
	}
	fmt.Fprintf(w, "\nScore: %v (%d evaluations, %d passes)\n",
		sol.Score, sol.Evaluations, sol.Passes)

	results, err := whatif.Evaluate([]*core.Design{sol.Design}, scenarios)
	if err != nil {
		return err
	}
	for _, o := range results[0].Outcomes {
		fmt.Fprintf(w, "  %-6s RT %-10v DL %-10v total %v\n",
			o.Scenario.DisplayName(), o.RecoveryTime.Round(time.Minute),
			o.DataLoss.Round(time.Minute), o.Total)
	}
	return nil
}

func buildObjective(name, rto, rpo string) (opt.Objective, string, error) {
	if rto != "" || rpo != "" {
		obj := whatif.Objectives{RTO: units.Forever, RPO: units.Forever}
		if rto != "" {
			d, err := units.ParseDuration(rto)
			if err != nil {
				return nil, "", fmt.Errorf("bad -rto: %w", err)
			}
			obj.RTO = d
		}
		if rpo != "" {
			d, err := units.ParseDuration(rpo)
			if err != nil {
				return nil, "", fmt.Errorf("bad -rpo: %w", err)
			}
			obj.RPO = d
		}
		return opt.ConstrainedOutlayObjective(obj),
			fmt.Sprintf("cheapest outlays meeting RTO %s / RPO %s", orAny(rto), orAny(rpo)), nil
	}
	switch name {
	case "worst":
		return opt.WorstTotalObjective(), "minimize worst-scenario total cost", nil
	case "expected":
		return opt.ExpectedObjective(whatif.TypicalFrequencies()),
			"minimize expected annual cost (typical failure frequencies)", nil
	default:
		return nil, "", fmt.Errorf("unknown objective %q", name)
	}
}

func orAny(s string) string {
	if s == "" {
		return "any"
	}
	return s
}

// tapeKnobs exposes the Table 7 moves.
func tapeKnobs() []opt.Knob {
	weeklyVault := casestudy.VaultPolicy()
	weeklyVault.Primary.AccW = units.Week
	weeklyVault.Primary.HoldW = 12 * time.Hour
	weeklyVault.RetCnt = 156

	fi := casestudy.BackupPolicy()
	fi.Primary.AccW = 48 * time.Hour
	fi.Primary.PropW = 48 * time.Hour
	fi.Secondary = &hierarchy.WindowSet{
		AccW: 24 * time.Hour, PropW: 12 * time.Hour, HoldW: time.Hour,
		Rep: hierarchy.RepPartial,
	}
	fi.CycleCnt = 5

	dailyF := casestudy.BackupPolicy()
	dailyF.Primary.AccW = 24 * time.Hour
	dailyF.Primary.PropW = 12 * time.Hour
	dailyF.RetCnt = 28

	return []opt.Knob{
		opt.PolicyKnob("vaulting",
			[]string{"4-weekly", "weekly"},
			[]hierarchy.Policy{casestudy.VaultPolicy(), weeklyVault}),
		opt.PolicyKnob("backup",
			[]string{"weekly full", "F+I", "daily full"},
			[]hierarchy.Policy{casestudy.BackupPolicy(), fi, dailyF}),
		opt.PiTKnob("split-mirror"),
	}
}
