package main

import (
	"strings"
	"testing"
)

func TestRunWorstObjective(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, "worst", false, "", ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"minimize worst-scenario total cost",
		"vaulting policy              -> weekly",
		"backup policy                -> daily full",
		"virtual-snapshot",
		"$12.89M",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunExpectedObjective(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, "expected", false, "", ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "expected annual cost") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestRunLinkTuning(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, "worst", true, "", ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wan-links count") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestRunConstrained(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, "worst", true, "12h", "1h"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "8 links") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, "alien", false, "", ""); err == nil {
		t.Error("unknown objective accepted")
	}
	if err := run(&buf, "worst", false, "zzz", ""); err == nil {
		t.Error("bad rto accepted")
	}
	if err := run(&buf, "worst", false, "", "zzz"); err == nil {
		t.Error("bad rpo accepted")
	}
	// Infeasible constraints surface opt.ErrNoFeasible.
	if err := run(&buf, "worst", true, "1m", "1m"); err == nil {
		t.Error("infeasible constraints accepted")
	}
}
