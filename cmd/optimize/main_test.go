package main

import (
	"strings"
	"testing"
)

func TestRunWorstObjective(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, "worst", false, "", "", 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"minimize worst-scenario total cost",
		"vaulting policy              -> weekly",
		"backup policy                -> daily full",
		"virtual-snapshot",
		"$12.89M",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunExpectedObjective(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, "expected", false, "", "", 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "expected annual cost") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestRunLinkTuning(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, "worst", true, "", "", 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wan-links count") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestRunConstrained(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, "worst", true, "12h", "1h", 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "8 links") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, "alien", false, "", "", 0); err == nil {
		t.Error("unknown objective accepted")
	}
	if err := run(&buf, "worst", false, "zzz", "", 0); err == nil {
		t.Error("bad rto accepted")
	}
	if err := run(&buf, "worst", false, "", "zzz", 0); err == nil {
		t.Error("bad rpo accepted")
	}
	// Infeasible constraints surface opt.ErrNoFeasible.
	if err := run(&buf, "worst", true, "1m", "1m", 0); err == nil {
		t.Error("infeasible constraints accepted")
	}
	if err := run(&buf, "worst", false, "", "", -1); err == nil || !strings.Contains(err.Error(), "-workers") {
		t.Errorf("negative workers: err = %v", err)
	}
}

// TestRunWorkerCountsAgree: the CLI prints the identical report for any
// worker count.
func TestRunWorkerCountsAgree(t *testing.T) {
	var serial, par strings.Builder
	if err := run(&serial, "worst", false, "", "", 1); err != nil {
		t.Fatal(err)
	}
	if err := run(&par, "worst", false, "", "", 8); err != nil {
		t.Fatal(err)
	}
	if serial.String() != par.String() {
		t.Errorf("worker counts disagree:\n%s\n---\n%s", serial.String(), par.String())
	}
}
