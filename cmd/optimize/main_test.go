package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWorstObjective(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, options{objective: "worst"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"minimize worst-scenario total cost",
		"vaulting policy              -> weekly",
		"backup policy                -> daily full",
		"virtual-snapshot",
		"$12.89M",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunExpectedObjective(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, options{objective: "expected"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "expected annual cost") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestRunLinkTuning(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, options{objective: "worst", links: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wan-links count") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestRunConstrained(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, options{objective: "worst", links: true, rto: "12h", rpo: "1h"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "8 links") {
		t.Errorf("output:\n%s", buf.String())
	}
}

// TestRunExhaustive: streaming enumeration lands on the same Table 7
// optimum as coordinate descent and reports the winner's global
// candidate index.
func TestRunExhaustive(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, options{objective: "worst", exhaustive: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Exhaustively searching",
		"vaulting policy              -> weekly",
		"backup policy                -> daily full",
		"virtual-snapshot",
		"$12.89M",
		"candidate #",
		"12 evaluations",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunSharded: -shard implies exhaustive search, restricts the space,
// and prints the merge rule for combining shard winners.
func TestRunSharded(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, options{objective: "worst", shard: "0/2"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Shard 0/2", "lowest candidate index", "6 evaluations"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Both halves exist; the global optimum lives in exactly one of them
	// and carries a global (not shard-local) candidate index.
	var other strings.Builder
	if err := run(&other, options{objective: "worst", shard: "1/2"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(other.String(), "6 evaluations") {
		t.Errorf("second shard output:\n%s", other.String())
	}
}

// TestRunBudget: -budget refuses spaces larger than the cap.
func TestRunBudget(t *testing.T) {
	var buf strings.Builder
	err := run(&buf, options{objective: "worst", exhaustive: true, budget: 4})
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("budget 4 on a 12-candidate space: err = %v", err)
	}
	if err := run(&buf, options{objective: "worst", exhaustive: true, budget: 12}); err != nil {
		t.Errorf("budget 12 on a 12-candidate space: %v", err)
	}
}

// TestRunProfiles: -cpuprofile and -memprofile produce non-empty pprof
// files.
func TestRunProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var buf strings.Builder
	if err := run(&buf, options{objective: "worst", exhaustive: true, cpuProfile: cpu, memProfile: mem}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, options{objective: "alien"}); err == nil {
		t.Error("unknown objective accepted")
	}
	if err := run(&buf, options{objective: "worst", rto: "zzz"}); err == nil {
		t.Error("bad rto accepted")
	}
	if err := run(&buf, options{objective: "worst", rpo: "zzz"}); err == nil {
		t.Error("bad rpo accepted")
	}
	// Infeasible constraints surface opt.ErrNoFeasible.
	if err := run(&buf, options{objective: "worst", links: true, rto: "1m", rpo: "1m"}); err == nil {
		t.Error("infeasible constraints accepted")
	}
	if err := run(&buf, options{objective: "worst", workers: -1}); err == nil || !strings.Contains(err.Error(), "-workers") {
		t.Errorf("negative workers: err = %v", err)
	}
	for _, bad := range []string{"1", "a/b", "1/", "/2", "2/1x"} {
		if err := run(&buf, options{objective: "worst", shard: bad}); err == nil || !strings.Contains(err.Error(), "-shard") {
			t.Errorf("shard %q: err = %v", bad, err)
		}
	}
	// Out-of-range shards are rejected by the optimizer.
	if err := run(&buf, options{objective: "worst", shard: "2/2"}); err == nil {
		t.Error("out-of-range shard accepted")
	}
}

// TestRunWorkerCountsAgree: the CLI prints the identical report for any
// worker count, for both search strategies.
func TestRunWorkerCountsAgree(t *testing.T) {
	for _, exhaustive := range []bool{false, true} {
		var serial, par strings.Builder
		if err := run(&serial, options{objective: "worst", exhaustive: exhaustive, workers: 1}); err != nil {
			t.Fatal(err)
		}
		if err := run(&par, options{objective: "worst", exhaustive: exhaustive, workers: 8}); err != nil {
			t.Fatal(err)
		}
		if serial.String() != par.String() {
			t.Errorf("exhaustive=%v: worker counts disagree:\n%s\n---\n%s",
				exhaustive, serial.String(), par.String())
		}
	}
}

// TestRunMCTrials: -trials swaps the analytic expected objective for
// the Monte Carlo one; the run reports the winner's nines table and is
// deterministic (seeded, worker-count-independent).
func TestRunMCTrials(t *testing.T) {
	var a, b strings.Builder
	opts := options{objective: "expected", trials: 15, seed: 7, workers: 1}
	if err := run(&a, opts); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Monte Carlo expected annual cost (15 trials per candidate, seed 7)",
		"expected annual cost",
		"availability",
		"nines",
	} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("output missing %q:\n%s", want, a.String())
		}
	}
	opts.workers = 4
	if err := run(&b, opts); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("-trials output depends on worker count:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestRunMCTrialsErrors(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, options{objective: "worst", trials: 10}); err == nil || !strings.Contains(err.Error(), "-objective expected") {
		t.Errorf("-trials with worst objective: %v", err)
	}
	if err := run(&buf, options{objective: "expected", trials: 10, rto: "12h"}); err == nil || !strings.Contains(err.Error(), "-objective expected") {
		t.Errorf("-trials with -rto: %v", err)
	}
	if err := run(&buf, options{objective: "expected", trials: 10, exhaustive: true}); err == nil || !strings.Contains(err.Error(), "coordinate descent") {
		t.Errorf("-trials with -exhaustive: %v", err)
	}
	if err := run(&buf, options{objective: "expected", trials: 10, coordinator: "http://x"}); err == nil || !strings.Contains(err.Error(), "coordinate descent") {
		t.Errorf("-trials with -coordinator: %v", err)
	}
}
