// Command bench runs the performance-trajectory suite (internal/bench)
// and snapshots the results to a BENCH_<date>.json file, so the repo
// accumulates comparable before/after evidence commit over commit.
//
// Usage:
//
//	bench                       # full suite -> BENCH_<today>.json
//	bench -filter exhaustive    # only the optimizer-search cases
//	bench -out /tmp/b.json      # explicit snapshot path
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"time"

	"stordep/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")

	out := flag.String("out", "", "snapshot path (default BENCH_<date>.json)")
	filter := flag.String("filter", "", "run only cases whose name contains this substring")
	flag.Parse()

	if err := run(os.Stdout, *out, *filter, time.Now()); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, out, filter string, now time.Time) error {
	date := now.Format("2006-01-02")
	if out == "" {
		out = fmt.Sprintf("BENCH_%s.json", date)
	}

	results := bench.Run(filter, func(r bench.Result) {
		fmt.Fprintln(w, r.Format())
	})
	if len(results) == 0 {
		return fmt.Errorf("no benchmark matches filter %q", filter)
	}

	snap := bench.NewSnapshot(date, results)
	names := make([]string, 0, len(snap.Speedups))
	for name := range snap.Speedups {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%-40s %6.1fx\n", name, snap.Speedups[name])
	}
	if err := snap.Write(out); err != nil {
		return err
	}
	fmt.Fprintf(w, "snapshot written to %s\n", out)
	return nil
}
