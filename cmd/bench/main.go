// Command bench runs the performance-trajectory suite (internal/bench)
// and snapshots the results to a BENCH_<date>.json file, so the repo
// accumulates comparable before/after evidence commit over commit. It
// also diffs two snapshots, failing when a case regressed beyond a
// threshold — the guard CI or a release checklist can run.
//
// Usage:
//
//	bench                       # full suite -> BENCH_<today>.json
//	bench -filter exhaustive    # only the optimizer-search cases
//	bench -out /tmp/b.json      # explicit snapshot path
//	bench -cpuprofile b.pprof   # profile the suite (phase labels on)
//	bench -compare old.json new.json              # diff two snapshots
//	bench -compare -threshold 0.10 old.json new.json
//
// In -compare mode the two positional arguments are snapshot files;
// cases are matched by name and the command exits nonzero if any case's
// ns/op or allocs/op grew by more than -threshold (default 0.15 = 15%).
// Snapshots taken under different environments (num_cpu, gomaxprocs)
// compare with a warning rather than failing. When the new snapshot was
// taken with real parallelism available (num_cpu > 1, GOMAXPROCS != 1),
// -compare additionally gates the large exhaustive search's
// parallel-vs-serial speedup against -min-scaling (default 2.0; <= 0
// disarms) — a scaling regression fails the build even when no single
// case slowed down — and the pruned/large case's bound-pruning ratio
// against -min-prune (default 0.3; <= 0 disarms), so a bound that
// silently stops cutting the space fails the build too.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"stordep/internal/bench"
	"stordep/internal/opt"
)

// options carries the parsed command line.
type options struct {
	out        string
	filter     string
	compare    bool
	threshold  float64
	minScaling float64
	minPrune   float64
	cpuProfile string
	memProfile string
	args       []string
	now        time.Time
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")

	var o options
	flag.StringVar(&o.out, "out", "", "snapshot path (default BENCH_<date>.json)")
	flag.StringVar(&o.filter, "filter", "", "run only cases whose name contains this substring")
	flag.BoolVar(&o.compare, "compare", false, "diff two snapshot files (old.json new.json) instead of benchmarking")
	flag.Float64Var(&o.threshold, "threshold", 0.15, "regression threshold for -compare (fraction: 0.15 = 15%)")
	flag.Float64Var(&o.minScaling, "min-scaling", 2.0, "parallel-vs-serial speedup floor -compare enforces on multi-CPU snapshots (<= 0 disarms)")
	flag.Float64Var(&o.minPrune, "min-prune", 0.3, "bound-pruning ratio floor -compare enforces on the pruned/large case (<= 0 disarms)")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile (with optimizer phase labels) to this file")
	flag.StringVar(&o.memProfile, "memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	o.args = flag.Args()
	o.now = time.Now()

	if err := run(os.Stdout, o); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, o options) error {
	if o.compare {
		return runCompare(w, o)
	}

	if o.cpuProfile != "" {
		f, err := os.Create(o.cpuProfile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		opt.PhaseProfiling(true)
		defer func() {
			pprof.StopCPUProfile()
			opt.PhaseProfiling(false)
			f.Close()
		}()
	}

	date := o.now.Format("2006-01-02")
	out := o.out
	if out == "" {
		out = fmt.Sprintf("BENCH_%s.json", date)
	}

	results := bench.Run(o.filter, func(r bench.Result) {
		fmt.Fprintln(w, r.Format())
	})
	if len(results) == 0 {
		return fmt.Errorf("no benchmark matches filter %q", o.filter)
	}

	snap := bench.NewSnapshot(date, results)
	names := make([]string, 0, len(snap.Speedups))
	for name := range snap.Speedups {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%-40s %6.1fx\n", name, snap.Speedups[name])
	}
	if err := snap.Write(out); err != nil {
		return err
	}
	fmt.Fprintf(w, "snapshot written to %s\n", out)

	if o.memProfile != "" {
		f, err := os.Create(o.memProfile)
		if err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
	}
	return nil
}

// runCompare diffs two snapshots and errors (nonzero exit) on any
// regression beyond the threshold.
func runCompare(w io.Writer, o options) error {
	if len(o.args) != 2 {
		return fmt.Errorf("-compare needs exactly two snapshot paths (old.json new.json), got %d", len(o.args))
	}
	oldSnap, err := bench.ReadSnapshot(o.args[0])
	if err != nil {
		return err
	}
	newSnap, err := bench.ReadSnapshot(o.args[1])
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "comparing %s (%s) -> %s (%s), threshold %.0f%%\n",
		o.args[0], oldSnap.Date, o.args[1], newSnap.Date, 100*o.threshold)
	for _, warn := range bench.EnvMismatch(oldSnap, newSnap) {
		fmt.Fprintf(w, "warning: %s\n", warn)
	}
	regressed := 0
	for _, c := range bench.Compare(oldSnap, newSnap, o.threshold) {
		fmt.Fprintln(w, c.Format())
		if c.Regressed {
			regressed++
		}
	}
	if regressed > 0 {
		return fmt.Errorf("%d case(s) regressed beyond %.0f%%", regressed, 100*o.threshold)
	}
	fmt.Fprintf(w, "no regressions beyond %.0f%%\n", 100*o.threshold)
	if err := bench.ScalingGate(newSnap, o.minScaling); err != nil {
		return err
	}
	if ratio, ok := newSnap.Speedups[bench.ScalingKey]; ok {
		status := fmt.Sprintf("gated, floor %.2fx", o.minScaling)
		if o.minScaling <= 0 || newSnap.NumCPU <= 1 || newSnap.GOMAXPROCS == 1 {
			status = "not gated on this host"
		}
		fmt.Fprintf(w, "%s = %.2fx (%s)\n", bench.ScalingKey, ratio, status)
	}
	if err := bench.PruneGate(newSnap, o.minPrune); err != nil {
		return err
	}
	if ratio, ok := newSnap.Speedups[bench.PruneKey]; ok {
		status := fmt.Sprintf("gated, floor %.0f%%", 100*o.minPrune)
		if o.minPrune <= 0 {
			status = "not gated"
		}
		fmt.Fprintf(w, "%s = %.0f%% (%s)\n", bench.PruneKey, 100*ratio, status)
	}
	return nil
}
