package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"stordep/internal/bench"
)

func TestRunWritesSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	var buf strings.Builder
	// clone cases only: the fastest slice of the suite keeps this a unit
	// test rather than a benchmark session.
	o := options{out: path, filter: "clone/", now: time.Date(2026, 8, 5, 0, 0, 0, 0, time.UTC)}
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"clone/json", "clone/structural", "clone_structural_vs_json", "snapshot written"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap bench.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Date != "2026-08-05" || len(snap.Results) != 2 || snap.NumCPU < 1 {
		t.Errorf("snapshot = %+v", snap)
	}
	if snap.Speedups["clone_structural_vs_json"] <= 0 {
		t.Errorf("missing clone speedup: %v", snap.Speedups)
	}
}

func TestRunDefaultOutName(t *testing.T) {
	dir := t.TempDir()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(cwd)
	var buf strings.Builder
	o := options{filter: "clone/structural", now: time.Date(2026, 8, 5, 0, 0, 0, 0, time.UTC)}
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_2026-08-05.json")); err != nil {
		t.Errorf("default snapshot missing: %v", err)
	}
}

func TestRunRejectsUnmatchedFilter(t *testing.T) {
	var buf strings.Builder
	o := options{out: filepath.Join(t.TempDir(), "x.json"), filter: "no-such-case", now: time.Now()}
	if err := run(&buf, o); err == nil {
		t.Error("unmatched filter accepted")
	}
}

// TestRunProfiles: the profile flags produce non-empty pprof files
// alongside the snapshot.
func TestRunProfiles(t *testing.T) {
	dir := t.TempDir()
	o := options{
		out:        filepath.Join(dir, "snap.json"),
		filter:     "clone/structural",
		cpuProfile: filepath.Join(dir, "cpu.pprof"),
		memProfile: filepath.Join(dir, "mem.pprof"),
		now:        time.Date(2026, 8, 5, 0, 0, 0, 0, time.UTC),
	}
	var buf strings.Builder
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{o.cpuProfile, o.memProfile} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

// writeSnap writes a synthetic snapshot for compare tests.
func writeSnap(t *testing.T, path, date string, results []bench.Result) {
	t.Helper()
	s := &bench.Snapshot{Date: date, Results: results}
	if err := s.Write(path); err != nil {
		t.Fatal(err)
	}
}

func TestRunCompare(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeSnap(t, oldPath, "2026-08-01", []bench.Result{
		{Name: "a", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "b", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "gone", NsPerOp: 5, AllocsPerOp: 5},
	})
	writeSnap(t, newPath, "2026-08-05", []bench.Result{
		{Name: "a", NsPerOp: 1100, AllocsPerOp: 90}, // +10% ns: within threshold
		{Name: "b", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "added", NsPerOp: 7, AllocsPerOp: 7},
	})

	var buf strings.Builder
	o := options{compare: true, threshold: 0.15, args: []string{oldPath, newPath}}
	if err := run(&buf, o); err != nil {
		t.Fatalf("within-threshold compare failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"no regressions", "only in old snapshot", "only in new snapshot", "+10.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// A 30% slowdown beyond the 15% threshold exits nonzero.
	writeSnap(t, newPath, "2026-08-05", []bench.Result{
		{Name: "a", NsPerOp: 1300, AllocsPerOp: 100},
		{Name: "b", NsPerOp: 1000, AllocsPerOp: 100},
	})
	buf.Reset()
	err := run(&buf, o)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Errorf("regression not reported: err = %v", err)
	}
	if !strings.Contains(buf.String(), "REGRESSED") {
		t.Errorf("output missing REGRESSED marker:\n%s", buf.String())
	}

	// An allocation regression alone also fails.
	writeSnap(t, newPath, "2026-08-05", []bench.Result{
		{Name: "a", NsPerOp: 1000, AllocsPerOp: 200},
		{Name: "b", NsPerOp: 1000, AllocsPerOp: 100},
	})
	buf.Reset()
	if err := run(&buf, o); err == nil {
		t.Error("allocation regression not reported")
	}
}

// TestRunCompareScalingGate: -compare enforces the parallel speedup
// floor on multi-CPU snapshots, warns (without failing) on environment
// mismatches, and leaves single-CPU snapshots ungated.
func TestRunCompareScalingGate(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	results := []bench.Result{{Name: "a", NsPerOp: 1000, AllocsPerOp: 10}}
	write := func(path string, cpus, procs int, scaling float64) {
		s := &bench.Snapshot{
			Date: "2026-08-08", NumCPU: cpus, GOMAXPROCS: procs, Results: results,
		}
		if scaling > 0 {
			s.Speedups = map[string]float64{bench.ScalingKey: scaling}
		}
		if err := s.Write(path); err != nil {
			t.Fatal(err)
		}
	}

	// Healthy scaling on a 4-CPU host passes and is reported as gated.
	write(oldPath, 1, 1, 0)
	write(newPath, 4, 4, 2.4)
	var buf strings.Builder
	o := options{compare: true, threshold: 0.15, minScaling: 1.8, args: []string{oldPath, newPath}}
	if err := run(&buf, o); err != nil {
		t.Fatalf("healthy scaling failed: %v\n%s", err, buf.String())
	}
	for _, want := range []string{"warning: num_cpu differs", "2.40x", "gated, floor 1.80x"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output missing %q:\n%s", want, buf.String())
		}
	}

	// A scaling collapse fails even though no individual case regressed.
	write(newPath, 4, 4, 1.2)
	buf.Reset()
	if err := run(&buf, o); err == nil || !strings.Contains(err.Error(), "below") {
		t.Errorf("scaling regression not reported: err = %v", err)
	}

	// The same numbers from a single-CPU host pass: the gate stays
	// disarmed where parallelism was never available.
	write(newPath, 1, 1, 0.9)
	buf.Reset()
	if err := run(&buf, o); err != nil {
		t.Errorf("1-CPU snapshot gated: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "not gated on this host") {
		t.Errorf("output missing disarmed note:\n%s", buf.String())
	}
}

func TestRunCompareErrors(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, options{compare: true, threshold: 0.15, args: []string{"one.json"}}); err == nil {
		t.Error("single path accepted")
	}
	if err := run(&buf, options{compare: true, threshold: 0.15, args: []string{"/no/such.json", "/no/such2.json"}}); err == nil {
		t.Error("missing snapshot accepted")
	}
}
