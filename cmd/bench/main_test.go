package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"stordep/internal/bench"
)

func TestRunWritesSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	var buf strings.Builder
	// clone cases only: the fastest slice of the suite keeps this a unit
	// test rather than a benchmark session.
	if err := run(&buf, path, "clone/", time.Date(2026, 8, 5, 0, 0, 0, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"clone/json", "clone/structural", "clone_structural_vs_json", "snapshot written"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap bench.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Date != "2026-08-05" || len(snap.Results) != 2 || snap.NumCPU < 1 {
		t.Errorf("snapshot = %+v", snap)
	}
	if snap.Speedups["clone_structural_vs_json"] <= 0 {
		t.Errorf("missing clone speedup: %v", snap.Speedups)
	}
}

func TestRunDefaultOutName(t *testing.T) {
	dir := t.TempDir()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(cwd)
	var buf strings.Builder
	if err := run(&buf, "", "clone/structural", time.Date(2026, 8, 5, 0, 0, 0, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_2026-08-05.json")); err != nil {
		t.Errorf("default snapshot missing: %v", err)
	}
}

func TestRunRejectsUnmatchedFilter(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, filepath.Join(t.TempDir(), "x.json"), "no-such-case", time.Now()); err == nil {
		t.Error("unmatched filter accepted")
	}
}
