// Command simulate cross-validates a design's analytic worst-case bounds
// against the discrete-event retrieval-point simulator: it replays the
// design's RP propagation, injects failures at every sampling instant,
// and compares the measured data-loss distribution with the closed-form
// prediction.
//
// Usage:
//
//	stordep -export Baseline > baseline.json
//	simulate -design baseline.json -scope array
//	simulate -design baseline.json -scope site -weeks 40 -step 30m
//	simulate -design baseline.json -scope array -outage backup=1wk
//	simulate -design baseline.json -scope array -outage backup=1wk,vault=2d
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"stordep/internal/config"
	"stordep/internal/core"
	"stordep/internal/failure"
	"stordep/internal/hierarchy"
	"stordep/internal/sim"
	"stordep/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simulate: ")

	var (
		designPath = flag.String("design", "", "design JSON file (required)")
		scope      = flag.String("scope", "array", "failure scope (object|array|building|site|region)")
		target     = flag.String("target", "0h", "recovery target age")
		weeks      = flag.Int("weeks", 30, "simulation horizon in weeks")
		step       = flag.String("step", "1h", "failure sampling step")
		outage     = flag.String("outage", "", "degrade levels before sampling, comma-separated, e.g. backup=1wk or backup=1wk,vault=2d")
		rt         = flag.Bool("rt", false, "also study restore volumes/times per failure instant")
	)
	flag.Parse()

	if err := run(os.Stdout, *designPath, *scope, *target, *weeks, *step, *outage, *rt); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, designPath, scope, target string, weeks int, step, outage string, rt bool) error {
	if designPath == "" {
		return fmt.Errorf("-design is required")
	}
	design, err := config.Load(designPath)
	if err != nil {
		return err
	}
	sys, err := core.Build(design)
	if err != nil {
		return err
	}

	sc, err := parseScenario(scope, target)
	if err != nil {
		return err
	}
	surviving := sys.SurvivingLevels(sc)
	if len(surviving) == 0 {
		fmt.Fprintf(w, "No protection level survives a %s failure: the object is lost.\n", sc.Scope)
		return nil
	}

	chain := sys.Chain()
	simulator, err := sim.New(chain)
	if err != nil {
		return err
	}

	if weeks <= 0 {
		return fmt.Errorf("-weeks must be positive, got %d", weeks)
	}
	horizon := time.Duration(weeks) * units.Week
	stepDur, err := units.ParseDuration(step)
	if err != nil {
		return fmt.Errorf("bad -step: %w", err)
	}
	if stepDur <= 0 {
		return fmt.Errorf("-step must be positive, got %s", step)
	}

	// Analytic bound: the loss at the level source selection would pick,
	// shifted if outages are requested. Several comma-separated outages
	// degrade their levels simultaneously: all end two thirds into the
	// horizon, so sampling begins right after them, when exposure peaks.
	outages, err := parseOutages(chain, outage)
	if err != nil {
		return err
	}
	from := horizon * 2 / 3
	for _, o := range outages {
		if err := simulator.AddOutage(sim.Outage{Level: o.Level, From: from - o.Outage, To: from}); err != nil {
			return err
		}
	}
	analytic := time.Duration(-1)
	for _, j := range surviving {
		var loss time.Duration
		var ok bool
		if len(outages) > 0 {
			loss, ok = chain.CompoundDegradedLoss(j, outages, sc.TargetAge)
		} else {
			loss, ok = chain.WorstCaseLoss(j, sc.TargetAge)
		}
		if ok && (analytic < 0 || loss < analytic) {
			analytic = loss
		}
	}

	fmt.Fprintf(w, "Simulating %d weeks of RP propagation for %q (%s)\n",
		weeks, design.Name, chain)
	if err := simulator.Run(horizon); err != nil {
		return err
	}

	to := horizon - units.Week
	st, err := simulator.LossStudy(surviving, sc.TargetAge, from, to, stepDur)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n%s failure, target now-%s, %d instants sampled every %s:\n",
		sc.Scope, units.FormatDuration(sc.TargetAge), st.Samples, units.FormatDuration(stepDur))
	fmt.Fprintf(w, "  analytic worst-case loss: %.1f hr\n", analytic.Hours())
	fmt.Fprintf(w, "  simulated max loss:       %.1f hr\n", st.Max.Hours())
	fmt.Fprintf(w, "  simulated mean loss:      %.1f hr\n", st.Mean.Hours())
	if st.Unrecoverable > 0 {
		fmt.Fprintf(w, "  unrecoverable instants:   %d\n", st.Unrecoverable)
	}
	switch {
	case st.Max > analytic:
		fmt.Fprintf(w, "  VERDICT: BOUND VIOLATED by %.1f hr\n", (st.Max - analytic).Hours())
	case float64(st.Max) >= 0.9*float64(analytic):
		fmt.Fprintf(w, "  VERDICT: bound holds and is tight (%.0f%% reached)\n",
			100*float64(st.Max)/float64(analytic))
	default:
		fmt.Fprintf(w, "  VERDICT: bound holds with slack (%.0f%% reached)\n",
			100*float64(st.Max)/float64(analytic))
	}

	if rt {
		// Restore-volume distribution at the analytic plan's effective
		// transfer rate and fixed overhead.
		a, err := sys.Assess(sc)
		if err != nil {
			return err
		}
		if a.WholeObjectLost || len(a.Plan.Steps) == 0 {
			fmt.Fprintln(w, "\nNo recovery plan to study restore volumes against.")
			return nil
		}
		xfer := a.Plan.Steps[len(a.Plan.Steps)-1]
		fixed := a.RecoveryTime - units.Div(xfer.Size, xfer.Bandwidth)
		rs, err := simulator.RTStudy(design.Workload, surviving, sc.TargetAge,
			from, to, stepDur, xfer.Bandwidth, fixed)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\nRestore volumes at %v effective bandwidth (+%s fixed):\n",
			xfer.Bandwidth, units.FormatDuration(fixed.Round(time.Second)))
		fmt.Fprintf(w, "  min %v  mean %v  max %v\n", rs.MinVolume, rs.MeanVolume, rs.MaxVolume)
		fmt.Fprintf(w, "  mean restore %s, worst restore %s (analytic worst %.4g hr)\n",
			units.FormatDuration(rs.MeanTime.Round(time.Minute)),
			units.FormatDuration(rs.MaxTime.Round(time.Minute)),
			a.RecoveryTime.Hours())
	}
	return nil
}

// parseOutages parses a comma-separated list of level=duration pairs
// against the chain's level names.
func parseOutages(chain hierarchy.Chain, spec string) ([]hierarchy.LevelOutage, error) {
	if spec == "" {
		return nil, nil
	}
	var out []hierarchy.LevelOutage
	for _, part := range strings.Split(spec, ",") {
		name, durStr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad -outage %q, want level=duration", part)
		}
		level := chain.Index(name)
		if level == 0 {
			return nil, fmt.Errorf("unknown level %q", name)
		}
		dur, err := units.ParseDuration(durStr)
		if err != nil {
			return nil, fmt.Errorf("bad -outage duration: %w", err)
		}
		if dur <= 0 {
			return nil, fmt.Errorf("-outage duration must be positive, got %q", part)
		}
		out = append(out, hierarchy.LevelOutage{Level: level, Outage: dur})
	}
	return out, nil
}

func parseScenario(scope, target string) (failure.Scenario, error) {
	sc := failure.Scenario{}
	parsed, err := failure.ParseScope(scope)
	if err != nil {
		return sc, err
	}
	sc.Scope = parsed
	age, err := units.ParseDuration(target)
	if err != nil {
		return sc, fmt.Errorf("bad -target: %w", err)
	}
	sc.TargetAge = age
	return sc, nil
}
