package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stordep/internal/casestudy"
	"stordep/internal/config"
)

func writeBaseline(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := config.Save(path, casestudy.Baseline()); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunArrayScope(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, writeBaseline(t), "array", "0h", 30, "2h", "", false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"analytic worst-case loss: 217.0 hr",
		"simulated max loss:",
		"VERDICT: bound holds and is tight",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunObjectScope(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, writeBaseline(t), "object", "24h", 20, "1h", "", false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "analytic worst-case loss: 12.0 hr") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestRunWithOutage(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, writeBaseline(t), "array", "0h", 30, "2h", "backup=1wk", false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "analytic worst-case loss: 385.0 hr") {
		t.Errorf("degraded bound missing:\n%s", out)
	}
	if strings.Contains(out, "BOUND VIOLATED") {
		t.Errorf("degraded bound violated:\n%s", out)
	}
}

func TestRunWithCompoundOutage(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, writeBaseline(t), "array", "0h", 30, "2h", "split-mirror=12h,backup=1wk", false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "analytic worst-case loss: 397.0 hr") {
		t.Errorf("compound degraded bound missing:\n%s", out)
	}
	if strings.Contains(out, "BOUND VIOLATED") {
		t.Errorf("compound degraded bound violated:\n%s", out)
	}
}

func TestRunRejectsBadHorizonAndStep(t *testing.T) {
	path := writeBaseline(t)
	for _, tc := range []struct {
		weeks int
		step  string
		want  string
	}{
		{0, "1h", "-weeks must be positive"},
		{-3, "1h", "-weeks must be positive"},
		{10, "0h", "-step must be positive"},
		{10, "-1h", "-step must be positive"},
	} {
		var buf strings.Builder
		err := run(&buf, path, "array", "0h", tc.weeks, tc.step, "", false)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("weeks=%d step=%q: got error %v, want %q", tc.weeks, tc.step, err, tc.want)
		}
	}
}

func TestRunNoSurvivors(t *testing.T) {
	d := casestudy.Baseline()
	d.Levels = d.Levels[:2] // drop the vault: nothing survives a site loss
	path := filepath.Join(t.TempDir(), "d.json")
	if err := config.Save(path, d); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := run(&buf, path, "site", "0h", 10, "1h", "", false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "the object is lost") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, "", "array", "0h", 10, "1h", "", false); err == nil {
		t.Error("missing design accepted")
	}
	if err := run(&buf, filepath.Join(t.TempDir(), "nope.json"), "array", "0h", 10, "1h", "", false); err == nil {
		t.Error("absent file accepted")
	}
	path := writeBaseline(t)
	if err := run(&buf, path, "alien", "0h", 10, "1h", "", false); err == nil {
		t.Error("bad scope accepted")
	}
	if err := run(&buf, path, "array", "zzz", 10, "1h", "", false); err == nil {
		t.Error("bad target accepted")
	}
	if err := run(&buf, path, "array", "0h", 10, "zzz", "", false); err == nil {
		t.Error("bad step accepted")
	}
	if err := run(&buf, path, "array", "0h", 10, "1h", "nolevel", false); err == nil {
		t.Error("bad outage syntax accepted")
	}
	if err := run(&buf, path, "array", "0h", 10, "1h", "ghost=1wk", false); err == nil {
		t.Error("unknown outage level accepted")
	}
	if err := run(&buf, path, "array", "0h", 10, "1h", "backup=zzz", false); err == nil {
		t.Error("bad outage duration accepted")
	}
	if err := run(&buf, path, "array", "0h", 10, "1h", "backup=1wk,ghost=2d", false); err == nil {
		t.Error("unknown level in outage list accepted")
	}
	if err := run(&buf, path, "array", "0h", 10, "1h", "backup=1wk,vaulting", false); err == nil {
		t.Error("malformed pair in outage list accepted")
	}
	if err := run(&buf, path, "array", "0h", 10, "1h", "backup=0h", false); err == nil {
		t.Error("zero outage duration accepted")
	}
	// Corrupt design file.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&buf, bad, "array", "0h", 10, "1h", "", false); err == nil {
		t.Error("corrupt design accepted")
	}
}

func TestRunRTStudy(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, writeBaseline(t), "array", "0h", 25, "2h", "", true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Restore volumes at", "mean restore", "worst restore"} {
		if !strings.Contains(out, want) {
			t.Errorf("rt study missing %q:\n%s", want, out)
		}
	}
}
