// Command worker serves shard assignments from a distributed exhaustive
// design-space search (internal/dist). A coordinator — cmd/optimize
// -coordinator, or the dist.Coordinator API — POSTs self-contained JSON
// jobs to /v1/run; the worker evaluates its shard of the candidate space
// with the local streaming search (opt.ExhaustiveOpts) and streams
// NDJSON heartbeats while it works, then the shard's Solution. /v1/health
// reports liveness and the wire version.
//
// Usage:
//
//	worker                           # listen on 127.0.0.1:7700
//	worker -addr 0.0.0.0:7700        # accept remote coordinators
//	worker -workers 4 -heartbeat 2s
//
// Workers hold no state between jobs: any number can serve the same
// coordinator, and the merged answer is byte-identical to a
// single-process search however the shards land.
package main

import (
	"flag"
	"log"
	"net"
	"net/http"
	"time"

	"stordep/internal/dist"
)

// options carries the parsed command line.
type options struct {
	addr      string
	workers   int
	heartbeat time.Duration
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("worker: ")

	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:7700", "listen address")
	flag.IntVar(&o.workers, "workers", 0, "local evaluation goroutines per job (0 = all CPUs); any value returns the same solution")
	flag.DurationVar(&o.heartbeat, "heartbeat", time.Second, "progress heartbeat interval")
	flag.Parse()

	if o.workers < 0 {
		log.Fatalf("-workers must be non-negative, got %d", o.workers)
	}
	l, err := net.Listen("tcp", o.addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s (wire v%d)", l.Addr(), dist.Version)
	log.Fatal(serve(l, o))
}

// serve runs the worker protocol on an open listener (split from main so
// tests can bind port 0).
func serve(l net.Listener, o options) error {
	srv := &http.Server{
		Handler: dist.NewHandler(dist.HandlerOptions{
			Workers:        o.workers,
			HeartbeatEvery: o.heartbeat,
			Logf:           log.Printf,
		}),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return srv.Serve(l)
}
