// Command worker serves shard assignments from a distributed exhaustive
// design-space search (internal/dist). A coordinator — cmd/optimize
// -coordinator, or the dist.Coordinator API — POSTs self-contained JSON
// jobs to /v1/run; the worker evaluates its shard of the candidate space
// with the local streaming search (opt.ExhaustiveOpts) and streams
// NDJSON heartbeats while it works, then the shard's Solution.
//
// GET /v1/health reports liveness and load as JSON:
//
//	{
//	  "status": "ok",          // always "ok" when serving
//	  "version": 1,            // wire protocol version
//	  "uptimeSeconds": 12.5,   // time since the handler started
//	  "inflight": 0,           // jobs currently evaluating
//	  "evaluations": 6144      // cumulative candidates evaluated
//	}
//
// A dist.Registry probes this endpoint to admit, evict and readmit
// workers; version skew or a non-"ok" status fails the probe.
//
// Usage:
//
//	worker                           # listen on 127.0.0.1:7700
//	worker -addr 0.0.0.0:7700        # accept remote coordinators
//	worker -workers 4 -heartbeat 2s
//	worker -auth-token s3cret        # require HMAC-signed jobs
//
// With -auth-token, every job must carry a valid X-Stordep-Auth
// HMAC-SHA256 signature over its body (the coordinator signs with the
// same token) or it is rejected with HTTP 401 before evaluation, and
// every result streamed back is signed so the coordinator can verify it
// end to end.
//
// On SIGINT or SIGTERM the worker stops accepting jobs, drains what is
// in flight (bounded by -drain), and exits 0 — a rolling restart never
// turns into a coordinator-visible crash unless evaluation genuinely
// outlives the drain window.
//
// Workers hold no state between jobs: any number can serve the same
// coordinator, and the merged answer is byte-identical to a
// single-process search however the shards land.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"stordep/internal/dist"
)

// options carries the parsed command line.
type options struct {
	addr      string
	workers   int
	heartbeat time.Duration
	authToken string
	drain     time.Duration
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("worker: ")

	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:7700", "listen address")
	flag.IntVar(&o.workers, "workers", 0, "local evaluation goroutines per job (0 = all CPUs); any value returns the same solution")
	flag.DurationVar(&o.heartbeat, "heartbeat", time.Second, "progress heartbeat interval")
	flag.StringVar(&o.authToken, "auth-token", "", "shared secret; when set, unsigned or wrongly signed jobs are rejected")
	flag.DurationVar(&o.drain, "drain", 30*time.Second, "in-flight job drain window on SIGINT/SIGTERM")
	flag.Parse()

	if o.workers < 0 {
		log.Fatalf("-workers must be non-negative, got %d", o.workers)
	}
	l, err := net.Listen("tcp", o.addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s (wire v%d)", l.Addr(), dist.Version)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := serve(ctx, l, o); err != nil {
		log.Fatal(err)
	}
	log.Print("drained; bye")
}

// serve runs the worker protocol on an open listener until ctx is
// canceled, then shuts down gracefully: the listener closes, in-flight
// jobs drain within o.drain, and nil is returned so a signaled worker
// exits 0. Split from main so tests can bind port 0 and drive the
// shutdown path.
func serve(ctx context.Context, l net.Listener, o options) error {
	srv := &http.Server{
		Handler: dist.NewHandler(dist.HandlerOptions{
			Workers:        o.workers,
			HeartbeatEvery: o.heartbeat,
			AuthToken:      o.authToken,
			Logf:           log.Printf,
		}),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()

	select {
	case err := <-errc:
		// Serve only returns on listener failure; that is fatal.
		return err
	case <-ctx.Done():
	}
	log.Print("shutting down: draining in-flight jobs")
	drainCtx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
