package main

import (
	"context"
	"errors"
	"net"
	"net/http"
	"testing"
	"time"

	"stordep/internal/casestudy"
	"stordep/internal/dist"
	"stordep/internal/failure"
)

// TestServeSpeaksTheWorkerProtocol binds an ephemeral port, runs serve,
// and drives it through the coordinator's client: health check, then a
// real shard evaluation over the wire.
func TestServeSpeaksTheWorkerProtocol(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go serve(context.Background(), l, options{workers: 1, heartbeat: 10 * time.Millisecond, drain: time.Second}) //nolint:errcheck

	w := &dist.HTTPWorker{BaseURL: "http://" + l.Addr().String(), Name: "local"}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := w.Health(ctx); err != nil {
		t.Fatal(err)
	}

	spec := dist.RetCntKnobSpec("vaulting", []int{13, 26, 39})
	job, err := dist.NewJob(casestudy.Baseline(),
		[]dist.KnobSpec{spec},
		dist.ScenarioSpecs([]failure.Scenario{{Scope: failure.ScopeArray}, {Scope: failure.ScopeSite}}),
		dist.ObjectiveSpec{Kind: "worst"})
	if err != nil {
		t.Fatal(err)
	}
	job.Shard = dist.ShardSpec{Index: 0, Count: 2}

	var beats int
	res, err := w.Run(ctx, job, func(int64) { beats++ })
	if err != nil {
		t.Fatal(err)
	}
	if beats < 1 {
		t.Error("no heartbeats over the wire")
	}

	// The remote answer must equal local execution of the same shard.
	want, err := dist.ExecuteJob(job, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantData, err := want.Encode()
	if err != nil {
		t.Fatal(err)
	}
	gotData, err := res.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(wantData) != string(gotData) {
		t.Errorf("remote shard result differs from local:\nlocal  %s\nremote %s", wantData, gotData)
	}
}

func TestServeRejectsGarbage(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go serve(context.Background(), l, options{heartbeat: time.Second, drain: time.Second}) //nolint:errcheck

	resp, err := http.Post("http://"+l.Addr().String()+dist.RunPath, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty job: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestServeShutsDownGracefully: canceling the serve context drains the
// server and returns nil — the signaled worker exits 0, not via
// log.Fatal on http.ErrServerClosed.
func TestServeShutsDownGracefully(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, l, options{heartbeat: time.Second, drain: 5 * time.Second}) }()

	// Wait until it answers, then deliver the "signal".
	w := &dist.HTTPWorker{BaseURL: "http://" + l.Addr().String()}
	deadline := time.Now().Add(5 * time.Second)
	for {
		hctx, hcancel := context.WithTimeout(context.Background(), time.Second)
		err := w.Health(hctx)
		hcancel()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never became healthy: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not return after cancellation")
	}
}

// TestServeEnforcesAuthToken: a worker started with -auth-token rejects
// unsigned jobs and serves signed ones.
func TestServeEnforcesAuthToken(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go serve(context.Background(), l, options{heartbeat: time.Second, drain: time.Second, authToken: "hush"}) //nolint:errcheck

	spec := dist.RetCntKnobSpec("vaulting", []int{13, 26})
	job, err := dist.NewJob(casestudy.Baseline(),
		[]dist.KnobSpec{spec},
		dist.ScenarioSpecs([]failure.Scenario{{Scope: failure.ScopeArray}}),
		dist.ObjectiveSpec{Kind: "worst"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	unsigned := &dist.HTTPWorker{BaseURL: "http://" + l.Addr().String()}
	if _, err := unsigned.Run(ctx, job, nil); !errors.Is(err, dist.ErrUnauthenticated) {
		t.Errorf("unsigned job: err = %v, want dist.ErrUnauthenticated", err)
	}
	signed := &dist.HTTPWorker{BaseURL: "http://" + l.Addr().String(), AuthToken: "hush"}
	if _, err := signed.Run(ctx, job, nil); err != nil {
		t.Errorf("signed job: err = %v, want success", err)
	}
}
