package main

import (
	"context"
	"net"
	"net/http"
	"testing"
	"time"

	"stordep/internal/casestudy"
	"stordep/internal/dist"
	"stordep/internal/failure"
)

// TestServeSpeaksTheWorkerProtocol binds an ephemeral port, runs serve,
// and drives it through the coordinator's client: health check, then a
// real shard evaluation over the wire.
func TestServeSpeaksTheWorkerProtocol(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go serve(l, options{workers: 1, heartbeat: 10 * time.Millisecond}) //nolint:errcheck

	w := &dist.HTTPWorker{BaseURL: "http://" + l.Addr().String(), Name: "local"}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := w.Health(ctx); err != nil {
		t.Fatal(err)
	}

	spec := dist.RetCntKnobSpec("vaulting", []int{13, 26, 39})
	job, err := dist.NewJob(casestudy.Baseline(),
		[]dist.KnobSpec{spec},
		dist.ScenarioSpecs([]failure.Scenario{{Scope: failure.ScopeArray}, {Scope: failure.ScopeSite}}),
		dist.ObjectiveSpec{Kind: "worst"})
	if err != nil {
		t.Fatal(err)
	}
	job.Shard = dist.ShardSpec{Index: 0, Count: 2}

	var beats int
	res, err := w.Run(ctx, job, func(int64) { beats++ })
	if err != nil {
		t.Fatal(err)
	}
	if beats < 1 {
		t.Error("no heartbeats over the wire")
	}

	// The remote answer must equal local execution of the same shard.
	want, err := dist.ExecuteJob(job, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantData, err := want.Encode()
	if err != nil {
		t.Fatal(err)
	}
	gotData, err := res.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(wantData) != string(gotData) {
		t.Errorf("remote shard result differs from local:\nlocal  %s\nremote %s", wantData, gotData)
	}
}

func TestServeRejectsGarbage(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go serve(l, options{heartbeat: time.Second}) //nolint:errcheck

	resp, err := http.Post("http://"+l.Addr().String()+dist.RunPath, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty job: HTTP %d, want 400", resp.StatusCode)
	}
}
