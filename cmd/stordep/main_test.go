package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stordep/internal/failure"
)

func TestRunList(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, "", "", true, "", "", "", false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Baseline", "Weekly vault, F+I", "AsyncB mirror, 10 link(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestRunExportAndEvaluate(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, "", "Baseline", false, "", "", "", false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"name": "Baseline"`) {
		t.Fatalf("export output:\n%s", buf.String())
	}
	path := filepath.Join(t.TempDir(), "d.json")
	if err := os.WriteFile(path, []byte(buf.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	var eval strings.Builder
	if err := run(&eval, path, "", false, "", "0h", "", false); err != nil {
		t.Fatal(err)
	}
	out := eval.String()
	for _, want := range []string{"Table 5", "Table 6", "Figure 5", "217 hr", "Warnings:"} {
		if !strings.Contains(out, want) {
			t.Errorf("evaluation missing %q", want)
		}
	}
}

func TestRunSingleScope(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.json")
	var buf strings.Builder
	if err := run(&buf, "", "Baseline", false, "", "", "", false); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(buf.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var eval strings.Builder
	if err := run(&eval, path, "", false, "object", "24h", "1MB", false); err != nil {
		t.Fatal(err)
	}
	out := eval.String()
	if !strings.Contains(out, "split-mirror") || !strings.Contains(out, "12 hr") {
		t.Errorf("object scope evaluation:\n%s", out)
	}
	if strings.Contains(out, "site") && strings.Contains(out, "1429") {
		t.Error("single-scope mode evaluated extra scenarios")
	}
}

func TestRunErrors(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, "", "", false, "", "", "", false); err == nil {
		t.Error("no mode selected should fail")
	}
	if err := run(&buf, "", "Nope", false, "", "", "", false); err == nil {
		t.Error("unknown export should fail")
	}
	if err := run(&buf, filepath.Join(t.TempDir(), "missing.json"), "", false, "", "", "", false); err == nil {
		t.Error("missing design should fail")
	}
}

func TestBuildScenarios(t *testing.T) {
	scs, err := buildScenarios("", "", "")
	if err != nil || len(scs) != 3 {
		t.Fatalf("default scenarios = %v, %v", scs, err)
	}
	for _, name := range []string{"object", "array", "building", "site", "region"} {
		scs, err := buildScenarios(name, "1h", "2GB")
		if err != nil || len(scs) != 1 {
			t.Fatalf("%s: %v", name, err)
		}
		if !scs[0].Scope.Valid() {
			t.Errorf("%s produced invalid scope", name)
		}
	}
	if _, err := buildScenarios("alien", "", ""); err == nil {
		t.Error("unknown scope accepted")
	}
	if _, err := buildScenarios("site", "xx", ""); err == nil {
		t.Error("bad target accepted")
	}
	if _, err := buildScenarios("site", "1h", "xx"); err == nil {
		t.Error("bad size accepted")
	}
	sc, err := buildScenarios("array", "0h", "")
	if err != nil || sc[0].Scope != failure.ScopeArray {
		t.Errorf("array scope = %+v, %v", sc, err)
	}
}

func TestRunExplain(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, "", "Baseline", false, "", "", "", false); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "d.json")
	if err := os.WriteFile(path, []byte(buf.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var eval strings.Builder
	if err := run(&eval, path, "", false, "array", "0h", "", true); err != nil {
		t.Fatal(err)
	}
	out := eval.String()
	for _, want := range []string{"worst loss    = transfer lag + accW", "Level 3 (vaulting):"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}
