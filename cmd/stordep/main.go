// Command stordep evaluates the dependability of a storage system design.
//
// Usage:
//
//	stordep -export Baseline > baseline.json     # write a case-study design
//	stordep -list                                # list exportable designs
//	stordep -design baseline.json                # evaluate all three case-study scenarios
//	stordep -design baseline.json -scope site    # evaluate one failure scope
//	stordep -design baseline.json -scope object -target 24h -size 1MB
//
// The report includes normal-mode utilization (Table 5 layout), the
// worst-case recovery time and recent data loss per scenario (Table 6),
// and the overall cost breakdown (Figure 5).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"stordep/internal/casestudy"
	"stordep/internal/config"
	"stordep/internal/core"
	"stordep/internal/failure"
	"stordep/internal/report"
	"stordep/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("stordep: ")

	var (
		designPath = flag.String("design", "", "design JSON file to evaluate")
		export     = flag.String("export", "", "write a named case-study design as JSON to stdout")
		list       = flag.Bool("list", false, "list exportable case-study designs")
		scope      = flag.String("scope", "", "evaluate one failure scope (object|array|building|site|region)")
		target     = flag.String("target", "0h", "recovery target age (e.g. 24h)")
		size       = flag.String("size", "", "recover size override (e.g. 1MB); empty = whole object")
		explain    = flag.Bool("explain", false, "derive each level's worst-case timing term by term")
	)
	flag.Parse()

	if err := run(os.Stdout, *designPath, *export, *list, *scope, *target, *size, *explain); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, designPath, export string, list bool, scope, target, size string, explain bool) error {
	switch {
	case list:
		for _, d := range casestudy.WhatIfDesigns() {
			fmt.Fprintln(w, d.Name)
		}
		return nil
	case export != "":
		return exportDesign(w, export)
	case designPath != "":
		return evaluate(w, designPath, scope, target, size, explain)
	default:
		return fmt.Errorf("one of -design, -export or -list is required")
	}
}

func exportDesign(w io.Writer, name string) error {
	for _, d := range casestudy.WhatIfDesigns() {
		if d.Name == name {
			data, err := config.Marshal(d)
			if err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s\n", data)
			return err
		}
	}
	return fmt.Errorf("unknown design %q (try -list)", name)
}

func evaluate(w io.Writer, path, scope, target, size string, explain bool) error {
	design, err := config.Load(path)
	if err != nil {
		return err
	}
	sys, err := core.Build(design)
	if err != nil {
		return fmt.Errorf("building %s: %w", design.Name, err)
	}

	scenarios, err := buildScenarios(scope, target, size)
	if err != nil {
		return err
	}
	assessments, err := sys.AssessAll(scenarios)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "Design: %s\n\n", design.Name)
	if explain {
		fmt.Fprintln(w, sys.Chain().ExplainAll())
	}
	fmt.Fprintln(w, report.Table5(sys.Utilization()))
	fmt.Fprintln(w, report.Table6(assessments))
	fmt.Fprintln(w, report.Figure5(assessments))
	for _, a := range assessments {
		fmt.Fprintln(w, report.Figure4(a))
	}
	if warns := sys.Warnings(); len(warns) > 0 {
		fmt.Fprintln(w, "Warnings:")
		for _, warn := range warns {
			fmt.Fprintf(w, "  - %s\n", warn)
		}
	}
	return nil
}

func buildScenarios(scope, target, size string) ([]failure.Scenario, error) {
	if scope == "" {
		return failure.CaseStudyScenarios(), nil
	}
	sc := failure.Scenario{Name: scope}
	parsed, err := failure.ParseScope(scope)
	if err != nil {
		return nil, err
	}
	sc.Scope = parsed
	if target != "" {
		age, err := units.ParseDuration(target)
		if err != nil {
			return nil, fmt.Errorf("bad -target: %w", err)
		}
		sc.TargetAge = age
	}
	if size != "" {
		b, err := units.ParseByteSize(size)
		if err != nil {
			return nil, fmt.Errorf("bad -size: %w", err)
		}
		sc.RecoverSize = b
	}
	return []failure.Scenario{sc}, nil
}
