// Command whatif explores storage system design alternatives: it
// evaluates the paper's Table 7 design family (plus an optional WAN-link
// sweep), ranks the candidates by worst-scenario total cost, prints the
// Pareto frontier, and answers RTO/RPO feasibility queries.
//
// Usage:
//
//	whatif                          # rank the Table 7 designs
//	whatif -links 16                # add a 1..16 link mirror sweep
//	whatif -rto 12h -rpo 1h         # cheapest design meeting objectives
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"stordep/internal/casestudy"
	"stordep/internal/failure"
	"stordep/internal/report"
	"stordep/internal/units"
	"stordep/internal/whatif"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("whatif: ")

	var (
		links    = flag.Int("links", 0, "also sweep asyncB mirroring over 1..N links")
		rto      = flag.String("rto", "", "recovery time objective (e.g. 12h)")
		rpo      = flag.String("rpo", "", "recovery point objective (e.g. 1h)")
		degraded = flag.String("degraded", "", "also show a degraded-mode study for this outage (e.g. 1wk)")
		expected = flag.Bool("expected", false, "also rank by frequency-weighted expected annual cost")
	)
	flag.Parse()

	if err := run(os.Stdout, *links, *rto, *rpo, *degraded, *expected); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, links int, rto, rpo, degraded string, expected bool) error {
	designs := casestudy.WhatIfDesigns()
	if links > 0 {
		var counts []int
		for n := 2; n <= links; n++ {
			if n != 10 { // 1 and 10 are already in the Table 7 family
				counts = append(counts, n)
			}
		}
		designs = append(designs, whatif.Sweep(counts, casestudy.AsyncBMirror)...)
	}
	scenarios := []failure.Scenario{
		{Scope: failure.ScopeArray},
		{Scope: failure.ScopeSite},
	}
	results, err := whatif.Evaluate(designs, scenarios)
	if err != nil {
		return err
	}

	ranked := whatif.Rank(results)
	tbl := report.NewTable("Designs ranked by worst-scenario total cost",
		"Rank", "Design", "Outlays", "Worst total", "Array RT/DL", "Site RT/DL")
	for i, r := range ranked {
		if r.Err != nil {
			tbl.AddRow(fmt.Sprintf("%d", i+1), r.Design, "-", "infeasible: "+r.Err.Error())
			continue
		}
		tbl.AddRow(
			fmt.Sprintf("%d", i+1),
			r.Design,
			r.Outlays.String(),
			r.WorstTotal().String(),
			outcomeCell(r.Outcomes[0]),
			outcomeCell(r.Outcomes[1]),
		)
	}
	fmt.Fprintln(w, tbl.String())

	frontier := whatif.Pareto(results, 1)
	ptbl := report.NewTable("Pareto frontier (site disaster): recovery time vs data loss vs outlays",
		"Design", "RT", "DL", "Outlays")
	for _, p := range frontier {
		ptbl.AddRow(p.Design,
			units.FormatDuration(p.RecoveryTime.Round(units.Day/24/60)),
			units.FormatDuration(p.DataLoss),
			p.Outlays.String())
	}
	fmt.Fprintln(w, ptbl.String())

	if expected {
		fmt.Fprintln(w, report.ExpectedTable(ranked,
			whatif.RankExpected(results, whatif.TypicalFrequencies())))
	}

	if degraded != "" {
		outage, err := units.ParseDuration(degraded)
		if err != nil {
			return fmt.Errorf("bad -degraded: %w", err)
		}
		rows, err := whatif.DegradedStudy(casestudy.Baseline(),
			failure.Scenario{Scope: failure.ScopeArray}, []time.Duration{outage})
		if err != nil {
			return err
		}
		dtbl := report.NewTable(
			fmt.Sprintf("Degraded mode (baseline, array failure, technique down %s)", degraded),
			"Degraded level", "Healthy loss", "Degraded loss", "Extra penalty")
		for _, r := range rows {
			dtbl.AddRow(r.Level,
				fmt.Sprintf("%.0f hr", r.Healthy.Hours()),
				fmt.Sprintf("%.0f hr", r.Degraded.Hours()),
				r.ExtraPenalty.String())
		}
		fmt.Fprintln(w, dtbl.String())
	}

	if rto != "" || rpo != "" {
		obj := whatif.Objectives{RTO: units.Forever, RPO: units.Forever}
		if rto != "" {
			d, err := units.ParseDuration(rto)
			if err != nil {
				return fmt.Errorf("bad -rto: %w", err)
			}
			obj.RTO = d
		}
		if rpo != "" {
			d, err := units.ParseDuration(rpo)
			if err != nil {
				return fmt.Errorf("bad -rpo: %w", err)
			}
			obj.RPO = d
		}
		best, err := whatif.Cheapest(results, obj)
		if err != nil {
			fmt.Fprintf(w, "No design meets RTO %s / RPO %s under both scenarios.\n",
				orAny(rto), orAny(rpo))
			return nil
		}
		fmt.Fprintf(w, "Cheapest design meeting RTO %s / RPO %s: %s (outlays %v)\n",
			orAny(rto), orAny(rpo), best.Design, best.Outlays)
	}
	return nil
}

func outcomeCell(o whatif.Outcome) string {
	if o.Lost {
		return "object lost"
	}
	return fmt.Sprintf("%.3g hr / %.3g hr", o.RecoveryTime.Hours(), o.DataLoss.Hours())
}

func orAny(s string) string {
	if s == "" {
		return "any"
	}
	return s
}
