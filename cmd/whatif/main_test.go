package main

import (
	"strings"
	"testing"
)

func TestRunDefault(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, 0, "", "", "", false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"ranked by worst-scenario total cost",
		"AsyncB mirror, 1 link(s)",
		"Pareto frontier",
		"Weekly vault, daily F, snapshot",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// The 1-link mirror ranks first (the paper's conclusion).
	if !strings.Contains(out, "1     AsyncB mirror, 1 link(s)") {
		t.Errorf("rank 1 is not the 1-link mirror:\n%s", out)
	}
}

func TestRunWithObjectivesAndSweep(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, 12, "12h", "1h", "", false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Cheapest design meeting RTO 12h / RPO 1h:") {
		t.Errorf("objectives answer missing:\n%s", out)
	}
	if !strings.Contains(out, "AsyncB mirror, 12 link(s)") {
		t.Error("sweep designs missing")
	}
}

func TestRunInfeasibleObjectives(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, 0, "1m", "1m", "", false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "No design meets RTO 1m / RPO 1m") {
		t.Errorf("infeasible answer missing:\n%s", buf.String())
	}
}

func TestRunDegraded(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, 0, "", "", "1wk", false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Degraded mode", "385 hr", "$8.40M"} {
		if !strings.Contains(out, want) {
			t.Errorf("degraded study missing %q:\n%s", want, out)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, 0, "zzz", "", "", false); err == nil {
		t.Error("bad rto accepted")
	}
	if err := run(&buf, 0, "", "zzz", "", false); err == nil {
		t.Error("bad rpo accepted")
	}
	if err := run(&buf, 0, "", "", "zzz", false); err == nil {
		t.Error("bad degraded accepted")
	}
}

func TestRunExpectedRanking(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, 0, "", "", "", true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Expected annual") {
		t.Errorf("expected ranking missing:\n%s", out)
	}
}
