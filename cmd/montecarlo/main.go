// Command montecarlo estimates dependability "nines" for the paper's
// case-study designs by seeded Monte Carlo (internal/mc), printed next
// to the analytic worst-case bounds the framework computes for the same
// designs — the two views the paper keeps separate: what the imposed
// disaster costs at worst, and how often the sampled world actually
// gets there.
//
// Usage:
//
//	montecarlo                      # all case-study designs, 1000 trials
//	montecarlo -design Baseline     # one design
//	montecarlo -trials 10000        # tighter confidence intervals
//	montecarlo -seed 7 -workers 4   # any worker count: identical output
//	montecarlo -mission 2yr         # longer mission window per trial
//	montecarlo -wrong-recovery 2 -silent-nonwrite 2 -common-outage 1
//	                                # sample operator faults / correlated
//	                                # outages at annual rates
//
// Every campaign is deterministic in (seed, trials, mission): per-trial
// sub-seeds derive from the seed alone, so worker counts and trial
// sharding (internal/dist.RunMC) reproduce the output byte-for-byte.
// Each sampled trial is also checked against the analytic worst-case
// loss bound for its sampled fault scenario; the report's "violations"
// counter is the cross-model invariant and must read zero.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"stordep/internal/casestudy"
	"stordep/internal/failure"
	"stordep/internal/mc"
	"stordep/internal/units"
	"stordep/internal/whatif"
)

type options struct {
	design  string
	trials  int
	seed    int64
	workers int
	mission string
	op      mc.OpRates
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("montecarlo: ")

	var o options
	flag.StringVar(&o.design, "design", "", "run only the named case-study design (default: all)")
	flag.IntVar(&o.trials, "trials", 1000, "Monte Carlo trials per design")
	flag.Int64Var(&o.seed, "seed", 1, "campaign seed; output is a pure function of (seed, trials, mission)")
	flag.IntVar(&o.workers, "workers", 0, "trial workers (0 = all CPUs); any count gives identical output")
	flag.StringVar(&o.mission, "mission", "", "mission window per trial (e.g. 26wk, 2yr; default 1yr)")
	flag.Float64Var(&o.op.WrongRecovery, "wrong-recovery", 0, "annual rate of wrong-recovery operator faults (0 = off)")
	flag.Float64Var(&o.op.SilentNonWrite, "silent-nonwrite", 0, "annual rate of silent non-write windows (0 = off)")
	flag.Float64Var(&o.op.CommonOutage, "common-outage", 0, "annual rate of correlated all-level outages (0 = off)")
	flag.Parse()

	if err := run(os.Stdout, o); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, o options) error {
	designs := casestudy.WhatIfDesigns()
	if o.design != "" {
		kept := designs[:0]
		for _, d := range designs {
			if d.Name == o.design {
				kept = append(kept, d)
			}
		}
		if len(kept) == 0 {
			names := make([]string, len(designs))
			for i, d := range designs {
				names[i] = d.Name
			}
			return fmt.Errorf("unknown design %q; case-study designs: %v", o.design, names)
		}
		designs = kept
	}
	var mission time.Duration
	if o.mission != "" {
		d, err := units.ParseDuration(o.mission)
		if err != nil {
			return fmt.Errorf("bad -mission: %w", err)
		}
		mission = d
	}
	scenarios := []failure.Scenario{
		{Scope: failure.ScopeArray},
		{Scope: failure.ScopeSite},
	}

	for i, d := range designs {
		if i > 0 {
			fmt.Fprintln(w)
		}
		camp := &mc.Campaign{
			Design:  d,
			Seed:    o.seed,
			Trials:  o.trials,
			Workers: o.workers,
			Mission: mission,
			Op:      o.op,
		}
		rep, err := camp.Run()
		if err != nil {
			return err
		}
		fmt.Fprint(w, rep.String())

		// The analytic side of the ledger: worst-case recovery time and
		// data loss for each imposed scenario — the bounds every sampled
		// trial above was checked against.
		res := whatif.EvaluateOne(d, scenarios)
		if res.Err != nil {
			return fmt.Errorf("design %s: %w", d.Name, res.Err)
		}
		fmt.Fprintf(w, "  analytic worst case per imposed scenario:\n")
		for _, oc := range res.Outcomes {
			fmt.Fprintf(w, "    %-6s RT %-10v DL %-10v total %v\n",
				oc.Scenario.DisplayName(), oc.RecoveryTime.Round(time.Minute),
				oc.DataLoss.Round(time.Minute), oc.Total)
		}
		if rep.BoundViolations > 0 {
			return fmt.Errorf("design %s: %d sampled trials exceeded their analytic bound — cross-model invariant broken",
				d.Name, rep.BoundViolations)
		}
	}
	return nil
}
