package main

import (
	"strings"
	"testing"

	"stordep/internal/mc"
)

func TestRunSingleDesign(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, options{design: "Baseline", trials: 30, seed: 1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"design Baseline: 30 trials, mission 1yr, seed 1",
		"availability",
		"durability",
		"perf-availability",
		"nines",
		"violations 0",
		"analytic worst case per imposed scenario:",
		"array",
		"site",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunDeterministic: identical flags give byte-identical output for
// any worker count — the CLI face of the determinism contract.
func TestRunDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := run(&a, options{design: "Baseline", trials: 25, seed: 9, workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, options{design: "Baseline", trials: 25, seed: 9, workers: 8}); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("worker count changed the output:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestRunAllDesigns(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, options{trials: 10, seed: 2, mission: "26wk"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Baseline", "mission 26wk"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "analytic worst case"); n < 4 {
		t.Errorf("expected the full case-study family, saw %d designs", n)
	}
}

// TestRunOpRates: the operator-fault flags reach the campaign and the
// report grows the op lines.
func TestRunOpRates(t *testing.T) {
	var buf strings.Builder
	o := options{design: "Baseline", trials: 30, seed: 9,
		op: mc.OpRates{WrongRecovery: 2, SilentNonWrite: 2, CommonOutage: 1}}
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"operator faults", "correlated outages", "availability-ex-op", "violations 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, options{design: "nope", trials: 10}); err == nil || !strings.Contains(err.Error(), "unknown design") {
		t.Errorf("unknown design: %v", err)
	}
	if err := run(&buf, options{trials: 10, mission: "zzz"}); err == nil || !strings.Contains(err.Error(), "-mission") {
		t.Errorf("bad mission: %v", err)
	}
	if err := run(&buf, options{design: "Baseline", trials: 0}); err == nil {
		t.Error("zero trials accepted")
	}
}
