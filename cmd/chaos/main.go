// Command chaos runs randomized fault-injection campaigns against the
// dependability models: random designs, compound outage schedules in the
// simulator, and cross-model invariant checks, with seeded deterministic
// replay and minimal-counterexample repro files.
//
// Usage:
//
//	chaos -seed 1 -runs 100 -repro-dir out/
//	chaos -multi -seed 1 -runs 100 -repro-dir out/
//	chaos -multi -correlated -seed 1 -runs 100 -repro-dir out/
//	chaos -replay out/repro-seed1-run42.json
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"stordep/internal/chaos"
)

func main() {
	seed := flag.Int64("seed", 1, "campaign seed; identical seeds replay identical campaigns")
	runs := flag.Int("runs", 100, "number of randomized cases to generate and check")
	reproDir := flag.String("repro-dir", "", "directory for minimal-counterexample repro files")
	replay := flag.String("replay", "", "replay a repro JSON file (single or multi) instead of running a campaign")
	workers := flag.Int("workers", 0, "concurrent campaign runs (0 = all CPUs); any worker count replays the same digest")
	multi := flag.Bool("multi", false, "generate multi-object designs with recovery dependencies over a shared fleet")
	correlated := flag.Bool("correlated", false, "draw correlated failure events and operator faults (implies -multi)")
	flag.Parse()

	if err := run(os.Stdout, *seed, *runs, *reproDir, *replay, *workers, *multi, *correlated); err != nil {
		// Package errors already carry the "chaos:" prefix; flag errors
		// name their flag.
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// errViolations makes campaigns with violations exit nonzero after the
// summary has been printed.
var errViolations = errors.New("invariant violations found")

func run(w io.Writer, seed int64, runs int, reproDir, replay string, workers int, multi, correlated bool) error {
	if replay != "" {
		return replayFile(w, replay)
	}
	if runs <= 0 {
		return fmt.Errorf("-runs must be positive, got %d", runs)
	}
	if workers < 0 {
		return fmt.Errorf("-workers must be non-negative, got %d", workers)
	}
	c := &chaos.Campaign{Seed: seed, Runs: runs, ReproDir: reproDir, Workers: workers, Multi: multi, Correlated: correlated}
	sum, err := c.Run()
	if err != nil {
		return err
	}
	fmt.Fprint(w, sum.String())
	if len(sum.Violations) > 0 {
		return fmt.Errorf("%w: %d", errViolations, len(sum.Violations))
	}
	return nil
}

// replayFile sniffs the repro format (multi files carry a "multiDesign"
// key) and re-runs the matching invariant battery.
func replayFile(w io.Writer, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("chaos: %w", err)
	}
	var (
		violations []chaos.Violation
		meta       chaos.ReproMeta
	)
	if chaos.IsMultiRepro(data) {
		mcs, m, err := chaos.DecodeMultiRepro(data)
		if err != nil {
			return err
		}
		meta = m
		fmt.Fprintf(w, "replaying %s (multi, seed %d run %d, invariant %s)\n", path, meta.Seed, meta.Run, meta.Invariant)
		if violations, err = chaos.ReplayMulti(mcs); err != nil {
			return err
		}
	} else {
		cs, m, err := chaos.DecodeRepro(data)
		if err != nil {
			return err
		}
		meta = m
		fmt.Fprintf(w, "replaying %s (seed %d run %d, invariant %s)\n", path, meta.Seed, meta.Run, meta.Invariant)
		if violations, err = chaos.Replay(cs); err != nil {
			return err
		}
	}
	if len(violations) == 0 {
		fmt.Fprintln(w, "no violations reproduced")
		return nil
	}
	for _, v := range violations {
		fmt.Fprintf(w, "  [%s] %s\n", v.Invariant, v.Detail)
	}
	return fmt.Errorf("%w: %d", errViolations, len(violations))
}
