package main

import (
	"path/filepath"
	"strings"
	"testing"

	"stordep/internal/casestudy"
	"stordep/internal/chaos"
	"stordep/internal/failure"
	"stordep/internal/units"
)

func TestRunCampaign(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, 1, 10, "", "", 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"chaos campaign: seed 1, 10 runs", "violations:        0", "case digest:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunDeterministicOutput(t *testing.T) {
	var a, b strings.Builder
	if err := run(&a, 4, 6, "", "", 1); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, 4, 6, "", "", 8); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("same seed, different output:\n%s\n---\n%s", a.String(), b.String())
	}
}

func TestRunRejectsBadRuns(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, 1, 0, "", "", 0); err == nil {
		t.Error("zero runs accepted")
	}
	if err := run(&buf, 1, -5, "", "", 0); err == nil {
		t.Error("negative runs accepted")
	}
}

func TestRunRejectsNegativeWorkers(t *testing.T) {
	var buf strings.Builder
	err := run(&buf, 1, 10, "", "", -2)
	if err == nil || !strings.Contains(err.Error(), "-workers") {
		t.Errorf("negative workers: err = %v", err)
	}
}

func TestReplayCleanRepro(t *testing.T) {
	// A hand-written repro around the case-study baseline replays with no
	// violations and reports that.
	cs := &chaos.Case{
		Design:   casestudy.Baseline(),
		Scenario: failure.Scenario{Scope: failure.ScopeArray},
		Horizon:  40 * units.Week,
	}
	path := filepath.Join(t.TempDir(), "repro.json")
	meta := chaos.ReproMeta{Invariant: "loss-bound", Detail: "synthetic", Seed: 9, Run: 2}
	if err := chaos.SaveRepro(path, cs, meta); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := run(&buf, 0, 0, "", path, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "replaying") || !strings.Contains(out, "no violations reproduced") {
		t.Errorf("replay output:\n%s", out)
	}
}

func TestReplayMissingFile(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, 0, 0, "", filepath.Join(t.TempDir(), "nope.json"), 0); err == nil {
		t.Error("missing replay file accepted")
	}
}
