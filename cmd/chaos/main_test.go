package main

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"stordep/internal/casestudy"
	"stordep/internal/chaos"
	"stordep/internal/core"
	"stordep/internal/cost"
	"stordep/internal/device"
	"stordep/internal/failure"
	"stordep/internal/protect"
	"stordep/internal/units"
	"stordep/internal/workload"
)

func TestRunCampaign(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, 1, 10, "", "", 0, false, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"chaos campaign: seed 1, 10 runs", "violations:        0", "case digest:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunDeterministicOutput(t *testing.T) {
	var a, b strings.Builder
	if err := run(&a, 4, 6, "", "", 1, false, false); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, 4, 6, "", "", 8, false, false); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("same seed, different output:\n%s\n---\n%s", a.String(), b.String())
	}
}

func TestRunRejectsBadRuns(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, 1, 0, "", "", 0, false, false); err == nil {
		t.Error("zero runs accepted")
	}
	if err := run(&buf, 1, -5, "", "", 0, false, false); err == nil {
		t.Error("negative runs accepted")
	}
}

func TestRunRejectsNegativeWorkers(t *testing.T) {
	var buf strings.Builder
	err := run(&buf, 1, 10, "", "", -2, false, false)
	if err == nil || !strings.Contains(err.Error(), "-workers") {
		t.Errorf("negative workers: err = %v", err)
	}
}

func TestReplayCleanRepro(t *testing.T) {
	// A hand-written repro around the case-study baseline replays with no
	// violations and reports that.
	cs := &chaos.Case{
		Design:   casestudy.Baseline(),
		Scenario: failure.Scenario{Scope: failure.ScopeArray},
		Horizon:  40 * units.Week,
	}
	path := filepath.Join(t.TempDir(), "repro.json")
	meta := chaos.ReproMeta{Invariant: "loss-bound", Detail: "synthetic", Seed: 9, Run: 2}
	if err := chaos.SaveRepro(path, cs, meta); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := run(&buf, 0, 0, "", path, 0, false, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "replaying") || !strings.Contains(out, "no violations reproduced") {
		t.Errorf("replay output:\n%s", out)
	}
}

func TestRunMultiCampaign(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, 1, 8, "", "", 0, true, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"chaos campaign: seed 1, 8 runs", "violations:        0", "multi-dep-order=", "multi-critical-path="} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunMultiDeterministicOutput(t *testing.T) {
	var a, b strings.Builder
	if err := run(&a, 4, 6, "", "", 1, true, false); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, 4, 6, "", "", 8, true, false); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("same multi seed, different output:\n%s\n---\n%s", a.String(), b.String())
	}
}

func TestReplayMultiRepro(t *testing.T) {
	// A hand-written multi repro (two objects over the case-study fleet,
	// orders depending on catalog) is sniffed by its "multiDesign" key and
	// replays through the multi battery with no violations.
	base := casestudy.Baseline()
	small := &workload.Workload{
		Name:          "catalog",
		DataCap:       50 * units.GB,
		AvgAccessRate: 200 * units.KBPerSec,
		AvgUpdateRate: 100 * units.KBPerSec,
		BurstMult:     4,
		BatchCurve: []workload.BatchPoint{
			{Window: time.Minute, Rate: 90 * units.KBPerSec},
			{Window: 12 * time.Hour, Rate: 40 * units.KBPerSec},
		},
	}
	mcs := &chaos.MultiCase{
		Design: &core.MultiDesign{
			Name:         "replay-service",
			Requirements: cost.CaseStudyRequirements(),
			Devices:      base.Devices,
			Facility:     base.Facility,
			Objects: []core.ObjectSpec{
				{
					Name:     "catalog",
					Workload: small,
					Primary:  &protect.Primary{Array: device.NameDiskArray},
					Levels: []protect.Technique{
						&protect.Backup{InstanceName: "catalog-backup", SourceArray: device.NameDiskArray,
							Target: device.NameTapeLibrary, Pol: casestudy.BackupPolicy()},
					},
				},
				{
					Name:      "orders",
					Workload:  workload.Cello(),
					Primary:   &protect.Primary{Array: device.NameDiskArray},
					DependsOn: []string{"catalog"},
					Levels: []protect.Technique{
						&protect.SplitMirror{InstanceName: "orders-mirror", Array: device.NameDiskArray,
							Pol: casestudy.SplitMirrorPolicy()},
						&protect.Backup{InstanceName: "orders-backup", SourceArray: device.NameDiskArray,
							Target: device.NameTapeLibrary, Pol: casestudy.BackupPolicy()},
					},
				},
			},
		},
		Scenario: failure.Scenario{Scope: failure.ScopeArray},
		Horizon:  40 * units.Week,
	}
	path := filepath.Join(t.TempDir(), "multi-repro.json")
	if err := chaos.SaveMultiRepro(path, mcs, chaos.ReproMeta{Invariant: "multi-dep-order", Seed: 9}); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := run(&buf, 0, 0, "", path, 0, false, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "replaying") || !strings.Contains(out, "(multi,") ||
		!strings.Contains(out, "no violations reproduced") {
		t.Errorf("multi replay output:\n%s", out)
	}
}

func TestReplayMissingFile(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, 0, 0, "", filepath.Join(t.TempDir(), "nope.json"), 0, false, false); err == nil {
		t.Error("missing replay file accepted")
	}
}
