package main

import (
	"strings"
	"testing"
)

func TestRunAll(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, 0, 0, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table 2", "Table 3", "Table 4", "Table 5", "Table 6", "Table 7",
		"Figure 2", "Figure 3", "Figure 4", "Figure 5",
		"217 hr", "1429 hr", "split-mirror", "AsyncB mirror, 10 link(s)",
		"Design warnings:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("full output missing %q", want)
		}
	}
}

func TestRunSingleTable(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, 6, 0, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table 6") {
		t.Error("missing Table 6")
	}
	if strings.Contains(out, "Table 5") || strings.Contains(out, "Figure 5") {
		t.Error("single-table mode printed extra artifacts")
	}
}

func TestRunSingleFigure(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, 0, 5, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 5") {
		t.Error("missing Figure 5")
	}
	if strings.Contains(out, "Table 7") {
		t.Error("figure mode printed tables")
	}
}

func TestWhatIfRows(t *testing.T) {
	rows, err := whatIfRows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Array == nil || r.Site == nil {
			t.Errorf("%s missing assessments", r.Design)
		}
	}
}

func TestRunCSV(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, 6, 0, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Failure scope,Recovery source,Recovery time,Recent data loss") {
		t.Errorf("CSV header missing:\n%s", out)
	}
	if !strings.Contains(out, "array,backup,") {
		t.Errorf("CSV row missing:\n%s", out)
	}
}
