// Command paper regenerates every table and figure of the case study in
// "A Framework for Evaluating Storage System Dependability" (Keeton &
// Merchant, DSN 2004) from this repository's models.
//
// Usage:
//
//	paper                # print everything
//	paper -table 5       # one table (2..7)
//	paper -figure 5      # one figure (2..5)
//	paper -csv -table 7  # emit CSV instead of aligned text
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"stordep/internal/casestudy"
	"stordep/internal/core"
	"stordep/internal/failure"
	"stordep/internal/report"
	"stordep/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paper: ")

	table := flag.Int("table", 0, "print only this table (2..7)")
	figure := flag.Int("figure", 0, "print only this figure (2..5)")
	csv := flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
	flag.Parse()

	if err := run(os.Stdout, *table, *figure, *csv); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, table, figure int, csv bool) error {
	baseline := casestudy.Baseline()
	sys, err := core.Build(baseline)
	if err != nil {
		return fmt.Errorf("building baseline: %w", err)
	}
	assessments, err := sys.AssessAll(failure.CaseStudyScenarios())
	if err != nil {
		return fmt.Errorf("assessing baseline: %w", err)
	}

	all := table == 0 && figure == 0
	emit := func(s string) { fmt.Fprintln(w, s) }
	emitTable := func(t *report.Table) {
		if csv {
			fmt.Fprint(w, t.CSV())
			return
		}
		emit(t.String())
	}

	if all || table == 2 {
		emitTable(report.Table2Data(workload.Cello()))
	}
	if all || table == 3 {
		emitTable(report.Table3Data(baseline))
	}
	if all || table == 4 {
		emitTable(report.Table4Data(baseline))
	}
	if all || table == 5 {
		emitTable(report.Table5Data(sys.Utilization()))
	}
	if all || table == 6 {
		emitTable(report.Table6Data(assessments))
	}
	if all || figure == 5 {
		emit(report.Figure5(assessments))
	}
	if all || table == 7 {
		rows, err := whatIfRows()
		if err != nil {
			return err
		}
		emitTable(report.Table7Data(rows))
	}
	if all || figure == 2 {
		emit(report.Figure2(baseline))
	}
	if all || figure == 3 {
		emit(report.Figure3(sys.Chain()))
	}
	if all || figure == 4 {
		for _, a := range assessments {
			emit(report.Figure4(a))
		}
	}
	if warns := sys.Warnings(); (all || table == 3) && len(warns) > 0 {
		fmt.Fprintln(w, "Design warnings:")
		for _, warn := range warns {
			fmt.Fprintf(w, "  - %s\n", warn)
		}
	}
	return nil
}

func whatIfRows() ([]report.WhatIfRow, error) {
	arrSc := failure.Scenario{Scope: failure.ScopeArray}
	siteSc := failure.Scenario{Scope: failure.ScopeSite}
	var rows []report.WhatIfRow
	for _, d := range casestudy.WhatIfDesigns() {
		sys, err := core.Build(d)
		if err != nil {
			return nil, fmt.Errorf("building %s: %w", d.Name, err)
		}
		arr, err := sys.Assess(arrSc)
		if err != nil {
			return nil, fmt.Errorf("assessing %s: %w", d.Name, err)
		}
		site, err := sys.Assess(siteSc)
		if err != nil {
			return nil, fmt.Errorf("assessing %s: %w", d.Name, err)
		}
		rows = append(rows, report.WhatIfRow{Design: d.Name, Array: arr, Site: site})
	}
	return rows, nil
}
