// Command tracegen exercises the workload-measurement path of the
// framework: it generates a synthetic block-level update trace (the
// stand-in for the paper's measured cello trace), analyzes it at the
// paper's windows, and prints the resulting Table 2-style workload
// parameters.
//
// Usage:
//
//	tracegen                       # cello-like trace at 1/50 scale
//	tracegen -seed 7 -scale 20     # different seed and scale
//	tracegen -hours 8 -rate 512KB/s -blocks 100000
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"stordep/internal/report"
	"stordep/internal/trace"
	"stordep/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")

	var (
		seed   = flag.Int64("seed", 1, "generation seed")
		scale  = flag.Float64("scale", 50, "cello scale-down factor (rate and object size)")
		hours  = flag.Float64("hours", 0, "override trace duration in hours")
		rate   = flag.String("rate", "", "override average update rate (e.g. 512KB/s)")
		blocks = flag.Int64("blocks", 0, "override object size in 64KB blocks")
		out    = flag.String("o", "", "also write the generated trace as CSV to this file")
		in     = flag.String("i", "", "analyze an existing trace CSV instead of generating")
	)
	flag.Parse()

	if err := run(os.Stdout, *seed, *scale, *hours, *rate, *blocks, *out, *in); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, seed int64, scale, hours float64, rate string, blocks int64, out, in string) error {
	if in != "" {
		return analyzeFile(w, in)
	}
	cfg := trace.CelloLike(seed, scale)
	if hours > 0 {
		cfg.Duration = time.Duration(hours * float64(time.Hour))
		cfg.BurstPeriod = cfg.Duration / 8
	}
	if rate != "" {
		r, err := units.ParseRate(rate)
		if err != nil {
			return fmt.Errorf("bad -rate: %w", err)
		}
		cfg.AvgUpdateRate = r
	}
	if blocks > 0 {
		cfg.Blocks = blocks
	}

	fmt.Fprintf(w, "Generating %s of writes at %v over %d blocks of %v (seed %d)...\n",
		units.FormatDuration(cfg.Duration), cfg.AvgUpdateRate, cfg.Blocks, cfg.BlockSize, seed)
	tr, err := trace.Generate(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Generated %d writes (%v of updates).\n\n",
		len(tr.Records), units.ByteSize(len(tr.Records))*cfg.BlockSize)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := tr.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "Wrote trace CSV to %s.\n\n", out)
	}

	windows := []time.Duration{time.Minute, time.Hour, 12 * time.Hour}
	if cfg.Duration >= 2*units.Day {
		windows = append(windows, 24*time.Hour, 48*time.Hour)
	}
	var valid []time.Duration
	for _, win := range windows {
		if win <= cfg.Duration {
			valid = append(valid, win)
		}
	}
	analysis, err := trace.Analyze(tr, time.Minute, valid)
	if err != nil {
		return err
	}
	workload, err := analysis.Workload(fmt.Sprintf("synthetic-cello/%g", scale), analysis.AvgUpdateRate)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, report.Table2(workload))
	fmt.Fprintf(w, "measured peak %v over 1-minute windows (burst %.1fx)\n",
		analysis.PeakUpdateRate, analysis.BurstMult)
	return nil
}

// analyzeFile runs the analyzer over an existing trace CSV (converted
// from a real block trace or written earlier with -o).
func analyzeFile(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.ReadCSV(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Read %d writes spanning %s over %d blocks of %v.\n\n",
		len(tr.Records), units.FormatDuration(tr.Cfg.Duration), tr.Cfg.Blocks, tr.Cfg.BlockSize)
	var windows []time.Duration
	for _, win := range []time.Duration{time.Minute, time.Hour, 12 * time.Hour, 24 * time.Hour} {
		if win <= tr.Cfg.Duration {
			windows = append(windows, win)
		}
	}
	analysis, err := trace.Analyze(tr, time.Minute, windows)
	if err != nil {
		return err
	}
	workload, err := analysis.Workload(path, analysis.AvgUpdateRate)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, report.Table2(workload))
	fmt.Fprintf(w, "measured peak %v over 1-minute windows (burst %.1fx)\n",
		analysis.PeakUpdateRate, analysis.BurstMult)
	return nil
}
