package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefaults(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, 1, 400, 2, "", 0, "", ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Generating", "Generated", "Table 2", "measured peak", "batchUpdR(win)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunOverrides(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, 7, 100, 1, "128KB/s", 5000, "", ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "128.0KB/s") && !strings.Contains(out, "5000 blocks") {
		t.Errorf("overrides not reflected:\n%s", out)
	}
}

func TestRunBadRate(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, 1, 100, 1, "bogus", 0, "", ""); err == nil {
		t.Error("bad rate accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := run(&a, 42, 400, 1, "", 0, "", ""); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, 42, 400, 1, "", 0, "", ""); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different output")
	}
}

func TestRunWriteAndAnalyzeFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	var buf strings.Builder
	if err := run(&buf, 3, 300, 1, "", 0, path, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Wrote trace CSV") {
		t.Errorf("write confirmation missing:\n%s", buf.String())
	}
	var again strings.Builder
	if err := run(&again, 0, 0, 0, "", 0, "", path); err != nil {
		t.Fatal(err)
	}
	out := again.String()
	for _, want := range []string{"Read", "Table 2", "measured peak"} {
		if !strings.Contains(out, want) {
			t.Errorf("analysis missing %q:\n%s", want, out)
		}
	}
	if err := run(&again, 0, 0, 0, "", 0, "", filepath.Join(t.TempDir(), "nope.csv")); err == nil {
		t.Error("missing input accepted")
	}
}
