// Ablation benchmarks for the modeling conventions DESIGN.md §3 calls
// out. Each benchmark evaluates the case study under the adopted
// convention and its documented alternative, printing the headline metric
// both ways (once per run) so the sensitivity of the reproduction to each
// choice is visible in the bench log.
package stordep_test

import (
	"fmt"
	"testing"
	"time"

	"stordep/internal/casestudy"
	"stordep/internal/core"
	"stordep/internal/failure"
	"stordep/internal/protect"
	"stordep/internal/units"
)

// BenchmarkAblationRAIDOverhead compares the array's RAID-1 capacity
// doubling (adopted; reproduces Table 5's 87.4%) against flat capacity.
func BenchmarkAblationRAIDOverhead(b *testing.B) {
	variants := map[string]float64{"raid1-2x": 2, "flat-1x": 1}
	caps := map[string]float64{}
	for name, overhead := range variants {
		d := casestudy.Baseline()
		d.Devices[0].Spec.CapOverhead = overhead
		for i := 0; i < b.N; i++ {
			sys, err := core.Build(d)
			if err != nil {
				b.Fatal(err)
			}
			caps[name] = sys.Utilization().Cap
		}
	}
	b.StopTimer()
	printOnce(b, func() string {
		return fmt.Sprintf("array capUtil: raid1 %.1f%% (paper 87.4%%) vs flat %.1f%%",
			caps["raid1-2x"]*100, caps["flat-1x"]*100)
	})
}

// BenchmarkAblationSnapshotVsMirror compares the two PiT techniques'
// outlays and object-recovery metrics (the Table 7 "snapshot" move).
func BenchmarkAblationSnapshotVsMirror(b *testing.B) {
	mirror := casestudy.Baseline()
	snapshot := casestudy.Baseline()
	snapshot.Levels[0] = &protect.Snapshot{
		Array: "disk-array",
		Pol:   casestudy.SplitMirrorPolicy(),
	}
	out := map[string]units.Money{}
	for i := 0; i < b.N; i++ {
		for name, d := range map[string]*core.Design{"split-mirror": mirror, "snapshot": snapshot} {
			sys, err := core.Build(d)
			if err != nil {
				b.Fatal(err)
			}
			out[name] = sys.Outlays().Total()
		}
	}
	b.StopTimer()
	printOnce(b, func() string {
		return fmt.Sprintf("outlays: split-mirror %v vs snapshot %v (delta %v/yr)",
			out["split-mirror"], out["snapshot"], out["split-mirror"]-out["snapshot"])
	})
}

// BenchmarkAblationMirrorRetention sweeps the split-mirror retention
// count, showing the capacity/loss-coverage trade the retCnt knob buys.
func BenchmarkAblationMirrorRetention(b *testing.B) {
	type point struct {
		cap      float64
		coverage time.Duration
	}
	pts := map[int]point{}
	counts := []int{1, 2, 4}
	for i := 0; i < b.N; i++ {
		for _, ret := range counts {
			d := casestudy.Baseline()
			pol := casestudy.SplitMirrorPolicy()
			pol.RetCnt = ret
			pol.RetW = time.Duration(ret) * pol.Primary.AccW
			d.Levels[0] = &protect.SplitMirror{Array: "disk-array", Pol: pol}
			sys, err := core.Build(d)
			if err != nil {
				b.Fatal(err)
			}
			r := sys.Chain().GuaranteedRange(1)
			pts[ret] = point{cap: sys.Utilization().Cap, coverage: r.Oldest - r.Newest}
		}
	}
	b.StopTimer()
	printOnce(b, func() string {
		s := "mirror retention sweep:"
		for _, ret := range counts {
			s += fmt.Sprintf(" retCnt=%d: cap %.1f%%, rollback span %s;",
				ret, pts[ret].cap*100, units.FormatDuration(pts[ret].coverage))
		}
		return s
	})
}

// BenchmarkAblationVaultCadence sweeps the vault accumulation window
// (the Table 7 "weekly vault" move) against site-disaster loss.
func BenchmarkAblationVaultCadence(b *testing.B) {
	cadences := []time.Duration{4 * units.Week, 2 * units.Week, units.Week}
	losses := map[time.Duration]time.Duration{}
	site := failure.Scenario{Scope: failure.ScopeSite}
	for i := 0; i < b.N; i++ {
		for _, accW := range cadences {
			d := casestudy.Baseline()
			pol := casestudy.VaultPolicy()
			pol.Primary.AccW = accW
			pol.Primary.HoldW = 12 * time.Hour
			pol.RetCnt = int(3 * units.Year / accW)
			d.Levels[2] = &protect.Vaulting{
				BackupDevice: "tape-library", Vault: "tape-vault", Transport: "air-shipment",
				Pol: pol, BackupRetW: casestudy.BackupPolicy().RetW,
			}
			sys, err := core.Build(d)
			if err != nil {
				b.Fatal(err)
			}
			a, err := sys.Assess(site)
			if err != nil {
				b.Fatal(err)
			}
			losses[accW] = a.DataLoss
		}
	}
	b.StopTimer()
	printOnce(b, func() string {
		s := "vault cadence vs site loss:"
		for _, accW := range cadences {
			s += fmt.Sprintf(" %s -> %.0fh;", units.FormatDuration(accW), losses[accW].Hours())
		}
		return s
	})
}

// BenchmarkOptimizerTune measures the automated-design loop end to end
// (the Table 7 knob space: 2 x 3 x 2 options, coordinate descent).
func BenchmarkOptimizerTune(b *testing.B) {
	scenarios := []failure.Scenario{
		{Scope: failure.ScopeArray},
		{Scope: failure.ScopeSite},
	}
	knobs := optimizerKnobs()
	for i := 0; i < b.N; i++ {
		sol, err := tuneBaseline(knobs, scenarios)
		if err != nil {
			b.Fatal(err)
		}
		if sol.Choices[1].Option != "daily full" {
			b.Fatalf("optimizer diverged: %v", sol.Choices)
		}
	}
}
