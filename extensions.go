package stordep

import (
	"time"

	"stordep/internal/core"
	"stordep/internal/failure"
	"stordep/internal/whatif"
)

// This file re-exports the framework's extensions beyond the paper's core
// models: multi-object designs (§3.1.1's sketched extension),
// degraded-mode evaluation and failure-frequency weighting (both §5
// future work).

// Multi-object designs.
type (
	// MultiDesign evaluates several data objects sharing one device fleet.
	MultiDesign = core.MultiDesign
	// ObjectSpec is one object: workload, protection, and the objects its
	// recovery depends on.
	ObjectSpec = core.ObjectSpec
	// MultiSystem is a built multi-object design.
	MultiSystem = core.MultiSystem
	// ServiceAssessment is the business-service view of a failure: the
	// critical-path recovery time over the object dependency DAG and the
	// worst per-object loss.
	ServiceAssessment = core.ServiceAssessment
	// ObjectAssessment pairs one object's assessment with its effective
	// (dependency-gated) recovery time.
	ObjectAssessment = core.ObjectAssessment
)

// BuildMulti validates and builds a multi-object design.
func BuildMulti(md *MultiDesign) (*MultiSystem, error) { return core.BuildMulti(md) }

// What-if exploration.
type (
	// WhatIfResult is one candidate design's evaluation across scenarios.
	WhatIfResult = whatif.Result
	// Objectives bound worst-case recovery time (RTO) and loss (RPO).
	Objectives = whatif.Objectives
	// Frequencies gives failure scopes' expected occurrences per year.
	Frequencies = whatif.Frequencies
	// DegradedOutcome records how loss moves when a technique is down.
	DegradedOutcome = whatif.DegradedOutcome
)

// EvaluateDesigns assesses every candidate under every scenario.
func EvaluateDesigns(designs []*Design, scenarios []Scenario) ([]WhatIfResult, error) {
	return whatif.Evaluate(designs, scenarios)
}

// RankDesigns orders results by ascending worst-scenario total cost.
func RankDesigns(results []WhatIfResult) []WhatIfResult { return whatif.Rank(results) }

// CheapestMeeting returns the lowest-outlay design meeting the RTO/RPO
// objectives under every scenario.
func CheapestMeeting(results []WhatIfResult, obj Objectives) (WhatIfResult, error) {
	return whatif.Cheapest(results, obj)
}

// ExpectedAnnualCost returns outlays plus frequency-weighted expected
// penalties for one result.
func ExpectedAnnualCost(r WhatIfResult, freqs Frequencies) Money {
	return whatif.ExpectedAnnualCost(r, freqs)
}

// TypicalFrequencies returns a plausible enterprise failure-frequency
// prior (object corruption monthly ... regional disaster per 200 years).
func TypicalFrequencies() Frequencies { return whatif.TypicalFrequencies() }

// DegradedStudy evaluates a scenario with each protection level out of
// service for each outage duration: the marginal exposure of running with
// a broken technique.
func DegradedStudy(d *Design, sc Scenario, outages []time.Duration) ([]DegradedOutcome, error) {
	return whatif.DegradedStudy(d, sc, outages)
}

// Crossover binary-searches the hourly penalty rate at which design B's
// total cost under the scenario first drops below design A's — the
// sensitivity analysis behind Table 7's "ironic" thin-pipe conclusion.
func Crossover(a, b *Design, sc Scenario, maxPerHour, tolPerHour float64) (float64, error) {
	return whatif.Crossover(a, b, sc, maxPerHour, tolPerHour)
}

// ParetoFrontier returns the non-dominated designs for the scenario at
// the given index, sorted by ascending outlays.
func ParetoFrontier(results []WhatIfResult, scenarioIndex int) []whatif.Point {
	return whatif.Pareto(results, scenarioIndex)
}

// RankByExpectedCost orders designs by frequency-weighted expected annual
// cost.
func RankByExpectedCost(results []WhatIfResult, freqs Frequencies) []whatif.ExpectedRanking {
	return whatif.RankExpected(results, freqs)
}

// Compile-time checks that the façade's aliases stay assignable to the
// internal types they re-export.
var (
	_ = failure.Scenario(Scenario{})
	_ = core.Design(Design{})
)

// SensitivityRow is one input's tornado bar: scenario total cost with the
// input scaled down and up.
type SensitivityRow = whatif.SensitivityRow

// SensitivityStudy scales each model input (capacity, rates, burstiness,
// penalty rates) down and up by swing and reports the scenario total cost
// movement, widest bar first — which estimate the answer hinges on.
func SensitivityStudy(d *Design, sc Scenario, swing float64) ([]SensitivityRow, error) {
	return whatif.Sensitivity(d, sc, swing)
}
