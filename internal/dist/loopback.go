package dist

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// Fault is a Loopback worker's injected misbehavior for one attempt.
type Fault int

const (
	// FaultNone runs the job normally.
	FaultNone Fault = iota
	// FaultCrash fails the attempt with an error before evaluating.
	FaultCrash
	// FaultHang blocks until the attempt's context is canceled — a
	// worker that never responds.
	FaultHang
	// FaultMalformed answers with a structurally broken Result (wrong
	// shard index), which the coordinator must reject like an error.
	FaultMalformed
)

// ErrInjectedCrash is the error a FaultCrash attempt returns.
var ErrInjectedCrash = errors.New("dist: injected worker crash")

// Loopback is an in-process Worker that exercises the full wire
// protocol — the job and result both round-trip through their JSON
// encodings — without sockets, so the coordinator's dispatch, retry,
// speculation and merge logic is testable hermetically. Intercept
// injects faults per attempt.
type Loopback struct {
	// Name is the worker ID; required.
	Name string
	// Workers caps the local evaluation pool when the job itself does
	// not (job.Workers takes precedence).
	Workers int
	// HeartbeatEvery, when > 0, streams progress heartbeats on a ticker
	// while the job runs; an initial heartbeat is always sent so even
	// instant jobs report liveness once, matching the HTTP worker.
	HeartbeatEvery time.Duration
	// Intercept, when non-nil, decides this attempt's fault from the
	// decoded job. Called sequentially per worker (a Loopback runs one
	// attempt at a time), concurrently across workers.
	Intercept func(job *Job) Fault
	// HealthErr, when non-nil, decides the outcome of Health probes —
	// the hook a Registry (or a flapping ChaosWorker) exercises. May be
	// called concurrently with Run.
	HealthErr func() error
}

// ID implements Worker.
func (l *Loopback) ID() string { return l.Name }

// Health implements Prober: healthy unless HealthErr says otherwise.
func (l *Loopback) Health(ctx context.Context) error {
	if l.HealthErr != nil {
		return l.HealthErr()
	}
	return ctx.Err()
}

// Run implements Worker: encode the job, decode it back (exactly what a
// remote worker receives), execute the shard, and round-trip the result
// the same way.
func (l *Loopback) Run(ctx context.Context, job *Job, heartbeat func(evals int64)) (*Result, error) {
	data, err := job.Encode()
	if err != nil {
		return nil, err
	}
	decoded, err := DecodeJob(data)
	if err != nil {
		return nil, err
	}
	if decoded.Workers == 0 {
		decoded.Workers = l.Workers
	}

	fault := FaultNone
	if l.Intercept != nil {
		fault = l.Intercept(decoded)
	}
	switch fault {
	case FaultCrash:
		return nil, ErrInjectedCrash
	case FaultHang:
		<-ctx.Done()
		return nil, ctx.Err()
	}

	var progress atomic.Int64
	if heartbeat != nil {
		heartbeat(0)
		if l.HeartbeatEvery > 0 {
			hbCtx, stop := context.WithCancel(ctx)
			defer stop()
			go func() {
				t := time.NewTicker(l.HeartbeatEvery)
				defer t.Stop()
				for {
					select {
					case <-hbCtx.Done():
						return
					case <-t.C:
						heartbeat(progress.Load())
					}
				}
			}()
		}
	}

	res, err := ExecuteJob(decoded, &progress)
	if err != nil {
		return nil, err
	}
	if fault == FaultMalformed {
		bad := *res
		if bad.Shard.Count > 1 {
			// Answer for a shard nobody asked about.
			bad.Shard.Index = (bad.Shard.Index + 1) % bad.Shard.Count
		} else {
			// Single shard: break the result's structure instead (a
			// feasible result must carry a candidate index), so the
			// decode below fails like a garbled response would.
			bad.Feasible, bad.CandidateIndex = true, -1
		}
		res = &bad
	}
	encoded, err := res.Encode()
	if err != nil {
		return nil, err
	}
	return DecodeResult(encoded)
}
