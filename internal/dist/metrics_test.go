package dist

import (
	"strings"
	"testing"
	"time"
)

func TestMetricsWritePrometheus(t *testing.T) {
	var m Metrics
	m.ShardsDispatched.Store(7)
	m.ShardsCompleted.Store(5)
	m.ShardsRetried.Store(2)
	m.WorkerErrors.Store(2)
	now := time.Unix(1000, 0)
	m.WorkerSeen("b", now.Add(-3*time.Second))
	m.WorkerSeen("a", now.Add(-1*time.Second))
	// A stale signal must not move the gauge backwards.
	m.WorkerSeen("a", now.Add(-30*time.Second))

	var sb strings.Builder
	if err := m.WritePrometheus(&sb, now); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE stordep_dist_shards_dispatched_total counter",
		"stordep_dist_shards_dispatched_total 7",
		"stordep_dist_shards_completed_total 5",
		"stordep_dist_shards_retried_total 2",
		"stordep_dist_worker_errors_total 2",
		"stordep_dist_heartbeats_received_total 0",
		"# TYPE stordep_dist_worker_idle_seconds gauge",
		`stordep_dist_worker_idle_seconds{worker="a"} 1`,
		`stordep_dist_worker_idle_seconds{worker="b"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Workers sort deterministically.
	if strings.Index(out, `worker="a"`) > strings.Index(out, `worker="b"`) {
		t.Error("workers not sorted")
	}
}

func TestMetricsEmptyHasNoWorkerGauge(t *testing.T) {
	var m Metrics
	var sb strings.Builder
	if err := m.WritePrometheus(&sb, time.Now()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "worker_idle_seconds") {
		t.Error("no workers seen, but the idle gauge was emitted")
	}
}
