package dist

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
)

func TestJobRoundTrip(t *testing.T) {
	job := testJob(t)
	job.Shard = ShardSpec{Index: 2, Count: 5}
	job.Budget = 100
	job.Workers = 3
	job.Prune = true
	job.Incumbent = 1234.5

	data, err := job.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeJob(data)
	if err != nil {
		t.Fatal(err)
	}
	again, err := decoded.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Errorf("job round trip not byte-identical:\n%s\n%s", data, again)
	}
	if decoded.Shard != job.Shard || decoded.Budget != 100 || decoded.Workers != 3 {
		t.Errorf("round trip lost fields: %+v", decoded)
	}
	if !decoded.Prune || decoded.Incumbent != 1234.5 {
		t.Errorf("round trip lost pruning fields: %+v", decoded)
	}
	if len(decoded.Knobs) != len(job.Knobs) || len(decoded.Scenarios) != len(job.Scenarios) {
		t.Errorf("round trip lost knobs or scenarios: %+v", decoded)
	}
}

// mutateJob re-encodes the test job with one field overridden, for the
// validation table below.
func mutateJob(t *testing.T, job *Job, mutate func(m map[string]json.RawMessage)) []byte {
	t.Helper()
	data, err := job.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	mutate(m)
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestDecodeJobRejects(t *testing.T) {
	job := testJob(t)
	raw := func(s string) json.RawMessage { return json.RawMessage(s) }
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", []byte(""), ErrBadJob},
		{"truncated", func() []byte { d, _ := job.Encode(); return d[:len(d)/2] }(), ErrBadJob},
		{"not an object", []byte(`[1,2,3]`), ErrBadJob},
		{"version skew", mutateJob(t, job, func(m map[string]json.RawMessage) { m["version"] = raw("99") }), ErrVersion},
		{"version zero", mutateJob(t, job, func(m map[string]json.RawMessage) { delete(m, "version") }), ErrVersion},
		{"missing design", mutateJob(t, job, func(m map[string]json.RawMessage) { delete(m, "design") }), ErrBadJob},
		{"no knobs", mutateJob(t, job, func(m map[string]json.RawMessage) { m["knobs"] = raw("[]") }), ErrBadJob},
		{"no scenarios", mutateJob(t, job, func(m map[string]json.RawMessage) { delete(m, "scenarios") }), ErrBadJob},
		{"bad shard", mutateJob(t, job, func(m map[string]json.RawMessage) { m["shard"] = raw(`{"index":7,"count":3}`) }), ErrBadJob},
		{"negative shard", mutateJob(t, job, func(m map[string]json.RawMessage) { m["shard"] = raw(`{"index":-1,"count":3}`) }), ErrBadJob},
		{"negative budget", mutateJob(t, job, func(m map[string]json.RawMessage) { m["budget"] = raw("-1") }), ErrBadJob},
		{"negative workers", mutateJob(t, job, func(m map[string]json.RawMessage) { m["workers"] = raw("-2") }), ErrBadJob},
		{"negative incumbent", mutateJob(t, job, func(m map[string]json.RawMessage) { m["incumbent"] = raw("-0.5") }), ErrBadJob},
	}
	for _, tc := range cases {
		if _, err := DecodeJob(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestResultRoundTrip(t *testing.T) {
	job := testJob(t)
	job.Shard = ShardSpec{Index: 0, Count: 2}
	res, err := ExecuteJob(job, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.CandidateIndex < 0 || len(res.Design) == 0 {
		t.Fatalf("expected a feasible shard result, got %+v", res)
	}

	data, err := res.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeResult(data)
	if err != nil {
		t.Fatal(err)
	}
	again, err := decoded.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Errorf("result round trip not byte-identical:\n%s\n%s", data, again)
	}

	sol, err := decoded.Solution()
	if err != nil {
		t.Fatal(err)
	}
	if sol.CandidateIndex != res.CandidateIndex || float64(sol.Score) != res.Score {
		t.Errorf("rebuilt solution disagrees: %+v vs %+v", sol, res)
	}
	if sol.Design == nil || len(sol.Choices) != len(res.Choices) {
		t.Errorf("rebuilt solution lost design or choices: %+v", sol)
	}
}

func TestDecodeResultRejects(t *testing.T) {
	good := &Result{Version: Version, Shard: ShardSpec{Index: 1, Count: 4}, Feasible: false, Evaluations: 6, CandidateIndex: -1}
	base, err := good.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeResult(base); err != nil {
		t.Fatalf("valid infeasible result rejected: %v", err)
	}

	cases := []struct {
		name string
		r    Result
		want error
	}{
		{"feasible without index", Result{Feasible: true, CandidateIndex: -1, Design: json.RawMessage(`{}`)}, ErrBadResult},
		{"feasible without design", Result{Feasible: true, CandidateIndex: 3}, ErrBadResult},
		{"infeasible with index", Result{Feasible: false, CandidateIndex: 2}, ErrBadResult},
		{"infeasible zero index", Result{Feasible: false, CandidateIndex: 0}, ErrBadResult},
		{"negative evaluations", Result{Evaluations: -1, CandidateIndex: -1}, ErrBadResult},
		{"negative pruned", Result{Pruned: -1, CandidateIndex: -1}, ErrBadResult},
		{"negative bounds", Result{BoundsComputed: -3, CandidateIndex: -1}, ErrBadResult},
		{"bad shard", Result{Shard: ShardSpec{Index: 9, Count: 2}, CandidateIndex: -1}, ErrBadResult},
	}
	for _, tc := range cases {
		data, err := tc.r.Encode() // Encode stamps a valid version
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if _, err := DecodeResult(data); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}

	skewed := bytes.Replace(base, []byte(fmt.Sprintf(`"version":%d`, Version)), []byte(`"version":42`), 1)
	if _, err := DecodeResult(skewed); !errors.Is(err, ErrVersion) {
		t.Errorf("version skew: err = %v, want ErrVersion", err)
	}
	if _, err := DecodeResult([]byte(`{"ver`)); !errors.Is(err, ErrBadResult) {
		t.Error("truncated result should be ErrBadResult")
	}
}

func TestSolutionResultRejectsTuneSolutions(t *testing.T) {
	job := testJob(t)
	res, err := ExecuteJob(job, nil)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := res.Solution()
	if err != nil {
		t.Fatal(err)
	}
	sol.CandidateIndex = -1 // what opt.Tune produces
	if _, err := SolutionResult(sol, ShardSpec{}); !errors.Is(err, ErrBadResult) {
		t.Errorf("err = %v, want ErrBadResult for CandidateIndex -1", err)
	}
}
