package dist

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// WorkerState is a registered worker's membership state.
type WorkerState int

const (
	// StateLive workers are dispatched shards.
	StateLive WorkerState = iota
	// StateQuarantined workers are excluded until their backoff expires:
	// they missed health probes, failed repeatedly, or lost a K-way
	// validation vote.
	StateQuarantined
	// StateProbation workers have served their quarantine and await a
	// successful health probe before readmission.
	StateProbation
)

// String renders the state for logs and metrics.
func (s WorkerState) String() string {
	switch s {
	case StateLive:
		return "live"
	case StateQuarantined:
		return "quarantined"
	case StateProbation:
		return "probation"
	default:
		return fmt.Sprintf("WorkerState(%d)", int(s))
	}
}

// Prober is the optional health surface a Worker can expose. HTTPWorker
// probes GET /v1/health; ChaosWorker can flap it. Workers without a
// Prober are treated as always healthy — only coordinator-reported
// failures and validation verdicts can quarantine them.
type Prober interface {
	Health(ctx context.Context) error
}

// RegistryOptions configures a Registry. The zero value is usable.
type RegistryOptions struct {
	// ProbeInterval spaces health-probe rounds in Start. Default 5s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds each individual probe. Default 2s.
	ProbeTimeout time.Duration
	// EvictAfter is the consecutive failed probes before a live worker
	// is evicted into quarantine. Default 3.
	EvictAfter int
	// FailureLimit is the consecutive coordinator-reported failures
	// (crashes, timeouts, malformed results) before a worker is
	// quarantined. 0 disables failure-based quarantine, matching the
	// pre-registry coordinator: retries alone decide.
	FailureLimit int
	// QuarantineBackoff is the first quarantine's duration, doubling on
	// every repeat offense (capped at 64x). Default 1s.
	QuarantineBackoff time.Duration
	// ProbationProbes is how many consecutive healthy probes a worker in
	// probation needs before readmission. Default 1.
	ProbationProbes int
	// Metrics receives eviction/quarantine/readmission counters; nil
	// allocates one.
	Metrics *Metrics
	// Logf, when non-nil, receives one line per membership transition —
	// the quarantine log an operator greps for.
	Logf func(format string, args ...any)
}

// regEntry is one registered worker's membership record.
type regEntry struct {
	worker     Worker
	state      WorkerState
	probeFails int       // consecutive failed health probes while live
	failures   int       // consecutive coordinator-reported failures
	offenses   int       // quarantine count; drives the backoff doubling
	until      time.Time // quarantine expiry
	okProbes   int       // consecutive healthy probes while in probation
}

// Registry is a live view of the worker fleet: workers are added and
// removed dynamically, probed for health, evicted into quarantine on
// missed probes or repeated failures, and readmitted through probation
// once they prove healthy again. A Coordinator built with
// NewCoordinatorRegistry draws its dispatch set from the registry on
// every assignment, so membership can change mid-run.
type Registry struct {
	opts    RegistryOptions
	m       *Metrics
	probing atomic.Bool

	mu        sync.Mutex
	entries   map[string]*regEntry
	watchers  map[int]func()
	nextWatch int
}

// NewRegistry builds an empty registry with defaulted options.
func NewRegistry(opts RegistryOptions) *Registry {
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = 5 * time.Second
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = 2 * time.Second
	}
	if opts.EvictAfter <= 0 {
		opts.EvictAfter = 3
	}
	if opts.QuarantineBackoff <= 0 {
		opts.QuarantineBackoff = time.Second
	}
	if opts.ProbationProbes <= 0 {
		opts.ProbationProbes = 1
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	m := opts.Metrics
	if m == nil {
		m = &Metrics{}
	}
	return &Registry{opts: opts, m: m, entries: make(map[string]*regEntry), watchers: make(map[int]func())}
}

// Metrics returns the registry's instrumentation (shared with the
// coordinator when built through NewCoordinatorRegistry).
func (r *Registry) Metrics() *Metrics { return r.m }

// Add registers a worker as live. Duplicate IDs and empty IDs are
// rejected — an ID collision would corrupt the vote and exclusion
// ledgers keyed by it.
func (r *Registry) Add(w Worker) error {
	id := w.ID()
	if id == "" {
		return fmt.Errorf("dist: worker with empty ID")
	}
	r.mu.Lock()
	if _, dup := r.entries[id]; dup {
		r.mu.Unlock()
		return fmt.Errorf("dist: duplicate worker ID %q", id)
	}
	r.entries[id] = &regEntry{worker: w, state: StateLive}
	r.mu.Unlock()
	r.opts.Logf("registry: admitted worker %s", id)
	r.notify()
	return nil
}

// Remove deregisters a worker entirely; a no-op for unknown IDs.
func (r *Registry) Remove(id string) {
	r.mu.Lock()
	_, ok := r.entries[id]
	delete(r.entries, id)
	r.mu.Unlock()
	if ok {
		r.opts.Logf("registry: removed worker %s", id)
		r.notify()
	}
}

// Live returns the dispatchable workers, sorted by ID for determinism.
func (r *Registry) Live() []Worker {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Worker
	for _, e := range r.entries {
		if e.state == StateLive {
			out = append(out, e.worker)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// Members returns every registered worker regardless of state, sorted
// by ID. The coordinator sizes its exclusion-reset rule on this: a
// quarantined worker may return, so it still counts as a possible
// server of a shard.
func (r *Registry) Members() []Worker {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Worker, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e.worker)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// State reports a worker's membership state.
func (r *Registry) State(id string) (WorkerState, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	if !ok {
		return 0, false
	}
	return e.state, true
}

// IsLive reports whether the worker is currently dispatchable.
func (r *Registry) IsLive(id string) bool {
	s, ok := r.State(id)
	return ok && s == StateLive
}

// Watch registers a callback invoked (without the registry lock held)
// after every membership change: additions, removals, evictions,
// quarantines and readmissions. The coordinator uses it to wake blocked
// dispatch loops and adopt newly added workers mid-run. The returned
// function unsubscribes.
func (r *Registry) Watch(fn func()) (unwatch func()) {
	r.mu.Lock()
	id := r.nextWatch
	r.nextWatch++
	r.watchers[id] = fn
	r.mu.Unlock()
	return func() {
		r.mu.Lock()
		delete(r.watchers, id)
		r.mu.Unlock()
	}
}

func (r *Registry) notify() {
	r.mu.Lock()
	ws := make([]func(), 0, len(r.watchers))
	for _, fn := range r.watchers {
		ws = append(ws, fn)
	}
	r.mu.Unlock()
	for _, fn := range ws {
		fn()
	}
}

// ReportSuccess records a successful dispatch: the worker's consecutive
// failure count resets.
func (r *Registry) ReportSuccess(id string) {
	r.mu.Lock()
	if e, ok := r.entries[id]; ok {
		e.failures = 0
	}
	r.mu.Unlock()
}

// ReportFailure records a failed dispatch (error, timeout, malformed
// result). When FailureLimit consecutive failures accumulate, the
// worker is quarantined.
func (r *Registry) ReportFailure(id string) {
	r.mu.Lock()
	e, ok := r.entries[id]
	if !ok || e.state != StateLive {
		r.mu.Unlock()
		return
	}
	e.failures++
	limit := r.opts.FailureLimit
	trip := limit > 0 && e.failures >= limit
	var reason string
	if trip {
		reason = fmt.Sprintf("%d consecutive failures", e.failures)
		r.quarantineLocked(e, id, reason, &r.m.WorkersQuarantined)
	}
	r.mu.Unlock()
	if trip {
		r.notify()
	}
}

// Quarantine forcibly quarantines a worker — the coordinator's verdict
// for a byzantine minority vote. A no-op for unknown or already
// non-live workers.
func (r *Registry) Quarantine(id, reason string) {
	r.mu.Lock()
	e, ok := r.entries[id]
	if !ok || e.state != StateLive {
		r.mu.Unlock()
		return
	}
	r.quarantineLocked(e, id, reason, &r.m.WorkersQuarantined)
	r.mu.Unlock()
	r.notify()
}

// quarantineLocked moves a live entry into quarantine with exponential
// backoff and schedules its expiry. counter distinguishes health-based
// evictions from failure/byzantine quarantines.
func (r *Registry) quarantineLocked(e *regEntry, id, reason string, counter *atomic.Int64) {
	shift := e.offenses
	if shift > 6 {
		shift = 6
	}
	backoff := r.opts.QuarantineBackoff << shift
	e.state = StateQuarantined
	e.offenses++
	e.failures = 0
	e.probeFails = 0
	e.okProbes = 0
	e.until = time.Now().Add(backoff)
	counter.Add(1)
	r.opts.Logf("registry: quarantined worker %s for %v (offense %d): %s", id, backoff, e.offenses, reason)
	time.AfterFunc(backoff, func() { r.expire(id) })
}

// expire moves a quarantined worker whose backoff has passed to the
// next state: probation when health probing is active and the worker is
// probeable (a healthy probe must readmit it), directly back to live
// otherwise (nothing else ever could).
func (r *Registry) expire(id string) {
	r.mu.Lock()
	e, ok := r.entries[id]
	if !ok || e.state != StateQuarantined || time.Now().Before(e.until) {
		r.mu.Unlock()
		return
	}
	_, probeable := e.worker.(Prober)
	if probeable && r.probing.Load() {
		e.state = StateProbation
		e.okProbes = 0
		r.mu.Unlock()
		r.opts.Logf("registry: worker %s entered probation", id)
		r.notify()
		return
	}
	e.state = StateLive
	r.m.WorkersReadmitted.Add(1)
	r.mu.Unlock()
	r.opts.Logf("registry: readmitted worker %s (no probe surface)", id)
	r.notify()
}

// Probe runs one health-probe round: live probeable workers accumulate
// consecutive failures toward eviction, probation workers accumulate
// consecutive successes toward readmission. Probes run concurrently,
// each bounded by ProbeTimeout.
func (r *Registry) Probe(ctx context.Context) {
	type target struct {
		id    string
		p     Prober
		state WorkerState
	}
	r.mu.Lock()
	var targets []target
	for id, e := range r.entries {
		p, ok := e.worker.(Prober)
		if !ok {
			continue
		}
		if e.state == StateLive || e.state == StateProbation {
			targets = append(targets, target{id, p, e.state})
		}
	}
	r.mu.Unlock()

	results := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, t := range targets {
		wg.Add(1)
		go func(i int, t target) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, r.opts.ProbeTimeout)
			defer cancel()
			results[i] = t.p.Health(pctx)
		}(i, t)
	}
	wg.Wait()

	changed := false
	r.mu.Lock()
	for i, t := range targets {
		e, ok := r.entries[t.id]
		if !ok || e.state != t.state {
			continue // membership moved under us; skip the stale verdict
		}
		healthy := results[i] == nil
		switch e.state {
		case StateLive:
			if healthy {
				e.probeFails = 0
				continue
			}
			e.probeFails++
			if e.probeFails >= r.opts.EvictAfter {
				r.quarantineLocked(e, t.id,
					fmt.Sprintf("missed %d consecutive health probes: %v", e.probeFails, results[i]),
					&r.m.WorkersEvicted)
				changed = true
			}
		case StateProbation:
			if !healthy {
				r.quarantineLocked(e, t.id,
					fmt.Sprintf("failed probation probe: %v", results[i]),
					&r.m.WorkersEvicted)
				changed = true
				continue
			}
			e.okProbes++
			if e.okProbes >= r.opts.ProbationProbes {
				e.state = StateLive
				e.probeFails = 0
				r.m.WorkersReadmitted.Add(1)
				r.opts.Logf("registry: readmitted worker %s after %d healthy probes", t.id, e.okProbes)
				changed = true
			}
		}
	}
	r.mu.Unlock()
	if changed {
		r.notify()
	}
}

// Start runs Probe rounds every ProbeInterval until ctx is canceled.
// It marks probing active, which routes expired quarantines through
// probation instead of direct readmission.
func (r *Registry) Start(ctx context.Context) {
	r.probing.Store(true)
	defer r.probing.Store(false)
	t := time.NewTicker(r.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			r.Probe(ctx)
		}
	}
}
