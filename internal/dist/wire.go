// Package dist distributes an exhaustive design-space search across
// workers on other processes or hosts. It is the cross-host layer above
// the sharded streaming search of internal/opt: a coordinator partitions
// the candidate space into more shards than workers, dispatches each
// shard as a self-contained JSON job, retries failures with backoff,
// speculatively re-dispatches stragglers, and merges the shard winners
// with opt.MergeShards — so the distributed answer is byte-identical to
// a single-process opt.ExhaustiveOpts for any worker count, shard count,
// failure pattern, or arrival order.
//
// The wire format is versioned JSON. A Job carries everything a worker
// needs to evaluate its shard with no other context: the base design in
// the internal/config schema, serializable knob specifications (policy
// options travel as config-encoded policies), failure scenarios, the
// objective, and the shard assignment. A Result carries a shard's
// Solution back, again via the config schema, so independently run
// shards merge into exactly the Solution the unsharded search returns.
//
// Transports are pluggable behind the Worker interface: an HTTP worker
// (cmd/worker, NewHandler/HTTPWorker) streams NDJSON heartbeats while it
// evaluates, and an in-process Loopback runs the full encode/decode path
// hermetically — including injected crashes, hangs and malformed
// responses — without real sockets.
package dist

import (
	"encoding/json"
	"errors"
	"fmt"

	"stordep/internal/config"
	"stordep/internal/mc"
	"stordep/internal/opt"
	"stordep/internal/units"
)

// Version is the wire-format version this package speaks. Decoders
// reject any other value with ErrVersion: the coordinator and its
// workers must agree exactly, because a silent schema skew could change
// which candidate a shard evaluates.
const Version = 1

// Wire-format errors.
var (
	// ErrVersion marks a version-skewed message.
	ErrVersion = errors.New("dist: wire version mismatch")
	// ErrBadJob marks a structurally invalid job.
	ErrBadJob = errors.New("dist: invalid job")
	// ErrBadResult marks a structurally invalid shard result.
	ErrBadResult = errors.New("dist: invalid result")
)

// ShardSpec is the wire form of opt.Shard. The zero value means "the
// whole space".
type ShardSpec struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// Shard converts to the search-layer type.
func (s ShardSpec) Shard() opt.Shard { return opt.Shard{Index: s.Index, Count: s.Count} }

// KnobSpec is a serializable knob description. Knobs themselves carry
// Apply closures, so the wire format names a built-in constructor plus
// its parameters instead; BuildKnobs rebuilds the closure on the worker.
// Which option fields are used depends on Kind:
//
//	policy   Target level; Names + Policies (config policy schema)
//	pit      Target level (split-mirror vs virtual-snapshot)
//	accw     Target level; Durations ("24h", "4wk")
//	retcnt   Target level; Ints
//	links    Target device; Ints
type KnobSpec struct {
	Kind      string            `json:"kind"`
	Target    string            `json:"target"`
	Names     []string          `json:"names,omitempty"`
	Policies  []json.RawMessage `json:"policies,omitempty"`
	Durations []string          `json:"durations,omitempty"`
	Ints      []int             `json:"ints,omitempty"`
}

// ScenarioSpec is the wire form of failure.Scenario.
type ScenarioSpec struct {
	Name        string `json:"name,omitempty"`
	Scope       string `json:"scope"`
	TargetAge   string `json:"targetAge,omitempty"`
	RecoverSize string `json:"recoverSize,omitempty"`
}

// ObjectiveSpec selects the scoring rule. Kind is one of "worst"
// (worst-scenario total cost), "expected" (expected annual cost under
// whatif.TypicalFrequencies), or "constrained" (cheapest outlays meeting
// the RTO/RPO durations; empty means unconstrained on that axis).
type ObjectiveSpec struct {
	Kind string `json:"kind"`
	RTO  string `json:"rto,omitempty"`
	RPO  string `json:"rpo,omitempty"`
}

// MCSpec turns a job into a Monte Carlo trial-sharding assignment
// instead of a candidate-space search: the worker samples the trial
// range its Shard selects (opt.Shard bounds semantics over Trials) from
// the campaign the spec describes. Per-trial sub-seeds derive from Seed
// alone, so any sharding reproduces the single-process trial sequence
// byte-identically — which also means K-way cross-validation works
// unchanged: honest shard answers are byte-identical and a disagreeing
// vote is a lie.
type MCSpec struct {
	// Seed is the campaign seed.
	Seed int64 `json:"seed"`
	// Trials is the full campaign's trial count; the job's Shard selects
	// the contiguous range this worker samples.
	Trials int `json:"trials"`
	// Mission is the per-trial mission window in the units duration
	// syntax; empty means the engine default (one year).
	Mission string `json:"mission,omitempty"`
}

// Validate checks the spec's parameters.
func (s *MCSpec) Validate() error {
	if s.Trials <= 0 {
		return fmt.Errorf("%w: Monte Carlo job needs a positive trial count, got %d", ErrBadJob, s.Trials)
	}
	if s.Mission != "" {
		if _, err := units.ParseDuration(s.Mission); err != nil {
			return fmt.Errorf("%w: Monte Carlo mission: %v", ErrBadJob, err)
		}
	}
	return nil
}

// Job is one self-contained shard assignment: everything a worker needs
// to evaluate its slice of the candidate space.
type Job struct {
	Version int `json:"version"`
	// Design is the base design in the internal/config schema.
	Design    json.RawMessage `json:"design"`
	Knobs     []KnobSpec      `json:"knobs"`
	Scenarios []ScenarioSpec  `json:"scenarios"`
	Objective ObjectiveSpec   `json:"objective"`
	Shard     ShardSpec       `json:"shard"`
	// Budget bounds the total space size, as in opt.ExhaustiveOptions.
	Budget int `json:"budget,omitempty"`
	// Workers hints the worker's local pool size; 0 means all CPUs. Any
	// value returns the same Solution.
	Workers int `json:"workers,omitempty"`
	// Prune enables bound-guided subtree pruning on the worker (the
	// admissible floor is derived from Objective, so no extra wire state
	// is needed). The merged Solution is byte-identical either way; only
	// the pruned-vs-assessed split in the Result changes.
	Prune bool `json:"prune,omitempty"`
	// Incumbent, when > 0, seeds the worker's pruning incumbent with a
	// score already achieved by a validated shard of the same search, so
	// later dispatches prune harder. The coordinator pins one incumbent
	// per shard (at first dispatch) because the shard's Result depends on
	// it — K-way validation votes must see identical jobs.
	Incumbent float64 `json:"incumbent,omitempty"`
	// MC, when set, makes this a Monte Carlo trial-sharding job: Knobs,
	// Scenarios and Objective are absent and the worker samples trials
	// instead of evaluating candidates.
	MC *MCSpec `json:"mc,omitempty"`
}

// Encode marshals the job, stamping the current wire version.
func (j *Job) Encode() ([]byte, error) {
	stamped := *j
	stamped.Version = Version
	data, err := json.Marshal(&stamped)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadJob, err)
	}
	return data, nil
}

// DecodeJob unmarshals and structurally validates a job. The design and
// knob contents are validated later, by BuildKnobs and config.Unmarshal,
// so a decoded job may still fail to execute — but it can never panic
// the worker.
func DecodeJob(data []byte) (*Job, error) {
	var j Job
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadJob, err)
	}
	if j.Version != Version {
		return nil, fmt.Errorf("%w: job version %d, want %d", ErrVersion, j.Version, Version)
	}
	if len(j.Design) == 0 {
		return nil, fmt.Errorf("%w: missing design", ErrBadJob)
	}
	if j.MC != nil {
		if err := j.MC.Validate(); err != nil {
			return nil, err
		}
		if len(j.Knobs) != 0 || len(j.Scenarios) != 0 {
			return nil, fmt.Errorf("%w: Monte Carlo job carries search knobs or scenarios", ErrBadJob)
		}
	} else {
		if len(j.Knobs) == 0 {
			return nil, fmt.Errorf("%w: no knobs", ErrBadJob)
		}
		if len(j.Scenarios) == 0 {
			return nil, fmt.Errorf("%w: no scenarios", ErrBadJob)
		}
	}
	if err := j.Shard.Shard().Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadJob, err)
	}
	if j.Budget < 0 || j.Workers < 0 {
		return nil, fmt.Errorf("%w: negative budget or workers", ErrBadJob)
	}
	if j.Incumbent < 0 {
		return nil, fmt.Errorf("%w: negative pruning incumbent", ErrBadJob)
	}
	return &j, nil
}

// ChoiceSpec is the wire form of opt.Choice.
type ChoiceSpec struct {
	Knob   string `json:"knob"`
	Option string `json:"option"`
}

// Result is one shard's answer. A shard whose slice contains no feasible
// candidate (or no candidates at all) reports Feasible false with its
// evaluation count intact — the coordinator still needs that count for
// the merged total to match the unsharded search.
type Result struct {
	Version int       `json:"version"`
	Shard   ShardSpec `json:"shard"`
	// Feasible reports whether the shard found any candidate scoring
	// below +Inf. The solution fields below are only present when true.
	Feasible bool `json:"feasible"`
	// Evaluations counts candidates actually assessed; Pruned counts
	// candidates retired wholesale by an admissible bound without being
	// assessed. Their sum is the shard's slice size, so merged totals
	// stay honest whether or not the worker pruned.
	Evaluations    int `json:"evaluations"`
	Pruned         int `json:"pruned,omitempty"`
	BoundsComputed int `json:"boundsComputed,omitempty"`
	MemoHits       int `json:"memoHits,omitempty"`
	// CandidateIndex is the winner's global index (see opt.Solution);
	// -1 when infeasible.
	CandidateIndex int          `json:"candidateIndex"`
	Score          float64      `json:"score,omitempty"`
	Choices        []ChoiceSpec `json:"choices,omitempty"`
	// Design is the winning design in the internal/config schema.
	Design json.RawMessage `json:"design,omitempty"`
	// MC carries a Monte Carlo shard's observations (Feasible is false
	// and CandidateIndex -1 — a trial shard has no candidate to win).
	MC *MCResult `json:"mc,omitempty"`
}

// MCResult is one Monte Carlo shard's sampled observations.
type MCResult struct {
	// Lo, Hi is the half-open trial range sampled, in global trial
	// indices of the campaign.
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Obs holds the per-trial observations, in trial order.
	Obs []mc.Obs `json:"obs"`
	// Digest is mc.Digest(Obs). Decoders and merges recompute it, so a
	// payload corrupted in transit (or truncated by a buggy worker) can
	// never fold into an estimate.
	Digest uint64 `json:"digest"`
}

// Validate checks the range shape and recomputes the payload digest.
func (m *MCResult) Validate() error {
	if m.Lo < 0 || m.Hi < m.Lo {
		return fmt.Errorf("%w: Monte Carlo trial range [%d, %d)", ErrBadResult, m.Lo, m.Hi)
	}
	if len(m.Obs) != m.Hi-m.Lo {
		return fmt.Errorf("%w: Monte Carlo shard carries %d observations for trial range [%d, %d)",
			ErrBadResult, len(m.Obs), m.Lo, m.Hi)
	}
	if d := mc.Digest(m.Obs); d != m.Digest {
		return fmt.Errorf("%w: Monte Carlo payload digest %x, observations hash to %x", ErrBadResult, m.Digest, d)
	}
	return nil
}

// Encode marshals the result, stamping the current wire version.
func (r *Result) Encode() ([]byte, error) {
	stamped := *r
	stamped.Version = Version
	data, err := json.Marshal(&stamped)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadResult, err)
	}
	return data, nil
}

// DecodeResult unmarshals and structurally validates a shard result.
func DecodeResult(data []byte) (*Result, error) {
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadResult, err)
	}
	if r.Version != Version {
		return nil, fmt.Errorf("%w: result version %d, want %d", ErrVersion, r.Version, Version)
	}
	if err := r.Shard.Shard().Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadResult, err)
	}
	if r.Evaluations < 0 || r.Pruned < 0 || r.BoundsComputed < 0 {
		return nil, fmt.Errorf("%w: negative evaluation count", ErrBadResult)
	}
	if r.Feasible {
		if r.CandidateIndex < 0 {
			return nil, fmt.Errorf("%w: feasible result without a candidate index", ErrBadResult)
		}
		if len(r.Design) == 0 {
			return nil, fmt.Errorf("%w: feasible result without a design", ErrBadResult)
		}
	} else if r.CandidateIndex != -1 {
		return nil, fmt.Errorf("%w: infeasible result with candidate index %d", ErrBadResult, r.CandidateIndex)
	}
	if r.MC != nil {
		if r.Feasible {
			return nil, fmt.Errorf("%w: Monte Carlo result marked feasible", ErrBadResult)
		}
		if err := r.MC.Validate(); err != nil {
			return nil, err
		}
	}
	return &r, nil
}

// SolutionResult wraps a feasible exhaustive-search Solution for the
// wire; sol must come from exhaustive enumeration (CandidateIndex >= 0).
func SolutionResult(sol *opt.Solution, shard ShardSpec) (*Result, error) {
	if sol.CandidateIndex < 0 {
		return nil, fmt.Errorf("%w: solution has no candidate index (not from exhaustive enumeration)", ErrBadResult)
	}
	design, err := config.Marshal(sol.Design)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadResult, err)
	}
	r := &Result{
		Version:        Version,
		Shard:          shard,
		Feasible:       true,
		Evaluations:    sol.Evaluations,
		Pruned:         sol.CandidatesPruned,
		BoundsComputed: sol.BoundsComputed,
		MemoHits:       sol.MemoHits,
		CandidateIndex: sol.CandidateIndex,
		Score:          float64(sol.Score),
		Design:         design,
	}
	for _, c := range sol.Choices {
		r.Choices = append(r.Choices, ChoiceSpec{Knob: c.Knob, Option: c.Option})
	}
	return r, nil
}

// Solution rebuilds the search-layer Solution, decoding the winning
// design through internal/config. Infeasible results return (nil, nil) —
// the nil entry opt.MergeShards expects for an empty shard.
func (r *Result) Solution() (*opt.Solution, error) {
	if !r.Feasible {
		return nil, nil
	}
	design, err := config.Unmarshal(r.Design)
	if err != nil {
		return nil, fmt.Errorf("%w: design: %v", ErrBadResult, err)
	}
	sol := &opt.Solution{
		Design:           design,
		Score:            units.Money(r.Score),
		Evaluations:      r.Evaluations,
		CandidatesPruned: r.Pruned,
		BoundsComputed:   r.BoundsComputed,
		MemoHits:         r.MemoHits,
		Passes:           1,
		CandidateIndex:   r.CandidateIndex,
	}
	for _, c := range r.Choices {
		sol.Choices = append(sol.Choices, opt.Choice{Knob: c.Knob, Option: c.Option})
	}
	return sol, nil
}
