package dist

import (
	"bytes"
	"testing"
	"time"

	"stordep/internal/casestudy"
	"stordep/internal/device"
	"stordep/internal/failure"
	"stordep/internal/hierarchy"
	"stordep/internal/opt"
	"stordep/internal/units"
)

// newTestKnobSpecs is the shared search space for dist tests: a
// 24-candidate slice of the Table 7 moves covering every wire knob kind
// that matters — policy options (config-encoded policies), revertible
// int knobs, a device knob, and the non-revertible PiT substitution.
func newTestKnobSpecs() ([]KnobSpec, error) {
	weekly := casestudy.VaultPolicy()
	weekly.Primary.AccW = units.Week
	weekly.Primary.HoldW = 12 * time.Hour
	weekly.RetCnt = 156
	pol, err := PolicyKnobSpec("vaulting",
		[]string{"4-weekly", "weekly"},
		[]hierarchy.Policy{casestudy.VaultPolicy(), weekly})
	if err != nil {
		return nil, err
	}
	return []KnobSpec{
		pol,
		PiTKnobSpec("split-mirror"),
		RetCntKnobSpec("backup", []int{2, 4, 8}),
		LinkCountKnobSpec(device.NameTapeLibrary, []int{8, 16}),
	}, nil
}

func testKnobSpecs(t *testing.T) []KnobSpec {
	t.Helper()
	specs, err := newTestKnobSpecs()
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

func testScenarioSpecs() []ScenarioSpec {
	return ScenarioSpecs([]failure.Scenario{
		{Name: "object", Scope: failure.ScopeObject, TargetAge: 24 * time.Hour, RecoverSize: units.MB},
		{Scope: failure.ScopeArray},
		{Scope: failure.ScopeSite},
	})
}

// newTestJob builds the shared job; the oracle for every distributed
// run is singleProcessOracle on the same specs.
func newTestJob() (*Job, error) {
	specs, err := newTestKnobSpecs()
	if err != nil {
		return nil, err
	}
	return NewJob(casestudy.Baseline(), specs, testScenarioSpecs(), ObjectiveSpec{Kind: "worst"})
}

func testJob(t *testing.T) *Job {
	t.Helper()
	job, err := newTestJob()
	if err != nil {
		t.Fatal(err)
	}
	return job
}

// singleProcessOracle runs the plain in-process exhaustive search the
// distributed answer must be byte-identical to.
func singleProcessOracle(t *testing.T, job *Job) *opt.Solution {
	t.Helper()
	knobs, err := BuildKnobs(job.Knobs)
	if err != nil {
		t.Fatal(err)
	}
	scs, err := BuildScenarios(job.Scenarios)
	if err != nil {
		t.Fatal(err)
	}
	obj, _, err := BuildObjective(job.Objective)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := opt.ExhaustiveOpts(casestudy.Baseline(), knobs, scs, obj, opt.ExhaustiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

// encodeSolution canonicalizes a Solution as its whole-space wire
// encoding — the byte-identity witness for the determinism tests.
func encodeSolution(t *testing.T, sol *opt.Solution) []byte {
	t.Helper()
	r, err := SolutionResult(sol, ShardSpec{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// requireIdentical asserts two Solutions have byte-identical wire
// encodings, with field-level diagnostics on mismatch.
func requireIdentical(t *testing.T, label string, want, got *opt.Solution) {
	t.Helper()
	if got.Score != want.Score {
		t.Errorf("%s: score %v, want %v", label, got.Score, want.Score)
	}
	if got.CandidateIndex != want.CandidateIndex {
		t.Errorf("%s: candidate index %d, want %d", label, got.CandidateIndex, want.CandidateIndex)
	}
	if got.Evaluations != want.Evaluations {
		t.Errorf("%s: evaluations %d, want %d", label, got.Evaluations, want.Evaluations)
	}
	wantB, gotB := encodeSolution(t, want), encodeSolution(t, got)
	if !bytes.Equal(wantB, gotB) {
		t.Errorf("%s: wire encodings differ\nwant %s\ngot  %s", label, wantB, gotB)
	}
}

// requireAnswerIdentical compares the answer fields only — pruning makes
// the assessed/pruned split schedule-dependent, but never the answer —
// by zeroing the counters on copies before the byte-identity check.
func requireAnswerIdentical(t *testing.T, label string, want, got *opt.Solution) {
	t.Helper()
	w, g := *want, *got
	w.Evaluations, w.CandidatesPruned, w.BoundsComputed, w.MemoHits = 0, 0, 0, 0
	g.Evaluations, g.CandidatesPruned, g.BoundsComputed, g.MemoHits = 0, 0, 0, 0
	requireIdentical(t, label, &w, &g)
}
