package dist

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestChaosWorkerInjectsEachFault pins each fault's observable effect:
// drops and crashes error out, wrong-shard answers fail the shape
// check, corruptions and lies perturb the score in opposite directions,
// and flapping health fails probes.
func TestChaosWorkerInjectsEachFault(t *testing.T) {
	ctx := context.Background()
	job := testJob(t)
	mk := func(o ChaosOptions) *ChaosWorker {
		o.Seed = 7
		return NewChaosWorker(&Loopback{Name: "u"}, o)
	}
	honest, err := (&Loopback{Name: "u"}).Run(ctx, job, nil)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := mk(ChaosOptions{PDrop: 1}).Run(ctx, job, nil); !errors.Is(err, ErrChaosDrop) {
		t.Errorf("drop: err = %v, want ErrChaosDrop", err)
	}
	if _, err := mk(ChaosOptions{PCrashMid: 1}).Run(ctx, job, nil); !errors.Is(err, ErrChaosCrashMid) {
		t.Errorf("crash-mid: err = %v, want ErrChaosCrashMid", err)
	}

	w := mk(ChaosOptions{PWrongShard: 1})
	res, err := w.Run(ctx, job, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shard == job.Shard {
		t.Error("wrong-shard: the answered shard should not match the asked one")
	}

	w = mk(ChaosOptions{PLie: 1})
	res, err = w.Run(ctx, job, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Score < honest.Score) {
		t.Errorf("lie: score %v, want strictly better (lower) than honest %v", res.Score, honest.Score)
	}
	if w.LiesReturned.Load() != 1 {
		t.Errorf("lie: LiesReturned = %d, want 1", w.LiesReturned.Load())
	}

	w = mk(ChaosOptions{PCorrupt: 1})
	res, err = w.Run(ctx, job, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Score > honest.Score) {
		t.Errorf("corrupt: score %v, want perturbed above honest %v", res.Score, honest.Score)
	}

	w = mk(ChaosOptions{PDelay: 1, MaxDelay: time.Millisecond})
	if _, err := w.Run(ctx, job, nil); err != nil {
		t.Errorf("delay: err = %v, want an honest (late) answer", err)
	}

	w = mk(ChaosOptions{PFlapHealth: 1})
	if err := w.Health(ctx); !errors.Is(err, ErrChaosFlap) {
		t.Errorf("flap: health = %v, want ErrChaosFlap", err)
	}
	if w.FlapsInjected.Load() != 1 {
		t.Errorf("flap: FlapsInjected = %d, want 1", w.FlapsInjected.Load())
	}
	w = mk(ChaosOptions{PFlapHealth: 0})
	if err := w.Health(ctx); err != nil {
		t.Errorf("steady health: err = %v, want nil", err)
	}
}

// TestChaosWorkerSeedDeterminism: the same seed replays the same fault
// schedule.
func TestChaosWorkerSeedDeterminism(t *testing.T) {
	ctx := context.Background()
	job := testJob(t)
	o := ChaosOptions{Seed: 99, PDelay: 0.2, PDrop: 0.2, PCrashMid: 0.2, PWrongShard: 0.1, PLie: 0.1, MaxDelay: time.Microsecond}
	a := NewChaosWorker(&Loopback{Name: "u"}, o)
	b := NewChaosWorker(&Loopback{Name: "u"}, o)
	for i := 0; i < 20; i++ {
		a.Run(ctx, job, nil) //nolint:errcheck
		b.Run(ctx, job, nil) //nolint:errcheck
	}
	for f := ChaosFault(0); f < chaosFaultCount; f++ {
		if a.Faults[f].Load() != b.Faults[f].Load() {
			t.Errorf("fault %v: %d vs %d injections for the same seed", f, a.Faults[f].Load(), b.Faults[f].Load())
		}
	}
}

// TestChaosLiarsNeverCollide: two different liars must not produce the
// same wrong answer, or independent faults could fake a majority.
func TestChaosLiarsNeverCollide(t *testing.T) {
	ctx := context.Background()
	job := testJob(t)
	a, err := NewChaosWorker(&Loopback{Name: "liar-a"}, ChaosOptions{Seed: 1, PLie: 1}).Run(ctx, job, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewChaosWorker(&Loopback{Name: "liar-b"}, ChaosOptions{Seed: 1, PLie: 1}).Run(ctx, job, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resultDigest(a) == resultDigest(b) {
		t.Fatal("two distinct liars produced byte-identical lies")
	}
}

// TestChaosByzantineProperty is the headline robustness property: for
// worker fleets {2,4,8} x ValidateK {1,2,3} under a seeded fault mix —
// delays, drops, mid-stream crashes, wrong-shard answers for everyone,
// plus plausibly-lying and corrupting byzantine workers wherever an
// honest majority remains — the merged Solution is byte-identical to
// the single-process search, counted lies always surface as validation
// mismatches, and lying workers are quarantined. K=1 cells run only
// detectable faults: a plausible lie is undetectable without
// cross-validation, which is exactly why ValidateK exists.
func TestChaosByzantineProperty(t *testing.T) {
	job := testJob(t)
	oracle := singleProcessOracle(t, job)

	type cell struct{ n, k int }
	cells := []cell{{2, 1}, {4, 1}, {8, 1}, {2, 2}, {4, 2}, {8, 2}, {4, 3}, {8, 3}}
	for _, c := range cells {
		for seed := int64(1); seed <= 2; seed++ {
			c, seed := c, seed
			t.Run(fmt.Sprintf("workers=%d,k=%d,seed=%d", c.n, c.k, seed), func(t *testing.T) {
				t.Parallel()
				need := c.k/2 + 1
				liars := 0
				if c.k >= 2 {
					// As many byzantine workers as the honest-majority
					// contract allows, capped at 2: honest >= need must hold
					// or no shard could ever validate.
					liars = c.n - need
					if liars > 2 {
						liars = 2
					}
				}
				workers := make([]Worker, c.n)
				chaos := make([]*ChaosWorker, c.n)
				for i := range workers {
					o := ChaosOptions{Seed: seed*1000 + int64(i), MaxDelay: 2 * time.Millisecond}
					if i < liars {
						o.PLie, o.PCorrupt = 0.4, 0.2
					} else {
						o.PDelay, o.PDrop, o.PCrashMid, o.PWrongShard = 0.1, 0.1, 0.05, 0.05
					}
					chaos[i] = NewChaosWorker(&Loopback{Name: fmt.Sprintf("w%d", i)}, o)
					workers[i] = chaos[i]
				}
				sol, m := runCoordinator(t, workers, Options{
					ValidateK:    c.k,
					MaxAttempts:  20,
					RetryBackoff: time.Millisecond,
					Seed:         seed,
				}, job)
				requireIdentical(t, fmt.Sprintf("%d workers, K=%d, seed %d", c.n, c.k, seed), oracle, sol)

				var lies int64
				for _, cw := range chaos[:liars] {
					lies += cw.LiesReturned.Load()
				}
				t.Logf("dispatched %d, retried %d, byzantine answers %d, mismatches %d, quarantines %d, readmissions %d",
					m.ShardsDispatched.Load(), m.ShardsRetried.Load(), lies,
					m.ValidationMismatches.Load(), m.WorkersQuarantined.Load(), m.WorkersReadmitted.Load())
				if lies > 0 {
					if m.ValidationMismatches.Load() == 0 {
						t.Errorf("%d byzantine answers returned but no validation mismatch recorded", lies)
					}
					if m.WorkersQuarantined.Load() == 0 {
						t.Error("byzantine workers were never quarantined")
					}
				}
			})
		}
	}
}

// TestChaosPersistentLiarWithoutMajorityFailsLoudly: two workers, K=2,
// one always lying. No honest majority is possible, so the run must
// fail with ErrValidation — never silently merge either answer.
func TestChaosPersistentLiarWithoutMajorityFailsLoudly(t *testing.T) {
	job := testJob(t)
	liar := NewChaosWorker(&Loopback{Name: "liar"}, ChaosOptions{Seed: 3, PLie: 1})
	c, err := NewCoordinator([]Worker{&Loopback{Name: "honest"}, liar}, Options{
		ValidateK:    2,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(context.Background(), job)
	if !errors.Is(err, ErrValidation) {
		t.Fatalf("err = %v, want ErrValidation", err)
	}
	if !strings.Contains(err.Error(), "majority") {
		t.Errorf("error should explain the missing majority: %v", err)
	}
}

// TestCoordinatorValidateKHonest: with an honest fleet, cross-validation
// changes the work (K votes per shard) but never the answer.
func TestCoordinatorValidateKHonest(t *testing.T) {
	job := testJob(t)
	oracle := singleProcessOracle(t, job)
	for _, k := range []int{2, 3} {
		workers := make([]Worker, 4)
		for i := range workers {
			workers[i] = &Loopback{Name: fmt.Sprintf("w%d", i)}
		}
		sol, m := runCoordinator(t, workers, Options{ValidateK: k}, job)
		requireIdentical(t, fmt.Sprintf("K=%d", k), oracle, sol)
		shards := int64(16) // 4 workers x default ShardsPerWorker
		if m.ShardsCompleted.Load() != shards {
			t.Errorf("K=%d: completed %d shards, want %d", k, m.ShardsCompleted.Load(), shards)
		}
		// A shard validates as soon as K/2+1 votes agree, so the floor is
		// the majority threshold per shard, not K: with an honest fleet
		// the last vote of an odd K is never needed.
		need := int64(k/2 + 1)
		if got := m.ShardsDispatched.Load(); got < shards*need {
			t.Errorf("K=%d: dispatched %d attempts, want >= %d (majority votes per shard)", k, got, shards*need)
		}
		if m.ValidationMismatches.Load() != 0 {
			t.Errorf("K=%d: %d mismatches among honest workers", k, m.ValidationMismatches.Load())
		}
	}
}

func TestCoordinatorValidateKNeedsEnoughWorkers(t *testing.T) {
	if _, err := NewCoordinator([]Worker{&Loopback{Name: "a"}, &Loopback{Name: "b"}},
		Options{ValidateK: 3}); !errors.Is(err, ErrValidation) {
		t.Errorf("err = %v, want ErrValidation for K=3 with 2 workers", err)
	}
}

// TestCoordinatorQuarantineRedispatchesInFlightVotes: a worker
// quarantined mid-run (here by the registry's failure limit, tripped by
// its own crashes) keeps the run alive — its shards are re-dispatched
// to the surviving fleet and the answer stays exact.
func TestCoordinatorQuarantineRedispatchesInFlightVotes(t *testing.T) {
	job := testJob(t)
	oracle := singleProcessOracle(t, job)

	reg := NewRegistry(RegistryOptions{
		FailureLimit:      2,
		QuarantineBackoff: time.Hour, // never readmitted within the test
	})
	// Hold the steady worker until the doomed one has provably crashed
	// twice (tripping the failure limit), so the quarantine always
	// happens before the queue can drain.
	tripped := make(chan struct{})
	var crashes atomic.Int64
	if err := reg.Add(&Loopback{Name: "doomed", Intercept: func(*Job) Fault {
		if crashes.Add(1) == 2 {
			close(tripped)
		}
		return FaultCrash
	}}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add(&Loopback{Name: "steady", Intercept: func(*Job) Fault {
		<-tripped
		return FaultNone
	}}); err != nil {
		t.Fatal(err)
	}
	c, err := NewCoordinatorRegistry(reg, Options{MaxAttempts: 50, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := c.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "mid-run quarantine", oracle, sol)
	if s, _ := reg.State("doomed"); s != StateQuarantined {
		t.Errorf("doomed worker state = %v, want quarantined", s)
	}
	if got := c.Metrics().WorkersQuarantined.Load(); got != 1 {
		t.Errorf("WorkersQuarantined = %d, want 1", got)
	}
}

// TestCoordinatorAdoptsWorkerAddedMidRun: a worker registered while the
// run is already executing joins the dispatch pool.
func TestCoordinatorAdoptsWorkerAddedMidRun(t *testing.T) {
	job := testJob(t)
	oracle := singleProcessOracle(t, job)

	reg := NewRegistry(RegistryOptions{})
	started := make(chan struct{})
	var once sync.Once
	// The sole initial worker hangs forever after signaling; only the
	// late-added worker can finish the search.
	if err := reg.Add(&Loopback{Name: "stuck", Intercept: func(*Job) Fault {
		once.Do(func() { close(started) })
		return FaultHang
	}}); err != nil {
		t.Fatal(err)
	}
	c, err := NewCoordinatorRegistry(reg, Options{
		Shards:         4,
		AttemptTimeout: 50 * time.Millisecond,
		MaxAttempts:    1000,
		RetryBackoff:   time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		<-started
		reg.Add(&Loopback{Name: "late"}) //nolint:errcheck
	}()
	sol, err := c.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "late-added worker", oracle, sol)
}
