package dist

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestSignVerify(t *testing.T) {
	payload := []byte(`{"version":1}`)
	sig := Sign("secret", payload)
	if !Verify("secret", payload, sig) {
		t.Fatal("a fresh signature must verify")
	}
	if Verify("secret", payload, "") {
		t.Error("empty signature must not verify")
	}
	if Verify("secret", payload, Sign("other-token", payload)) {
		t.Error("a signature under the wrong token must not verify")
	}
	if Verify("secret", []byte(`{"version":2}`), sig) {
		t.Error("a signature over different bytes must not verify")
	}
	if Sign("a", payload) == Sign("b", payload) {
		t.Error("different tokens must sign differently")
	}
}

// TestHTTPAuthEndToEnd: with a shared secret on both sides, jobs run
// and the merged answer is exact; without the token (or with the wrong
// one), the worker rejects the job before evaluation with a distinct
// wire error.
func TestHTTPAuthEndToEnd(t *testing.T) {
	job := testJob(t)
	oracle := singleProcessOracle(t, job)

	const token = "e2e-shared-secret"
	var workers []Worker
	for i := 0; i < 2; i++ {
		srv := httptest.NewServer(NewHandler(HandlerOptions{AuthToken: token}))
		defer srv.Close()
		workers = append(workers, &HTTPWorker{
			BaseURL:   srv.URL,
			Name:      fmt.Sprintf("auth%d", i),
			AuthToken: token,
		})
	}
	c, err := NewCoordinator(workers, Options{AttemptTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := c.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "authenticated transport", oracle, sol)
}

func TestHTTPAuthRejectsUnauthenticated(t *testing.T) {
	job := testJob(t)
	srv := httptest.NewServer(NewHandler(HandlerOptions{AuthToken: "right"}))
	defer srv.Close()

	for _, tc := range []struct {
		name  string
		token string
	}{
		{"missing token", ""},
		{"wrong token", "wrong"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w := &HTTPWorker{BaseURL: srv.URL, AuthToken: tc.token}
			_, err := w.Run(context.Background(), job, nil)
			if !errors.Is(err, ErrUnauthenticated) {
				t.Fatalf("err = %v, want ErrUnauthenticated", err)
			}
		})
	}

	// The raw HTTP status is 401, distinct from 400 bad-payload.
	resp, err := http.Post(srv.URL+RunPath, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("unsigned POST: HTTP %d, want 401", resp.StatusCode)
	}
}

// TestHTTPAuthVerifiesResultSignature: a coordinator holding a token
// must reject results whose signature is missing or forged — a
// man-in-the-middle cannot substitute answers.
func TestHTTPAuthVerifiesResultSignature(t *testing.T) {
	job := testJob(t)

	// A server that answers honestly but signs with the wrong token.
	forged := httptest.NewServer(NewHandler(HandlerOptions{AuthToken: ""}))
	defer forged.Close()
	w := &HTTPWorker{BaseURL: forged.URL, AuthToken: ""}
	res, err := w.Run(context.Background(), job, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.Encode()
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		sig  string
	}{
		{"unsigned result", ""},
		{"forged signature", Sign("attacker-token", data)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
				fmt.Fprintf(rw, `{"type":"result","result":%s,"sig":%q}`+"\n", data, tc.sig)
			}))
			defer srv.Close()
			hw := &HTTPWorker{BaseURL: srv.URL, AuthToken: "right"}
			if _, err := hw.Run(context.Background(), job, nil); !errors.Is(err, ErrUnauthenticated) {
				t.Errorf("err = %v, want ErrUnauthenticated", err)
			}
		})
	}
}

func TestHandlerHealthInfo(t *testing.T) {
	srv := httptest.NewServer(NewHandler(HandlerOptions{}))
	defer srv.Close()
	w := &HTTPWorker{BaseURL: srv.URL}

	info, err := w.HealthInfo(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != "ok" || info.Version != Version {
		t.Fatalf("health = %+v, want ok/version %d", info, Version)
	}
	if info.Evaluations != 0 || info.InFlight != 0 {
		t.Fatalf("fresh worker health = %+v, want zero load", info)
	}

	if _, err := w.Run(context.Background(), testJob(t), nil); err != nil {
		t.Fatal(err)
	}
	info, err = w.HealthInfo(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.Evaluations != 24 {
		t.Errorf("cumulative evaluations = %d, want 24 (the whole test space)", info.Evaluations)
	}
	if info.UptimeSeconds < 0 {
		t.Errorf("uptime = %v, want >= 0", info.UptimeSeconds)
	}
}
