package dist

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// HTTP protocol paths (versioned alongside the wire format).
const (
	// RunPath accepts a POST Job and streams NDJSON progress: heartbeat
	// lines while the shard evaluates, then exactly one terminal result
	// or error line.
	RunPath = "/v1/run"
	// HealthPath reports liveness, the wire version, uptime, in-flight
	// jobs and cumulative evaluations (the HealthInfo schema).
	HealthPath = "/v1/health"
)

// maxBodyBytes bounds request and response bodies (jobs and results are
// a few kilobytes; designs are bounded by the config schema).
const maxBodyBytes = 32 << 20

// streamMsg is one NDJSON line of a run stream.
type streamMsg struct {
	// Type is "heartbeat", "result" or "error".
	Type string `json:"type"`
	// Evals is the live evaluated-candidate count (heartbeat).
	Evals int64 `json:"evals,omitempty"`
	// Result is the wire Result (terminal result line).
	Result json.RawMessage `json:"result,omitempty"`
	// Sig is Sign(token, Result) when the worker holds a shared secret,
	// so the coordinator can authenticate the answer end to end.
	Sig string `json:"sig,omitempty"`
	// Error is the failure message (terminal error line).
	Error string `json:"error,omitempty"`
}

// HealthInfo is the GET /v1/health response body. Uptime, in-flight
// jobs and cumulative evaluations feed a Registry's eviction decisions
// and let an operator spot a wedged or idle worker at a glance.
type HealthInfo struct {
	Status        string  `json:"status"`
	Version       int     `json:"version"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
	InFlight      int64   `json:"inflight"`
	Evaluations   int64   `json:"evaluations"`
}

// HandlerOptions configures a worker's HTTP surface.
type HandlerOptions struct {
	// Workers caps the local evaluation pool when the job itself does
	// not; 0 means all CPUs.
	Workers int
	// HeartbeatEvery is the progress-line interval; default 1s. An
	// initial heartbeat is always written before evaluation starts, so
	// the coordinator sees liveness even on instant shards.
	HeartbeatEvery time.Duration
	// AuthToken, when non-empty, requires every job to carry a valid
	// AuthHeader HMAC over its body; unauthenticated or wrong-token
	// jobs are rejected with HTTP 401 before any evaluation. Results
	// are signed with the same token.
	AuthToken string
	// Logf, when non-nil, receives one line per request.
	Logf func(format string, args ...any)
}

// handlerState is the worker's liveness bookkeeping behind /v1/health.
type handlerState struct {
	start    time.Time
	inflight atomic.Int64
	evals    atomic.Int64
}

// NewHandler serves the worker protocol: POST RunPath evaluates a shard
// and streams heartbeats, GET HealthPath reports liveness and load. A
// handler holds no per-job state; concurrent jobs each get their own
// evaluation pool, so capping Workers matters on shared hosts.
func NewHandler(opts HandlerOptions) http.Handler {
	if opts.HeartbeatEvery <= 0 {
		opts.HeartbeatEvery = time.Second
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	st := &handlerState{start: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc(HealthPath, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(HealthInfo{ //nolint:errcheck
			Status:        "ok",
			Version:       Version,
			UptimeSeconds: time.Since(st.start).Seconds(),
			InFlight:      st.inflight.Load(),
			Evaluations:   st.evals.Load(),
		})
	})
	mux.HandleFunc(RunPath, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if opts.AuthToken != "" && !Verify(opts.AuthToken, body, r.Header.Get(AuthHeader)) {
			// Constant-time verification; rejected before the job is even
			// decoded, so an unauthenticated coordinator cannot spend
			// this worker's cycles.
			opts.Logf("reject: unauthenticated job from %s", r.RemoteAddr)
			http.Error(w, ErrUnauthenticated.Error(), http.StatusUnauthorized)
			return
		}
		job, err := DecodeJob(body)
		if err != nil {
			opts.Logf("reject: %v", err)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if job.Workers == 0 {
			job.Workers = opts.Workers
		}
		opts.Logf("run shard %d/%d", job.Shard.Index, job.Shard.Count)
		st.inflight.Add(1)
		defer st.inflight.Add(-1)
		serveRun(w, r, job, opts, st)
	})
	return mux
}

// serveRun streams one job's evaluation as NDJSON.
func serveRun(w http.ResponseWriter, r *http.Request, job *Job, opts HandlerOptions, st *handlerState) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	writeMsg := func(m streamMsg) bool {
		if err := enc.Encode(m); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	var progress atomic.Int64
	start := time.Now()
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := ExecuteJob(job, &progress)
		done <- outcome{res, err}
	}()

	if !writeMsg(streamMsg{Type: "heartbeat", Evals: 0}) {
		return
	}
	ticker := time.NewTicker(opts.HeartbeatEvery)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			// The coordinator gave up (timeout or cancellation); the
			// evaluation goroutine runs to completion and is discarded.
			opts.Logf("abandon shard %d/%d after %v: %v",
				job.Shard.Index, job.Shard.Count, time.Since(start).Round(time.Millisecond), r.Context().Err())
			return
		case <-ticker.C:
			if !writeMsg(streamMsg{Type: "heartbeat", Evals: progress.Load()}) {
				return
			}
		case o := <-done:
			if o.err != nil {
				opts.Logf("fail shard %d/%d: %v", job.Shard.Index, job.Shard.Count, o.err)
				writeMsg(streamMsg{Type: "error", Error: o.err.Error()})
				return
			}
			st.evals.Add(int64(o.res.Evaluations))
			data, err := o.res.Encode()
			if err != nil {
				writeMsg(streamMsg{Type: "error", Error: err.Error()})
				return
			}
			opts.Logf("done shard %d/%d: %d evaluations in %v",
				job.Shard.Index, job.Shard.Count, o.res.Evaluations, time.Since(start).Round(time.Millisecond))
			msg := streamMsg{Type: "result", Result: data}
			if opts.AuthToken != "" {
				msg.Sig = Sign(opts.AuthToken, data)
			}
			writeMsg(msg)
			return
		}
	}
}

// HTTPWorker drives one remote worker process (cmd/worker) over the
// NDJSON streaming protocol; it implements Worker for the coordinator
// and Prober for the registry.
type HTTPWorker struct {
	// BaseURL locates the worker, e.g. "http://127.0.0.1:7701".
	BaseURL string
	// Name overrides the worker ID; default BaseURL.
	Name string
	// AuthToken, when non-empty, signs every job with AuthHeader and
	// requires the worker's results to carry a valid signature back.
	AuthToken string
	// Client overrides the HTTP client; the default has no overall
	// timeout (runs stream indefinitely; the coordinator's per-attempt
	// context bounds them).
	Client *http.Client
}

// ID implements Worker.
func (h *HTTPWorker) ID() string {
	if h.Name != "" {
		return h.Name
	}
	return h.BaseURL
}

func (h *HTTPWorker) client() *http.Client {
	if h.Client != nil {
		return h.Client
	}
	return http.DefaultClient
}

// HealthInfo fetches the worker's liveness endpoint, checking the wire
// version and status.
func (h *HTTPWorker) HealthInfo(ctx context.Context) (*HealthInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, h.BaseURL+HealthPath, nil)
	if err != nil {
		return nil, fmt.Errorf("dist: worker %s: %w", h.ID(), err)
	}
	resp, err := h.client().Do(req)
	if err != nil {
		return nil, fmt.Errorf("dist: worker %s unreachable: %w", h.ID(), err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("dist: worker %s health: HTTP %d", h.ID(), resp.StatusCode)
	}
	var health HealthInfo
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&health); err != nil {
		return nil, fmt.Errorf("dist: worker %s health: %w", h.ID(), err)
	}
	if health.Version != Version {
		return nil, fmt.Errorf("%w: worker %s speaks version %d, want %d", ErrVersion, h.ID(), health.Version, Version)
	}
	if health.Status != "ok" {
		return nil, fmt.Errorf("dist: worker %s health status %q", h.ID(), health.Status)
	}
	return &health, nil
}

// Health implements Prober: it checks the worker's liveness endpoint
// and wire version.
func (h *HTTPWorker) Health(ctx context.Context) error {
	_, err := h.HealthInfo(ctx)
	return err
}

// Run implements Worker: POST the job (signed when AuthToken is set),
// relay heartbeat lines, verify and return the terminal result.
func (h *HTTPWorker) Run(ctx context.Context, job *Job, heartbeat func(evals int64)) (*Result, error) {
	data, err := job.Encode()
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, h.BaseURL+RunPath, bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("dist: worker %s: %w", h.ID(), err)
	}
	req.Header.Set("Content-Type", "application/json")
	if h.AuthToken != "" {
		req.Header.Set(AuthHeader, Sign(h.AuthToken, data))
	}
	resp, err := h.client().Do(req)
	if err != nil {
		return nil, fmt.Errorf("dist: worker %s: %w", h.ID(), err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusUnauthorized {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("%w: worker %s rejected the job: %s", ErrUnauthenticated, h.ID(), bytes.TrimSpace(msg))
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("dist: worker %s: HTTP %d: %s", h.ID(), resp.StatusCode, bytes.TrimSpace(msg))
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), maxBodyBytes)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var msg streamMsg
		if err := json.Unmarshal(line, &msg); err != nil {
			return nil, fmt.Errorf("%w: worker %s stream: %v", ErrBadResult, h.ID(), err)
		}
		switch msg.Type {
		case "heartbeat":
			if heartbeat != nil {
				heartbeat(msg.Evals)
			}
		case "error":
			return nil, fmt.Errorf("dist: worker %s: %s", h.ID(), msg.Error)
		case "result":
			if h.AuthToken != "" && !Verify(h.AuthToken, msg.Result, msg.Sig) {
				return nil, fmt.Errorf("%w: worker %s result signature invalid", ErrUnauthenticated, h.ID())
			}
			return DecodeResult(msg.Result)
		default:
			return nil, fmt.Errorf("%w: worker %s sent unknown stream message %q", ErrBadResult, h.ID(), msg.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dist: worker %s stream: %w", h.ID(), err)
	}
	return nil, fmt.Errorf("%w: worker %s closed the stream without a result", ErrBadResult, h.ID())
}
