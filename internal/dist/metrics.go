package dist

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is the coordinator's Prometheus-style instrumentation: shard
// lifecycle counters plus per-worker liveness. All methods are safe for
// concurrent use; the zero value is ready.
type Metrics struct {
	// ShardsDispatched counts dispatch attempts, including retries and
	// speculative duplicates.
	ShardsDispatched atomic.Int64
	// ShardsCompleted counts shards whose first valid result arrived.
	ShardsCompleted atomic.Int64
	// ShardsRetried counts failed attempts that were re-dispatched.
	ShardsRetried atomic.Int64
	// ShardsSpeculated counts straggler shards given a duplicate
	// dispatch while the original attempt was still in flight.
	ShardsSpeculated atomic.Int64
	// DuplicatesDiscarded counts results that arrived for an
	// already-completed shard (the losing side of a speculation race).
	DuplicatesDiscarded atomic.Int64
	// WorkerErrors counts attempts that ended in an error or an invalid
	// response, including timeouts.
	WorkerErrors atomic.Int64
	// HeartbeatsReceived counts worker heartbeats seen.
	HeartbeatsReceived atomic.Int64
	// WorkersEvicted counts health-based removals from the live set:
	// missed probes while live, or a failed probation probe.
	WorkersEvicted atomic.Int64
	// WorkersQuarantined counts failure- and byzantine-based removals:
	// repeated dispatch failures, or losing a K-way validation vote.
	WorkersQuarantined atomic.Int64
	// WorkersReadmitted counts returns to the live set after quarantine.
	WorkersReadmitted atomic.Int64
	// ValidationMismatches counts K-way votes whose result digest
	// disagreed with the shard's majority.
	ValidationMismatches atomic.Int64
	// CandidatesPruned sums candidates retired by an admissible bound
	// without assessment, across validated shard results.
	CandidatesPruned atomic.Int64
	// BoundsComputed sums subtree lower bounds evaluated across
	// validated shard results.
	BoundsComputed atomic.Int64

	mu       sync.Mutex
	lastSeen map[string]time.Time // worker -> last heartbeat or result
}

// WorkerSeen records a liveness signal from the named worker.
func (m *Metrics) WorkerSeen(worker string, at time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.lastSeen == nil {
		m.lastSeen = make(map[string]time.Time)
	}
	if at.After(m.lastSeen[worker]) {
		m.lastSeen[worker] = at
	}
}

// LastSeen returns the most recent liveness signal per worker.
func (m *Metrics) LastSeen() map[string]time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]time.Time, len(m.lastSeen))
	for w, t := range m.lastSeen {
		out[w] = t
	}
	return out
}

// WritePrometheus renders the metrics in the Prometheus text exposition
// format. Worker liveness is exported as seconds since the last signal,
// measured at now, so a scraper sees a hung worker's gauge climb.
func (m *Metrics) WritePrometheus(w io.Writer, now time.Time) error {
	counters := []struct {
		name, help string
		v          *atomic.Int64
	}{
		{"stordep_dist_shards_dispatched_total", "Shard dispatch attempts, including retries and speculation.", &m.ShardsDispatched},
		{"stordep_dist_shards_completed_total", "Shards with a first valid result.", &m.ShardsCompleted},
		{"stordep_dist_shards_retried_total", "Failed attempts that were re-dispatched.", &m.ShardsRetried},
		{"stordep_dist_shards_speculated_total", "Straggler shards given a duplicate dispatch.", &m.ShardsSpeculated},
		{"stordep_dist_duplicates_discarded_total", "Results for already-completed shards.", &m.DuplicatesDiscarded},
		{"stordep_dist_worker_errors_total", "Attempts ending in error, timeout or invalid response.", &m.WorkerErrors},
		{"stordep_dist_heartbeats_received_total", "Worker heartbeats seen.", &m.HeartbeatsReceived},
		{"stordep_dist_workers_evicted_total", "Workers evicted for missed or failed health probes.", &m.WorkersEvicted},
		{"stordep_dist_workers_quarantined_total", "Workers quarantined for repeated failures or byzantine votes.", &m.WorkersQuarantined},
		{"stordep_dist_workers_readmitted_total", "Workers readmitted to the live set after quarantine.", &m.WorkersReadmitted},
		{"stordep_dist_validation_mismatches_total", "K-way validation votes disagreeing with the shard majority.", &m.ValidationMismatches},
		{"stordep_dist_candidates_pruned_total", "Candidates retired by an admissible bound without assessment.", &m.CandidatesPruned},
		{"stordep_dist_bounds_computed_total", "Subtree lower bounds evaluated across validated shards.", &m.BoundsComputed},
	}
	for _, c := range counters {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			c.name, c.help, c.name, c.name, c.v.Load()); err != nil {
			return err
		}
	}
	seen := m.LastSeen()
	if len(seen) == 0 {
		return nil
	}
	workers := make([]string, 0, len(seen))
	for w := range seen {
		workers = append(workers, w)
	}
	sort.Strings(workers)
	if _, err := fmt.Fprintf(w, "# HELP stordep_dist_worker_idle_seconds Seconds since the worker's last heartbeat or result.\n# TYPE stordep_dist_worker_idle_seconds gauge\n"); err != nil {
		return err
	}
	for _, worker := range workers {
		if _, err := fmt.Fprintf(w, "stordep_dist_worker_idle_seconds{worker=%q} %g\n",
			worker, now.Sub(seen[worker]).Seconds()); err != nil {
			return err
		}
	}
	return nil
}
