package dist

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestRegistryMembership(t *testing.T) {
	r := NewRegistry(RegistryOptions{})
	if err := r.Add(&Loopback{Name: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(&Loopback{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(&Loopback{Name: "a"}); err == nil {
		t.Error("duplicate ID should be rejected")
	}
	if err := r.Add(&Loopback{}); err == nil {
		t.Error("empty ID should be rejected")
	}

	live := r.Live()
	if len(live) != 2 || live[0].ID() != "a" || live[1].ID() != "b" {
		t.Fatalf("Live() = %v, want [a b] sorted", ids(live))
	}
	if got := ids(r.Members()); len(got) != 2 {
		t.Fatalf("Members() = %v, want 2 entries", got)
	}

	r.Remove("a")
	r.Remove("never-registered") // no-op
	if got := ids(r.Live()); len(got) != 1 || got[0] != "b" {
		t.Fatalf("after Remove: Live() = %v, want [b]", got)
	}
	if _, ok := r.State("a"); ok {
		t.Error("removed worker should have no state")
	}
}

func ids(ws []Worker) []string {
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.ID()
	}
	return out
}

// TestRegistryEvictsAndReadmitsFlappingWorker is the acceptance
// lifecycle: a worker whose health flaps is evicted after EvictAfter
// missed probes (visible in Metrics), serves its quarantine, passes
// through probation, and is readmitted on a healthy probe.
func TestRegistryEvictsAndReadmitsFlappingWorker(t *testing.T) {
	var sick atomic.Bool
	w := &Loopback{Name: "flappy", HealthErr: func() error {
		if sick.Load() {
			return errors.New("no thanks")
		}
		return nil
	}}
	r := NewRegistry(RegistryOptions{
		EvictAfter:        2,
		QuarantineBackoff: 10 * time.Millisecond,
	})
	if err := r.Add(w); err != nil {
		t.Fatal(err)
	}
	// Probing "active" routes expired quarantines through probation
	// instead of straight back to live.
	r.probing.Store(true)
	defer r.probing.Store(false)

	ctx := context.Background()
	r.Probe(ctx) // healthy
	if !r.IsLive("flappy") {
		t.Fatal("healthy worker should stay live")
	}

	sick.Store(true)
	r.Probe(ctx) // miss 1 of 2: still live
	if !r.IsLive("flappy") {
		t.Fatal("one missed probe must not evict with EvictAfter=2")
	}
	r.Probe(ctx) // miss 2 of 2: evicted
	if s, _ := r.State("flappy"); s != StateQuarantined {
		t.Fatalf("state after %d missed probes = %v, want quarantined", 2, s)
	}
	if got := r.Metrics().WorkersEvicted.Load(); got != 1 {
		t.Fatalf("WorkersEvicted = %d, want 1", got)
	}
	if len(r.Live()) != 0 {
		t.Fatal("quarantined worker must not be dispatchable")
	}

	// Let the quarantine expire; the worker lands in probation.
	waitForState(t, r, "flappy", StateProbation)

	// A failed probation probe re-quarantines...
	r.Probe(ctx)
	if s, _ := r.State("flappy"); s != StateQuarantined {
		t.Fatalf("state after failed probation probe = %v, want quarantined", s)
	}
	waitForState(t, r, "flappy", StateProbation)

	// ...and a healthy one readmits.
	sick.Store(false)
	r.Probe(ctx)
	if !r.IsLive("flappy") {
		t.Fatal("healthy probation probe should readmit the worker")
	}
	if got := r.Metrics().WorkersReadmitted.Load(); got != 1 {
		t.Fatalf("WorkersReadmitted = %d, want 1", got)
	}
}

func waitForState(t *testing.T, r *Registry, id string, want WorkerState) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s, ok := r.State(id); ok && s == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	s, _ := r.State(id)
	t.Fatalf("worker %s stuck in state %v, want %v", id, s, want)
}

// TestRegistryFailureLimitQuarantine: repeated coordinator-reported
// failures quarantine a worker, successes reset the streak, and without
// a probe loop the quarantine expires straight back to live.
func TestRegistryFailureLimitQuarantine(t *testing.T) {
	r := NewRegistry(RegistryOptions{
		FailureLimit:      3,
		QuarantineBackoff: 10 * time.Millisecond,
	})
	if err := r.Add(&Loopback{Name: "shaky"}); err != nil {
		t.Fatal(err)
	}

	r.ReportFailure("shaky")
	r.ReportFailure("shaky")
	r.ReportSuccess("shaky") // resets the streak
	r.ReportFailure("shaky")
	r.ReportFailure("shaky")
	if !r.IsLive("shaky") {
		t.Fatal("streak was reset; 2 consecutive failures must not trip limit 3")
	}
	r.ReportFailure("shaky")
	if s, _ := r.State("shaky"); s != StateQuarantined {
		t.Fatalf("state after 3 consecutive failures = %v, want quarantined", s)
	}
	if got := r.Metrics().WorkersQuarantined.Load(); got != 1 {
		t.Fatalf("WorkersQuarantined = %d, want 1", got)
	}

	// No probe loop running: expiry readmits directly.
	waitForState(t, r, "shaky", StateLive)
	if got := r.Metrics().WorkersReadmitted.Load(); got != 1 {
		t.Fatalf("WorkersReadmitted = %d, want 1", got)
	}
}

func TestRegistryFailureLimitDisabledByDefault(t *testing.T) {
	r := NewRegistry(RegistryOptions{})
	if err := r.Add(&Loopback{Name: "w"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		r.ReportFailure("w")
	}
	if !r.IsLive("w") {
		t.Fatal("FailureLimit 0 must never quarantine on failures")
	}
}

func TestRegistryWatch(t *testing.T) {
	r := NewRegistry(RegistryOptions{QuarantineBackoff: time.Hour})
	var fires atomic.Int64
	unwatch := r.Watch(func() { fires.Add(1) })

	if err := r.Add(&Loopback{Name: "w"}); err != nil {
		t.Fatal(err)
	}
	if fires.Load() != 1 {
		t.Fatalf("fires after Add = %d, want 1", fires.Load())
	}
	r.Quarantine("w", "test verdict")
	if fires.Load() != 2 {
		t.Fatalf("fires after Quarantine = %d, want 2", fires.Load())
	}
	r.Quarantine("w", "already quarantined") // no-op: not live
	if fires.Load() != 2 {
		t.Fatalf("fires after no-op Quarantine = %d, want 2", fires.Load())
	}
	r.Remove("w")
	if fires.Load() != 3 {
		t.Fatalf("fires after Remove = %d, want 3", fires.Load())
	}

	unwatch()
	if err := r.Add(&Loopback{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if fires.Load() != 3 {
		t.Fatalf("unsubscribed watcher still fired: %d", fires.Load())
	}
}

// TestRegistryQuarantineBackoffDoubles: repeat offenders serve longer
// quarantines.
func TestRegistryQuarantineBackoffDoubles(t *testing.T) {
	var lines []string
	r := NewRegistry(RegistryOptions{
		QuarantineBackoff: 5 * time.Millisecond,
		Logf:              func(f string, a ...any) { lines = append(lines, f) },
	})
	if err := r.Add(&Loopback{Name: "w"}); err != nil {
		t.Fatal(err)
	}

	r.Quarantine("w", "first offense")
	waitForState(t, r, "w", StateLive)
	start := time.Now()
	r.Quarantine("w", "second offense")
	waitForState(t, r, "w", StateLive)
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Errorf("second offense served %v, want >= doubled backoff 10ms", elapsed)
	}
	if r.Metrics().WorkersQuarantined.Load() != 2 {
		t.Errorf("WorkersQuarantined = %d, want 2", r.Metrics().WorkersQuarantined.Load())
	}
	if len(lines) == 0 {
		t.Error("quarantines should be logged")
	}
}

// TestRegistryStartProbesPeriodically: the background loop drives
// eviction without manual Probe calls.
func TestRegistryStartProbesPeriodically(t *testing.T) {
	w := &Loopback{Name: "dead", HealthErr: func() error { return errors.New("down") }}
	r := NewRegistry(RegistryOptions{
		ProbeInterval:     2 * time.Millisecond,
		EvictAfter:        2,
		QuarantineBackoff: time.Hour,
	})
	if err := r.Add(w); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go r.Start(ctx)

	waitForState(t, r, "dead", StateQuarantined)
	if got := r.Metrics().WorkersEvicted.Load(); got != 1 {
		t.Errorf("WorkersEvicted = %d, want 1", got)
	}
}
