package dist

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"stordep/internal/mc"
	"stordep/internal/opt"
)

// Worker executes shard jobs on behalf of the coordinator. Run evaluates
// one job and returns its wire Result; it must honor ctx cancellation
// (the coordinator enforces per-attempt timeouts through it) and may
// call heartbeat, concurrently with its own work, to report live
// progress (evaluated-candidate count). Implementations: HTTPWorker
// (remote, cmd/worker), Loopback (in-process, hermetic tests) and
// ChaosWorker (seeded fault injection around either).
type Worker interface {
	ID() string
	Run(ctx context.Context, job *Job, heartbeat func(evals int64)) (*Result, error)
}

// ErrNoWorkers is returned by NewCoordinator without any workers.
var ErrNoWorkers = errors.New("dist: coordinator needs at least one worker")

// ErrValidation marks a K-way cross-validation failure: a shard's votes
// split with no digest reaching the majority threshold and no unvoted
// worker left to break the tie. The search fails loudly rather than
// merge an answer it cannot trust.
var ErrValidation = errors.New("dist: k-way validation failed")

// Options configures a Coordinator. The zero value is usable: four
// shards per worker, three attempts per shard, 100ms base backoff with
// seeded jitter, no per-attempt timeout, no speculation, no
// cross-validation.
type Options struct {
	// ShardsPerWorker oversizes the partition so fast workers absorb
	// slow shards: the space splits into len(workers)*ShardsPerWorker
	// shards (capped at the space size). Default 4.
	ShardsPerWorker int
	// Shards overrides the shard count directly when > 0.
	Shards int
	// AttemptTimeout bounds each dispatch attempt; a worker that has not
	// answered by then is abandoned (its context is canceled) and the
	// shard is re-dispatched. 0 means no deadline.
	AttemptTimeout time.Duration
	// MaxAttempts caps failed attempts per shard before the whole
	// search fails. Default 3.
	MaxAttempts int
	// RetryBackoff is the base delay before a failed shard is re-queued,
	// doubling per failure. The actual delay is jittered uniformly into
	// [base/2, base] (seeded by Seed) so simultaneous failures do not
	// re-queue in synchronized bursts; timing never affects the merged
	// Solution. Default 100ms.
	RetryBackoff time.Duration
	// Seed seeds the retry-backoff jitter. 0 means a fixed default, so
	// runs are reproducible unless the caller opts into variety.
	Seed int64
	// SpeculateAfter, when > 0, re-dispatches a shard that has been in
	// flight this long to an additional worker; the first valid result
	// (or majority, under ValidateK) wins and losers are discarded. At
	// most one speculative duplicate per shard. 0 disables speculation.
	SpeculateAfter time.Duration
	// ValidateK, when > 1, dispatches every shard to K distinct workers
	// and exact-compares their result digests: the enumeration is
	// deterministic, so honest answers are byte-identical and a
	// disagreeing vote is a lie (or a corruption — indistinguishable,
	// and treated the same). A digest needs K/2+1 matching votes to
	// validate; minority voters are quarantined and their votes on
	// still-unvalidated shards are scrubbed and re-dispatched. A split
	// with no majority draws tie-breaking votes from workers that have
	// not yet voted on the shard, and fails with ErrValidation when none
	// remain. 0 or 1 disables cross-validation (first valid result
	// wins, as before — a plausibly-lying worker is then undetectable).
	ValidateK int
	// WorkersPerJob hints each worker's local evaluation pool size; 0
	// means all the worker's CPUs. Any value returns the same Solution.
	WorkersPerJob int
	// Metrics receives the run's instrumentation; nil uses the
	// registry's (reachable via Coordinator.Metrics).
	Metrics *Metrics
}

// Coordinator fans an exhaustive search out over a live worker fleet
// and merges the shard winners deterministically: the space is
// partitioned into more shards than workers, each shard is dispatched
// with bounded retries, optional speculative re-dispatch and optional
// K-way cross-validation, and the results merge through opt.MergeShards
// — byte-identical to a single-process search for any worker count,
// shard count, failure pattern, or arrival order. Workers come from a
// Registry, so membership may change mid-run: quarantined workers stop
// receiving shards, readmitted or newly added ones join the dispatch
// pool immediately.
type Coordinator struct {
	reg  *Registry
	opts Options
	m    *Metrics

	rngMu sync.Mutex
	rng   *rand.Rand
}

// NewCoordinator validates a fixed worker set and defaults the options,
// wrapping the workers in a private static registry (no health probing;
// quarantines expire back to live on their own). Use
// NewCoordinatorRegistry for dynamic membership.
func NewCoordinator(workers []Worker, opts Options) (*Coordinator, error) {
	if len(workers) == 0 {
		return nil, ErrNoWorkers
	}
	m := opts.Metrics
	if m == nil {
		m = &Metrics{}
	}
	reg := NewRegistry(RegistryOptions{Metrics: m, QuarantineBackoff: 50 * time.Millisecond})
	for _, w := range workers {
		if err := reg.Add(w); err != nil {
			return nil, err
		}
	}
	if opts.ValidateK > len(workers) {
		return nil, fmt.Errorf("%w: ValidateK %d needs that many distinct workers, have %d",
			ErrValidation, opts.ValidateK, len(workers))
	}
	return NewCoordinatorRegistry(reg, opts)
}

// NewCoordinatorRegistry builds a coordinator over a live registry. The
// registry may gain and lose workers at any time, including mid-run;
// the run fails only when pending work cannot possibly be served (every
// registered worker has already voted on or failed a shard that still
// needs votes).
func NewCoordinatorRegistry(reg *Registry, opts Options) (*Coordinator, error) {
	if reg == nil {
		return nil, ErrNoWorkers
	}
	if opts.ShardsPerWorker <= 0 {
		opts.ShardsPerWorker = 4
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 3
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 100 * time.Millisecond
	}
	if opts.ValidateK <= 0 {
		opts.ValidateK = 1
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 20040628 // fixed default: reproducible runs (DSN 2004)
	}
	m := opts.Metrics
	if m == nil {
		m = reg.Metrics()
	}
	return &Coordinator{
		reg:  reg,
		opts: opts,
		m:    m,
		rng:  rand.New(rand.NewSource(seed)),
	}, nil
}

// Metrics returns the coordinator's instrumentation.
func (c *Coordinator) Metrics() *Metrics { return c.m }

// Registry returns the coordinator's worker registry.
func (c *Coordinator) Registry() *Registry { return c.reg }

// backoffDelay computes the jittered exponential backoff before a
// shard's next retry: base<<min(failures-1,10), jittered uniformly into
// [d/2, d] from the coordinator's seeded source.
func (c *Coordinator) backoffDelay(failures int) time.Duration {
	shift := failures - 1
	if shift > 10 {
		shift = 10 // cap the exponential backoff at 1024x the base
	}
	d := c.opts.RetryBackoff << shift
	c.rngMu.Lock()
	j := c.rng.Int63n(int64(d)/2 + 1)
	c.rngMu.Unlock()
	return d/2 + time.Duration(j)
}

// vote is one worker's answer for a shard under K-way validation.
type vote struct {
	worker string
	digest [sha256.Size]byte
	res    *Result
}

// resultDigest canonicalizes a Result for exact-compare voting: the
// deterministic enumeration makes honest answers byte-identical, so the
// digest is a hash of the wire encoding. The schedule-dependent fields
// are zeroed first: MemoHits reflects the worker's evaluation schedule,
// and under pruning so do Evaluations/Pruned/BoundsComputed — the
// incumbent tightens as local scores land, so which subtrees get
// skipped varies between two honest runs of the identical job even
// though the answer fields (Feasible, CandidateIndex, Score, Choices,
// Design) cannot.
func resultDigest(r *Result) [sha256.Size]byte {
	n := *r
	n.MemoHits = 0
	n.Evaluations = 0
	n.Pruned = 0
	n.BoundsComputed = 0
	data, err := n.Encode()
	if err != nil {
		// A decoded Result always re-encodes; if it somehow cannot, give
		// it a digest no honest vote can match.
		return sha256.Sum256([]byte(fmt.Sprintf("unencodable result: %v", err)))
	}
	return sha256.Sum256(data)
}

// runState is one Run's dispatch-and-vote ledger, guarded by mu. cond
// is broadcast on every transition: new pending work, completions,
// failures, speculation, membership changes and cancellation.
type runState struct {
	mu   sync.Mutex
	cond *sync.Cond
	// pending holds shard indices awaiting one dispatch each; stale
	// entries (for shards already validated or fully covered) are
	// dropped lazily by next.
	pending []int
	// target is the number of votes each shard currently wants:
	// ValidateK initially, +1 per speculation and per tie-break.
	target []int
	// votes collects counted answers per shard; votedBy mirrors it by
	// worker ID so one worker never votes twice on a shard.
	votes   map[int][]vote
	votedBy map[int]map[string]bool
	// assigned tracks in-flight attempts per shard by worker ID;
	// started is the start of the oldest in-flight attempt.
	assigned map[int]map[string]bool
	started  map[int]time.Time
	failedBy map[int]map[string]bool
	failures map[int]int
	// speculated caps speculative duplication at one per shard.
	speculated map[int]bool
	// best is the lowest score among validated feasible shards (+Inf
	// until one lands): the incumbent pool later dispatches prune
	// against. pinned freezes the incumbent each shard is dispatched
	// with, at its first dispatch (-1 = not yet dispatched) — a shard's
	// Result depends on its incumbent, so every re-dispatch, speculative
	// duplicate and K-way validation vote must carry the same one or
	// honest votes would not be byte-identical.
	best   float64
	pinned []float64
	// validated is the final result per shard; launched tracks worker
	// loops already spawned (registry members may join mid-run).
	validated []*Result
	launched  map[string]bool
	remaining int
	err       error
}

func (st *runState) fail(err error) {
	if st.err == nil {
		st.err = err
	}
	st.cond.Broadcast()
}

// coverage reports how many votes shard s has counted or in flight.
func (st *runState) coverage(s int) int {
	return len(st.votes[s]) + len(st.assigned[s])
}

// ensureDispatch re-queues shard s if it still wants more votes than it
// has counted or in flight, clearing the shard's failure-exclusion set
// when it would otherwise starve the queue entry (every worker that
// could still vote has failed the shard once — failed workers must
// become eligible again or nobody can serve it; MaxAttempts still
// bounds total failures). Safe to call redundantly: duplicates in
// pending are dropped lazily. Callers hold st.mu.
func (c *Coordinator) ensureDispatch(st *runState, s int) {
	if st.validated[s] != nil || st.coverage(s) >= st.target[s] {
		return
	}
	if len(st.failedBy[s]) >= c.nonVoters(st, s) {
		st.failedBy[s] = nil
	}
	st.pending = append(st.pending, s)
}

// nonVoters counts registered workers that have not voted on shard s —
// the pool any further vote must come from. Callers hold st.mu.
func (c *Coordinator) nonVoters(st *runState, s int) int {
	n := 0
	for _, w := range c.reg.Members() {
		if !st.votedBy[s][w.ID()] {
			n++
		}
	}
	return n
}

// Run partitions the job's candidate space and drives it to completion.
// job must be unsharded (the coordinator owns the partitioning) and is
// not mutated; each dispatch carries a copy with its shard assignment.
func (c *Coordinator) Run(ctx context.Context, job *Job) (*opt.Solution, error) {
	if job.MC != nil {
		return nil, fmt.Errorf("%w: Monte Carlo jobs run through RunMC", ErrBadJob)
	}
	if job.Shard != (ShardSpec{}) {
		return nil, fmt.Errorf("%w: coordinator job must be unsharded, got shard %d/%d",
			ErrBadJob, job.Shard.Index, job.Shard.Count)
	}
	// Size the space up front — the same knob build every worker
	// performs, so coordinator and workers agree on the enumeration.
	knobs, err := BuildKnobs(job.Knobs)
	if err != nil {
		return nil, err
	}
	space, err := opt.SpaceSize(knobs)
	if err != nil {
		return nil, err
	}
	if job.Budget > 0 && space > job.Budget {
		return nil, fmt.Errorf("%w: %d combinations > budget %d", opt.ErrSpaceTooLarge, space, job.Budget)
	}
	results, err := c.dispatch(ctx, job, space)
	if err != nil {
		return nil, err
	}
	return MergeResults(results)
}

// RunMC partitions a Monte Carlo job's trial range across the fleet and
// merges the shards' observations back into the full campaign's
// sequence, in trial order, with each payload digest-validated. The
// whole retry/speculation/K-way-validation machinery applies unchanged —
// the engine's determinism makes honest trial shards byte-identical, so
// cross-validation catches lying workers here exactly as it does for
// search shards. Feed the result to mc.(*Campaign).Estimate (with the
// same seed, trials and mission) for a report byte-identical to the
// single-process campaign.
func (c *Coordinator) RunMC(ctx context.Context, job *Job) ([]mc.Obs, error) {
	if job.MC == nil {
		return nil, fmt.Errorf("%w: RunMC needs a Monte Carlo job", ErrBadJob)
	}
	if err := job.MC.Validate(); err != nil {
		return nil, err
	}
	if job.Shard != (ShardSpec{}) {
		return nil, fmt.Errorf("%w: coordinator job must be unsharded, got shard %d/%d",
			ErrBadJob, job.Shard.Index, job.Shard.Count)
	}
	results, err := c.dispatch(ctx, job, job.MC.Trials)
	if err != nil {
		return nil, err
	}
	return MergeMC(results, job.MC.Trials)
}

// dispatch is the generic validated-dispatch core shared by Run and
// RunMC: partition a space of the given size into shards, drive every
// shard to a validated result through the live worker fleet, and return
// the per-shard results for the caller's merge.
func (c *Coordinator) dispatch(ctx context.Context, job *Job, space int) ([]*Result, error) {
	members := c.reg.Members()
	if len(members) == 0 {
		return nil, ErrNoWorkers
	}
	k := c.opts.ValidateK
	if k > len(members) {
		return nil, fmt.Errorf("%w: ValidateK %d needs that many distinct workers, registry has %d",
			ErrValidation, k, len(members))
	}
	shards := c.opts.Shards
	if shards <= 0 {
		shards = len(members) * c.opts.ShardsPerWorker
	}
	if shards > space {
		shards = space
	}
	if shards < 1 {
		shards = 1
	}

	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	st := &runState{
		target:     make([]int, shards),
		votes:      make(map[int][]vote),
		votedBy:    make(map[int]map[string]bool),
		assigned:   make(map[int]map[string]bool),
		started:    make(map[int]time.Time),
		failedBy:   make(map[int]map[string]bool),
		failures:   make(map[int]int),
		speculated: make(map[int]bool),
		best:       math.Inf(1),
		pinned:     make([]float64, shards),
		validated:  make([]*Result, shards),
		launched:   make(map[string]bool),
		remaining:  shards,
	}
	if job.Incumbent > 0 {
		// A caller-seeded incumbent (e.g. a previous run's winner) is the
		// starting pool every shard may prune against.
		st.best = job.Incumbent
	}
	for s := range st.pinned {
		st.pinned[s] = -1
	}
	st.cond = sync.NewCond(&st.mu)
	// One pending entry per wanted vote, round-robin across shards so K
	// distinct workers fan out over distinct shards first.
	st.pending = make([]int, 0, shards*k)
	for round := 0; round < k; round++ {
		for s := 0; s < shards; s++ {
			st.pending = append(st.pending, s)
		}
	}
	for s := range st.target {
		st.target[s] = k
	}

	// Propagate caller cancellation into the ledger so blocked workers
	// wake up; the derived-context cancel on normal return is a no-op
	// here because remaining is already zero.
	go func() {
		<-rctx.Done()
		st.mu.Lock()
		if st.remaining > 0 {
			st.fail(rctx.Err())
		}
		st.cond.Broadcast()
		st.mu.Unlock()
	}()

	if c.opts.SpeculateAfter > 0 {
		go c.speculate(rctx, st)
	}
	launch := func(w Worker) {
		st.mu.Lock()
		fresh := !st.launched[w.ID()] && st.remaining > 0 && st.err == nil
		if fresh {
			st.launched[w.ID()] = true
		}
		st.mu.Unlock()
		if fresh {
			go c.workerLoop(rctx, w, st, job, shards)
		}
	}
	for _, w := range members {
		launch(w)
	}
	// Membership changes wake blocked dispatch loops and adopt workers
	// added mid-run.
	unwatch := c.reg.Watch(func() {
		for _, w := range c.reg.Members() {
			launch(w)
		}
		st.cond.Broadcast()
	})
	defer unwatch()

	st.mu.Lock()
	for st.remaining > 0 && st.err == nil {
		st.cond.Wait()
	}
	err := st.err
	var results []*Result
	if err == nil {
		results = append(results, st.validated...)
	}
	st.mu.Unlock()
	cancel() // release any in-flight duplicate attempts

	if err != nil {
		return nil, err
	}
	return results, nil
}

// speculate watches for stragglers: shards whose oldest running attempt
// is older than SpeculateAfter get one additional vote dispatched.
func (c *Coordinator) speculate(ctx context.Context, st *runState) {
	tick := c.opts.SpeculateAfter / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			st.mu.Lock()
			for s, t0 := range st.started {
				if !st.speculated[s] && st.validated[s] == nil && now.Sub(t0) >= c.opts.SpeculateAfter {
					st.speculated[s] = true
					st.target[s]++
					st.pending = append(st.pending, s)
					c.m.ShardsSpeculated.Add(1)
				}
			}
			st.cond.Broadcast()
			st.mu.Unlock()
		}
	}
}

// workerLoop pulls shard assignments until the run completes or fails.
// A worker never re-pulls a shard it already failed or voted on unless
// every registered worker has failed it (the exclusion set resets to
// preserve liveness); a quarantined worker's loop idles until the
// registry readmits it.
func (c *Coordinator) workerLoop(ctx context.Context, w Worker, st *runState, job *Job, shards int) {
	for {
		s, inc, ok := c.next(st, w)
		if !ok {
			return
		}
		res, err := c.attempt(ctx, w, job, s, shards, inc)
		c.record(st, w, s, res, err)
	}
}

// next blocks until an assignment is available for this worker, the run
// completes, or it fails. The second return is the shard's pinned
// pruning incumbent: the coordinator's best validated score at the
// shard's first dispatch, frozen so later votes on the same shard see
// the identical job (0 = none achieved yet).
func (c *Coordinator) next(st *runState, w Worker) (int, float64, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for {
		if st.err != nil || st.remaining == 0 {
			return 0, 0, false
		}
		idx := -1
		if c.reg.IsLive(w.ID()) {
			for i, s := range st.pending {
				if st.validated[s] != nil || st.coverage(s) >= st.target[s] {
					continue // stale entry; compacted below
				}
				if !st.votedBy[s][w.ID()] && !st.assigned[s][w.ID()] && !st.failedBy[s][w.ID()] {
					idx = i
					break
				}
			}
		}
		if idx < 0 {
			// Opportunistically drop entries for satisfied shards so the
			// queue never grows stale duplicates.
			kept := st.pending[:0]
			for _, s := range st.pending {
				if st.validated[s] == nil && st.coverage(s) < st.target[s] {
					kept = append(kept, s)
				}
			}
			st.pending = kept
			st.cond.Wait()
			continue
		}
		s := st.pending[idx]
		st.pending = append(st.pending[:idx], st.pending[idx+1:]...)
		if st.assigned[s] == nil {
			st.assigned[s] = make(map[string]bool)
		}
		st.assigned[s][w.ID()] = true
		if len(st.assigned[s]) == 1 {
			st.started[s] = time.Now()
		}
		if st.pinned[s] < 0 {
			if math.IsInf(st.best, 1) {
				st.pinned[s] = 0
			} else {
				st.pinned[s] = st.best
			}
		}
		c.m.ShardsDispatched.Add(1)
		return s, st.pinned[s], true
	}
}

// attempt runs one dispatch with the per-attempt timeout and validates
// the response shape: a result for the wrong shard or wire version is a
// worker failure, exactly like an error or a timeout.
func (c *Coordinator) attempt(ctx context.Context, w Worker, job *Job, s, shards int, incumbent float64) (*Result, error) {
	sub := *job
	sub.Shard = ShardSpec{Index: s, Count: shards}
	sub.Workers = c.opts.WorkersPerJob
	if job.Prune && incumbent > 0 {
		sub.Incumbent = incumbent
	}
	actx := ctx
	if c.opts.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.opts.AttemptTimeout)
		defer cancel()
	}
	hb := func(evals int64) {
		c.m.HeartbeatsReceived.Add(1)
		c.m.WorkerSeen(w.ID(), time.Now())
	}
	res, err := w.Run(actx, &sub, hb)
	if err != nil {
		return nil, err
	}
	switch {
	case res == nil:
		return nil, fmt.Errorf("dist: worker %s returned no result for shard %d/%d", w.ID(), s, shards)
	case res.Version != Version:
		return nil, fmt.Errorf("%w: worker %s answered version %d", ErrVersion, w.ID(), res.Version)
	case res.Shard != sub.Shard:
		return nil, fmt.Errorf("dist: worker %s answered for shard %d/%d, asked %d/%d",
			w.ID(), res.Shard.Index, res.Shard.Count, s, shards)
	}
	return res, nil
}

// quarAction defers a registry quarantine until the ledger lock is
// released (the registry notifies watchers, which would re-enter).
type quarAction struct {
	worker, reason string
}

// record applies one attempt's outcome to the ledger: valid results
// count as votes (with ValidateK <= 1 the first vote validates the
// shard), failures re-queue with jittered exponential backoff until
// MaxAttempts, then fail the run — unless a still-running duplicate
// attempt can save the shard.
func (c *Coordinator) record(st *runState, w Worker, s int, res *Result, err error) {
	now := time.Now()
	id := w.ID()
	var quars []quarAction

	st.mu.Lock()
	delete(st.assigned[s], id)
	if len(st.assigned[s]) == 0 {
		delete(st.assigned, s)
		delete(st.started, s)
	}
	if err == nil {
		c.m.WorkerSeen(id, now)
		quars = c.recordVote(st, id, s, res)
		st.cond.Broadcast()
		st.mu.Unlock()
		c.reg.ReportSuccess(id)
		for _, q := range quars {
			c.reg.Quarantine(q.worker, q.reason)
		}
		return
	}
	c.m.WorkerErrors.Add(1)
	if st.validated[s] != nil || st.err != nil {
		st.cond.Broadcast()
		st.mu.Unlock()
		c.reg.ReportFailure(id)
		return
	}
	st.failures[s]++
	if st.failedBy[s] == nil {
		st.failedBy[s] = make(map[string]bool)
	}
	st.failedBy[s][id] = true
	if len(st.failedBy[s]) >= c.nonVoters(st, s) {
		// Every registered worker that could still vote on this shard has
		// failed it once; reset the exclusion set so retries stay possible
		// until MaxAttempts decides.
		st.failedBy[s] = make(map[string]bool)
	}
	if st.failures[s] >= c.opts.MaxAttempts {
		if len(st.assigned[s]) == 0 {
			st.fail(fmt.Errorf("dist: shard %d gave up after %d failed attempts, last from worker %s: %w",
				s, st.failures[s], id, err))
		}
		// A speculative duplicate is still running: let it decide.
		st.cond.Broadcast()
		st.mu.Unlock()
		c.reg.ReportFailure(id)
		return
	}
	c.m.ShardsRetried.Add(1)
	delay := c.backoffDelay(st.failures[s])
	time.AfterFunc(delay, func() {
		st.mu.Lock()
		if st.err == nil {
			c.ensureDispatch(st, s)
		}
		st.cond.Broadcast()
		st.mu.Unlock()
	})
	st.cond.Broadcast()
	st.mu.Unlock()
	c.reg.ReportFailure(id)
}

// recordVote counts one valid result toward shard s's K-way vote and
// applies the outcome, returning any quarantine verdicts for the
// caller to deliver after unlocking. Callers hold st.mu.
func (c *Coordinator) recordVote(st *runState, id string, s int, res *Result) []quarAction {
	if st.validated[s] != nil {
		c.m.DuplicatesDiscarded.Add(1)
		return nil
	}
	if !c.reg.IsLive(id) {
		// The worker was quarantined while this attempt was in flight; a
		// suspect's vote must not count. Replace the dispatch instead.
		c.ensureDispatch(st, s)
		return nil
	}
	if st.votedBy[s] == nil {
		st.votedBy[s] = make(map[string]bool)
	}
	st.votedBy[s][id] = true
	st.votes[s] = append(st.votes[s], vote{worker: id, digest: resultDigest(res), res: res})

	need := c.opts.ValidateK/2 + 1
	counts := make(map[[sha256.Size]byte]int, len(st.votes[s]))
	var winner [sha256.Size]byte
	won := false
	for _, v := range st.votes[s] {
		counts[v.digest]++
		if counts[v.digest] >= need {
			winner, won = v.digest, true
		}
	}
	if won {
		return c.finalizeShard(st, s, winner)
	}
	if st.coverage(s) < st.target[s] {
		// Still short of votes. Counting this vote shrank the shard's
		// non-voter pool, which may have made its failure-exclusion set
		// total (e.g. the only other worker failed the shard before this
		// vote landed) — ensureDispatch clears it so the shard cannot
		// starve waiting on workers that will never become eligible.
		c.ensureDispatch(st, s)
		return nil
	}
	// Every requested vote is in or in flight and none reached the
	// majority threshold: draw a tie-breaker from a worker that has
	// not voted yet, or fail loudly — never merge a split vote.
	if !c.anyUnvotedMember(st, s) {
		st.fail(fmt.Errorf("%w: shard %d split %d ways across %d votes with no %d-vote majority and no unvoted worker left",
			ErrValidation, s, len(counts), len(st.votes[s]), need))
		return nil
	}
	st.target[s]++
	c.ensureDispatch(st, s)
	return nil
}

// anyUnvotedMember reports whether any registered worker (live or not —
// quarantined workers may return) has not yet voted on shard s.
func (c *Coordinator) anyUnvotedMember(st *runState, s int) bool {
	for _, w := range c.reg.Members() {
		if !st.votedBy[s][w.ID()] {
			return true
		}
	}
	return false
}

// finalizeShard validates shard s with the majority digest: the first
// majority vote becomes the shard's result, minority voters are flagged
// byzantine — their votes on still-unvalidated shards are scrubbed and
// those shards re-dispatched — and quarantine verdicts are returned for
// delivery outside the lock. Callers hold st.mu.
func (c *Coordinator) finalizeShard(st *runState, s int, winner [sha256.Size]byte) []quarAction {
	var quars []quarAction
	for _, v := range st.votes[s] {
		if st.validated[s] == nil && v.digest == winner {
			st.validated[s] = v.res
			if v.res.Feasible && v.res.Score < st.best {
				// A validated (majority-backed) score is trustworthy enough
				// to tighten the incumbent later dispatches prune against; a
				// single unvalidated vote is not — a lying low score could
				// prune the true argmin everywhere.
				st.best = v.res.Score
			}
			c.m.CandidatesPruned.Add(int64(v.res.Pruned))
			c.m.BoundsComputed.Add(int64(v.res.BoundsComputed))
		}
		if v.digest == winner {
			continue
		}
		c.m.ValidationMismatches.Add(1)
		quars = append(quars, quarAction{
			worker: v.worker,
			reason: fmt.Sprintf("k-way validation mismatch on shard %d: result digest %x disagrees with the %d-vote majority %x",
				s, v.digest[:6], countDigest(st.votes[s], winner), winner[:6]),
		})
		c.scrubVotes(st, v.worker, s)
	}
	st.remaining--
	c.m.ShardsCompleted.Add(1)
	return quars
}

func countDigest(votes []vote, d [sha256.Size]byte) int {
	n := 0
	for _, v := range votes {
		if v.digest == d {
			n++
		}
	}
	return n
}

// scrubVotes removes a byzantine worker's counted votes from every
// still-unvalidated shard except keep, re-dispatching each so an
// untainted worker re-votes. Callers hold st.mu.
func (c *Coordinator) scrubVotes(st *runState, worker string, keep int) {
	for s, votes := range st.votes {
		if s == keep || st.validated[s] != nil || !st.votedBy[s][worker] {
			continue
		}
		kept := votes[:0]
		for _, v := range votes {
			if v.worker != worker {
				kept = append(kept, v)
			}
		}
		st.votes[s] = kept
		delete(st.votedBy[s], worker)
		c.ensureDispatch(st, s)
	}
}
