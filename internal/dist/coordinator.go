package dist

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"stordep/internal/opt"
)

// Worker executes shard jobs on behalf of the coordinator. Run evaluates
// one job and returns its wire Result; it must honor ctx cancellation
// (the coordinator enforces per-attempt timeouts through it) and may
// call heartbeat, concurrently with its own work, to report live
// progress (evaluated-candidate count). Implementations: HTTPWorker
// (remote, cmd/worker) and Loopback (in-process, hermetic tests).
type Worker interface {
	ID() string
	Run(ctx context.Context, job *Job, heartbeat func(evals int64)) (*Result, error)
}

// ErrNoWorkers is returned by NewCoordinator without any workers.
var ErrNoWorkers = errors.New("dist: coordinator needs at least one worker")

// Options configures a Coordinator. The zero value is usable: four
// shards per worker, three attempts per shard, 100ms base backoff, no
// per-attempt timeout, no speculation.
type Options struct {
	// ShardsPerWorker oversizes the partition so fast workers absorb
	// slow shards: the space splits into len(workers)*ShardsPerWorker
	// shards (capped at the space size). Default 4.
	ShardsPerWorker int
	// Shards overrides the shard count directly when > 0.
	Shards int
	// AttemptTimeout bounds each dispatch attempt; a worker that has not
	// answered by then is abandoned (its context is canceled) and the
	// shard is re-dispatched. 0 means no deadline.
	AttemptTimeout time.Duration
	// MaxAttempts caps failed attempts per shard before the whole
	// search fails. Default 3.
	MaxAttempts int
	// RetryBackoff is the delay before a failed shard is re-queued,
	// doubling per failure. Default 100ms.
	RetryBackoff time.Duration
	// SpeculateAfter, when > 0, re-dispatches a shard that has been in
	// flight this long to a second worker; the first valid result wins
	// and the loser is discarded by shard index. At most one duplicate
	// per shard. 0 disables speculation.
	SpeculateAfter time.Duration
	// WorkersPerJob hints each worker's local evaluation pool size; 0
	// means all the worker's CPUs. Any value returns the same Solution.
	WorkersPerJob int
	// Metrics receives the run's instrumentation; nil allocates one
	// (reachable via Coordinator.Metrics).
	Metrics *Metrics
}

// Coordinator fans an exhaustive search out over workers and merges the
// shard winners deterministically: the space is partitioned into more
// shards than workers, each shard is dispatched with bounded retries and
// optional speculative re-dispatch, and the results merge through
// opt.MergeShards — byte-identical to a single-process search for any
// worker count, shard count, failure pattern, or arrival order.
type Coordinator struct {
	workers []Worker
	opts    Options
	m       *Metrics
}

// NewCoordinator validates the worker set and defaults the options.
func NewCoordinator(workers []Worker, opts Options) (*Coordinator, error) {
	if len(workers) == 0 {
		return nil, ErrNoWorkers
	}
	ids := make(map[string]bool, len(workers))
	for _, w := range workers {
		if w.ID() == "" {
			return nil, fmt.Errorf("dist: worker with empty ID")
		}
		if ids[w.ID()] {
			return nil, fmt.Errorf("dist: duplicate worker ID %q", w.ID())
		}
		ids[w.ID()] = true
	}
	if opts.ShardsPerWorker <= 0 {
		opts.ShardsPerWorker = 4
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 3
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 100 * time.Millisecond
	}
	m := opts.Metrics
	if m == nil {
		m = &Metrics{}
	}
	return &Coordinator{workers: workers, opts: opts, m: m}, nil
}

// Metrics returns the coordinator's instrumentation.
func (c *Coordinator) Metrics() *Metrics { return c.m }

// runState is one Run's dispatch ledger, guarded by mu. cond is
// broadcast on every transition: new pending work, completions,
// failures, speculation, and cancellation.
type runState struct {
	mu         sync.Mutex
	cond       *sync.Cond
	pending    []int             // shard indices awaiting dispatch
	inflight   map[int]int       // running attempts per shard
	started    map[int]time.Time // start of the oldest running attempt
	failedBy   map[int]map[string]bool
	failures   map[int]int
	speculated map[int]bool
	done       map[int]*Result
	remaining  int
	err        error
}

func (st *runState) fail(err error) {
	if st.err == nil {
		st.err = err
	}
	st.cond.Broadcast()
}

// Run partitions the job's candidate space and drives it to completion.
// job must be unsharded (the coordinator owns the partitioning) and is
// not mutated; each dispatch carries a copy with its shard assignment.
func (c *Coordinator) Run(ctx context.Context, job *Job) (*opt.Solution, error) {
	if job.Shard != (ShardSpec{}) {
		return nil, fmt.Errorf("%w: coordinator job must be unsharded, got shard %d/%d",
			ErrBadJob, job.Shard.Index, job.Shard.Count)
	}
	// Size the space up front — the same knob build every worker
	// performs, so coordinator and workers agree on the enumeration.
	knobs, err := BuildKnobs(job.Knobs)
	if err != nil {
		return nil, err
	}
	space, err := opt.SpaceSize(knobs)
	if err != nil {
		return nil, err
	}
	if job.Budget > 0 && space > job.Budget {
		return nil, fmt.Errorf("%w: %d combinations > budget %d", opt.ErrSpaceTooLarge, space, job.Budget)
	}
	shards := c.opts.Shards
	if shards <= 0 {
		shards = len(c.workers) * c.opts.ShardsPerWorker
	}
	if shards > space {
		shards = space
	}
	if shards < 1 {
		shards = 1
	}

	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	st := &runState{
		pending:    make([]int, shards),
		inflight:   make(map[int]int),
		started:    make(map[int]time.Time),
		failedBy:   make(map[int]map[string]bool),
		failures:   make(map[int]int),
		speculated: make(map[int]bool),
		done:       make(map[int]*Result),
		remaining:  shards,
	}
	st.cond = sync.NewCond(&st.mu)
	for i := range st.pending {
		st.pending[i] = i
	}

	// Propagate caller cancellation into the ledger so blocked workers
	// wake up; the derived-context cancel on normal return is a no-op
	// here because remaining is already zero.
	go func() {
		<-rctx.Done()
		st.mu.Lock()
		if st.remaining > 0 {
			st.fail(rctx.Err())
		}
		st.cond.Broadcast()
		st.mu.Unlock()
	}()

	if c.opts.SpeculateAfter > 0 {
		go c.speculate(rctx, st)
	}
	for _, w := range c.workers {
		go c.workerLoop(rctx, w, st, job, shards)
	}

	st.mu.Lock()
	for st.remaining > 0 && st.err == nil {
		st.cond.Wait()
	}
	err = st.err
	var results []*Result
	if err == nil {
		results = make([]*Result, shards)
		for i := 0; i < shards; i++ {
			results[i] = st.done[i]
		}
	}
	st.mu.Unlock()
	cancel() // release any in-flight duplicate attempts

	if err != nil {
		return nil, err
	}
	return MergeResults(results)
}

// speculate watches for stragglers: shards whose oldest running attempt
// is older than SpeculateAfter get one duplicate dispatch.
func (c *Coordinator) speculate(ctx context.Context, st *runState) {
	tick := c.opts.SpeculateAfter / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			st.mu.Lock()
			for s, t0 := range st.started {
				if !st.speculated[s] && st.done[s] == nil && now.Sub(t0) >= c.opts.SpeculateAfter {
					st.speculated[s] = true
					st.pending = append(st.pending, s)
					c.m.ShardsSpeculated.Add(1)
				}
			}
			st.cond.Broadcast()
			st.mu.Unlock()
		}
	}
}

// workerLoop pulls shard assignments until the run completes or fails.
// A worker never re-pulls a shard it already failed unless every worker
// has failed it (the exclusion set resets to preserve liveness).
func (c *Coordinator) workerLoop(ctx context.Context, w Worker, st *runState, job *Job, shards int) {
	for {
		s, ok := c.next(st, w)
		if !ok {
			return
		}
		res, err := c.attempt(ctx, w, job, s, shards)
		c.record(st, w, s, res, err)
	}
}

// next blocks until an assignment is available for this worker, the run
// completes, or it fails.
func (c *Coordinator) next(st *runState, w Worker) (int, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for {
		if st.err != nil || st.remaining == 0 {
			return 0, false
		}
		idx := -1
		for i, s := range st.pending {
			if st.done[s] == nil && !st.failedBy[s][w.ID()] {
				idx = i
				break
			}
		}
		if idx < 0 {
			// Opportunistically drop entries for completed shards so the
			// queue never grows stale duplicates.
			kept := st.pending[:0]
			for _, s := range st.pending {
				if st.done[s] == nil {
					kept = append(kept, s)
				}
			}
			st.pending = kept
			st.cond.Wait()
			continue
		}
		s := st.pending[idx]
		st.pending = append(st.pending[:idx], st.pending[idx+1:]...)
		st.inflight[s]++
		if st.inflight[s] == 1 {
			st.started[s] = time.Now()
		}
		c.m.ShardsDispatched.Add(1)
		return s, true
	}
}

// attempt runs one dispatch with the per-attempt timeout and validates
// the response shape: a result for the wrong shard or wire version is a
// worker failure, exactly like an error or a timeout.
func (c *Coordinator) attempt(ctx context.Context, w Worker, job *Job, s, shards int) (*Result, error) {
	sub := *job
	sub.Shard = ShardSpec{Index: s, Count: shards}
	sub.Workers = c.opts.WorkersPerJob
	actx := ctx
	if c.opts.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.opts.AttemptTimeout)
		defer cancel()
	}
	hb := func(evals int64) {
		c.m.HeartbeatsReceived.Add(1)
		c.m.WorkerSeen(w.ID(), time.Now())
	}
	res, err := w.Run(actx, &sub, hb)
	if err != nil {
		return nil, err
	}
	switch {
	case res == nil:
		return nil, fmt.Errorf("dist: worker %s returned no result for shard %d/%d", w.ID(), s, shards)
	case res.Version != Version:
		return nil, fmt.Errorf("%w: worker %s answered version %d", ErrVersion, w.ID(), res.Version)
	case res.Shard != sub.Shard:
		return nil, fmt.Errorf("dist: worker %s answered for shard %d/%d, asked %d/%d",
			w.ID(), res.Shard.Index, res.Shard.Count, s, shards)
	}
	return res, nil
}

// record applies one attempt's outcome to the ledger: first valid result
// per shard wins, duplicates are discarded, failures re-queue with
// exponential backoff until MaxAttempts, then fail the run — unless a
// still-running duplicate attempt can save the shard.
func (c *Coordinator) record(st *runState, w Worker, s int, res *Result, err error) {
	now := time.Now()
	st.mu.Lock()
	defer st.mu.Unlock()
	st.inflight[s]--
	if st.inflight[s] <= 0 {
		delete(st.inflight, s)
		delete(st.started, s)
	}
	if err == nil {
		c.m.WorkerSeen(w.ID(), now)
		if st.done[s] == nil {
			st.done[s] = res
			st.remaining--
			c.m.ShardsCompleted.Add(1)
		} else {
			c.m.DuplicatesDiscarded.Add(1)
		}
		st.cond.Broadcast()
		return
	}
	c.m.WorkerErrors.Add(1)
	if st.done[s] != nil || st.err != nil {
		st.cond.Broadcast()
		return
	}
	st.failures[s]++
	if st.failedBy[s] == nil {
		st.failedBy[s] = make(map[string]bool)
	}
	st.failedBy[s][w.ID()] = true
	if len(st.failedBy[s]) == len(c.workers) {
		// Every worker has failed this shard once; reset the exclusion
		// set so retries stay possible until MaxAttempts decides.
		st.failedBy[s] = make(map[string]bool)
	}
	if st.failures[s] >= c.opts.MaxAttempts {
		if st.inflight[s] == 0 {
			st.fail(fmt.Errorf("dist: shard %d gave up after %d failed attempts, last from worker %s: %w",
				s, st.failures[s], w.ID(), err))
		}
		// A speculative duplicate is still running: let it decide.
		st.cond.Broadcast()
		return
	}
	c.m.ShardsRetried.Add(1)
	shift := st.failures[s] - 1
	if shift > 10 {
		shift = 10 // cap the exponential backoff at 1024x the base
	}
	delay := c.opts.RetryBackoff << shift
	time.AfterFunc(delay, func() {
		st.mu.Lock()
		if st.done[s] == nil && st.err == nil {
			st.pending = append(st.pending, s)
		}
		st.cond.Broadcast()
		st.mu.Unlock()
	})
	st.cond.Broadcast()
}
