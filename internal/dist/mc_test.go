package dist

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"stordep/internal/casestudy"
	"stordep/internal/mc"
)

const (
	mcTestSeed   = 42
	mcTestTrials = 24
)

func newMCTestJob(t *testing.T) *Job {
	t.Helper()
	job, err := NewMCJob(casestudy.Baseline(), mcTestSeed, mcTestTrials, 0)
	if err != nil {
		t.Fatal(err)
	}
	return job
}

// mcOracle is the single-process campaign every distributed run must
// reproduce byte-for-byte.
func mcOracle(t *testing.T) *mc.Report {
	t.Helper()
	c := &mc.Campaign{Design: casestudy.Baseline(), Seed: mcTestSeed, Trials: mcTestTrials}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestRunMCMatchesSingleProcess is the distributed acceptance check:
// trial shards dispatched across Loopback workers (full wire round
// trip), merged and estimated, must be byte-identical to the
// single-process campaign — for several worker and shard counts.
func TestRunMCMatchesSingleProcess(t *testing.T) {
	want := mcOracle(t)
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []struct {
		name    string
		workers int
		shards  int
	}{
		{"1worker-1shard", 1, 1},
		{"2workers", 2, 0},
		{"3workers-7shards", 3, 7},
		{"4workers-24shards", 4, 24},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			var workers []Worker
			for i := 0; i < cfg.workers; i++ {
				workers = append(workers, &Loopback{Name: string(rune('a' + i))})
			}
			coord, err := NewCoordinator(workers, Options{Shards: cfg.shards})
			if err != nil {
				t.Fatal(err)
			}
			obs, err := coord.RunMC(context.Background(), newMCTestJob(t))
			if err != nil {
				t.Fatal(err)
			}
			camp := &mc.Campaign{Design: casestudy.Baseline(), Seed: mcTestSeed, Trials: mcTestTrials}
			rep, err := camp.Estimate(obs)
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.Marshal(rep)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(wantJSON) {
				t.Errorf("distributed report differs from single-process:\n%s\nvs\n%s", got, wantJSON)
			}
		})
	}
}

// TestRunMCSurvivesCrashes drives trial shards through flaky workers:
// injected crashes must be retried away without perturbing the merged
// sequence.
func TestRunMCSurvivesCrashes(t *testing.T) {
	want := mcOracle(t)
	crashes := 0
	flaky := &Loopback{Name: "flaky", Intercept: func(job *Job) Fault {
		if crashes < 3 {
			crashes++
			return FaultCrash
		}
		return FaultNone
	}}
	coord, err := NewCoordinator([]Worker{flaky, &Loopback{Name: "steady"}}, Options{
		Shards: 6, RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	obs, err := coord.RunMC(context.Background(), newMCTestJob(t))
	if err != nil {
		t.Fatal(err)
	}
	if crashes == 0 {
		t.Fatal("fault injection never fired")
	}
	if d := mc.Digest(obs); d != want.Digest {
		t.Errorf("merged digest %x after crashes, want %x", d, want.Digest)
	}
}

// TestRunMCValidateK cross-validates every trial shard on two workers;
// determinism makes honest votes byte-identical, so the run succeeds.
func TestRunMCValidateK(t *testing.T) {
	want := mcOracle(t)
	coord, err := NewCoordinator([]Worker{
		&Loopback{Name: "a"}, &Loopback{Name: "b"}, &Loopback{Name: "c"},
	}, Options{Shards: 4, ValidateK: 2})
	if err != nil {
		t.Fatal(err)
	}
	obs, err := coord.RunMC(context.Background(), newMCTestJob(t))
	if err != nil {
		t.Fatal(err)
	}
	if d := mc.Digest(obs); d != want.Digest {
		t.Errorf("merged digest %x under 2-way validation, want %x", d, want.Digest)
	}
}

func TestRunMCRejectsSearchJob(t *testing.T) {
	coord, err := NewCoordinator([]Worker{&Loopback{Name: "a"}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	job, err := newTestJob()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.RunMC(context.Background(), job); !errors.Is(err, ErrBadJob) {
		t.Errorf("RunMC on a search job: %v", err)
	}
	mcJob := newMCTestJob(t)
	if _, err := coord.Run(context.Background(), mcJob); !errors.Is(err, ErrBadJob) {
		t.Errorf("Run on a Monte Carlo job: %v", err)
	}
	sharded := *mcJob
	sharded.Shard = ShardSpec{Index: 0, Count: 2}
	if _, err := coord.RunMC(context.Background(), &sharded); !errors.Is(err, ErrBadJob) {
		t.Errorf("RunMC on a pre-sharded job: %v", err)
	}
}

func TestMCJobWire(t *testing.T) {
	job := newMCTestJob(t)
	data, err := job.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJob(data)
	if err != nil {
		t.Fatal(err)
	}
	if *back.MC != *job.MC {
		t.Errorf("MC spec did not round-trip: %+v vs %+v", back.MC, job.MC)
	}

	bad := *job
	bad.MC = &MCSpec{Seed: 1, Trials: 0}
	data, err = bad.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeJob(data); !errors.Is(err, ErrBadJob) {
		t.Errorf("zero-trial job decoded: %v", err)
	}

	mixed := *job
	mixed.Scenarios = testScenarioSpecs()
	data, err = mixed.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeJob(data); !errors.Is(err, ErrBadJob) {
		t.Errorf("MC job with scenarios decoded: %v", err)
	}
}

// TestMCResultDigestRejected: a corrupted observation payload must fail
// decode — the digest is the transport-integrity check.
func TestMCResultDigestRejected(t *testing.T) {
	camp := &mc.Campaign{Design: casestudy.Baseline(), Seed: mcTestSeed, Trials: 4}
	obs, err := camp.Sample(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	good := &Result{
		Version: Version, Feasible: false, CandidateIndex: -1,
		MC: &MCResult{Lo: 0, Hi: 4, Obs: obs, Digest: mc.Digest(obs)},
	}
	data, err := good.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeResult(data); err != nil {
		t.Fatalf("valid MC result rejected: %v", err)
	}

	tampered := *good
	flipped := append([]mc.Obs{}, obs...)
	flipped[0].Events++
	tampered.MC = &MCResult{Lo: 0, Hi: 4, Obs: flipped, Digest: good.MC.Digest}
	data, err = tampered.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeResult(data); !errors.Is(err, ErrBadResult) {
		t.Errorf("tampered payload decoded: %v", err)
	}

	short := *good
	short.MC = &MCResult{Lo: 0, Hi: 5, Obs: obs, Digest: mc.Digest(obs)}
	data, err = short.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeResult(data); !errors.Is(err, ErrBadResult) {
		t.Errorf("short payload decoded: %v", err)
	}
}

func TestMergeMCErrors(t *testing.T) {
	camp := &mc.Campaign{Design: casestudy.Baseline(), Seed: mcTestSeed, Trials: 8}
	shard := func(index, count int) *Result {
		lo, hi := (ShardSpec{Index: index, Count: count}).Shard().Bounds(8)
		obs, err := camp.Sample(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		return &Result{
			Version: Version, Shard: ShardSpec{Index: index, Count: count},
			Feasible: false, CandidateIndex: -1,
			MC: &MCResult{Lo: lo, Hi: hi, Obs: obs, Digest: mc.Digest(obs)},
		}
	}

	full, err := camp.Sample(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeMC([]*Result{shard(0, 2), shard(1, 2)}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Digest(merged) != mc.Digest(full) {
		t.Error("two-shard merge differs from the full sample")
	}
	// Duplicates dedupe, first wins.
	merged, err = MergeMC([]*Result{shard(0, 2), shard(0, 2), shard(1, 2)}, 8)
	if err != nil || mc.Digest(merged) != mc.Digest(full) {
		t.Errorf("dedup merge: %v", err)
	}

	if _, err := MergeMC(nil, 8); !errors.Is(err, ErrBadResult) {
		t.Errorf("empty merge: %v", err)
	}
	if _, err := MergeMC([]*Result{shard(0, 2)}, 8); !errors.Is(err, ErrBadResult) {
		t.Errorf("missing shard: %v", err)
	}
	if _, err := MergeMC([]*Result{shard(0, 2), shard(2, 3)}, 8); !errors.Is(err, ErrBadResult) {
		t.Errorf("mixed partitioning: %v", err)
	}
	noMC := &Result{Version: Version, Shard: ShardSpec{Index: 1, Count: 2}, Feasible: false, CandidateIndex: -1}
	if _, err := MergeMC([]*Result{shard(0, 2), noMC}, 8); !errors.Is(err, ErrBadResult) {
		t.Errorf("payload-free result: %v", err)
	}
	if _, err := MergeMC([]*Result{shard(0, 2), shard(1, 2)}, 9); !errors.Is(err, ErrBadResult) {
		t.Errorf("coverage mismatch: %v", err)
	}
}
