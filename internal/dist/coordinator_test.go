package dist

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stordep/internal/opt"
)

// runCoordinator drives one distributed search over loopback workers and
// returns the merged Solution plus the run's metrics.
func runCoordinator(t *testing.T, workers []Worker, opts Options, job *Job) (*opt.Solution, *Metrics) {
	t.Helper()
	c, err := NewCoordinator(workers, opts)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := c.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	return sol, c.Metrics()
}

// TestCoordinatorMatchesSingleProcess is the headline determinism
// property: for any worker count and shard count, the distributed answer
// is byte-identical to the single-process search.
func TestCoordinatorMatchesSingleProcess(t *testing.T) {
	job := testJob(t)
	oracle := singleProcessOracle(t, job)

	for _, n := range []int{1, 2, 4} {
		workers := make([]Worker, n)
		for i := range workers {
			workers[i] = &Loopback{Name: fmt.Sprintf("w%d", i)}
		}
		sol, m := runCoordinator(t, workers, Options{}, job)
		requireIdentical(t, fmt.Sprintf("%d workers", n), oracle, sol)

		shards := int64(n * 4) // default ShardsPerWorker
		if m.ShardsCompleted.Load() != shards {
			t.Errorf("%d workers: completed %d shards, want %d", n, m.ShardsCompleted.Load(), shards)
		}
		// Every attempt announces itself with an initial heartbeat.
		if m.HeartbeatsReceived.Load() < shards {
			t.Errorf("%d workers: %d heartbeats, want >= %d", n, m.HeartbeatsReceived.Load(), shards)
		}
	}
}

func TestCoordinatorShardCountOverrides(t *testing.T) {
	job := testJob(t)
	oracle := singleProcessOracle(t, job)
	workers := []Worker{&Loopback{Name: "a"}, &Loopback{Name: "b"}}

	for _, tc := range []struct {
		shards, want int
	}{
		{1, 1},
		{5, 5},
		{24, 24},
		{100, 24}, // capped at the space size
	} {
		sol, m := runCoordinator(t, workers, Options{Shards: tc.shards}, job)
		requireIdentical(t, fmt.Sprintf("Shards=%d", tc.shards), oracle, sol)
		if m.ShardsCompleted.Load() != int64(tc.want) {
			t.Errorf("Shards=%d: completed %d, want %d", tc.shards, m.ShardsCompleted.Load(), tc.want)
		}
	}
}

// TestCoordinatorSurvivesInjectedFaults is the flaky-transport property
// test: under seeded random crashes, hangs and malformed responses —
// with speculation racing duplicate attempts on half the seeds — the
// merged Solution never deviates from the single-process oracle.
func TestCoordinatorSurvivesInjectedFaults(t *testing.T) {
	job := testJob(t)
	oracle := singleProcessOracle(t, job)

	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			workers := make([]Worker, 3)
			for i := range workers {
				// One rand per worker: a Loopback runs attempts
				// sequentially, so the source is never shared.
				rng := rand.New(rand.NewSource(seed*31 + int64(i)))
				workers[i] = &Loopback{
					Name: fmt.Sprintf("w%d", i),
					Intercept: func(*Job) Fault {
						switch p := rng.Float64(); {
						case p < 0.20:
							return FaultCrash
						case p < 0.30:
							return FaultMalformed
						case p < 0.35:
							return FaultHang
						default:
							return FaultNone
						}
					},
				}
			}
			opts := Options{
				AttemptTimeout: 250 * time.Millisecond, // reaps the hangs
				MaxAttempts:    12,
				RetryBackoff:   time.Millisecond,
			}
			if seed%2 == 1 {
				opts.SpeculateAfter = 25 * time.Millisecond
			}
			sol, m := runCoordinator(t, workers, opts, job)
			requireIdentical(t, "faulty transport", oracle, sol)
			if m.WorkerErrors.Load() > 0 && m.ShardsRetried.Load() == 0 {
				t.Error("errors were recorded but nothing was retried")
			}
		})
	}
}

// TestCoordinatorStragglerRedispatch is the acceptance scenario: one
// worker never responds, and the coordinator must re-dispatch its shards
// within the attempt timeout and still return the exact answer.
func TestCoordinatorStragglerRedispatch(t *testing.T) {
	job := testJob(t)
	oracle := singleProcessOracle(t, job)

	// The space evaluates in microseconds, so without a barrier the good
	// worker can drain every shard before the hung worker's goroutine is
	// even scheduled; hold the good worker until the straggler provably
	// owns a shard.
	hungGot := make(chan struct{})
	var once sync.Once
	workers := []Worker{
		&Loopback{Name: "hung", Intercept: func(*Job) Fault {
			once.Do(func() { close(hungGot) })
			return FaultHang
		}},
		&Loopback{Name: "good", Intercept: func(*Job) Fault {
			<-hungGot
			return FaultNone
		}},
	}
	sol, m := runCoordinator(t, workers, Options{
		Shards:         4,
		AttemptTimeout: 100 * time.Millisecond,
		RetryBackoff:   time.Millisecond,
	}, job)
	requireIdentical(t, "straggler", oracle, sol)
	if m.WorkerErrors.Load() < 1 {
		t.Error("the hung worker's timeouts should count as worker errors")
	}
	if m.ShardsRetried.Load() < 1 {
		t.Error("a timed-out shard should have been re-dispatched")
	}
	if last := m.LastSeen()["good"]; last.IsZero() {
		t.Error("the live worker should have reported liveness")
	}
}

// TestCoordinatorSpeculationRescuesStragglers uses no attempt timeout at
// all: with one worker hung forever, only speculative re-dispatch can
// finish the search.
func TestCoordinatorSpeculationRescuesStragglers(t *testing.T) {
	job := testJob(t)
	oracle := singleProcessOracle(t, job)

	hungGot := make(chan struct{})
	var once sync.Once
	workers := []Worker{
		&Loopback{Name: "hung", Intercept: func(*Job) Fault {
			once.Do(func() { close(hungGot) })
			return FaultHang
		}},
		&Loopback{Name: "fast", Intercept: func(*Job) Fault {
			<-hungGot
			return FaultNone
		}},
	}
	sol, m := runCoordinator(t, workers, Options{
		Shards:         4,
		SpeculateAfter: 20 * time.Millisecond,
	}, job)
	requireIdentical(t, "speculation", oracle, sol)
	if m.ShardsSpeculated.Load() < 1 {
		t.Error("the hung shard should have been speculatively re-dispatched")
	}
}

// TestCoordinatorDiscardsDuplicateResults races two live workers on one
// deliberately slow shard: both answers arrive, the first wins, and the
// duplicate must be discarded without perturbing the merge.
func TestCoordinatorDiscardsDuplicateResults(t *testing.T) {
	job := testJob(t)
	oracle := singleProcessOracle(t, job)

	slow := func(*Job) Fault { time.Sleep(80 * time.Millisecond); return FaultNone }
	workers := []Worker{
		&Loopback{Name: "a", Intercept: slow},
		&Loopback{Name: "b", Intercept: slow},
	}
	sol, m := runCoordinator(t, workers, Options{
		Shards:         1,
		SpeculateAfter: 10 * time.Millisecond,
	}, job)
	requireIdentical(t, "duplicate race", oracle, sol)
	if m.ShardsSpeculated.Load() != 1 {
		t.Fatalf("speculated %d shards, want 1", m.ShardsSpeculated.Load())
	}
	// The losing attempt may still be in flight when Run returns; its
	// discard is recorded when it lands.
	deadline := time.Now().Add(2 * time.Second)
	for m.DuplicatesDiscarded.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if m.DuplicatesDiscarded.Load() != 1 {
		t.Errorf("discarded %d duplicates, want 1", m.DuplicatesDiscarded.Load())
	}
}

func TestCoordinatorFailsAfterMaxAttempts(t *testing.T) {
	job := testJob(t)
	crash := func(*Job) Fault { return FaultCrash }
	c, err := NewCoordinator([]Worker{
		&Loopback{Name: "a", Intercept: crash},
		&Loopback{Name: "b", Intercept: crash},
	}, Options{MaxAttempts: 2, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(context.Background(), job)
	if !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("err = %v, want the injected crash as the cause", err)
	}
	if !strings.Contains(err.Error(), "gave up") {
		t.Errorf("error should say the shard gave up: %v", err)
	}
}

func TestCoordinatorHonorsCancellation(t *testing.T) {
	job := testJob(t)
	hang := func(*Job) Fault { return FaultHang }
	c, err := NewCoordinator([]Worker{&Loopback{Name: "a", Intercept: hang}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = c.Run(ctx, job)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v to unwind", elapsed)
	}
}

func TestCoordinatorRejectsBadInput(t *testing.T) {
	if _, err := NewCoordinator(nil, Options{}); !errors.Is(err, ErrNoWorkers) {
		t.Error("no workers should be ErrNoWorkers")
	}
	if _, err := NewCoordinator([]Worker{&Loopback{}}, Options{}); err == nil {
		t.Error("empty worker ID should be rejected")
	}
	if _, err := NewCoordinator([]Worker{&Loopback{Name: "a"}, &Loopback{Name: "a"}}, Options{}); err == nil {
		t.Error("duplicate worker IDs should be rejected")
	}

	c, err := NewCoordinator([]Worker{&Loopback{Name: "a"}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	job := testJob(t)
	job.Shard = ShardSpec{Index: 0, Count: 2}
	if _, err := c.Run(context.Background(), job); !errors.Is(err, ErrBadJob) {
		t.Errorf("pre-sharded job: err = %v, want ErrBadJob", err)
	}

	tight := testJob(t)
	tight.Budget = 5 // the space is 24 candidates
	if _, err := c.Run(context.Background(), tight); !errors.Is(err, opt.ErrSpaceTooLarge) {
		t.Errorf("over-budget job: err = %v, want opt.ErrSpaceTooLarge", err)
	}
}

func TestCoordinatorHonorsBudgetWithinLimit(t *testing.T) {
	job := testJob(t)
	job.Budget = 24
	oracle := singleProcessOracle(t, job)
	sol, _ := runCoordinator(t, []Worker{&Loopback{Name: "a"}}, Options{}, job)
	requireIdentical(t, "budget at the limit", oracle, sol)
}

// TestBackoffDelayJitteredWithinBounds: retry delays are exponential in
// the failure count, land in [base<<n / 2, base<<n], and actually vary.
func TestBackoffDelayJitteredWithinBounds(t *testing.T) {
	c, err := NewCoordinator([]Worker{&Loopback{Name: "w"}},
		Options{RetryBackoff: 100 * time.Millisecond, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[time.Duration]bool)
	for i := 0; i < 200; i++ {
		d := c.backoffDelay(1)
		if d < 50*time.Millisecond || d > 100*time.Millisecond {
			t.Fatalf("backoffDelay(1) = %v, want within [50ms, 100ms]", d)
		}
		seen[d] = true
	}
	if len(seen) < 2 {
		t.Error("200 draws produced a single delay; jitter is not jittering")
	}
	if d := c.backoffDelay(3); d < 200*time.Millisecond || d > 400*time.Millisecond {
		t.Errorf("backoffDelay(3) = %v, want within [200ms, 400ms]", d)
	}
	if d := c.backoffDelay(50); d > 100*time.Millisecond<<10 {
		t.Errorf("backoffDelay(50) = %v, want capped at 1024x the base", d)
	}
}

// TestBackoffDelaySeedDeterminism: the same seed replays the same jitter
// sequence, so a run is reproducible; a different seed varies it.
func TestBackoffDelaySeedDeterminism(t *testing.T) {
	draw := func(seed int64) []time.Duration {
		c, err := NewCoordinator([]Worker{&Loopback{Name: "w"}},
			Options{RetryBackoff: 64 * time.Millisecond, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]time.Duration, 32)
		for i := range out {
			out[i] = c.backoffDelay(1 + i%4)
		}
		return out
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: %v vs %v for the same seed", i, a[i], b[i])
		}
	}
	other := draw(8)
	same := true
	for i := range a {
		if a[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("32 draws identical across different seeds")
	}
}

// TestCoordinatorGiveUpAccounting pins the give-up path exactly: with
// one shard and MaxAttempts 3, the failure names the last worker and
// wraps the underlying cause, and the retry counters are exact.
func TestCoordinatorGiveUpAccounting(t *testing.T) {
	job := testJob(t)
	c, err := NewCoordinator([]Worker{&Loopback{Name: "solo", Intercept: func(*Job) Fault { return FaultCrash }}},
		Options{Shards: 1, MaxAttempts: 3, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(context.Background(), job)
	if !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("err = %v, want the underlying crash wrapped", err)
	}
	for _, want := range []string{"gave up", "worker solo", "3 failed attempts"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("give-up error %q should contain %q", err, want)
		}
	}
	m := c.Metrics()
	if got := m.WorkerErrors.Load(); got != 3 {
		t.Errorf("WorkerErrors = %d, want exactly 3", got)
	}
	if got := m.ShardsRetried.Load(); got != 2 {
		t.Errorf("ShardsRetried = %d, want exactly 2 (third failure gives up)", got)
	}
	if got := m.ShardsCompleted.Load(); got != 0 {
		t.Errorf("ShardsCompleted = %d, want 0", got)
	}
}

// TestCoordinatorRetryAccountingExact: two injected crashes then
// success — the retry and duplicate counters match exactly and the
// answer is still byte-identical.
func TestCoordinatorRetryAccountingExact(t *testing.T) {
	job := testJob(t)
	oracle := singleProcessOracle(t, job)
	var n int64
	w := &Loopback{Name: "w", Intercept: func(*Job) Fault {
		if atomic.AddInt64(&n, 1) <= 2 {
			return FaultCrash
		}
		return FaultNone
	}}
	sol, m := runCoordinator(t, []Worker{w},
		Options{Shards: 1, MaxAttempts: 5, RetryBackoff: time.Millisecond}, job)
	requireIdentical(t, "retry then success", oracle, sol)
	if got := m.WorkerErrors.Load(); got != 2 {
		t.Errorf("WorkerErrors = %d, want exactly 2", got)
	}
	if got := m.ShardsRetried.Load(); got != 2 {
		t.Errorf("ShardsRetried = %d, want exactly 2", got)
	}
	if got := m.DuplicatesDiscarded.Load(); got != 0 {
		t.Errorf("DuplicatesDiscarded = %d, want 0 (no speculation ran)", got)
	}
	if got := m.ShardsCompleted.Load(); got != 1 {
		t.Errorf("ShardsCompleted = %d, want 1", got)
	}
}

// TestCoordinatorPrunedMatchesExhaustive: a pruning fleet returns the
// same answer as the unpruned single-process oracle for any worker
// count, the merged assessed/pruned split covers the space exactly, and
// the validated pruning counters surface in the coordinator's metrics.
// The K-way cell also pins the incumbent story: every vote on a shard
// carries the same frozen incumbent, so honest votes stay byte-identical
// and validation never misfires on schedule-dependent counters.
func TestCoordinatorPrunedMatchesExhaustive(t *testing.T) {
	job := testJob(t)
	oracle := singleProcessOracle(t, job)
	knobs, err := BuildKnobs(job.Knobs)
	if err != nil {
		t.Fatal(err)
	}
	space, err := opt.SpaceSize(knobs)
	if err != nil {
		t.Fatal(err)
	}
	pjob := *job
	pjob.Prune = true

	for _, n := range []int{1, 2, 4} {
		workers := make([]Worker, n)
		for i := range workers {
			workers[i] = &Loopback{Name: fmt.Sprintf("w%d", i)}
		}
		sol, m := runCoordinator(t, workers, Options{}, &pjob)
		requireAnswerIdentical(t, fmt.Sprintf("%d pruning workers", n), oracle, sol)
		if sol.Evaluations+sol.CandidatesPruned != space {
			t.Errorf("%d workers: assessed %d + pruned %d != space %d",
				n, sol.Evaluations, sol.CandidatesPruned, space)
		}
		if m.CandidatesPruned.Load() != int64(sol.CandidatesPruned) {
			t.Errorf("%d workers: metrics pruned %d, merged solution says %d",
				n, m.CandidatesPruned.Load(), sol.CandidatesPruned)
		}
		if m.BoundsComputed.Load() != int64(sol.BoundsComputed) {
			t.Errorf("%d workers: metrics bounds %d, merged solution says %d",
				n, m.BoundsComputed.Load(), sol.BoundsComputed)
		}
	}

	workers := []Worker{&Loopback{Name: "a"}, &Loopback{Name: "b"}, &Loopback{Name: "c"}}
	sol, m := runCoordinator(t, workers, Options{ValidateK: 2}, &pjob)
	requireAnswerIdentical(t, "pruned under 2-way validation", oracle, sol)
	if sol.Evaluations+sol.CandidatesPruned != space {
		t.Errorf("validated: assessed %d + pruned %d != space %d",
			sol.Evaluations, sol.CandidatesPruned, space)
	}
	if m.ValidationMismatches.Load() != 0 {
		t.Errorf("honest pruning workers produced %d validation mismatches", m.ValidationMismatches.Load())
	}
}
