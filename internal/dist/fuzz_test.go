package dist

import (
	"bytes"
	"testing"
)

// FuzzDecodeJob asserts the job decoder never panics on malformed,
// truncated or version-skewed input, and that anything it does accept
// survives the downstream build steps and re-encodes cleanly.
func FuzzDecodeJob(f *testing.F) {
	job, err := newTestJob()
	if err != nil {
		f.Fatal(err)
	}
	seed, err := job.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add(bytes.Replace(seed, []byte(`"version":1`), []byte(`"version":9`), 1))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"design":{},"knobs":[{"kind":"policy"}],"scenarios":[{"scope":"array"}]}`))
	f.Add([]byte(`{"version":1,"shard":{"index":-3,"count":2}}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		j, err := DecodeJob(data)
		if err != nil {
			return
		}
		// A decoded job must re-encode; the build steps may reject its
		// contents but must not panic on them.
		if _, err := j.Encode(); err != nil {
			t.Fatalf("decoded job failed to re-encode: %v", err)
		}
		_, _ = BuildKnobs(j.Knobs)
		_, _ = BuildScenarios(j.Scenarios)
		_, _, _ = BuildObjective(j.Objective)
	})
}

// FuzzDecodeResult asserts the result decoder never panics and that
// accepted results re-encode and rebuild without panicking.
func FuzzDecodeResult(f *testing.F) {
	job, err := newTestJob()
	if err != nil {
		f.Fatal(err)
	}
	job.Shard = ShardSpec{Index: 0, Count: 3}
	res, err := ExecuteJob(job, nil)
	if err != nil {
		f.Fatal(err)
	}
	seed, err := res.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)*2/3])
	f.Add(bytes.Replace(seed, []byte(`"version":1`), []byte(`"version":0`), 1))
	f.Add([]byte(`{"version":1,"feasible":true,"candidateIndex":3}`))
	f.Add([]byte(`{"version":1,"feasible":false,"candidateIndex":-1,"evaluations":5}`))
	f.Add([]byte(`{"version":1,"candidateIndex":-1,"design":"not an object"}`))
	f.Add([]byte(`[]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeResult(data)
		if err != nil {
			return
		}
		if _, err := r.Encode(); err != nil {
			t.Fatalf("decoded result failed to re-encode: %v", err)
		}
		// Rebuilding the Solution may reject a bogus design payload, but
		// must not panic.
		_, _ = r.Solution()
	})
}
