package dist

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"stordep/internal/casestudy"
	"stordep/internal/opt"
)

// TestHTTPEndToEnd runs a coordinator against two real HTTP workers
// (httptest servers wrapping NewHandler) and requires the merged answer
// to be byte-identical to the single-process search — the satellite e2e
// scenario in-process.
func TestHTTPEndToEnd(t *testing.T) {
	job := testJob(t)
	oracle := singleProcessOracle(t, job)

	var workers []Worker
	for i := 0; i < 2; i++ {
		srv := httptest.NewServer(NewHandler(HandlerOptions{HeartbeatEvery: 10 * time.Millisecond}))
		defer srv.Close()
		workers = append(workers, &HTTPWorker{BaseURL: srv.URL, Name: fmt.Sprintf("http%d", i)})
	}
	for _, w := range workers {
		if err := w.(*HTTPWorker).Health(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	c, err := NewCoordinator(workers, Options{AttemptTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := c.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "HTTP transport", oracle, sol)

	m := c.Metrics()
	if m.HeartbeatsReceived.Load() < m.ShardsCompleted.Load() {
		t.Errorf("%d heartbeats for %d shards; every run streams at least one",
			m.HeartbeatsReceived.Load(), m.ShardsCompleted.Load())
	}
	if len(m.LastSeen()) != 2 {
		t.Errorf("liveness for %d workers, want 2", len(m.LastSeen()))
	}
}

func TestHandlerHealth(t *testing.T) {
	srv := httptest.NewServer(NewHandler(HandlerOptions{}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + HealthPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health: HTTP %d", resp.StatusCode)
	}
	w := &HTTPWorker{BaseURL: srv.URL}
	if err := w.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestHandlerRejectsBadRequests(t *testing.T) {
	srv := httptest.NewServer(NewHandler(HandlerOptions{}))
	defer srv.Close()

	resp, err := http.Post(srv.URL+RunPath, "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed job: HTTP %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + RunPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on run: HTTP %d, want 405", resp.StatusCode)
	}
}

func TestHTTPWorkerReportsExecutionErrors(t *testing.T) {
	srv := httptest.NewServer(NewHandler(HandlerOptions{}))
	defer srv.Close()

	// Structurally valid, but the knob targets a level the design does
	// not have, so execution fails after decode: the worker must stream
	// an error line, not hang or fabricate a result.
	job := testJob(t)
	job.Knobs = []KnobSpec{RetCntKnobSpec("nonexistent-level", []int{1, 2})}
	w := &HTTPWorker{BaseURL: srv.URL}
	_, err := w.Run(context.Background(), job, nil)
	if err == nil || !strings.Contains(err.Error(), "nonexistent-level") {
		t.Errorf("err = %v, want the remote execution error surfaced", err)
	}
}

func TestHTTPWorkerRejectsBadServers(t *testing.T) {
	// A server that dies without a terminal line.
	truncated := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"type":"heartbeat","evals":3}`)
	}))
	defer truncated.Close()
	w := &HTTPWorker{BaseURL: truncated.URL}
	var beats int
	job := testJob(t)
	if _, err := w.Run(context.Background(), job, func(int64) { beats++ }); !errors.Is(err, ErrBadResult) {
		t.Errorf("truncated stream: err = %v, want ErrBadResult", err)
	}
	if beats != 1 {
		t.Errorf("heartbeat callback ran %d times, want 1", beats)
	}

	// An HTTP error status.
	failing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "on fire", http.StatusInternalServerError)
	}))
	defer failing.Close()
	w = &HTTPWorker{BaseURL: failing.URL}
	if _, err := w.Run(context.Background(), job, nil); err == nil || !strings.Contains(err.Error(), "500") {
		t.Errorf("500 server: err = %v, want the status surfaced", err)
	}

	// Garbage on the stream.
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "<html>hello</html>")
	}))
	defer garbage.Close()
	w = &HTTPWorker{BaseURL: garbage.URL}
	if _, err := w.Run(context.Background(), job, nil); !errors.Is(err, ErrBadResult) {
		t.Errorf("garbage stream: err = %v, want ErrBadResult", err)
	}

	// An unknown stream message type.
	unknown := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"type":"gossip"}`)
	}))
	defer unknown.Close()
	w = &HTTPWorker{BaseURL: unknown.URL}
	if _, err := w.Run(context.Background(), job, nil); !errors.Is(err, ErrBadResult) {
		t.Errorf("unknown message: err = %v, want ErrBadResult", err)
	}

	// Version skew on the health endpoint.
	skewed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"status":"ok","version":99}`)
	}))
	defer skewed.Close()
	w = &HTTPWorker{BaseURL: skewed.URL}
	if err := w.Health(context.Background()); !errors.Is(err, ErrVersion) {
		t.Errorf("skewed health: err = %v, want ErrVersion", err)
	}
}

func TestHTTPWorkerHonorsContext(t *testing.T) {
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if f, ok := w.(http.Flusher); ok {
			fmt.Fprintln(w, `{"type":"heartbeat"}`)
			f.Flush()
		}
		<-r.Context().Done()
	}))
	defer hang.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	w := &HTTPWorker{BaseURL: hang.URL}
	start := time.Now()
	_, err := w.Run(ctx, testJob(t), nil)
	if err == nil {
		t.Fatal("expected an error from the canceled stream")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v to unwind", elapsed)
	}
}

// TestHTTPLargeSpace6144 distributes the benchmark harness's
// 6144-candidate space (Table 7 knobs x a 512-option vault retention
// sweep) over two HTTP workers on loopback TCP and checks byte-identity
// with the single-process search. With -v it logs the wall-clock split,
// the source of the EXPERIMENTS.md "Distributed search" numbers.
func TestHTTPLargeSpace6144(t *testing.T) {
	if testing.Short() {
		t.Skip("6144-candidate space in -short mode")
	}
	// The internal/bench large case: the Table 7-shaped knobs extended
	// with a 512-option vault retention sweep, 2 x 2 x 3 x 512 = 6144.
	specs := testKnobSpecs(t)[:3]
	retOpts := make([]int, 512)
	for i := range retOpts {
		retOpts[i] = i + 1
	}
	specs = append(specs, RetCntKnobSpec("vaulting", retOpts))
	job, err := NewJob(casestudy.Baseline(), specs, testScenarioSpecs(), ObjectiveSpec{Kind: "worst"})
	if err != nil {
		t.Fatal(err)
	}

	knobs, err := BuildKnobs(specs)
	if err != nil {
		t.Fatal(err)
	}
	scs, err := BuildScenarios(job.Scenarios)
	if err != nil {
		t.Fatal(err)
	}
	obj, _, err := BuildObjective(job.Objective)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	oracle, err := opt.ExhaustiveOpts(casestudy.Baseline(), knobs, scs, obj, opt.ExhaustiveOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	single := time.Since(t0)

	var workers []Worker
	for i := 0; i < 2; i++ {
		srv := httptest.NewServer(NewHandler(HandlerOptions{Workers: 1}))
		defer srv.Close()
		workers = append(workers, &HTTPWorker{BaseURL: srv.URL, Name: fmt.Sprintf("w%d", i)})
	}
	c, err := NewCoordinator(workers, Options{WorkersPerJob: 1})
	if err != nil {
		t.Fatal(err)
	}
	t0 = time.Now()
	sol, err := c.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	dual := time.Since(t0)

	requireIdentical(t, "6144-candidate space", oracle, sol)
	if oracle.Evaluations != 6144 {
		t.Errorf("space size %d, want 6144", oracle.Evaluations)
	}
	t.Logf("single-process (1 thread): %v; 2 HTTP workers (1 thread each): %v; speedup %.2fx",
		single, dual, float64(single)/float64(dual))
}
