package dist

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ChaosFault enumerates the misbehaviors a ChaosWorker injects. The
// first group (delay, drop, crash-mid) are crash-class faults the
// retry/timeout machinery must absorb; wrong-shard is a shape fault the
// attempt validator must reject; the last group (corrupt, lie) are
// byzantine faults — structurally valid, wrong answers that only K-way
// cross-validation can catch.
type ChaosFault int

const (
	// ChaosHonest answers normally.
	ChaosHonest ChaosFault = iota
	// ChaosDelay sleeps a seeded-random fraction of MaxDelay before
	// answering honestly — a straggler.
	ChaosDelay
	// ChaosDrop errors out before evaluating — a crashed worker.
	ChaosDrop
	// ChaosCrashMid evaluates the shard, then errors instead of
	// replying — a worker crashing mid-stream, after the work was done.
	ChaosCrashMid
	// ChaosWrongShard answers honestly but for the wrong shard index —
	// a confused worker the coordinator must reject by shape.
	ChaosWrongShard
	// ChaosCorrupt flips the answer's score by a worker-specific epsilon:
	// a bit-rot-style corruption that passes every structural check and
	// changes the result digest.
	ChaosCorrupt
	// ChaosLie reports a strictly better (lower) score for the shard's
	// winner — the plausibly-lying answer that would poison the global
	// merge if it were ever believed.
	ChaosLie

	chaosFaultCount
)

// String renders the fault for logs and test labels.
func (f ChaosFault) String() string {
	switch f {
	case ChaosHonest:
		return "honest"
	case ChaosDelay:
		return "delay"
	case ChaosDrop:
		return "drop"
	case ChaosCrashMid:
		return "crash-mid"
	case ChaosWrongShard:
		return "wrong-shard"
	case ChaosCorrupt:
		return "corrupt"
	case ChaosLie:
		return "lie"
	default:
		return fmt.Sprintf("ChaosFault(%d)", int(f))
	}
}

// ErrChaosDrop is the error a ChaosDrop attempt returns.
var ErrChaosDrop = errors.New("dist: chaos-injected drop")

// ErrChaosCrashMid is the error a ChaosCrashMid attempt returns after
// having evaluated its shard.
var ErrChaosCrashMid = errors.New("dist: chaos-injected crash after evaluation")

// ChaosOptions configures a ChaosWorker's seeded fault mix. Each
// probability is per attempt, drawn in the order delay, drop,
// crash-mid, wrong-shard, corrupt, lie; whatever remains is honest.
type ChaosOptions struct {
	// Seed drives every random choice; the same seed replays the same
	// fault schedule for a given attempt sequence.
	Seed int64
	// PDelay/PDrop/PCrashMid/PWrongShard/PCorrupt/PLie are the per-fault
	// probabilities.
	PDelay, PDrop, PCrashMid, PWrongShard, PCorrupt, PLie float64
	// MaxDelay bounds the ChaosDelay sleep. Default 10ms.
	MaxDelay time.Duration
	// PFlapHealth is the probability any single health probe fails —
	// flapping health the registry's eviction logic must ride out.
	PFlapHealth float64
}

// ErrChaosFlap is the error a flapping health probe returns.
var ErrChaosFlap = errors.New("dist: chaos-injected health flap")

// ChaosWorker wraps a Worker with seeded fault injection: delays,
// drops, crashes mid-stream, wrong-shard answers, corrupted results,
// plausibly-lying scores, and flapping health probes. Two ChaosWorkers
// never produce byte-identical wrong answers — each lie and corruption
// mixes in the worker's own identity — so independent liars cannot
// accidentally collude into a fake majority; defeating K-way validation
// requires genuinely coordinated byzantine workers, which is outside
// the honest-majority contract.
type ChaosWorker struct {
	inner Worker
	o     ChaosOptions

	mu  sync.Mutex
	rng *rand.Rand
	hmu sync.Mutex
	hrn *rand.Rand

	// Faults counts injected faults by ChaosFault index; FlapsInjected
	// counts failed health probes; LiesReturned counts byzantine
	// results (corrupt or lie) actually handed to the coordinator.
	Faults        [chaosFaultCount]atomic.Int64
	FlapsInjected atomic.Int64
	LiesReturned  atomic.Int64
}

// NewChaosWorker wraps inner with the given fault mix.
func NewChaosWorker(inner Worker, o ChaosOptions) *ChaosWorker {
	if o.MaxDelay <= 0 {
		o.MaxDelay = 10 * time.Millisecond
	}
	return &ChaosWorker{
		inner: inner,
		o:     o,
		rng:   rand.New(rand.NewSource(o.Seed)),
		// Health probes run concurrently with attempts (the registry
		// prober vs. the dispatch loop) on an independent stream, so
		// probe timing never perturbs the attempt fault schedule.
		hrn: rand.New(rand.NewSource(o.Seed ^ 0x5f1ab)),
	}
}

// ID implements Worker.
func (c *ChaosWorker) ID() string { return c.inner.ID() }

// Health implements Prober: it flaps with PFlapHealth, otherwise
// delegates to the inner worker's prober when it has one.
func (c *ChaosWorker) Health(ctx context.Context) error {
	c.hmu.Lock()
	flap := c.hrn.Float64() < c.o.PFlapHealth
	c.hmu.Unlock()
	if flap {
		c.FlapsInjected.Add(1)
		return fmt.Errorf("%w: worker %s", ErrChaosFlap, c.ID())
	}
	if p, ok := c.inner.(Prober); ok {
		return p.Health(ctx)
	}
	return ctx.Err()
}

// pick draws this attempt's fault from the seeded source.
func (c *ChaosWorker) pick() (ChaosFault, time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.rng.Float64()
	delay := time.Duration(c.rng.Int63n(int64(c.o.MaxDelay) + 1))
	for _, f := range []struct {
		prob  float64
		fault ChaosFault
	}{
		{c.o.PDelay, ChaosDelay},
		{c.o.PDrop, ChaosDrop},
		{c.o.PCrashMid, ChaosCrashMid},
		{c.o.PWrongShard, ChaosWrongShard},
		{c.o.PCorrupt, ChaosCorrupt},
		{c.o.PLie, ChaosLie},
	} {
		if p < f.prob {
			return f.fault, delay
		}
		p -= f.prob
	}
	return ChaosHonest, delay
}

// workerEpsilon derives a small, strictly positive, worker-specific
// perturbation factor so no two workers corrupt or lie identically.
func (c *ChaosWorker) workerEpsilon() float64 {
	h := fnv.New32a()
	h.Write([]byte(c.ID()))
	return 1e-3 * (1 + float64(h.Sum32()%997))
}

// Run implements Worker, injecting this attempt's fault around the
// inner worker's execution.
func (c *ChaosWorker) Run(ctx context.Context, job *Job, heartbeat func(evals int64)) (*Result, error) {
	fault, delay := c.pick()
	c.Faults[fault].Add(1)
	switch fault {
	case ChaosDrop:
		return nil, fmt.Errorf("%w: worker %s", ErrChaosDrop, c.ID())
	case ChaosDelay:
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	res, err := c.inner.Run(ctx, job, heartbeat)
	if err != nil {
		return nil, err
	}

	switch fault {
	case ChaosCrashMid:
		return nil, fmt.Errorf("%w: worker %s, shard %d/%d", ErrChaosCrashMid, c.ID(), res.Shard.Index, res.Shard.Count)
	case ChaosWrongShard:
		bad := *res
		if bad.Shard.Count > 1 {
			bad.Shard.Index = (bad.Shard.Index + 1) % bad.Shard.Count
		} else {
			bad.Shard.Count++ // single shard: misreport the partitioning
		}
		return &bad, nil
	case ChaosCorrupt:
		// Bit-rot: nudge the score by a worker-specific epsilon in the
		// direction that would NOT win a merge — corruption, not fraud.
		if res.Feasible {
			bad := *res
			bad.Score += bad.Score * c.workerEpsilon()
			c.LiesReturned.Add(1)
			return &bad, nil
		}
		return res, nil
	case ChaosLie:
		// Fraud: claim the shard's winner scored strictly better than it
		// did, by a worker-specific margin. Structurally flawless; if
		// believed, this answer wins the global merge.
		if res.Feasible {
			bad := *res
			bad.Score -= bad.Score*0.25 + c.workerEpsilon()
			c.LiesReturned.Add(1)
			return &bad, nil
		}
		return res, nil
	}
	return res, nil
}
