package dist

import (
	"fmt"
	"sync/atomic"
	"time"

	"stordep/internal/config"
	"stordep/internal/core"
	"stordep/internal/mc"
	"stordep/internal/units"
)

// This file is the Monte Carlo face of the dist protocol: the same
// Job/Result wire format, coordinator machinery (retries, speculation,
// K-way validation) and Worker transports, carrying trial ranges instead
// of candidate-space shards. The engine's determinism contract — trial i
// depends only on (seed, i) — is what makes the distribution safe: any
// partitioning concatenates back into exactly the single-process
// observation sequence, and MergeMC proves it did via per-shard digests.

// NewMCJob assembles an unsharded Monte Carlo job for a campaign over
// the design. mission <= 0 means the engine default (one year).
func NewMCJob(design *core.Design, seed int64, trials int, mission time.Duration) (*Job, error) {
	data, err := config.Marshal(design)
	if err != nil {
		return nil, fmt.Errorf("%w: design: %v", ErrBadJob, err)
	}
	spec := &MCSpec{Seed: seed, Trials: trials}
	if mission > 0 {
		spec.Mission = units.FormatDuration(mission)
	}
	j := &Job{Version: Version, Design: data, MC: spec}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return j, nil
}

// mcCampaign rebuilds the worker-side campaign from a decoded job.
func mcCampaign(job *Job) (*mc.Campaign, error) {
	base, err := config.Unmarshal(job.Design)
	if err != nil {
		return nil, fmt.Errorf("%w: design: %v", ErrBadJob, err)
	}
	var mission time.Duration
	if job.MC.Mission != "" {
		if mission, err = units.ParseDuration(job.MC.Mission); err != nil {
			return nil, fmt.Errorf("%w: mission: %v", ErrBadJob, err)
		}
	}
	return &mc.Campaign{
		Design:  base,
		Seed:    job.MC.Seed,
		Trials:  job.MC.Trials,
		Workers: job.Workers,
		Mission: mission,
	}, nil
}

// executeMC samples the job's trial range — the slice of the campaign
// its Shard selects, with the same balanced-partition semantics the
// candidate search uses — and wraps the observations for the wire.
func executeMC(job *Job, progress *atomic.Int64) (*Result, error) {
	camp, err := mcCampaign(job)
	if err != nil {
		return nil, err
	}
	lo, hi := job.Shard.Shard().Bounds(job.MC.Trials)
	obs, err := camp.Sample(lo, hi)
	if err != nil {
		return nil, err
	}
	if progress != nil {
		progress.Store(int64(len(obs)))
	}
	return &Result{
		Version:        Version,
		Shard:          job.Shard,
		Feasible:       false,
		CandidateIndex: -1,
		Evaluations:    len(obs),
		MC:             &MCResult{Lo: lo, Hi: hi, Obs: obs, Digest: mc.Digest(obs)},
	}, nil
}

// MergeMC combines Monte Carlo shard results into the full campaign's
// observation sequence, in trial order. Results must share one shard
// count, every shard of the partitioning must be present, ranges must
// tile [0, trials) exactly, and each payload must match its digest;
// duplicates (speculative re-dispatch) are deduped, first occurrence
// wins. The returned slice feeds mc.(*Campaign).Estimate, which then
// yields a report byte-identical to the single-process campaign.
func MergeMC(results []*Result, trials int) ([]mc.Obs, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("%w: no results to merge", ErrBadResult)
	}
	count := results[0].Shard.Count
	byIndex := make(map[int]*Result, len(results))
	for i, r := range results {
		if r == nil {
			return nil, fmt.Errorf("%w: result %d is missing", ErrBadResult, i)
		}
		if r.MC == nil {
			return nil, fmt.Errorf("%w: result %d has no Monte Carlo payload", ErrBadResult, i)
		}
		if r.Shard.Count != count {
			return nil, fmt.Errorf("%w: result %d is shard %d/%d, others have %d shards — results must come from one partitioning",
				ErrBadResult, i, r.Shard.Index, r.Shard.Count, count)
		}
		if _, dup := byIndex[r.Shard.Index]; dup {
			continue
		}
		if err := r.MC.Validate(); err != nil {
			return nil, fmt.Errorf("result %d (shard %d/%d): %w", i, r.Shard.Index, r.Shard.Count, err)
		}
		byIndex[r.Shard.Index] = r
	}
	want := count
	if want == 0 {
		want = 1 // a zero shard count is the whole campaign as one result
	}
	obs := make([]mc.Obs, 0, trials)
	next := 0
	for s := 0; s < want; s++ {
		r, ok := byIndex[s]
		if !ok {
			return nil, fmt.Errorf("%w: missing shard %d/%d", ErrBadResult, s, count)
		}
		if r.MC.Lo != next {
			return nil, fmt.Errorf("%w: shard %d covers trials [%d, %d), expected to start at %d",
				ErrBadResult, s, r.MC.Lo, r.MC.Hi, next)
		}
		obs = append(obs, r.MC.Obs...)
		next = r.MC.Hi
	}
	if next != trials {
		return nil, fmt.Errorf("%w: shards cover %d trials, campaign has %d", ErrBadResult, next, trials)
	}
	return obs, nil
}
