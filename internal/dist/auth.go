package dist

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"errors"
)

// AuthHeader carries a job's HMAC signature on the HTTP transport. The
// value is Sign(token, body) over the exact request body bytes.
const AuthHeader = "X-Stordep-Auth"

// ErrUnauthenticated marks a job rejected before evaluation because its
// signature was missing or wrong. It is deliberately distinct from
// ErrBadJob: an operator seeing it should check tokens, not payloads.
var ErrUnauthenticated = errors.New("dist: unauthenticated job")

// Sign computes the hex HMAC-SHA256 of payload under the shared secret.
// Both sides of the protocol sign the exact wire bytes: the coordinator
// signs the encoded Job it POSTs, the worker signs the encoded Result it
// streams back, so neither direction can be forged or tampered with by
// anyone not holding the token.
func Sign(token string, payload []byte) string {
	mac := hmac.New(sha256.New, []byte(token))
	mac.Write(payload)
	return hex.EncodeToString(mac.Sum(nil))
}

// Verify reports whether sig is a valid signature of payload under the
// shared secret. The comparison is constant-time (hmac.Equal), so a
// byzantine client cannot recover the expected MAC byte by byte through
// timing.
func Verify(token string, payload []byte, sig string) bool {
	want := Sign(token, payload)
	return hmac.Equal([]byte(want), []byte(sig))
}
