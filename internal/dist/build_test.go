package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"stordep/internal/failure"
	"stordep/internal/opt"
	"stordep/internal/units"
)

func TestBuildKnobsMatchesConstructors(t *testing.T) {
	specs := testKnobSpecs(t)
	specs = append(specs, AccWKnobSpec("backup", []time.Duration{units.Week, 2 * units.Week}))
	knobs, err := BuildKnobs(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(knobs) != len(specs) {
		t.Fatalf("built %d knobs from %d specs", len(knobs), len(specs))
	}
	wantNames := []string{"vaulting policy", "split-mirror PiT technique", "backup retCnt", "tape-library count", "backup accW"}
	wantOpts := []int{2, 2, 3, 2, 2}
	for i, k := range knobs {
		if k.Name != wantNames[i] {
			t.Errorf("knob %d name %q, want %q", i, k.Name, wantNames[i])
		}
		if len(k.Options) != wantOpts[i] {
			t.Errorf("knob %d has %d options, want %d", i, len(k.Options), wantOpts[i])
		}
	}
	// The rebuilt space must size identically on both ends of the wire.
	space, err := opt.SpaceSize(knobs)
	if err != nil {
		t.Fatal(err)
	}
	if space != 2*2*3*2*2 {
		t.Errorf("space size %d, want 48", space)
	}
}

func TestBuildKnobsRejects(t *testing.T) {
	cases := []struct {
		name string
		spec KnobSpec
	}{
		{"unknown kind", KnobSpec{Kind: "warp", Target: "x"}},
		{"empty kind", KnobSpec{Target: "x"}},
		{"policy without options", KnobSpec{Kind: KnobPolicy, Target: "vaulting"}},
		{"policy names/policies mismatch", KnobSpec{Kind: KnobPolicy, Target: "vaulting", Names: []string{"a"}}},
		{"policy with garbage option", KnobSpec{Kind: KnobPolicy, Target: "v", Names: []string{"a"}, Policies: []json.RawMessage{json.RawMessage(`{"retCnt":`)}}},
		{"accw without durations", KnobSpec{Kind: KnobAccW, Target: "backup"}},
		{"accw bad duration", KnobSpec{Kind: KnobAccW, Target: "backup", Durations: []string{"yesterday"}}},
		{"retcnt without ints", KnobSpec{Kind: KnobRetCnt, Target: "backup"}},
		{"links without ints", KnobSpec{Kind: KnobLinks, Target: "wan"}},
	}
	for _, tc := range cases {
		if _, err := BuildKnobs([]KnobSpec{tc.spec}); !errors.Is(err, ErrBadJob) {
			t.Errorf("%s: err = %v, want ErrBadJob", tc.name, err)
		}
	}
}

func TestScenarioSpecsRoundTrip(t *testing.T) {
	want := []failure.Scenario{
		{Name: "object", Scope: failure.ScopeObject, TargetAge: 24 * time.Hour, RecoverSize: units.MB},
		{Scope: failure.ScopeArray},
		{Scope: failure.ScopeSite},
	}
	got, err := BuildScenarios(ScenarioSpecs(want))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("round trip changed scenario count: %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("scenario %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestBuildScenariosRejects(t *testing.T) {
	cases := []ScenarioSpec{
		{Scope: "galaxy"},
		{Scope: ""},
		{Scope: failure.ScopeArray.String(), TargetAge: "soon"},
		{Scope: failure.ScopeArray.String(), RecoverSize: "big"},
	}
	for i, spec := range cases {
		if _, err := BuildScenarios([]ScenarioSpec{spec}); !errors.Is(err, ErrBadJob) {
			t.Errorf("case %d (%+v): err = %v, want ErrBadJob", i, spec, err)
		}
	}
}

func TestBuildObjective(t *testing.T) {
	for _, kind := range []string{"", "worst", "expected"} {
		obj, floor, err := BuildObjective(ObjectiveSpec{Kind: kind})
		if err != nil {
			t.Errorf("kind %q: %v", kind, err)
		}
		if obj == nil || floor == nil {
			t.Errorf("kind %q: objective and floor must both be built", kind)
		}
	}
	obj, floor, err := BuildObjective(ObjectiveSpec{Kind: "constrained", RTO: "4h", RPO: "1h"})
	if err != nil {
		t.Errorf("constrained: %v", err)
	}
	if obj == nil || floor == nil {
		t.Error("constrained: objective and floor must both be built")
	}
	if _, _, err := BuildObjective(ObjectiveSpec{Kind: "best-effort"}); !errors.Is(err, ErrBadJob) {
		t.Error("unknown kind should be ErrBadJob")
	}
	if _, _, err := BuildObjective(ObjectiveSpec{Kind: "constrained", RTO: "whenever"}); !errors.Is(err, ErrBadJob) {
		t.Error("bad RTO should be ErrBadJob")
	}
}

// TestExecuteJobMatchesLocal is the core wire fidelity property: running
// a job through encode → decode → rebuild → search returns exactly what
// the in-memory search returns, whole-space and per-shard.
func TestExecuteJobMatchesLocal(t *testing.T) {
	job := testJob(t)
	oracle := singleProcessOracle(t, job)

	whole, err := ExecuteJob(job, nil)
	if err != nil {
		t.Fatal(err)
	}
	wholeSol, err := whole.Solution()
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "whole space over the wire", oracle, wholeSol)

	for _, shards := range []int{2, 3, 5, 24, 30} {
		results := make([]*Result, shards)
		for s := 0; s < shards; s++ {
			sub := *job
			sub.Shard = ShardSpec{Index: s, Count: shards}
			if results[s], err = ExecuteJob(&sub, nil); err != nil {
				t.Fatalf("%d shards: shard %d: %v", shards, s, err)
			}
		}
		merged, err := MergeResults(results)
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		requireIdentical(t, "merge", oracle, merged)
	}
}

func TestMergeResultsDedupesAndCounts(t *testing.T) {
	job := testJob(t)
	oracle := singleProcessOracle(t, job)

	const shards = 4
	results := make([]*Result, 0, shards+2)
	for s := 0; s < shards; s++ {
		sub := *job
		sub.Shard = ShardSpec{Index: s, Count: shards}
		r, err := ExecuteJob(&sub, nil)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
	}
	// Speculative duplicates: the same shards reported again must not
	// change the answer or double-count evaluations.
	results = append(results, results[1], results[3])
	merged, err := MergeResults(results)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "merge with duplicates", oracle, merged)
}

func TestMergeResultsInfeasibleShardsKeepTheirEvaluations(t *testing.T) {
	job := testJob(t)
	sub := *job
	sub.Shard = ShardSpec{Index: 0, Count: 2}
	feasible, err := ExecuteJob(&sub, nil)
	if err != nil {
		t.Fatal(err)
	}
	infeasible := &Result{
		Version:        Version,
		Shard:          ShardSpec{Index: 1, Count: 2},
		Feasible:       false,
		Evaluations:    12,
		CandidateIndex: -1,
	}
	merged, err := MergeResults([]*Result{infeasible, feasible})
	if err != nil {
		t.Fatal(err)
	}
	if want := feasible.Evaluations + 12; merged.Evaluations != want {
		t.Errorf("merged evaluations %d, want %d (feasible %d + infeasible 12)",
			merged.Evaluations, want, feasible.Evaluations)
	}
	if merged.CandidateIndex != feasible.CandidateIndex {
		t.Errorf("winner %d, want shard 0's %d", merged.CandidateIndex, feasible.CandidateIndex)
	}
}

func TestMergeResultsRejects(t *testing.T) {
	if _, err := MergeResults(nil); !errors.Is(err, ErrBadResult) {
		t.Error("empty merge should be ErrBadResult")
	}
	a := &Result{Shard: ShardSpec{Index: 0, Count: 2}, CandidateIndex: -1, Evaluations: 1}
	b := &Result{Shard: ShardSpec{Index: 0, Count: 3}, CandidateIndex: -1, Evaluations: 1}
	if _, err := MergeResults([]*Result{a, b}); !errors.Is(err, ErrBadResult) {
		t.Error("mixed shard counts should be ErrBadResult")
	}
	if _, err := MergeResults([]*Result{a, nil}); !errors.Is(err, ErrBadResult) {
		t.Error("nil result should be ErrBadResult")
	}
	// A partial merge (shard 1/2 never reported) is an error, not a
	// silently wrong answer.
	if _, err := MergeResults([]*Result{a}); !errors.Is(err, ErrBadResult) {
		t.Errorf("missing shard: err = %v, want ErrBadResult", err)
	}
	// All shards present but infeasible surfaces the search layer's
	// no-feasible error.
	whole := &Result{Shard: ShardSpec{}, CandidateIndex: -1, Evaluations: 1}
	if _, err := MergeResults([]*Result{whole}); !errors.Is(err, opt.ErrNoFeasible) {
		t.Errorf("all-infeasible merge: err = %v, want opt.ErrNoFeasible", err)
	}
}

func TestExecuteJobInfeasibleShardReportsSliceSize(t *testing.T) {
	job := testJob(t)
	// An RTO no design can meet makes every candidate infeasible.
	job.Objective = ObjectiveSpec{Kind: "constrained", RTO: "1us", RPO: "1us"}
	sub := *job
	sub.Shard = ShardSpec{Index: 1, Count: 4}
	res, err := ExecuteJob(&sub, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible || res.CandidateIndex != -1 {
		t.Fatalf("expected an infeasible result, got %+v", res)
	}
	knobs, err := BuildKnobs(job.Knobs)
	if err != nil {
		t.Fatal(err)
	}
	space, err := opt.SpaceSize(knobs)
	if err != nil {
		t.Fatal(err)
	}
	if want := sub.Shard.Shard().Size(space); res.Evaluations != want {
		t.Errorf("infeasible shard reports %d evaluations, want its slice size %d", res.Evaluations, want)
	}
}

// TestExecuteJobPrunedMatchesLocal: a pruning shard answers identically
// to the unpruned oracle on the answer fields, whole-space and across
// shard splits, and its assessed/pruned split always sums to the slice
// size so MergeResults totals stay honest.
func TestExecuteJobPrunedMatchesLocal(t *testing.T) {
	job := testJob(t)
	oracle := singleProcessOracle(t, job)
	knobs, err := BuildKnobs(job.Knobs)
	if err != nil {
		t.Fatal(err)
	}
	space, err := opt.SpaceSize(knobs)
	if err != nil {
		t.Fatal(err)
	}

	pjob := *job
	pjob.Prune = true
	for _, shards := range []int{1, 3, 5} {
		results := make([]*Result, shards)
		for s := 0; s < shards; s++ {
			sub := pjob
			if shards > 1 {
				sub.Shard = ShardSpec{Index: s, Count: shards}
			}
			if results[s], err = ExecuteJob(&sub, nil); err != nil {
				t.Fatalf("%d shards: shard %d: %v", shards, s, err)
			}
			if size := sub.Shard.Shard().Size(space); results[s].Evaluations+results[s].Pruned != size {
				t.Errorf("%d shards: shard %d assessed %d + pruned %d != slice size %d",
					shards, s, results[s].Evaluations, results[s].Pruned, size)
			}
		}
		merged, err := MergeResults(results)
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		requireAnswerIdentical(t, fmt.Sprintf("pruned merge over %d shards", shards), oracle, merged)
		if merged.Evaluations+merged.CandidatesPruned != space {
			t.Errorf("%d shards: merged assessed %d + pruned %d != space %d",
				shards, merged.Evaluations, merged.CandidatesPruned, space)
		}
	}

	// Seeding the incumbent with the known optimum — the tightest honest
	// bound any coordinator could hand a shard — must not change the
	// answer either.
	pjob.Incumbent = float64(oracle.Score)
	res, err := ExecuteJob(&pjob, nil)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := res.Solution()
	if err != nil {
		t.Fatal(err)
	}
	requireAnswerIdentical(t, "seeded incumbent", oracle, sol)
	if res.Evaluations+res.Pruned != space {
		t.Errorf("seeded: assessed %d + pruned %d != space %d", res.Evaluations, res.Pruned, space)
	}
}

// TestExecuteJobPrunedInfeasibleKeepsTotalsHonest: even a shard with no
// feasible candidate reports an assessed/pruned split covering its slice.
func TestExecuteJobPrunedInfeasibleKeepsTotalsHonest(t *testing.T) {
	job := testJob(t)
	job.Objective = ObjectiveSpec{Kind: "constrained", RTO: "1us", RPO: "1us"}
	job.Prune = true
	job.Shard = ShardSpec{Index: 1, Count: 4}
	res, err := ExecuteJob(job, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible || res.CandidateIndex != -1 {
		t.Fatalf("expected an infeasible result, got %+v", res)
	}
	knobs, err := BuildKnobs(job.Knobs)
	if err != nil {
		t.Fatal(err)
	}
	space, err := opt.SpaceSize(knobs)
	if err != nil {
		t.Fatal(err)
	}
	if want := job.Shard.Shard().Size(space); res.Evaluations+res.Pruned != want {
		t.Errorf("infeasible pruned shard: assessed %d + pruned %d != slice size %d",
			res.Evaluations, res.Pruned, want)
	}
}
