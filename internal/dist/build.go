package dist

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"stordep/internal/config"
	"stordep/internal/core"
	"stordep/internal/failure"
	"stordep/internal/hierarchy"
	"stordep/internal/opt"
	"stordep/internal/units"
	"stordep/internal/whatif"
)

// Knob spec kinds, matching the opt constructors they rebuild.
const (
	KnobPolicy = "policy"
	KnobPiT    = "pit"
	KnobAccW   = "accw"
	KnobRetCnt = "retcnt"
	KnobLinks  = "links"
)

// NewJob assembles an unsharded job from a base design and specs; the
// coordinator (or caller) sets Shard, Budget and Workers afterwards.
func NewJob(base *core.Design, knobs []KnobSpec, scenarios []ScenarioSpec, objective ObjectiveSpec) (*Job, error) {
	design, err := config.Marshal(base)
	if err != nil {
		return nil, fmt.Errorf("%w: design: %v", ErrBadJob, err)
	}
	return &Job{
		Version:   Version,
		Design:    design,
		Knobs:     knobs,
		Scenarios: scenarios,
		Objective: objective,
	}, nil
}

// PolicyKnobSpec wires a complete-policy knob (opt.PolicyKnob): the
// options travel as config-encoded policies.
func PolicyKnobSpec(level string, names []string, policies []hierarchy.Policy) (KnobSpec, error) {
	if len(names) != len(policies) || len(names) == 0 {
		return KnobSpec{}, fmt.Errorf("%w: policy knob %q needs matching names and policies", ErrBadJob, level)
	}
	spec := KnobSpec{Kind: KnobPolicy, Target: level, Names: names}
	for _, p := range policies {
		data, err := config.MarshalPolicy(p)
		if err != nil {
			return KnobSpec{}, fmt.Errorf("%w: policy knob %q: %v", ErrBadJob, level, err)
		}
		spec.Policies = append(spec.Policies, data)
	}
	return spec, nil
}

// PiTKnobSpec wires a point-in-time technique knob (opt.PiTKnob).
func PiTKnobSpec(level string) KnobSpec {
	return KnobSpec{Kind: KnobPiT, Target: level}
}

// AccWKnobSpec wires an accumulation-window knob (opt.AccWKnob).
func AccWKnobSpec(level string, options []time.Duration) KnobSpec {
	spec := KnobSpec{Kind: KnobAccW, Target: level}
	for _, o := range options {
		spec.Durations = append(spec.Durations, units.FormatDuration(o))
	}
	return spec
}

// RetCntKnobSpec wires a retention-count knob (opt.RetCntKnob).
func RetCntKnobSpec(level string, options []int) KnobSpec {
	return KnobSpec{Kind: KnobRetCnt, Target: level, Ints: options}
}

// LinkCountKnobSpec wires a WAN-link-count knob (opt.LinkCountKnob).
func LinkCountKnobSpec(device string, options []int) KnobSpec {
	return KnobSpec{Kind: KnobLinks, Target: device, Ints: options}
}

// BuildKnobs rebuilds search knobs from their wire specs. Both sides of
// the protocol call it — the worker to run its shard, the coordinator to
// size the space — so a coordinator and its workers always agree on the
// candidate enumeration order.
func BuildKnobs(specs []KnobSpec) ([]opt.Knob, error) {
	knobs := make([]opt.Knob, 0, len(specs))
	for i, s := range specs {
		k, err := buildKnob(s)
		if err != nil {
			return nil, fmt.Errorf("knob %d: %w", i, err)
		}
		knobs = append(knobs, k)
	}
	return knobs, nil
}

func buildKnob(s KnobSpec) (opt.Knob, error) {
	switch s.Kind {
	case KnobPolicy:
		if len(s.Names) == 0 || len(s.Names) != len(s.Policies) {
			return opt.Knob{}, fmt.Errorf("%w: policy knob %q needs matching names and policies", ErrBadJob, s.Target)
		}
		pols := make([]hierarchy.Policy, len(s.Policies))
		for i, data := range s.Policies {
			p, err := config.UnmarshalPolicy(data)
			if err != nil {
				return opt.Knob{}, fmt.Errorf("%w: policy knob %q option %d: %v", ErrBadJob, s.Target, i, err)
			}
			pols[i] = p
		}
		return opt.PolicyKnob(s.Target, s.Names, pols), nil
	case KnobPiT:
		return opt.PiTKnob(s.Target), nil
	case KnobAccW:
		if len(s.Durations) == 0 {
			return opt.Knob{}, fmt.Errorf("%w: accW knob %q has no durations", ErrBadJob, s.Target)
		}
		durs := make([]time.Duration, len(s.Durations))
		for i, ds := range s.Durations {
			d, err := units.ParseDuration(ds)
			if err != nil {
				return opt.Knob{}, fmt.Errorf("%w: accW knob %q option %q: %v", ErrBadJob, s.Target, ds, err)
			}
			durs[i] = d
		}
		return opt.AccWKnob(s.Target, durs), nil
	case KnobRetCnt:
		if len(s.Ints) == 0 {
			return opt.Knob{}, fmt.Errorf("%w: retCnt knob %q has no options", ErrBadJob, s.Target)
		}
		return opt.RetCntKnob(s.Target, s.Ints), nil
	case KnobLinks:
		if len(s.Ints) == 0 {
			return opt.Knob{}, fmt.Errorf("%w: link knob %q has no options", ErrBadJob, s.Target)
		}
		return opt.LinkCountKnob(s.Target, s.Ints), nil
	default:
		return opt.Knob{}, fmt.Errorf("%w: unknown knob kind %q", ErrBadJob, s.Kind)
	}
}

// ScenarioSpecs wires failure scenarios for a job.
func ScenarioSpecs(scs []failure.Scenario) []ScenarioSpec {
	specs := make([]ScenarioSpec, len(scs))
	for i, sc := range scs {
		specs[i] = ScenarioSpec{Name: sc.Name, Scope: sc.Scope.String()}
		if sc.TargetAge > 0 {
			specs[i].TargetAge = units.FormatDuration(sc.TargetAge)
		}
		if sc.RecoverSize > 0 {
			specs[i].RecoverSize = fmt.Sprintf("%gB", float64(sc.RecoverSize))
		}
	}
	return specs
}

// BuildScenarios rebuilds failure scenarios from their wire specs.
func BuildScenarios(specs []ScenarioSpec) ([]failure.Scenario, error) {
	scs := make([]failure.Scenario, len(specs))
	for i, s := range specs {
		scope, err := parseScope(s.Scope)
		if err != nil {
			return nil, fmt.Errorf("scenario %d: %w", i, err)
		}
		sc := failure.Scenario{Name: s.Name, Scope: scope}
		if s.TargetAge != "" {
			if sc.TargetAge, err = units.ParseDuration(s.TargetAge); err != nil {
				return nil, fmt.Errorf("%w: scenario %d target age: %v", ErrBadJob, i, err)
			}
		}
		if s.RecoverSize != "" {
			if sc.RecoverSize, err = units.ParseByteSize(s.RecoverSize); err != nil {
				return nil, fmt.Errorf("%w: scenario %d recover size: %v", ErrBadJob, i, err)
			}
		}
		scs[i] = sc
	}
	return scs, nil
}

func parseScope(name string) (failure.Scope, error) {
	for _, sc := range failure.Scopes() {
		if sc.String() == name {
			return sc, nil
		}
	}
	return 0, fmt.Errorf("%w: unknown failure scope %q", ErrBadJob, name)
}

// BuildObjective rebuilds the scoring rule from its wire spec, paired
// with its admissible pruning floor — every wire objective has one, so
// a pruning worker never has to guess which bound matches which score.
func BuildObjective(spec ObjectiveSpec) (opt.Objective, opt.ObjectiveFloor, error) {
	switch spec.Kind {
	case "", "worst":
		return opt.WorstTotalObjective(), opt.WorstTotalFloor(), nil
	case "expected":
		return opt.ExpectedObjective(whatif.TypicalFrequencies()), opt.ExpectedFloor(whatif.TypicalFrequencies()), nil
	case "constrained":
		obj := whatif.Objectives{RTO: units.Forever, RPO: units.Forever}
		if spec.RTO != "" {
			d, err := units.ParseDuration(spec.RTO)
			if err != nil {
				return nil, nil, fmt.Errorf("%w: objective RTO: %v", ErrBadJob, err)
			}
			obj.RTO = d
		}
		if spec.RPO != "" {
			d, err := units.ParseDuration(spec.RPO)
			if err != nil {
				return nil, nil, fmt.Errorf("%w: objective RPO: %v", ErrBadJob, err)
			}
			obj.RPO = d
		}
		return opt.ConstrainedOutlayObjective(obj), opt.ConstrainedOutlayFloor(obj), nil
	default:
		return nil, nil, fmt.Errorf("%w: unknown objective kind %q", ErrBadJob, spec.Kind)
	}
}

// ExecuteJob runs one shard assignment locally: decode the design and
// knob specs, run the streaming exhaustive search over the job's shard,
// and wrap the outcome for the wire. progress, when non-nil, counts
// evaluated candidates live (for heartbeats). A shard whose slice holds
// no feasible candidate is a normal Result with Feasible false — its
// evaluation count (the slice size: streaming search scores every
// candidate exactly once) still reaches the merged total.
func ExecuteJob(job *Job, progress *atomic.Int64) (*Result, error) {
	if job.MC != nil {
		return executeMC(job, progress)
	}
	base, err := config.Unmarshal(job.Design)
	if err != nil {
		return nil, fmt.Errorf("%w: design: %v", ErrBadJob, err)
	}
	knobs, err := BuildKnobs(job.Knobs)
	if err != nil {
		return nil, err
	}
	scenarios, err := BuildScenarios(job.Scenarios)
	if err != nil {
		return nil, err
	}
	objective, floor, err := BuildObjective(job.Objective)
	if err != nil {
		return nil, err
	}
	var stats opt.SearchStats
	sol, err := opt.ExhaustiveOpts(base, knobs, scenarios, objective, opt.ExhaustiveOptions{
		Workers:   job.Workers,
		Budget:    job.Budget,
		Shard:     job.Shard.Shard(),
		Progress:  progress,
		Prune:     job.Prune,
		Floor:     floor,
		Incumbent: units.Money(job.Incumbent),
		Stats:     &stats,
	})
	if errors.Is(err, opt.ErrNoFeasible) {
		// Stats keep the accounting honest even without a winner: a
		// pruning shard may retire its whole slice without assessing it.
		return &Result{
			Version:        Version,
			Shard:          job.Shard,
			Feasible:       false,
			Evaluations:    stats.Assessed,
			Pruned:         stats.Pruned,
			BoundsComputed: stats.BoundsComputed,
			CandidateIndex: -1,
		}, nil
	}
	if err != nil {
		return nil, err
	}
	return SolutionResult(sol, job.Shard)
}

// MergeResults combines shard results — from a coordinator run or from
// Result files on disk — into the Solution the unsharded search returns.
// Results must share one shard count and cover every shard of that
// partitioning (a missing shard means a missing slice of the space, so
// merging it silently could return the wrong winner); duplicate reports
// of the same shard (speculative re-dispatch, or the same file merged
// twice) are deduped, first occurrence wins. Feasible results merge
// through opt.MergeShards (lowest score, ties to the lowest global
// candidate index); infeasible shards contribute only their evaluation
// and pruning counts, so merged Evaluations+CandidatesPruned equals the
// space size exactly as a single-process search reports it.
func MergeResults(results []*Result) (*opt.Solution, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("%w: no results to merge", ErrBadResult)
	}
	count := results[0].Shard.Count
	seen := make(map[int]bool, len(results))
	var sols []*opt.Solution
	extraEvals, extraPruned, extraBounds := 0, 0, 0
	for i, r := range results {
		if r == nil {
			return nil, fmt.Errorf("%w: result %d is missing", ErrBadResult, i)
		}
		if r.Shard.Count != count {
			return nil, fmt.Errorf("%w: result %d is shard %d/%d, others have %d shards — results must come from one partitioning",
				ErrBadResult, i, r.Shard.Index, r.Shard.Count, count)
		}
		if seen[r.Shard.Index] {
			continue
		}
		seen[r.Shard.Index] = true
		sol, err := r.Solution()
		if err != nil {
			return nil, fmt.Errorf("result %d (shard %d/%d): %w", i, r.Shard.Index, r.Shard.Count, err)
		}
		if sol == nil {
			extraEvals += r.Evaluations
			extraPruned += r.Pruned
			extraBounds += r.BoundsComputed
			continue
		}
		sols = append(sols, sol)
	}
	// A zero shard count is the whole space as one result; otherwise
	// every shard of the partitioning must be present.
	want := count
	if want == 0 {
		want = 1
	}
	if len(seen) != want {
		for s := 0; s < count; s++ {
			if !seen[s] {
				return nil, fmt.Errorf("%w: missing shard %d/%d", ErrBadResult, s, count)
			}
		}
	}
	merged, err := opt.MergeShards(sols)
	if err != nil {
		return nil, err
	}
	merged.Evaluations += extraEvals
	merged.CandidatesPruned += extraPruned
	merged.BoundsComputed += extraBounds
	return merged, nil
}
