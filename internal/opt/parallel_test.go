package opt

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"stordep/internal/casestudy"
	"stordep/internal/config"
	"stordep/internal/core"
)

// solutionsIdentical asserts two solutions are byte-identical: same
// score, choices, accounting, and the same design down to its config
// encoding.
func solutionsIdentical(t *testing.T, label string, a, b *Solution) {
	t.Helper()
	if a.Score != b.Score {
		t.Errorf("%s: scores differ: %v vs %v", label, a.Score, b.Score)
	}
	if !reflect.DeepEqual(a.Choices, b.Choices) {
		t.Errorf("%s: choices differ: %v vs %v", label, a.Choices, b.Choices)
	}
	if a.Evaluations != b.Evaluations || a.MemoHits != b.MemoHits || a.Passes != b.Passes {
		t.Errorf("%s: accounting differs: evals %d/%d memo %d/%d passes %d/%d",
			label, a.Evaluations, b.Evaluations, a.MemoHits, b.MemoHits, a.Passes, b.Passes)
	}
	aj, errA := config.Marshal(a.Design)
	bj, errB := config.Marshal(b.Design)
	if errA != nil || errB != nil {
		t.Fatalf("%s: marshal: %v / %v", label, errA, errB)
	}
	if !bytes.Equal(aj, bj) {
		t.Errorf("%s: tuned designs encode differently", label)
	}
}

// TestTuneWorkersDeterminism: coordinate descent returns byte-identical
// Solutions for every worker count.
func TestTuneWorkersDeterminism(t *testing.T) {
	serial, err := TuneWorkers(casestudy.Baseline(), table7Knobs(), scenarios(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 8} {
		par, err := TuneWorkers(casestudy.Baseline(), table7Knobs(), scenarios(), nil, workers)
		if err != nil {
			t.Fatal(err)
		}
		solutionsIdentical(t, "tune", serial, par)
	}
}

// TestExhaustiveWorkersDeterminism: full enumeration returns
// byte-identical Solutions for every worker count.
func TestExhaustiveWorkersDeterminism(t *testing.T) {
	base := casestudy.Baseline()
	serial, err := ExhaustiveWorkers(base, table7Knobs(), scenarios(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 8} {
		par, err := ExhaustiveWorkers(base, table7Knobs(), scenarios(), nil, workers)
		if err != nil {
			t.Fatal(err)
		}
		solutionsIdentical(t, "exhaustive", serial, par)
	}
}

// TestExhaustiveTieBreaksToLowestIndex: a knob whose options all produce
// the identical design must select option index 0 at any worker count.
func TestExhaustiveTieBreaksToLowestIndex(t *testing.T) {
	tie := Knob{
		Name:    "tie",
		Options: []string{"first", "second", "third"},
		Apply:   func(*core.Design, int) error { return nil },
	}
	for _, workers := range []int{1, 4} {
		sol, err := ExhaustiveWorkers(casestudy.Baseline(), []Knob{tie}, scenarios(), nil, workers)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Choices[0].Option != "first" {
			t.Errorf("workers=%d: tie broke to %q, want lowest index", workers, sol.Choices[0].Option)
		}
	}
}

// TestTuneMemoAccounting: revisited choice vectors are served from the
// memo — Evaluations counts unique candidates only, and the memo path
// is visible in MemoHits.
func TestTuneMemoAccounting(t *testing.T) {
	sol, err := Tune(casestudy.Baseline(), table7Knobs(), scenarios(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// 2x3x2 = 12 combinations bound the unique vectors coordinate
	// descent can ever visit.
	if sol.Evaluations > 12 {
		t.Errorf("evaluations = %d, want <= 12 unique vectors", sol.Evaluations)
	}
	if sol.MemoHits == 0 {
		t.Error("memo hits = 0; incumbent re-scoring should hit the memo")
	}
	// The seed implementation re-evaluated incumbents every sweep; the
	// memo must not change what the search returns (covered by the
	// determinism tests) while strictly reducing evaluations.
	if sol.Evaluations+sol.MemoHits < 12 {
		t.Errorf("evaluations %d + memo hits %d should cover at least one full sweep",
			sol.Evaluations, sol.MemoHits)
	}
}

// TestScoreCandidateSharedPath: the shared scoring path produces a
// finite positive score for a buildable candidate and leaves the base
// design untouched.
func TestScoreCandidateSharedPath(t *testing.T) {
	base := casestudy.Baseline()
	before, err := config.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	s, err := scoreCandidate(base, table7Knobs(), scenarios(), WorstTotalObjective(), []int{1, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 || math.IsInf(float64(s), 1) {
		t.Errorf("score = %v, want finite positive", s)
	}
	after, err := config.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("scoreCandidate mutated the base design")
	}
}
