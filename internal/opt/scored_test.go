package opt

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"stordep/internal/casestudy"
	"stordep/internal/core"
	"stordep/internal/units"
	"stordep/internal/whatif"
)

// analyticScorer wraps the analytic expected-cost evaluation as a
// Scorer, so TuneScored can be checked against TuneWorkers on the same
// objective: both descents must land on the identical solution.
func analyticScorer(count *int) Scorer {
	freqs := whatif.TypicalFrequencies()
	scs := scenarios()
	return func(d *core.Design) (units.Money, error) {
		*count++
		return whatif.ExpectedAnnualCost(whatif.EvaluateOne(d, scs), freqs), nil
	}
}

func TestTuneScoredMatchesTuneWorkers(t *testing.T) {
	var calls int
	scored, err := TuneScored(casestudy.Baseline(), table7Knobs(), analyticScorer(&calls))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Tune(casestudy.Baseline(), table7Knobs(), scenarios(),
		ExpectedObjective(whatif.TypicalFrequencies()))
	if err != nil {
		t.Fatal(err)
	}
	if scored.Score != want.Score {
		t.Errorf("score %v, objective descent found %v", scored.Score, want.Score)
	}
	if !reflect.DeepEqual(scored.Choices, want.Choices) {
		t.Errorf("choices %v, want %v", scored.Choices, want.Choices)
	}
	if scored.CandidateIndex != -1 {
		t.Errorf("coordinate descent has no candidate index, got %d", scored.CandidateIndex)
	}
	// The memo means every distinct choice vector is scored exactly once.
	if calls != scored.Evaluations {
		t.Errorf("scorer called %d times, solution reports %d evaluations", calls, scored.Evaluations)
	}
	if scored.MemoHits == 0 {
		t.Error("descent revisited no incumbent (memo never hit)")
	}
}

func TestTuneScoredDeterministic(t *testing.T) {
	run := func() *Solution {
		var calls int
		sol, err := TuneScored(casestudy.Baseline(), table7Knobs(), analyticScorer(&calls))
		if err != nil {
			t.Fatal(err)
		}
		sol.Design = nil // compare the decision record, not the pointer graph
		return sol
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Errorf("two identical descents disagree: %+v vs %+v", a, b)
	}
}

func TestTuneScoredErrors(t *testing.T) {
	base := casestudy.Baseline()
	if _, err := TuneScored(base, table7Knobs(), nil); !errors.Is(err, ErrBadKnob) {
		t.Errorf("nil scorer: %v", err)
	}
	if _, err := TuneScored(base, nil, analyticScorer(new(int))); !errors.Is(err, ErrNoKnobs) {
		t.Errorf("no knobs: %v", err)
	}
	if _, err := TuneScored(base, []Knob{{Name: "broken"}}, analyticScorer(new(int))); !errors.Is(err, ErrBadKnob) {
		t.Errorf("malformed knob: %v", err)
	}
	boom := errors.New("scorer boom")
	if _, err := TuneScored(base, table7Knobs(), func(*core.Design) (units.Money, error) {
		return 0, boom
	}); !errors.Is(err, boom) {
		t.Errorf("scorer error swallowed: %v", err)
	}
	if _, err := TuneScored(base, table7Knobs(), func(*core.Design) (units.Money, error) {
		return units.Money(math.Inf(1)), nil
	}); !errors.Is(err, ErrNoFeasible) {
		t.Errorf("all-infeasible: %v", err)
	}
}
