package opt

import (
	"math"
	"sync/atomic"
	"time"

	"stordep/internal/core"
	"stordep/internal/device"
	"stordep/internal/failure"
	"stordep/internal/units"
	"stordep/internal/whatif"
)

// This file implements the branch-and-bound layer over the compiled
// batched search (compile.go): before a batch of candidates is filled
// and assessed, an admissible lower bound on every candidate's objective
// score in that contiguous index range is computed from the compiled
// group tables, and the whole batch is pruned when the bound exceeds the
// best score achieved so far (the incumbent, shared across workers via
// an atomic).
//
// The bound exploits the paper's utility decomposition (§4.2): a
// candidate's score is outlays (scenario-independent) plus penalties
// that are monotone nondecreasing in recovery time and data loss. Three
// component floors are assembled per subtree:
//
//   - Outlay floor: the candidate outlay total is a sum of per-device
//     terms (fixed cost + per-demand marginal annual cost, spare and
//     facility-retainer multipliers). Terms from the base design are
//     constant; terms a knob group controls are tabulated per joint
//     option entry, and the floor takes the cheapest entry reachable in
//     the batch's index range, independently per group. Devices whose
//     spec one group owns but whose demands another group feeds are
//     dropped from the floor entirely (their contribution is verified
//     nonnegative at construction).
//   - Recovery-time floor, per scenario: assessOne's recovery time is at
//     least the destination's provisioning delay plus the read device's
//     fixed access delay, so the floor is destProvision + min over
//     may-serve levels of the serving device's delay.
//   - Data-loss floor, per scenario: every loss assessOne can report for
//     a level is at least the level's accumulation window (cumulative
//     lags are nonnegative), so the floor is the min accW over may-serve
//     levels. "May serve" over-approximates true serving (it ignores the
//     guaranteed-range and target-age checks, which only remove levels),
//     keeping the min a valid floor.
//
// Scenarios where the primary array cannot be replaced (or no level can
// possibly serve) lose the object for every candidate; their penalty
// floor is the exact whole-object-lost penalty.
//
// Admissibility discipline: the floors rely on every folded component
// being nonnegative (penalty rates, cost marginals, fixed costs,
// discounts, policy lags and windows, device delays). newPruner verifies
// all of them numerically and refuses to build a pruner — disabling
// pruning, never correctness — on any violation. Candidates the tables
// cannot represent keep their exact error semantics: a batch whose index
// range can reach any suspect knob option or suspect group entry is
// never bounded. Candidates that fail the duplicate-level-name or
// device-capacity checks score +Inf through the legacy path, which no
// finite bound can exceed. Finally the prune test is strict with a
// relative slack (boundSlack) absorbing float non-associativity between
// the floor's fold order and fill's, and the incumbent is only ever an
// achieved candidate score — so a pruned candidate scores strictly worse
// than the incumbent and can never be the argmin nor tie with it. The
// pruned search's Solution is byte-identical to the exhaustive one.

const (
	// boundSlack is the relative slack applied to a subtree bound before
	// comparing it to the incumbent: prune only when
	// bound*(1-boundSlack) > incumbent. It absorbs the float rounding
	// difference between the floor's sum order and fill's outlay fold.
	boundSlack = 1e-9
	// seedProbes is how many spread candidate indices are assessed up
	// front to seed the incumbent, so pruning can begin with the first
	// batch instead of waiting for enumeration to reach a good score.
	seedProbes = 16
)

// SubtreeFloor carries admissible per-component lower bounds holding for
// every candidate in one contiguous slice of the enumeration: any
// candidate's outlay total is >= Outlays, and under scenario si its
// recovery time, data loss and penalties are >= the si-th entries.
// Lost[si] means every candidate in the slice loses the object under
// scenario si (certain loss, not merely possible loss).
type SubtreeFloor struct {
	Outlays   units.Money
	Scenarios []failure.Scenario
	// RecoveryTime, DataLoss, Penalties and Lost are indexed like
	// Scenarios. Penalties[si] is the penalty arithmetic applied to the
	// (RecoveryTime[si], DataLoss[si]) floor — monotone, so itself a
	// floor on every candidate's penalties.
	RecoveryTime []time.Duration
	DataLoss     []time.Duration
	Penalties    []units.Money
	Lost         []bool
}

// ObjectiveFloor maps a subtree's component floors to a lower bound on
// the Objective score of every candidate in the subtree. It must be
// paired with the search's Objective: WorstTotalFloor with
// WorstTotalObjective, and so on. A floor may always return
// -Inf ("no bound"); it must never exceed any candidate's true score,
// or pruning would change the search result.
type ObjectiveFloor func(*SubtreeFloor) units.Money

// WorstTotalFloor lower-bounds WorstTotalObjective: outlay floor plus
// the worst per-scenario penalty floor.
func WorstTotalFloor() ObjectiveFloor {
	return func(fl *SubtreeFloor) units.Money {
		if len(fl.Penalties) == 0 {
			return fl.Outlays
		}
		worst := fl.Penalties[0]
		for _, p := range fl.Penalties[1:] {
			if p > worst {
				worst = p
			}
		}
		return fl.Outlays + worst
	}
}

// ExpectedFloor lower-bounds ExpectedObjective under the same frequency
// table: outlay floor plus the frequency-weighted penalty floors. A
// certainly-lost scenario with nonzero frequency bounds every candidate
// at +Inf, mirroring whatif.ExpectedAnnualCost. Negative or NaN
// frequencies disable the floor (it returns -Inf).
func ExpectedFloor(freqs whatif.Frequencies) ObjectiveFloor {
	bad := false
	for _, f := range freqs {
		if f < 0 || math.IsNaN(f) {
			bad = true
		}
	}
	return func(fl *SubtreeFloor) units.Money {
		if bad {
			return units.Money(math.Inf(-1))
		}
		total := fl.Outlays
		for si, sc := range fl.Scenarios {
			f := freqs[sc.Scope]
			if f == 0 {
				continue
			}
			if fl.Lost[si] {
				return units.Money(math.Inf(1))
			}
			total += units.Money(f) * fl.Penalties[si]
		}
		return total
	}
}

// ConstrainedOutlayFloor lower-bounds ConstrainedOutlayObjective: when
// any scenario's floor already violates the objectives (certain loss, or
// RT/DL floor beyond RTO/RPO), every candidate in the subtree scores
// +Inf; otherwise candidates may conform and the bound is the outlay
// floor.
func ConstrainedOutlayFloor(obj whatif.Objectives) ObjectiveFloor {
	return func(fl *SubtreeFloor) units.Money {
		for si := range fl.Scenarios {
			if fl.Lost[si] || fl.RecoveryTime[si] > obj.RTO || fl.DataLoss[si] > obj.RPO {
				return units.Money(math.Inf(1))
			}
		}
		return fl.Outlays
	}
}

// atomicScore is a float64 score behind an atomic, with a
// compare-by-value min so concurrent workers can tighten a shared
// incumbent without locks.
type atomicScore struct{ bits atomic.Uint64 }

func (a *atomicScore) store(v units.Money) { a.bits.Store(math.Float64bits(float64(v))) }
func (a *atomicScore) load() units.Money   { return units.Money(math.Float64frombits(a.bits.Load())) }

// min lowers the stored score to v when v is smaller. Comparison is on
// the float values, not the bit patterns, so it is correct for every
// ordering of scores; NaN never replaces anything.
func (a *atomicScore) min(v units.Money) {
	f := float64(v)
	for {
		cur := a.bits.Load()
		if !(f < math.Float64frombits(cur)) {
			return
		}
		if a.bits.CompareAndSwap(cur, math.Float64bits(f)) {
			return
		}
	}
}

// prunedGroup is one knob group's bound tables: per joint-option entry,
// the member options (for the allowed-range test), the outlay floor
// delta, and the owned levels' serve parameters.
type prunedGroup struct {
	members []int
	radix   []int
	size    int
	// opts[t*len(members)+mi] is member mi's option index in entry t.
	opts    []uint16
	suspect []bool
	// outlay[t] is entry t's exact additive contribution to the
	// candidate outlay total (over the devices attributable to this
	// group); nonnegativity is verified at construction.
	outlay []units.Money
	// levels lists the group's owned level indices; multi marks
	// kernel-resolved multi-sited ones. copyIdx/accW/lag/readDelay are
	// flattened [t*len(levels)+li].
	levels    []int
	multi     []bool
	copyIdx   []int32
	accW      []time.Duration
	lag       []time.Duration
	readDelay []time.Duration
}

// pruner holds every precomputed table the per-batch bound needs. Built
// once per compiled search by newPruner; immutable afterwards except for
// the shared incumbent, so concurrent workers bound batches with
// distinct pruneScratch.
type pruner struct {
	cs    *compiledSpace
	floor ObjectiveFloor

	ns, nLevels, nDevices int

	knobRadix  []int
	knobWeight []int // mixed-radix suffix weights (last knob = 1)

	outlayConst units.Money
	groups      []prunedGroup

	// Candidate-independent serve parameters for levels no group owns,
	// indexed [si*nLevels+j]; owned levels hold (false, Forever, Forever)
	// so a straight copy initializes a batch's scan state.
	baseServe []bool
	baseAccW  []time.Duration
	baseSer   []time.Duration

	// Multi-sited survival per (scenario, level); mRead is the surviving
	// fragment reader's fixed delay, or -1 meaning "the level's own read
	// device serves" (use the entry's readDelay).
	mServe []bool
	mRead  []time.Duration

	intact   []bool // [si*nDevices+di]: device survives untouched
	destLost []bool
	destProv []time.Duration
	lostPen  units.Money

	// baseLag[j] is level j's transfer-lag floor when no group owns it
	// (the base design's constant lag); owned levels hold Forever and are
	// minimized over reachable entries per batch. tgtZero[si] marks
	// scenarios with TargetAge 0, where the kernel's loss is exactly the
	// cumulative lag through the serving level plus its accumulation
	// window — so the data-loss floor may add the lag prefix sum.
	baseLag []time.Duration
	tgtZero []bool

	incumbent atomicScore
}

// pruneScratch is one worker's reusable bound-computation state.
type pruneScratch struct {
	// Allowed option range per knob over the batch's index slice: all
	// options, or the cyclic interval [a..b].
	allAll     []bool
	allA, allB []int

	serve   []bool
	minAccW []time.Duration
	minSer  []time.Duration
	minLag  []time.Duration // per level; cum holds its prefix sums
	cum     []time.Duration

	fl SubtreeFloor
}

// newPruner builds the bound tables for a compiled space, returning nil
// when any admissibility precondition fails — negative penalty rates,
// negative cost components, negative policy windows — so pruning is
// silently disabled rather than ever risking a wrong prune. incumbent
// (> 0) pre-seeds the shared best score with an externally achieved
// candidate score (e.g. another shard's winner).
func newPruner(cs *compiledSpace, floor ObjectiveFloor, incumbent units.Money) *pruner {
	if floor == nil {
		return nil
	}
	kern := cs.kern
	if !kern.NonNegativeRates() {
		return nil
	}
	ns, nL, nD := len(cs.scs), cs.nLevels, cs.nDevices
	p := &pruner{
		cs:       cs,
		floor:    floor,
		ns:       ns,
		nLevels:  nL,
		nDevices: nD,
	}

	nk := len(cs.knobs)
	p.knobRadix = make([]int, nk)
	p.knobWeight = make([]int, nk)
	w := 1
	for k := nk - 1; k >= 0; k-- {
		p.knobRadix[k] = len(cs.knobs[k].Options)
		p.knobWeight[k] = w
		w *= p.knobRadix[k] // cannot overflow: spaceSize validated the product
	}

	p.intact = make([]bool, ns*nD)
	for si := 0; si < ns; si++ {
		for di := 0; di < nD; di++ {
			p.intact[si*nD+di] = kern.DeviceIntact(si, di)
		}
	}
	p.destLost = make([]bool, ns)
	p.destProv = make([]time.Duration, ns)
	for si := 0; si < ns; si++ {
		lost, prov := kern.PrimaryResolution(si)
		if prov < 0 {
			return nil
		}
		p.destLost[si] = lost
		p.destProv[si] = prov
	}
	for di := 0; di < nD; di++ {
		if kern.DeviceFixedDelay(di) < 0 {
			return nil
		}
	}
	p.lostPen = kern.PenaltyFloor(units.Forever, units.Forever)

	p.mServe = make([]bool, ns*nL)
	p.mRead = make([]time.Duration, ns*nL)
	for j := 0; j < nL; j++ {
		if !kern.MultiLevel(j) {
			continue
		}
		for si := 0; si < ns; si++ {
			surv, ri := kern.MultiServe(si, j)
			p.mServe[si*nL+j] = surv
			if ri >= 0 {
				p.mRead[si*nL+j] = kern.DeviceFixedDelay(ri)
			} else {
				p.mRead[si*nL+j] = -1
			}
		}
	}

	p.tgtZero = make([]bool, ns)
	for si := 0; si < ns; si++ {
		p.tgtZero[si] = cs.scs[si].TargetAge == 0
	}

	p.baseServe = make([]bool, ns*nL)
	p.baseAccW = make([]time.Duration, ns*nL)
	p.baseSer = make([]time.Duration, ns*nL)
	p.baseLag = make([]time.Duration, nL)
	for i := range p.baseAccW {
		p.baseAccW[i] = units.Forever
		p.baseSer[i] = units.Forever
	}
	for j := 0; j < nL; j++ {
		f := &cs.baseFrags[j]
		if !fragSane(f) {
			return nil
		}
		if cs.levelOwner[j] >= 0 {
			p.baseLag[j] = units.Forever
			continue
		}
		p.baseLag[j] = f.lag
		for si := 0; si < ns; si++ {
			idx := si*nL + j
			ser := kern.DeviceFixedDelay(int(f.readIdx))
			if kern.MultiLevel(j) {
				p.baseServe[idx] = p.mServe[idx]
				if d := p.mRead[idx]; d >= 0 {
					ser = d
				}
			} else {
				p.baseServe[idx] = p.intact[si*nD+int(f.copyIdx)]
			}
			p.baseAccW[idx] = f.accW
			p.baseSer[idx] = ser
		}
	}

	if !p.buildGroups() {
		return nil
	}
	if !p.buildOutlays() {
		return nil
	}

	p.incumbent.store(units.Money(math.Inf(1)))
	if incumbent > 0 {
		p.incumbent.min(incumbent)
	}
	return p
}

// fragSane verifies the nonnegativity the duration floors rely on:
// cumulative lags stay nonnegative and every loss is >= the level's
// accumulation window.
func fragSane(f *levelFrag) bool {
	return f.lag >= 0 && f.accW >= 0 && f.retSpan >= 0
}

// buildGroups fills each group's member-option, suspect and owned-level
// tables (outlay deltas are added by buildOutlays). Returns false on any
// frag sanity violation.
func (p *pruner) buildGroups() bool {
	cs := p.cs
	p.groups = make([]prunedGroup, len(cs.groups))
	for gi := range cs.groups {
		g := &cs.groups[gi]
		pg := &p.groups[gi]
		pg.members = g.members
		pg.radix = g.radix
		pg.size = g.size
		pg.levels = g.levels
		nm, nl := len(g.members), len(g.levels)
		pg.opts = make([]uint16, g.size*nm)
		pg.suspect = make([]bool, g.size)
		pg.outlay = make([]units.Money, g.size)
		pg.multi = make([]bool, nl)
		for li, j := range g.levels {
			pg.multi[li] = cs.kern.MultiLevel(j)
		}
		pg.copyIdx = make([]int32, g.size*nl)
		pg.accW = make([]time.Duration, g.size*nl)
		pg.lag = make([]time.Duration, g.size*nl)
		pg.readDelay = make([]time.Duration, g.size*nl)
		for t := 0; t < g.size; t++ {
			rem := t
			for mi := nm - 1; mi >= 0; mi-- {
				pg.opts[t*nm+mi] = uint16(rem % g.radix[mi])
				rem /= g.radix[mi]
			}
			e := &g.entries[t]
			pg.suspect[t] = e.suspect
			if e.suspect {
				continue
			}
			for li := range e.frags {
				f := &e.frags[li]
				if !fragSane(f) {
					return false
				}
				pg.copyIdx[t*nl+li] = f.copyIdx
				pg.accW[t*nl+li] = f.accW
				pg.lag[t*nl+li] = f.lag
				pg.readDelay[t*nl+li] = cs.kern.DeviceFixedDelay(int(f.readIdx))
			}
		}
	}
	return true
}

// buildOutlays decomposes the candidate outlay total into a constant
// part plus one exact additive delta per group entry, verifying every
// folded component is nonnegative and finite. Returns false on any
// violation (pruning is then disabled).
//
// Per device, fill's outlay fold sums to
//
//	mult * (fixedTerm*[present] + sum of per-demand marginals)
//
// where mult folds the spare discount and facility-retainer factor
// (both frozen by the compile diff), fixedTerm is the fixed cost plus an
// interconnect's provisioned-bandwidth cost, present means the device
// received any demand, and each marginal is Annual(rec) - Fixed under
// the candidate's spec. Devices with a base (constant) spec split
// exactly into constant-source terms plus per-group own-record terms;
// devices whose spec a group owns are tabulated per entry of that group
// — unless another group also feeds them demands, in which case the
// device's (verified nonnegative) contribution is dropped from the
// floor entirely.
func (p *pruner) buildOutlays() bool {
	cs := p.cs
	nD := cs.nDevices

	mult := make([]float64, nD)
	for di := 0; di < nD; di++ {
		m := 1.0
		sp := &cs.baseSpecs[di]
		if sp.HasSpare() {
			if sp.Spare.Discount < 0 {
				return false
			}
			m += sp.Spare.Discount
		}
		if cs.retainer && cs.covered[di] {
			if cs.costFactor < 0 {
				return false
			}
			m += cs.costFactor
		}
		mult[di] = m
	}

	// Constant-source records per device: the primary plus every level
	// no group owns.
	constRecs := make([][]*demandRec, nD)
	for i := range cs.primaryDemands {
		r := &cs.primaryDemands[i]
		constRecs[r.dev] = append(constRecs[r.dev], r)
	}
	for j := 0; j < cs.nLevels; j++ {
		if cs.levelOwner[j] >= 0 {
			continue
		}
		f := &cs.baseFrags[j]
		for i := range f.demands {
			r := &f.demands[i]
			constRecs[r.dev] = append(constRecs[r.dev], r)
		}
	}

	// feeds[gi][di]: any non-suspect entry of group gi demands device di.
	feeds := make([][]bool, len(cs.groups))
	for gi := range cs.groups {
		feeds[gi] = make([]bool, nD)
		g := &cs.groups[gi]
		for t := range g.entries {
			e := &g.entries[t]
			if e.suspect {
				continue
			}
			for li := range e.frags {
				for ri := range e.frags[li].demands {
					feeds[gi][e.frags[li].demands[ri].dev] = true
				}
			}
		}
	}

	marginal := func(sp *device.Spec, r *demandRec) (units.Money, bool) {
		bw := r.bw
		if sp.Kind == device.KindInterconnect {
			bw = 0 // fill charges interconnects at provisioned capacity
		}
		m := sp.Cost.Annual(sp.RawCapacityFor(r.cap), bw, r.ship) - sp.Cost.Fixed
		if !(m >= 0) || math.IsInf(float64(m), 1) {
			return 0, false
		}
		return m, true
	}
	fixedTerm := func(sp *device.Spec) (units.Money, bool) {
		ft := sp.Cost.Fixed
		if sp.Kind == device.KindInterconnect {
			ft += units.Money(sp.Cost.PerMBPerSec * sp.MaxBandwidth().MBPS())
		}
		if !(ft >= 0) || math.IsInf(float64(ft), 1) {
			return 0, false
		}
		return ft, true
	}

	var constTotal units.Money
	for di := 0; di < nD; di++ {
		owner := cs.specOwner[di]
		if owner < 0 {
			// Base spec governs for every candidate: constant-source terms
			// are constant, own-record terms are added per group entry
			// below.
			sp := &cs.baseSpecs[di]
			ft, ok := fixedTerm(sp)
			if !ok {
				return false
			}
			var constMarg units.Money
			for _, r := range constRecs[di] {
				m, ok := marginal(sp, r)
				if !ok {
					return false
				}
				constMarg += m
			}
			if len(constRecs[di]) > 0 {
				constTotal += units.Money(mult[di]) * (ft + constMarg)
			}
			continue
		}

		crossFed := false
		for gi := range cs.groups {
			if gi != owner && feeds[gi][di] {
				crossFed = true
			}
		}
		slot := cs.specSlot[di]
		g := &cs.groups[owner]
		for t := range g.entries {
			e := &g.entries[t]
			if e.suspect {
				continue
			}
			sp := &e.specs[slot]
			ft, ok := fixedTerm(sp)
			if !ok {
				return false
			}
			present := len(constRecs[di]) > 0
			var margSum units.Money
			for _, r := range constRecs[di] {
				m, ok := marginal(sp, r)
				if !ok {
					return false
				}
				margSum += m
			}
			for li := range e.frags {
				for ri := range e.frags[li].demands {
					r := &e.frags[li].demands[ri]
					if int(r.dev) != di {
						continue
					}
					m, ok := marginal(sp, r)
					if !ok {
						return false
					}
					margSum += m
					present = true
				}
			}
			if crossFed {
				// Another group's chosen entry also lands demands here, so
				// the device's cost is not separable per group. Drop it
				// from the floor — admissible only if its true
				// contribution is nonnegative under every reachable spec,
				// so verify those foreign marginals too.
				for gj := range cs.groups {
					if gj == owner || !feeds[gj][di] {
						continue
					}
					gg := &cs.groups[gj]
					for tt := range gg.entries {
						ee := &gg.entries[tt]
						if ee.suspect {
							continue
						}
						for li := range ee.frags {
							for ri := range ee.frags[li].demands {
								r := &ee.frags[li].demands[ri]
								if int(r.dev) != di {
									continue
								}
								if _, ok := marginal(sp, r); !ok {
									return false
								}
							}
						}
					}
				}
				continue
			}
			var delta units.Money
			if present {
				delta = units.Money(mult[di]) * (ft + margSum)
			}
			p.groups[owner].outlay[t] += delta
		}
	}

	// Own-record marginals on base-spec devices, per group entry.
	for gi := range cs.groups {
		g := &cs.groups[gi]
		pg := &p.groups[gi]
		for t := range g.entries {
			e := &g.entries[t]
			if e.suspect {
				continue
			}
			for li := range e.frags {
				for ri := range e.frags[li].demands {
					r := &e.frags[li].demands[ri]
					di := int(r.dev)
					if cs.specOwner[di] >= 0 {
						// Own-group devices were handled in the per-entry
						// pass above; other groups' devices were dropped
						// (crossFed) there, with this record's marginal
						// verified under every reachable spec.
						continue
					}
					m, ok := marginal(&cs.baseSpecs[di], r)
					if !ok {
						return false
					}
					pg.outlay[t] += units.Money(mult[di]) * m
				}
			}
		}
	}

	if !(constTotal >= 0) || math.IsInf(float64(constTotal), 1) {
		return false
	}
	for gi := range p.groups {
		pg := &p.groups[gi]
		for t, v := range pg.outlay {
			if pg.suspect[t] {
				continue
			}
			if !(v >= 0) || math.IsInf(float64(v), 1) {
				return false
			}
		}
	}
	p.outlayConst = constTotal
	return true
}

// newScratch allocates one worker's bound-computation state.
func (p *pruner) newScratch() *pruneScratch {
	nk := len(p.knobRadix)
	n := p.ns * p.nLevels
	return &pruneScratch{
		allAll:  make([]bool, nk),
		allA:    make([]int, nk),
		allB:    make([]int, nk),
		serve:   make([]bool, n),
		minAccW: make([]time.Duration, n),
		minSer:  make([]time.Duration, n),
		minLag:  make([]time.Duration, p.nLevels),
		cum:     make([]time.Duration, p.nLevels),
		fl: SubtreeFloor{
			Scenarios:    p.cs.scs,
			RecoveryTime: make([]time.Duration, p.ns),
			DataLoss:     make([]time.Duration, p.ns),
			Penalties:    make([]units.Money, p.ns),
			Lost:         make([]bool, p.ns),
		},
	}
}

// computeAllowed derives, per knob, the set of option values candidates
// in [blo, bhi) can take: all options when the slice spans a full cycle
// of the knob's digit, else the cyclic interval from the first to the
// last index's digit (a superset of the values actually visited, which
// keeps the bound admissible). Returns false — no bound — when any
// reachable option is suspect, preserving the slow path's exact
// apply-error semantics.
func (p *pruner) computeAllowed(ps *pruneScratch, blo, bhi int) bool {
	span := bhi - blo
	for k := range p.knobRadix {
		n, w := p.knobRadix[k], p.knobWeight[k]
		sus := p.cs.knobSuspect[k]
		if span >= w*n {
			ps.allAll[k] = true
			for _, s := range sus {
				if s {
					return false
				}
			}
			continue
		}
		ps.allAll[k] = false
		a := (blo / w) % n
		b := ((bhi - 1) / w) % n
		ps.allA[k], ps.allB[k] = a, b
		if a <= b {
			for o := a; o <= b; o++ {
				if sus[o] {
					return false
				}
			}
		} else {
			for o := a; o < n; o++ {
				if sus[o] {
					return false
				}
			}
			for o := 0; o <= b; o++ {
				if sus[o] {
					return false
				}
			}
		}
	}
	return true
}

// allowed reports whether option o of knob k is reachable in the batch
// whose ranges computeAllowed last derived.
func (ps *pruneScratch) allowed(k, o int) bool {
	if ps.allAll[k] {
		return true
	}
	a, b := ps.allA[k], ps.allB[k]
	if a <= b {
		return o >= a && o <= b
	}
	return o >= a || o <= b
}

// bound computes the subtree objective floor for candidates [blo, bhi),
// filling ps.fl. ok=false means no admissible bound exists for this
// slice (a suspect option or entry is reachable); the batch must then be
// assessed normally.
func (p *pruner) bound(ps *pruneScratch, blo, bhi int) (units.Money, bool) {
	if !p.computeAllowed(ps, blo, bhi) {
		return 0, false
	}
	ns, nL := p.ns, p.nLevels
	copy(ps.serve, p.baseServe)
	copy(ps.minAccW, p.baseAccW)
	copy(ps.minSer, p.baseSer)
	copy(ps.minLag, p.baseLag)

	outlay := p.outlayConst
	for gi := range p.groups {
		pg := &p.groups[gi]
		nm, nl := len(pg.members), len(pg.levels)
		minOut := units.Money(math.Inf(1))
		found := false
		for t := 0; t < pg.size; t++ {
			reachable := true
			for mi := 0; mi < nm; mi++ {
				if !ps.allowed(pg.members[mi], int(pg.opts[t*nm+mi])) {
					reachable = false
					break
				}
			}
			if !reachable {
				continue
			}
			if pg.suspect[t] {
				return 0, false
			}
			found = true
			if pg.outlay[t] < minOut {
				minOut = pg.outlay[t]
			}
			for li := 0; li < nl; li++ {
				j := pg.levels[li]
				accW := pg.accW[t*nl+li]
				if lag := pg.lag[t*nl+li]; lag < ps.minLag[j] {
					ps.minLag[j] = lag
				}
				if pg.multi[li] {
					for si := 0; si < ns; si++ {
						idx := si*nL + j
						if !p.mServe[idx] {
							continue
						}
						ser := p.mRead[idx]
						if ser < 0 {
							ser = pg.readDelay[t*nl+li]
						}
						if !ps.serve[idx] {
							ps.serve[idx] = true
							ps.minAccW[idx] = accW
							ps.minSer[idx] = ser
							continue
						}
						if accW < ps.minAccW[idx] {
							ps.minAccW[idx] = accW
						}
						if ser < ps.minSer[idx] {
							ps.minSer[idx] = ser
						}
					}
					continue
				}
				ci := int(pg.copyIdx[t*nl+li])
				ser := pg.readDelay[t*nl+li]
				for si := 0; si < ns; si++ {
					if !p.intact[si*p.nDevices+ci] {
						continue
					}
					idx := si*nL + j
					if !ps.serve[idx] {
						ps.serve[idx] = true
						ps.minAccW[idx] = accW
						ps.minSer[idx] = ser
						continue
					}
					if accW < ps.minAccW[idx] {
						ps.minAccW[idx] = accW
					}
					if ser < ps.minSer[idx] {
						ps.minSer[idx] = ser
					}
				}
			}
		}
		if !found {
			return 0, false
		}
		outlay += minOut
	}

	// Lag prefix sums: the kernel accumulates every level's transfer lag
	// in level order before the serving level, so the per-level data-loss
	// floor under a TargetAge-0 scenario is this prefix plus the level's
	// own accumulation-window floor. Every group found a reachable entry
	// above, so owned levels' minLag is finite.
	var cum time.Duration
	for j := 0; j < nL; j++ {
		cum += ps.minLag[j]
		ps.cum[j] = cum
	}

	fl := &ps.fl
	fl.Outlays = outlay
	for si := 0; si < ns; si++ {
		lost := p.destLost[si]
		minSer := units.Forever
		minAccW := units.Forever
		if !lost {
			any := false
			for j := 0; j < nL; j++ {
				idx := si*nL + j
				if !ps.serve[idx] {
					continue
				}
				any = true
				if ps.minSer[idx] < minSer {
					minSer = ps.minSer[idx]
				}
				loss := ps.minAccW[idx]
				if p.tgtZero[si] {
					loss += ps.cum[j]
				}
				if loss < minAccW {
					minAccW = loss
				}
			}
			lost = !any
		}
		if lost {
			fl.Lost[si] = true
			fl.RecoveryTime[si] = units.Forever
			fl.DataLoss[si] = units.Forever
			fl.Penalties[si] = p.lostPen
			continue
		}
		rt := p.destProv[si] + minSer
		fl.Lost[si] = false
		fl.RecoveryTime[si] = rt
		fl.DataLoss[si] = minAccW
		fl.Penalties[si] = p.cs.kern.PenaltyFloor(rt, minAccW)
	}
	return p.floor(fl), true
}

// pruneBatch decides whether every candidate in [blo, bhi) can be
// eliminated: computed reports whether a bound was evaluated at all,
// pruned whether it (with slack) exceeds the current incumbent. With no
// incumbent yet, no bound is computed — nothing could prune.
func (p *pruner) pruneBatch(ps *pruneScratch, blo, bhi int) (computed, pruned bool) {
	inc := p.incumbent.load()
	if math.IsInf(float64(inc), 1) {
		return false, false
	}
	v, ok := p.bound(ps, blo, bhi)
	if !ok {
		return false, false
	}
	return true, float64(v)*(1-boundSlack) > float64(inc)
}

// noteScore offers an achieved candidate score to the shared incumbent.
func (p *pruner) noteScore(s units.Money) { p.incumbent.min(s) }

// seed assesses up to seedProbes evenly spread candidates of [lo, hi)
// through the compiled fast path and seeds the incumbent with the best
// achieved score, so enumeration order cannot delay pruning (a good
// candidate in the last shard half would otherwise leave early batches
// unbounded). Slow-path probes are skipped — seeding is an accelerator
// and must not duplicate the legacy path's error semantics. Probe
// scores are achieved scores, so seeding never changes the argmin; the
// probes are not counted as Evaluations.
func (p *pruner) seed(objective Objective, lo, hi int) {
	cs := p.cs
	n := hi - lo
	probes := seedProbes
	if n < probes {
		probes = n
	}
	if probes <= 0 {
		return
	}
	cols := cs.kern.NewCols(1)
	fs := newFillScratch(cs)
	var bs core.BatchScratch
	choice := make([]int, len(cs.knobs))
	var res whatif.Result
	ns := len(cs.scs)
	for pi := 0; pi < probes; pi++ {
		idx := lo
		if probes > 1 {
			idx = lo + pi*(n-1)/(probes-1)
		}
		decodeChoice(choice, cs.knobs, idx)
		if cs.fill(fs, cols, 0, choice) {
			continue
		}
		cs.kern.AssessBatch(1, cols, &bs)
		res.Design = cs.base.Name
		res.Err = nil
		res.Outlays = cols.OutlaysTotal[0]
		res.Outcomes = res.Outcomes[:0]
		for si := 0; si < ns; si++ {
			b := bs.Briefs[si]
			res.Outcomes = append(res.Outcomes, whatif.Outcome{
				Scenario:     cs.scs[si],
				RecoveryTime: b.RecoveryTime,
				DataLoss:     b.DataLoss,
				Penalties:    b.Penalties,
				Total:        b.Total,
				Lost:         b.WholeObjectLost,
			})
		}
		p.noteScore(objective(res))
	}
}
