package opt

import (
	"math"

	"stordep/internal/core"
	"stordep/internal/units"
)

// Scorer scores one candidate design directly; lower is better. It is
// the design-level counterpart of Objective for optimizers whose
// scoring is not a per-scenario analytic evaluation — e.g. a Monte
// Carlo expected-cost campaign (mc.(*Campaign).Scorer), where every
// candidate is scored on the same seeded trial budget so the sampling
// noise is common across candidates and cancels out of the comparison.
type Scorer func(*core.Design) (units.Money, error)

// TuneScored runs the same memoized coordinate descent as TuneWorkers
// with an arbitrary design-level scorer: each pass sweeps the knobs in
// order, scoring every option of the current knob with the others held
// at their incumbents, and keeps the best until a full pass improves
// nothing. Options are scored serially in option order — scorers are
// expected to parallelize internally (a Monte Carlo campaign fans its
// trials across all CPUs) — and already-seen choice vectors are served
// from a memo, so the descent is deterministic: same base, knobs and
// scorer results, same Solution. Ties keep the incumbent, then prefer
// the lowest option index, exactly like TuneWorkers.
func TuneScored(base *core.Design, knobs []Knob, score Scorer) (*Solution, error) {
	if score == nil {
		return nil, ErrBadKnob
	}
	if len(knobs) == 0 {
		return nil, ErrNoKnobs
	}
	for _, k := range knobs {
		if k.Name == "" || len(k.Options) == 0 || k.Apply == nil {
			return nil, ErrBadKnob
		}
	}

	sol := &Solution{CandidateIndex: -1}
	memo := make(map[string]units.Money)
	current := make([]int, len(knobs))
	scoreChoice := func(choice []int) (units.Money, error) {
		key := choiceKey(choice)
		if s, ok := memo[key]; ok {
			sol.MemoHits++
			return s, nil
		}
		d, err := applyChoice(base, knobs, choice)
		if err != nil {
			return 0, err
		}
		s, err := score(d)
		if err != nil {
			return 0, err
		}
		memo[key] = s
		sol.Evaluations++
		return s, nil
	}

	best, err := scoreChoice(current)
	if err != nil {
		return nil, err
	}
	for pass := 0; pass < maxPasses; pass++ {
		sol.Passes = pass + 1
		improved := false
		for ki, k := range knobs {
			trial := make([]int, len(current))
			copy(trial, current)
			bestOpt := current[ki]
			for oi := range k.Options {
				if oi == current[ki] {
					continue
				}
				trial[ki] = oi
				s, err := scoreChoice(trial)
				if err != nil {
					return nil, err
				}
				if s < best {
					best, bestOpt = s, oi
					improved = true
				}
			}
			current[ki] = bestOpt
		}
		if !improved {
			break
		}
	}

	if math.IsInf(float64(best), 1) {
		return nil, ErrNoFeasible
	}
	tuned, err := applyChoice(base, knobs, current)
	if err != nil {
		return nil, err
	}
	sol.Design = tuned
	sol.Score = best
	for i, k := range knobs {
		sol.Choices = append(sol.Choices, Choice{Knob: k.Name, Option: k.Options[current[i]]})
	}
	return sol, nil
}
