package opt

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"stordep/internal/casestudy"
	"stordep/internal/core"
	"stordep/internal/hierarchy"
	"stordep/internal/units"
	"stordep/internal/whatif"
)

// compiledKnobs is a fixed knob set covering every built-in knob shape:
// technique substitution (policy), retention counts on two levels, a
// device-spec rewrite (link count), and a pure tie-breaker. All changes
// are representable, so the compiled tables carry every candidate.
func compiledKnobs() []Knob {
	weeklyVault := casestudy.VaultPolicy()
	weeklyVault.Primary.AccW = units.Week
	weeklyVault.RetCnt = 156
	return []Knob{
		PolicyKnob("vaulting", []string{"4-weekly", "weekly"},
			[]hierarchy.Policy{casestudy.VaultPolicy(), weeklyVault}),
		RetCntKnob("vaulting", []int{2, 4, 8, 13}),
		RetCntKnob("backup", []int{7, 14, 28}),
		LinkCountKnob("tape-library", []int{4, 8, 12, 16}),
		{
			Name:       "tie",
			Options:    []string{"first", "second", "third"},
			Apply:      func(*core.Design, int) error { return nil },
			Revertible: true,
		},
	}
}

// TestExhaustiveBatchedMatchesSliceOracle: the acceptance grid of the
// batch kernel — on randomized knob spaces, the compiled batched search
// (BatchSize > 0 forces compilation) returns byte-identical Solutions
// to the slice-based oracle for batch sizes {1, 7, 64, space} x workers
// {1, 2, 8}.
func TestExhaustiveBatchedMatchesSliceOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	base := casestudy.Baseline()
	for trial := 0; trial < 6; trial++ {
		knobs := randomKnobs(rng)
		space, err := SpaceSize(knobs)
		if err != nil {
			t.Fatal(err)
		}
		ref, refErr := sliceExhaustive(base, knobs, scenarios(), nil)
		for _, batch := range []int{1, 7, 64, space} {
			for _, workers := range []int{1, 2, 8} {
				label := fmt.Sprintf("trial %d batch %d workers %d (space %d)", trial, batch, workers, space)
				sol, err := ExhaustiveOpts(base, knobs, scenarios(), nil, ExhaustiveOptions{
					Workers:   workers,
					BatchSize: batch,
				})
				if refErr != nil {
					if !errors.Is(err, refErr) && (err == nil || err.Error() != refErr.Error()) {
						t.Errorf("%s: err = %v, oracle err = %v", label, err, refErr)
					}
					continue
				}
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				solutionsIdentical(t, label, ref, sol)
				if sol.CandidateIndex != ref.CandidateIndex {
					t.Errorf("%s: candidate index %d, oracle %d", label, sol.CandidateIndex, ref.CandidateIndex)
				}
			}
		}
	}
}

// TestCompiledSpaceMatchesLegacyPerCandidate: stronger than argmin
// equality — for every candidate the tables claim to carry, the filled
// row's outlays and batch-assessed outcomes score identically (as raw
// float bits) to the legacy clone+build+assess path.
func TestCompiledSpaceMatchesLegacyPerCandidate(t *testing.T) {
	base := casestudy.Baseline()
	knobs := compiledKnobs()
	scs := scenarios()
	cs, err := compileSpace(base, knobs, scs, 1)
	if err != nil {
		t.Fatalf("compileSpace: %v", err)
	}
	space, err := SpaceSize(knobs)
	if err != nil {
		t.Fatal(err)
	}
	objective := WorstTotalObjective()
	cols := cs.kern.NewCols(1)
	var bs core.BatchScratch
	fs := newFillScratch(cs)
	choice := make([]int, len(knobs))
	var res whatif.Result
	fast := 0
	for idx := 0; idx < space; idx++ {
		decodeChoice(choice, knobs, idx)
		want, err := scoreCandidate(base, knobs, scs, objective, choice)
		if err != nil {
			t.Fatalf("candidate %d: %v", idx, err)
		}
		if cs.fill(fs, cols, 0, choice) {
			continue // slow path delegates to the legacy code: exact by construction
		}
		fast++
		cs.kern.AssessBatch(1, cols, &bs)
		res.Design = base.Name
		res.Err = nil
		res.Outlays = cols.OutlaysTotal[0]
		res.Outcomes = res.Outcomes[:0]
		for si := range scs {
			b := bs.Briefs[si]
			res.Outcomes = append(res.Outcomes, whatif.Outcome{
				Scenario:     scs[si],
				RecoveryTime: b.RecoveryTime,
				DataLoss:     b.DataLoss,
				Penalties:    b.Penalties,
				Total:        b.Total,
				Lost:         b.WholeObjectLost,
			})
		}
		if got := objective(res); got != want {
			t.Errorf("candidate %d: compiled score %v, legacy %v", idx, got, want)
		}
	}
	if fast == 0 {
		t.Fatal("no candidate took the fast path; the compiled tables carry nothing")
	}
	// The unbuildable low-link-count candidates go slow (fill replicates
	// Check); everything buildable should be carried by the tables.
	if fast < space/2 {
		t.Errorf("only %d/%d candidates on the fast path", fast, space)
	}
}

// TestExhaustiveBatchedShardsMergeIdentically: compiled shard searches
// merge to exactly the unsharded (and legacy) Solution — the
// sharded/distributed ledger path stays deterministic through the batch
// kernel.
func TestExhaustiveBatchedShardsMergeIdentically(t *testing.T) {
	base := casestudy.Baseline()
	knobs := compiledKnobs()
	space, err := SpaceSize(knobs)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := ExhaustiveOpts(base, knobs, scenarios(), nil, ExhaustiveOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	whole, err := ExhaustiveOpts(base, knobs, scenarios(), nil, ExhaustiveOptions{Workers: 2, BatchSize: 7})
	if err != nil {
		t.Fatal(err)
	}
	solutionsIdentical(t, "compiled vs legacy", legacy, whole)
	for _, m := range []int{2, 3, 5} {
		sols := make([]*Solution, m)
		for k := 0; k < m; k++ {
			sol, err := ExhaustiveOpts(base, knobs, scenarios(), nil, ExhaustiveOptions{
				Workers:   2,
				BatchSize: 16,
				Shard:     Shard{Index: k, Count: m},
			})
			switch {
			case err == nil:
				sols[k] = sol
			case errors.Is(err, ErrNoFeasible) && m > space:
			default:
				t.Fatalf("shard %d/%d: %v", k, m, err)
			}
		}
		merged, err := MergeShards(sols)
		if err != nil {
			t.Fatalf("merge %d shards: %v", m, err)
		}
		label := fmt.Sprintf("%d compiled shards", m)
		solutionsIdentical(t, label, whole, merged)
		if merged.CandidateIndex != whole.CandidateIndex {
			t.Errorf("%s: candidate index %d, want %d", label, merged.CandidateIndex, whole.CandidateIndex)
		}
	}
}

// TestCompileSpaceGroupsInteractingKnobs: knobs touching the same level
// (a policy substitution and a retention count on "vaulting") land in
// one group whose joint table reproduces their interaction; disjoint
// knobs stay in separate groups.
func TestCompileSpaceGroupsInteractingKnobs(t *testing.T) {
	base := casestudy.Baseline()
	knobs := compiledKnobs()
	cs, err := compileSpace(base, knobs, scenarios(), 1)
	if err != nil {
		t.Fatalf("compileSpace: %v", err)
	}
	var joint *knobGroup
	for gi := range cs.groups {
		for _, m := range cs.groups[gi].members {
			if knobs[m].Name == knobs[0].Name { // the vaulting policy knob
				joint = &cs.groups[gi]
			}
		}
	}
	if joint == nil {
		t.Fatal("vaulting policy knob not grouped")
	}
	if len(joint.members) != 2 {
		t.Fatalf("vaulting group has members %v, want the policy and retention knobs", joint.members)
	}
	if joint.size != 2*4 {
		t.Errorf("joint table has %d entries, want 8", joint.size)
	}
	for k := range knobs {
		for o, bad := range cs.knobSuspect[k] {
			if bad {
				t.Errorf("knob %q option %d marked suspect; all options are representable", knobs[k].Name, o)
			}
		}
	}
	// The tie knob touches nothing: it must not appear in any group.
	for gi := range cs.groups {
		for _, m := range cs.groups[gi].members {
			if knobs[m].Name == "tie" {
				t.Error("no-op knob was grouped")
			}
		}
	}
}

// TestCompiledFallbacks: options the tables cannot represent — design
// renames, device moves, apply errors — degrade per candidate (slow
// path) or per search (legacy fold), never silently diverge.
func TestCompiledFallbacks(t *testing.T) {
	base := casestudy.Baseline()
	scs := scenarios()

	t.Run("unrepresentable option goes slow", func(t *testing.T) {
		knobs := []Knob{
			RetCntKnob("vaulting", []int{2, 4, 8}),
			{
				Name:    "rename",
				Options: []string{"keep", "rename"},
				Apply: func(d *core.Design, i int) error {
					if i == 1 {
						d.Name += " (renamed)"
					}
					return nil
				},
				Revertible: false,
			},
		}
		cs, err := compileSpace(base, knobs, scs, 1)
		if err != nil {
			t.Fatalf("compileSpace: %v", err)
		}
		if !cs.knobSuspect[1][1] || cs.knobSuspect[1][0] {
			t.Errorf("rename suspects = %v, want only option 1", cs.knobSuspect[1])
		}
		ref, err := sliceExhaustive(base, knobs, scs, nil)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := ExhaustiveOpts(base, knobs, scs, nil, ExhaustiveOptions{Workers: 2, BatchSize: 3})
		if err != nil {
			t.Fatal(err)
		}
		solutionsIdentical(t, "rename knob", ref, sol)
	})

	t.Run("device move goes slow", func(t *testing.T) {
		knobs := []Knob{
			RetCntKnob("vaulting", []int{2, 4, 8}),
			{
				Name:    "move",
				Options: []string{"keep", "move"},
				Apply: func(d *core.Design, i int) error {
					if i == 1 {
						for di := range d.Devices {
							if d.Devices[di].Spec.Name == "vault" {
								d.Devices[di].Placement.Site = "elsewhere"
							}
						}
					}
					return nil
				},
			},
		}
		ref, err := sliceExhaustive(base, knobs, scs, nil)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := ExhaustiveOpts(base, knobs, scs, nil, ExhaustiveOptions{Workers: 1, BatchSize: 2})
		if err != nil {
			t.Fatal(err)
		}
		solutionsIdentical(t, "move knob", ref, sol)
	})

	t.Run("apply error aborts identically", func(t *testing.T) {
		boom := errors.New("boom")
		knobs := []Knob{
			RetCntKnob("vaulting", []int{2, 4, 8}),
			{
				Name:    "bomb",
				Options: []string{"ok", "boom"},
				Apply: func(d *core.Design, i int) error {
					if i == 1 {
						return boom
					}
					return nil
				},
			},
		}
		_, refErr := sliceExhaustive(base, knobs, scs, nil)
		if refErr == nil {
			t.Fatal("oracle did not error")
		}
		_, err := ExhaustiveOpts(base, knobs, scs, nil, ExhaustiveOptions{Workers: 2, BatchSize: 2})
		if err == nil || err.Error() != refErr.Error() {
			t.Errorf("batched err = %v, oracle %v", err, refErr)
		}
	})
}

// TestExhaustiveBatchedAllocBudget: the ISSUE 7 gate — once a space is
// compiled, the batched inner loop spends at most 2 allocations per
// candidate amortized over a full search pass (worker accumulators,
// their columnar blocks, and the reduce plumbing included).
func TestExhaustiveBatchedAllocBudget(t *testing.T) {
	base := casestudy.Baseline()
	knobs := compiledKnobs()
	scs := scenarios()
	space, err := SpaceSize(knobs)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := compileSpace(base, knobs, scs, 1)
	if err != nil {
		t.Fatalf("compileSpace: %v", err)
	}
	objective := WorstTotalObjective()
	// Warm-up, then measure full batched search passes over the space.
	if _, _, _, err := cs.search(0, space, defaultBatchSize, objective, ExhaustiveOptions{Workers: 1}, true, nil); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, _, _, err := cs.search(0, space, defaultBatchSize, objective, ExhaustiveOptions{Workers: 1}, true, nil); err != nil {
			t.Fatal(err)
		}
	})
	perCandidate := allocs / float64(space)
	if perCandidate > 2 {
		t.Errorf("batched search allocates %.2f objects per candidate (%.0f over %d), budget 2",
			perCandidate, allocs, space)
	}
}
