package opt

import (
	"fmt"
	"time"

	"stordep/internal/core"
	"stordep/internal/hierarchy"
	"stordep/internal/protect"
	"stordep/internal/units"
)

// This file provides knob constructors for the built-in techniques, so
// common tunings don't require hand-written Apply functions.

// findLevel locates a level by technique name.
func findLevel(d *core.Design, name string) (int, error) {
	for i, tech := range d.Levels {
		if tech.Name() == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("opt: design has no level %q", name)
}

// setPolicy rewrites the policy of the named level, preserving the
// technique's other configuration.
func setPolicy(d *core.Design, level string, pol hierarchy.Policy) error {
	i, err := findLevel(d, level)
	if err != nil {
		return err
	}
	switch t := d.Levels[i].(type) {
	case *protect.SplitMirror:
		t.Pol = pol
	case *protect.Snapshot:
		t.Pol = pol
	case *protect.Backup:
		t.Pol = pol
	case *protect.Vaulting:
		t.Pol = pol
	case *protect.Mirror:
		t.Pol = pol
	case *protect.ErasureCode:
		t.Pol = pol
	default:
		return fmt.Errorf("opt: level %q has unsupported type %T", level, d.Levels[i])
	}
	return nil
}

// PolicyKnob selects among complete policies for one level. Option names
// are supplied alongside the policies.
func PolicyKnob(level string, names []string, policies []hierarchy.Policy) Knob {
	return Knob{
		Name:    level + " policy",
		Options: names,
		Apply: func(d *core.Design, i int) error {
			if i < 0 || i >= len(policies) {
				return fmt.Errorf("opt: policy option %d out of range", i)
			}
			return setPolicy(d, level, policies[i])
		},
		// Overwrites the level's whole policy from the option table —
		// nothing read from the design survives into the result.
		Revertible: true,
	}
}

// AccWKnob sweeps one level's primary accumulation window, scaling the
// retention count to keep the retention window covered (retCnt =
// ceil(retW / cyclePer), at least 1). Propagation and hold windows are
// clamped to the new accW to preserve the propW <= accW convention.
//
// Not Revertible: the propW clamp reads the design's current propagation
// window, which a previous application may itself have clamped and
// nothing restores — re-applying on a reused design can diverge from a
// fresh clone, so the exhaustive enumerator clones per candidate when
// this knob is in the set.
func AccWKnob(level string, options []time.Duration) Knob {
	names := make([]string, len(options))
	for i, o := range options {
		names[i] = units.FormatDuration(o)
	}
	return Knob{
		Name:    level + " accW",
		Options: names,
		Apply: func(d *core.Design, i int) error {
			li, err := findLevel(d, level)
			if err != nil {
				return err
			}
			pol := d.Levels[li].Level().Policy
			pol.Primary.AccW = options[i]
			if pol.Primary.PropW > options[i] {
				pol.Primary.PropW = options[i]
			}
			if pol.RetW > 0 {
				cycle := pol.CyclePeriod()
				if cycle > 0 {
					ret := int((pol.RetW + cycle - 1) / cycle)
					if ret < 1 {
						ret = 1
					}
					pol.RetCnt = ret
				}
			}
			return setPolicy(d, level, pol)
		},
	}
}

// RetCntKnob sweeps one level's retention count, scaling retW to match
// (retW = retCnt x cyclePer).
func RetCntKnob(level string, options []int) Knob {
	names := make([]string, len(options))
	for i, o := range options {
		names[i] = fmt.Sprintf("%d", o)
	}
	return Knob{
		Name:    level + " retCnt",
		Options: names,
		Apply: func(d *core.Design, i int) error {
			li, err := findLevel(d, level)
			if err != nil {
				return err
			}
			pol := d.Levels[li].Level().Policy
			pol.RetCnt = options[i]
			pol.RetW = time.Duration(options[i]) * pol.CyclePeriod()
			return setPolicy(d, level, pol)
		},
		// Overwrites retCnt and retW unconditionally; the cycle period it
		// reads is derived from the primary windows, which only knobs
		// applied earlier in the same vector may set.
		Revertible: true,
	}
}

// PiTKnob chooses between split mirrors and virtual snapshots for the
// named level (the Table 7 "snapshot" substitution), keeping the policy.
//
// Not Revertible: the knob locates its level by the technique's current
// name, and (unless an InstanceName pins the name) its own swap renames
// the level — re-applying on a reused design would no longer find it, so
// the exhaustive enumerator clones per candidate when this knob is in
// the set.
func PiTKnob(level string) Knob {
	return Knob{
		Name:    level + " PiT technique",
		Options: []string{"split-mirror", "virtual-snapshot"},
		Apply: func(d *core.Design, i int) error {
			li, err := findLevel(d, level)
			if err != nil {
				return err
			}
			pol := d.Levels[li].Level().Policy
			var array, instance string
			switch t := d.Levels[li].(type) {
			case *protect.SplitMirror:
				array, instance = t.Array, t.InstanceName
			case *protect.Snapshot:
				array, instance = t.Array, t.InstanceName
			default:
				return fmt.Errorf("opt: level %q is not a PiT technique (%T)", level, d.Levels[li])
			}
			if i == 0 {
				d.Levels[li] = &protect.SplitMirror{InstanceName: instance, Array: array, Pol: pol}
			} else {
				d.Levels[li] = &protect.Snapshot{InstanceName: instance, Array: array, Pol: pol}
			}
			return nil
		},
	}
}

// LinkCountKnob sweeps the provisioned WAN link count by rewriting the
// named interconnect device's bandwidth slots.
func LinkCountKnob(deviceName string, options []int) Knob {
	names := make([]string, len(options))
	for i, o := range options {
		names[i] = fmt.Sprintf("%d links", o)
	}
	return Knob{
		Name:    deviceName + " count",
		Options: names,
		Apply: func(d *core.Design, i int) error {
			for di := range d.Devices {
				if d.Devices[di].Spec.Name == deviceName {
					d.Devices[di].Spec.MaxBWSlots = options[i]
					return nil
				}
			}
			return fmt.Errorf("opt: design has no device %q", deviceName)
		},
		// Overwrites the slot count from the option table.
		Revertible: true,
	}
}
