package opt

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"stordep/internal/casestudy"
	"stordep/internal/core"
	"stordep/internal/failure"
	"stordep/internal/hierarchy"
	"stordep/internal/protect"
	"stordep/internal/units"
	"stordep/internal/whatif"
)

func scenarios() []failure.Scenario {
	return []failure.Scenario{
		{Scope: failure.ScopeArray},
		{Scope: failure.ScopeSite},
	}
}

func TestClone(t *testing.T) {
	base := casestudy.Baseline()
	clone, err := Clone(base)
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the clone leaves the original untouched.
	clone.Levels = clone.Levels[:1]
	clone.Devices[0].Spec.MaxCapSlots = 1
	if len(base.Levels) != 3 || base.Devices[0].Spec.MaxCapSlots != 256 {
		t.Error("clone aliased the original")
	}
	// Designs with techniques outside the structural-clone protocol are
	// rejected (they cannot be optimized).
	alien := casestudy.Baseline()
	alien.Levels = append(alien.Levels, struct{ protect.Technique }{})
	if _, err := Clone(alien); !errors.Is(err, core.ErrNotCloneable) {
		t.Errorf("uncloneable technique: err = %v", err)
	}
}

// table7Knobs exposes the paper's Table 7 moves as optimizer knobs.
func table7Knobs() []Knob {
	weeklyVault := casestudy.VaultPolicy()
	weeklyVault.Primary.AccW = units.Week
	weeklyVault.Primary.HoldW = 12 * time.Hour
	weeklyVault.RetCnt = 156

	fi := casestudy.BackupPolicy()
	fi.Primary.AccW = 48 * time.Hour
	fi.Primary.PropW = 48 * time.Hour
	fi.Secondary = &hierarchy.WindowSet{
		AccW: 24 * time.Hour, PropW: 12 * time.Hour, HoldW: time.Hour,
		Rep: hierarchy.RepPartial,
	}
	fi.CycleCnt = 5

	dailyF := casestudy.BackupPolicy()
	dailyF.Primary.AccW = 24 * time.Hour
	dailyF.Primary.PropW = 12 * time.Hour
	dailyF.RetCnt = 28

	return []Knob{
		PolicyKnob("vaulting",
			[]string{"4-weekly", "weekly"},
			[]hierarchy.Policy{casestudy.VaultPolicy(), weeklyVault}),
		PolicyKnob("backup",
			[]string{"weekly full", "F+I", "daily full"},
			[]hierarchy.Policy{casestudy.BackupPolicy(), fi, dailyF}),
		// PiTKnob renames the level, so it must come after other knobs
		// that reference it by its base-design name.
		PiTKnob("split-mirror"),
	}
}

// TestTuneRediscoversTable7 is the headline optimizer test: starting from
// the paper's baseline with the Table 7 moves exposed as knobs — vaulting
// cadence, backup policy, PiT technique — coordinate descent must land on
// the paper's best tape-based design: weekly vault + daily fulls +
// virtual snapshots.
func TestTuneRediscoversTable7(t *testing.T) {
	sol, err := Tune(casestudy.Baseline(), table7Knobs(), scenarios(), WorstTotalObjective())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"vaulting policy":            "weekly",
		"backup policy":              "daily full",
		"split-mirror PiT technique": "virtual-snapshot",
	}
	got := map[string]string{}
	for _, c := range sol.Choices {
		got[c.Knob] = c.Option
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("knob %q = %q, want %q (choices %v)", k, got[k], v, sol.Choices)
		}
	}
	// The tuned design scores the Table 7 snapshot row's site total
	// (~$12.9M in our cost book).
	if s := float64(sol.Score) / 1e6; math.Abs(s-12.89) > 0.1 {
		t.Errorf("tuned score = $%.2fM, want ~$12.89M", s)
	}
	// Convergence within a couple of passes and a modest budget.
	if sol.Passes > 3 || sol.Evaluations > 40 {
		t.Errorf("passes=%d evaluations=%d; descent should be cheap", sol.Passes, sol.Evaluations)
	}
	// The solution design actually builds and reproduces the score.
	results, err := whatif.Evaluate([]*core.Design{sol.Design}, scenarios())
	if err != nil {
		t.Fatal(err)
	}
	if results[0].WorstTotal() != sol.Score {
		t.Errorf("rebuilt score %v != solution score %v", results[0].WorstTotal(), sol.Score)
	}
}

// TestTuneLinkCount: for the asyncB design, the optimizer finds the
// 2-link sweet spot under the worst-total objective.
func TestTuneLinkCount(t *testing.T) {
	knob := LinkCountKnob("wan-links", []int{1, 2, 4, 8, 16})
	sol, err := Tune(casestudy.AsyncBMirror(1), []Knob{knob}, scenarios(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Choices[0].Option != "2 links" {
		t.Errorf("links = %s, want 2 (the second link halves a 20h transfer for $456k)",
			sol.Choices[0].Option)
	}
}

// TestTuneConstrainedObjective: under an RTO/RPO constraint the optimizer
// picks the cheapest conforming option instead of the lowest total.
func TestTuneConstrainedObjective(t *testing.T) {
	knob := LinkCountKnob("wan-links", []int{1, 2, 4, 8, 16})
	obj := ConstrainedOutlayObjective(whatif.Objectives{
		RTO: 12 * time.Hour,
		RPO: time.Hour,
	})
	sol, err := Tune(casestudy.AsyncBMirror(1), []Knob{knob}, scenarios(), obj)
	if err != nil {
		t.Fatal(err)
	}
	// 12h site RTO needs ~2h of transfer after the 9h provisioning:
	// 8 links is the cheapest conforming count.
	if sol.Choices[0].Option != "8 links" {
		t.Errorf("links = %s, want 8", sol.Choices[0].Option)
	}
}

func TestTuneExpectedObjective(t *testing.T) {
	sol, err := Tune(casestudy.Baseline(), table7Knobs(), scenarios(),
		ExpectedObjective(whatif.TypicalFrequencies()))
	if err != nil {
		t.Fatal(err)
	}
	// On expectation the same tape optimum holds (snapshots + daily
	// fulls + weekly vault dominate on every axis).
	got := map[string]string{}
	for _, c := range sol.Choices {
		got[c.Knob] = c.Option
	}
	if got["backup policy"] != "daily full" || got["split-mirror PiT technique"] != "virtual-snapshot" {
		t.Errorf("choices = %v", sol.Choices)
	}
}

func TestTuneValidation(t *testing.T) {
	base := casestudy.Baseline()
	if _, err := Tune(base, nil, scenarios(), nil); !errors.Is(err, ErrNoKnobs) {
		t.Errorf("no knobs: %v", err)
	}
	if _, err := Tune(base, []Knob{{}}, scenarios(), nil); !errors.Is(err, ErrBadKnob) {
		t.Errorf("bad knob: %v", err)
	}
	good := LinkCountKnob("wan-links", []int{1})
	if _, err := Tune(base, []Knob{good}, nil, nil); !errors.Is(err, ErrNoScenarios) {
		t.Errorf("no scenarios: %v", err)
	}
	// A knob that always errors propagates.
	broken := Knob{Name: "x", Options: []string{"a"}, Apply: func(*core.Design, int) error {
		return errors.New("boom")
	}}
	if _, err := Tune(base, []Knob{broken}, scenarios(), nil); err == nil {
		t.Error("knob error swallowed")
	}
	// Baseline has no wan-links device: LinkCountKnob errors.
	if _, err := Tune(base, []Knob{good}, scenarios(), nil); err == nil {
		t.Error("missing device swallowed")
	}
}

func TestTuneNoFeasible(t *testing.T) {
	knob := LinkCountKnob("wan-links", []int{1, 2})
	obj := ConstrainedOutlayObjective(whatif.Objectives{RTO: time.Minute, RPO: time.Minute})
	if _, err := Tune(casestudy.AsyncBMirror(1), []Knob{knob}, scenarios(), obj); !errors.Is(err, ErrNoFeasible) {
		t.Errorf("err = %v, want ErrNoFeasible", err)
	}
}

func TestKnobHelpersValidation(t *testing.T) {
	d := casestudy.Baseline()
	// AccWKnob adjusts retention to keep retW covered.
	k := AccWKnob("vaulting", []time.Duration{units.Week})
	if err := k.Apply(d, 0); err != nil {
		t.Fatal(err)
	}
	pol := d.Levels[2].Level().Policy
	if pol.Primary.AccW != units.Week {
		t.Errorf("accW = %v", pol.Primary.AccW)
	}
	if pol.RetCnt != 156 { // 3yr / 1wk
		t.Errorf("retCnt = %d, want 156", pol.RetCnt)
	}
	// RetCntKnob scales retW.
	k = RetCntKnob("backup", []int{8})
	if err := k.Apply(d, 0); err != nil {
		t.Fatal(err)
	}
	pol = d.Levels[1].Level().Policy
	if pol.RetCnt != 8 || pol.RetW != 8*units.Week {
		t.Errorf("backup policy = %+v", pol)
	}
	// Unknown level errors.
	if err := AccWKnob("ghost", []time.Duration{time.Hour}).Apply(d, 0); err == nil {
		t.Error("ghost level accepted")
	}
	if err := PiTKnob("backup").Apply(d, 0); err == nil {
		t.Error("PiT swap on a backup level accepted")
	}
	// PiT swap back and forth.
	if err := PiTKnob("split-mirror").Apply(d, 1); err != nil {
		t.Fatal(err)
	}
	if d.Levels[0].Kind().String() != "virtual-snapshot" {
		t.Errorf("swap produced %v", d.Levels[0].Kind())
	}
	if err := PiTKnob("virtual-snapshot").Apply(d, 0); err != nil {
		t.Fatal(err)
	}
	if d.Levels[0].Kind().String() != "split-mirror" {
		t.Errorf("swap back produced %v", d.Levels[0].Kind())
	}
}

// TestExhaustiveMatchesTune: on the Table 7 knob space both search
// strategies find the same global optimum (12 combinations).
func TestExhaustiveMatchesTune(t *testing.T) {
	knobs := table7Knobs()
	tuned, err := Tune(casestudy.Baseline(), knobs, scenarios(), nil)
	if err != nil {
		t.Fatal(err)
	}
	exhaustive, err := Exhaustive(casestudy.Baseline(), knobs, scenarios(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if exhaustive.Score != tuned.Score {
		t.Errorf("scores differ: exhaustive %v vs tuned %v", exhaustive.Score, tuned.Score)
	}
	if exhaustive.Evaluations != 12 {
		t.Errorf("evaluations = %d, want the full 2x3x2 space", exhaustive.Evaluations)
	}
	for i := range exhaustive.Choices {
		if exhaustive.Choices[i] != tuned.Choices[i] {
			t.Errorf("choice %d differs: %+v vs %+v", i, exhaustive.Choices[i], tuned.Choices[i])
		}
	}
}

func TestExhaustiveValidation(t *testing.T) {
	base := casestudy.Baseline()
	if _, err := Exhaustive(base, nil, scenarios(), nil); !errors.Is(err, ErrNoKnobs) {
		t.Errorf("no knobs: %v", err)
	}
	if _, err := Exhaustive(base, []Knob{{}}, scenarios(), nil); !errors.Is(err, ErrBadKnob) {
		t.Errorf("bad knob: %v", err)
	}
	good := LinkCountKnob("wan-links", []int{1})
	if _, err := Exhaustive(base, []Knob{good}, nil, nil); !errors.Is(err, ErrNoScenarios) {
		t.Errorf("no scenarios: %v", err)
	}
	// Space-size guard is now opt-in: 13 knobs of 2 options = 8192 trips
	// a caller-set budget but not the (unbounded) default.
	var wide []Knob
	for i := 0; i < 13; i++ {
		wide = append(wide, Knob{
			Name:    string(rune('a' + i)),
			Options: []string{"x", "y"},
			Apply:   func(*core.Design, int) error { return nil },
		})
	}
	if _, err := ExhaustiveOpts(base, wide, scenarios(), nil, ExhaustiveOptions{Budget: 4096}); !errors.Is(err, ErrSpaceTooLarge) {
		t.Errorf("budget guard: %v", err)
	}
	// Overflow guard: 64 knobs of 2 options = 2^64 overflows int even
	// with no budget set.
	var huge []Knob
	for i := 0; i < 64; i++ {
		huge = append(huge, Knob{
			Name:    fmt.Sprintf("k%d", i),
			Options: []string{"x", "y"},
			Apply:   func(*core.Design, int) error { return nil },
		})
	}
	if _, err := Exhaustive(base, huge, scenarios(), nil); !errors.Is(err, ErrSpaceTooLarge) {
		t.Errorf("overflow guard: %v", err)
	}
	// Shard guard.
	good2 := LinkCountKnob("wan-links", []int{1, 2})
	for _, sh := range []Shard{{Index: -1, Count: 2}, {Index: 2, Count: 2}, {Index: 0, Count: -1}, {Index: 1, Count: 0}} {
		if _, err := ExhaustiveOpts(base, []Knob{good2}, scenarios(), nil, ExhaustiveOptions{Shard: sh}); !errors.Is(err, ErrBadShard) {
			t.Errorf("shard %+v accepted: %v", sh, err)
		}
	}
	// Infeasible objective.
	knob := LinkCountKnob("wan-links", []int{1, 2})
	obj := ConstrainedOutlayObjective(whatif.Objectives{RTO: time.Minute, RPO: time.Minute})
	if _, err := Exhaustive(casestudy.AsyncBMirror(1), []Knob{knob}, scenarios(), obj); !errors.Is(err, ErrNoFeasible) {
		t.Errorf("infeasible: %v", err)
	}
}
