// Package opt is the automated-design outer loop the paper positions its
// models to serve (§1: "provide the inner-most loop of an automated
// optimization loop to choose the 'best' solution for a given set of
// business requirements"; the companion work is Keeton et al., "Designing
// for disasters", FAST 2004).
//
// The optimizer is deliberately simple: coordinate descent over named
// design knobs. Each knob rewrites one aspect of a candidate design
// (a policy window, a retention count, a technique substitution, a link
// count); the evaluator scores the candidate across the imposed failure
// scenarios; descent keeps the best value per knob and sweeps until a
// full pass yields no improvement. The analytic models evaluate a design
// in tens of microseconds, so even broad grids are interactive.
//
// Two things keep the inner loop fast: candidates are built with a
// structural deep copy (core.Design.Clone) instead of a config-JSON
// round trip — about a 10x cut in per-candidate cost, since the clone
// used to dominate the evaluation — and every option of the knob under
// sweep is scored concurrently on a bounded worker pool. A memo keyed by
// the knob-choice vector means coordinate descent never re-scores an
// incumbent across sweeps. Parallel and serial searches return
// byte-identical Solutions: ties break to the lowest choice index, and
// the memo makes the evaluation set independent of the worker count.
package opt

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"

	"stordep/internal/core"
	"stordep/internal/failure"
	"stordep/internal/parallel"
	"stordep/internal/units"
	"stordep/internal/whatif"
)

// Knob is one tunable aspect of a design. Apply rewrites a fresh clone of
// the design for the given option index; Options names each choice for
// reports.
type Knob struct {
	// Name labels the knob ("vault accW", "WAN links").
	Name string
	// Options are the human-readable values, one per choice.
	Options []string
	// Apply rewrites the design in place for option i. It must tolerate
	// any design produced by the other knobs, and must be safe to call
	// on distinct designs concurrently (rewrite only the design it is
	// given — every built-in knob constructor qualifies).
	Apply func(d *core.Design, i int) error
	// Revertible declares that Apply fully overwrites the state it
	// controls without reading anything another application of this
	// knob set may have changed: applying option j to a design that
	// previously had any full choice vector applied (all knobs, in knob
	// order) leaves exactly the state a fresh clone with option j would
	// have. When every knob in a search declares this, the exhaustive
	// enumerator reuses one cloned design per worker, re-applying
	// choices in place, instead of cloning per candidate. Knobs that
	// read-and-adjust current values (e.g. AccWKnob's propagation-window
	// clamp) must leave it false; the enumerator then falls back to a
	// clone per candidate.
	Revertible bool
}

// Objective scores one candidate's evaluation; lower is better. Designs
// that fail to build are scored +Inf automatically. Objectives run
// concurrently on distinct results, so they must not mutate shared
// state.
type Objective func(whatif.Result) units.Money

// WorstTotalObjective scores by the worst-scenario total cost — the
// design-for-the-hypothesized-disaster criterion used in Table 7.
func WorstTotalObjective() Objective {
	return func(r whatif.Result) units.Money { return r.WorstTotal() }
}

// ExpectedObjective scores by frequency-weighted expected annual cost.
func ExpectedObjective(freqs whatif.Frequencies) Objective {
	return func(r whatif.Result) units.Money { return whatif.ExpectedAnnualCost(r, freqs) }
}

// ConstrainedOutlayObjective scores by outlays among designs meeting the
// RTO/RPO objectives under every scenario, +Inf otherwise: "the cheapest
// conforming design".
func ConstrainedOutlayObjective(obj whatif.Objectives) Objective {
	return func(r whatif.Result) units.Money {
		if r.Err != nil || len(r.Outcomes) == 0 {
			return units.Money(math.Inf(1))
		}
		for _, o := range r.Outcomes {
			if !obj.Meets(o) {
				return units.Money(math.Inf(1))
			}
		}
		return r.Outlays
	}
}

// Choice records one knob's selected option in a solution.
type Choice struct {
	Knob   string
	Option string
}

// Solution is the optimizer's result.
type Solution struct {
	// Design is the tuned design (a deep clone; the input is untouched).
	Design *core.Design
	// Score is the objective value of the tuned design.
	Score units.Money
	// Choices records the selected option per knob, in knob order.
	Choices []Choice
	// Evaluations counts design evaluations actually performed (memo
	// hits are counted separately in MemoHits).
	Evaluations int
	// MemoHits counts candidate scores served from the evaluation memo
	// instead of being recomputed.
	MemoHits int
	// Passes counts full knob sweeps until convergence.
	Passes int
	// CandidateIndex is the winning candidate's global index in the
	// exhaustive enumeration order (mixed-radix over the knob options,
	// last knob least significant). It is what makes independently run
	// shards mergeable with a deterministic tie-break (see MergeShards).
	// Coordinate descent (Tune) does not enumerate, so it records -1.
	CandidateIndex int
	// CandidatesPruned counts candidates eliminated wholesale by
	// bound-guided pruning without being assessed. Evaluations plus
	// CandidatesPruned equals the searched slice size. Always 0 for
	// Tune and for unpruned searches.
	CandidatesPruned int
	// BoundsComputed counts subtree lower bounds actually evaluated by
	// the pruner (batches skipped because no incumbent was known yet are
	// not counted).
	BoundsComputed int
}

// Optimizer configuration errors.
var (
	ErrNoKnobs     = errors.New("opt: at least one knob required")
	ErrBadKnob     = errors.New("opt: knob needs a name, options and an Apply function")
	ErrNoScenarios = errors.New("opt: at least one scenario required")
	ErrNoFeasible  = errors.New("opt: no knob combination produced a feasible design")
)

// tuneDeltaProbes is how many incremental AssessDelta scores TuneWorkers
// cross-checks against the full Build-and-assess evaluator before
// trusting the delta path for the rest of the descent (on top of the
// bit-exact base self-check NewDeltaAssessor already performs). Any
// divergence permanently disables incremental scoring for the run.
const tuneDeltaProbes = 2

// maxPasses bounds coordinate descent; with monotone improvement it
// always converges far earlier.
const maxPasses = 16

// Clone deep-copies a design so knobs can mutate candidates freely. The
// copy is a hand-written structural clone (core.Design.Clone) — roughly
// two orders of magnitude cheaper than the config-JSON round trip it
// replaced, which used to dominate the optimizer's per-candidate cost.
// Only designs whose techniques support structural cloning can be
// optimized (all built-in techniques do); a property test validates the
// structural copy against the config round trip on randomized designs.
func Clone(d *core.Design) (*core.Design, error) {
	out, err := d.Clone()
	if err != nil {
		return nil, fmt.Errorf("opt: %w", err)
	}
	return out, nil
}

// validate checks the shared Tune/Exhaustive preconditions and resolves
// the default objective.
func validate(knobs []Knob, scenarios []failure.Scenario, objective Objective) (Objective, error) {
	if len(knobs) == 0 {
		return nil, ErrNoKnobs
	}
	for _, k := range knobs {
		if k.Name == "" || len(k.Options) == 0 || k.Apply == nil {
			return nil, fmt.Errorf("%w: %q", ErrBadKnob, k.Name)
		}
	}
	if len(scenarios) == 0 {
		return nil, ErrNoScenarios
	}
	if objective == nil {
		objective = WorstTotalObjective()
	}
	return objective, nil
}

// applyChoice builds one candidate: a structural clone of the base with
// every knob's selected option applied.
func applyChoice(base *core.Design, knobs []Knob, choice []int) (*core.Design, error) {
	d, err := Clone(base)
	if err != nil {
		return nil, err
	}
	if err := applyChoiceTo(d, knobs, choice); err != nil {
		return nil, err
	}
	return d, nil
}

// applyChoiceTo applies every knob's selected option to d in knob order.
func applyChoiceTo(d *core.Design, knobs []Knob, choice []int) error {
	for i, k := range knobs {
		if err := k.Apply(d, choice[i]); err != nil {
			return fmt.Errorf("opt: knob %q option %d: %w", k.Name, choice[i], err)
		}
	}
	return nil
}

// scoreCandidate is the shared scoring path of Tune and Exhaustive:
// build the choice vector's candidate and score its evaluation directly
// via whatif.EvaluateOne — no per-candidate slice wrapping, no repeated
// error re-wrapping.
func scoreCandidate(base *core.Design, knobs []Knob, scenarios []failure.Scenario, objective Objective, choice []int) (units.Money, error) {
	d, err := applyChoice(base, knobs, choice)
	if err != nil {
		return 0, err
	}
	return objective(whatif.EvaluateOne(d, scenarios)), nil
}

// choiceKey encodes a knob-choice vector as a memo key.
func choiceKey(choice []int) string {
	var b strings.Builder
	for _, c := range choice {
		b.WriteString(strconv.Itoa(c))
		b.WriteByte(',')
	}
	return b.String()
}

// Tune runs coordinate descent from the base design on all CPUs; see
// TuneWorkers.
func Tune(base *core.Design, knobs []Knob, scenarios []failure.Scenario, objective Objective) (*Solution, error) {
	return TuneWorkers(base, knobs, scenarios, objective, 0)
}

// tuneAcc is one worker's reusable scoring machinery for TuneWorkers:
// the optional Revertible scratch design plus the allocation-lean
// evaluator with its Result buffer. Accs are pooled across sweeps so
// the scratch lives for the whole descent, not one chunk of one sweep.
type tuneAcc struct {
	scratch *core.Design
	eval    whatif.Evaluator
	res     whatif.Result
}

// TuneWorkers runs coordinate descent from the base design: each pass
// sweeps the knobs in order, evaluating every option for the current
// knob with the other knobs held at their incumbent values, and keeps
// the best. Descent stops when a full pass improves nothing.
//
// The options of the knob under sweep are scored concurrently on at most
// workers goroutines (anything < 1 means runtime.NumCPU()); already-seen
// choice vectors — the incumbent, and revisited options on later passes
// — are served from a memo. When every knob is Revertible, each scoring
// accumulator keeps one cloned scratch design that is reused across
// every sweep of the descent. The result is byte-identical for every
// worker count: ties keep the incumbent, then prefer the lowest option
// index, exactly as the serial scan did.
func TuneWorkers(base *core.Design, knobs []Knob, scenarios []failure.Scenario, objective Objective, workers int) (*Solution, error) {
	objective, err := validate(knobs, scenarios, objective)
	if err != nil {
		return nil, err
	}

	sol := &Solution{CandidateIndex: -1}
	memo := make(map[string]units.Money)
	current := make([]int, len(knobs)) // incumbent option per knob
	reuse := allRevertible(knobs)

	// The acc pool outlives the per-sweep Reduce calls: a sweep checks
	// accs out, its merge returns them, and the next sweep reuses their
	// scratch designs and Result buffers instead of re-cloning.
	var poolMu sync.Mutex
	var pool []*tuneAcc
	checkout := func() *tuneAcc {
		poolMu.Lock()
		defer poolMu.Unlock()
		if n := len(pool); n > 0 {
			a := pool[n-1]
			pool = pool[:n-1]
			return a
		}
		return &tuneAcc{}
	}
	checkin := func(a *tuneAcc) {
		poolMu.Lock()
		pool = append(pool, a)
		poolMu.Unlock()
	}

	// Incremental scoring: most Tune misses differ from the base by a
	// handful of knob values, which core.DeltaAssessor re-assesses
	// without rebuilding the whole system. The first few delta scores
	// are probe-verified against the legacy evaluator; any divergence,
	// or a change outside the delta protocol, falls back to the full
	// Build-and-assess path. Scores are bit-identical either way, so
	// Solutions (Score, Choices, Evaluations, MemoHits) do not change.
	var (
		delta        *core.DeltaAssessor
		deltaScratch *core.Design
		deltaRes     whatif.Result
		deltaProbe   tuneAcc
		deltaProbes  int
		deltaState   int // 0 = untried, 1 = active, 2 = disabled
	)

	// scoreBatch scores choice vectors in input order: memo hits are
	// served immediately, misses are evaluated on the pool and memoized.
	// The set of vectors evaluated is therefore independent of the
	// worker count, keeping Evaluations/MemoHits deterministic. Misses
	// write disjoint missScores slots, so the fold needs no locking.
	scoreBatch := func(trials [][]int) ([]units.Money, error) {
		scores := make([]units.Money, len(trials))
		misses := make([]int, 0, len(trials))
		for i, tr := range trials {
			if s, ok := memo[choiceKey(tr)]; ok {
				scores[i] = s
				sol.MemoHits++
			} else {
				misses = append(misses, i)
			}
		}
		missScores := make([]units.Money, len(misses))
		// legacy collects the positions in misses still needing the full
		// evaluator after the incremental pass.
		legacy := make([]int, 0, len(misses))
		if len(misses) > 0 && deltaState == 0 {
			deltaState = 2
			if da, err := core.NewDeltaAssessor(base, scenarios); err == nil {
				delta, deltaState = da, 1
			}
		}
		if deltaState == 1 {
			for j, mi := range misses {
				if deltaState != 1 { // probe mismatch mid-batch
					legacy = append(legacy, j)
					continue
				}
				d := deltaScratch
				if d == nil {
					fresh, err := Clone(base)
					if err != nil {
						return nil, err
					}
					d = fresh
					if reuse {
						deltaScratch = fresh
					}
				}
				if err := applyChoiceTo(d, knobs, trials[mi]); err != nil {
					return nil, err
				}
				out, briefs, ok := delta.AssessDelta(d)
				if !ok {
					legacy = append(legacy, j)
					continue
				}
				deltaRes.Design = base.Name
				deltaRes.Outlays = out
				deltaRes.Err = nil
				deltaRes.Outcomes = deltaRes.Outcomes[:0]
				for si, b := range briefs {
					deltaRes.Outcomes = append(deltaRes.Outcomes, whatif.Outcome{
						Scenario:     scenarios[si],
						RecoveryTime: b.RecoveryTime,
						DataLoss:     b.DataLoss,
						Penalties:    b.Penalties,
						Total:        b.Total,
						Lost:         b.WholeObjectLost,
					})
				}
				s := objective(deltaRes)
				if deltaProbes < tuneDeltaProbes {
					deltaProbes++
					deltaProbe.eval.EvaluateInto(d, scenarios, &deltaProbe.res)
					if want := objective(deltaProbe.res); want != s {
						deltaState = 2
						s = want
					}
				}
				missScores[j] = s
			}
		} else {
			for j := range misses {
				legacy = append(legacy, j)
			}
		}
		if len(legacy) > 0 {
			fold := func(a *tuneAcc, i int) (*tuneAcc, error) {
				j := legacy[i]
				d := a.scratch
				if d == nil {
					fresh, err := Clone(base)
					if err != nil {
						return a, err
					}
					d = fresh
					if reuse {
						a.scratch = fresh
					}
				}
				if err := applyChoiceTo(d, knobs, trials[misses[j]]); err != nil {
					return a, err
				}
				a.eval.EvaluateInto(d, scenarios, &a.res)
				missScores[j] = objective(a.res)
				return a, nil
			}
			merge := func(a, b *tuneAcc) *tuneAcc {
				checkin(b)
				return a
			}
			final, err := parallel.Reduce(workers, len(legacy), checkout, fold, merge)
			if err != nil {
				return nil, err
			}
			checkin(final)
		}
		for j, mi := range misses {
			scores[mi] = missScores[j]
			memo[choiceKey(trials[mi])] = missScores[j]
		}
		sol.Evaluations += len(misses)
		return scores, nil
	}

	first, err := scoreBatch([][]int{current})
	if err != nil {
		return nil, err
	}
	best := first[0]
	for pass := 0; pass < maxPasses; pass++ {
		sol.Passes = pass + 1
		improved := false
		for ki, k := range knobs {
			trials := make([][]int, len(k.Options))
			for oi := range k.Options {
				trial := make([]int, len(current))
				copy(trial, current)
				trial[ki] = oi
				trials[oi] = trial
			}
			scores, err := scoreBatch(trials)
			if err != nil {
				return nil, err
			}
			bestOpt := current[ki]
			for oi, s := range scores {
				if oi == current[ki] {
					continue
				}
				if s < best {
					best, bestOpt = s, oi
					improved = true
				}
			}
			current[ki] = bestOpt
		}
		if !improved {
			break
		}
	}

	if math.IsInf(float64(best), 1) {
		return nil, ErrNoFeasible
	}
	tuned, err := applyChoice(base, knobs, current)
	if err != nil {
		return nil, err
	}
	sol.Design = tuned
	sol.Score = best
	for i, k := range knobs {
		sol.Choices = append(sol.Choices, Choice{Knob: k.Name, Option: k.Options[current[i]]})
	}
	return sol, nil
}
