// Package opt is the automated-design outer loop the paper positions its
// models to serve (§1: "provide the inner-most loop of an automated
// optimization loop to choose the 'best' solution for a given set of
// business requirements"; the companion work is Keeton et al., "Designing
// for disasters", FAST 2004).
//
// The optimizer is deliberately simple: coordinate descent over named
// design knobs. Each knob rewrites one aspect of a candidate design
// (a policy window, a retention count, a technique substitution, a link
// count); the evaluator scores the candidate across the imposed failure
// scenarios; descent keeps the best value per knob and sweeps until a
// full pass yields no improvement. The analytic models evaluate a design
// in tens of microseconds, so even broad grids are interactive.
package opt

import (
	"errors"
	"fmt"
	"math"

	"stordep/internal/config"
	"stordep/internal/core"
	"stordep/internal/failure"
	"stordep/internal/units"
	"stordep/internal/whatif"
)

// Knob is one tunable aspect of a design. Apply rewrites a fresh clone of
// the design for the given option index; Options names each choice for
// reports.
type Knob struct {
	// Name labels the knob ("vault accW", "WAN links").
	Name string
	// Options are the human-readable values, one per choice.
	Options []string
	// Apply rewrites the design in place for option i. It must tolerate
	// any design produced by the other knobs.
	Apply func(d *core.Design, i int) error
}

// Objective scores one candidate's evaluation; lower is better. Designs
// that fail to build are scored +Inf automatically.
type Objective func(whatif.Result) units.Money

// WorstTotalObjective scores by the worst-scenario total cost — the
// design-for-the-hypothesized-disaster criterion used in Table 7.
func WorstTotalObjective() Objective {
	return func(r whatif.Result) units.Money { return r.WorstTotal() }
}

// ExpectedObjective scores by frequency-weighted expected annual cost.
func ExpectedObjective(freqs whatif.Frequencies) Objective {
	return func(r whatif.Result) units.Money { return whatif.ExpectedAnnualCost(r, freqs) }
}

// ConstrainedOutlayObjective scores by outlays among designs meeting the
// RTO/RPO objectives under every scenario, +Inf otherwise: "the cheapest
// conforming design".
func ConstrainedOutlayObjective(obj whatif.Objectives) Objective {
	return func(r whatif.Result) units.Money {
		if r.Err != nil || len(r.Outcomes) == 0 {
			return units.Money(math.Inf(1))
		}
		for _, o := range r.Outcomes {
			if !obj.Meets(o) {
				return units.Money(math.Inf(1))
			}
		}
		return r.Outlays
	}
}

// Choice records one knob's selected option in a solution.
type Choice struct {
	Knob   string
	Option string
}

// Solution is the optimizer's result.
type Solution struct {
	// Design is the tuned design (a deep clone; the input is untouched).
	Design *core.Design
	// Score is the objective value of the tuned design.
	Score units.Money
	// Choices records the selected option per knob, in knob order.
	Choices []Choice
	// Evaluations counts design evaluations performed.
	Evaluations int
	// Passes counts full knob sweeps until convergence.
	Passes int
}

// Optimizer configuration errors.
var (
	ErrNoKnobs     = errors.New("opt: at least one knob required")
	ErrBadKnob     = errors.New("opt: knob needs a name, options and an Apply function")
	ErrNoScenarios = errors.New("opt: at least one scenario required")
	ErrNoFeasible  = errors.New("opt: no knob combination produced a feasible design")
)

// maxPasses bounds coordinate descent; with monotone improvement it
// always converges far earlier.
const maxPasses = 16

// Clone deep-copies a design via its JSON representation, so knobs can
// mutate candidates freely. Only designs expressible in the config schema
// can be optimized (all built-in techniques are).
func Clone(d *core.Design) (*core.Design, error) {
	data, err := config.Marshal(d)
	if err != nil {
		return nil, fmt.Errorf("opt: %w", err)
	}
	out, err := config.Unmarshal(data)
	if err != nil {
		return nil, fmt.Errorf("opt: %w", err)
	}
	return out, nil
}

// Tune runs coordinate descent from the base design: each pass sweeps the
// knobs in order, evaluating every option for the current knob with the
// other knobs held at their incumbent values, and keeps the best. Descent
// stops when a full pass improves nothing.
func Tune(base *core.Design, knobs []Knob, scenarios []failure.Scenario, objective Objective) (*Solution, error) {
	if len(knobs) == 0 {
		return nil, ErrNoKnobs
	}
	for _, k := range knobs {
		if k.Name == "" || len(k.Options) == 0 || k.Apply == nil {
			return nil, fmt.Errorf("%w: %q", ErrBadKnob, k.Name)
		}
	}
	if len(scenarios) == 0 {
		return nil, ErrNoScenarios
	}
	if objective == nil {
		objective = WorstTotalObjective()
	}

	sol := &Solution{}
	current := make([]int, len(knobs)) // incumbent option per knob

	build := func(choice []int) (*core.Design, error) {
		d, err := Clone(base)
		if err != nil {
			return nil, err
		}
		for i, k := range knobs {
			if err := k.Apply(d, choice[i]); err != nil {
				return nil, fmt.Errorf("opt: knob %q option %d: %w", k.Name, choice[i], err)
			}
		}
		return d, nil
	}
	score := func(choice []int) (units.Money, error) {
		d, err := build(choice)
		if err != nil {
			return 0, err
		}
		results, err := whatif.Evaluate([]*core.Design{d}, scenarios)
		if err != nil {
			return 0, err
		}
		sol.Evaluations++
		return objective(results[0]), nil
	}

	best, err := score(current)
	if err != nil {
		return nil, err
	}
	for pass := 0; pass < maxPasses; pass++ {
		sol.Passes = pass + 1
		improved := false
		for ki, k := range knobs {
			bestOpt := current[ki]
			for oi := range k.Options {
				if oi == current[ki] {
					continue
				}
				trial := make([]int, len(current))
				copy(trial, current)
				trial[ki] = oi
				s, err := score(trial)
				if err != nil {
					return nil, err
				}
				if s < best {
					best, bestOpt = s, oi
					improved = true
				}
			}
			current[ki] = bestOpt
		}
		if !improved {
			break
		}
	}

	if math.IsInf(float64(best), 1) {
		return nil, ErrNoFeasible
	}
	tuned, err := build(current)
	if err != nil {
		return nil, err
	}
	sol.Design = tuned
	sol.Score = best
	for i, k := range knobs {
		sol.Choices = append(sol.Choices, Choice{Knob: k.Name, Option: k.Options[current[i]]})
	}
	return sol, nil
}
