package opt

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"stordep/internal/casestudy"
	"stordep/internal/core"
	"stordep/internal/failure"
	"stordep/internal/hierarchy"
	"stordep/internal/units"
)

// sliceExhaustive is the seed implementation kept as a test oracle: it
// materializes every combination, scores them one by one, and takes the
// first strict minimum in enumeration order. The streaming search must
// be byte-identical to it on every input.
func sliceExhaustive(base *core.Design, knobs []Knob, scs []failure.Scenario, objective Objective) (*Solution, error) {
	objective, err := validate(knobs, scs, objective)
	if err != nil {
		return nil, err
	}
	space := 1
	for _, k := range knobs {
		space *= len(k.Options)
	}
	combos := make([][]int, space)
	cur := make([]int, len(knobs))
	for i := range combos {
		combos[i] = append([]int(nil), cur...)
		for d := len(knobs) - 1; d >= 0; d-- {
			cur[d]++
			if cur[d] < len(knobs[d].Options) {
				break
			}
			cur[d] = 0
		}
	}
	sol := &Solution{Passes: 1, Evaluations: space, Score: units.Money(math.Inf(1)), CandidateIndex: -1}
	for i, c := range combos {
		s, err := scoreCandidate(base, knobs, scs, objective, c)
		if err != nil {
			return nil, err
		}
		if s < sol.Score {
			sol.Score = s
			sol.CandidateIndex = i
		}
	}
	if sol.CandidateIndex < 0 || math.IsInf(float64(sol.Score), 1) {
		return nil, ErrNoFeasible
	}
	tuned, err := applyChoice(base, knobs, combos[sol.CandidateIndex])
	if err != nil {
		return nil, err
	}
	sol.Design = tuned
	for i, k := range knobs {
		sol.Choices = append(sol.Choices, Choice{Knob: k.Name, Option: k.Options[combos[sol.CandidateIndex][i]]})
	}
	return sol, nil
}

// randomKnobs draws a random non-empty knob set from a pool that mixes
// revertible knobs (policy, retention, link counts, a no-op tie knob)
// with the non-revertible PiT swap, so trials exercise both the
// scratch-reuse path and the clone-per-candidate fallback. Pool order is
// preserved so knobs that read level state always run after the knobs
// that set it.
func randomKnobs(rng *rand.Rand) []Knob {
	weeklyVault := casestudy.VaultPolicy()
	weeklyVault.Primary.AccW = units.Week
	weeklyVault.RetCnt = 156

	subset := func(opts []int) []int {
		n := 1 + rng.Intn(len(opts))
		out := append([]int(nil), opts...)
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out[:n]
	}
	pool := []Knob{
		PolicyKnob("vaulting", []string{"4-weekly", "weekly"},
			[]hierarchy.Policy{casestudy.VaultPolicy(), weeklyVault}),
		RetCntKnob("vaulting", subset([]int{2, 4, 8, 13})),
		RetCntKnob("backup", subset([]int{7, 14, 28})),
		// Generic slot-count knob aimed at the tape library's drive count
		// (Baseline has no WAN links); low drive counts can render a
		// candidate unbuildable, exercising the +Inf scoring path.
		LinkCountKnob("tape-library", subset([]int{4, 8, 12, 16})),
		{
			Name:    "tie",
			Options: []string{"first", "second", "third"},
			Apply:   func(*core.Design, int) error { return nil },
			// Deliberately revertible: a no-op is trivially so, and it
			// forces equal-score runs onto the tie-break rule.
			Revertible: true,
		},
		PiTKnob("split-mirror"),
	}
	var knobs []Knob
	for _, k := range pool {
		if rng.Intn(2) == 0 {
			knobs = append(knobs, k)
		}
	}
	if len(knobs) == 0 {
		knobs = []Knob{pool[3]}
	}
	return knobs
}

// TestExhaustiveStreamingMatchesSliceOracle: on randomized knob spaces
// the streaming search returns byte-identical Solutions to the
// slice-based oracle, at worker counts 1, 4 and 8.
func TestExhaustiveStreamingMatchesSliceOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := casestudy.Baseline()
	for trial := 0; trial < 12; trial++ {
		knobs := randomKnobs(rng)
		ref, refErr := sliceExhaustive(base, knobs, scenarios(), nil)
		for _, workers := range []int{1, 4, 8} {
			label := fmt.Sprintf("trial %d workers %d (%d knobs)", trial, workers, len(knobs))
			sol, err := ExhaustiveOpts(base, knobs, scenarios(), nil, ExhaustiveOptions{Workers: workers})
			if refErr != nil {
				if !errors.Is(err, refErr) && (err == nil || err.Error() != refErr.Error()) {
					t.Errorf("%s: err = %v, oracle err = %v", label, err, refErr)
				}
				continue
			}
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			solutionsIdentical(t, label, ref, sol)
			if sol.CandidateIndex != ref.CandidateIndex {
				t.Errorf("%s: candidate index %d, oracle %d", label, sol.CandidateIndex, ref.CandidateIndex)
			}
		}
	}
}

// TestExhaustiveShardSplitsMergeIdentically: for every shard count m up
// to beyond the space size, running the m shards independently and
// merging them reproduces the unsharded Solution exactly — score,
// choices, global candidate index, and total evaluations.
func TestExhaustiveShardSplitsMergeIdentically(t *testing.T) {
	base := casestudy.Baseline()
	knobs := []Knob{
		RetCntKnob("vaulting", []int{2, 4, 8}),
		LinkCountKnob("tape-library", []int{12, 16}),
		{
			Name:       "tie",
			Options:    []string{"first", "second"},
			Apply:      func(*core.Design, int) error { return nil },
			Revertible: true,
		},
	}
	const space = 3 * 2 * 2
	whole, err := ExhaustiveOpts(base, knobs, scenarios(), nil, ExhaustiveOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for m := 1; m <= space+2; m++ {
		sols := make([]*Solution, m)
		for k := 0; k < m; k++ {
			sol, err := ExhaustiveOpts(base, knobs, scenarios(), nil, ExhaustiveOptions{
				Workers: 2,
				Shard:   Shard{Index: k, Count: m},
			})
			switch {
			case err == nil:
				sols[k] = sol
			case errors.Is(err, ErrNoFeasible) && m > space:
				// Empty shard: more shards than candidates.
			default:
				t.Fatalf("shard %d/%d: %v", k, m, err)
			}
		}
		merged, err := MergeShards(sols)
		if err != nil {
			t.Fatalf("merge %d shards: %v", m, err)
		}
		label := fmt.Sprintf("%d shards", m)
		solutionsIdentical(t, label, whole, merged)
		if merged.CandidateIndex != whole.CandidateIndex {
			t.Errorf("%s: candidate index %d, want %d", label, merged.CandidateIndex, whole.CandidateIndex)
		}
	}
	if _, err := MergeShards([]*Solution{nil, nil}); !errors.Is(err, ErrNoFeasible) {
		t.Errorf("all-nil merge: %v, want ErrNoFeasible", err)
	}
	// A Solution outside exhaustive enumeration (Tune's CandidateIndex -1)
	// has no global index and must be rejected, not silently win ties.
	if _, err := MergeShards([]*Solution{whole, {CandidateIndex: -1}}); !errors.Is(err, ErrBadShard) {
		t.Errorf("merge with CandidateIndex -1: %v, want ErrBadShard", err)
	}
}

// TestShardBoundsPartition: shard bounds tile [0, space) exactly — no
// gaps, no overlap, balanced to within one candidate — including when
// shards outnumber candidates.
func TestShardBoundsPartition(t *testing.T) {
	for _, space := range []int{0, 1, 5, 12, 4097} {
		for _, m := range []int{1, 2, 3, 7, 16} {
			next := 0
			for k := 0; k < m; k++ {
				lo, hi := (Shard{Index: k, Count: m}).bounds(space)
				if lo != next || hi < lo {
					t.Fatalf("space %d: shard %d/%d = [%d,%d), want lo %d", space, k, m, lo, hi, next)
				}
				if span := hi - lo; span > space/m+1 {
					t.Errorf("space %d: shard %d/%d has %d candidates, want balanced", space, k, m, span)
				}
				next = hi
			}
			if next != space {
				t.Errorf("space %d: %d shards cover [0,%d), want [0,%d)", space, m, next, space)
			}
		}
	}
}

// TestExhaustiveAllocBudget: the streaming search's per-candidate cost on
// an all-revertible knob space stays under a fixed allocation budget —
// the regression guard for the scratch-design reuse and the
// allocation-lean assess path. The seed implementation spent ~126
// allocations per candidate on this shape of search.
func TestExhaustiveAllocBudget(t *testing.T) {
	base := casestudy.Baseline()
	knobs := []Knob{
		RetCntKnob("vaulting", []int{2, 4, 8, 13}),
		LinkCountKnob("tape-library", []int{8, 12, 16}),
	}
	const candidates = 4 * 3
	scs := scenarios()
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := ExhaustiveOpts(base, knobs, scs, nil, ExhaustiveOptions{Workers: 1}); err != nil {
			t.Fatal(err)
		}
	})
	perCandidate := allocs / candidates
	if perCandidate > 60 {
		t.Errorf("exhaustive search allocates %.1f objects per candidate, budget 60", perCandidate)
	}
}

// TestExhaustiveScratchReuseIsolation: an all-revertible search reusing
// one scratch design per worker must leave the base design untouched and
// return a Design that is not aliased to the scratch (mutating it must
// not affect a re-run).
func TestExhaustiveScratchReuseIsolation(t *testing.T) {
	base := casestudy.Baseline()
	knobs := []Knob{RetCntKnob("vaulting", []int{2, 4, 8})}
	first, err := ExhaustiveOpts(base, knobs, scenarios(), nil, ExhaustiveOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	first.Design.Levels = first.Design.Levels[:1] // vandalize the returned design
	second, err := ExhaustiveOpts(base, knobs, scenarios(), nil, ExhaustiveOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Design.Levels) != len(base.Levels) {
		t.Error("returned design aliases internal state")
	}
	if first.Score != second.Score || first.CandidateIndex != second.CandidateIndex {
		t.Error("re-run diverged after mutating the previous result")
	}
}

// TestMergeShardsDedupesDuplicates: speculative re-dispatch can deliver
// the same shard's Solution twice (two workers raced on a straggler and
// both answered). Identical CandidateIndexes can only be duplicate
// reports of one shard — shards cover disjoint slices — so the merge
// counts each shard once: Evaluations must not double, and the winner is
// unchanged however many copies arrive.
func TestMergeShardsDedupesDuplicates(t *testing.T) {
	base := casestudy.Baseline()
	knobs := []Knob{
		RetCntKnob("vaulting", []int{2, 4, 8}),
		LinkCountKnob("tape-library", []int{12, 16}),
	}
	whole, err := ExhaustiveOpts(base, knobs, scenarios(), nil, ExhaustiveOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	const m = 3
	shards := make([]*Solution, 0, 2*m)
	for k := 0; k < m; k++ {
		sol, err := ExhaustiveOpts(base, knobs, scenarios(), nil, ExhaustiveOptions{
			Shard: Shard{Index: k, Count: m},
		})
		if err != nil {
			t.Fatalf("shard %d/%d: %v", k, m, err)
		}
		shards = append(shards, sol)
		if k == 1 {
			dup := *sol // duplicate speculative report of shard 1
			shards = append(shards, &dup)
		}
	}
	shards = append(shards, shards[0]) // and a late duplicate of shard 0
	merged, err := MergeShards(shards)
	if err != nil {
		t.Fatal(err)
	}
	solutionsIdentical(t, "deduped merge", whole, merged)
	if merged.Evaluations != whole.Evaluations {
		t.Errorf("Evaluations = %d, want %d (duplicates must not be double-counted)",
			merged.Evaluations, whole.Evaluations)
	}
	if merged.CandidateIndex != whole.CandidateIndex {
		t.Errorf("CandidateIndex = %d, want %d", merged.CandidateIndex, whole.CandidateIndex)
	}
}

// TestExhaustiveProgressCounter: the optional Progress counter ends at
// exactly the number of evaluated candidates — it is what a worker
// streams in heartbeats, so it must track Evaluations.
func TestExhaustiveProgressCounter(t *testing.T) {
	base := casestudy.Baseline()
	knobs := []Knob{
		RetCntKnob("vaulting", []int{2, 4, 8}),
		LinkCountKnob("tape-library", []int{12, 16}),
	}
	var progress atomic.Int64
	sol, err := ExhaustiveOpts(base, knobs, scenarios(), nil, ExhaustiveOptions{
		Workers:  4,
		Progress: &progress,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := progress.Load(); got != int64(sol.Evaluations) {
		t.Errorf("progress = %d, want %d", got, sol.Evaluations)
	}
}
