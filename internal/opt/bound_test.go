package opt

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"stordep/internal/casestudy"
	"stordep/internal/config"
	"stordep/internal/hierarchy"
	"stordep/internal/units"
	"stordep/internal/whatif"
)

// prunedIdentical asserts a pruned Solution equals the exhaustive one on
// everything the determinism contract covers: score, choices, the global
// candidate index, and the tuned design's config encoding. The assessed
// vs pruned split is schedule-dependent (workers race to tighten the
// incumbent), so the count fields are checked separately by invariant
// (assessed + pruned == slice size), never for equality.
func prunedIdentical(t *testing.T, label string, want, got *Solution) {
	t.Helper()
	if want.Score != got.Score {
		t.Errorf("%s: scores differ: %v vs %v", label, want.Score, got.Score)
	}
	if want.CandidateIndex != got.CandidateIndex {
		t.Errorf("%s: candidate index %d, want %d", label, got.CandidateIndex, want.CandidateIndex)
	}
	if !reflect.DeepEqual(want.Choices, got.Choices) {
		t.Errorf("%s: choices differ: %v vs %v", label, want.Choices, got.Choices)
	}
	aj, errA := config.Marshal(want.Design)
	bj, errB := config.Marshal(got.Design)
	if errA != nil || errB != nil {
		t.Fatalf("%s: marshal: %v / %v", label, errA, errB)
	}
	if !bytes.Equal(aj, bj) {
		t.Errorf("%s: tuned designs encode differently", label)
	}
}

// TestPrunedMatchesExhaustiveProperty: across random knob spaces, every
// objective that has a floor, worker counts {1,2,8}, and shard splits,
// the bound-guided search returns the exhaustive argmin with the
// exhaustive tie-break, and retires every candidate exactly once
// (assessed + pruned == slice size).
func TestPrunedMatchesExhaustiveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	base := casestudy.Baseline()
	objectives := []struct {
		name  string
		obj   Objective
		floor ObjectiveFloor
	}{
		{"worst-total", WorstTotalObjective(), WorstTotalFloor()},
		{"expected", ExpectedObjective(whatif.TypicalFrequencies()), ExpectedFloor(whatif.TypicalFrequencies())},
		{"constrained", ConstrainedOutlayObjective(whatif.Objectives{RTO: 48 * time.Hour, RPO: 28 * 24 * time.Hour}),
			ConstrainedOutlayFloor(whatif.Objectives{RTO: 48 * time.Hour, RPO: 28 * 24 * time.Hour})},
	}
	for trial := 0; trial < 8; trial++ {
		knobs := randomKnobs(rng)
		space := 1
		for _, k := range knobs {
			space *= len(k.Options)
		}
		o := objectives[trial%len(objectives)]
		ref, refErr := sliceExhaustive(base, knobs, scenarios(), o.obj)
		for _, workers := range []int{1, 2, 8} {
			label := fmt.Sprintf("trial %d %s workers %d (%d candidates)", trial, o.name, workers, space)
			var stats SearchStats
			sol, err := ExhaustiveOpts(base, knobs, scenarios(), o.obj, ExhaustiveOptions{
				Workers: workers,
				Prune:   true,
				Floor:   o.floor,
				Stats:   &stats,
			})
			if refErr != nil {
				if !errors.Is(err, refErr) && (err == nil || err.Error() != refErr.Error()) {
					t.Errorf("%s: err = %v, oracle err = %v", label, err, refErr)
				}
				continue
			}
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			prunedIdentical(t, label, ref, sol)
			if stats.Assessed+stats.Pruned != space {
				t.Errorf("%s: assessed %d + pruned %d != space %d", label, stats.Assessed, stats.Pruned, space)
			}
			if sol.Evaluations != stats.Assessed || sol.CandidatesPruned != stats.Pruned {
				t.Errorf("%s: Solution counts (%d, %d) disagree with Stats (%d, %d)",
					label, sol.Evaluations, sol.CandidatesPruned, stats.Assessed, stats.Pruned)
			}
		}
	}
}

// TestPrunedShardSplitsMergeIdentically: sharded pruned searches merge to
// the unsharded exhaustive answer, and MergeShards sums the pruned /
// bounds counters across shards.
func TestPrunedShardSplitsMergeIdentically(t *testing.T) {
	base := casestudy.Baseline()
	knobs := []Knob{
		PolicyKnob("vaulting", []string{"4-weekly", "weekly"}, vaultPolicyPair()),
		RetCntKnob("vaulting", []int{2, 4, 8, 13}),
		RetCntKnob("backup", []int{7, 14, 28}),
		LinkCountKnob("tape-library", []int{8, 12, 16}),
	}
	const space = 2 * 4 * 3 * 3
	whole, err := ExhaustiveOpts(base, knobs, scenarios(), nil, ExhaustiveOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{1, 2, 3, 5} {
		sols := make([]*Solution, m)
		for k := 0; k < m; k++ {
			sol, err := ExhaustiveOpts(base, knobs, scenarios(), nil, ExhaustiveOptions{
				Workers: 2,
				Shard:   Shard{Index: k, Count: m},
				Prune:   true,
				Floor:   WorstTotalFloor(),
			})
			if err != nil {
				t.Fatalf("shard %d/%d: %v", k, m, err)
			}
			sols[k] = sol
		}
		merged, err := MergeShards(sols)
		if err != nil {
			t.Fatalf("merge %d shards: %v", m, err)
		}
		label := fmt.Sprintf("%d pruned shards", m)
		prunedIdentical(t, label, whole, merged)
		if merged.Evaluations+merged.CandidatesPruned != space {
			t.Errorf("%s: assessed %d + pruned %d != space %d",
				label, merged.Evaluations, merged.CandidatesPruned, space)
		}
		var pruned, bounds int
		for _, s := range sols {
			pruned += s.CandidatesPruned
			bounds += s.BoundsComputed
		}
		if merged.CandidatesPruned != pruned || merged.BoundsComputed != bounds {
			t.Errorf("%s: merged counters (%d, %d), want sums (%d, %d)",
				label, merged.CandidatesPruned, merged.BoundsComputed, pruned, bounds)
		}
	}
}

// TestPrunedIncumbentSeed: handing the search an already-achieved
// incumbent (a tight one: the known optimum) must not change the answer —
// only make pruning at least as effective as the unseeded run.
func TestPrunedIncumbentSeed(t *testing.T) {
	base := casestudy.Baseline()
	knobs := []Knob{
		PolicyKnob("vaulting", []string{"4-weekly", "weekly"}, vaultPolicyPair()),
		RetCntKnob("vaulting", []int{2, 4, 8, 13}),
		RetCntKnob("backup", []int{7, 14, 28}),
		LinkCountKnob("tape-library", []int{8, 12, 16}),
	}
	ref, err := ExhaustiveOpts(base, knobs, scenarios(), nil, ExhaustiveOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	unseeded, err := ExhaustiveOpts(base, knobs, scenarios(), nil, ExhaustiveOptions{
		Workers: 1, Prune: true, Floor: WorstTotalFloor(),
	})
	if err != nil {
		t.Fatal(err)
	}
	prunedIdentical(t, "unseeded", ref, unseeded)
	seeded, err := ExhaustiveOpts(base, knobs, scenarios(), nil, ExhaustiveOptions{
		Workers: 1, Prune: true, Floor: WorstTotalFloor(), Incumbent: ref.Score,
	})
	if err != nil {
		t.Fatal(err)
	}
	prunedIdentical(t, "seeded", ref, seeded)
	if seeded.CandidatesPruned < unseeded.CandidatesPruned {
		t.Errorf("optimal incumbent pruned %d, unseeded pruned %d — seeding must not hurt",
			seeded.CandidatesPruned, unseeded.CandidatesPruned)
	}
}

// TestPrunedActuallyPrunes: on a space with an expensive half (weekly
// vaulting with deep retention dominates the 4-weekly optimum on worst
// total), pruning must retire a nonzero share of candidates without
// assessment. This is the in-tree sibling of the bench prune-ratio gate.
func TestPrunedActuallyPrunes(t *testing.T) {
	base := casestudy.Baseline()
	knobs := []Knob{
		PolicyKnob("vaulting", []string{"4-weekly", "weekly"}, vaultPolicyPair()),
		RetCntKnob("vaulting", []int{2, 4, 8, 13, 26, 52, 104, 156}),
		RetCntKnob("backup", []int{7, 14, 28}),
		LinkCountKnob("tape-library", []int{4, 8, 12, 16}),
	}
	const space = 2 * 8 * 3 * 4
	ref, err := ExhaustiveOpts(base, knobs, scenarios(), nil, ExhaustiveOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var stats SearchStats
	sol, err := ExhaustiveOpts(base, knobs, scenarios(), nil, ExhaustiveOptions{
		Workers: 1,
		Prune:   true,
		Floor:   WorstTotalFloor(),
		Stats:   &stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	prunedIdentical(t, "prune-ratio space", ref, sol)
	if stats.Pruned == 0 {
		t.Fatalf("pruned 0 of %d candidates; bound is not biting (bounds computed: %d)",
			space, stats.BoundsComputed)
	}
	if stats.Assessed >= space {
		t.Errorf("assessed %d of %d candidates — pruning saved nothing", stats.Assessed, space)
	}
	t.Logf("pruned %d / %d (%.0f%%), %d bounds", stats.Pruned, space,
		100*float64(stats.Pruned)/float64(space), stats.BoundsComputed)
}

// TestPruneWithoutFloorIsExhaustive: Prune without a Floor must not
// prune (there is nothing admissible to compare against) and must not
// change the answer.
func TestPruneWithoutFloorIsExhaustive(t *testing.T) {
	base := casestudy.Baseline()
	knobs := []Knob{
		RetCntKnob("vaulting", []int{2, 4, 8}),
		LinkCountKnob("tape-library", []int{12, 16}),
	}
	ref, err := ExhaustiveOpts(base, knobs, scenarios(), nil, ExhaustiveOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var stats SearchStats
	sol, err := ExhaustiveOpts(base, knobs, scenarios(), nil, ExhaustiveOptions{
		Workers: 1, Prune: true, Stats: &stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	solutionsIdentical(t, "prune sans floor", ref, sol)
	if stats.Pruned != 0 || sol.CandidatesPruned != 0 {
		t.Errorf("pruned %d candidates with no floor", stats.Pruned)
	}
}

// TestExpectedFloorRejectsBadFrequencies: a negative frequency makes the
// expected-cost floor inadmissible; the pruner must disable itself (never
// prune) rather than risk a wrong argmin.
func TestExpectedFloorRejectsBadFrequencies(t *testing.T) {
	base := casestudy.Baseline()
	knobs := []Knob{
		RetCntKnob("vaulting", []int{2, 4, 8, 13}),
		LinkCountKnob("tape-library", []int{8, 12, 16}),
	}
	freqs := whatif.TypicalFrequencies()
	for scope := range freqs {
		freqs[scope] = -freqs[scope]
	}
	ref, err := ExhaustiveOpts(base, knobs, scenarios(), ExpectedObjective(whatif.TypicalFrequencies()),
		ExhaustiveOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var stats SearchStats
	sol, err := ExhaustiveOpts(base, knobs, scenarios(), ExpectedObjective(whatif.TypicalFrequencies()),
		ExhaustiveOptions{Workers: 1, Prune: true, Floor: ExpectedFloor(freqs), Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	solutionsIdentical(t, "bad frequencies", ref, sol)
	if stats.Pruned != 0 {
		t.Errorf("pruned %d candidates under an inadmissible floor", stats.Pruned)
	}
}

// TestSubtreeFloorConstructors: the floor constructors agree with their
// objective counterparts on fully-determined floors (a floor whose
// components describe a single concrete outcome must equal the objective
// of that outcome), pinning the floor semantics independently of the
// search.
func TestSubtreeFloorConstructors(t *testing.T) {
	fl := &SubtreeFloor{
		Outlays:   units.Money(1000),
		Scenarios: scenarios(),
		Penalties: []units.Money{50, 200},
		Lost:      []bool{false, false},
	}
	if got := WorstTotalFloor()(fl); got != 1200 {
		t.Errorf("WorstTotalFloor = %v, want 1200", got)
	}
	fl.Lost[1] = true
	exp := ExpectedFloor(whatif.Frequencies{})
	// No frequencies: every scenario weight is 0 → expected penalties 0.
	if got := exp(fl); got != 1000 {
		t.Errorf("ExpectedFloor with empty frequencies = %v, want 1000", got)
	}
}

// vaultPolicyPair returns the 4-weekly baseline vaulting policy and a
// weekly deep-retention variant — the policy axis the prune tests use to
// build spaces with an expensive region.
func vaultPolicyPair() []hierarchy.Policy {
	weeklyVault := casestudy.VaultPolicy()
	weeklyVault.Primary.AccW = units.Week
	weeklyVault.RetCnt = 156
	return []hierarchy.Policy{casestudy.VaultPolicy(), weeklyVault}
}
