package opt

import (
	"fmt"
	"math"
	"sort"
	"time"

	"stordep/internal/core"
	"stordep/internal/failure"
	"stordep/internal/parallel"
	"stordep/internal/units"
	"stordep/internal/whatif"
)

// This file implements the Pareto frontier mode of the knob-space
// search: instead of folding candidates into a scalar argmin, Frontier
// streams the whole space and keeps the full RT/DL/cost non-dominated
// surface. Memory stays O(frontier + workers): each worker maintains a
// streaming non-dominated set over its slice of the enumeration, and
// the sets merge exactly like the argmin accumulators do. Pruning
// against a frontier generalizes pruning against a scalar incumbent —
// a batch is skipped when an already achieved point dominates the
// batch's component floor (bound.go) with strictly lower outlays,
// which proves every candidate in the batch strictly dominated.

// FrontierPoint is one non-dominated candidate on the RT/DL/cost
// surface. RecoveryTime and DataLoss are the candidate's worst case
// across the searched scenarios; Outlays are its scenario-independent
// annual outlays.
type FrontierPoint struct {
	// CandidateIndex is the point's global index in the mixed-radix
	// enumeration — the same index Exhaustive reports, so a frontier
	// point can be re-run or cross-referenced against a Solution.
	CandidateIndex int
	Choices        []Choice
	RecoveryTime   time.Duration
	DataLoss       time.Duration
	Outlays        units.Money
}

// FrontierResult is one Frontier sweep's outcome: the canonical
// non-dominated surface plus the candidate accounting. Every candidate
// of the searched slice is either assessed or pruned, so Evaluations
// plus CandidatesPruned equals the slice size; the split between them
// (and BoundsComputed) depends on scheduling, Points never does.
type FrontierResult struct {
	// Points is sorted by ascending Outlays, then RecoveryTime, then
	// DataLoss, then CandidateIndex. Distinct points never share all
	// three coordinates: exact ties collapse to the lowest candidate
	// index.
	Points           []FrontierPoint
	Evaluations      int
	CandidatesPruned int
	BoundsComputed   int
}

// FrontierOpts configures Frontier. The zero value searches the whole
// space on all CPUs without pruning.
type FrontierOpts struct {
	// Workers caps the evaluation goroutines; anything < 1 means
	// runtime.NumCPU().
	Workers int
	// Budget, when > 0, bounds the total space size (not the shard's
	// slice), as in ExhaustiveOptions.Budget.
	Budget int
	// Shard restricts the sweep to one contiguous slice of the space;
	// disjoint shards' results combine with MergeFrontiers into exactly
	// the unsharded surface.
	Shard Shard
	// BatchSize is the per-batch candidate count on the compiled fast
	// path, as in ExhaustiveOptions.BatchSize. The surface is
	// byte-identical for every batch size.
	BatchSize int
	// Prune enables dominance pruning on the compiled batched path: a
	// batch whose component floor (see SubtreeFloor) is strictly
	// dominated by an already achieved point — or provably loses the
	// whole object under some scenario — is retired wholesale without
	// assessment. Pruning never changes Points, only the
	// Evaluations/CandidatesPruned split. Like ExhaustiveOptions.Prune
	// it forces a compilation attempt and silently runs unpruned when
	// the space cannot be compiled or bounded.
	Prune bool
}

// fpoint is the internal, choices-free frontier coordinate set.
type fpoint struct {
	idx int
	rt  time.Duration
	dl  time.Duration
	out units.Money
}

// frontierSet is a streaming non-dominated set. add keeps the
// invariant that no member dominates another and that exact coordinate
// ties hold only the lowest candidate index; because dominance (with
// the index tie-break) is transitive, the surviving set is exactly
//
//	{q : no inserted p has p ≤ q on all three axes
//	     with a strict inequality somewhere or a lower index}
//
// independent of insertion order — which is what makes worker counts,
// batch sizes and shard splits invisible in the result.
type frontierSet struct {
	pts []fpoint
}

// add folds one achieved point into the set.
func (f *frontierSet) add(q fpoint) {
	for i := range f.pts {
		p := &f.pts[i]
		if p.out <= q.out && p.rt <= q.rt && p.dl <= q.dl {
			if p.out < q.out || p.rt < q.rt || p.dl < q.dl || p.idx <= q.idx {
				return // q dominated, or a duplicate of an earlier index
			}
		}
	}
	keep := f.pts[:0]
	for _, p := range f.pts {
		if q.out <= p.out && q.rt <= p.rt && q.dl <= p.dl {
			if q.out < p.out || q.rt < p.rt || q.dl < p.dl || q.idx < p.idx {
				continue // p now dominated by q (or its lower-index duplicate)
			}
		}
		keep = append(keep, p)
	}
	f.pts = append(keep, q)
}

// addResult folds one evaluated candidate onto the surface: candidates
// that fail to build or lose the whole object under any scenario are
// excluded, everything else contributes its worst-case recovery time
// and data loss plus its outlays.
func (f *frontierSet) addResult(idx int, res *whatif.Result) {
	if res.Err != nil || len(res.Outcomes) == 0 {
		return
	}
	var rt, dl time.Duration
	for i := range res.Outcomes {
		o := &res.Outcomes[i]
		if o.Lost {
			return
		}
		if o.RecoveryTime > rt {
			rt = o.RecoveryTime
		}
		if o.DataLoss > dl {
			dl = o.DataLoss
		}
	}
	f.add(fpoint{idx: idx, rt: rt, dl: dl, out: res.Outlays})
}

// merge folds set b into f.
func (f *frontierSet) merge(b *frontierSet) {
	for _, p := range b.pts {
		f.add(p)
	}
}

// pruneAgainst reports whether the whole batch behind floor fl can be
// retired unassessed: either some scenario floor proves certain
// whole-object loss (no such candidate is ever on the surface), or an
// achieved point dominates the floor with strictly lower outlays —
// then it strictly dominates every candidate in the batch (each is at
// or above the floor on every axis), so none can reach the surface,
// nor tie an existing point's coordinates for the index tie-break. The
// boundSlack guard mirrors the scalar prune test, absorbing float
// non-associativity between the floor's outlay fold order and fill's.
func (f *frontierSet) pruneAgainst(fl *SubtreeFloor) bool {
	var floorRT, floorDL time.Duration
	for si := range fl.Scenarios {
		if fl.Lost[si] {
			return true
		}
		if fl.RecoveryTime[si] > floorRT {
			floorRT = fl.RecoveryTime[si]
		}
		if fl.DataLoss[si] > floorDL {
			floorDL = fl.DataLoss[si]
		}
	}
	cut := float64(fl.Outlays) * (1 - boundSlack)
	for _, p := range f.pts {
		if p.rt <= floorRT && p.dl <= floorDL && float64(p.out) < cut {
			return true
		}
	}
	return false
}

// noFloor is the ObjectiveFloor handed to the pruner when Frontier
// reuses its component-floor machinery: the scalar bound is never used
// for frontier pruning (dominance against ps.fl is), so it pins the
// objective floor at -Inf, which can never scalar-prune anything.
func noFloor(*SubtreeFloor) units.Money { return units.Money(math.Inf(-1)) }

// frontAcc is one worker's frontier accumulator: the streaming set plus
// the reusable enumeration machinery (mirroring batchAcc/exhAcc).
type frontAcc struct {
	set    frontierSet
	evals  int
	pruned int
	bounds int

	choice  []int
	scratch *core.Design
	eval    whatif.Evaluator
	res     whatif.Result

	cols     *core.Cols
	fs       *fillScratch
	slow     []bool
	bscratch core.BatchScratch
	ps       *pruneScratch
}

// Frontier sweeps every knob combination (or one Shard of them) and
// returns the full RT/DL/cost non-dominated surface: the candidates
// not dominated — on worst-case recovery time, worst-case data loss
// and annual outlays together, no axis worse and at least one strictly
// better — by any other candidate of the space. Candidates that fail
// to build or lose the whole object under any scenario are excluded.
// Exact coordinate ties collapse to the lowest global candidate index,
// and Points comes back canonically sorted, so the surface is
// byte-identical for every worker count, batch size and shard split.
//
// Enumeration reuses the exhaustive machinery: the compiled batched
// fast path when the space compiles (with optional dominance pruning,
// see FrontierOpts.Prune), the legacy clone+build fold otherwise. No
// Objective is involved — the frontier is the set a decision-maker
// picks from before committing to one.
func Frontier(base *core.Design, knobs []Knob, scenarios []failure.Scenario, opts FrontierOpts) (*FrontierResult, error) {
	if _, err := validate(knobs, scenarios, nil); err != nil {
		return nil, err
	}
	if err := opts.Shard.Validate(); err != nil {
		return nil, err
	}
	space, err := spaceSize(knobs)
	if err != nil {
		return nil, err
	}
	if opts.Budget > 0 && space > opts.Budget {
		return nil, fmt.Errorf("%w: %d combinations > budget %d; raise the budget or shard the space",
			ErrSpaceTooLarge, space, opts.Budget)
	}
	lo, hi := opts.Shard.bounds(space)
	reuse := allRevertible(knobs)

	exOpts := ExhaustiveOptions{
		Workers:   opts.Workers,
		BatchSize: opts.BatchSize,
		Prune:     opts.Prune,
	}
	if opts.Prune {
		// Forces the compilation attempt in maybeCompile, exactly like a
		// pruned exhaustive search.
		exOpts.Floor = noFloor
	}
	var set frontierSet
	var tally searchTally
	if cs := maybeCompile(base, knobs, scenarios, hi-lo, exOpts); cs != nil {
		batch := opts.BatchSize
		if batch <= 0 {
			batch = defaultBatchSize
		}
		if batch > hi-lo {
			batch = hi - lo
		}
		var pr *pruner
		if opts.Prune {
			pr = newPruner(cs, noFloor, 0)
		}
		set, tally, err = cs.frontier(lo, hi, batch, opts.Workers, reuse, pr)
	} else {
		set, tally.evals, err = frontierFold(base, knobs, scenarios, opts.Workers, lo, hi, reuse)
	}
	if err != nil {
		return nil, err
	}
	return assembleFrontier(&set, knobs, tally), nil
}

// frontier is the compiled batched frontier sweep — cs.search with the
// argmin fold replaced by streaming non-dominated-set accumulation.
// Pruning needs no seed pass and no shared atomic: each worker prunes
// against its own achieved points, so batches are bounded only once a
// local point exists that could dominate them.
func (cs *compiledSpace) frontier(lo, hi, batch, workers int, reuse bool, pr *pruner) (frontierSet, searchTally, error) {
	n := hi - lo
	nb := (n + batch - 1) / batch
	ns := len(cs.scs)

	acc := func() *frontAcc {
		a := &frontAcc{
			choice: make([]int, len(cs.knobs)),
			cols:   cs.kern.NewCols(batch),
			fs:     newFillScratch(cs),
			slow:   make([]bool, batch),
		}
		if pr != nil {
			a.ps = pr.newScratch()
		}
		return a
	}
	fillAndAssess := func(a *frontAcc, blo, m int) {
		for r := 0; r < m; r++ {
			decodeChoice(a.choice, cs.knobs, blo+r)
			a.slow[r] = cs.fill(a.fs, a.cols, r, a.choice)
		}
		cs.kern.AssessBatch(m, a.cols, &a.bscratch)
	}
	fold := func(a *frontAcc, bi int) (*frontAcc, error) {
		blo := lo + bi*batch
		m := batch
		if blo+m > hi {
			m = hi - blo
		}
		if pr != nil && len(a.set.pts) > 0 {
			var computed, pruned bool
			boundBatch := func() {
				if _, ok := pr.bound(a.ps, blo, blo+m); ok {
					computed = true
					pruned = a.set.pruneAgainst(&a.ps.fl)
				}
			}
			if profilingEnabled() {
				doPhase(labelsPrune, boundBatch)
			} else {
				boundBatch()
			}
			if computed {
				a.bounds++
			}
			if pruned {
				a.pruned += m
				return a, nil
			}
		}
		if profilingEnabled() {
			doPhase(labelsBatch, func() { fillAndAssess(a, blo, m) })
		} else {
			fillAndAssess(a, blo, m)
		}
		for r := 0; r < m; r++ {
			global := blo + r
			if a.slow[r] {
				decodeChoice(a.choice, cs.knobs, global)
				d := a.scratch
				if d == nil {
					fresh, err := Clone(cs.base)
					if err != nil {
						return a, err
					}
					d = fresh
					if reuse {
						a.scratch = fresh
					}
				}
				if err := applyChoiceTo(d, cs.knobs, a.choice); err != nil {
					return a, err
				}
				a.eval.EvaluateInto(d, cs.scs, &a.res)
			} else {
				a.res.Design = cs.base.Name
				a.res.Err = nil
				a.res.Outlays = a.cols.OutlaysTotal[r]
				a.res.Outcomes = a.res.Outcomes[:0]
				for si := 0; si < ns; si++ {
					b := a.bscratch.Briefs[r*ns+si]
					a.res.Outcomes = append(a.res.Outcomes, whatif.Outcome{
						Scenario:     cs.scs[si],
						RecoveryTime: b.RecoveryTime,
						DataLoss:     b.DataLoss,
						Penalties:    b.Penalties,
						Total:        b.Total,
						Lost:         b.WholeObjectLost,
					})
				}
			}
			a.set.addResult(global, &a.res)
			a.evals++
		}
		return a, nil
	}
	merge := func(a, b *frontAcc) *frontAcc {
		a.set.merge(&b.set)
		a.evals += b.evals
		a.pruned += b.pruned
		a.bounds += b.bounds
		return a
	}
	mergePhase := merge
	if profilingEnabled() {
		mergePhase = func(a, b *frontAcc) *frontAcc {
			doPhase(labelsReduce, func() { a = merge(a, b) })
			return a
		}
	}
	final, err := parallel.Reduce(workers, nb, acc, fold, mergePhase)
	if err != nil {
		return frontierSet{}, searchTally{}, err
	}
	return final.set, searchTally{evals: final.evals, pruned: final.pruned, bounds: final.bounds}, nil
}

// frontierFold is the legacy per-candidate frontier sweep, used when
// the space does not compile. It mirrors exhaustiveFold.
func frontierFold(base *core.Design, knobs []Knob, scenarios []failure.Scenario, workers, lo, hi int, reuse bool) (frontierSet, int, error) {
	acc := func() *frontAcc {
		return &frontAcc{choice: make([]int, len(knobs))}
	}
	fold := func(a *frontAcc, i int) (*frontAcc, error) {
		global := lo + i
		decodeChoice(a.choice, knobs, global)
		d := a.scratch
		if d == nil {
			fresh, err := Clone(base)
			if err != nil {
				return a, err
			}
			d = fresh
			if reuse {
				a.scratch = fresh
			}
		}
		if err := applyChoiceTo(d, knobs, a.choice); err != nil {
			return a, err
		}
		a.eval.EvaluateInto(d, scenarios, &a.res)
		a.set.addResult(global, &a.res)
		a.evals++
		return a, nil
	}
	merge := func(a, b *frontAcc) *frontAcc {
		a.set.merge(&b.set)
		a.evals += b.evals
		return a
	}
	final, err := parallel.Reduce(workers, hi-lo, acc, fold, merge)
	if err != nil {
		return frontierSet{}, 0, err
	}
	return final.set, final.evals, nil
}

// assembleFrontier decodes each surviving point's choices and sorts
// the surface canonically.
func assembleFrontier(set *frontierSet, knobs []Knob, tally searchTally) *FrontierResult {
	fr := &FrontierResult{
		Evaluations:      tally.evals,
		CandidatesPruned: tally.pruned,
		BoundsComputed:   tally.bounds,
	}
	choice := make([]int, len(knobs))
	for _, p := range set.pts {
		decodeChoice(choice, knobs, p.idx)
		choices := make([]Choice, len(knobs))
		for i, k := range knobs {
			choices[i] = Choice{Knob: k.Name, Option: k.Options[choice[i]]}
		}
		fr.Points = append(fr.Points, FrontierPoint{
			CandidateIndex: p.idx,
			Choices:        choices,
			RecoveryTime:   p.rt,
			DataLoss:       p.dl,
			Outlays:        p.out,
		})
	}
	sort.Slice(fr.Points, func(i, j int) bool {
		a, b := &fr.Points[i], &fr.Points[j]
		if a.Outlays != b.Outlays {
			return a.Outlays < b.Outlays
		}
		if a.RecoveryTime != b.RecoveryTime {
			return a.RecoveryTime < b.RecoveryTime
		}
		if a.DataLoss != b.DataLoss {
			return a.DataLoss < b.DataLoss
		}
		return a.CandidateIndex < b.CandidateIndex
	})
	return fr
}

// MergeFrontiers combines the per-shard results of one sharded
// Frontier sweep over disjoint shards into exactly the unsharded
// surface: points re-filter for dominance across shards, exact
// coordinate ties collapse to the lowest candidate index, and the
// counters sum. Nil entries (shards that returned nothing) are
// skipped; merging zero results yields an empty surface.
func MergeFrontiers(knobs []Knob, frs []*FrontierResult) *FrontierResult {
	var set frontierSet
	var tally searchTally
	for _, fr := range frs {
		if fr == nil {
			continue
		}
		for i := range fr.Points {
			p := &fr.Points[i]
			set.add(fpoint{idx: p.CandidateIndex, rt: p.RecoveryTime, dl: p.DataLoss, out: p.Outlays})
		}
		tally.evals += fr.Evaluations
		tally.pruned += fr.CandidatesPruned
		tally.bounds += fr.BoundsComputed
	}
	return assembleFrontier(&set, knobs, tally)
}
