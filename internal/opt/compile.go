package opt

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"sync"
	"time"

	"stordep/internal/core"
	"stordep/internal/device"
	"stordep/internal/failure"
	"stordep/internal/parallel"
	"stordep/internal/protect"
	"stordep/internal/units"
	"stordep/internal/whatif"
)

// This file compiles a knob space into flat per-candidate parameter
// tables so the exhaustive inner loop can run through the columnar batch
// kernel (core.BatchKernel) instead of cloning, re-applying knobs and
// re-building a System per candidate.
//
// The observation behind the compilation: knobs touch small, disjoint
// parts of a design. A one-time pass diffs every option of every knob
// against the base design to learn which hierarchy levels and device
// specs each knob can change, unions knobs with overlapping footprints
// into groups, and precomputes — for every joint option combination of
// each group — the level fragments (policy lags, retention spans,
// restore sizes, routing indices, demand lists) and device specs that
// combination produces. Filling a candidate row is then pure table
// lookup and float folding in exactly Build's order, so the results are
// bit-identical to the legacy clone-and-build path.
//
// Anything the tables cannot represent exactly is handled by falling
// back, at one of three granularities:
//
//   - per candidate: options whose effects the tables cannot carry
//     (moved devices, changed spare/facility/multi-sited configuration,
//     apply errors, unknown device references, invalid policies,
//     duplicate level names) mark just those candidates "slow"; slow
//     candidates take the legacy clone+build path inside the batched
//     fold and stay byte-identical by construction.
//   - per compilation: oversized groups, base designs that will not
//     build, or a probe mismatch abort the compilation; the search runs
//     the legacy fold for the whole space.
//   - probes: before a compiled space is trusted, a spread of candidate
//     indices is evaluated both ways and compared field by field.
//
// The compilation assumes each knob's Apply reads only design state
// that it (or a knob sharing its touch footprint) also writes — the
// same independence Knob.Revertible documents. Every built-in knob
// satisfies this: the only state a built-in knob reads (e.g. AccWKnob's
// propagation-window clamp, RetCntKnob's cycle-period read) lives on
// its own level, and any other knob writing that level lands in the
// same group, where joint enumeration reproduces the interaction
// exactly. The probe pass is the safety net for exotic knobs.

const (
	// minCompileSpace is the smallest shard slice worth compiling: below
	// it the one-time diff/extraction pass costs more than it saves.
	// ExhaustiveOptions.BatchSize > 0 forces compilation regardless, so
	// tests can exercise the compiled path on tiny spaces.
	minCompileSpace = 512
	// defaultBatchSize is the candidate count per batched fold step when
	// ExhaustiveOptions.BatchSize is zero.
	defaultBatchSize = 64
	// maxGroupOptions caps one group's joint-option product; interacting
	// knobs beyond it abort compilation rather than explode the tables.
	maxGroupOptions = 4096
	// maxCompileWork caps the total option extractions of one
	// compilation (per-knob diffs plus all group tables).
	maxCompileWork = 16384
	// compileProbes is how many spread candidate indices are verified
	// against the legacy path before a compiled space is trusted.
	compileProbes = 16
)

// demandRec is one captured device demand: device.Demand with the
// device and technique names resolved to indices.
type demandRec struct {
	dev  int32
	tech int32 // interned Demand.Technique
	bw   units.Rate
	cap  units.ByteSize
	ship float64
}

// levelFrag carries everything one hierarchy level contributes to a
// candidate row: the batch-kernel columns plus the level's device
// demands in their exact registration order.
type levelFrag struct {
	lag, accW, retSpan time.Duration
	restore            units.ByteSize
	copyIdx, readIdx   int32
	transportIdx       int32 // -1 when the technique names no transport
	nameID             int32 // interned level name, for the duplicate check
	demands            []demandRec
}

// groupEntry is one joint option combination of a knob group: either
// the precomputed fragments/specs, or suspect (candidate goes slow).
type groupEntry struct {
	suspect bool
	frags   []levelFrag   // aligned with knobGroup.levels
	specs   []device.Spec // aligned with knobGroup.devices
}

// knobGroup unions knobs whose touch footprints overlap. Its table
// holds one entry per joint option combination (members in knob order,
// last member least significant — the mixed-radix convention).
type knobGroup struct {
	members []int // knob indices, ascending
	radix   []int
	size    int
	levels  []int // touched level indices, ascending
	devices []int // touched device indices, ascending
	entries []groupEntry
}

// compiledSpace is the compiled form of (base design, knob set,
// scenario set): immutable after compileSpace, safe for concurrent fill
// with distinct fillScratch/Cols.
type compiledSpace struct {
	base  *core.Design
	knobs []Knob
	scs   []failure.Scenario
	kern  *core.BatchKernel

	nLevels  int
	nDevices int
	maxRows  int // max distinct outlay techniques per device

	baseFrags      []levelFrag
	primaryDemands []demandRec
	baseSpecs      []device.Spec

	groups     []knobGroup
	levelOwner []int // level -> owning group, -1 = untouched (base)
	levelSlot  []int // position in the owner's levels list
	specOwner  []int
	specSlot   []int
	// knobSuspect[k][o]: option o of knob k is unrepresentable (apply
	// error or forbidden change) — every candidate choosing it is slow.
	knobSuspect [][]bool

	names *interner

	// Facility retainer replication: covered[d] marks devices whose base
	// outlays the retainer covers.
	retainer   bool
	costFactor float64
	covered    []bool
}

// interner maps technique/level names to dense IDs. Locked because
// group extraction runs on the worker pool; IDs are compile-time only.
type interner struct {
	mu  sync.Mutex
	ids map[string]int32
}

func (in *interner) id(name string) int32 {
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok := in.ids[name]; ok {
		return id
	}
	id := int32(len(in.ids))
	in.ids[name] = id
	return id
}

// fillScratch is one worker's reusable buffers for fill: demand totals,
// outlay rows, and the per-candidate fragment/spec resolution. No
// allocation happens in fill once a scratch exists.
type fillScratch struct {
	entry []*groupEntry  // per group: the candidate's entry
	frags []*levelFrag   // per level: candidate fragment
	specs []*device.Spec // per device: candidate spec

	totBW    []units.Rate
	totCap   []units.ByteSize
	rowTech  []int32 // nDevices x maxRows outlay-row technique IDs
	rowBase  []units.Money
	rowCount []int
}

func newFillScratch(cs *compiledSpace) *fillScratch {
	return &fillScratch{
		entry:    make([]*groupEntry, len(cs.groups)),
		frags:    make([]*levelFrag, cs.nLevels),
		specs:    make([]*device.Spec, cs.nDevices),
		totBW:    make([]units.Rate, cs.nDevices),
		totCap:   make([]units.ByteSize, cs.nDevices),
		rowTech:  make([]int32, cs.nDevices*cs.maxRows),
		rowBase:  make([]units.Money, cs.nDevices*cs.maxRows),
		rowCount: make([]int, cs.nDevices),
	}
}

// compileSpace builds the compiled form or reports why it cannot. A nil
// error means the space passed probe verification; any error means the
// caller must use the legacy fold (the error is diagnostic only).
func compileSpace(base *core.Design, knobs []Knob, scs []failure.Scenario, workers int) (*compiledSpace, error) {
	work := 0
	for _, k := range knobs {
		work += len(k.Options)
	}
	if work > maxCompileWork {
		return nil, fmt.Errorf("opt: compile: %d knob options exceed the compile work cap", work)
	}
	baseSys, err := core.Build(base)
	if err != nil {
		return nil, fmt.Errorf("opt: compile: base design: %w", err)
	}
	kern, err := core.NewBatchKernel(baseSys, scs)
	if err != nil {
		return nil, fmt.Errorf("opt: compile: %w", err)
	}
	cs := &compiledSpace{
		base:     base,
		knobs:    knobs,
		scs:      scs,
		kern:     kern,
		nLevels:  kern.Levels(),
		nDevices: kern.Devices(),
		names:    &interner{ids: make(map[string]int32)},
	}
	cs.maxRows = cs.nLevels + 1 // primary + one technique per level
	if err := cs.extractBase(); err != nil {
		return nil, fmt.Errorf("opt: compile: base: %w", err)
	}
	remaining := maxCompileWork - work
	if err := cs.groupKnobs(remaining); err != nil {
		return nil, err
	}
	if err := cs.extractGroups(workers); err != nil {
		return nil, err
	}
	if err := cs.verify(); err != nil {
		return nil, err
	}
	return cs, nil
}

// fragment captures one level's contribution from technique tech,
// applying the same validation Build would: any error means candidates
// carrying this technique state must take the slow path.
func (cs *compiledSpace) fragment(tech protect.Technique) (levelFrag, error) {
	var f levelFrag
	if err := tech.Validate(); err != nil {
		return f, err
	}
	lv := tech.Level()
	if lv.Name == "" {
		return f, fmt.Errorf("opt: compile: level has no name")
	}
	if err := lv.Policy.Validate(); err != nil {
		return f, err
	}
	f.lag = lv.Policy.TransferLag()
	f.accW = lv.Policy.EffectiveAccW()
	f.retSpan = lv.Policy.RetentionSpan()
	f.restore = tech.RestoreSize(cs.base.Workload)
	f.nameID = cs.names.id(lv.Name)
	ci := cs.kern.DeviceIndex(tech.CopyDevice())
	ri := cs.kern.DeviceIndex(tech.ReadDevice())
	if ci < 0 || ri < 0 {
		return f, fmt.Errorf("opt: compile: level %q references unknown device", lv.Name)
	}
	f.copyIdx, f.readIdx = int32(ci), int32(ri)
	f.transportIdx = -1
	if name := tech.TransportDevice(); name != "" {
		// Unlike a missing transport in a built system (silently treated
		// as "no transport" by the recovery model), Design.Validate
		// rejects a transport name absent from the fleet — so an unknown
		// name must go through the slow path to reproduce that error.
		ti := cs.kern.DeviceIndex(name)
		if ti < 0 {
			return f, fmt.Errorf("opt: compile: level %q transport %q unknown", lv.Name, name)
		}
		f.transportIdx = int32(ti)
	}
	// Demands are policy/workload arithmetic only — no technique reads
	// its devices' specs or prior demands (each computes from the
	// workload and its own configuration) — so capturing them on a clean
	// fleet of base-spec devices yields exactly the records Build's
	// shared fleet receives from this technique, in the same order.
	fleet := make(protect.DeviceMap, cs.nDevices)
	devs := make([]*device.Device, cs.nDevices)
	for i := range cs.baseSpecs {
		dev, err := device.New(cs.baseSpecs[i])
		if err != nil {
			return f, err
		}
		fleet[cs.baseSpecs[i].Name] = dev
		devs[i] = dev
	}
	if err := tech.ApplyDemands(cs.base.Workload, fleet); err != nil {
		return f, err
	}
	for di, dev := range devs {
		for _, dem := range dev.Demands() {
			f.demands = append(f.demands, demandRec{
				dev:  int32(di),
				tech: cs.names.id(dem.Technique),
				bw:   dem.Bandwidth,
				cap:  dem.Capacity,
				ship: dem.ShipmentsPerYear,
			})
		}
	}
	return f, nil
}

// extractBase captures the base design's specs, primary demands and
// level fragments, plus the facility-retainer coverage map. The base
// built successfully, so none of this may fail.
func (cs *compiledSpace) extractBase() error {
	d := cs.base
	cs.baseSpecs = make([]device.Spec, cs.nDevices)
	for i, pd := range d.Devices {
		cs.baseSpecs[i] = pd.Spec
	}
	fleet := make(protect.DeviceMap, cs.nDevices)
	devs := make([]*device.Device, cs.nDevices)
	for i := range cs.baseSpecs {
		dev, err := device.New(cs.baseSpecs[i])
		if err != nil {
			return err
		}
		fleet[cs.baseSpecs[i].Name] = dev
		devs[i] = dev
	}
	if err := d.Primary.ApplyDemands(d.Workload, fleet); err != nil {
		return err
	}
	for di, dev := range devs {
		for _, dem := range dev.Demands() {
			cs.primaryDemands = append(cs.primaryDemands, demandRec{
				dev:  int32(di),
				tech: cs.names.id(dem.Technique),
				bw:   dem.Bandwidth,
				cap:  dem.Capacity,
				ship: dem.ShipmentsPerYear,
			})
		}
	}
	cs.baseFrags = make([]levelFrag, cs.nLevels)
	for j, tech := range d.Levels {
		f, err := cs.fragment(tech)
		if err != nil {
			return err
		}
		cs.baseFrags[j] = f
	}
	cs.covered = make([]bool, cs.nDevices)
	if d.Facility != nil && d.Facility.CostFactor != 0 {
		cs.retainer = true
		cs.costFactor = d.Facility.CostFactor
		primarySite := d.PrimaryPlacement().Site
		for i, pd := range d.Devices {
			cs.covered[i] = pd.Placement.Site != "" && pd.Placement.Site == primarySite
		}
	}
	return nil
}

// diffTouch is the representable difference between a candidate design
// and the base: which levels and device specs changed. ok=false means
// the change cannot be carried by the tables (renamed design, moved or
// renamed devices, spare/facility/primary/workload/requirements edits,
// multi-sited reconfiguration, shape changes).
type diffTouch struct {
	ok      bool
	levels  []int
	devices []int
}

func (cs *compiledSpace) diff(d *core.Design) diffTouch {
	b := cs.base
	t := diffTouch{ok: true}
	if d.Name != b.Name ||
		!reflect.DeepEqual(d.Workload, b.Workload) ||
		!reflect.DeepEqual(d.Requirements, b.Requirements) ||
		!reflect.DeepEqual(d.Primary, b.Primary) ||
		!reflect.DeepEqual(d.Facility, b.Facility) ||
		len(d.Levels) != len(b.Levels) || len(d.Devices) != len(b.Devices) {
		t.ok = false
		return t
	}
	for i := range d.Devices {
		dp, bp := &d.Devices[i], &b.Devices[i]
		if dp.Placement != bp.Placement || dp.SparePlacement != bp.SparePlacement {
			t.ok = false
			return t
		}
		if dp.Spec == bp.Spec {
			continue
		}
		// The kernel froze name resolution, kinds, fixed delays and
		// spare provisioning at compile time; a knob changing those
		// cannot ride the tables. Everything else about a spec (slot
		// counts, rates, costs, overheads) is re-derived per candidate.
		if dp.Spec.Name != bp.Spec.Name || dp.Spec.Kind != bp.Spec.Kind ||
			dp.Spec.Delay != bp.Spec.Delay || dp.Spec.Spare != bp.Spec.Spare {
			t.ok = false
			return t
		}
		t.devices = append(t.devices, i)
	}
	for j := range d.Levels {
		if reflect.DeepEqual(d.Levels[j], b.Levels[j]) {
			continue
		}
		dm, dok := d.Levels[j].(protect.MultiSited)
		bm, bok := b.Levels[j].(protect.MultiSited)
		if dok != bok {
			t.ok = false
			return t
		}
		if dok {
			// Multi-sited survival is placement arithmetic baked into
			// the kernel; the fragment set and threshold must not move.
			if reflect.TypeOf(d.Levels[j]) != reflect.TypeOf(b.Levels[j]) ||
				dm.SurvivalThreshold() != bm.SurvivalThreshold() ||
				!reflect.DeepEqual(dm.CopyDevices(), bm.CopyDevices()) {
				t.ok = false
				return t
			}
		}
		t.levels = append(t.levels, j)
	}
	return t
}

// groupKnobs diffs every option of every knob against the base to learn
// each knob's touch footprint, then unions knobs sharing a level or a
// device spec into groups. budget bounds the total group table size.
func (cs *compiledSpace) groupKnobs(budget int) error {
	nk := len(cs.knobs)
	cs.knobSuspect = make([][]bool, nk)
	touchL := make([][]int, nk)
	touchD := make([][]int, nk)
	for k := range cs.knobs {
		opts := cs.knobs[k].Options
		cs.knobSuspect[k] = make([]bool, len(opts))
		lset, dset := map[int]bool{}, map[int]bool{}
		for o := range opts {
			d, err := Clone(cs.base)
			if err != nil {
				return err
			}
			if err := cs.knobs[k].Apply(d, o); err != nil {
				// The legacy path aborts the whole search on an apply
				// error; the slow path reproduces exactly that.
				cs.knobSuspect[k][o] = true
				continue
			}
			t := cs.diff(d)
			if !t.ok {
				cs.knobSuspect[k][o] = true
				continue
			}
			for _, j := range t.levels {
				lset[j] = true
			}
			for _, di := range t.devices {
				dset[di] = true
			}
		}
		touchL[k] = sortedKeys(lset)
		touchD[k] = sortedKeys(dset)
	}

	// Union-find over knobs: two knobs sharing a touched level or spec
	// interact and must be enumerated jointly.
	parent := make([]int, nk)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	levelTo := map[int]int{}
	devTo := map[int]int{}
	for k := 0; k < nk; k++ {
		for _, j := range touchL[k] {
			if p, ok := levelTo[j]; ok {
				union(p, k)
			} else {
				levelTo[j] = k
			}
		}
		for _, di := range touchD[k] {
			if p, ok := devTo[di]; ok {
				union(p, k)
			} else {
				devTo[di] = k
			}
		}
	}

	byRoot := map[int]*knobGroup{}
	var roots []int
	for k := 0; k < nk; k++ {
		if len(touchL[k]) == 0 && len(touchD[k]) == 0 {
			continue // touchless knob: every option leaves the base state
		}
		r := find(k)
		g, ok := byRoot[r]
		if !ok {
			g = &knobGroup{}
			byRoot[r] = g
			roots = append(roots, r)
		}
		g.members = append(g.members, k)
		g.levels = append(g.levels, touchL[k]...)
		g.devices = append(g.devices, touchD[k]...)
	}

	cs.levelOwner = make([]int, cs.nLevels)
	cs.levelSlot = make([]int, cs.nLevels)
	cs.specOwner = make([]int, cs.nDevices)
	cs.specSlot = make([]int, cs.nDevices)
	for j := range cs.levelOwner {
		cs.levelOwner[j] = -1
	}
	for i := range cs.specOwner {
		cs.specOwner[i] = -1
	}
	total := 0
	for _, r := range roots {
		g := byRoot[r]
		sort.Ints(g.members)
		g.levels = dedupSorted(g.levels)
		g.devices = dedupSorted(g.devices)
		g.size = 1
		for _, k := range g.members {
			n := len(cs.knobs[k].Options)
			g.radix = append(g.radix, n)
			if g.size > maxGroupOptions/n {
				return fmt.Errorf("opt: compile: knob group around %q exceeds %d joint options",
					cs.knobs[k].Name, maxGroupOptions)
			}
			g.size *= n
		}
		total += g.size
		if total > budget {
			return fmt.Errorf("opt: compile: group tables exceed the compile work cap")
		}
		gi := len(cs.groups)
		for slot, j := range g.levels {
			cs.levelOwner[j] = gi
			cs.levelSlot[j] = slot
		}
		for slot, di := range g.devices {
			cs.specOwner[di] = gi
			cs.specSlot[di] = slot
		}
		cs.groups = append(cs.groups, *g)
	}
	return nil
}

// extractGroups fills each group's joint-option table by applying the
// member knobs (in knob order, on a fresh clone per combination) and
// re-diffing against the base. Combinations whose effects stray outside
// the group's footprint, or fail any validation, are marked suspect.
// Extraction is the expensive part of compilation, so it runs on the
// worker pool.
func (cs *compiledSpace) extractGroups(workers int) error {
	for gi := range cs.groups {
		g := &cs.groups[gi]
		g.entries = make([]groupEntry, g.size)
		err := parallel.ForEach(workers, g.size, func(t int) error {
			e := &g.entries[t]
			opts := make([]int, len(g.members))
			rem := t
			for mi := len(g.members) - 1; mi >= 0; mi-- {
				opts[mi] = rem % g.radix[mi]
				rem /= g.radix[mi]
			}
			for mi, k := range g.members {
				if cs.knobSuspect[k][opts[mi]] {
					e.suspect = true
					return nil
				}
			}
			d, err := Clone(cs.base)
			if err != nil {
				return err
			}
			for mi, k := range g.members {
				if err := cs.knobs[k].Apply(d, opts[mi]); err != nil {
					e.suspect = true
					return nil
				}
			}
			dt := cs.diff(d)
			if !dt.ok {
				e.suspect = true
				return nil
			}
			for _, j := range dt.levels {
				if cs.levelOwner[j] != gi {
					e.suspect = true
					return nil
				}
			}
			for _, di := range dt.devices {
				if cs.specOwner[di] != gi {
					e.suspect = true
					return nil
				}
			}
			e.frags = make([]levelFrag, len(g.levels))
			for li, j := range g.levels {
				f, err := cs.fragment(d.Levels[j])
				if err != nil {
					e.suspect = true
					return nil
				}
				e.frags[li] = f
			}
			e.specs = make([]device.Spec, len(g.devices))
			for si, di := range g.devices {
				sp := d.Devices[di].Spec
				if err := sp.Validate(); err != nil {
					e.suspect = true
					return nil
				}
				e.specs[si] = sp
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// fill resolves candidate `choice` into Cols row `row`: fragment/spec
// lookup, then the demand, check and outlay folds in exactly Build's
// order. Returns true when the candidate must take the legacy slow path
// (the row is marked invalid and untouched otherwise). Allocation-free.
func (cs *compiledSpace) fill(fs *fillScratch, cols *core.Cols, row int, choice []int) bool {
	for k, o := range choice {
		if cs.knobSuspect[k][o] {
			cols.Valid[row] = false
			return true
		}
	}
	for gi := range cs.groups {
		g := &cs.groups[gi]
		t := 0
		for mi, k := range g.members {
			t = t*g.radix[mi] + choice[k]
		}
		e := &g.entries[t]
		if e.suspect {
			cols.Valid[row] = false
			return true
		}
		fs.entry[gi] = e
	}
	for j := 0; j < cs.nLevels; j++ {
		if gi := cs.levelOwner[j]; gi >= 0 {
			fs.frags[j] = &fs.entry[gi].frags[cs.levelSlot[j]]
		} else {
			fs.frags[j] = &cs.baseFrags[j]
		}
	}
	// Duplicate level names fail Chain.Validate in Build; the slow path
	// reproduces that build error (scored +Inf).
	for a := 0; a < cs.nLevels; a++ {
		for b := a + 1; b < cs.nLevels; b++ {
			if fs.frags[a].nameID == fs.frags[b].nameID {
				cols.Valid[row] = false
				return true
			}
		}
	}
	for di := 0; di < cs.nDevices; di++ {
		if gi := cs.specOwner[di]; gi >= 0 {
			fs.specs[di] = &fs.entry[gi].specs[cs.specSlot[di]]
		} else {
			fs.specs[di] = &cs.baseSpecs[di]
		}
		fs.totBW[di] = 0
		fs.totCap[di] = 0
		fs.rowCount[di] = 0
	}

	// Demand fold: primary first, then levels in order — the same
	// per-device registration order Build produces, so the float sums
	// and the outlay row order are bit-identical.
	if !cs.foldDemands(fs, cs.primaryDemands) {
		cols.Valid[row] = false
		return true
	}
	for j := 0; j < cs.nLevels; j++ {
		if !cs.foldDemands(fs, fs.frags[j].demands) {
			cols.Valid[row] = false
			return true
		}
	}

	// Check + outlay fold, in device order. Check failures make the
	// candidate invalid in Build; the slow path reproduces the error.
	lvlBase := row * cs.nLevels
	devBase := row * cs.nDevices
	var total units.Money
	var covered units.Money
	for di := 0; di < cs.nDevices; di++ {
		sp := fs.specs[di]
		maxBW := sp.MaxBandwidth()
		if fs.totCap[di] > 0 {
			maxCap := sp.MaxCapacity()
			if maxCap <= 0 || float64(sp.RawCapacityFor(fs.totCap[di])/maxCap) > 1 {
				cols.Valid[row] = false
				return true
			}
		}
		if fs.totBW[di] > 0 {
			if maxBW <= 0 || float64(fs.totBW[di]/maxBW) > 1 {
				cols.Valid[row] = false
				return true
			}
		}
		cols.DevMaxBW[devBase+di] = maxBW
		avail := maxBW - fs.totBW[di]
		if avail < 0 {
			avail = 0
		}
		cols.DevAvail[devBase+di] = avail

		rows := fs.rowCount[di]
		base := di * cs.maxRows
		spare := sp.HasSpare()
		for x := 0; x < rows; x++ {
			b := fs.rowBase[base+x]
			item := b
			if spare {
				item = b + units.Money(sp.Spare.Discount)*b
			}
			total += item
			if cs.covered[di] {
				covered += b
			}
		}
	}
	if cs.retainer && covered > 0 {
		total += units.Money(cs.costFactor) * covered
	}
	cols.OutlaysTotal[row] = total

	for j := 0; j < cs.nLevels; j++ {
		f := fs.frags[j]
		cols.LvlLag[lvlBase+j] = f.lag
		cols.LvlAccW[lvlBase+j] = f.accW
		cols.LvlRetSpan[lvlBase+j] = f.retSpan
		cols.LvlRestore[lvlBase+j] = f.restore
		cols.LvlCopy[lvlBase+j] = f.copyIdx
		cols.LvlRead[lvlBase+j] = f.readIdx
		cols.LvlTransport[lvlBase+j] = f.transportIdx
	}
	cols.Valid[row] = true
	cols.Err[row] = nil
	return false
}

// foldDemands accumulates one technique's demand records into the
// bandwidth/capacity totals and the per-device outlay rows, replicating
// device.Device.Outlays: the first technique on a device carries the
// fixed cost (and an interconnect's provisioned-bandwidth cost), every
// demand adds its marginal annual cost. Returns false if a device
// accumulates more distinct technique rows than the scratch holds
// (possible only for techniques attributing demands to foreign names).
func (cs *compiledSpace) foldDemands(fs *fillScratch, recs []demandRec) bool {
	for i := range recs {
		r := &recs[i]
		di := int(r.dev)
		fs.totBW[di] += r.bw
		fs.totCap[di] += r.cap

		sp := fs.specs[di]
		interconnect := sp.Kind == device.KindInterconnect
		base := di * cs.maxRows
		n := fs.rowCount[di]
		ri := -1
		for x := 0; x < n; x++ {
			if fs.rowTech[base+x] == r.tech {
				ri = x
				break
			}
		}
		if ri < 0 {
			if n == cs.maxRows {
				return false
			}
			ri = n
			fs.rowCount[di] = n + 1
			fs.rowTech[base+ri] = r.tech
			var first units.Money
			if ri == 0 {
				first = sp.Cost.Fixed
				if interconnect {
					first += units.Money(sp.Cost.PerMBPerSec * sp.MaxBandwidth().MBPS())
				}
			}
			fs.rowBase[base+ri] = first
		}
		raw := sp.RawCapacityFor(r.cap)
		bw := r.bw
		if interconnect {
			bw = 0 // already charged at provisioned capacity
		}
		fs.rowBase[base+ri] += sp.Cost.Annual(raw, bw, r.ship) - sp.Cost.Fixed
	}
	return true
}

// verify evaluates a spread of candidate indices through both the
// compiled tables and the legacy clone+build path and compares every
// output field. Any mismatch rejects the compilation. Slow-path
// candidates are exact by construction and only checked for agreement
// about *being* slow when the legacy path errors.
func (cs *compiledSpace) verify() error {
	space, err := spaceSize(cs.knobs)
	if err != nil {
		return err
	}
	probes := compileProbes
	if space < probes {
		probes = space
	}
	cols := cs.kern.NewCols(1)
	var bs core.BatchScratch
	fs := newFillScratch(cs)
	choice := make([]int, len(cs.knobs))
	var ev whatif.Evaluator
	var res whatif.Result
	for p := 0; p < probes; p++ {
		idx := 0
		if probes > 1 {
			idx = p * (space - 1) / (probes - 1)
		}
		decodeChoice(choice, cs.knobs, idx)
		slow := cs.fill(fs, cols, 0, choice)
		d, err := Clone(cs.base)
		if err != nil {
			return err
		}
		if err := applyChoiceTo(d, cs.knobs, choice); err != nil {
			if !slow {
				return fmt.Errorf("opt: compile probe %d: apply fails (%v) but tables claim fast path", idx, err)
			}
			continue
		}
		if slow {
			continue
		}
		ev.EvaluateInto(d, cs.scs, &res)
		if res.Err != nil {
			return fmt.Errorf("opt: compile probe %d: build fails (%v) but tables claim fast path", idx, res.Err)
		}
		if cols.OutlaysTotal[0] != res.Outlays {
			return fmt.Errorf("opt: compile probe %d: outlays %v != %v", idx, cols.OutlaysTotal[0], res.Outlays)
		}
		cs.kern.AssessBatch(1, cols, &bs)
		for si := range cs.scs {
			b := bs.Briefs[si]
			o := res.Outcomes[si]
			if b.RecoveryTime != o.RecoveryTime || b.DataLoss != o.DataLoss ||
				b.Penalties != o.Penalties || b.Total != o.Total || b.WholeObjectLost != o.Lost {
				return fmt.Errorf("opt: compile probe %d scenario %d: batch %+v != legacy %+v", idx, si, b, o)
			}
		}
	}
	return nil
}

// batchAcc is one worker's state in the compiled batched fold: the
// legacy argmin fields plus the columnar block, kernel scratch and
// slow-row machinery.
type batchAcc struct {
	bestScore units.Money
	bestIdx   int
	evals     int
	pruned    int
	bounds    int
	choice    []int
	cols      *core.Cols
	bscratch  core.BatchScratch
	fs        *fillScratch
	slow      []bool
	ps        *pruneScratch // non-nil only when pruning
	scratch   *core.Design  // slow-path reuse when all knobs are revertible
	eval      whatif.Evaluator
	res       whatif.Result
}

// searchTally is the candidate accounting of one compiled search:
// assessed candidates, candidates pruned wholesale, and subtree bounds
// computed.
type searchTally struct {
	evals  int
	pruned int
	bounds int
}

// search runs the batched fold over global candidate range [lo, hi):
// each fold step fills up to `batch` rows, assesses them in one
// AssessBatch call, and folds the argmin. Rows are scored in ascending
// global order within a batch, and batches keep parallel.Reduce's
// lowest-index-first error semantics, so errors and the argmin are
// byte-identical to the legacy per-candidate fold.
//
// A non-nil pr enables branch-and-bound: the incumbent is seeded from
// spread probes, each batch is bounded before being filled, and batches
// whose bound exceeds the incumbent are retired wholesale without
// assessment. Pruned candidates score strictly worse than an achieved
// score, so the argmin (and its tie-break) is unchanged — only the
// tally's assessed/pruned split depends on scheduling.
func (cs *compiledSpace) search(lo, hi, batch int, objective Objective, opts ExhaustiveOptions, reuse bool, pr *pruner) (units.Money, int, searchTally, error) {
	n := hi - lo
	nb := (n + batch - 1) / batch
	ns := len(cs.scs)

	if pr != nil {
		if profilingEnabled() {
			doPhase(labelsPrune, func() { pr.seed(objective, lo, hi) })
		} else {
			pr.seed(objective, lo, hi)
		}
	}

	acc := func() *batchAcc {
		a := &batchAcc{
			bestScore: units.Money(math.Inf(1)),
			bestIdx:   -1,
			choice:    make([]int, len(cs.knobs)),
			cols:      cs.kern.NewCols(batch),
			fs:        newFillScratch(cs),
			slow:      make([]bool, batch),
		}
		if pr != nil {
			a.ps = pr.newScratch()
		}
		return a
	}
	fillAndAssess := func(a *batchAcc, blo, m int) {
		for r := 0; r < m; r++ {
			decodeChoice(a.choice, cs.knobs, blo+r)
			a.slow[r] = cs.fill(a.fs, a.cols, r, a.choice)
		}
		cs.kern.AssessBatch(m, a.cols, &a.bscratch)
	}
	fold := func(a *batchAcc, bi int) (*batchAcc, error) {
		blo := lo + bi*batch
		m := batch
		if blo+m > hi {
			m = hi - blo
		}
		if pr != nil {
			var computed, pruned bool
			if profilingEnabled() {
				doPhase(labelsPrune, func() { computed, pruned = pr.pruneBatch(a.ps, blo, blo+m) })
			} else {
				computed, pruned = pr.pruneBatch(a.ps, blo, blo+m)
			}
			if computed {
				a.bounds++
			}
			if pruned {
				a.pruned += m
				if opts.Progress != nil {
					opts.Progress.Add(int64(m))
				}
				return a, nil
			}
		}
		if profilingEnabled() {
			doPhase(labelsBatch, func() { fillAndAssess(a, blo, m) })
		} else {
			fillAndAssess(a, blo, m)
		}
		for r := 0; r < m; r++ {
			global := blo + r
			var s units.Money
			if a.slow[r] {
				decodeChoice(a.choice, cs.knobs, global)
				d := a.scratch
				if d == nil {
					fresh, err := Clone(cs.base)
					if err != nil {
						return a, err
					}
					d = fresh
					if reuse {
						a.scratch = fresh
					}
				}
				if profilingEnabled() {
					var applyErr error
					doPhase(labelsBuild, func() { applyErr = applyChoiceTo(d, cs.knobs, a.choice) })
					if applyErr != nil {
						return a, applyErr
					}
					doPhase(labelsAssess, func() { a.eval.EvaluateInto(d, cs.scs, &a.res) })
				} else {
					if err := applyChoiceTo(d, cs.knobs, a.choice); err != nil {
						return a, err
					}
					a.eval.EvaluateInto(d, cs.scs, &a.res)
				}
				s = objective(a.res)
			} else {
				// Knobs that could rename the design are unrepresentable,
				// so fast-path candidates keep the base name — exactly
				// what the legacy evaluator would record.
				a.res.Design = cs.base.Name
				a.res.Err = nil
				a.res.Outlays = a.cols.OutlaysTotal[r]
				a.res.Outcomes = a.res.Outcomes[:0]
				for si := 0; si < ns; si++ {
					b := a.bscratch.Briefs[r*ns+si]
					a.res.Outcomes = append(a.res.Outcomes, whatif.Outcome{
						Scenario:     cs.scs[si],
						RecoveryTime: b.RecoveryTime,
						DataLoss:     b.DataLoss,
						Penalties:    b.Penalties,
						Total:        b.Total,
						Lost:         b.WholeObjectLost,
					})
				}
				s = objective(a.res)
			}
			a.evals++
			if s < a.bestScore {
				a.bestScore = s
				a.bestIdx = global
			}
		}
		if pr != nil && a.bestIdx >= 0 {
			pr.noteScore(a.bestScore)
		}
		if opts.Progress != nil {
			opts.Progress.Add(int64(m))
		}
		return a, nil
	}
	merge := func(a, b *batchAcc) *batchAcc {
		a.evals += b.evals
		a.pruned += b.pruned
		a.bounds += b.bounds
		if b.bestIdx >= 0 && (a.bestIdx < 0 || b.bestScore < a.bestScore ||
			(b.bestScore == a.bestScore && b.bestIdx < a.bestIdx)) {
			a.bestScore, a.bestIdx = b.bestScore, b.bestIdx
		}
		return a
	}
	mergePhase := merge
	if profilingEnabled() {
		mergePhase = func(a, b *batchAcc) *batchAcc {
			doPhase(labelsReduce, func() { a = merge(a, b) })
			return a
		}
	}
	final, err := parallel.Reduce(opts.Workers, nb, acc, fold, mergePhase)
	if err != nil {
		return 0, 0, searchTally{}, err
	}
	tally := searchTally{evals: final.evals, pruned: final.pruned, bounds: final.bounds}
	return final.bestScore, final.bestIdx, tally, nil
}

// maybeCompile decides whether to compile the space for this search and
// returns nil (meaning: use the legacy fold) on any compile failure —
// the compiled path is an exactness-preserving accelerator, never a
// correctness dependency.
func maybeCompile(base *core.Design, knobs []Knob, scenarios []failure.Scenario, shardSize int, opts ExhaustiveOptions) *compiledSpace {
	if shardSize <= 0 {
		return nil
	}
	if opts.BatchSize <= 0 && shardSize < minCompileSpace && !(opts.Prune && opts.Floor != nil) {
		return nil
	}
	var cs *compiledSpace
	var err error
	if profilingEnabled() {
		doPhase(labelsCompile, func() { cs, err = compileSpace(base, knobs, scenarios, opts.Workers) })
	} else {
		cs, err = compileSpace(base, knobs, scenarios, opts.Workers)
	}
	if err != nil {
		return nil
	}
	return cs
}

func sortedKeys(m map[int]bool) []int {
	if len(m) == 0 {
		return nil
	}
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func dedupSorted(s []int) []int {
	sort.Ints(s)
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
