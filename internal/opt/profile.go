package opt

import (
	"context"
	"runtime/pprof"
	"sync/atomic"
)

// Profiler phase labels for the exhaustive inner loop: "build" covers
// candidate construction (clone + knob application), "assess" the
// evaluation of the candidate across scenarios, "reduce" the argmin
// merge, "compile" the one-time knob-space compilation (diffing,
// group-table extraction, probe verification), "batch" the compiled
// path's fill+AssessBatch step, and "prune" the branch-and-bound layer
// (incumbent seeding plus per-subtree bound computation). With labels
// on, `go tool pprof -tagfocus phase=batch` isolates where an
// optimization run actually spends its time.
var (
	labelsBuild   = pprof.Labels("phase", "build")
	labelsAssess  = pprof.Labels("phase", "assess")
	labelsReduce  = pprof.Labels("phase", "reduce")
	labelsCompile = pprof.Labels("phase", "compile")
	labelsBatch   = pprof.Labels("phase", "batch")
	labelsPrune   = pprof.Labels("phase", "prune")
)

// phaseProfiling gates the per-candidate pprof labeling. Off by default:
// labeling costs a pprof.Do and two closure allocations per candidate,
// which the hot loop must not pay when nobody is profiling.
var phaseProfiling atomic.Bool

// PhaseProfiling toggles pprof phase labels
// (phase=build|assess|reduce|compile|batch|prune) on the exhaustive search's
// inner loop. Enable it together with CPU or
// memory profiling (cmd/optimize -cpuprofile does); it is safe to toggle
// concurrently with running searches — a search reads the flag at each
// candidate.
func PhaseProfiling(on bool) { phaseProfiling.Store(on) }

func profilingEnabled() bool { return phaseProfiling.Load() }

// doPhase runs f under the pprof label set.
func doPhase(l pprof.LabelSet, f func()) {
	pprof.Do(context.Background(), l, func(context.Context) { f() })
}
