package opt

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"stordep/internal/casestudy"
	"stordep/internal/core"
	"stordep/internal/failure"
	"stordep/internal/units"
	"stordep/internal/whatif"
)

// oraclePt is one candidate's frontier coordinates in the slice oracle.
type oraclePt struct {
	idx int
	rt  time.Duration
	dl  time.Duration
	out units.Money
}

// frontierOracle computes the non-dominated surface the slow way:
// evaluate every candidate through the legacy clone+build evaluator,
// keep the feasible ones (builds, never loses the object) with their
// worst-case recovery time and data loss, then apply the quadratic
// dominance filter — a point survives iff no other point is at least
// as good on all three axes and either strictly better somewhere or an
// exact-coordinate duplicate with a lower index. This is deliberately
// independent of frontierSet's streaming add.
func frontierOracle(t *testing.T, base *core.Design, knobs []Knob, scs []failure.Scenario) []oraclePt {
	t.Helper()
	space := 1
	for _, k := range knobs {
		space *= len(k.Options)
	}
	var all []oraclePt
	choice := make([]int, len(knobs))
	var ev whatif.Evaluator
	var res whatif.Result
	for idx := 0; idx < space; idx++ {
		decodeChoice(choice, knobs, idx)
		d, err := Clone(base)
		if err != nil {
			t.Fatal(err)
		}
		if err := applyChoiceTo(d, knobs, choice); err != nil {
			t.Fatalf("candidate %d: apply: %v", idx, err)
		}
		ev.EvaluateInto(d, scs, &res)
		if res.Err != nil {
			continue
		}
		var rt, dl time.Duration
		lost := false
		for _, o := range res.Outcomes {
			if o.Lost {
				lost = true
				break
			}
			if o.RecoveryTime > rt {
				rt = o.RecoveryTime
			}
			if o.DataLoss > dl {
				dl = o.DataLoss
			}
		}
		if lost {
			continue
		}
		all = append(all, oraclePt{idx: idx, rt: rt, dl: dl, out: res.Outlays})
	}
	var front []oraclePt
	for _, q := range all {
		dominated := false
		for _, p := range all {
			if p.idx == q.idx {
				continue
			}
			if p.out <= q.out && p.rt <= q.rt && p.dl <= q.dl &&
				(p.out < q.out || p.rt < q.rt || p.dl < q.dl || p.idx < q.idx) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, q)
		}
	}
	// The oracle's iteration is already in ascending candidate index; sort
	// into the canonical (outlays, rt, dl, idx) order Points uses.
	for i := 1; i < len(front); i++ {
		for j := i; j > 0; j-- {
			a, b := &front[j-1], &front[j]
			if a.out < b.out || (a.out == b.out && (a.rt < b.rt ||
				(a.rt == b.rt && (a.dl < b.dl || (a.dl == b.dl && a.idx < b.idx))))) {
				break
			}
			front[j-1], front[j] = front[j], front[j-1]
		}
	}
	return front
}

// frontierEquals asserts the surface matches the oracle point for point
// — coordinates, candidate indices, and the decoded choices.
func frontierEquals(t *testing.T, label string, want []oraclePt, got *FrontierResult, knobs []Knob) {
	t.Helper()
	if len(got.Points) != len(want) {
		t.Errorf("%s: %d frontier points, oracle has %d", label, len(got.Points), len(want))
		return
	}
	choice := make([]int, len(knobs))
	for i, w := range want {
		g := &got.Points[i]
		if g.CandidateIndex != w.idx || g.RecoveryTime != w.rt || g.DataLoss != w.dl || g.Outlays != w.out {
			t.Errorf("%s: point %d = (idx %d, rt %v, dl %v, out %v), oracle (idx %d, rt %v, dl %v, out %v)",
				label, i, g.CandidateIndex, g.RecoveryTime, g.DataLoss, g.Outlays, w.idx, w.rt, w.dl, w.out)
			continue
		}
		decodeChoice(choice, knobs, w.idx)
		if len(g.Choices) != len(knobs) {
			t.Errorf("%s: point %d has %d choices, want %d", label, i, len(g.Choices), len(knobs))
			continue
		}
		for ki, k := range knobs {
			if g.Choices[ki].Knob != k.Name || g.Choices[ki].Option != k.Options[choice[ki]] {
				t.Errorf("%s: point %d choice %d = %v, want {%s %s}",
					label, i, ki, g.Choices[ki], k.Name, k.Options[choice[ki]])
			}
		}
	}
}

// TestFrontierMatchesOracleProperty: across random knob spaces, worker
// counts {1,2,8} and both enumeration paths (legacy fold and forced
// compilation), Frontier returns exactly the oracle's non-dominated
// subset of the exhaustive sweep, and accounts for every candidate.
func TestFrontierMatchesOracleProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	base := casestudy.Baseline()
	for trial := 0; trial < 6; trial++ {
		knobs := randomKnobs(rng)
		space := 1
		for _, k := range knobs {
			space *= len(k.Options)
		}
		want := frontierOracle(t, base, knobs, scenarios())
		for _, workers := range []int{1, 2, 8} {
			for _, batch := range []int{0, 1, 7} {
				label := fmt.Sprintf("trial %d workers %d batch %d (%d candidates)", trial, workers, batch, space)
				fr, err := Frontier(base, knobs, scenarios(), FrontierOpts{Workers: workers, BatchSize: batch})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				frontierEquals(t, label, want, fr, knobs)
				if fr.Evaluations != space || fr.CandidatesPruned != 0 {
					t.Errorf("%s: evaluated %d, pruned %d, want %d / 0",
						label, fr.Evaluations, fr.CandidatesPruned, space)
				}
			}
		}
	}
}

// TestFrontierShardMerge: disjoint shards merge to exactly the
// unsharded surface, with the evaluation counters summing to the space.
func TestFrontierShardMerge(t *testing.T) {
	base := casestudy.Baseline()
	knobs := []Knob{
		PolicyKnob("vaulting", []string{"4-weekly", "weekly"}, vaultPolicyPair()),
		RetCntKnob("vaulting", []int{2, 4, 8, 13}),
		RetCntKnob("backup", []int{7, 14, 28}),
		LinkCountKnob("tape-library", []int{8, 12, 16}),
	}
	const space = 2 * 4 * 3 * 3
	whole, err := Frontier(base, knobs, scenarios(), FrontierOpts{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := frontierOracle(t, base, knobs, scenarios())
	frontierEquals(t, "unsharded", want, whole, knobs)
	for _, m := range []int{1, 2, 3, 5} {
		frs := make([]*FrontierResult, m)
		for k := 0; k < m; k++ {
			fr, err := Frontier(base, knobs, scenarios(), FrontierOpts{
				Workers: 2,
				Shard:   Shard{Index: k, Count: m},
			})
			if err != nil {
				t.Fatalf("shard %d/%d: %v", k, m, err)
			}
			frs[k] = fr
		}
		merged := MergeFrontiers(knobs, frs)
		label := fmt.Sprintf("%d shards", m)
		frontierEquals(t, label, want, merged, knobs)
		if merged.Evaluations != space {
			t.Errorf("%s: merged evaluations %d, want %d", label, merged.Evaluations, space)
		}
	}
}

// TestFrontierPrunedIdentical: dominance pruning must not change the
// surface — only shift candidates from assessed to pruned — and every
// candidate must still be retired exactly once.
func TestFrontierPrunedIdentical(t *testing.T) {
	base := casestudy.Baseline()
	knobs := []Knob{
		PolicyKnob("vaulting", []string{"4-weekly", "weekly"}, vaultPolicyPair()),
		RetCntKnob("vaulting", []int{2, 4, 8, 13, 26, 52, 104, 156}),
		RetCntKnob("backup", []int{7, 14, 28}),
		LinkCountKnob("tape-library", []int{4, 8, 12, 16}),
	}
	const space = 2 * 8 * 3 * 4
	plain, err := Frontier(base, knobs, scenarios(), FrontierOpts{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := frontierOracle(t, base, knobs, scenarios())
	frontierEquals(t, "unpruned", want, plain, knobs)
	for _, workers := range []int{1, 2, 8} {
		label := fmt.Sprintf("pruned workers %d", workers)
		pruned, err := Frontier(base, knobs, scenarios(), FrontierOpts{Workers: workers, Prune: true})
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		frontierEquals(t, label, want, pruned, knobs)
		if pruned.Evaluations+pruned.CandidatesPruned != space {
			t.Errorf("%s: evaluated %d + pruned %d != space %d",
				label, pruned.Evaluations, pruned.CandidatesPruned, space)
		}
		if workers == 1 {
			t.Logf("%s: pruned %d / %d (%.0f%%), %d bounds",
				label, pruned.CandidatesPruned, space,
				100*float64(pruned.CandidatesPruned)/float64(space), pruned.BoundsComputed)
		}
	}
}

// TestFrontierNeverDominated pins the structural invariant directly: no
// returned point may dominate another, and no two may share all three
// coordinates (ties collapse to one index).
func TestFrontierNeverDominated(t *testing.T) {
	base := casestudy.Baseline()
	fr, err := Frontier(base, table7Knobs(), scenarios(), FrontierOpts{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Points) == 0 {
		t.Fatal("empty frontier on the table-7 space")
	}
	for i := range fr.Points {
		for j := range fr.Points {
			if i == j {
				continue
			}
			p, q := &fr.Points[i], &fr.Points[j]
			if p.Outlays <= q.Outlays && p.RecoveryTime <= q.RecoveryTime && p.DataLoss <= q.DataLoss {
				if p.Outlays < q.Outlays || p.RecoveryTime < q.RecoveryTime || p.DataLoss < q.DataLoss {
					t.Errorf("point %d dominates point %d", i, j)
				} else {
					t.Errorf("points %d and %d share coordinates (idx %d / %d)",
						i, j, p.CandidateIndex, q.CandidateIndex)
				}
			}
		}
	}
}

// TestFrontierSetAdd pins the streaming set's tie-break semantics:
// duplicates collapse to the lowest index regardless of insertion
// order, dominated points are evicted, and incomparable points coexist.
func TestFrontierSetAdd(t *testing.T) {
	a := fpoint{idx: 5, rt: 10, dl: 10, out: 100}
	dup := fpoint{idx: 2, rt: 10, dl: 10, out: 100}
	dom := fpoint{idx: 9, rt: 5, dl: 10, out: 100} // dominates a and dup
	inc := fpoint{idx: 7, rt: 50, dl: 50, out: 10} // incomparable with all

	for name, order := range map[string][]fpoint{
		"dup-after":  {a, dup, inc},
		"dup-before": {dup, a, inc},
		"dom-last":   {inc, a, dup, dom},
		"dom-first":  {dom, inc, a, dup},
	} {
		var s frontierSet
		for _, p := range order {
			s.add(p)
		}
		want := map[int]bool{inc.idx: true}
		if name == "dom-last" || name == "dom-first" {
			want[dom.idx] = true
		} else {
			want[dup.idx] = true // lowest index of the duplicate pair
		}
		if len(s.pts) != len(want) {
			t.Errorf("%s: %d points kept, want %d (%v)", name, len(s.pts), len(want), s.pts)
			continue
		}
		for _, p := range s.pts {
			if !want[p.idx] {
				t.Errorf("%s: kept index %d, want set %v", name, p.idx, want)
			}
		}
	}
}

// TestFrontierPruneAgainst pins the batch-elimination rule on synthetic
// floors: certain loss prunes unconditionally, a strictly cheaper
// achieved point at or below the floor's worst-case RT/DL prunes, and
// anything weaker must not.
func TestFrontierPruneAgainst(t *testing.T) {
	scs := scenarios()
	mkFloor := func(out units.Money, rt, dl time.Duration) *SubtreeFloor {
		fl := &SubtreeFloor{
			Outlays:      out,
			Scenarios:    scs,
			RecoveryTime: make([]time.Duration, len(scs)),
			DataLoss:     make([]time.Duration, len(scs)),
			Penalties:    make([]units.Money, len(scs)),
			Lost:         make([]bool, len(scs)),
		}
		fl.RecoveryTime[0] = rt
		fl.DataLoss[0] = dl
		return fl
	}
	var s frontierSet
	s.add(fpoint{idx: 0, rt: 10 * time.Hour, dl: time.Hour, out: 500})

	if !s.pruneAgainst(mkFloor(1000, 20*time.Hour, 2*time.Hour)) {
		t.Error("achieved point strictly dominates the floor; batch must prune")
	}
	if s.pruneAgainst(mkFloor(1000, 5*time.Hour, 2*time.Hour)) {
		t.Error("floor RT below the achieved point's; batch may hold a faster candidate")
	}
	if s.pruneAgainst(mkFloor(400, 20*time.Hour, 2*time.Hour)) {
		t.Error("floor outlays below the achieved point's; batch may hold a cheaper candidate")
	}
	if s.pruneAgainst(mkFloor(500, 20*time.Hour, 2*time.Hour)) {
		t.Error("equal outlays is not strict dominance; batch must not prune")
	}
	lost := mkFloor(100, 0, 0)
	lost.Lost[1] = true
	if !lost.Lost[1] || !s.pruneAgainst(lost) {
		t.Error("certain whole-object loss excludes every candidate; batch must prune")
	}
	var empty frontierSet
	if empty.pruneAgainst(lost) != true {
		t.Error("certain loss prunes even with no achieved points")
	}
}

// TestFrontierBudget: the budget rejects oversized spaces exactly like
// the exhaustive search.
func TestFrontierBudget(t *testing.T) {
	base := casestudy.Baseline()
	knobs := table7Knobs()
	if _, err := Frontier(base, knobs, scenarios(), FrontierOpts{Budget: 3}); err == nil {
		t.Fatal("want ErrSpaceTooLarge, got nil")
	}
	if _, err := Frontier(base, knobs, scenarios(), FrontierOpts{Budget: 100}); err != nil {
		t.Fatalf("budget 100 on a 12-candidate space: %v", err)
	}
}
