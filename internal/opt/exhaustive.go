package opt

import (
	"fmt"
	"math"

	"stordep/internal/core"
	"stordep/internal/failure"
	"stordep/internal/units"
	"stordep/internal/whatif"
)

// maxExhaustive bounds full enumeration; beyond this use Tune.
const maxExhaustive = 4096

// ErrSpaceTooLarge is returned when the knob product exceeds the
// exhaustive-search budget.
var ErrSpaceTooLarge = fmt.Errorf("opt: knob space exceeds %d combinations; use Tune", maxExhaustive)

// Exhaustive evaluates every knob combination and returns the global
// optimum. Coordinate descent (Tune) can stall on interacting knobs;
// exhaustive search cannot, at the price of evaluating the full product
// space (bounded at 4096 combinations — at ~20 µs per evaluation that is
// well under a second).
func Exhaustive(base *core.Design, knobs []Knob, scenarios []failure.Scenario, objective Objective) (*Solution, error) {
	if len(knobs) == 0 {
		return nil, ErrNoKnobs
	}
	space := 1
	for _, k := range knobs {
		if k.Name == "" || len(k.Options) == 0 || k.Apply == nil {
			return nil, fmt.Errorf("%w: %q", ErrBadKnob, k.Name)
		}
		space *= len(k.Options)
		if space > maxExhaustive {
			return nil, ErrSpaceTooLarge
		}
	}
	if len(scenarios) == 0 {
		return nil, ErrNoScenarios
	}
	if objective == nil {
		objective = WorstTotalObjective()
	}

	sol := &Solution{Passes: 1, Score: units.Money(math.Inf(1))}
	choice := make([]int, len(knobs))
	var best []int

	var sweep func(depth int) error
	sweep = func(depth int) error {
		if depth == len(knobs) {
			d, err := Clone(base)
			if err != nil {
				return err
			}
			for i, k := range knobs {
				if err := k.Apply(d, choice[i]); err != nil {
					return fmt.Errorf("opt: knob %q option %d: %w", k.Name, choice[i], err)
				}
			}
			results, err := whatif.Evaluate([]*core.Design{d}, scenarios)
			if err != nil {
				return err
			}
			sol.Evaluations++
			if s := objective(results[0]); s < sol.Score {
				sol.Score = s
				best = append(best[:0], choice...)
			}
			return nil
		}
		for i := range knobs[depth].Options {
			choice[depth] = i
			if err := sweep(depth + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := sweep(0); err != nil {
		return nil, err
	}
	if best == nil || math.IsInf(float64(sol.Score), 1) {
		return nil, ErrNoFeasible
	}

	tuned, err := Clone(base)
	if err != nil {
		return nil, err
	}
	for i, k := range knobs {
		if err := k.Apply(tuned, best[i]); err != nil {
			return nil, err
		}
		sol.Choices = append(sol.Choices, Choice{Knob: k.Name, Option: k.Options[best[i]]})
	}
	sol.Design = tuned
	return sol, nil
}
