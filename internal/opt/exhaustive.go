package opt

import (
	"fmt"
	"math"

	"stordep/internal/core"
	"stordep/internal/failure"
	"stordep/internal/parallel"
	"stordep/internal/units"
)

// maxExhaustive bounds full enumeration; beyond this use Tune.
const maxExhaustive = 4096

// ErrSpaceTooLarge is returned when the knob product exceeds the
// exhaustive-search budget.
var ErrSpaceTooLarge = fmt.Errorf("opt: knob space exceeds %d combinations; use Tune", maxExhaustive)

// Exhaustive evaluates every knob combination on all CPUs and returns
// the global optimum; see ExhaustiveWorkers.
func Exhaustive(base *core.Design, knobs []Knob, scenarios []failure.Scenario, objective Objective) (*Solution, error) {
	return ExhaustiveWorkers(base, knobs, scenarios, objective, 0)
}

// ExhaustiveWorkers evaluates every knob combination and returns the
// global optimum. Coordinate descent (Tune) can stall on interacting
// knobs; exhaustive search cannot, at the price of evaluating the full
// product space (bounded at 4096 combinations).
//
// Candidates are enumerated in lexicographic choice order and scored
// concurrently on at most workers goroutines (anything < 1 means
// runtime.NumCPU()); each is built via the shared scoreCandidate path —
// one structural clone and one direct evaluation, with none of the
// per-candidate slice wrapping the first implementation paid. The
// optimum is the first strict minimum in enumeration order, so parallel
// and serial searches return byte-identical Solutions (ties break to
// the lowest choice index).
func ExhaustiveWorkers(base *core.Design, knobs []Knob, scenarios []failure.Scenario, objective Objective, workers int) (*Solution, error) {
	space := 1
	for _, k := range knobs {
		if k.Name == "" || len(k.Options) == 0 || k.Apply == nil {
			break // validate reports the precise error
		}
		space *= len(k.Options)
		if space > maxExhaustive {
			return nil, ErrSpaceTooLarge
		}
	}
	objective, err := validate(knobs, scenarios, objective)
	if err != nil {
		return nil, err
	}

	// Enumerate the knob product in lexicographic order — the order the
	// serial recursive sweep visited, which the argmin below relies on
	// for deterministic tie-breaking.
	combos := make([][]int, space)
	choice := make([]int, len(knobs))
	for i := range combos {
		combos[i] = append([]int(nil), choice...)
		for d := len(knobs) - 1; d >= 0; d-- {
			choice[d]++
			if choice[d] < len(knobs[d].Options) {
				break
			}
			choice[d] = 0
		}
	}

	scores, err := parallel.Map(workers, space, func(i int) (units.Money, error) {
		return scoreCandidate(base, knobs, scenarios, objective, combos[i])
	})
	if err != nil {
		return nil, err
	}

	sol := &Solution{Passes: 1, Evaluations: space, Score: units.Money(math.Inf(1))}
	best := -1
	for i, s := range scores {
		if s < sol.Score {
			sol.Score = s
			best = i
		}
	}
	if best < 0 || math.IsInf(float64(sol.Score), 1) {
		return nil, ErrNoFeasible
	}

	tuned, err := applyChoice(base, knobs, combos[best])
	if err != nil {
		return nil, err
	}
	for i, k := range knobs {
		sol.Choices = append(sol.Choices, Choice{Knob: k.Name, Option: k.Options[combos[best][i]]})
	}
	sol.Design = tuned
	return sol, nil
}
