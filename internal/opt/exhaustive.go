package opt

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"stordep/internal/core"
	"stordep/internal/failure"
	"stordep/internal/parallel"
	"stordep/internal/units"
	"stordep/internal/whatif"
)

// ErrSpaceTooLarge is returned when the knob product exceeds the caller's
// evaluation budget (ExhaustiveOptions.Budget), or overflows int. With no
// budget set the search is unbounded: enumeration is streaming, so memory
// stays O(workers) regardless of the space size and only time limits how
// far it can go.
var ErrSpaceTooLarge = errors.New("opt: knob space exceeds the evaluation budget")

// ErrBadShard is returned for an out-of-range shard specification.
var ErrBadShard = errors.New("opt: invalid shard")

// Shard selects one contiguous slice of the candidate space so an
// exhaustive search can be split across processes or hosts: shard k of m
// covers roughly space/m candidates, and every candidate belongs to
// exactly one shard. The zero value means "the whole space".
//
// Each shard's Solution records the winner's global CandidateIndex, so
// results from independently run shards combine with MergeShards into
// exactly the Solution an unsharded search returns: lowest score wins,
// ties break to the lowest global candidate index.
type Shard struct {
	// Index is the 0-based shard number, in [0, Count).
	Index int
	// Count is the total number of shards; 0 (or 1 with Index 0)
	// disables sharding.
	Count int
}

// Validate rejects an out-of-range shard specification; the zero value
// (the whole space) is valid. Exported so wire-format decoders
// (internal/dist) can reject bad shard assignments before dispatch.
func (s Shard) Validate() error {
	if s.Count == 0 && s.Index == 0 {
		return nil
	}
	if s.Count < 1 || s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("%w: shard %d/%d", ErrBadShard, s.Index, s.Count)
	}
	return nil
}

// Bounds returns the half-open global-index range [lo, hi) this shard
// covers over a space of the given size. Exported so other sharded
// fan-outs (internal/dist's Monte Carlo trial ranges) partition exactly
// like the candidate search does.
func (s Shard) Bounds(space int) (lo, hi int) { return s.bounds(space) }

// bounds returns the half-open global-index range [lo, hi) this shard
// covers. Shards are contiguous and balanced: the first space%Count
// shards get one extra candidate. Computed additively so no intermediate
// product can overflow even when space is near MaxInt.
func (s Shard) bounds(space int) (lo, hi int) {
	if s.Count <= 1 {
		return 0, space
	}
	q, r := space/s.Count, space%s.Count
	extra := s.Index
	if extra > r {
		extra = r
	}
	lo = s.Index*q + extra
	hi = lo + q
	if s.Index < r {
		hi++
	}
	return lo, hi
}

// ExhaustiveOptions configures ExhaustiveOpts. The zero value searches
// the whole space on all CPUs with no budget.
type ExhaustiveOptions struct {
	// Workers caps the evaluation goroutines; anything < 1 means
	// runtime.NumCPU().
	Workers int
	// Budget, when > 0, bounds the total space size (not the shard's
	// slice): a larger knob product returns ErrSpaceTooLarge. 0 means
	// unbounded.
	Budget int
	// Shard restricts the search to one slice of the space; the zero
	// value searches everything.
	Shard Shard
	// Progress, when non-nil, is incremented once per retired candidate
	// — evaluated, or pruned wholesale when Prune is set — and may be
	// read concurrently: a live counter for progress reporting and
	// heartbeats (internal/dist streams it to the coordinator). It does
	// not affect the search. The batched compiled path advances it once
	// per batch rather than per candidate; the final total equals
	// Evaluations plus CandidatesPruned.
	Progress *atomic.Int64
	// BatchSize is the candidate count per batched assessment step on
	// the compiled fast path. 0 picks the default (64) and only compiles
	// spaces large enough to amortize the compilation pass; any positive
	// value forces a compilation attempt regardless of space size (the
	// search still falls back to the legacy fold when the space cannot
	// be compiled). The result is byte-identical for every batch size.
	BatchSize int
	// Prune enables bound-guided subtree pruning on the compiled batched
	// path: before a batch is assessed, an admissible lower bound on
	// every candidate in its index range is computed from the compiled
	// group tables (see bound.go), and the batch is skipped wholesale
	// when the bound exceeds the best score achieved so far. Requires
	// Floor; a Prune search also forces a compilation attempt, and runs
	// unpruned (still exact) whenever the space cannot be compiled or
	// the bound tables fail their admissibility verification. Pruning
	// never changes the returned Solution — score, CandidateIndex,
	// Choices and Design are byte-identical to the unpruned search —
	// only Evaluations/CandidatesPruned accounting differs. Up to 16
	// spread candidates are pre-assessed to seed the incumbent; they are
	// not counted in Evaluations.
	Prune bool
	// Floor derives an objective lower bound from a subtree's component
	// floors. It must be the admissible counterpart of the search's
	// Objective: WorstTotalFloor for WorstTotalObjective, ExpectedFloor
	// for ExpectedObjective, ConstrainedOutlayFloor for
	// ConstrainedOutlayObjective. Ignored unless Prune is set.
	Floor ObjectiveFloor
	// Incumbent, when > 0, seeds the pruning incumbent with an already
	// achieved score — e.g. another shard's validated winner — so bounds
	// tighten from the first batch. It must be a score truly achieved by
	// some candidate of the same space and objective; an unachievable
	// value could prune the true argmin.
	Incumbent units.Money
	// Stats, when non-nil, receives the search's candidate accounting —
	// assessed vs pruned — even when the search ends in ErrNoFeasible,
	// so distributed shards report honest totals either way.
	Stats *SearchStats
}

// SearchStats reports how an exhaustive search's candidate slice was
// retired: every candidate is either assessed (scored) or pruned
// (eliminated wholesale by an admissible bound), so Assessed+Pruned
// equals the searched slice's size. BoundsComputed counts the subtree
// bounds evaluated, whether or not they pruned.
type SearchStats struct {
	Assessed       int
	Pruned         int
	BoundsComputed int
}

// SpaceSize returns the total candidate count of a knob set — the
// knob-option product — refusing products that overflow int with
// ErrSpaceTooLarge. Coordinators use it to pick a shard count before
// dispatching (internal/dist).
func SpaceSize(knobs []Knob) (int, error) {
	return spaceSize(knobs)
}

// Size returns the number of candidates this shard covers in a space of
// the given size — what a shard's Evaluations will be, since streaming
// exhaustive search evaluates every candidate in its slice exactly once.
func (s Shard) Size(space int) int {
	lo, hi := s.bounds(space)
	return hi - lo
}

// spaceSize returns the knob-option product, refusing (rather than
// silently wrapping) products that overflow int.
func spaceSize(knobs []Knob) (int, error) {
	space := 1
	for _, k := range knobs {
		n := len(k.Options)
		if space > math.MaxInt/n {
			return 0, fmt.Errorf("%w: knob-option product overflows int", ErrSpaceTooLarge)
		}
		space *= n
	}
	return space, nil
}

// decodeChoice writes candidate idx's option vector into choice using
// mixed-radix decoding with the last knob least significant — the same
// lexicographic order the materialized enumeration used, so global
// candidate indices (and therefore tie-breaking) are stable across the
// slice-based, streaming and sharded implementations.
func decodeChoice(choice []int, knobs []Knob, idx int) {
	for d := len(knobs) - 1; d >= 0; d-- {
		n := len(knobs[d].Options)
		choice[d] = idx % n
		idx /= n
	}
}

func allRevertible(knobs []Knob) bool {
	for _, k := range knobs {
		if !k.Revertible {
			return false
		}
	}
	return true
}

// exhAcc is one worker's streaming-argmin state: the best (score, global
// index) seen so far plus the reusable per-worker machinery — the choice
// decode buffer, the optional scratch design, and the allocation-lean
// evaluator with its Result buffer.
type exhAcc struct {
	bestScore units.Money
	bestIdx   int // global candidate index; -1 = none yet
	evals     int
	choice    []int
	scratch   *core.Design // reused across candidates when all knobs are revertible
	eval      whatif.Evaluator
	res       whatif.Result
}

// Exhaustive evaluates every knob combination on all CPUs and returns
// the global optimum; see ExhaustiveOpts.
func Exhaustive(base *core.Design, knobs []Knob, scenarios []failure.Scenario, objective Objective) (*Solution, error) {
	return ExhaustiveOpts(base, knobs, scenarios, objective, ExhaustiveOptions{})
}

// ExhaustiveWorkers is Exhaustive on a bounded worker pool; see
// ExhaustiveOpts.
func ExhaustiveWorkers(base *core.Design, knobs []Knob, scenarios []failure.Scenario, objective Objective, workers int) (*Solution, error) {
	return ExhaustiveOpts(base, knobs, scenarios, objective, ExhaustiveOptions{Workers: workers})
}

// ExhaustiveOpts evaluates every knob combination (or one Shard of them)
// and returns the optimum. Coordinate descent (Tune) can stall on
// interacting knobs; exhaustive search cannot, at the price of evaluating
// the full product space.
//
// Enumeration is streaming: candidate choice vectors are decoded from
// their global index on the fly (mixed-radix, last knob least
// significant) and folded into per-worker argmin accumulators, so memory
// stays O(workers) however large the space is — there is no materialized
// combination list and no score slice. When every knob declares itself
// Revertible, each worker also reuses a single cloned design across all
// its candidates instead of cloning per candidate.
//
// Large spaces (or any search with Options.BatchSize set) first try to
// compile the knob space into flat parameter tables (see compile.go)
// and assess candidates in batches through core.BatchKernel — the same
// argmin over the same scores with near-zero steady-state allocation.
// Compilation is strictly an accelerator: candidates the tables cannot
// represent take the legacy clone+build path row by row, and any
// compile-time doubt (probe mismatch, oversized groups) falls back to
// the legacy fold for the whole space.
//
// The result is byte-identical for every worker count and batch size,
// and across slice-based, streaming, batched and sharded searches: the
// optimum is the lowest score with ties broken to the lowest global
// candidate index, a rule that is insensitive to how the index space
// was partitioned. Candidates scoring +Inf (unbuildable or infeasible)
// are never selected; if nothing scores below +Inf the search returns
// ErrNoFeasible.
func ExhaustiveOpts(base *core.Design, knobs []Knob, scenarios []failure.Scenario, objective Objective, opts ExhaustiveOptions) (*Solution, error) {
	objective, err := validate(knobs, scenarios, objective)
	if err != nil {
		return nil, err
	}
	if err := opts.Shard.Validate(); err != nil {
		return nil, err
	}
	space, err := spaceSize(knobs)
	if err != nil {
		return nil, err
	}
	if opts.Budget > 0 && space > opts.Budget {
		return nil, fmt.Errorf("%w: %d combinations > budget %d; raise the budget, shard the space, or use Tune",
			ErrSpaceTooLarge, space, opts.Budget)
	}
	lo, hi := opts.Shard.bounds(space)
	reuse := allRevertible(knobs)

	var bestScore units.Money
	var bestIdx int
	var tally searchTally
	if cs := maybeCompile(base, knobs, scenarios, hi-lo, opts); cs != nil {
		batch := opts.BatchSize
		if batch <= 0 {
			batch = defaultBatchSize
		}
		if batch > hi-lo {
			batch = hi - lo
		}
		var pr *pruner
		if opts.Prune {
			pr = newPruner(cs, opts.Floor, opts.Incumbent)
		}
		bestScore, bestIdx, tally, err = cs.search(lo, hi, batch, objective, opts, reuse, pr)
	} else {
		bestScore, bestIdx, tally.evals, err = exhaustiveFold(base, knobs, scenarios, objective, opts, lo, hi, reuse)
	}
	if opts.Stats != nil {
		*opts.Stats = SearchStats{Assessed: tally.evals, Pruned: tally.pruned, BoundsComputed: tally.bounds}
	}
	if err != nil {
		return nil, err
	}
	if bestIdx < 0 || math.IsInf(float64(bestScore), 1) {
		return nil, ErrNoFeasible
	}

	choice := make([]int, len(knobs))
	decodeChoice(choice, knobs, bestIdx)
	tuned, err := applyChoice(base, knobs, choice)
	if err != nil {
		return nil, err
	}
	sol := &Solution{
		Design:           tuned,
		Score:            bestScore,
		Evaluations:      tally.evals,
		Passes:           1,
		CandidateIndex:   bestIdx,
		CandidatesPruned: tally.pruned,
		BoundsComputed:   tally.bounds,
	}
	for i, k := range knobs {
		sol.Choices = append(sol.Choices, Choice{Knob: k.Name, Option: k.Options[choice[i]]})
	}
	return sol, nil
}

// exhaustiveFold is the legacy per-candidate streaming fold: one clone
// (or scratch reuse) + build + assess per candidate. It remains the
// reference semantics the compiled batched path must match bit for bit,
// and the fallback whenever compilation is skipped or rejected.
func exhaustiveFold(base *core.Design, knobs []Knob, scenarios []failure.Scenario, objective Objective, opts ExhaustiveOptions, lo, hi int, reuse bool) (units.Money, int, int, error) {
	acc := func() *exhAcc {
		return &exhAcc{
			bestScore: units.Money(math.Inf(1)),
			bestIdx:   -1,
			choice:    make([]int, len(knobs)),
		}
	}
	fold := func(a *exhAcc, i int) (*exhAcc, error) {
		global := lo + i
		decodeChoice(a.choice, knobs, global)
		d := a.scratch
		if d == nil {
			fresh, err := Clone(base)
			if err != nil {
				return a, err
			}
			d = fresh
			if reuse {
				a.scratch = fresh
			}
		}
		// The profiled and unprofiled paths are spelled out separately so
		// the common (disabled) case pays neither closure allocations nor
		// a pprof.Do call per candidate.
		if profilingEnabled() {
			var applyErr error
			doPhase(labelsBuild, func() { applyErr = applyChoiceTo(d, knobs, a.choice) })
			if applyErr != nil {
				return a, applyErr
			}
			doPhase(labelsAssess, func() { a.eval.EvaluateInto(d, scenarios, &a.res) })
		} else {
			if err := applyChoiceTo(d, knobs, a.choice); err != nil {
				return a, err
			}
			a.eval.EvaluateInto(d, scenarios, &a.res)
		}
		s := objective(a.res)
		a.evals++
		if opts.Progress != nil {
			opts.Progress.Add(1)
		}
		if s < a.bestScore {
			a.bestScore = s
			a.bestIdx = global
		}
		return a, nil
	}
	merge := func(a, b *exhAcc) *exhAcc {
		a.evals += b.evals
		if b.bestIdx >= 0 && (a.bestIdx < 0 || b.bestScore < a.bestScore ||
			(b.bestScore == a.bestScore && b.bestIdx < a.bestIdx)) {
			a.bestScore, a.bestIdx = b.bestScore, b.bestIdx
		}
		return a
	}
	mergePhase := merge
	if profilingEnabled() {
		mergePhase = func(a, b *exhAcc) *exhAcc {
			doPhase(labelsReduce, func() { a = merge(a, b) })
			return a
		}
	}

	final, err := parallel.Reduce(opts.Workers, hi-lo, acc, fold, mergePhase)
	if err != nil {
		return 0, 0, 0, err
	}
	return final.bestScore, final.bestIdx, final.evals, nil
}

// MergeShards combines the per-shard Solutions of one sharded exhaustive
// search into the Solution the unsharded search would return: the lowest
// score wins, ties break to the lowest global CandidateIndex. Shards that
// found nothing feasible (or covered an empty slice) contribute nil;
// MergeShards returns ErrNoFeasible only when every entry is nil. The
// merged Solution shares the winning shard's Design and Choices, with
// Evaluations, MemoHits, CandidatesPruned and BoundsComputed summed
// over the non-nil shards.
//
// Shards cover disjoint index slices, so two entries with the same
// CandidateIndex can only be duplicate reports of the same shard —
// speculative re-dispatch (internal/dist) races two workers on a
// straggling shard and both may answer. Duplicates are deduped, not
// treated as distinct tie-break entries: only the first occurrence
// contributes to the merged Evaluations/MemoHits, so the totals match
// the unsharded search no matter how many duplicate reports arrive.
//
// Every non-nil entry must come from exhaustive enumeration: a Solution
// without a valid CandidateIndex (e.g. Tune's, which carries -1) has no
// place in the global index order and would corrupt the deterministic
// tie-break, so MergeShards rejects it with ErrBadShard.
func MergeShards(sols []*Solution) (*Solution, error) {
	var best *Solution
	evals, memo, pruned, bounds := 0, 0, 0, 0
	seen := make(map[int]bool, len(sols))
	for i, s := range sols {
		if s == nil {
			continue
		}
		if s.CandidateIndex < 0 {
			return nil, fmt.Errorf("%w: solution %d has CandidateIndex %d, not from exhaustive enumeration",
				ErrBadShard, i, s.CandidateIndex)
		}
		if seen[s.CandidateIndex] {
			continue
		}
		seen[s.CandidateIndex] = true
		evals += s.Evaluations
		memo += s.MemoHits
		pruned += s.CandidatesPruned
		bounds += s.BoundsComputed
		if best == nil || s.Score < best.Score ||
			(s.Score == best.Score && s.CandidateIndex < best.CandidateIndex) {
			best = s
		}
	}
	if best == nil {
		return nil, ErrNoFeasible
	}
	merged := *best
	merged.Evaluations = evals
	merged.MemoHits = memo
	merged.CandidatesPruned = pruned
	merged.BoundsComputed = bounds
	return &merged, nil
}
