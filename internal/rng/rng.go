// Package rng holds the seed-splitting scheme shared by the campaign
// engines (internal/chaos, internal/mc). Both derive an independent
// deterministic stream per run/trial from one campaign seed; keeping
// the derivation in a single place guarantees the two engines can never
// drift apart, and that committed digests stay replayable.
package rng

import "math/rand"

// SplitMix64 is the SplitMix64 finalizing mixer (Steele, Lea & Flood).
// It decorrelates adjacent inputs, so consecutive run indices hash to
// unrelated seeds.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SubSeed derives the sub-seed for one run of a campaign. The mixing of
// run before the xor keeps low run indices (0, 1, 2, ...) from carving
// predictable low-bit patterns into the campaign seed.
func SubSeed(seed int64, run int) int64 {
	return int64(SplitMix64(uint64(seed) ^ SplitMix64(uint64(run))))
}

// Run returns the deterministic random stream for one campaign run.
func Run(seed int64, run int) *rand.Rand {
	return rand.New(rand.NewSource(SubSeed(seed, run)))
}
