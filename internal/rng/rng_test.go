package rng

import "testing"

// TestSplitMix64Reference pins the mixer against published SplitMix64
// reference outputs (the first three outputs of the generator seeded
// with 0 are the mixer applied to 1x, 2x, 3x the golden gamma).
func TestSplitMix64Reference(t *testing.T) {
	const gamma = 0x9e3779b97f4a7c15
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
	}
	for i, w := range want {
		// The reference generator advances state by gamma then mixes;
		// SplitMix64 here adds gamma itself, so feed (i)*gamma.
		if got := SplitMix64(uint64(i) * gamma); got != w {
			t.Errorf("SplitMix64(%d*gamma) = %#x, want %#x", i, got, w)
		}
	}
}

func TestSubSeedDeterministic(t *testing.T) {
	if SubSeed(3, 7) != SubSeed(3, 7) {
		t.Fatal("SubSeed not deterministic")
	}
	if SubSeed(3, 7) == SubSeed(3, 8) {
		t.Error("adjacent runs share a sub-seed")
	}
	if SubSeed(3, 7) == SubSeed(4, 7) {
		t.Error("adjacent seeds share a sub-seed")
	}
}

func TestRunStreamsIndependent(t *testing.T) {
	a, b := Run(3, 7), Run(3, 7)
	for i := 0; i < 16; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("Run not deterministic")
		}
	}
	if Run(3, 7).Int63() == Run(3, 8).Int63() && Run(3, 7).Int63() == Run(4, 7).Int63() {
		t.Error("streams for different (seed, run) pairs should differ")
	}
}

// TestSubSeedSpread checks the derivation doesn't collapse many runs of
// one campaign onto few distinct seeds.
func TestSubSeedSpread(t *testing.T) {
	seen := make(map[int64]bool)
	for run := 0; run < 10000; run++ {
		seen[SubSeed(42, run)] = true
	}
	if len(seen) != 10000 {
		t.Fatalf("collisions: %d distinct sub-seeds for 10000 runs", len(seen))
	}
}
