package core_test

import (
	"math"
	"testing"
	"time"

	"stordep/internal/core"
	"stordep/internal/cost"
	"stordep/internal/device"
	"stordep/internal/failure"
	"stordep/internal/hierarchy"
	"stordep/internal/protect"
	"stordep/internal/units"
	"stordep/internal/workload"
)

// erasureDesign spreads cello over a 5-of-3 erasure code across arrays in
// five distinct regions, disseminated over WAN links.
func erasureDesign(fragments, threshold int) *core.Design {
	regionNames := []string{"west", "central", "east", "north", "south", "overseas"}
	devices := []core.PlacedDevice{
		{Spec: device.MidrangeArray(), Placement: failure.Placement{Array: "a0", Building: "b0", Site: "hq", Region: "west"}},
		{Spec: device.WANLinks(4)},
	}
	sites := make([]string, 0, fragments)
	for i := 0; i < fragments; i++ {
		spec := device.RemoteMirrorArray()
		spec.Name = spec.Name + string(rune('a'+i))
		region := regionNames[(i+1)%len(regionNames)]
		devices = append(devices, core.PlacedDevice{
			Spec: spec,
			Placement: failure.Placement{
				Array: spec.Name, Building: "b", Site: "frag-" + spec.Name, Region: region,
			},
		})
		sites = append(sites, spec.Name)
	}
	pol := hierarchy.Policy{
		Primary: hierarchy.WindowSet{AccW: time.Hour, PropW: time.Hour, Rep: hierarchy.RepPartial},
		RetCnt:  2,
		RetW:    2 * time.Hour,
		CopyRep: hierarchy.RepFull,
	}
	return &core.Design{
		Name:         "erasure",
		Workload:     workload.Cello(),
		Requirements: cost.CaseStudyRequirements(),
		Devices:      devices,
		Primary:      &protect.Primary{Array: device.NameDiskArray},
		Levels: []protect.Technique{
			&protect.ErasureCode{
				Fragments: fragments,
				Threshold: threshold,
				Sites:     sites,
				Links:     device.NameWANLinks,
				Pol:       pol,
			},
		},
		Facility: &core.Facility{
			Placement:     failure.Placement{Site: "rec-site", Region: "rec-region"},
			ProvisionTime: 9 * time.Hour,
			CostFactor:    0.2,
		},
	}
}

func TestErasureValidate(t *testing.T) {
	if err := erasureDesign(5, 3).Validate(); err != nil {
		t.Fatalf("valid erasure design rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*protect.ErasureCode)
	}{
		{"threshold above fragments", func(e *protect.ErasureCode) { e.Threshold = 9 }},
		{"zero threshold", func(e *protect.ErasureCode) { e.Threshold = 0 }},
		{"site count mismatch", func(e *protect.ErasureCode) { e.Sites = e.Sites[:2] }},
		{"duplicate sites", func(e *protect.ErasureCode) { e.Sites[1] = e.Sites[0] }},
		{"empty site", func(e *protect.ErasureCode) { e.Sites[0] = "" }},
		{"no links", func(e *protect.ErasureCode) { e.Links = "" }},
		{"bad policy", func(e *protect.ErasureCode) { e.Pol = hierarchy.Policy{} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := erasureDesign(5, 3)
			tt.mutate(d.Levels[0].(*protect.ErasureCode))
			if err := d.Validate(); err == nil {
				t.Error("invalid erasure config accepted")
			}
		})
	}
	// A site name not in the fleet is caught at the design level.
	d := erasureDesign(5, 3)
	d.Levels[0].(*protect.ErasureCode).Sites[4] = "ghost"
	if err := d.Validate(); err == nil {
		t.Error("ghost site accepted")
	}
}

func TestErasureDemands(t *testing.T) {
	sys, err := core.Build(erasureDesign(5, 3))
	if err != nil {
		t.Fatal(err)
	}
	w := workload.Cello()
	ec := sys.Design().Levels[0].(*protect.ErasureCode)

	// Links carry batchUpdR(1h) x 5/3.
	links := sys.Device(device.NameWANLinks)
	wantLink := units.Rate(5.0/3.0) * w.BatchUpdateRate(time.Hour)
	var linkDemand units.Rate
	for _, dem := range links.Demands() {
		if dem.Technique == ec.Name() {
			linkDemand += dem.Bandwidth
		}
	}
	if math.Abs(float64(linkDemand-wantLink)) > 1 {
		t.Errorf("link demand = %v, want %v", linkDemand, wantLink)
	}

	// Each fragment site stores retCnt x dataCap/3.
	wantCap := 2 * w.DataCap / 3
	for _, site := range ec.CopyDevices() {
		dev := sys.Device(site)
		if got := dev.TotalCapacity(); math.Abs(float64(got-wantCap)) > 1 {
			t.Errorf("%s capacity = %v, want %v", site, got, wantCap)
		}
	}

	// Total fragment storage is the n/m stretch (5/3 x dataCap per
	// retained cycle), well below 5 full mirrors.
	var total units.ByteSize
	for _, site := range ec.CopyDevices() {
		total += sys.Device(site).TotalCapacity()
	}
	if stretch := float64(total) / float64(2*w.DataCap); math.Abs(stretch-5.0/3.0) > 0.01 {
		t.Errorf("storage stretch = %.3f, want 1.667", stretch)
	}
}

// TestErasureThresholdSurvivability: the level survives any failure that
// leaves at least 3 of 5 fragment sites; a region failure takes out only
// the co-regional fragment.
func TestErasureThresholdSurvivability(t *testing.T) {
	sys, err := core.Build(erasureDesign(5, 3))
	if err != nil {
		t.Fatal(err)
	}
	// Site disaster at hq: all five fragments survive.
	if got := sys.SurvivingLevels(failure.Scenario{Scope: failure.ScopeSite}); len(got) != 1 {
		t.Errorf("site survivors = %v", got)
	}
	// Region failure (west): the hq array dies; fragment "a" sits in
	// central etc. — the design places fragment regions round-robin, so at
	// most one fragment shares the west region. 4 >= 3 survive.
	if got := sys.SurvivingLevels(failure.Scenario{Scope: failure.ScopeRegion}); len(got) != 1 {
		t.Errorf("region survivors = %v", got)
	}
	a, err := sys.Assess(failure.Scenario{Scope: failure.ScopeRegion})
	if err != nil {
		t.Fatal(err)
	}
	if a.WholeObjectLost {
		t.Fatal("erasure coding should survive a region failure")
	}
	if a.Plan.SourceName != "erasure-code" {
		t.Errorf("source = %s", a.Plan.SourceName)
	}
	// Worst-case loss: accW + propW of the dissemination policy.
	if a.DataLoss != 2*time.Hour {
		t.Errorf("loss = %v, want 2h", a.DataLoss)
	}
}

// TestErasureBelowThresholdLost: a 3-of-2 code with all fragments in one
// region dies with that region.
func TestErasureBelowThresholdLost(t *testing.T) {
	d := erasureDesign(3, 2)
	// Collapse every fragment into the primary's region.
	for i := range d.Devices {
		if d.Devices[i].Spec.Kind == device.KindStorage {
			d.Devices[i].Placement.Region = "west"
		}
	}
	d.Facility.Placement.Region = "east"
	sys, err := core.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sys.Assess(failure.Scenario{Scope: failure.ScopeRegion})
	if err != nil {
		t.Fatal(err)
	}
	if !a.WholeObjectLost {
		t.Error("co-regional fragments should not survive a region failure")
	}
}

// TestErasureVsMirrorEconomics: at equal protection scope, the 5-of-3
// code stores 1.67x the object where full mirroring to five sites would
// store 5x — the storage argument for erasure codes.
func TestErasureVsMirrorEconomics(t *testing.T) {
	sys, err := core.Build(erasureDesign(5, 3))
	if err != nil {
		t.Fatal(err)
	}
	var fragStorage units.ByteSize
	ec := sys.Design().Levels[0].(*protect.ErasureCode)
	for _, site := range ec.CopyDevices() {
		fragStorage += sys.Device(site).TotalCapacity()
	}
	fullMirrors := 5 * 2 * workload.Cello().DataCap // retCnt 2 at five sites
	if fragStorage*2 >= fullMirrors {
		t.Errorf("erasure storage %v should be well below mirrored %v", fragStorage, fullMirrors)
	}
}
