package core_test

import (
	"testing"
	"time"

	"stordep/internal/casestudy"
	"stordep/internal/core"
	"stordep/internal/failure"
)

// briefScenarios covers the brief path's branches: recoverable failures
// at several scopes, an unrecoverable wide-scope failure, and an aged
// recovery target.
func briefScenarios() []failure.Scenario {
	return []failure.Scenario{
		{Scope: failure.ScopeObject},
		{Scope: failure.ScopeArray},
		{Scope: failure.ScopeBuilding},
		{Scope: failure.ScopeSite},
		{Scope: failure.ScopeRegion},
		{Scope: failure.ScopeArray, TargetAge: 36 * time.Hour},
	}
}

// TestAssessBriefMatchesAssess: the scoring-grade brief carries exactly
// the full Assessment's output metrics, scenario by scenario, with and
// without a reused Scratch.
func TestAssessBriefMatchesAssess(t *testing.T) {
	for _, d := range append(casestudy.WhatIfDesigns(), casestudy.AsyncBMirror(4)) {
		sys, err := core.Build(d)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		var scratch core.Scratch
		for _, sc := range briefScenarios() {
			a, err := sys.Assess(sc)
			if err != nil {
				t.Fatalf("%s/%s: assess: %v", d.Name, sc.DisplayName(), err)
			}
			for name, b := range map[string]func() (core.Brief, error){
				"scratch": func() (core.Brief, error) { return sys.AssessBrief(sc, &scratch) },
				"nil":     func() (core.Brief, error) { return sys.AssessBrief(sc, nil) },
			} {
				got, err := b()
				if err != nil {
					t.Fatalf("%s/%s (%s): brief: %v", d.Name, sc.DisplayName(), name, err)
				}
				want := core.Brief{
					RecoveryTime:    a.RecoveryTime,
					DataLoss:        a.DataLoss,
					WholeObjectLost: a.WholeObjectLost,
					Penalties:       a.Cost.Penalties.Total(),
					Total:           a.Cost.Total(),
				}
				if got != want {
					t.Errorf("%s/%s (%s): brief = %+v, want %+v", d.Name, sc.DisplayName(), name, got, want)
				}
			}
		}
	}
}

// TestAssessBriefRejectsInvalidScenario: validation errors surface the
// same way as on the full path.
func TestAssessBriefRejectsInvalidScenario(t *testing.T) {
	sys, err := core.Build(casestudy.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AssessBrief(failure.Scenario{Scope: failure.Scope(99)}, nil); err == nil {
		t.Error("invalid scenario accepted")
	}
}

// TestAssessBriefAllocBudget: with a warmed Scratch, assessing a
// scenario allocates nothing — the contract the streaming optimizer's
// inner loop depends on.
func TestAssessBriefAllocBudget(t *testing.T) {
	sys, err := core.Build(casestudy.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	var scratch core.Scratch
	sc := failure.Scenario{Scope: failure.ScopeSite}
	if _, err := sys.AssessBrief(sc, &scratch); err != nil { // warm the buffers
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := sys.AssessBrief(sc, &scratch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("AssessBrief allocates %.1f objects per call with warm scratch, want 0", allocs)
	}
}
