package core

import (
	"errors"
	"fmt"

	"stordep/internal/protect"
)

// ErrNotCloneable is returned by Clone for techniques that do not
// implement protect.Cloner (all built-ins do).
var ErrNotCloneable = errors.New("core: technique does not support structural cloning")

// Clone returns a structural deep copy of the design: mutating the
// clone's workload curve, devices, technique policies or facility leaves
// the original untouched. It is the optimizer's per-candidate copy path;
// a hand-written field copy here costs about a microsecond where the
// former config-JSON round trip cost about a hundred (see
// BenchmarkCloneStructural / BenchmarkCloneJSON), which matters because
// the automated-design loop clones once per candidate evaluated.
//
// A property test (internal/chaos) checks the structural copy agrees
// with the config round trip on randomized valid designs.
func (d *Design) Clone() (*Design, error) {
	out := *d
	if d.Workload != nil {
		out.Workload = d.Workload.Clone()
	}
	if d.Devices != nil {
		// PlacedDevice is all-value (spec, cost model, spare, placements).
		out.Devices = make([]PlacedDevice, len(d.Devices))
		copy(out.Devices, d.Devices)
	}
	if d.Primary != nil {
		p := *d.Primary
		out.Primary = &p
	}
	if d.Levels != nil {
		out.Levels = make([]protect.Technique, len(d.Levels))
		for i, tech := range d.Levels {
			c, ok := tech.(protect.Cloner)
			if !ok {
				return nil, fmt.Errorf("%w: level %d (%T)", ErrNotCloneable, i+1, tech)
			}
			out.Levels[i] = c.CloneTechnique()
		}
	}
	if d.Facility != nil {
		f := *d.Facility
		out.Facility = &f
	}
	return &out, nil
}
