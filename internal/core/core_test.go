package core_test

import (
	"errors"
	"math"
	"testing"
	"time"

	"stordep/internal/casestudy"
	"stordep/internal/core"
	"stordep/internal/cost"
	"stordep/internal/device"
	"stordep/internal/failure"
	"stordep/internal/hierarchy"
	"stordep/internal/protect"
	"stordep/internal/units"
	"stordep/internal/workload"
)

func build(t *testing.T, d *core.Design) *core.System {
	t.Helper()
	sys, err := core.Build(d)
	if err != nil {
		t.Fatalf("Build(%s): %v", d.Name, err)
	}
	return sys
}

func assess(t *testing.T, sys *core.System, sc failure.Scenario) *core.Assessment {
	t.Helper()
	a, err := sys.Assess(sc)
	if err != nil {
		t.Fatalf("Assess(%s): %v", sc.DisplayName(), err)
	}
	return a
}

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.4f, want %.4f (±%.4f)", what, got, want, tol)
	}
}

// TestBaselineUtilizationTable5 reproduces Table 5: per-device,
// per-technique normal-mode utilization of the baseline design.
func TestBaselineUtilizationTable5(t *testing.T) {
	sys := build(t, casestudy.Baseline())
	u := sys.Utilization()

	// Overall: capacity bound by the array at 87.4%, bandwidth by the tape
	// library at 3.4%.
	approx(t, u.Cap, 0.874, 0.001, "system capUtil")
	if u.CapDevice != device.NameDiskArray {
		t.Errorf("capacity-binding device = %s", u.CapDevice)
	}
	approx(t, u.BW, 0.034, 0.001, "system bwUtil")
	if u.BWDevice != device.NameTapeLibrary {
		t.Errorf("bandwidth-binding device = %s", u.BWDevice)
	}

	byName := map[string]core.DeviceUtilization{}
	for _, du := range u.PerDevice {
		byName[du.Device] = du
	}

	arr := byName[device.NameDiskArray]
	approx(t, arr.BWUtil, 0.024, 0.001, "array bwUtil")
	approx(t, arr.CapUtil, 0.874, 0.001, "array capUtil")
	// Table 5 parentheticals: 12.4 MB/s, 8.0 TB.
	approx(t, arr.Bandwidth.MBPS(), 12.3, 0.3, "array total MB/s")
	approx(t, float64(arr.Capacity/units.TB), 8.0, 0.1, "array total TB")

	rows := map[string]float64{}
	for _, r := range arr.Rows {
		rows[r.Technique] = r.CapUtil
	}
	approx(t, rows["foreground"], 0.146, 0.001, "foreground capUtil")
	approx(t, rows["split-mirror"], 0.728, 0.001, "split-mirror capUtil")

	lib := byName[device.NameTapeLibrary]
	approx(t, lib.BWUtil, 0.034, 0.001, "library bwUtil")
	approx(t, lib.CapUtil, 0.034, 0.001, "library capUtil")
	approx(t, float64(lib.Capacity/units.TB), 6.6, 0.1, "library TB")

	vault := byName[device.NameTapeVault]
	approx(t, vault.CapUtil, 0.026, 0.001, "vault capUtil")
	approx(t, float64(vault.Capacity/units.TB), 51.8, 0.1, "vault TB")
}

// TestBaselineDependabilityTable6 reproduces Table 6: recovery source,
// recovery time and recent data loss for the three failure scopes.
func TestBaselineDependabilityTable6(t *testing.T) {
	sys := build(t, casestudy.Baseline())
	scs := failure.CaseStudyScenarios()

	object := assess(t, sys, scs[0])
	if object.Plan.SourceName != "split-mirror" {
		t.Errorf("object recovery source = %s, want split-mirror", object.Plan.SourceName)
	}
	if object.DataLoss != 12*time.Hour {
		t.Errorf("object loss = %v, want 12h", object.DataLoss)
	}
	// Table 6: 0.004 s intra-array copy of the 1 MB object.
	approx(t, object.RecoveryTime.Seconds(), 0.004, 0.0005, "object RT seconds")

	arr := assess(t, sys, scs[1])
	if arr.Plan.SourceName != "backup" {
		t.Errorf("array recovery source = %s, want backup", arr.Plan.SourceName)
	}
	if arr.DataLoss != 217*time.Hour {
		t.Errorf("array loss = %vh, want 217h", arr.DataLoss.Hours())
	}
	// Paper: 2.4 hr, dominated by tape transfer. Our min-bandwidth rule
	// yields 1.7 hr (see EXPERIMENTS.md); assert the modeled value.
	approx(t, arr.RecoveryTime.Hours(), 1.70, 0.05, "array RT hours")

	site := assess(t, sys, scs[2])
	if site.Plan.SourceName != "vaulting" {
		t.Errorf("site recovery source = %s, want vaulting", site.Plan.SourceName)
	}
	if site.DataLoss != 1429*time.Hour {
		t.Errorf("site loss = %vh, want 1429h", site.DataLoss.Hours())
	}
	// Paper: 26.4 hr = shipment (24h) + load + transfer, with the 9h
	// facility provisioning overlapped. Ours: 25.6 hr.
	approx(t, site.RecoveryTime.Hours(), 25.6, 0.1, "site RT hours")
	if len(site.Plan.Steps) != 2 {
		t.Fatalf("site recovery steps = %+v, want shipment + restore", site.Plan.Steps)
	}
	if site.Plan.Steps[0].SerFix != 24*time.Hour {
		t.Errorf("shipment transit = %v, want 24h", site.Plan.Steps[0].SerFix)
	}
	if site.Plan.Steps[1].ParFix != 9*time.Hour {
		t.Errorf("facility provisioning = %v, want 9h", site.Plan.Steps[1].ParFix)
	}
}

// TestBaselineCostsFigure5 checks the Figure 5 structure: penalties
// dominate for array and site failures, and outlays split between
// foreground, split mirroring and backup with negligible vaulting.
func TestBaselineCostsFigure5(t *testing.T) {
	sys := build(t, casestudy.Baseline())
	outlays := sys.Outlays()

	total := float64(outlays.Total())
	// Principled spare accounting gives ~$1.16M/yr (the paper's partially
	// published cost book gives $0.97M; see EXPERIMENTS.md).
	approx(t, total/1e6, 1.161, 0.01, "baseline outlays $M")

	byTech, _ := outlays.ByTechnique()
	if byTech["split-mirror"] <= byTech["foreground"]/2 || byTech["foreground"] <= byTech["backup"]/2 {
		t.Errorf("outlays should split roughly evenly: %v", byTech)
	}
	if byTech["vaulting"] >= byTech["backup"]/2 {
		t.Errorf("vaulting outlay should be negligible: %v", byTech)
	}

	scs := failure.CaseStudyScenarios()
	arr := assess(t, sys, scs[1])
	// Penalties dominate outlays for array failure (Figure 5): ~$10.9M of
	// penalties vs ~$1.2M outlays.
	if arr.Cost.Penalties.Total() < 8*arr.Cost.Outlays.Total() {
		t.Errorf("array penalties %v should dwarf outlays %v",
			arr.Cost.Penalties.Total(), arr.Cost.Outlays.Total())
	}
	approx(t, float64(arr.Cost.Penalties.Total())/1e6, 10.93, 0.05, "array penalties $M")

	site := assess(t, sys, scs[2])
	approx(t, float64(site.Cost.Penalties.Total())/1e6, 72.73, 0.1, "site penalties $M")
	// Loss penalties dominate outage penalties for both.
	if site.Cost.Penalties.Loss < 10*site.Cost.Penalties.Outage {
		t.Error("site loss penalty should dominate outage penalty")
	}
}

// TestWhatIfTable7 verifies the decision-relevant shape of Table 7 across
// the six what-if designs: every loss column exactly, and the orderings /
// crossovers the paper draws conclusions from.
func TestWhatIfTable7(t *testing.T) {
	arrSc := failure.Scenario{Scope: failure.ScopeArray}
	siteSc := failure.Scenario{Scope: failure.ScopeSite}

	type row struct {
		arrLossH, siteLossH float64
	}
	want := map[string]row{
		"Baseline":                        {217, 1429},
		"Weekly vault":                    {217, 253},
		"Weekly vault, F+I":               {73, 253},
		"Weekly vault, daily F":           {37, 217},
		"Weekly vault, daily F, snapshot": {37, 217},
		"AsyncB mirror, 1 link(s)":        {2.0 / 60, 2.0 / 60},
		"AsyncB mirror, 10 link(s)":       {2.0 / 60, 2.0 / 60},
	}

	results := map[string]struct{ arr, site *core.Assessment }{}
	for _, d := range casestudy.WhatIfDesigns() {
		sys := build(t, d)
		results[d.Name] = struct{ arr, site *core.Assessment }{
			arr:  assess(t, sys, arrSc),
			site: assess(t, sys, siteSc),
		}
	}
	if len(results) != len(want) {
		t.Fatalf("got %d designs, want %d", len(results), len(want))
	}
	for name, w := range want {
		r, ok := results[name]
		if !ok {
			t.Errorf("missing design %q", name)
			continue
		}
		approx(t, r.arr.DataLoss.Hours(), w.arrLossH, 0.01, name+" array DL")
		approx(t, r.site.DataLoss.Hours(), w.siteLossH, 0.01, name+" site DL")
	}

	// Paper conclusions that must hold:
	// 1. Weekly vaulting slashes site loss penalties vs baseline.
	if !(results["Weekly vault"].site.Cost.Penalties.Total() <
		results["Baseline"].site.Cost.Penalties.Total()/3) {
		t.Error("weekly vaulting should cut site penalties by more than 3x")
	}
	// 2. F+I trades slightly higher array RT for much lower array loss.
	if !(results["Weekly vault, F+I"].arr.RecoveryTime >
		results["Weekly vault"].arr.RecoveryTime) {
		t.Error("F+I should increase array recovery time")
	}
	// 3. Snapshots cost less than split mirrors, all else equal.
	if !(results["Weekly vault, daily F, snapshot"].arr.Cost.Outlays.Total() <
		results["Weekly vault, daily F"].arr.Cost.Outlays.Total()) {
		t.Error("snapshots should reduce outlays")
	}
	// 4. Mirroring reduces loss to minutes.
	if results["AsyncB mirror, 1 link(s)"].site.DataLoss > 3*time.Minute {
		t.Error("asyncB loss should be ~2 minutes")
	}
	// 5. More links cut mirror recovery time dramatically.
	r1 := results["AsyncB mirror, 1 link(s)"].arr.RecoveryTime
	r10 := results["AsyncB mirror, 10 link(s)"].arr.RecoveryTime
	if !(r1 > 5*r10) {
		t.Errorf("10 links should be >5x faster: 1 link %v, 10 links %v", r1, r10)
	}
	// 6. Site recovery stays slower than array recovery with 10 links
	//    (shared-facility provisioning dominates).
	ten := results["AsyncB mirror, 10 link(s)"]
	if !(ten.site.RecoveryTime > ten.arr.RecoveryTime) {
		t.Error("site recovery should exceed array recovery for 10 links")
	}
	// 7. The single-link mirror has the lowest total cost under a site
	//    disaster despite its long recovery ("ironically...").
	minName := ""
	var minTotal units.Money
	for name, r := range results {
		if minName == "" || r.site.Cost.Total() < minTotal {
			minName, minTotal = name, r.site.Cost.Total()
		}
	}
	if minName != "AsyncB mirror, 1 link(s)" {
		t.Errorf("cheapest site-disaster design = %s, want the 1-link mirror", minName)
	}
}

// TestAsyncBOutlays checks the mirror designs' outlay arithmetic against
// the Table 7 caption's link cost model (b x 23535, b in MB/s).
func TestAsyncBOutlays(t *testing.T) {
	one := build(t, casestudy.AsyncBMirror(1)).Outlays().Total()
	ten := build(t, casestudy.AsyncBMirror(10)).Outlays().Total()
	perLink := float64(ten-one) / 9
	approx(t, perLink, 19.375*23535, 1, "incremental link cost")
	approx(t, float64(one)/1e6, 1.0, 0.05, "1-link outlays $M")
	approx(t, float64(ten)/1e6, 5.1, 0.1, "10-link outlays $M")
}

// TestSurvivingLevels checks failure-scope filtering.
func TestSurvivingLevels(t *testing.T) {
	sys := build(t, casestudy.Baseline())
	tests := []struct {
		scope failure.Scope
		want  []int
	}{
		{failure.ScopeObject, []int{1, 2, 3}},
		{failure.ScopeArray, []int{2, 3}},
		{failure.ScopeBuilding, []int{3}},
		{failure.ScopeSite, []int{3}},
		{failure.ScopeRegion, []int{3}}, // vault is in another region
	}
	for _, tt := range tests {
		got := sys.SurvivingLevels(failure.Scenario{Scope: tt.scope})
		if len(got) != len(tt.want) {
			t.Errorf("%v survivors = %v, want %v", tt.scope, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("%v survivors = %v, want %v", tt.scope, got, tt.want)
				break
			}
		}
	}
}

// TestUnrecoverableScenarios: a design with no facility cannot recover
// from a site disaster that destroys the only readers.
func TestUnrecoverableScenarios(t *testing.T) {
	d := casestudy.Baseline()
	d.Facility = nil
	sys := build(t, d)
	a := assess(t, sys, failure.Scenario{Scope: failure.ScopeSite})
	if !a.WholeObjectLost {
		t.Fatal("site disaster without facility should lose the object")
	}
	if a.RecoveryTime != units.Forever || a.DataLoss != units.Forever {
		t.Error("unrecoverable should report Forever")
	}
	if !math.IsInf(float64(a.Cost.Penalties.Total()), 1) {
		t.Error("unrecoverable penalties should be infinite")
	}
}

func TestTargetTooOldIsWholeObjectLoss(t *testing.T) {
	sys := build(t, casestudy.Baseline())
	a := assess(t, sys, failure.Scenario{
		Scope:     failure.ScopeObject,
		TargetAge: 10 * units.Year,
	})
	if !a.WholeObjectLost {
		t.Error("a ten-year-old target predates all retention")
	}
}

// TestObjectRollbackUsesMirrorNotBackup: a 40-hour-old target is too old
// for the 36-hour mirror window but covered by tape backup.
func TestObjectRollbackDeepTarget(t *testing.T) {
	sys := build(t, casestudy.Baseline())
	a := assess(t, sys, failure.Scenario{
		Scope:       failure.ScopeObject,
		TargetAge:   2 * units.Week,
		RecoverSize: units.MB,
	})
	if a.Plan.SourceName != "backup" {
		t.Errorf("2-week rollback source = %s, want backup", a.Plan.SourceName)
	}
	if a.DataLoss != units.Week {
		t.Errorf("covered backup rollback loss = %v, want 1wk accW", a.DataLoss)
	}
}

func TestDesignValidateErrors(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*core.Design)
		wantErr error
	}{
		{"no workload", func(d *core.Design) { d.Workload = nil }, core.ErrNoWorkload},
		{"bad workload", func(d *core.Design) { d.Workload = &workload.Workload{} }, nil},
		{"no primary", func(d *core.Design) { d.Primary = nil }, core.ErrNoPrimary},
		{"no devices", func(d *core.Design) { d.Devices = nil }, core.ErrNoDevices},
		{"dup device", func(d *core.Design) { d.Devices = append(d.Devices, d.Devices[0]) }, core.ErrDupDevice},
		{"primary unknown array", func(d *core.Design) { d.Primary = &protect.Primary{Array: "ghost"} }, core.ErrUnknownLevel},
		{"level unknown device", func(d *core.Design) {
			d.Levels[0] = &protect.SplitMirror{Array: "ghost", Pol: casestudy.SplitMirrorPolicy()}
		}, core.ErrUnknownLevel},
		{"bad facility", func(d *core.Design) { d.Facility.CostFactor = -1 }, core.ErrBadFacility},
		{"bad requirements", func(d *core.Design) {
			d.Requirements = cost.Requirements{UnavailPenaltyRate: -1}
		}, nil},
		{"bad level policy", func(d *core.Design) {
			d.Levels[0] = &protect.SplitMirror{Array: device.NameDiskArray}
		}, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := casestudy.Baseline()
			tt.mutate(d)
			err := d.Validate()
			if err == nil {
				t.Fatal("Validate() = nil, want error")
			}
			if tt.wantErr != nil && !errors.Is(err, tt.wantErr) {
				t.Errorf("Validate() = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

// TestBuildRejectsOverload: scale the workload until the array overflows.
func TestBuildRejectsOverload(t *testing.T) {
	d := casestudy.Baseline()
	big, err := d.Workload.Scale(3)
	if err != nil {
		t.Fatal(err)
	}
	d.Workload = big // 3 x 1360 GB x 6 copies x RAID-1 >> 18688 GB
	if _, err := core.Build(d); !errors.Is(err, device.ErrCapOverload) {
		t.Errorf("Build = %v, want ErrCapOverload", err)
	}
}

func TestAssessRejectsInvalidScenario(t *testing.T) {
	sys := build(t, casestudy.Baseline())
	if _, err := sys.Assess(failure.Scenario{Scope: 0}); err == nil {
		t.Error("invalid scenario accepted")
	}
}

func TestAssessAll(t *testing.T) {
	sys := build(t, casestudy.Baseline())
	as, err := sys.AssessAll(failure.CaseStudyScenarios())
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 3 {
		t.Fatalf("got %d assessments", len(as))
	}
	// Losses strictly increase with blast radius in the baseline.
	if !(as[0].DataLoss < as[1].DataLoss && as[1].DataLoss < as[2].DataLoss) {
		t.Error("loss should grow with failure scope")
	}
	if _, err := sys.AssessAll([]failure.Scenario{{Scope: 0}}); err == nil {
		t.Error("AssessAll should propagate scenario errors")
	}
}

func TestBaselineWarnings(t *testing.T) {
	sys := build(t, casestudy.Baseline())
	warns := sys.Warnings()
	if len(warns) != 1 {
		t.Errorf("baseline warnings = %v, want the vault holdW warning", warns)
	}
}

func TestSystemAccessors(t *testing.T) {
	d := casestudy.Baseline()
	sys := build(t, d)
	if sys.Design() != d {
		t.Error("Design accessor")
	}
	if got := len(sys.Chain()); got != 3 {
		t.Errorf("chain levels = %d", got)
	}
	if sys.Device(device.NameDiskArray) == nil {
		t.Error("Device accessor")
	}
	if sys.Device("ghost") != nil {
		t.Error("ghost device should be nil")
	}
	if got := len(sys.Devices()); got != 4 {
		t.Errorf("devices = %d, want 4", got)
	}
	names := sys.TechniqueNames()
	if len(names) != 4 || names[0] != "foreground" {
		t.Errorf("TechniqueNames = %v", names)
	}
}

// TestMirrorSiteRecoveryUsesFacility: with the recovery facility at a
// third site, a site disaster provisioning (9h) gates the mirror restore.
func TestMirrorSiteRecoveryUsesFacility(t *testing.T) {
	sys := build(t, casestudy.AsyncBMirror(10))
	a := assess(t, sys, failure.Scenario{Scope: failure.ScopeSite})
	if a.Plan.SourceName != "async-batch-mirror" {
		t.Errorf("source = %s", a.Plan.SourceName)
	}
	// 9h provisioning + ~2h over ten links.
	approx(t, a.RecoveryTime.Hours(), 11.0, 0.2, "10-link site RT")

	arr := assess(t, sys, failure.Scenario{Scope: failure.ScopeArray})
	// Hot spare (72s) + ~2h transfer.
	approx(t, arr.RecoveryTime.Hours(), 2.0, 0.1, "10-link array RT")
}

func TestAssessDegradedCompound(t *testing.T) {
	sys := build(t, casestudy.Baseline())
	sc := failure.Scenario{Scope: failure.ScopeArray}
	healthy := assess(t, sys, sc)

	// A compound outage covering the recovery path shifts the loss by the
	// recovery level's accumulated outage, like AssessDegraded does for a
	// single level.
	chain := sys.Chain()
	backup := chain.Index("backup")
	vault := len(chain)
	a, err := sys.AssessDegradedCompound(sc, []hierarchy.LevelOutage{
		{Level: backup, Outage: 2 * units.Week},
		{Level: vault, Outage: units.Week},
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.WholeObjectLost {
		t.Fatal("compound degraded assessment lost the object")
	}
	if a.DataLoss < healthy.DataLoss {
		t.Errorf("compound degraded loss %v below healthy %v", a.DataLoss, healthy.DataLoss)
	}
	single, err := sys.AssessDegraded(sc, "backup", 2*units.Week)
	if err != nil {
		t.Fatal(err)
	}
	if a.DataLoss < single.DataLoss {
		t.Errorf("compound loss %v below single backup-outage loss %v", a.DataLoss, single.DataLoss)
	}

	// Invalid outage lists surface as errors.
	if _, err := sys.AssessDegradedCompound(sc, []hierarchy.LevelOutage{{Level: 0, Outage: time.Hour}}); err == nil {
		t.Error("level 0 accepted")
	}
	if _, err := sys.AssessDegradedCompound(sc, []hierarchy.LevelOutage{{Level: 1, Outage: -time.Hour}}); err == nil {
		t.Error("negative outage accepted")
	}
}
