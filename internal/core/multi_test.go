package core_test

import (
	"errors"
	"testing"
	"time"

	"stordep/internal/casestudy"
	"stordep/internal/core"
	"stordep/internal/cost"
	"stordep/internal/device"
	"stordep/internal/failure"
	"stordep/internal/hierarchy"
	"stordep/internal/protect"
	"stordep/internal/units"
	"stordep/internal/workload"
)

// multiDesign builds a two-object service over the case-study fleet: a
// catalog volume (small, mirrored 4-hourly) and a data volume (the cello
// workload, baseline protection) that depends on the catalog.
func multiDesign(t *testing.T) *core.MultiDesign {
	t.Helper()
	base := casestudy.Baseline()

	catalog := &workload.Workload{
		Name:          "catalog",
		DataCap:       50 * units.GB,
		AvgAccessRate: 200 * units.KBPerSec,
		AvgUpdateRate: 100 * units.KBPerSec,
		BurstMult:     4,
		BatchCurve: []workload.BatchPoint{
			{Window: time.Minute, Rate: 90 * units.KBPerSec},
			{Window: 12 * time.Hour, Rate: 40 * units.KBPerSec},
		},
	}
	catalogMirror := hierarchyPolicy(t, 4*time.Hour, 10) // 36h of 4-hourly mirrors
	return &core.MultiDesign{
		Name:         "retail-service",
		Requirements: cost.CaseStudyRequirements(),
		Devices:      base.Devices,
		Facility:     base.Facility,
		Objects: []core.ObjectSpec{
			{
				Name:     "catalog",
				Workload: catalog,
				Primary:  &protect.Primary{Array: device.NameDiskArray},
				Levels: []protect.Technique{
					&protect.SplitMirror{InstanceName: "catalog-mirror", Array: device.NameDiskArray, Pol: catalogMirror},
					&protect.Backup{InstanceName: "catalog-backup", SourceArray: device.NameDiskArray,
						Target: device.NameTapeLibrary, Pol: casestudy.BackupPolicy()},
				},
			},
			{
				Name:      "orders",
				Workload:  workload.Cello(),
				Primary:   &protect.Primary{Array: device.NameDiskArray},
				DependsOn: []string{"catalog"},
				Levels: []protect.Technique{
					&protect.SplitMirror{InstanceName: "orders-mirror", Array: device.NameDiskArray, Pol: casestudy.SplitMirrorPolicy()},
					&protect.Backup{InstanceName: "orders-backup", SourceArray: device.NameDiskArray,
						Target: device.NameTapeLibrary, Pol: casestudy.BackupPolicy()},
				},
			},
		},
	}
}

func hierarchyPolicy(t *testing.T, accW time.Duration, retCnt int) (pol hierarchy.Policy) {
	t.Helper()
	pol = hierarchy.Policy{
		Primary: hierarchy.WindowSet{AccW: accW, Rep: hierarchy.RepFull},
		RetCnt:  retCnt,
		RetW:    time.Duration(retCnt) * accW,
		CopyRep: hierarchy.RepFull,
	}
	if err := pol.Validate(); err != nil {
		t.Fatal(err)
	}
	return pol
}

func TestMultiBuildAndUtilization(t *testing.T) {
	ms, err := core.BuildMulti(multiDesign(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := ms.Objects(); len(got) != 2 || got[0] != "catalog" || got[1] != "orders" {
		t.Errorf("objects = %v", got)
	}
	// Shared-fleet aggregation: the array carries both objects' demands.
	u := ms.Utilization()
	if u.Cap <= 0.873 {
		t.Errorf("aggregate capUtil = %.4f, want above the single-object 0.873", u.Cap)
	}
	if ms.Outlays().Total() <= 0 {
		t.Error("no outlays")
	}
	// Per-object view exists and shares devices.
	if ms.Object("catalog") == nil || ms.Object("orders") == nil {
		t.Fatal("missing object systems")
	}
	if ms.Object("nope") != nil {
		t.Error("ghost object")
	}
}

func TestMultiAggregateOverload(t *testing.T) {
	md := multiDesign(t)
	// Two 1360 GB objects with five mirrors each fit; four do not.
	big, err := workload.Cello().Scale(1.7)
	if err != nil {
		t.Fatal(err)
	}
	md.Objects[0].Workload = big
	if _, err := core.BuildMulti(md); !errors.Is(err, device.ErrCapOverload) {
		t.Errorf("BuildMulti = %v, want ErrCapOverload", err)
	}
}

func TestMultiValidateErrors(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*core.MultiDesign)
		wantErr error
	}{
		{"no objects", func(md *core.MultiDesign) { md.Objects = nil }, core.ErrNoObjects},
		{"dup object", func(md *core.MultiDesign) { md.Objects[1].Name = "catalog" }, core.ErrDupObject},
		{"empty object name", func(md *core.MultiDesign) { md.Objects[0].Name = "" }, core.ErrDupObject},
		{"dup technique", func(md *core.MultiDesign) {
			md.Objects[1].Levels = md.Objects[0].Levels
		}, core.ErrDupTech},
		{"dup technique within object", func(md *core.MultiDesign) {
			md.Objects[0].Levels = append(md.Objects[0].Levels, md.Objects[0].Levels[0])
		}, core.ErrDupTech},
		{"unknown dep", func(md *core.MultiDesign) {
			md.Objects[1].DependsOn = []string{"ghost"}
		}, core.ErrUnknownDep},
		{"empty dep name", func(md *core.MultiDesign) {
			md.Objects[1].DependsOn = []string{""}
		}, core.ErrUnknownDep},
		{"cycle", func(md *core.MultiDesign) {
			md.Objects[0].DependsOn = []string{"orders"}
		}, core.ErrDependCycle},
		{"self cycle", func(md *core.MultiDesign) {
			md.Objects[0].DependsOn = []string{"catalog"}
		}, core.ErrDependCycle},
		{"three-node cycle", func(md *core.MultiDesign) {
			web := md.Objects[0]
			web.Name = "web"
			web.Workload = web.Workload.Clone()
			web.Workload.Name = "web"
			web.Levels = []protect.Technique{
				&protect.Backup{InstanceName: "web-backup", SourceArray: device.NameDiskArray,
					Target: device.NameTapeLibrary, Pol: casestudy.BackupPolicy()},
			}
			web.DependsOn = []string{"orders"}
			md.Objects = append(md.Objects, web)
			md.Objects[0].DependsOn = []string{"web"}
		}, core.ErrDependCycle},
		{"invalid object design", func(md *core.MultiDesign) {
			md.Objects[0].Workload = nil
		}, core.ErrNoWorkload},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			md := multiDesign(t)
			tt.mutate(md)
			if err := md.Validate(); !errors.Is(err, tt.wantErr) {
				t.Errorf("Validate() = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestMultiAssessDependencies(t *testing.T) {
	ms, err := core.BuildMulti(multiDesign(t))
	if err != nil {
		t.Fatal(err)
	}
	sa, err := ms.Assess(failure.Scenario{Scope: failure.ScopeArray})
	if err != nil {
		t.Fatal(err)
	}
	if len(sa.Objects) != 2 {
		t.Fatalf("objects = %d", len(sa.Objects))
	}
	byName := map[string]core.ObjectAssessment{}
	for _, oa := range sa.Objects {
		byName[oa.Object] = oa
	}
	cat, orders := byName["catalog"], byName["orders"]
	// The catalog recovers on its own schedule; orders serialize behind it.
	if cat.EffectiveRT != cat.RecoveryTime {
		t.Errorf("catalog effective RT = %v, own %v", cat.EffectiveRT, cat.RecoveryTime)
	}
	if orders.EffectiveRT != cat.RecoveryTime+orders.RecoveryTime {
		t.Errorf("orders effective RT = %v, want %v + %v",
			orders.EffectiveRT, cat.RecoveryTime, orders.RecoveryTime)
	}
	// Service metrics take the critical path and the worst loss.
	if sa.RecoveryTime != orders.EffectiveRT {
		t.Errorf("service RT = %v, want %v", sa.RecoveryTime, orders.EffectiveRT)
	}
	if sa.DataLoss < orders.DataLoss || sa.DataLoss < cat.DataLoss {
		t.Errorf("service DL = %v below object losses", sa.DataLoss)
	}
	// Penalties follow the service metrics.
	wantPen := cost.Assess(cost.CaseStudyRequirements(), sa.RecoveryTime, sa.DataLoss)
	if sa.Cost.Penalties != wantPen {
		t.Errorf("penalties = %+v, want %+v", sa.Cost.Penalties, wantPen)
	}
}

func TestMultiAssessObjectScope(t *testing.T) {
	ms, err := core.BuildMulti(multiDesign(t))
	if err != nil {
		t.Fatal(err)
	}
	// Object-scope corruption: both objects roll back from their mirrors;
	// catalog mirrors split 4-hourly so the service-level loss is the
	// orders mirror's 12h window.
	sa, err := ms.Assess(failure.Scenario{Scope: failure.ScopeObject, TargetAge: 24 * time.Hour, RecoverSize: units.MB})
	if err != nil {
		t.Fatal(err)
	}
	if sa.DataLoss != 12*time.Hour {
		t.Errorf("service DL = %v, want the orders mirror's 12h", sa.DataLoss)
	}
}

func TestMultiUnrecoverableObjectPropagates(t *testing.T) {
	md := multiDesign(t)
	md.Facility = nil
	ms, err := core.BuildMulti(md)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := ms.Assess(failure.Scenario{Scope: failure.ScopeSite})
	if err != nil {
		t.Fatal(err)
	}
	if sa.RecoveryTime != units.Forever || sa.DataLoss != units.Forever {
		t.Errorf("service should be unrecoverable: RT %v DL %v", sa.RecoveryTime, sa.DataLoss)
	}
}
