package core

import (
	"errors"
	"testing"
	"time"

	"stordep/internal/cost"
	"stordep/internal/device"
	"stordep/internal/failure"
	"stordep/internal/hierarchy"
	"stordep/internal/protect"
	"stordep/internal/units"
	"stordep/internal/workload"
)

// cloneFixture is a design touching every reference field Clone must
// deep-copy: workload curve, device slice, primary, a cyclic-policy
// technique (Secondary pointer), a multi-site technique (Sites slice)
// and a facility.
func cloneFixture() *Design {
	pol := hierarchy.Policy{
		Primary: hierarchy.WindowSet{AccW: 48 * time.Hour, PropW: 24 * time.Hour, Rep: hierarchy.RepFull},
		Secondary: &hierarchy.WindowSet{
			AccW: 12 * time.Hour, PropW: 6 * time.Hour, Rep: hierarchy.RepPartial,
		},
		CycleCnt: 3,
		RetCnt:   4, RetW: 6 * units.Week,
		CopyRep: hierarchy.RepFull,
	}
	ecPol := hierarchy.Policy{
		Primary: hierarchy.WindowSet{AccW: time.Hour, Rep: hierarchy.RepFull},
		RetCnt:  1, RetW: units.Day, CopyRep: hierarchy.RepFull,
	}
	return &Design{
		Name:         "clone-fixture",
		Workload:     workload.Cello(),
		Requirements: cost.CaseStudyRequirements(),
		Devices: []PlacedDevice{
			{Spec: device.MidrangeArray(), Placement: failure.Placement{Array: "a", Site: "s1"}},
			{Spec: device.TapeLibrary(), Placement: failure.Placement{Array: "lib", Site: "s1"}},
		},
		Primary: &protect.Primary{Array: device.NameDiskArray},
		Levels: []protect.Technique{
			&protect.Backup{SourceArray: device.NameDiskArray, Target: device.NameTapeLibrary, Pol: pol},
			&protect.ErasureCode{
				Fragments: 2, Threshold: 1,
				Sites: []string{device.NameDiskArray, device.NameTapeLibrary},
				Links: device.NameDiskArray, Pol: ecPol,
			},
		},
		Facility: &Facility{ProvisionTime: 9 * time.Hour, CostFactor: 0.2},
	}
}

func TestCloneIndependence(t *testing.T) {
	base := cloneFixture()
	clone, err := base.Clone()
	if err != nil {
		t.Fatal(err)
	}
	// Mutate every reference field of the clone.
	clone.Workload.BatchCurve[0].Rate = 0
	clone.Devices[0].Spec.MaxCapSlots = 1
	clone.Primary.Array = "elsewhere"
	clone.Levels[0].(*protect.Backup).Pol.Secondary.AccW = time.Minute
	clone.Levels[1].(*protect.ErasureCode).Sites[0] = "mutated"
	clone.Facility.CostFactor = 99

	if base.Workload.BatchCurve[0].Rate == 0 {
		t.Error("workload curve aliased")
	}
	if base.Devices[0].Spec.MaxCapSlots == 1 {
		t.Error("devices aliased")
	}
	if base.Primary.Array != device.NameDiskArray {
		t.Error("primary aliased")
	}
	if base.Levels[0].(*protect.Backup).Pol.Secondary.AccW == time.Minute {
		t.Error("policy secondary window aliased")
	}
	if base.Levels[1].(*protect.ErasureCode).Sites[0] == "mutated" {
		t.Error("erasure sites aliased")
	}
	if base.Facility.CostFactor == 99 {
		t.Error("facility aliased")
	}
}

func TestCloneEmptyAndNilFields(t *testing.T) {
	clone, err := (&Design{Name: "empty"}).Clone()
	if err != nil {
		t.Fatal(err)
	}
	if clone.Name != "empty" || clone.Workload != nil || clone.Primary != nil ||
		clone.Devices != nil || clone.Levels != nil || clone.Facility != nil {
		t.Errorf("empty clone = %+v", clone)
	}
}

// uncloneable is a Technique without CloneTechnique.
type uncloneable struct{ protect.Technique }

func TestCloneRejectsUnknownTechnique(t *testing.T) {
	d := cloneFixture()
	d.Levels = append(d.Levels, uncloneable{})
	if _, err := d.Clone(); !errors.Is(err, ErrNotCloneable) {
		t.Errorf("err = %v, want ErrNotCloneable", err)
	}
}

// TestCloneBuildsIdentically: the clone assesses exactly like the
// original under a scenario battery.
func TestCloneBuildsIdentically(t *testing.T) {
	base := cloneFixture()
	base.Levels = base.Levels[:1] // the erasure fixture reuses devices; keep it simple
	clone, err := base.Clone()
	if err != nil {
		t.Fatal(err)
	}
	sysA, errA := Build(base)
	sysB, errB := Build(clone)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("build divergence: %v vs %v", errA, errB)
	}
	if errA != nil {
		return
	}
	for _, sc := range []failure.Scenario{{Scope: failure.ScopeArray}, {Scope: failure.ScopeSite}} {
		a, errA := sysA.Assess(sc)
		b, errB := sysB.Assess(sc)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("assess divergence: %v vs %v", errA, errB)
		}
		if errA != nil {
			continue
		}
		if a.RecoveryTime != b.RecoveryTime || a.DataLoss != b.DataLoss || a.Cost.Total() != b.Cost.Total() {
			t.Errorf("scenario %s: clone assessed differently", sc.DisplayName())
		}
	}
}
