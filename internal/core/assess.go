package core

import (
	"errors"
	"fmt"
	"time"

	"stordep/internal/cost"
	"stordep/internal/device"
	"stordep/internal/failure"
	"stordep/internal/hierarchy"
	"stordep/internal/protect"
	"stordep/internal/recovery"
	"stordep/internal/units"
)

// Assessment is the full dependability evaluation of a design under one
// failure scenario: the four output metrics of Table 1 plus the resolved
// recovery plan.
type Assessment struct {
	// Scenario is the evaluated failure.
	Scenario failure.Scenario
	// Utilization is the normal-mode system utilization (scenario-
	// independent, repeated here for self-contained reports).
	Utilization Utilization
	// Plan is the resolved recovery path. For an unrecoverable scenario
	// Plan.SourceLevel is 0 and Steps is empty.
	Plan recovery.Plan
	// RecoveryTime is the worst-case time until the application runs
	// again (units.Forever when unrecoverable).
	RecoveryTime time.Duration
	// DataLoss is the worst-case recent data loss (units.Forever when the
	// whole object is lost).
	DataLoss time.Duration
	// WholeObjectLost reports the §3.3.3 third case: no surviving level
	// retained a usable RP.
	WholeObjectLost bool
	// Cost is the overall cost: annual outlays plus scenario penalties.
	Cost cost.Summary
	// Warnings carries the design's soft-convention violations.
	Warnings []string
}

// deviceState resolves what serves in a device's role after a failure:
// the device itself, its spare, or facility replacement hardware.
type deviceState struct {
	name      string
	placement failure.Placement
	// provision is the parallelizable fixed delay before the device (or
	// its replacement) is usable.
	provision time.Duration
	// avail is the bandwidth available for recovery transfers.
	avail units.Rate
	// delay is the device's fixed access delay (tape load and seek).
	delay time.Duration
	// replaced reports that spare or facility hardware stands in.
	replaced bool
}

// errNoReplacement marks a failed device with no surviving spare and no
// usable facility: recovery through it is impossible.
var errNoReplacement = errors.New("core: device lost with no surviving replacement")

// resolveDevice determines the post-failure state of the named device
// under the scenario. Intact devices offer their normal-mode available
// bandwidth (recovery transfers are "limited to the remaining bandwidth
// after any RP propagation workload demands have been satisfied",
// §3.3.4); replacements are fresh and offer full device bandwidth after
// their provisioning delay. named controls the report-only replacement
// suffixes ("x (spare)", "x (facility)"); without them the raw device
// name is kept, which is all the timing model compares (device names are
// unique, and the intra-array special case below only applies to an
// intact — undecorated — destination).
func (s *System) resolveDevice(name string, sc failure.Scenario, named bool) (deviceState, error) {
	pd, ok := s.design.placedDevice(name)
	if !ok {
		return deviceState{}, fmt.Errorf("%w: %q", ErrUnknownLevel, name)
	}
	at := s.design.PrimaryPlacement()
	if pd.Placement.Survives(sc.Scope, at) {
		dev := s.devices[name]
		return deviceState{
			name:      name,
			placement: pd.Placement,
			avail:     dev.AvailableBandwidth(),
			delay:     pd.Spec.Delay,
		}, nil
	}
	if sp, ok := s.spareAt[name]; ok && sp.Survives(sc.Scope, at) {
		spare := name
		if named {
			spare = name + " (spare)"
		}
		return deviceState{
			name:      spare,
			placement: sp,
			provision: pd.Spec.Spare.ProvisionTime,
			avail:     pd.Spec.MaxBandwidth(),
			delay:     pd.Spec.Delay,
			replaced:  true,
		}, nil
	}
	if f := s.design.Facility; f != nil && f.Placement.Survives(sc.Scope, at) {
		facility := name
		if named {
			facility = name + " (facility)"
		}
		return deviceState{
			name:      facility,
			placement: f.Placement,
			provision: f.ProvisionTime,
			avail:     pd.Spec.MaxBandwidth(),
			delay:     pd.Spec.Delay,
			replaced:  true,
		}, nil
	}
	return deviceState{}, fmt.Errorf("%w: %q under %s failure", errNoReplacement, name, sc.Scope)
}

// Assess evaluates the design under a failure scenario. Scenarios the
// design cannot recover from produce an Assessment with WholeObjectLost
// or infinite recovery time rather than an error; errors indicate invalid
// input.
func (s *System) Assess(sc failure.Scenario) (*Assessment, error) {
	return s.assessWithChain(sc, s.chain)
}

// AssessDegraded evaluates the scenario in degraded mode: the named
// protection level has been out of service for the outage duration when
// the failure strikes (§5 future work). RPs downstream of the degraded
// level are correspondingly staler, raising the worst-case loss.
func (s *System) AssessDegraded(sc failure.Scenario, levelName string, outage time.Duration) (*Assessment, error) {
	idx := s.chain.Index(levelName)
	if idx == 0 {
		return nil, fmt.Errorf("%w: %q", ErrUnknownLevel, levelName)
	}
	chain, err := s.chain.Degraded(idx, outage)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return s.assessWithChain(sc, chain)
}

// AssessDegradedCompound evaluates the scenario while several protection
// levels are degraded at once (e.g. the backup service down while the
// vault courier is also unavailable). Each named level has been out of
// service for its outage duration when the failure strikes.
func (s *System) AssessDegradedCompound(sc failure.Scenario, outages []hierarchy.LevelOutage) (*Assessment, error) {
	chain, err := s.chain.DegradedCompound(outages)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return s.assessWithChain(sc, chain)
}

func (s *System) assessWithChain(sc failure.Scenario, chain hierarchy.Chain) (*Assessment, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	a := &Assessment{
		Scenario:    sc,
		Utilization: s.Utilization(),
		Warnings:    s.Warnings(),
	}
	plan, lost, err := s.resolvePlan(sc, chain, true, nil)
	if err != nil {
		return nil, err
	}
	if lost {
		s.finishLost(a)
		return a, nil
	}
	a.Plan = plan
	a.RecoveryTime = plan.Time()
	a.DataLoss = plan.Loss
	a.Cost = cost.Summary{
		Outlays:   s.outlays,
		Penalties: cost.Assess(s.design.Requirements, a.RecoveryTime, a.DataLoss),
	}
	return a, nil
}

// resolvePlan is the scenario-evaluation core shared by Assess and
// AssessBrief: pick the recovery source and lay out the timed steps.
// lost reports the §3.3.3 whole-object-lost case. named controls the
// report-only step labels; scratch (optional) supplies reusable buffers.
func (s *System) resolvePlan(sc failure.Scenario, chain hierarchy.Chain, named bool, scratch *Scratch) (plan recovery.Plan, lost bool, err error) {
	var surviving []int
	if scratch != nil {
		surviving = s.appendSurvivingLevels(scratch.surviving[:0], sc)
		scratch.surviving = surviving
	} else {
		surviving = s.SurvivingLevels(sc)
	}
	cand, err := recovery.SelectSource(chain, surviving, sc.TargetAge)
	if err != nil {
		if errors.Is(err, recovery.ErrUnrecoverable) {
			return recovery.Plan{}, true, nil
		}
		return recovery.Plan{}, false, err
	}
	tech := s.design.Levels[cand.Level-1]
	var buf []recovery.Step
	if scratch != nil {
		buf = scratch.steps[:0]
	}
	steps, err := s.recoverySteps(buf, tech, sc, named)
	if scratch != nil && steps != nil {
		scratch.steps = steps[:0]
	}
	if err != nil {
		if errors.Is(err, errNoReplacement) {
			// The data exists but nothing can read or receive it.
			return recovery.Plan{}, true, nil
		}
		return recovery.Plan{}, false, err
	}
	return recovery.Plan{
		SourceLevel: cand.Level,
		SourceName:  tech.Name(),
		Loss:        cand.Loss,
		Steps:       steps,
	}, false, nil
}

// Brief is the scoring-grade subset of an Assessment: the scenario-
// dependent output metrics without the report-only fields (utilization
// breakdown, warnings, named recovery steps). It is what design-space
// search loops need per candidate, computable without a single
// allocation when a Scratch is supplied.
type Brief struct {
	// RecoveryTime is the worst-case time until the application runs
	// again (units.Forever when unrecoverable).
	RecoveryTime time.Duration
	// DataLoss is the worst-case recent data loss (units.Forever when
	// the whole object is lost).
	DataLoss time.Duration
	// WholeObjectLost reports the §3.3.3 third case.
	WholeObjectLost bool
	// Penalties is the total scenario penalty (outage plus loss).
	Penalties units.Money
	// Total is the overall cost: annual outlays plus Penalties.
	Total units.Money
}

// Scratch holds the reusable per-call buffers of AssessBrief, so
// streaming evaluation loops assess scenario after scenario without
// allocating. The zero value is ready to use. A Scratch must not be
// shared between concurrent calls.
type Scratch struct {
	surviving []int
	steps     []recovery.Step
}

// AssessBrief evaluates the design under a failure scenario through the
// same models as Assess, returning only the §3.3 output metrics — it
// skips the utilization breakdown, the soft-convention warnings and the
// recovery-plan step labels, which exist for reports, not scoring. The
// numbers are identical to the corresponding Assess fields. scratch may
// be nil; passing one reuses its buffers across calls.
func (s *System) AssessBrief(sc failure.Scenario, scratch *Scratch) (Brief, error) {
	if err := sc.Validate(); err != nil {
		return Brief{}, err
	}
	plan, lost, err := s.resolvePlan(sc, s.chain, false, scratch)
	if err != nil {
		return Brief{}, err
	}
	var b Brief
	if lost {
		b.WholeObjectLost = true
		b.RecoveryTime = units.Forever
		b.DataLoss = units.Forever
	} else {
		b.RecoveryTime = plan.Time()
		b.DataLoss = plan.Loss
	}
	b.Penalties = cost.Assess(s.design.Requirements, b.RecoveryTime, b.DataLoss).Total()
	b.Total = s.outlaysTotal + b.Penalties
	return b, nil
}

// finishLost fills an assessment for the whole-object-lost case: both
// recovery time and loss are unbounded, and so are the penalties.
func (s *System) finishLost(a *Assessment) {
	a.WholeObjectLost = true
	a.RecoveryTime = units.Forever
	a.DataLoss = units.Forever
	a.Cost = cost.Summary{
		Outlays:   s.outlays,
		Penalties: cost.Assess(s.design.Requirements, units.Forever, units.Forever),
	}
}

// recoverySteps builds the recovery path from the chosen source level to
// the primary copy, skipping intermediate levels that would only add
// latency (§3.2: the recovery-path optimization). The path has at most two
// hops: a media-return hop when retained media must travel back to a
// reader (vault -> tape library), then the data transfer into the
// (possibly replaced) primary array. Steps are appended to buf (which may
// be nil); named controls the report-only hop labels — scoring paths skip
// them, as formatting the labels costs more than the timing model itself.
func (s *System) recoverySteps(buf []recovery.Step, tech protect.Technique, sc failure.Scenario, named bool) ([]recovery.Step, error) {
	dest, err := s.resolveDevice(s.design.Primary.Array, sc, named)
	if err != nil {
		return nil, err
	}
	readName := tech.ReadDevice()
	if ms, ok := tech.(protect.MultiSited); ok {
		// Multi-sited reconstruction streams from a surviving fragment
		// site; source selection already verified the threshold holds.
		if sites := s.survivingCopySites(ms, sc); len(sites) > 0 {
			readName = sites[0]
		}
	}
	read, err := s.resolveDevice(readName, sc, named)
	if err != nil {
		return nil, err
	}

	steps := buf

	// Media-return hop: retained media live on a different device than the
	// one that reads them (vaulted tapes -> library). The transport's
	// fixed delay (shipment transit) serializes ahead of everything that
	// needs the data.
	transport, hasTransport := s.transportSpec(tech)
	if tech.CopyDevice() != tech.ReadDevice() {
		var transit time.Duration
		if hasTransport {
			transit = transport.Delay
		}
		hop := recovery.Step{SerFix: transit}
		if named {
			hop.Name = fmt.Sprintf("%s -> %s", tech.CopyDevice(), read.name)
		}
		steps = append(steps, hop)
	}

	size := sc.RecoverSize
	if size <= 0 {
		size = tech.RestoreSize(s.design.Workload)
	}

	xfer := recovery.Step{
		ParFix: maxDuration(read.provision, dest.provision),
		SerFix: read.delay,
		Size:   size,
	}
	if named {
		xfer.Name = fmt.Sprintf("%s -> %s", read.name, dest.name)
	}
	switch {
	case read.name == dest.name && !dest.replaced:
		// Intra-array copy: reads and writes share one enclosure, halving
		// the effective rate (reproduces the 0.004 s object recovery).
		xfer.Bandwidth = dest.avail / 2
	default:
		xfer.Bandwidth = minRate(read.avail, dest.avail)
		// A network interconnect caps the rate and adds its propagation
		// delay when the transfer crosses sites.
		if hasTransport && transport.Kind == device.KindInterconnect &&
			read.placement.Site != dest.placement.Site {
			if links := s.devices[transport.Name]; links != nil {
				xfer.Bandwidth = minRate(xfer.Bandwidth, links.AvailableBandwidth())
			}
			xfer.SerFix += transport.Delay
		}
	}
	steps = append(steps, xfer)
	return steps, nil
}

// transportSpec returns the spec of the technique's transport device.
func (s *System) transportSpec(tech protect.Technique) (device.Spec, bool) {
	name := tech.TransportDevice()
	if name == "" {
		return device.Spec{}, false
	}
	pd, ok := s.design.placedDevice(name)
	if !ok {
		return device.Spec{}, false
	}
	return pd.Spec, true
}

// AssessAll evaluates every scenario, in order.
func (s *System) AssessAll(scs []failure.Scenario) ([]*Assessment, error) {
	out := make([]*Assessment, 0, len(scs))
	for _, sc := range scs {
		a, err := s.Assess(sc)
		if err != nil {
			return nil, fmt.Errorf("core: scenario %s: %w", sc.DisplayName(), err)
		}
		out = append(out, a)
	}
	return out, nil
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

func minRate(a, b units.Rate) units.Rate {
	if a < b {
		return a
	}
	return b
}
