package core_test

import (
	"errors"
	"testing"
	"time"

	"stordep/internal/core"
	"stordep/internal/cost"
	"stordep/internal/device"
	"stordep/internal/failure"
	"stordep/internal/hierarchy"
	"stordep/internal/protect"
	"stordep/internal/workload"
)

// mirrorModeDesign builds a mirroring design with the given protocol and
// link count over the cello workload.
func mirrorModeDesign(mode protect.MirrorMode, links int) *core.Design {
	pol := hierarchy.Policy{
		Primary: hierarchy.WindowSet{AccW: time.Minute, PropW: time.Minute, Rep: hierarchy.RepPartial},
		RetCnt:  2,
		RetW:    2 * time.Minute,
		CopyRep: hierarchy.RepFull,
	}
	return &core.Design{
		Name:         mode.String(),
		Workload:     workload.Cello(),
		Requirements: cost.CaseStudyRequirements(),
		Devices: []core.PlacedDevice{
			{Spec: device.MidrangeArray(), Placement: failure.Placement{Array: "a1", Building: "b", Site: "hq", Region: "w"}},
			{Spec: device.RemoteMirrorArray(), Placement: failure.Placement{Array: "a2", Building: "m", Site: "dr", Region: "c"}},
			{Spec: device.WANLinks(links)},
		},
		Primary: &protect.Primary{Array: device.NameDiskArray},
		Levels: []protect.Technique{
			&protect.Mirror{Mode: mode, DestArray: device.NameMirrorArray, Links: device.NameWANLinks, Pol: pol},
		},
		Facility: &core.Facility{
			Placement:     failure.Placement{Site: "rec", Region: "e"},
			ProvisionTime: 9 * time.Hour,
			CostFactor:    0.2,
		},
	}
}

// TestMirrorModeLinkSizing: sync mirroring must carry the 10x burst peak
// (7.8 MB/s), async the 0.78 MB/s average, batched async the 0.71 MB/s
// coalesced rate — §2's protocol comparison as link utilization.
func TestMirrorModeLinkSizing(t *testing.T) {
	tests := []struct {
		mode     protect.MirrorMode
		wantMBps float64
	}{
		{protect.MirrorSync, 7.80},
		{protect.MirrorAsync, 0.78},
		{protect.MirrorAsyncBatch, 0.71},
	}
	for _, tt := range tests {
		t.Run(tt.mode.String(), func(t *testing.T) {
			sys, err := core.Build(mirrorModeDesign(tt.mode, 1))
			if err != nil {
				t.Fatal(err)
			}
			links := sys.Device(device.NameWANLinks)
			got := links.TotalBandwidth().MBPS()
			if got < tt.wantMBps*0.99 || got > tt.wantMBps*1.01 {
				t.Errorf("link demand = %.3f MB/s, want ~%.2f", got, tt.wantMBps)
			}
		})
	}
}

// TestSyncMirrorOverloadsThinLinks: tripling the workload pushes the sync
// protocol's peak (23.4 MB/s) past one OC-3; the async variants still fit.
func TestSyncMirrorOverloadsThinLinks(t *testing.T) {
	big, err := workload.Cello().Scale(3)
	if err != nil {
		t.Fatal(err)
	}
	syncDesign := mirrorModeDesign(protect.MirrorSync, 1)
	syncDesign.Workload = big
	if _, err := core.Build(syncDesign); !errors.Is(err, device.ErrBWOverload) {
		t.Errorf("sync over one link = %v, want ErrBWOverload", err)
	}
	// Two links carry it.
	syncDesign = mirrorModeDesign(protect.MirrorSync, 2)
	syncDesign.Workload = big
	if _, err := core.Build(syncDesign); err != nil {
		t.Errorf("sync over two links: %v", err)
	}
	// Batched async fits on one with 3x workload.
	batch := mirrorModeDesign(protect.MirrorAsyncBatch, 1)
	batch.Workload = big
	if _, err := core.Build(batch); err != nil {
		t.Errorf("asyncB over one link: %v", err)
	}
}

// TestMirrorModeLoss: the three protocols' worst-case loss ordering —
// sync loses (near) nothing beyond its tiny window, batched async loses
// up to accW+propW.
func TestMirrorModeLoss(t *testing.T) {
	arr := failure.Scenario{Scope: failure.ScopeArray}
	losses := map[protect.MirrorMode]time.Duration{}
	for _, mode := range []protect.MirrorMode{protect.MirrorSync, protect.MirrorAsync, protect.MirrorAsyncBatch} {
		sys, err := core.Build(mirrorModeDesign(mode, 1))
		if err != nil {
			t.Fatal(err)
		}
		a, err := sys.Assess(arr)
		if err != nil {
			t.Fatal(err)
		}
		losses[mode] = a.DataLoss
	}
	// With identical policy windows the analytic loss is the same shape;
	// all are minutes, five orders below the tape designs.
	for mode, loss := range losses {
		if loss > 5*time.Minute {
			t.Errorf("%v loss = %v, want minutes", mode, loss)
		}
	}
}

// TestMirrorCostOrdering: sync mirroring needs the most provisioned link
// bandwidth for the same protection, so it costs the most per year for a
// bursty workload.
func TestMirrorCostOrdering(t *testing.T) {
	// Provision links to each protocol's requirement: sync needs one full
	// OC-3; the async variants would fit in a fraction but one link is the
	// minimum unit, so compare at equal links and check utilization.
	syncSys, err := core.Build(mirrorModeDesign(protect.MirrorSync, 1))
	if err != nil {
		t.Fatal(err)
	}
	batchSys, err := core.Build(mirrorModeDesign(protect.MirrorAsyncBatch, 1))
	if err != nil {
		t.Fatal(err)
	}
	syncLinks := syncSys.Device(device.NameWANLinks)
	batchLinks := batchSys.Device(device.NameWANLinks)
	if syncLinks.BWUtil() < 10*batchLinks.BWUtil() {
		t.Errorf("sync link utilization %.3f should dwarf batch %.3f",
			syncLinks.BWUtil(), batchLinks.BWUtil())
	}
}
