package core_test

import (
	"testing"
	"time"

	"stordep/internal/casestudy"
	"stordep/internal/core"
	"stordep/internal/device"
	"stordep/internal/failure"
	"stordep/internal/protect"
	"stordep/internal/units"
)

func deltaScenarios() []failure.Scenario {
	return []failure.Scenario{
		{Scope: failure.ScopeArray},
		{Scope: failure.ScopeSite},
	}
}

// legacyAssess is the reference path: full Build plus AssessBrief per
// scenario.
func legacyAssess(t *testing.T, d *core.Design, scs []failure.Scenario) (units.Money, []core.Brief) {
	t.Helper()
	sys, err := core.Build(d)
	if err != nil {
		t.Fatalf("Build(%s): %v", d.Name, err)
	}
	var scratch core.Scratch
	briefs := make([]core.Brief, len(scs))
	for i, sc := range scs {
		b, err := sys.AssessBrief(sc, &scratch)
		if err != nil {
			t.Fatalf("AssessBrief: %v", err)
		}
		briefs[i] = b
	}
	return sys.Outlays().Total(), briefs
}

func cloneDesign(t *testing.T, d *core.Design) *core.Design {
	t.Helper()
	c, err := d.Clone()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestDeltaAssessorMatchesLegacy: every representable single- and
// multi-change variant assesses bit-identically to the full
// Build-and-assess path — the property Tune relies on to swap
// AssessDelta scores for legacy scores without changing its descent.
func TestDeltaAssessorMatchesLegacy(t *testing.T) {
	base := casestudy.Baseline()
	scs := deltaScenarios()
	da, err := core.NewDeltaAssessor(base, scs)
	if err != nil {
		t.Fatal(err)
	}

	variants := map[string]func(d *core.Design){
		"identity":     func(d *core.Design) {},
		"vault-retcnt": func(d *core.Design) { d.Levels[2].(*protect.Vaulting).Pol.RetCnt = 13 },
		"vault-weekly": func(d *core.Design) {
			v := d.Levels[2].(*protect.Vaulting)
			v.Pol.Primary.AccW = units.Week
			v.Pol.RetCnt = 156
		},
		"backup-retcnt": func(d *core.Design) {
			bk := d.Levels[1].(*protect.Backup)
			bk.Pol.RetCnt = 28
			bk.Pol.RetW = 28 * bk.Pol.CyclePeriod()
		},
		"mirror-accw": func(d *core.Design) { d.Levels[0].(*protect.SplitMirror).Pol.Primary.AccW = 6 * time.Hour },
		"spec-slots": func(d *core.Design) {
			for i := range d.Devices {
				if d.Devices[i].Spec.Name == device.NameTapeLibrary {
					d.Devices[i].Spec.MaxBWSlots = 8
				}
			}
		},
		"level-and-spec": func(d *core.Design) {
			d.Levels[2].(*protect.Vaulting).Pol.RetCnt = 2
			for i := range d.Devices {
				if d.Devices[i].Spec.Name == device.NameTapeLibrary {
					d.Devices[i].Spec.MaxBWSlots = 12
				}
			}
		},
	}
	for name, mutate := range variants {
		d := cloneDesign(t, base)
		mutate(d)
		gotOut, gotBriefs, ok := da.AssessDelta(d)
		if !ok {
			t.Errorf("%s: AssessDelta refused a representable variant", name)
			continue
		}
		wantOut, wantBriefs := legacyAssess(t, d, scs)
		if gotOut != wantOut {
			t.Errorf("%s: outlays %v, legacy %v", name, gotOut, wantOut)
		}
		for si := range scs {
			if gotBriefs[si] != wantBriefs[si] {
				t.Errorf("%s: scenario %d brief %+v, legacy %+v", name, si, gotBriefs[si], wantBriefs[si])
			}
		}
	}

	// Scratch reuse across calls must not leak state: re-assessing the
	// base after a variant reproduces the construction-time numbers.
	d := cloneDesign(t, base)
	d.Levels[2].(*protect.Vaulting).Pol.RetCnt = 13
	if _, _, ok := da.AssessDelta(d); !ok {
		t.Fatal("variant refused")
	}
	gotOut, gotBriefs, ok := da.AssessDelta(base)
	if !ok {
		t.Fatal("base refused after variant")
	}
	wantOut, wantBriefs := legacyAssess(t, base, scs)
	if gotOut != wantOut {
		t.Errorf("base after variant: outlays %v, legacy %v", gotOut, wantOut)
	}
	for si := range scs {
		if gotBriefs[si] != wantBriefs[si] {
			t.Errorf("base after variant: scenario %d brief differs", si)
		}
	}
}

// TestDeltaAssessorRejectsOutsideProtocol: changes the cached tables
// cannot carry — renames, moved hardware, workload edits, shape changes,
// invalid policies, over-capacity retention — must return ok=false so
// the caller falls back to the legacy path (and its exact errors).
func TestDeltaAssessorRejectsOutsideProtocol(t *testing.T) {
	base := casestudy.Baseline()
	da, err := core.NewDeltaAssessor(base, deltaScenarios())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(d *core.Design){
		"renamed":        func(d *core.Design) { d.Name = "other" },
		"moved-device":   func(d *core.Design) { d.Devices[0].Placement.Site = "elsewhere" },
		"workload":       func(d *core.Design) { d.Workload.DataCap *= 2 },
		"dropped-level":  func(d *core.Design) { d.Levels = d.Levels[:2] },
		"invalid-policy": func(d *core.Design) { d.Levels[2].(*protect.Vaulting).Pol.RetCnt = 0 },
		"renamed-spec": func(d *core.Design) {
			d.Devices[0].Spec.Name = "imposter"
		},
		"overloaded": func(d *core.Design) {
			for i := range d.Devices {
				if d.Devices[i].Spec.Name == device.NameTapeLibrary {
					d.Devices[i].Spec.MaxCapSlots = 1
				}
			}
		},
	}
	for name, mutate := range cases {
		d := cloneDesign(t, base)
		mutate(d)
		if _, _, ok := da.AssessDelta(d); ok {
			t.Errorf("%s: AssessDelta accepted a change outside the delta protocol", name)
		}
	}
}
