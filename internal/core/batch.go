package core

import (
	"fmt"
	"time"

	"stordep/internal/cost"
	"stordep/internal/device"
	"stordep/internal/failure"
	"stordep/internal/protect"
	"stordep/internal/units"
)

// This file implements the columnar batch assessment kernel: the
// scenario-evaluation arithmetic of AssessBrief restructured to run over
// flat per-candidate parameter arrays instead of a built System per
// candidate. A BatchKernel is compiled once per (base design, scenario
// set) pair and captures everything a candidate's knob choices cannot
// change — device placements, spare/facility resolution per scenario,
// multi-sited survival, fixed access delays — while a Cols block carries
// the per-candidate parameters that do vary (policy lags, retention
// spans, restore sizes, routing indices, bandwidth headroom, outlay
// totals). AssessBatch then walks N candidates per call with zero
// steady-state allocations.
//
// The kernel is an arithmetic replica, not an approximation: for any
// candidate whose columns were extracted from a built System (see
// ExtractRow), the Briefs it produces are bitwise identical to
// System.AssessBrief on that System. The batch_test property tests and
// the compiled-space probe checks in internal/opt both enforce this.

// Device resolution kinds, precomputed per (scenario, device): what
// serves in the device's role after the failure.
const (
	// resNone: the device is gone and nothing replaces it — recovery
	// through it is impossible.
	resNone uint8 = iota
	// resIntact: the device survives; recovery transfers are limited to
	// its normal-mode available bandwidth.
	resIntact
	// resReplaced: spare or facility hardware stands in, fresh (full
	// device bandwidth) after its provisioning delay.
	resReplaced
)

// batchResolution is the precomputed outcome of resolveDevice for one
// (scenario, device) pair — everything except the candidate-dependent
// bandwidth numbers.
type batchResolution struct {
	kind      uint8
	provision time.Duration
	site      string
}

// batchMulti is the precomputed survival of one multi-sited level under
// one scenario: whether the survival threshold holds, and the device
// index of the first surviving fragment site (-1 when none survive).
type batchMulti struct {
	survives bool
	readIdx  int32
}

// BatchKernel holds the scenario- and placement-dependent tables shared
// by every candidate of a design space. Build one with NewBatchKernel;
// it is immutable afterwards and safe for concurrent AssessBatch calls
// with distinct Cols/BatchScratch.
type BatchKernel struct {
	scs      []failure.Scenario
	reqs     cost.Requirements
	nLevels  int
	nDevices int
	primary  int // device index of the primary array

	devIndex map[string]int
	devDelay []time.Duration
	devKind  []device.Kind

	// res[si*nDevices+d] resolves device d under scenario si.
	res []batchResolution
	// multiLevel[j] marks base levels implementing protect.MultiSited;
	// their survival and fragment routing are placement-only and live in
	// multi[si*nLevels+j]. Candidate columns must keep these levels'
	// multi-sited configuration identical to the base design's.
	multiLevel []bool
	multi      []batchMulti
	// multiSites/multiThreshold record the base configuration so
	// ExtractRow can verify a foreign System still matches.
	multiSites     [][]string
	multiThreshold []int
}

// Cols is a columnar block of candidate parameters: row-major arrays
// with one row per candidate, sized for the kernel's level and device
// counts. All level-indexed arrays are len n*Levels, device-indexed
// arrays len n*Devices. Obtain one from BatchKernel.NewCols and fill
// rows with ExtractRow (or internal/opt's compiled space).
type Cols struct {
	levels  int
	devices int

	// Valid marks rows holding a buildable candidate; Err carries the
	// build/validate error of invalid rows (AssessBatch skips them).
	Valid []bool
	Err   []error
	// OutlaysTotal is the candidate's total annual outlay
	// (System.Outlays().Total()).
	OutlaysTotal []units.Money

	// Per-level policy parameters (hierarchy.Policy derived).
	LvlLag     []time.Duration // Policy.TransferLag
	LvlAccW    []time.Duration // Policy.EffectiveAccW
	LvlRetSpan []time.Duration // Policy.RetentionSpan
	LvlRestore []units.ByteSize
	// Per-level routing: device indices of CopyDevice/ReadDevice and
	// TransportDevice (-1 when the technique names no transport).
	LvlCopy      []int32
	LvlRead      []int32
	LvlTransport []int32

	// Per-device bandwidth: the spec's MaxBandwidth and the normal-mode
	// AvailableBandwidth after the candidate's demands.
	DevMaxBW []units.Rate
	DevAvail []units.Rate
}

// NewCols allocates a columnar block for n candidates.
func (k *BatchKernel) NewCols(n int) *Cols {
	return &Cols{
		levels:       k.nLevels,
		devices:      k.nDevices,
		Valid:        make([]bool, n),
		Err:          make([]error, n),
		OutlaysTotal: make([]units.Money, n),
		LvlLag:       make([]time.Duration, n*k.nLevels),
		LvlAccW:      make([]time.Duration, n*k.nLevels),
		LvlRetSpan:   make([]time.Duration, n*k.nLevels),
		LvlRestore:   make([]units.ByteSize, n*k.nLevels),
		LvlCopy:      make([]int32, n*k.nLevels),
		LvlRead:      make([]int32, n*k.nLevels),
		LvlTransport: make([]int32, n*k.nLevels),
		DevMaxBW:     make([]units.Rate, n*k.nDevices),
		DevAvail:     make([]units.Rate, n*k.nDevices),
	}
}

// Rows returns how many candidate rows the block holds.
func (c *Cols) Rows() int { return len(c.Valid) }

// BatchScratch holds AssessBatch's output buffer so repeated calls reuse
// one allocation. A BatchScratch must not be shared between concurrent
// calls.
type BatchScratch struct {
	// Briefs is candidate-major: the brief for candidate i under
	// scenario si lands at Briefs[i*len(scenarios)+si]. Valid until the
	// next AssessBatch call with this scratch.
	Briefs []Brief
}

// Scenarios returns the kernel's scenario set (shared slice; read-only).
func (k *BatchKernel) Scenarios() []failure.Scenario { return k.scs }

// Levels returns the kernel's hierarchy level count.
func (k *BatchKernel) Levels() int { return k.nLevels }

// Devices returns the kernel's device count.
func (k *BatchKernel) Devices() int { return k.nDevices }

// DeviceIndex returns the design-order index of the named device, or -1.
func (k *BatchKernel) DeviceIndex(name string) int {
	if i, ok := k.devIndex[name]; ok {
		return i
	}
	return -1
}

// The accessors below expose the kernel's precomputed per-scenario
// resolution tables read-only, so bound constructions (internal/opt's
// branch-and-bound pruner) can derive admissible floors from the same
// arithmetic assessOne uses without re-deriving placement survival.

// DeviceIntact reports whether device di survives scenario si untouched
// (neither lost nor replaced by spare/facility hardware).
func (k *BatchKernel) DeviceIntact(si, di int) bool {
	return k.res[si*k.nDevices+di].kind == resIntact
}

// PrimaryResolution reports how the primary array resolves under
// scenario si: lost means no spare or facility stands in (every
// candidate is unrecoverable for that scenario), otherwise provision is
// the stand-in's provisioning delay (zero when the array survives).
func (k *BatchKernel) PrimaryResolution(si int) (lost bool, provision time.Duration) {
	r := &k.res[si*k.nDevices+k.primary]
	return r.kind == resNone, r.provision
}

// MultiLevel reports whether base level j is multi-sited (survival
// decided by fragment placement, not the candidate's copy device).
func (k *BatchKernel) MultiLevel(j int) bool { return k.multiLevel[j] }

// MultiServe reports a multi-sited level's survival under scenario si
// and the device index serving reads (-1 when no fragment site
// survives). Only meaningful when MultiLevel(j) is true.
func (k *BatchKernel) MultiServe(si, j int) (survives bool, readIdx int) {
	m := &k.multi[si*k.nLevels+j]
	return m.survives, int(m.readIdx)
}

// DeviceFixedDelay returns device di's fixed access delay (Spec.Delay),
// the serial term assessOne charges for every read through the device.
func (k *BatchKernel) DeviceFixedDelay(di int) time.Duration { return k.devDelay[di] }

// PenaltyFloor evaluates the scenario-independent penalty arithmetic for
// a given recovery time and data loss — the same cost.Assess fold
// assessOne applies, so a lower bound on (RT, DL) maps to a lower bound
// on penalties whenever the penalty rates are nonnegative (see
// NonNegativeRates).
func (k *BatchKernel) PenaltyFloor(rt, dl time.Duration) units.Money {
	return cost.Assess(k.reqs, rt, dl).Total()
}

// NonNegativeRates reports whether both penalty rates are >= 0, the
// condition under which cost.Assess is monotone nondecreasing in its
// duration arguments and PenaltyFloor yields admissible bounds.
func (k *BatchKernel) NonNegativeRates() bool {
	return k.reqs.UnavailPenaltyRate >= 0 && k.reqs.LossPenaltyRate >= 0
}

// NewBatchKernel compiles the scenario- and placement-dependent
// assessment tables for the system's design. The scenario set is
// validated once here — AssessBatch never re-validates — and captured by
// value. Knob choices evaluated against this kernel must not move
// devices, change spare/facility configuration, or alter any
// multi-sited level's fragment layout; internal/opt's space compiler
// enforces that before routing candidates through the kernel.
func NewBatchKernel(sys *System, scs []failure.Scenario) (*BatchKernel, error) {
	d := sys.design
	for _, sc := range scs {
		if err := sc.Validate(); err != nil {
			return nil, err
		}
	}
	k := &BatchKernel{
		scs:      append([]failure.Scenario(nil), scs...),
		reqs:     d.Requirements,
		nLevels:  len(d.Levels),
		nDevices: len(d.Devices),
		devIndex: make(map[string]int, len(d.Devices)),
		devDelay: make([]time.Duration, len(d.Devices)),
		devKind:  make([]device.Kind, len(d.Devices)),
	}
	for i, pd := range d.Devices {
		k.devIndex[pd.Spec.Name] = i
		k.devDelay[i] = pd.Spec.Delay
		k.devKind[i] = pd.Spec.Kind
	}
	primary, ok := k.devIndex[d.Primary.Array]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownLevel, d.Primary.Array)
	}
	k.primary = primary

	at := d.PrimaryPlacement()
	k.res = make([]batchResolution, len(scs)*k.nDevices)
	for si, sc := range k.scs {
		base := si * k.nDevices
		for di, pd := range d.Devices {
			r := &k.res[base+di]
			switch {
			case pd.Placement.Survives(sc.Scope, at):
				r.kind = resIntact
				r.site = pd.Placement.Site
			default:
				if sp, ok := sys.spareAt[pd.Spec.Name]; ok && sp.Survives(sc.Scope, at) {
					r.kind = resReplaced
					r.provision = pd.Spec.Spare.ProvisionTime
					r.site = sp.Site
				} else if f := d.Facility; f != nil && f.Placement.Survives(sc.Scope, at) {
					r.kind = resReplaced
					r.provision = f.ProvisionTime
					r.site = f.Placement.Site
				} else {
					r.kind = resNone
				}
			}
		}
	}

	k.multiLevel = make([]bool, k.nLevels)
	k.multiSites = make([][]string, k.nLevels)
	k.multiThreshold = make([]int, k.nLevels)
	k.multi = make([]batchMulti, len(scs)*k.nLevels)
	for j, tech := range d.Levels {
		ms, ok := tech.(protect.MultiSited)
		if !ok {
			continue
		}
		k.multiLevel[j] = true
		k.multiSites[j] = ms.CopyDevices()
		k.multiThreshold[j] = ms.SurvivalThreshold()
		for si, sc := range k.scs {
			surviving := 0
			first := int32(-1)
			for _, name := range k.multiSites[j] {
				pd, ok := d.placedDevice(name)
				if !ok {
					continue
				}
				if pd.Placement.Survives(sc.Scope, at) {
					surviving++
					if first < 0 {
						first = int32(k.devIndex[name])
					}
				}
			}
			k.multi[si*k.nLevels+j] = batchMulti{
				survives: surviving >= k.multiThreshold[j],
				readIdx:  first,
			}
		}
	}
	return k, nil
}

// ExtractRow fills one Cols row from a built System: the candidate
// parameters AssessBatch needs, pulled from the same models AssessBrief
// consults. The system must structurally match the kernel's base design
// — same device names in the same order, same level count, and identical
// multi-sited configuration — or an error is returned.
func (k *BatchKernel) ExtractRow(sys *System, cols *Cols, row int) error {
	d := sys.design
	if len(d.Levels) != k.nLevels {
		return fmt.Errorf("core: batch kernel has %d levels, system has %d", k.nLevels, len(d.Levels))
	}
	if len(d.Devices) != k.nDevices {
		return fmt.Errorf("core: batch kernel has %d devices, system has %d", k.nDevices, len(d.Devices))
	}
	dev := row * k.nDevices
	for di, pd := range d.Devices {
		if got, ok := k.devIndex[pd.Spec.Name]; !ok || got != di {
			return fmt.Errorf("core: batch kernel device order mismatch at %q", pd.Spec.Name)
		}
		cols.DevMaxBW[dev+di] = pd.Spec.MaxBandwidth()
		cols.DevAvail[dev+di] = sys.devices[pd.Spec.Name].AvailableBandwidth()
	}
	lvl := row * k.nLevels
	for j, tech := range d.Levels {
		if _, isMulti := tech.(protect.MultiSited); isMulti != k.multiLevel[j] {
			return fmt.Errorf("core: batch kernel multi-sited mismatch at level %d", j+1)
		}
		if k.multiLevel[j] {
			ms := tech.(protect.MultiSited)
			if ms.SurvivalThreshold() != k.multiThreshold[j] {
				return fmt.Errorf("core: batch kernel multi-sited threshold changed at level %d", j+1)
			}
			sites := ms.CopyDevices()
			if len(sites) != len(k.multiSites[j]) {
				return fmt.Errorf("core: batch kernel multi-sited fragment set changed at level %d", j+1)
			}
			for i := range sites {
				if sites[i] != k.multiSites[j][i] {
					return fmt.Errorf("core: batch kernel multi-sited fragment set changed at level %d", j+1)
				}
			}
		}
		pol := tech.Level().Policy
		cols.LvlLag[lvl+j] = pol.TransferLag()
		cols.LvlAccW[lvl+j] = pol.EffectiveAccW()
		cols.LvlRetSpan[lvl+j] = pol.RetentionSpan()
		cols.LvlRestore[lvl+j] = tech.RestoreSize(d.Workload)
		copyIdx, ok := k.devIndex[tech.CopyDevice()]
		if !ok {
			return fmt.Errorf("core: batch kernel: level %d copy device %q unknown", j+1, tech.CopyDevice())
		}
		readIdx, ok := k.devIndex[tech.ReadDevice()]
		if !ok {
			return fmt.Errorf("core: batch kernel: level %d read device %q unknown", j+1, tech.ReadDevice())
		}
		cols.LvlCopy[lvl+j] = int32(copyIdx)
		cols.LvlRead[lvl+j] = int32(readIdx)
		cols.LvlTransport[lvl+j] = -1
		if name := tech.TransportDevice(); name != "" {
			// Mirrors transportSpec: a transport name absent from the
			// design silently means "no transport".
			if ti, ok := k.devIndex[name]; ok {
				if _, placed := d.placedDevice(name); placed {
					cols.LvlTransport[lvl+j] = int32(ti)
				}
			}
		}
	}
	cols.OutlaysTotal[row] = sys.outlaysTotal
	cols.Valid[row] = true
	cols.Err[row] = nil
	return nil
}

// AssessBatch assesses the first n candidate rows of cols under every
// kernel scenario, writing Briefs into scratch (candidate-major, see
// BatchScratch.Briefs). Rows with Valid=false get zero Briefs — callers
// surface cols.Err for those. After the scratch's buffer has warmed up
// the call performs no allocations.
func (k *BatchKernel) AssessBatch(n int, cols *Cols, scratch *BatchScratch) {
	ns := len(k.scs)
	need := n * ns
	if cap(scratch.Briefs) < need {
		scratch.Briefs = make([]Brief, need)
	}
	scratch.Briefs = scratch.Briefs[:need]
	for i := 0; i < n; i++ {
		out := scratch.Briefs[i*ns : (i+1)*ns]
		if !cols.Valid[i] {
			for si := range out {
				out[si] = Brief{}
			}
			continue
		}
		lvl := i * k.nLevels
		dev := i * k.nDevices
		for si := range k.scs {
			out[si] = k.assessOne(cols, lvl, dev, si, cols.OutlaysTotal[i])
		}
	}
}

// assessOne is the flat-form replica of AssessBrief for one (candidate,
// scenario) pair: source selection over the guaranteed ranges, then the
// at-most-two-hop recovery path, then penalties. Pure arithmetic over
// the kernel tables and the candidate's columns — no allocation.
func (k *BatchKernel) assessOne(cols *Cols, lvl, dev, si int, outlays units.Money) Brief {
	sc := &k.scs[si]
	resBase := si * k.nDevices

	// Source selection: argmin worst-case loss over surviving levels,
	// ties to the lower level (§3.3.3). cum accumulates CumTransferLag —
	// a level's own transfer lag is included in its cumulative lag.
	bestLevel := -1
	var bestLoss time.Duration
	var cum time.Duration
	for j := 0; j < k.nLevels; j++ {
		cum += cols.LvlLag[lvl+j]
		var surv bool
		if k.multiLevel[j] {
			surv = k.multi[si*k.nLevels+j].survives
		} else {
			surv = k.res[resBase+int(cols.LvlCopy[lvl+j])].kind == resIntact
		}
		if !surv {
			continue
		}
		oldest := cols.LvlRetSpan[lvl+j] + cum
		newest := cum + cols.LvlAccW[lvl+j]
		if (oldest == 0 && newest == 0) || oldest < newest {
			continue // guaranteed range empty: conservatively too old
		}
		var loss time.Duration
		switch {
		case sc.TargetAge < newest:
			loss = newest // too recent: worst-case lag (MaxLag)
		case sc.TargetAge > oldest:
			continue // too old: cannot serve
		default:
			loss = cols.LvlAccW[lvl+j] // covered: one accumulation window
		}
		if bestLevel == -1 || loss < bestLoss {
			bestLevel = j
			bestLoss = loss
		}
	}
	if bestLevel < 0 {
		return k.lostBrief(outlays)
	}

	// Recovery path. Destination: the (possibly replaced) primary array.
	dest := &k.res[resBase+k.primary]
	if dest.kind == resNone {
		return k.lostBrief(outlays)
	}
	readIdx := int(cols.LvlRead[lvl+bestLevel])
	if k.multiLevel[bestLevel] {
		if m := k.multi[si*k.nLevels+bestLevel]; m.readIdx >= 0 {
			readIdx = int(m.readIdx)
		}
	}
	read := &k.res[resBase+readIdx]
	if read.kind == resNone {
		return k.lostBrief(outlays)
	}
	tIdx := int(cols.LvlTransport[lvl+bestLevel])

	var rt time.Duration
	// Media-return hop: retained media on a different device than the
	// reader (vault -> library); the transport's fixed delay serializes.
	if cols.LvlCopy[lvl+bestLevel] != cols.LvlRead[lvl+bestLevel] {
		if tIdx >= 0 {
			rt += k.devDelay[tIdx]
		}
	}

	size := sc.RecoverSize
	if size <= 0 {
		size = cols.LvlRestore[lvl+bestLevel]
	}
	parFix := read.provision
	if dest.provision > parFix {
		parFix = dest.provision
	}
	serFix := k.devDelay[readIdx]

	destAvail := cols.DevMaxBW[dev+k.primary]
	if dest.kind == resIntact {
		destAvail = cols.DevAvail[dev+k.primary]
	}
	var bw units.Rate
	if readIdx == k.primary && dest.kind == resIntact {
		// Intra-array copy: reads and writes share one enclosure.
		bw = destAvail / 2
	} else {
		readAvail := cols.DevMaxBW[dev+readIdx]
		if read.kind == resIntact {
			readAvail = cols.DevAvail[dev+readIdx]
		}
		bw = readAvail
		if destAvail < bw {
			bw = destAvail
		}
		// A network interconnect caps the rate and adds its propagation
		// delay when the transfer crosses sites.
		if tIdx >= 0 && k.devKind[tIdx] == device.KindInterconnect && read.site != dest.site {
			if links := cols.DevAvail[dev+tIdx]; links < bw {
				bw = links
			}
			serFix += k.devDelay[tIdx]
		}
	}

	// recovery.Time fold for the transfer step.
	if parFix > rt {
		rt = parFix
	}
	d := serFix
	forever := false
	if size > 0 {
		xfer := units.Div(size, bw)
		if xfer == units.Forever {
			forever = true
		} else {
			d += xfer
		}
	}
	var b Brief
	if forever {
		b.RecoveryTime = units.Forever
	} else {
		b.RecoveryTime = rt + d
	}
	b.DataLoss = bestLoss
	b.Penalties = cost.Assess(k.reqs, b.RecoveryTime, b.DataLoss).Total()
	b.Total = outlays + b.Penalties
	return b
}

// lostBrief fills the §3.3.3 whole-object-lost case.
func (k *BatchKernel) lostBrief(outlays units.Money) Brief {
	b := Brief{
		RecoveryTime:    units.Forever,
		DataLoss:        units.Forever,
		WholeObjectLost: true,
	}
	b.Penalties = cost.Assess(k.reqs, units.Forever, units.Forever).Total()
	b.Total = outlays + b.Penalties
	return b
}
