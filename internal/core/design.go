// Package core composes the framework's components — workload, devices,
// data protection techniques, hierarchy math, recovery and cost models —
// into the paper's top-level evaluation (§3.3): given a storage system
// design, a workload, business requirements and a failure scenario,
// produce the four output metrics of Table 1: normal-mode system
// utilization, worst-case recovery time, worst-case recent data loss, and
// overall cost.
package core

import (
	"errors"
	"fmt"
	"time"

	"stordep/internal/cost"
	"stordep/internal/device"
	"stordep/internal/failure"
	"stordep/internal/hierarchy"
	"stordep/internal/protect"
	"stordep/internal/workload"
)

// PlacedDevice binds a device spec to a physical location. SparePlacement
// locates the device's spare resources; when left zero for a device with a
// dedicated spare, the spare is assumed to sit at the device's own site in
// separate hardware (it survives an array failure but not a site
// disaster).
type PlacedDevice struct {
	Spec           device.Spec
	Placement      failure.Placement
	SparePlacement failure.Placement
}

// effectiveSparePlacement applies the same-site default.
func (p PlacedDevice) effectiveSparePlacement() failure.Placement {
	if p.SparePlacement != (failure.Placement{}) {
		return p.SparePlacement
	}
	sp := p.Placement
	if sp.Array != "" {
		sp.Array += "-spare"
	}
	return sp
}

// Facility is a shared recovery facility (§4: "a remote shared recovery
// facility"): replacement hardware for failed devices whose own spares are
// also gone, provisioned by draining and scrubbing shared resources.
type Facility struct {
	// Placement locates the facility (it must survive the scenarios it is
	// meant to cover).
	Placement failure.Placement
	// ProvisionTime is the delay before replacement resources are usable
	// (nine hours in the case study).
	ProvisionTime time.Duration
	// CostFactor is the annual retainer as a fraction of the base outlays
	// of the devices covered (20% in the case study: "because the
	// resources are shared, they cost only 20% of the dedicated
	// resources").
	CostFactor float64
}

// Design is a complete storage system design: the workload it serves, the
// business requirements it must meet, the hardware fleet, the primary
// copy, and the ordered data protection levels.
type Design struct {
	// Name labels the design in reports.
	Name string
	// Workload is the foreground workload (Table 2).
	Workload *workload.Workload
	// Requirements are the penalty rates (§3.1.2).
	Requirements cost.Requirements
	// Devices is the hardware fleet with placements (Table 4).
	Devices []PlacedDevice
	// Primary is the level-0 copy.
	Primary *protect.Primary
	// Levels are the secondary techniques, nearest first (level 1..n).
	Levels []protect.Technique
	// Facility, if non-nil, is the shared recovery facility used when a
	// device and its spare both fall inside the failure scope.
	Facility *Facility
}

// Validation errors.
var (
	ErrNoWorkload   = errors.New("core: design needs a workload")
	ErrNoPrimary    = errors.New("core: design needs a primary copy")
	ErrNoDevices    = errors.New("core: design needs devices")
	ErrDupDevice    = errors.New("core: duplicate device name")
	ErrBadFacility  = errors.New("core: facility configuration invalid")
	ErrUnknownLevel = errors.New("core: level references unknown device")
)

// Validate checks the whole design for consistency: every component
// validates individually, device names are unique, and every technique
// references devices that exist.
func (d *Design) Validate() error {
	if d.Workload == nil {
		return ErrNoWorkload
	}
	if err := d.Workload.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := d.Requirements.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if d.Primary == nil {
		return ErrNoPrimary
	}
	if err := d.Primary.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if len(d.Devices) == 0 {
		return ErrNoDevices
	}
	names := make(map[string]bool, len(d.Devices))
	for _, pd := range d.Devices {
		if err := pd.Spec.Validate(); err != nil {
			return fmt.Errorf("core: %w", err)
		}
		if names[pd.Spec.Name] {
			return fmt.Errorf("%w: %q", ErrDupDevice, pd.Spec.Name)
		}
		names[pd.Spec.Name] = true
	}
	if !names[d.Primary.Array] {
		return fmt.Errorf("%w: primary array %q", ErrUnknownLevel, d.Primary.Array)
	}
	for i, tech := range d.Levels {
		if err := tech.Validate(); err != nil {
			return fmt.Errorf("core: level %d: %w", i+1, err)
		}
		refs := []string{tech.CopyDevice(), tech.ReadDevice()}
		if ms, ok := tech.(protect.MultiSited); ok {
			refs = append(refs, ms.CopyDevices()...)
		}
		for _, ref := range refs {
			if !names[ref] {
				return fmt.Errorf("%w: level %d (%s) -> %q", ErrUnknownLevel, i+1, tech.Name(), ref)
			}
		}
		if tr := tech.TransportDevice(); tr != "" && !names[tr] {
			return fmt.Errorf("%w: level %d (%s) -> transport %q", ErrUnknownLevel, i+1, tech.Name(), tr)
		}
	}
	if d.Facility != nil {
		if d.Facility.ProvisionTime < 0 || d.Facility.CostFactor < 0 {
			return ErrBadFacility
		}
	}
	// The hierarchy chain must also hold together.
	if len(d.Levels) > 0 {
		if err := d.Chain().Validate(); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	return nil
}

// Chain assembles the hierarchy levels from the design's techniques.
func (d *Design) Chain() hierarchy.Chain {
	c := make(hierarchy.Chain, 0, len(d.Levels))
	for _, tech := range d.Levels {
		c = append(c, tech.Level())
	}
	return c
}

// PrimaryPlacement returns the placement of the primary array, the
// location failures strike in scenarios.
func (d *Design) PrimaryPlacement() failure.Placement {
	for _, pd := range d.Devices {
		if pd.Spec.Name == d.Primary.Array {
			return pd.Placement
		}
	}
	return failure.Placement{}
}

// placedDevice returns the placed device by name.
func (d *Design) placedDevice(name string) (PlacedDevice, bool) {
	for _, pd := range d.Devices {
		if pd.Spec.Name == name {
			return pd, true
		}
	}
	return PlacedDevice{}, false
}
