package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"stordep/internal/cost"
	"stordep/internal/device"
	"stordep/internal/failure"
	"stordep/internal/hierarchy"
	"stordep/internal/protect"
	"stordep/internal/recovery"
	"stordep/internal/workload"
)

// ObjectSpec is one data object in a multi-object design: its workload,
// primary copy, protection levels, and the objects whose recovery must
// complete before this one can begin (§3.1.1: "inter-object dependencies
// during recovery" — an application's data volume is useless before its
// catalog volume is back).
type ObjectSpec struct {
	Name      string
	Workload  *workload.Workload
	Primary   *protect.Primary
	Levels    []protect.Technique
	DependsOn []string
}

// MultiDesign extends Design to several data objects sharing one device
// fleet, the extension §3.1.1 sketches: each object's demands are tracked
// explicitly, utilization aggregates across objects, and recovery honors
// inter-object dependencies.
type MultiDesign struct {
	Name         string
	Requirements cost.Requirements
	Devices      []PlacedDevice
	Facility     *Facility
	Objects      []ObjectSpec
}

// Multi-design validation errors.
var (
	ErrNoObjects   = errors.New("core: multi design needs at least one object")
	ErrDupObject   = errors.New("core: duplicate object name")
	ErrDupTech     = errors.New("core: technique instance names must be unique across objects")
	ErrUnknownDep  = errors.New("core: dependency on unknown object")
	ErrDependCycle = errors.New("core: object dependencies form a cycle")
)

// Validate checks the multi design: every object forms a valid
// single-object design over the shared fleet, technique names are
// globally unique (required for demand attribution), and the dependency
// graph is acyclic.
func (md *MultiDesign) Validate() error {
	if len(md.Objects) == 0 {
		return ErrNoObjects
	}
	names := make(map[string]bool, len(md.Objects))
	techNames := make(map[string]bool)
	for _, obj := range md.Objects {
		if obj.Name == "" {
			return fmt.Errorf("%w: object with empty name", ErrDupObject)
		}
		if names[obj.Name] {
			return fmt.Errorf("%w: %q", ErrDupObject, obj.Name)
		}
		names[obj.Name] = true
		for _, tech := range obj.Levels {
			if techNames[tech.Name()] {
				return fmt.Errorf("%w: %q (set InstanceName per object)", ErrDupTech, tech.Name())
			}
			techNames[tech.Name()] = true
		}
		if err := md.ObjectDesign(obj).Validate(); err != nil {
			return fmt.Errorf("core: object %s: %w", obj.Name, err)
		}
	}
	for _, obj := range md.Objects {
		for _, dep := range obj.DependsOn {
			if !names[dep] {
				return fmt.Errorf("%w: %s -> %q", ErrUnknownDep, obj.Name, dep)
			}
		}
	}
	return md.checkAcyclic()
}

// checkAcyclic rejects dependency cycles via iterative DFS coloring.
func (md *MultiDesign) checkAcyclic() error {
	deps := make(map[string][]string, len(md.Objects))
	for _, obj := range md.Objects {
		deps[obj.Name] = obj.DependsOn
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(deps))
	var visit func(string) error
	visit = func(n string) error {
		switch color[n] {
		case gray:
			return fmt.Errorf("%w (at %q)", ErrDependCycle, n)
		case black:
			return nil
		}
		color[n] = gray
		for _, d := range deps[n] {
			if err := visit(d); err != nil {
				return err
			}
		}
		color[n] = black
		return nil
	}
	for _, obj := range md.Objects {
		if err := visit(obj.Name); err != nil {
			return err
		}
	}
	return nil
}

// ObjectDesign synthesizes the single-object view of one object over the
// shared fleet. The per-object design shares the fleet slice; demands are
// still applied on the shared devices by BuildMulti. Callers that build
// the result directly (e.g. the chaos engine's per-object invariant
// batteries) get a fresh fleet carrying only that object's demands.
func (md *MultiDesign) ObjectDesign(obj ObjectSpec) *Design {
	return &Design{
		Name:         fmt.Sprintf("%s/%s", md.Name, obj.Name),
		Workload:     obj.Workload,
		Requirements: md.Requirements,
		Devices:      md.Devices,
		Primary:      obj.Primary,
		Levels:       obj.Levels,
		Facility:     md.Facility,
	}
}

// LevelDeviceNames lists the devices whose failure takes a level's
// protection out of service: the copy device(s) holding its RPs and the
// interconnect/transport crossed to reach them. The read device only
// matters at restore time, not for RP propagation. Shared by the Monte
// Carlo sampler (device down intervals → level outages) and the chaos
// correlation engine (shared-device events → dependent-object outages).
func LevelDeviceNames(tech protect.Technique) []string {
	var names []string
	if ms, ok := tech.(interface{ CopyDevices() []string }); ok {
		names = append(names, ms.CopyDevices()...)
	} else if d := tech.CopyDevice(); d != "" {
		names = append(names, d)
	}
	if d := tech.TransportDevice(); d != "" {
		names = append(names, d)
	}
	return names
}

// DevicePlacement returns the placement of the named fleet device.
func (md *MultiDesign) DevicePlacement(name string) (failure.Placement, bool) {
	for _, pd := range md.Devices {
		if pd.Spec.Name == name {
			return pd.Placement, true
		}
	}
	return failure.Placement{}, false
}

// MultiSystem is a built multi-object design: one shared device fleet
// carrying every object's demands, with a per-object System view for
// assessment.
type MultiSystem struct {
	design  *MultiDesign
	devices protect.DeviceMap
	objects map[string]*System
	order   []string
	outlays cost.Outlays
}

// BuildMulti validates the design, applies every object's demands to the
// shared fleet, and checks aggregate utilization — the point of the
// multi-object extension: two objects that fit individually can overload
// a shared array together.
func BuildMulti(md *MultiDesign) (*MultiSystem, error) {
	if err := md.Validate(); err != nil {
		return nil, err
	}
	devs := make(protect.DeviceMap, len(md.Devices))
	ordered := make([]*device.Device, 0, len(md.Devices))
	for _, pd := range md.Devices {
		dev, err := device.New(pd.Spec)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		devs[pd.Spec.Name] = dev
		ordered = append(ordered, dev)
	}
	ms := &MultiSystem{
		design:  md,
		devices: devs,
		objects: make(map[string]*System, len(md.Objects)),
	}
	for _, obj := range md.Objects {
		d := md.ObjectDesign(obj)
		if err := d.Primary.ApplyDemands(d.Workload, devs); err != nil {
			return nil, fmt.Errorf("core: object %s: %w", obj.Name, err)
		}
		for i, tech := range d.Levels {
			if err := tech.ApplyDemands(d.Workload, devs); err != nil {
				return nil, fmt.Errorf("core: object %s level %d: %w", obj.Name, i+1, err)
			}
		}
		ms.objects[obj.Name] = &System{
			design:  d,
			devices: devs,
			chain:   d.Chain(),
		}
		ms.order = append(ms.order, obj.Name)
	}
	for _, dev := range ordered {
		if err := dev.Check(); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	// Outlays are computed once over the shared fleet; facility retainer
	// piggybacks on the first object's placement view (the fleet and
	// facility are shared).
	ms.outlays = collectOutlays(md.ObjectDesign(md.Objects[0]), ordered)
	for name := range ms.objects {
		ms.objects[name].outlays = ms.outlays
	}
	return ms, nil
}

// Object returns the per-object System view (shared devices, own chain).
func (ms *MultiSystem) Object(name string) *System { return ms.objects[name] }

// Objects returns the object names in design order.
func (ms *MultiSystem) Objects() []string {
	out := make([]string, len(ms.order))
	copy(out, ms.order)
	return out
}

// Outlays returns the fleet-wide annualized outlays.
func (ms *MultiSystem) Outlays() cost.Outlays { return ms.outlays }

// Utilization aggregates normal-mode utilization across all objects.
func (ms *MultiSystem) Utilization() Utilization {
	// Any object's System sees the shared devices; use the first.
	return ms.objects[ms.order[0]].Utilization()
}

// ObjectAssessment pairs an object with its assessment and its effective
// recovery time once dependencies are honored.
type ObjectAssessment struct {
	Object string
	*Assessment
	// RecoveryStart is when the object's recovery may begin: the latest
	// effective recovery time over its dependencies (zero for independent
	// objects).
	RecoveryStart time.Duration
	// EffectiveRT is when the object is back in service: its own recovery
	// time after every dependency has recovered. Independent objects
	// recover in parallel; dependent ones serialize.
	EffectiveRT time.Duration
}

// ServiceAssessment is the business-service view of a multi-object
// failure: the service runs again only when every object is back.
type ServiceAssessment struct {
	Scenario failure.Scenario
	Objects  []ObjectAssessment
	// RecoveryTime is the critical path over the dependency DAG.
	RecoveryTime time.Duration
	// DataLoss is the worst per-object loss (a service is as stale as its
	// stalest object).
	DataLoss time.Duration
	// Cost totals fleet outlays and service-level penalties.
	Cost cost.Summary
}

// Assess evaluates the scenario for every object and composes the
// service-level metrics along the dependency DAG.
func (ms *MultiSystem) Assess(sc failure.Scenario) (*ServiceAssessment, error) {
	perObject := make(map[string]*Assessment, len(ms.order))
	for _, name := range ms.order {
		a, err := ms.objects[name].Assess(sc)
		if err != nil {
			return nil, fmt.Errorf("core: object %s: %w", name, err)
		}
		perObject[name] = a
	}
	return ms.compose(sc, perObject)
}

// AssessDegraded evaluates the scenario while protection levels have been
// out of service, per object: outages maps object names to the compound
// level outages their hierarchies suffered (objects absent from the map
// are assessed healthy). Recovery still honors the dependency DAG, so an
// outage degrading one object's recovery delays everything downstream of
// it.
func (ms *MultiSystem) AssessDegraded(sc failure.Scenario, outages map[string][]hierarchy.LevelOutage) (*ServiceAssessment, error) {
	names := make([]string, 0, len(outages))
	for name := range outages {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, ok := ms.objects[name]; !ok {
			return nil, fmt.Errorf("core: outage for unknown object %q", name)
		}
	}
	perObject := make(map[string]*Assessment, len(ms.order))
	for _, name := range ms.order {
		var (
			a   *Assessment
			err error
		)
		if outs := outages[name]; len(outs) > 0 {
			a, err = ms.objects[name].AssessDegradedCompound(sc, outs)
		} else {
			a, err = ms.objects[name].Assess(sc)
		}
		if err != nil {
			return nil, fmt.Errorf("core: object %s: %w", name, err)
		}
		perObject[name] = a
	}
	return ms.compose(sc, perObject)
}

// compose folds per-object assessments into the service view: effective
// recovery times via the dependency-ordered schedule, worst per-object
// loss, and service-level penalties.
func (ms *MultiSystem) compose(sc failure.Scenario, perObject map[string]*Assessment) (*ServiceAssessment, error) {
	objs := make([]recovery.ObjectRT, 0, len(ms.order))
	for _, name := range ms.order {
		objs = append(objs, recovery.ObjectRT{Name: name, RT: perObject[name].RecoveryTime})
	}
	deps := make(map[string][]string, len(ms.design.Objects))
	for _, obj := range ms.design.Objects {
		deps[obj.Name] = obj.DependsOn
	}
	// The DAG was validated acyclic at build time; Schedule re-checks.
	sched, critical, err := recovery.Schedule(objs, deps)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	out := &ServiceAssessment{Scenario: sc, RecoveryTime: critical}
	for i, name := range ms.order {
		a := perObject[name]
		out.Objects = append(out.Objects, ObjectAssessment{
			Object:        name,
			Assessment:    a,
			RecoveryStart: sched[i].Start,
			EffectiveRT:   sched[i].Finish,
		})
		if a.DataLoss > out.DataLoss {
			out.DataLoss = a.DataLoss
		}
	}
	out.Cost = cost.Summary{
		Outlays:   ms.outlays,
		Penalties: cost.Assess(ms.design.Requirements, out.RecoveryTime, out.DataLoss),
	}
	return out, nil
}
