package core

import (
	"fmt"

	"stordep/internal/cost"
	"stordep/internal/device"
	"stordep/internal/failure"
	"stordep/internal/hierarchy"
	"stordep/internal/protect"
	"stordep/internal/units"
)

// System is a built design: devices carry their normal-mode demands, the
// hierarchy chain is assembled, and outlays are collected. Build once,
// then Assess against any number of failure scenarios.
type System struct {
	design  *Design
	devices protect.DeviceMap
	chain   hierarchy.Chain
	outlays cost.Outlays
	// outlaysTotal caches outlays.Total() for the scoring hot path.
	outlaysTotal units.Money
	// spareAt caches each spared device's effective spare placement
	// (scenario-independent) so per-scenario resolution never rebuilds
	// the derived placement.
	spareAt map[string]failure.Placement
}

// Build validates the design, instantiates its devices, applies every
// technique's normal-mode demands, and verifies the configuration can
// carry them (the global half of §3.3.1 — any device over 100% utilization
// is a design error).
func Build(d *Design) (*System, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	devs := make(protect.DeviceMap, len(d.Devices))
	ordered := make([]*device.Device, 0, len(d.Devices))
	for _, pd := range d.Devices {
		dev, err := device.New(pd.Spec)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		devs[pd.Spec.Name] = dev
		ordered = append(ordered, dev)
	}
	if err := d.Primary.ApplyDemands(d.Workload, devs); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	for i, tech := range d.Levels {
		if err := tech.ApplyDemands(d.Workload, devs); err != nil {
			return nil, fmt.Errorf("core: level %d (%s): %w", i+1, tech.Name(), err)
		}
	}
	for _, dev := range ordered {
		if err := dev.Check(); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	sys := &System{
		design:  d,
		devices: devs,
		chain:   d.Chain(),
		outlays: collectOutlays(d, ordered),
	}
	sys.outlaysTotal = sys.outlays.Total()
	for _, pd := range d.Devices {
		if pd.Spec.HasSpare() {
			if sys.spareAt == nil {
				sys.spareAt = make(map[string]failure.Placement)
			}
			sys.spareAt[pd.Spec.Name] = pd.effectiveSparePlacement()
		}
	}
	return sys, nil
}

// collectOutlays gathers device outlays plus the shared recovery
// facility's retainer (CostFactor x the base outlays of the devices at the
// primary site, which the facility must be able to replace).
func collectOutlays(d *Design, ordered []*device.Device) cost.Outlays {
	out := cost.CollectOutlays(ordered)
	if d.Facility == nil || d.Facility.CostFactor == 0 {
		return out
	}
	primarySite := d.PrimaryPlacement().Site
	var covered units.Money
	for _, it := range out.Items {
		if pd, ok := d.placedDevice(it.Device); ok && pd.Placement.Site != "" && pd.Placement.Site == primarySite {
			covered += it.Base
		}
	}
	if covered > 0 {
		out.Items = append(out.Items, cost.OutlayItem{
			Device:    "recovery-facility",
			Technique: "recovery-facility",
			Base:      units.Money(d.Facility.CostFactor) * covered,
		})
	}
	return out
}

// Design returns the built design.
func (s *System) Design() *Design { return s.design }

// Chain returns the assembled hierarchy.
func (s *System) Chain() hierarchy.Chain { return s.chain }

// Outlays returns the design's annualized outlays.
func (s *System) Outlays() cost.Outlays { return s.outlays }

// Device returns the named built device (with demands applied), or nil.
func (s *System) Device(name string) *device.Device { return s.devices[name] }

// Devices returns the built devices in design order.
func (s *System) Devices() []*device.Device {
	out := make([]*device.Device, 0, len(s.design.Devices))
	for _, pd := range s.design.Devices {
		out = append(out, s.devices[pd.Spec.Name])
	}
	return out
}

// Warnings reports the design's soft-convention violations (§3.2.1).
func (s *System) Warnings() []string { return s.chain.Warnings() }

// DeviceUtilization is the per-device, per-technique normal-mode
// utilization (the rows of Table 5).
type DeviceUtilization struct {
	Device string
	Rows   []device.TechUtilization
	// Overall utilization of the device across techniques.
	BWUtil  float64
	CapUtil float64
	// Absolute totals for the Table 5 parentheticals.
	Bandwidth units.Rate
	Capacity  units.ByteSize
}

// Utilization is the global normal-mode utilization: that of the most
// heavily utilized device in each dimension (§3.3.1).
type Utilization struct {
	// BW and Cap are the system utilizations (max over devices).
	BW  float64
	Cap float64
	// BWDevice and CapDevice name the binding devices.
	BWDevice  string
	CapDevice string
	// PerDevice holds the detailed breakdown.
	PerDevice []DeviceUtilization
}

// Utilization computes the normal-mode utilization report.
func (s *System) Utilization() Utilization {
	var u Utilization
	for _, dev := range s.Devices() {
		du := DeviceUtilization{
			Device:    dev.Name(),
			Rows:      dev.Utilizations(),
			BWUtil:    dev.BWUtil(),
			CapUtil:   dev.CapUtil(),
			Bandwidth: dev.TotalBandwidth(),
			Capacity:  dev.TotalCapacity(),
		}
		u.PerDevice = append(u.PerDevice, du)
		if du.BWUtil > u.BW {
			u.BW, u.BWDevice = du.BWUtil, du.Device
		}
		if du.CapUtil > u.Cap {
			u.Cap, u.CapDevice = du.CapUtil, du.Device
		}
	}
	return u
}

// SurvivingLevels returns the 1-based indices of hierarchy levels whose
// copy devices outlive the scenario, in level order. Multi-sited
// techniques (protect.MultiSited, e.g. erasure coding) survive when at
// least their threshold of copy devices does.
func (s *System) SurvivingLevels(sc failure.Scenario) []int {
	return s.appendSurvivingLevels(nil, sc)
}

// appendSurvivingLevels is SurvivingLevels appending into a caller
// buffer, for scoring loops that reuse one across scenarios.
func (s *System) appendSurvivingLevels(out []int, sc failure.Scenario) []int {
	at := s.design.PrimaryPlacement()
	for i, tech := range s.design.Levels {
		if ms, ok := tech.(protect.MultiSited); ok {
			if len(s.survivingCopySites(ms, sc)) >= ms.SurvivalThreshold() {
				out = append(out, i+1)
			}
			continue
		}
		pd, ok := s.design.placedDevice(tech.CopyDevice())
		if !ok {
			continue
		}
		if pd.Placement.Survives(sc.Scope, at) {
			out = append(out, i+1)
		}
	}
	return out
}

// survivingCopySites lists a multi-sited technique's copy devices that
// outlive the scenario.
func (s *System) survivingCopySites(ms protect.MultiSited, sc failure.Scenario) []string {
	at := s.design.PrimaryPlacement()
	var out []string
	for _, name := range ms.CopyDevices() {
		if pd, ok := s.design.placedDevice(name); ok && pd.Placement.Survives(sc.Scope, at) {
			out = append(out, name)
		}
	}
	return out
}

// TechniqueNames returns the design's technique names, primary copy first
// then level order — used by reports.
func (s *System) TechniqueNames() []string {
	names := []string{s.design.Primary.Name()}
	for _, tech := range s.design.Levels {
		names = append(names, tech.Name())
	}
	return names
}
