package core_test

import (
	"testing"
	"time"

	"stordep/internal/casestudy"
	"stordep/internal/core"
	"stordep/internal/failure"
)

// batchDesigns collects every design shape the kernel must replicate:
// the case-study what-if set (PiT, backup, vaulting, mirror variants),
// an interconnect-limited mirror, and a multi-sited erasure design.
func batchDesigns() []*core.Design {
	ds := append(casestudy.WhatIfDesigns(), casestudy.AsyncBMirror(4))
	return append(ds, erasureDesign(5, 3))
}

// TestAssessBatchMatchesAssessBrief: for every design and scenario, a
// Cols row extracted from a built System and assessed through the batch
// kernel yields Briefs bitwise identical to System.AssessBrief — the
// determinism contract the compiled optimizer path builds on.
func TestAssessBatchMatchesAssessBrief(t *testing.T) {
	scs := briefScenarios()
	for _, d := range batchDesigns() {
		sys, err := core.Build(d)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		kern, err := core.NewBatchKernel(sys, scs)
		if err != nil {
			t.Fatalf("%s: kernel: %v", d.Name, err)
		}
		// Three rows, with the middle one left invalid: valid rows must
		// be unaffected by neighbors and invalid rows must come back
		// zeroed.
		cols := kern.NewCols(3)
		for _, row := range []int{0, 2} {
			if err := kern.ExtractRow(sys, cols, row); err != nil {
				t.Fatalf("%s: extract row %d: %v", d.Name, row, err)
			}
		}
		var scratch core.BatchScratch
		kern.AssessBatch(3, cols, &scratch)

		var ref core.Scratch
		for si, sc := range scs {
			want, err := sys.AssessBrief(sc, &ref)
			if err != nil {
				t.Fatalf("%s/%s: brief: %v", d.Name, sc.DisplayName(), err)
			}
			for _, row := range []int{0, 2} {
				got := scratch.Briefs[row*len(scs)+si]
				if got != want {
					t.Errorf("%s/%s row %d: batch %+v, brief %+v", d.Name, sc.DisplayName(), row, got, want)
				}
			}
			if got := scratch.Briefs[1*len(scs)+si]; got != (core.Brief{}) {
				t.Errorf("%s/%s: invalid row produced %+v, want zero", d.Name, sc.DisplayName(), got)
			}
		}
	}
}

// TestAssessBatchAllocBudget: once the scratch buffer is warm,
// AssessBatch performs no allocations at all — the kernel's reason to
// exist.
func TestAssessBatchAllocBudget(t *testing.T) {
	sys, err := core.Build(casestudy.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	kern, err := core.NewBatchKernel(sys, briefScenarios())
	if err != nil {
		t.Fatal(err)
	}
	const rows = 16
	cols := kern.NewCols(rows)
	for r := 0; r < rows; r++ {
		if err := kern.ExtractRow(sys, cols, r); err != nil {
			t.Fatal(err)
		}
	}
	var scratch core.BatchScratch
	kern.AssessBatch(rows, cols, &scratch) // warm the brief buffer
	allocs := testing.AllocsPerRun(50, func() {
		kern.AssessBatch(rows, cols, &scratch)
	})
	if allocs != 0 {
		t.Errorf("AssessBatch allocates %.1f objects per call, want 0", allocs)
	}
}

// TestNewBatchKernelRejectsInvalidScenario: scenario validation happens
// once at kernel build time, so AssessBatch can skip it per candidate.
func TestNewBatchKernelRejectsInvalidScenario(t *testing.T) {
	sys, err := core.Build(casestudy.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	bad := []failure.Scenario{{Scope: failure.ScopeArray, TargetAge: -time.Hour}}
	if _, err := core.NewBatchKernel(sys, bad); err == nil {
		t.Error("kernel accepted a scenario AssessBrief would reject")
	}
}

// TestExtractRowRejectsForeignShape: a system whose shape differs from
// the kernel's base design must be refused, not silently mis-assessed.
func TestExtractRowRejectsForeignShape(t *testing.T) {
	sys, err := core.Build(casestudy.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	kern, err := core.NewBatchKernel(sys, briefScenarios())
	if err != nil {
		t.Fatal(err)
	}
	other, err := core.Build(erasureDesign(5, 3))
	if err != nil {
		t.Fatal(err)
	}
	cols := kern.NewCols(1)
	if err := kern.ExtractRow(other, cols, 0); err == nil {
		t.Error("extract accepted a system with a different design shape")
	}
}
