package core

import (
	"fmt"
	"reflect"
	"time"

	"stordep/internal/device"
	"stordep/internal/failure"
	"stordep/internal/protect"
	"stordep/internal/units"
)

// This file implements incremental re-assessment for coordinate-descent
// style callers (internal/opt's Tune): a knob changes one hierarchy
// level or one device spec at a time, so re-running the changed
// technique's demand arithmetic against the cached records of every
// unchanged technique reproduces the full Build-and-assess outcome at a
// fraction of the cost. The fold order is exactly Build's per-device
// demand registration order, so every float sum is bit-identical to the
// legacy path — a DeltaAssessor score may replace a legacy score without
// perturbing a search's argmin or tie-breaks.

// deltaDemand is one captured device demand with the device resolved to
// its design index.
type deltaDemand struct {
	dev  int32
	tech string
	bw   units.Rate
	cap  units.ByteSize
	ship float64
}

// deltaFrag is everything one hierarchy level contributes to an
// assessment: the batch-kernel columns plus the level's device demands
// in registration order.
type deltaFrag struct {
	lag, accW, retSpan time.Duration
	restore            units.ByteSize
	copyIdx, readIdx   int32
	transportIdx       int32 // -1 when the technique names no transport
	name               string
	demands            []deltaDemand
}

// DeltaAssessor incrementally re-assesses variants of one base design:
// AssessDelta accepts a design differing from the base in level
// policies and representable spec fields, re-extracts only the changed
// levels' demand records, and re-folds the cached remainder through the
// columnar batch kernel. Obtain one with NewDeltaAssessor. A
// DeltaAssessor owns per-call scratch buffers and must not be shared
// between concurrent calls; the base design must not be mutated while
// the assessor is alive.
type DeltaAssessor struct {
	base *Design
	kern *BatchKernel

	nLevels  int
	nDevices int
	maxRows  int // primary + one technique per level

	baseSpecs []device.Spec
	primary   []deltaDemand
	baseFrags []deltaFrag

	retainer   bool
	costFactor float64
	covered    []bool

	// Demand-capture fleet: one clean device per base spec, reused (via
	// ResetDemands) across every fragment extraction. Demands are
	// policy/workload arithmetic only, so spec changes never alter them.
	fleet protect.DeviceMap
	devs  []*device.Device

	// Per-call scratch: candidate fragment/spec resolution, demand
	// totals, outlay rows, and the one-row kernel block.
	frags    []*deltaFrag
	specs    []*device.Spec
	repl     []deltaFrag // re-extracted fragments for changed levels
	totBW    []units.Rate
	totCap   []units.ByteSize
	rowTech  []string
	rowBase  []units.Money
	rowCount []int
	cols     *Cols
	bs       BatchScratch
}

// NewDeltaAssessor builds the incremental assessor for a base design and
// scenario set: it builds the base system once, compiles the batch
// kernel, captures every technique's demand records on a clean fleet,
// and verifies the captured state reproduces the legacy assessment of
// the base bit-for-bit. Any failure returns an error — the caller then
// keeps using the legacy path.
func NewDeltaAssessor(base *Design, scs []failure.Scenario) (*DeltaAssessor, error) {
	sys, err := Build(base)
	if err != nil {
		return nil, fmt.Errorf("core: delta: base design: %w", err)
	}
	kern, err := NewBatchKernel(sys, scs)
	if err != nil {
		return nil, fmt.Errorf("core: delta: %w", err)
	}
	da := &DeltaAssessor{
		base:     base,
		kern:     kern,
		nLevels:  kern.Levels(),
		nDevices: kern.Devices(),
	}
	da.maxRows = da.nLevels + 1

	da.baseSpecs = make([]device.Spec, da.nDevices)
	for i, pd := range base.Devices {
		da.baseSpecs[i] = pd.Spec
	}

	// Primary demands, captured on a clean fleet. Demands are
	// policy/workload arithmetic only (no technique reads its devices'
	// specs or prior demands), so a clean-fleet capture yields exactly
	// the records Build's shared fleet receives, in the same order.
	if err := da.buildFleet(); err != nil {
		return nil, fmt.Errorf("core: delta: %w", err)
	}
	if err := base.Primary.ApplyDemands(base.Workload, da.fleet); err != nil {
		return nil, fmt.Errorf("core: delta: primary: %w", err)
	}
	da.primary = appendDemands(nil, da.devs)

	da.baseFrags = make([]deltaFrag, da.nLevels)
	for j, tech := range base.Levels {
		f, err := da.fragment(tech, nil)
		if err != nil {
			return nil, fmt.Errorf("core: delta: level %d: %w", j+1, err)
		}
		da.baseFrags[j] = f
	}

	da.covered = make([]bool, da.nDevices)
	if base.Facility != nil && base.Facility.CostFactor != 0 {
		da.retainer = true
		da.costFactor = base.Facility.CostFactor
		primarySite := base.PrimaryPlacement().Site
		for i, pd := range base.Devices {
			da.covered[i] = pd.Placement.Site != "" && pd.Placement.Site == primarySite
		}
	}

	da.frags = make([]*deltaFrag, da.nLevels)
	da.specs = make([]*device.Spec, da.nDevices)
	da.repl = make([]deltaFrag, da.nLevels)
	da.totBW = make([]units.Rate, da.nDevices)
	da.totCap = make([]units.ByteSize, da.nDevices)
	da.rowTech = make([]string, da.nDevices*da.maxRows)
	da.rowBase = make([]units.Money, da.nDevices*da.maxRows)
	da.rowCount = make([]int, da.nDevices)
	da.cols = kern.NewCols(1)

	// Construction self-check: the zero-change assessment must reproduce
	// the legacy path exactly — outlay total and every scenario brief.
	outlays, briefs, ok := da.AssessDelta(base)
	if !ok {
		return nil, fmt.Errorf("core: delta: base design not re-assessable")
	}
	if outlays != sys.outlaysTotal {
		return nil, fmt.Errorf("core: delta: outlay mismatch: %v vs %v", outlays, sys.outlaysTotal)
	}
	var scratch Scratch
	for si, sc := range scs {
		want, err := sys.AssessBrief(sc, &scratch)
		if err != nil {
			return nil, fmt.Errorf("core: delta: base brief: %w", err)
		}
		if briefs[si] != want {
			return nil, fmt.Errorf("core: delta: brief mismatch under scenario %d", si)
		}
	}
	return da, nil
}

// buildFleet constructs the reusable demand-capture fleet: one fresh
// device per base spec, keyed by name and in design order.
func (da *DeltaAssessor) buildFleet() error {
	da.fleet = make(protect.DeviceMap, da.nDevices)
	da.devs = make([]*device.Device, da.nDevices)
	for i := range da.baseSpecs {
		dev, err := device.New(da.baseSpecs[i])
		if err != nil {
			return err
		}
		da.fleet[da.baseSpecs[i].Name] = dev
		da.devs[i] = dev
	}
	return nil
}

// appendDemands flattens a capture fleet's accumulated demands into
// records, in device order.
func appendDemands(out []deltaDemand, devs []*device.Device) []deltaDemand {
	for di, dev := range devs {
		dev.ScanDemands(func(dem device.Demand) {
			out = append(out, deltaDemand{
				dev:  int32(di),
				tech: dem.Technique,
				bw:   dem.Bandwidth,
				cap:  dem.Capacity,
				ship: dem.ShipmentsPerYear,
			})
		})
	}
	return out
}

// fragment captures one level's contribution from technique tech,
// applying the same validation Build would; an error means the level
// state cannot be represented and the caller must fall back. Demand
// records are appended to buf (may be nil), whose backing array the
// returned fragment adopts.
func (da *DeltaAssessor) fragment(tech protect.Technique, buf []deltaDemand) (deltaFrag, error) {
	var f deltaFrag
	if err := tech.Validate(); err != nil {
		return f, err
	}
	lv := tech.Level()
	if lv.Name == "" {
		return f, fmt.Errorf("level has no name")
	}
	if err := lv.Policy.Validate(); err != nil {
		return f, err
	}
	f.lag = lv.Policy.TransferLag()
	f.accW = lv.Policy.EffectiveAccW()
	f.retSpan = lv.Policy.RetentionSpan()
	f.restore = tech.RestoreSize(da.base.Workload)
	f.name = lv.Name
	ci := da.kern.DeviceIndex(tech.CopyDevice())
	ri := da.kern.DeviceIndex(tech.ReadDevice())
	if ci < 0 || ri < 0 {
		return f, fmt.Errorf("level %q references unknown device", lv.Name)
	}
	f.copyIdx, f.readIdx = int32(ci), int32(ri)
	f.transportIdx = -1
	if name := tech.TransportDevice(); name != "" {
		// Design.Validate rejects a transport name absent from the fleet,
		// so the legacy path must reproduce that error.
		ti := da.kern.DeviceIndex(name)
		if ti < 0 {
			return f, fmt.Errorf("level %q transport %q unknown", lv.Name, name)
		}
		f.transportIdx = int32(ti)
	}
	for _, dev := range da.devs {
		dev.ResetDemands()
	}
	if err := tech.ApplyDemands(da.base.Workload, da.fleet); err != nil {
		return f, err
	}
	f.demands = appendDemands(buf, da.devs)
	return f, nil
}

// levelEqual reports whether a candidate level is deeply equal to its
// base counterpart. The concrete case-study techniques are compared
// field by field (policies via Policy.Equal, allocation-free); anything
// else falls back to reflect.DeepEqual.
func levelEqual(x, y protect.Technique) bool {
	switch a := x.(type) {
	case *protect.SplitMirror:
		b, ok := y.(*protect.SplitMirror)
		return ok && a.InstanceName == b.InstanceName && a.Array == b.Array &&
			a.Pol.Equal(&b.Pol)
	case *protect.Backup:
		b, ok := y.(*protect.Backup)
		return ok && a.InstanceName == b.InstanceName && a.SourceArray == b.SourceArray &&
			a.Target == b.Target && a.Pol.Equal(&b.Pol)
	case *protect.Vaulting:
		b, ok := y.(*protect.Vaulting)
		return ok && a.InstanceName == b.InstanceName && a.BackupDevice == b.BackupDevice &&
			a.Vault == b.Vault && a.Transport == b.Transport &&
			a.BackupRetW == b.BackupRetW && a.Pol.Equal(&b.Pol)
	}
	return reflect.DeepEqual(x, y)
}

func primaryEqual(p, q *protect.Primary) bool {
	if p == nil || q == nil {
		return p == q
	}
	return *p == *q
}

func facilityEqual(p, q *Facility) bool {
	if p == nil || q == nil {
		return p == q
	}
	return *p == *q
}

// AssessDelta assesses a variant of the base design, re-extracting only
// the levels that changed. It returns the variant's outlay total, one
// Brief per kernel scenario (a scratch slice, valid until the next
// call), and ok=true. ok=false means the variant is outside the delta
// protocol — a change the cached tables cannot carry, a validation
// error, or an over-capacity fleet — and the caller must assess it
// through the legacy path (which also reproduces the exact error).
func (da *DeltaAssessor) AssessDelta(d *Design) (units.Money, []Brief, bool) {
	b := da.base
	if d.Name != b.Name ||
		!d.Workload.Equal(b.Workload) ||
		d.Requirements != b.Requirements ||
		!primaryEqual(d.Primary, b.Primary) ||
		!facilityEqual(d.Facility, b.Facility) ||
		len(d.Levels) != da.nLevels || len(d.Devices) != da.nDevices {
		return 0, nil, false
	}
	for i := range d.Devices {
		dp, bp := &d.Devices[i], &b.Devices[i]
		if dp.Placement != bp.Placement || dp.SparePlacement != bp.SparePlacement {
			return 0, nil, false
		}
		da.specs[i] = &da.baseSpecs[i]
		if dp.Spec == bp.Spec {
			continue
		}
		// The kernel froze name resolution, kinds, fixed delays and spare
		// provisioning; everything else about a spec is re-derived here.
		if dp.Spec.Name != bp.Spec.Name || dp.Spec.Kind != bp.Spec.Kind ||
			dp.Spec.Delay != bp.Spec.Delay || dp.Spec.Spare != bp.Spec.Spare {
			return 0, nil, false
		}
		da.specs[i] = &dp.Spec
	}
	for j := range d.Levels {
		if levelEqual(d.Levels[j], b.Levels[j]) {
			da.frags[j] = &da.baseFrags[j]
			continue
		}
		dm, dok := d.Levels[j].(protect.MultiSited)
		bm, bok := b.Levels[j].(protect.MultiSited)
		if dok != bok {
			return 0, nil, false
		}
		if dok {
			// Multi-sited survival is placement arithmetic baked into the
			// kernel; the fragment set and threshold must not move.
			if reflect.TypeOf(d.Levels[j]) != reflect.TypeOf(b.Levels[j]) ||
				dm.SurvivalThreshold() != bm.SurvivalThreshold() ||
				!reflect.DeepEqual(dm.CopyDevices(), bm.CopyDevices()) {
				return 0, nil, false
			}
		}
		f, err := da.fragment(d.Levels[j], da.repl[j].demands[:0])
		if err != nil {
			return 0, nil, false
		}
		da.repl[j] = f
		da.frags[j] = &da.repl[j]
	}

	// Duplicate level names fail Chain.Validate in Build; the legacy path
	// reproduces that error.
	for a := 0; a < da.nLevels; a++ {
		for c := a + 1; c < da.nLevels; c++ {
			if da.frags[a].name == da.frags[c].name {
				return 0, nil, false
			}
		}
	}

	for di := 0; di < da.nDevices; di++ {
		da.totBW[di] = 0
		da.totCap[di] = 0
		da.rowCount[di] = 0
	}
	// Demand fold: primary first, then levels in order — Build's exact
	// per-device registration order, so the float sums are bit-identical.
	if !da.foldDemands(da.primary) {
		return 0, nil, false
	}
	for j := 0; j < da.nLevels; j++ {
		if !da.foldDemands(da.frags[j].demands) {
			return 0, nil, false
		}
	}

	cols := da.cols
	var total units.Money
	var covered units.Money
	for di := 0; di < da.nDevices; di++ {
		sp := da.specs[di]
		maxBW := sp.MaxBandwidth()
		if da.totCap[di] > 0 {
			maxCap := sp.MaxCapacity()
			if maxCap <= 0 || float64(sp.RawCapacityFor(da.totCap[di])/maxCap) > 1 {
				return 0, nil, false
			}
		}
		if da.totBW[di] > 0 {
			if maxBW <= 0 || float64(da.totBW[di]/maxBW) > 1 {
				return 0, nil, false
			}
		}
		cols.DevMaxBW[di] = maxBW
		avail := maxBW - da.totBW[di]
		if avail < 0 {
			avail = 0
		}
		cols.DevAvail[di] = avail

		rows := da.rowCount[di]
		base := di * da.maxRows
		spare := sp.HasSpare()
		for x := 0; x < rows; x++ {
			rb := da.rowBase[base+x]
			item := rb
			if spare {
				item = rb + units.Money(sp.Spare.Discount)*rb
			}
			total += item
			if da.covered[di] {
				covered += rb
			}
		}
	}
	if da.retainer && covered > 0 {
		total += units.Money(da.costFactor) * covered
	}
	cols.OutlaysTotal[0] = total

	for j := 0; j < da.nLevels; j++ {
		f := da.frags[j]
		cols.LvlLag[j] = f.lag
		cols.LvlAccW[j] = f.accW
		cols.LvlRetSpan[j] = f.retSpan
		cols.LvlRestore[j] = f.restore
		cols.LvlCopy[j] = f.copyIdx
		cols.LvlRead[j] = f.readIdx
		cols.LvlTransport[j] = f.transportIdx
	}
	cols.Valid[0] = true
	cols.Err[0] = nil

	da.kern.AssessBatch(1, cols, &da.bs)
	return total, da.bs.Briefs, true
}

// foldDemands accumulates one technique's demand records into the
// bandwidth/capacity totals and the per-device outlay rows, replicating
// device.Device.Outlays: the first technique on a device carries the
// fixed cost (and an interconnect's provisioned-bandwidth cost), every
// demand adds its marginal annual cost. Returns false if a device
// accumulates more distinct technique rows than the scratch holds
// (possible only for techniques attributing demands to foreign names).
func (da *DeltaAssessor) foldDemands(recs []deltaDemand) bool {
	for i := range recs {
		r := &recs[i]
		di := int(r.dev)
		da.totBW[di] += r.bw
		da.totCap[di] += r.cap

		sp := da.specs[di]
		interconnect := sp.Kind == device.KindInterconnect
		base := di * da.maxRows
		n := da.rowCount[di]
		ri := -1
		for x := 0; x < n; x++ {
			if da.rowTech[base+x] == r.tech {
				ri = x
				break
			}
		}
		if ri < 0 {
			if n == da.maxRows {
				return false
			}
			ri = n
			da.rowCount[di] = n + 1
			da.rowTech[base+ri] = r.tech
			var first units.Money
			if ri == 0 {
				first = sp.Cost.Fixed
				if interconnect {
					first += units.Money(sp.Cost.PerMBPerSec * sp.MaxBandwidth().MBPS())
				}
			}
			da.rowBase[base+ri] = first
		}
		raw := sp.RawCapacityFor(r.cap)
		bw := r.bw
		if interconnect {
			bw = 0 // already charged at provisioned capacity
		}
		da.rowBase[base+ri] += sp.Cost.Annual(raw, bw, r.ship) - sp.Cost.Fixed
	}
	return true
}

// Scenarios returns the assessor's scenario set (shared slice,
// read-only); AssessDelta's briefs are indexed to match.
func (da *DeltaAssessor) Scenarios() []failure.Scenario { return da.kern.Scenarios() }
