package core_test

import (
	"sync"
	"testing"

	"stordep/internal/casestudy"
	"stordep/internal/core"
)

// TestScratchAliasingInterleaved: distinct Scratches and BatchScratches
// on the same System never share buffers. Four goroutines interleave
// AssessBrief and AssessBatch over one shared (immutable) System and
// kernel, each with private scratch state; under -race any accidental
// slice aliasing between the scratches trips the detector, and every
// goroutine's results must equal the serial reference bit for bit.
func TestScratchAliasingInterleaved(t *testing.T) {
	sys, err := core.Build(casestudy.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	scs := briefScenarios()
	kern, err := core.NewBatchKernel(sys, scs)
	if err != nil {
		t.Fatal(err)
	}

	// Serial reference, computed before any concurrency.
	ref := make([]core.Brief, len(scs))
	var refScratch core.Scratch
	for si, sc := range scs {
		b, err := sys.AssessBrief(sc, &refScratch)
		if err != nil {
			t.Fatal(err)
		}
		ref[si] = b
	}

	const goroutines = 4
	const rounds = 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var scratch core.Scratch
			var batch core.BatchScratch
			cols := kern.NewCols(2)
			for _, row := range []int{0, 1} {
				if err := kern.ExtractRow(sys, cols, row); err != nil {
					errs <- err
					return
				}
			}
			for round := 0; round < rounds; round++ {
				// Interleave: brief, then batch, then brief again, so
				// each path runs while the other's buffers are live.
				for si, sc := range scs {
					b, err := sys.AssessBrief(sc, &scratch)
					if err != nil {
						errs <- err
						return
					}
					if b != ref[si] {
						t.Errorf("goroutine %d round %d: brief %+v, want %+v", g, round, b, ref[si])
						return
					}
				}
				kern.AssessBatch(2, cols, &batch)
				for _, row := range []int{0, 1} {
					for si := range scs {
						if got := batch.Briefs[row*len(scs)+si]; got != ref[si] {
							t.Errorf("goroutine %d round %d: batch row %d %+v, want %+v", g, round, row, got, ref[si])
							return
						}
					}
				}
				for si, sc := range scs {
					b, err := sys.AssessBrief(sc, &scratch)
					if err != nil {
						errs <- err
						return
					}
					if b != ref[si] {
						t.Errorf("goroutine %d round %d: post-batch brief diverged", g, round)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
