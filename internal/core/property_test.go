package core_test

import (
	"testing"
	"testing/quick"
	"time"

	"stordep/internal/casestudy"
	"stordep/internal/core"
	"stordep/internal/failure"
	"stordep/internal/protect"
	"stordep/internal/units"
)

// Property: data loss is monotone non-decreasing in failure blast radius
// for the baseline design (each wider scope destroys a superset of
// copies).
func TestLossMonotoneInScopeProperty(t *testing.T) {
	sys, err := core.Build(casestudy.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	scopes := []failure.Scope{
		failure.ScopeObject, failure.ScopeArray, failure.ScopeBuilding,
		failure.ScopeSite, failure.ScopeRegion,
	}
	var prev time.Duration
	for _, scope := range scopes {
		a, err := sys.Assess(failure.Scenario{Scope: scope})
		if err != nil {
			t.Fatal(err)
		}
		if a.DataLoss < prev {
			t.Errorf("loss shrank at scope %v: %v < %v", scope, a.DataLoss, prev)
		}
		prev = a.DataLoss
	}
}

// Property: recovery time grows with the data capacity being restored
// (transfers dominate), for any capacity scale that still fits.
func TestRTMonotoneInCapacityProperty(t *testing.T) {
	rt := func(scale float64) (time.Duration, bool) {
		d := casestudy.Baseline()
		w, err := d.Workload.Scale(scale)
		if err != nil {
			return 0, false
		}
		d.Workload = w
		sys, err := core.Build(d)
		if err != nil {
			return 0, false
		}
		a, err := sys.Assess(failure.Scenario{Scope: failure.ScopeArray})
		if err != nil {
			return 0, false
		}
		return a.RecoveryTime, true
	}
	f := func(a, b uint8) bool {
		// Scales in (0, 1.1]: the baseline sits at 87% capacity already.
		s1 := float64(a%100+1) / 100.0
		s2 := float64(b%100+1) / 100.0
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		t1, ok1 := rt(s1)
		t2, ok2 := rt(s2)
		if !ok1 || !ok2 {
			return false
		}
		return t1 <= t2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: outlays are monotone in mirror retention count.
func TestOutlaysMonotoneInRetentionProperty(t *testing.T) {
	outlays := func(ret int) (units.Money, bool) {
		d := casestudy.Baseline()
		pol := casestudy.SplitMirrorPolicy()
		pol.RetCnt = ret
		pol.RetW = time.Duration(ret) * pol.Primary.AccW
		d.Levels[0] = &protect.SplitMirror{Array: "disk-array", Pol: pol}
		sys, err := core.Build(d)
		if err != nil {
			return 0, false
		}
		return sys.Outlays().Total(), true
	}
	f := func(a, b uint8) bool {
		r1, r2 := int(a%4)+1, int(b%4)+1
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		o1, ok1 := outlays(r1)
		o2, ok2 := outlays(r2)
		return ok1 && ok2 && o1 <= o2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: penalties are linear in the penalty rates: doubling both
// rates doubles every scenario's penalties, leaving outlays unchanged.
func TestPenaltyLinearityProperty(t *testing.T) {
	f := func(mult uint8) bool {
		m := float64(mult%10) + 1
		base := casestudy.Baseline()
		scaled := casestudy.Baseline()
		scaled.Requirements.UnavailPenaltyRate *= units.PenaltyRate(m)
		scaled.Requirements.LossPenaltyRate *= units.PenaltyRate(m)
		sysBase, err := core.Build(base)
		if err != nil {
			return false
		}
		sysScaled, err := core.Build(scaled)
		if err != nil {
			return false
		}
		for _, sc := range failure.CaseStudyScenarios() {
			a1, err := sysBase.Assess(sc)
			if err != nil {
				return false
			}
			a2, err := sysScaled.Assess(sc)
			if err != nil {
				return false
			}
			diff := float64(a2.Cost.Penalties.Total()) - m*float64(a1.Cost.Penalties.Total())
			if diff < -1 || diff > 1 {
				return false
			}
			if a1.Cost.Outlays.Total() != a2.Cost.Outlays.Total() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: degraded loss equals healthy loss plus the outage for every
// outage length, whenever the degraded level is on the recovery path.
func TestDegradedShiftExactProperty(t *testing.T) {
	sys, err := core.Build(casestudy.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	sc := failure.Scenario{Scope: failure.ScopeArray}
	healthy, err := sys.Assess(sc)
	if err != nil {
		t.Fatal(err)
	}
	f := func(hours uint16) bool {
		outage := time.Duration(hours) * time.Hour
		a, err := sys.AssessDegraded(sc, "backup", outage)
		if err != nil {
			return false
		}
		return a.DataLoss == healthy.DataLoss+outage
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
