package protect

import (
	"errors"
	"math"
	"testing"
	"time"

	"stordep/internal/device"
	"stordep/internal/hierarchy"
	"stordep/internal/units"
	"stordep/internal/workload"
)

// Baseline policies from Table 3.
func splitMirrorPolicy() hierarchy.Policy {
	return hierarchy.Policy{
		Primary: hierarchy.WindowSet{AccW: 12 * time.Hour, Rep: hierarchy.RepFull},
		RetCnt:  4,
		RetW:    2 * units.Day,
		CopyRep: hierarchy.RepFull,
	}
}

func backupPolicy() hierarchy.Policy {
	return hierarchy.Policy{
		Primary: hierarchy.WindowSet{AccW: units.Week, PropW: 48 * time.Hour, HoldW: time.Hour, Rep: hierarchy.RepFull},
		RetCnt:  4,
		RetW:    4 * units.Week,
		CopyRep: hierarchy.RepFull,
	}
}

func vaultPolicy() hierarchy.Policy {
	return hierarchy.Policy{
		Primary: hierarchy.WindowSet{
			AccW:  4 * units.Week,
			PropW: 24 * time.Hour,
			HoldW: 4*units.Week + 12*time.Hour,
			Rep:   hierarchy.RepFull,
		},
		RetCnt:  39,
		RetW:    3 * units.Year,
		CopyRep: hierarchy.RepFull,
	}
}

func testDevices(t *testing.T) DeviceMap {
	t.Helper()
	m := DeviceMap{}
	for _, spec := range []device.Spec{
		device.MidrangeArray(), device.TapeLibrary(), device.TapeVault(),
		device.AirShipment(), device.WANLinks(1), device.RemoteMirrorArray(),
	} {
		d, err := device.New(spec)
		if err != nil {
			t.Fatal(err)
		}
		m[spec.Name] = d
	}
	return m
}

func demandFor(t *testing.T, d *device.Device, technique string) device.Demand {
	t.Helper()
	var sum device.Demand
	found := false
	for _, dem := range d.Demands() {
		if dem.Technique == technique {
			sum.Bandwidth += dem.Bandwidth
			sum.Capacity += dem.Capacity
			sum.ShipmentsPerYear += dem.ShipmentsPerYear
			found = true
		}
	}
	if !found {
		t.Fatalf("no demand for %q on %s", technique, d.Name())
	}
	sum.Technique = technique
	return sum
}

func TestDeviceMapGet(t *testing.T) {
	m := testDevices(t)
	if _, err := m.Get(device.NameDiskArray); err != nil {
		t.Errorf("Get(disk-array) = %v", err)
	}
	if _, err := m.Get("nope"); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("Get(nope) = %v, want ErrUnknownDevice", err)
	}
}

func TestKindStrings(t *testing.T) {
	tests := []struct{ got, want string }{
		{KindPrimary.String(), "foreground"},
		{KindSplitMirror.String(), "split-mirror"},
		{KindSnapshot.String(), "virtual-snapshot"},
		{KindSyncMirror.String(), "sync-mirror"},
		{KindAsyncMirror.String(), "async-mirror"},
		{KindAsyncBatchMirror.String(), "async-batch-mirror"},
		{KindBackup.String(), "backup"},
		{KindVaulting.String(), "vaulting"},
		{Kind(0).String(), "Kind(0)"},
		{MirrorSync.String(), "sync"},
		{MirrorAsync.String(), "async"},
		{MirrorAsyncBatch.String(), "async-batch"},
		{MirrorMode(0).String(), "MirrorMode(0)"},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("got %q, want %q", tt.got, tt.want)
		}
	}
}

func TestPrimaryDemands(t *testing.T) {
	w := workload.Cello()
	devs := testDevices(t)
	p := &Primary{Array: device.NameDiskArray}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := p.ApplyDemands(w, devs); err != nil {
		t.Fatal(err)
	}
	dem := demandFor(t, devs[device.NameDiskArray], "foreground")
	if dem.Bandwidth != w.AvgAccessRate {
		t.Errorf("foreground bw = %v, want %v", dem.Bandwidth, w.AvgAccessRate)
	}
	if dem.Capacity != w.DataCap {
		t.Errorf("foreground cap = %v, want %v", dem.Capacity, w.DataCap)
	}
	if p.RestoreSize(w) != w.DataCap {
		t.Error("primary restore size should be the object")
	}
	if p.Level().Name != "" {
		t.Error("primary should not contribute a hierarchy level")
	}
}

// TestSplitMirrorMatchesTable5 checks the split-mirror demands against the
// published utilization: 72.8% capacity (five full mirrors, RAID-1) and
// 0.6% bandwidth (resilvering at ~3.2 MB/s) on the 512 MB/s array.
func TestSplitMirrorMatchesTable5(t *testing.T) {
	w := workload.Cello()
	devs := testDevices(t)
	sm := &SplitMirror{Array: device.NameDiskArray, Pol: splitMirrorPolicy()}
	if err := sm.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := sm.ApplyDemands(w, devs); err != nil {
		t.Fatal(err)
	}
	dem := demandFor(t, devs[device.NameDiskArray], sm.Name())
	if want := 5 * 1360 * units.GB; dem.Capacity != want {
		t.Errorf("split mirror cap = %v, want %v", dem.Capacity, want)
	}
	// Resilver: 2 x batchUpdR(60h) x 5 = 2 x 317 x 5 = 3170 KB/s.
	if want := 3170 * units.KBPerSec; math.Abs(float64(dem.Bandwidth-want)) > float64(units.KBPerSec) {
		t.Errorf("split mirror bw = %v, want ~%v", dem.Bandwidth, want)
	}
	arr := devs[device.NameDiskArray]
	if u := arr.Utilizations()[0]; math.Abs(u.CapUtil-0.728) > 0.001 {
		t.Errorf("split mirror capUtil = %.4f, want 0.728", u.CapUtil)
	}
	if u := arr.Utilizations()[0]; math.Abs(u.BWUtil-0.006) > 0.001 {
		t.Errorf("split mirror bwUtil = %.4f, want 0.006", u.BWUtil)
	}
}

func TestSnapshotDemands(t *testing.T) {
	w := workload.Cello()
	devs := testDevices(t)
	sn := &Snapshot{Array: device.NameDiskArray, Pol: splitMirrorPolicy()}
	if err := sn.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := sn.ApplyDemands(w, devs); err != nil {
		t.Fatal(err)
	}
	dem := demandFor(t, devs[device.NameDiskArray], sn.Name())
	// Copy-on-write costs one extra read and write per foreground write.
	if want := 2 * w.AvgUpdateRate; dem.Bandwidth != want {
		t.Errorf("snapshot bw = %v, want %v", dem.Bandwidth, want)
	}
	// Capacity: sum of deltas for 4 snapshots at 12h spacing; far below
	// the five full copies split mirrors need.
	var want units.ByteSize
	for k := 1; k <= 4; k++ {
		want += w.UniqueBytes(time.Duration(k) * 12 * time.Hour)
	}
	if dem.Capacity != want {
		t.Errorf("snapshot cap = %v, want %v", dem.Capacity, want)
	}
	if dem.Capacity >= 5*w.DataCap/10 {
		t.Errorf("snapshot capacity %v should be far below mirror capacity", dem.Capacity)
	}
	if got := sn.RestoreSize(w); got != w.UniqueBytes(48*time.Hour) {
		t.Errorf("snapshot restore size = %v", got)
	}
}

// TestBackupMatchesTable5 checks backup demands: ~8.1 MB/s on both array
// and library (full 1360 GB over a 48-hour window) and 6.6 TB of library
// capacity (four retained fulls plus one in flight).
func TestBackupMatchesTable5(t *testing.T) {
	w := workload.Cello()
	devs := testDevices(t)
	b := &Backup{SourceArray: device.NameDiskArray, Target: device.NameTapeLibrary, Pol: backupPolicy()}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := b.ApplyDemands(w, devs); err != nil {
		t.Fatal(err)
	}
	arrDem := demandFor(t, devs[device.NameDiskArray], b.Name())
	libDem := demandFor(t, devs[device.NameTapeLibrary], b.Name())
	if math.Abs(arrDem.Bandwidth.MBPS()-8.06) > 0.05 {
		t.Errorf("backup array bw = %v, want ~8.06MB/s", arrDem.Bandwidth)
	}
	if arrDem.Capacity != 0 {
		t.Errorf("backup must not charge source capacity, got %v", arrDem.Capacity)
	}
	if libDem.Bandwidth != arrDem.Bandwidth {
		t.Errorf("library bw %v != array bw %v", libDem.Bandwidth, arrDem.Bandwidth)
	}
	if want := 5 * 1360 * units.GB; libDem.Capacity != want {
		t.Errorf("library cap = %v, want %v (6.6TB)", libDem.Capacity, want)
	}
	lib := devs[device.NameTapeLibrary]
	if u := lib.BWUtil(); math.Abs(u-0.034) > 0.001 {
		t.Errorf("library bwUtil = %.4f, want 0.034", u)
	}
	if u := lib.CapUtil(); math.Abs(u-0.034) > 0.001 {
		t.Errorf("library capUtil = %.4f, want 0.034", u)
	}
	if got := b.RestoreSize(w); got != w.DataCap {
		t.Errorf("full-only restore size = %v, want %v", got, w.DataCap)
	}
}

// TestBackupWithIncrementals exercises the F+I cycle of Table 7: weekly
// fulls (48h windows) plus five daily cumulative incrementals.
func TestBackupWithIncrementals(t *testing.T) {
	w := workload.Cello()
	devs := testDevices(t)
	pol := hierarchy.Policy{
		Primary:   hierarchy.WindowSet{AccW: 48 * time.Hour, PropW: 48 * time.Hour, HoldW: time.Hour, Rep: hierarchy.RepFull},
		Secondary: &hierarchy.WindowSet{AccW: 24 * time.Hour, PropW: 12 * time.Hour, HoldW: time.Hour, Rep: hierarchy.RepPartial},
		CycleCnt:  5,
		RetCnt:    4,
		RetW:      4 * units.Week,
		CopyRep:   hierarchy.RepFull,
	}
	b := &Backup{SourceArray: device.NameDiskArray, Target: device.NameTapeLibrary, Pol: pol}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := b.ApplyDemands(w, devs); err != nil {
		t.Fatal(err)
	}
	// Largest incremental: unique updates over 5 days.
	wantIncr := w.UniqueBytes(5 * units.Day)
	if got := b.largestIncrement(w); got != wantIncr {
		t.Errorf("largest incremental = %v, want %v", got, wantIncr)
	}
	// Rate: max(full over 48h, incr over 12h). Full = 1360GB/48h = 8.06;
	// incr = ~130GB/12h = ~3.1 MB/s, so full dominates.
	dem := demandFor(t, devs[device.NameTapeLibrary], b.Name())
	if math.Abs(dem.Bandwidth.MBPS()-8.06) > 0.05 {
		t.Errorf("F+I bw = %v, want full-dominated ~8.06MB/s", dem.Bandwidth)
	}
	// Capacity: 4 cycles x (full + 5 growing incrementals) + extra full.
	perCycle := w.DataCap
	for k := 1; k <= 5; k++ {
		perCycle += w.UniqueBytes(time.Duration(k) * units.Day)
	}
	if want := 4*perCycle + w.DataCap; dem.Capacity != want {
		t.Errorf("F+I cap = %v, want %v", dem.Capacity, want)
	}
	// Restore: full + largest incremental.
	if got := b.RestoreSize(w); got != w.DataCap+wantIncr {
		t.Errorf("F+I restore size = %v", got)
	}
}

// TestVaultingMatchesTable5 checks vault capacity (39 fulls = 51.8 TB) and
// that the matched hold/retention windows add no library demands.
func TestVaultingMatchesTable5(t *testing.T) {
	w := workload.Cello()
	devs := testDevices(t)
	v := &Vaulting{
		BackupDevice: device.NameTapeLibrary,
		Vault:        device.NameTapeVault,
		Transport:    device.NameAirShipment,
		Pol:          vaultPolicy(),
		BackupRetW:   4 * units.Week,
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := v.ApplyDemands(w, devs); err != nil {
		t.Fatal(err)
	}
	dem := demandFor(t, devs[device.NameTapeVault], v.Name())
	if want := 39 * 1360 * units.GB; dem.Capacity != want {
		t.Errorf("vault cap = %v, want %v (51.8TB)", dem.Capacity, want)
	}
	if u := devs[device.NameTapeVault].CapUtil(); math.Abs(u-0.026) > 0.001 {
		t.Errorf("vault capUtil = %.4f, want 0.026", u)
	}
	// 13 shipments per year (every 4 weeks).
	ship := demandFor(t, devs[device.NameAirShipment], v.Name())
	if math.Abs(ship.ShipmentsPerYear-13) > 1e-9 {
		t.Errorf("shipments = %v, want 13", ship.ShipmentsPerYear)
	}
	// holdW (4wk12h) >= backup retW (4wk): no library demand.
	for _, d := range devs[device.NameTapeLibrary].Demands() {
		if d.Technique == v.Name() {
			t.Errorf("unexpected library demand: %+v", d)
		}
	}
}

func TestVaultingExtraCopyWhenHoldShort(t *testing.T) {
	w := workload.Cello()
	devs := testDevices(t)
	pol := vaultPolicy()
	pol.Primary.AccW = units.Week
	pol.Primary.HoldW = 12 * time.Hour // shorter than backup retention
	v := &Vaulting{
		BackupDevice: device.NameTapeLibrary,
		Vault:        device.NameTapeVault,
		Transport:    device.NameAirShipment,
		Pol:          pol,
		BackupRetW:   4 * units.Week,
	}
	if err := v.ApplyDemands(w, devs); err != nil {
		t.Fatal(err)
	}
	dem := demandFor(t, devs[device.NameTapeLibrary], v.Name())
	if dem.Capacity != w.DataCap {
		t.Errorf("extra tape copy capacity = %v, want %v", dem.Capacity, w.DataCap)
	}
	if dem.Bandwidth <= 0 {
		t.Error("extra tape copy needs bandwidth")
	}
	// Weekly shipments now.
	ship := demandFor(t, devs[device.NameAirShipment], v.Name())
	if math.Abs(ship.ShipmentsPerYear-52) > 1e-9 {
		t.Errorf("shipments = %v, want 52", ship.ShipmentsPerYear)
	}
}

func TestMirrorLinkRates(t *testing.T) {
	w := workload.Cello()
	pol := hierarchy.Policy{
		Primary: hierarchy.WindowSet{AccW: time.Minute, PropW: time.Minute, Rep: hierarchy.RepFull},
		RetCnt:  1,
		RetW:    time.Minute,
		CopyRep: hierarchy.RepFull,
	}
	tests := []struct {
		mode MirrorMode
		want units.Rate
	}{
		{MirrorSync, 7990 * units.KBPerSec},      // peak: 10x burst
		{MirrorAsync, 799 * units.KBPerSec},      // average updates
		{MirrorAsyncBatch, 727 * units.KBPerSec}, // unique updates in 1 min
	}
	for _, tt := range tests {
		t.Run(tt.mode.String(), func(t *testing.T) {
			m := &Mirror{Mode: tt.mode, DestArray: device.NameMirrorArray, Links: device.NameWANLinks, Pol: pol}
			if err := m.Validate(); err != nil {
				t.Fatal(err)
			}
			if got := m.LinkRate(w); got != tt.want {
				t.Errorf("LinkRate = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMirrorDemands(t *testing.T) {
	w := workload.Cello()
	devs := testDevices(t)
	pol := hierarchy.Policy{
		Primary: hierarchy.WindowSet{AccW: time.Minute, PropW: time.Minute, Rep: hierarchy.RepFull},
		RetCnt:  1,
		RetW:    time.Minute,
		CopyRep: hierarchy.RepFull,
	}
	m := &Mirror{Mode: MirrorAsyncBatch, DestArray: device.NameMirrorArray, Links: device.NameWANLinks, Pol: pol}
	if err := m.ApplyDemands(w, devs); err != nil {
		t.Fatal(err)
	}
	linkDem := demandFor(t, devs[device.NameWANLinks], m.Name())
	if linkDem.Bandwidth != 727*units.KBPerSec {
		t.Errorf("link bw = %v", linkDem.Bandwidth)
	}
	destDem := demandFor(t, devs[device.NameMirrorArray], m.Name())
	if destDem.Capacity != w.DataCap {
		t.Errorf("mirror cap = %v, want %v", destDem.Capacity, w.DataCap)
	}
	if destDem.Bandwidth != linkDem.Bandwidth {
		t.Error("destination bandwidth should match link rate")
	}
	if m.TransportDevice() != device.NameWANLinks {
		t.Error("mirror restores cross the links")
	}
}

func TestValidateErrors(t *testing.T) {
	pol := splitMirrorPolicy()
	tests := []struct {
		name string
		tech Technique
	}{
		{"primary no array", &Primary{}},
		{"mirror no device", &SplitMirror{Pol: pol}},
		{"mirror bad policy", &SplitMirror{Array: "a", Pol: hierarchy.Policy{}}},
		{"snapshot no array", &Snapshot{Pol: pol}},
		{"snapshot bad policy", &Snapshot{Array: "a"}},
		{"interarray bad mode", &Mirror{DestArray: "d", Links: "l", Pol: pol}},
		{"interarray no devices", &Mirror{Mode: MirrorSync, Pol: pol}},
		{"interarray bad policy", &Mirror{Mode: MirrorSync, DestArray: "d", Links: "l"}},
		{"backup no devices", &Backup{Pol: pol}},
		{"backup same device", &Backup{SourceArray: "a", Target: "a", Pol: pol}},
		{"backup bad policy", &Backup{SourceArray: "a", Target: "b"}},
		{"vault no devices", &Vaulting{Pol: pol}},
		{"vault bad policy", &Vaulting{BackupDevice: "a", Vault: "b", Transport: "c"}},
		{"vault negative retW", &Vaulting{BackupDevice: "a", Vault: "b", Transport: "c", Pol: pol, BackupRetW: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.tech.Validate(); err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
}

func TestApplyDemandsUnknownDevice(t *testing.T) {
	w := workload.Cello()
	devs := testDevices(t)
	techs := []Technique{
		&Primary{Array: "ghost"},
		&SplitMirror{Array: "ghost", Pol: splitMirrorPolicy()},
		&Snapshot{Array: "ghost", Pol: splitMirrorPolicy()},
		&Backup{SourceArray: "ghost", Target: device.NameTapeLibrary, Pol: backupPolicy()},
		&Backup{SourceArray: device.NameDiskArray, Target: "ghost", Pol: backupPolicy()},
		&Vaulting{BackupDevice: device.NameTapeLibrary, Vault: "ghost", Transport: device.NameAirShipment, Pol: vaultPolicy()},
		&Vaulting{BackupDevice: device.NameTapeLibrary, Vault: device.NameTapeVault, Transport: "ghost", Pol: vaultPolicy()},
		&Mirror{Mode: MirrorSync, DestArray: "ghost", Links: device.NameWANLinks, Pol: splitMirrorPolicy()},
		&Mirror{Mode: MirrorSync, DestArray: device.NameMirrorArray, Links: "ghost", Pol: splitMirrorPolicy()},
	}
	for _, tech := range techs {
		if err := tech.ApplyDemands(w, devs); !errors.Is(err, ErrUnknownDevice) {
			t.Errorf("%T.ApplyDemands = %v, want ErrUnknownDevice", tech, err)
		}
	}
}

func TestInstanceNames(t *testing.T) {
	sm := &SplitMirror{InstanceName: "pm-mirrors", Array: "a", Pol: splitMirrorPolicy()}
	if sm.Name() != "pm-mirrors" {
		t.Errorf("Name = %q", sm.Name())
	}
	if sm.Level().Name != "pm-mirrors" {
		t.Errorf("Level name = %q", sm.Level().Name)
	}
	b := &Backup{SourceArray: "a", Target: "b", Pol: backupPolicy()}
	if b.Name() != "backup" {
		t.Errorf("default name = %q", b.Name())
	}
}
