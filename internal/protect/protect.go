// Package protect models the data protection techniques of §3.2: the
// primary copy, split-mirror and virtual-snapshot point-in-time copies,
// synchronous / asynchronous / batched-asynchronous inter-array mirroring,
// backup with full and incremental cycles, and remote vaulting.
//
// The key insight of the paper is that all of these share one abstraction:
// they create, retain and propagate retrieval points (RPs), configured by
// a single parameter set (hierarchy.Policy). What differs per technique is
// how policy parameters translate into bandwidth and capacity demands on
// the underlying devices (§3.2.3), and what must be moved at recovery
// time. This package encodes exactly those differences.
package protect

import (
	"errors"
	"fmt"
	"time"

	"stordep/internal/device"
	"stordep/internal/hierarchy"
	"stordep/internal/units"
	"stordep/internal/workload"
)

// Kind enumerates the modeled techniques.
type Kind int

// Technique kinds.
const (
	KindPrimary Kind = iota + 1
	KindSplitMirror
	KindSnapshot
	KindSyncMirror
	KindAsyncMirror
	KindAsyncBatchMirror
	KindBackup
	KindVaulting
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindPrimary:
		return "foreground"
	case KindSplitMirror:
		return "split-mirror"
	case KindSnapshot:
		return "virtual-snapshot"
	case KindSyncMirror:
		return "sync-mirror"
	case KindAsyncMirror:
		return "async-mirror"
	case KindAsyncBatchMirror:
		return "async-batch-mirror"
	case KindBackup:
		return "backup"
	case KindVaulting:
		return "vaulting"
	case KindErasureCode:
		return "erasure-code"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// DeviceMap resolves device names to configured devices while demands are
// being applied.
type DeviceMap map[string]*device.Device

// ErrUnknownDevice is returned when a technique references a device name
// absent from the design.
var ErrUnknownDevice = errors.New("protect: unknown device")

// Get returns the named device.
func (m DeviceMap) Get(name string) (*device.Device, error) {
	d, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDevice, name)
	}
	return d, nil
}

// Technique is a configured data protection technique. Implementations
// convert their policy into device demands and describe their recovery
// behaviour.
type Technique interface {
	// Name is the unique instance name used in the hierarchy, demand
	// attribution and reports.
	Name() string
	// Kind identifies the model.
	Kind() Kind
	// Level returns the hierarchy level this technique contributes
	// (zero-value Level with empty name for the primary copy, which is
	// level 0 by convention).
	Level() hierarchy.Level
	// ApplyDemands computes the technique's normal-mode bandwidth and
	// capacity demands (§3.2.3) and registers them on its devices.
	ApplyDemands(w *workload.Workload, devs DeviceMap) error
	// CopyDevice names the device holding this technique's retained RPs
	// (the recovery source when this level serves a restore).
	CopyDevice() string
	// ReadDevice names the device that streams the data during a restore
	// from this level. It differs from CopyDevice only when the retained
	// media cannot be read in place: vaulted tapes must return to a tape
	// library.
	ReadDevice() string
	// TransportDevice names the interconnect or transport crossed when
	// restoring from this level ("" when the copy is directly reachable,
	// e.g. on the same array or SAN).
	TransportDevice() string
	// RestoreSize returns the volume that must be transferred to rebuild
	// the full data object from this level's RPs: a full copy plus, for
	// cyclic policies, the worst-case incremental chain.
	RestoreSize(w *workload.Workload) units.ByteSize
	// Validate checks the technique's configuration.
	Validate() error
}

// Common validation errors.
var (
	ErrNoDeviceName = errors.New("protect: technique needs its device names configured")
	ErrSameDevice   = errors.New("protect: source and destination must differ")
)

// ---------------------------------------------------------------------------
// Primary copy (level 0)

// Primary is the foreground workload's primary copy on a disk array. It is
// not a protection technique, but it competes for the same device
// resources, so it participates in demand accounting under the technique
// name "foreground".
type Primary struct {
	// Array names the disk array holding the primary copy.
	Array string
}

var _ Technique = (*Primary)(nil)

// Name implements Technique.
func (p *Primary) Name() string { return KindPrimary.String() }

// Kind implements Technique.
func (p *Primary) Kind() Kind { return KindPrimary }

// Level implements Technique; the primary copy is level 0, outside the
// secondary chain.
func (p *Primary) Level() hierarchy.Level { return hierarchy.Level{} }

// ApplyDemands places the foreground access bandwidth and the object's
// capacity on the primary array.
func (p *Primary) ApplyDemands(w *workload.Workload, devs DeviceMap) error {
	arr, err := devs.Get(p.Array)
	if err != nil {
		return err
	}
	arr.AddDemand(device.Demand{
		Technique: p.Name(),
		Bandwidth: w.AvgAccessRate,
		Capacity:  w.DataCap,
	})
	return nil
}

// CopyDevice implements Technique.
func (p *Primary) CopyDevice() string { return p.Array }

// TransportDevice implements Technique.
func (p *Primary) TransportDevice() string { return "" }

// ReadDevice implements Technique.
func (p *Primary) ReadDevice() string { return p.Array }

// RestoreSize implements Technique: the primary copy is the object itself.
func (p *Primary) RestoreSize(w *workload.Workload) units.ByteSize { return w.DataCap }

// Validate implements Technique.
func (p *Primary) Validate() error {
	if p.Array == "" {
		return fmt.Errorf("%w (primary array)", ErrNoDeviceName)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Split mirror PiT copies

// SplitMirror maintains a circular buffer of split mirrors on the primary
// array (§3.2.3): retCnt accessible mirrors plus one undergoing
// resilvering, each a full copy of the object.
type SplitMirror struct {
	// InstanceName optionally overrides the default instance name, so two
	// techniques of the same kind can coexist in one design.
	InstanceName string
	// Array names the disk array holding the mirrors (same array as the
	// primary copy in the paper's designs).
	Array string
	// Pol is the RP policy (accW = split period, retCnt mirrors, ...).
	Pol hierarchy.Policy
}

var _ Technique = (*SplitMirror)(nil)

// Name implements Technique.
func (s *SplitMirror) Name() string { return nameOr(s.InstanceName, KindSplitMirror) }

// Kind implements Technique.
func (s *SplitMirror) Kind() Kind { return KindSplitMirror }

// Level implements Technique.
func (s *SplitMirror) Level() hierarchy.Level {
	return hierarchy.Level{Name: s.Name(), Policy: s.Pol}
}

// ApplyDemands registers capacity for retCnt+1 full mirrors plus the
// resilvering bandwidth. When a mirror becomes eligible for resilvering it
// must absorb all unique updates since it was split retCnt+1 accumulation
// windows ago; each byte is read from the primary copy and written to the
// mirror, and one mirror is resilvered every accW.
func (s *SplitMirror) ApplyDemands(w *workload.Workload, devs DeviceMap) error {
	arr, err := devs.Get(s.Array)
	if err != nil {
		return err
	}
	span := time.Duration(s.Pol.RetCnt+1) * s.Pol.Primary.AccW
	resilverVol := w.UniqueBytes(span)
	rate := 2 * units.RateOf(resilverVol, s.Pol.Primary.AccW) // read + write
	arr.AddDemand(device.Demand{
		Technique: s.Name(),
		Bandwidth: rate,
		Capacity:  units.ByteSize(s.Pol.RetCnt+1) * w.DataCap,
	})
	return nil
}

// CopyDevice implements Technique.
func (s *SplitMirror) CopyDevice() string { return s.Array }

// TransportDevice implements Technique.
func (s *SplitMirror) TransportDevice() string { return "" }

// ReadDevice implements Technique.
func (s *SplitMirror) ReadDevice() string { return s.Array }

// RestoreSize implements Technique: each mirror is a full copy.
func (s *SplitMirror) RestoreSize(w *workload.Workload) units.ByteSize { return w.DataCap }

// Validate implements Technique.
func (s *SplitMirror) Validate() error {
	if s.Array == "" {
		return fmt.Errorf("%w (split mirror array)", ErrNoDeviceName)
	}
	if err := s.Pol.Validate(); err != nil {
		return fmt.Errorf("split mirror: %w", err)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Virtual snapshot PiT copies

// Snapshot maintains copy-on-write virtual snapshots on the primary array.
// The model is the update-in-place variant of §3.2.3: old values are
// copied out before each update, costing an additional read and write per
// foreground write; capacity grows only with unique updates, since
// unmodified data shares physical storage with the primary copy.
type Snapshot struct {
	InstanceName string
	// Array names the disk array holding the snapshots.
	Array string
	// Pol is the RP policy (accW = snapshot period, retCnt snapshots).
	Pol hierarchy.Policy
}

var _ Technique = (*Snapshot)(nil)

// Name implements Technique.
func (s *Snapshot) Name() string { return nameOr(s.InstanceName, KindSnapshot) }

// Kind implements Technique.
func (s *Snapshot) Kind() Kind { return KindSnapshot }

// Level implements Technique.
func (s *Snapshot) Level() hierarchy.Level {
	return hierarchy.Level{Name: s.Name(), Policy: s.Pol}
}

// ApplyDemands registers the copy-on-write overhead (2 x the update rate)
// and the capacity to hold each retained snapshot's delta against the
// current primary: the k-th oldest snapshot has diverged by the unique
// updates of k accumulation windows.
func (s *Snapshot) ApplyDemands(w *workload.Workload, devs DeviceMap) error {
	arr, err := devs.Get(s.Array)
	if err != nil {
		return err
	}
	var cap units.ByteSize
	for k := 1; k <= s.Pol.RetCnt; k++ {
		cap += w.UniqueBytes(time.Duration(k) * s.Pol.Primary.AccW)
	}
	arr.AddDemand(device.Demand{
		Technique: s.Name(),
		Bandwidth: 2 * w.AvgUpdateRate,
		Capacity:  cap,
	})
	return nil
}

// CopyDevice implements Technique.
func (s *Snapshot) CopyDevice() string { return s.Array }

// TransportDevice implements Technique.
func (s *Snapshot) TransportDevice() string { return "" }

// ReadDevice implements Technique.
func (s *Snapshot) ReadDevice() string { return s.Array }

// RestoreSize implements Technique. A snapshot restore rolls back only the
// diverged data, bounded by one retention span of unique updates.
func (s *Snapshot) RestoreSize(w *workload.Workload) units.ByteSize {
	span := time.Duration(s.Pol.RetCnt) * s.Pol.Primary.AccW
	return w.UniqueBytes(span)
}

// Validate implements Technique.
func (s *Snapshot) Validate() error {
	if s.Array == "" {
		return fmt.Errorf("%w (snapshot array)", ErrNoDeviceName)
	}
	if err := s.Pol.Validate(); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Inter-array mirroring

// MirrorMode selects the mirroring protocol (§2).
type MirrorMode int

// Mirroring protocols.
const (
	// MirrorSync applies each update to the secondary before write
	// completion; links must absorb the peak (burst) update rate.
	MirrorSync MirrorMode = iota + 1
	// MirrorAsync propagates updates in the background; links must absorb
	// the average update rate.
	MirrorAsync
	// MirrorAsyncBatch coalesces overwrites within an accumulation window
	// and ships batches, lowering the link rate to the batch update rate.
	MirrorAsyncBatch
)

// String returns the mode name.
func (m MirrorMode) String() string {
	switch m {
	case MirrorSync:
		return "sync"
	case MirrorAsync:
		return "async"
	case MirrorAsyncBatch:
		return "async-batch"
	default:
		return fmt.Sprintf("MirrorMode(%d)", int(m))
	}
}

// Mirror is inter-array mirroring from the primary array to a destination
// array across interconnect links. Per §3.2.3, mirroring places bandwidth
// demands on the links and the destination array and capacity equal to
// the data object on the destination array; the source array's client
// interface is not charged (arrays use alternate interfaces for
// replication).
type Mirror struct {
	InstanceName string
	// Mode selects the protocol.
	Mode MirrorMode
	// DestArray names the destination array; Links names the interconnect.
	DestArray string
	Links     string
	// Pol is the RP policy. For async-batch the primary accW is the batch
	// window; sync and async mirrors track continuously (use a small accW
	// such as a few seconds to represent their propagation delay).
	Pol hierarchy.Policy
}

var _ Technique = (*Mirror)(nil)

// Name implements Technique.
func (m *Mirror) Name() string {
	if m.InstanceName != "" {
		return m.InstanceName
	}
	switch m.Mode {
	case MirrorSync:
		return KindSyncMirror.String()
	case MirrorAsync:
		return KindAsyncMirror.String()
	default:
		return KindAsyncBatchMirror.String()
	}
}

// Kind implements Technique.
func (m *Mirror) Kind() Kind {
	switch m.Mode {
	case MirrorSync:
		return KindSyncMirror
	case MirrorAsync:
		return KindAsyncMirror
	default:
		return KindAsyncBatchMirror
	}
}

// Level implements Technique.
func (m *Mirror) Level() hierarchy.Level {
	return hierarchy.Level{Name: m.Name(), Policy: m.Pol}
}

// LinkRate returns the sustained interconnect bandwidth the protocol
// needs for the given workload.
func (m *Mirror) LinkRate(w *workload.Workload) units.Rate {
	switch m.Mode {
	case MirrorSync:
		return w.PeakUpdateRate()
	case MirrorAsync:
		return w.AvgUpdateRate
	default:
		return w.BatchUpdateRate(m.Pol.Primary.AccW)
	}
}

// ApplyDemands registers the protocol's rate on the links and the
// destination array, and a full object of capacity on the destination.
func (m *Mirror) ApplyDemands(w *workload.Workload, devs DeviceMap) error {
	dest, err := devs.Get(m.DestArray)
	if err != nil {
		return err
	}
	links, err := devs.Get(m.Links)
	if err != nil {
		return err
	}
	rate := m.LinkRate(w)
	links.AddDemand(device.Demand{Technique: m.Name(), Bandwidth: rate})
	// Per §3.2.3, a mirror's capacity demand equals the data capacity (it
	// is a rolling current copy, whatever its RP bookkeeping says); the
	// batch-smoothing buffer is negligible against the array cache.
	dest.AddDemand(device.Demand{
		Technique: m.Name(),
		Bandwidth: rate,
		Capacity:  w.DataCap,
	})
	return nil
}

// CopyDevice implements Technique.
func (m *Mirror) CopyDevice() string { return m.DestArray }

// ReadDevice implements Technique.
func (m *Mirror) ReadDevice() string { return m.DestArray }

// TransportDevice implements Technique: restores from the mirror cross the
// links.
func (m *Mirror) TransportDevice() string { return m.Links }

// RestoreSize implements Technique: the mirror is a full copy.
func (m *Mirror) RestoreSize(w *workload.Workload) units.ByteSize { return w.DataCap }

// Validate implements Technique.
func (m *Mirror) Validate() error {
	if m.Mode < MirrorSync || m.Mode > MirrorAsyncBatch {
		return fmt.Errorf("protect: unknown mirror mode %d", int(m.Mode))
	}
	if m.DestArray == "" || m.Links == "" {
		return fmt.Errorf("%w (mirror destination and links)", ErrNoDeviceName)
	}
	if err := m.Pol.Validate(); err != nil {
		return fmt.Errorf("mirror: %w", err)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Backup

// Backup copies RPs from a source array to a backup device (tape library
// or disk). The policy's primary window set describes full backups; an
// optional secondary set describes cumulative incrementals (CycleCnt per
// cycle).
type Backup struct {
	InstanceName string
	// SourceArray is read during backup windows; Target stores the backup
	// copies.
	SourceArray string
	Target      string
	// Pol is the RP policy.
	Pol hierarchy.Policy
}

var _ Technique = (*Backup)(nil)

// Name implements Technique.
func (b *Backup) Name() string { return nameOr(b.InstanceName, KindBackup) }

// Kind implements Technique.
func (b *Backup) Kind() Kind { return KindBackup }

// Level implements Technique.
func (b *Backup) Level() hierarchy.Level {
	return hierarchy.Level{Name: b.Name(), Policy: b.Pol}
}

// fullRate is the bandwidth needed to move a full backup within its
// propagation window.
func (b *Backup) fullRate(w *workload.Workload) units.Rate {
	return units.RateOf(w.DataCap, b.Pol.Primary.PropW)
}

// largestIncrement returns the size of the largest cumulative incremental
// in a cycle: all unique updates since the last full, accumulated over
// cycleCnt secondary windows.
func (b *Backup) largestIncrement(w *workload.Workload) units.ByteSize {
	if b.Pol.Secondary == nil {
		return 0
	}
	span := time.Duration(b.Pol.CycleCnt) * b.Pol.Secondary.AccW
	return w.UniqueBytes(span)
}

// rate is the per-device bandwidth demand: the maximum of the full-backup
// rate and the largest-incremental rate (§3.2.3).
func (b *Backup) rate(w *workload.Workload) units.Rate {
	r := b.fullRate(w)
	if b.Pol.Secondary != nil {
		if ir := units.RateOf(b.largestIncrement(w), b.Pol.Secondary.PropW); ir > r {
			r = ir
		}
	}
	return r
}

// ApplyDemands registers the backup read rate on the source array and the
// write rate plus retention capacity on the target. Target capacity is
// retCnt cycles of data — each cycle one full plus its growing
// incrementals — plus one extra full copy so a failure during a running
// full backup never leaves the system without a complete RP. The source
// array is charged no capacity: a PiT technique provides the consistent
// copy being read.
func (b *Backup) ApplyDemands(w *workload.Workload, devs DeviceMap) error {
	src, err := devs.Get(b.SourceArray)
	if err != nil {
		return err
	}
	tgt, err := devs.Get(b.Target)
	if err != nil {
		return err
	}
	rate := b.rate(w)
	src.AddDemand(device.Demand{Technique: b.Name(), Bandwidth: rate})

	perCycle := w.DataCap
	if b.Pol.Secondary != nil {
		for k := 1; k <= b.Pol.CycleCnt; k++ {
			perCycle += w.UniqueBytes(time.Duration(k) * b.Pol.Secondary.AccW)
		}
	}
	tgt.AddDemand(device.Demand{
		Technique: b.Name(),
		Bandwidth: rate,
		Capacity:  units.ByteSize(b.Pol.RetCnt)*perCycle + w.DataCap,
	})
	return nil
}

// CopyDevice implements Technique.
func (b *Backup) CopyDevice() string { return b.Target }

// TransportDevice implements Technique.
func (b *Backup) TransportDevice() string { return "" }

// ReadDevice implements Technique.
func (b *Backup) ReadDevice() string { return b.Target }

// RestoreSize implements Technique: the worst case restores one full plus
// the largest cumulative incremental.
func (b *Backup) RestoreSize(w *workload.Workload) units.ByteSize {
	return w.DataCap + b.largestIncrement(w)
}

// Validate implements Technique.
func (b *Backup) Validate() error {
	if b.SourceArray == "" || b.Target == "" {
		return fmt.Errorf("%w (backup source and target)", ErrNoDeviceName)
	}
	if b.SourceArray == b.Target {
		return fmt.Errorf("%w (backup %q)", ErrSameDevice, b.SourceArray)
	}
	if err := b.Pol.Validate(); err != nil {
		return fmt.Errorf("backup: %w", err)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Remote vaulting

// Vaulting periodically ships the expiring full backups from the backup
// device to an off-site vault via a physical transport (§3.2.3). Only full
// backups are vaulted.
type Vaulting struct {
	InstanceName string
	// BackupDevice is the tape library the tapes leave from; Vault stores
	// them; Transport is the shipment method.
	BackupDevice string
	Vault        string
	Transport    string
	// Pol is the RP policy: accW is the shipment cycle, holdW the tape age
	// at shipment, propW the transit window.
	Pol hierarchy.Policy
	// BackupRetW is the retention window of the backup level feeding the
	// vault: when HoldW < BackupRetW the library must cut an extra tape
	// copy so originals can leave before their retention expires.
	BackupRetW time.Duration
}

var _ Technique = (*Vaulting)(nil)

// Name implements Technique.
func (v *Vaulting) Name() string { return nameOr(v.InstanceName, KindVaulting) }

// Kind implements Technique.
func (v *Vaulting) Kind() Kind { return KindVaulting }

// Level implements Technique.
func (v *Vaulting) Level() hierarchy.Level {
	return hierarchy.Level{Name: v.Name(), Policy: v.Pol}
}

// ShipmentsPerYear returns how many shipments the policy generates
// annually.
func (v *Vaulting) ShipmentsPerYear() float64 {
	if v.Pol.Primary.AccW <= 0 {
		return 0
	}
	return float64(units.Year) / float64(v.Pol.Primary.AccW)
}

// ApplyDemands registers vault capacity for retCnt retained fulls and the
// shipment count on the transport. If tapes must leave before backup
// retention expires (holdW < backup retW), the library is charged an
// extra full copy and the amortized bandwidth to cut it.
func (v *Vaulting) ApplyDemands(w *workload.Workload, devs DeviceMap) error {
	vault, err := devs.Get(v.Vault)
	if err != nil {
		return err
	}
	transport, err := devs.Get(v.Transport)
	if err != nil {
		return err
	}
	vault.AddDemand(device.Demand{
		Technique: v.Name(),
		Capacity:  units.ByteSize(v.Pol.RetCnt) * w.DataCap,
	})
	transport.AddDemand(device.Demand{
		Technique:        v.Name(),
		ShipmentsPerYear: v.ShipmentsPerYear(),
	})
	if v.BackupRetW > 0 && v.Pol.Primary.HoldW < v.BackupRetW {
		lib, err := devs.Get(v.BackupDevice)
		if err != nil {
			return err
		}
		lib.AddDemand(device.Demand{
			Technique: v.Name(),
			Bandwidth: units.RateOf(w.DataCap, v.Pol.Primary.AccW),
			Capacity:  w.DataCap,
		})
	}
	return nil
}

// CopyDevice implements Technique.
func (v *Vaulting) CopyDevice() string { return v.Vault }

// ReadDevice implements Technique: vaulted tapes are read back at the
// backup library (or its replacement).
func (v *Vaulting) ReadDevice() string { return v.BackupDevice }

// TransportDevice implements Technique: restores from the vault require a
// shipment back.
func (v *Vaulting) TransportDevice() string { return v.Transport }

// RestoreSize implements Technique: vaults hold full backups only.
func (v *Vaulting) RestoreSize(w *workload.Workload) units.ByteSize { return w.DataCap }

// Validate implements Technique.
func (v *Vaulting) Validate() error {
	if v.BackupDevice == "" || v.Vault == "" || v.Transport == "" {
		return fmt.Errorf("%w (vaulting library, vault and transport)", ErrNoDeviceName)
	}
	if err := v.Pol.Validate(); err != nil {
		return fmt.Errorf("vaulting: %w", err)
	}
	if v.BackupRetW < 0 {
		return fmt.Errorf("vaulting: backup retention window must be non-negative, got %v", v.BackupRetW)
	}
	return nil
}

// nameOr returns the explicit instance name or the kind's default.
func nameOr(instance string, k Kind) string {
	if instance != "" {
		return instance
	}
	return k.String()
}
