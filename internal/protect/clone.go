package protect

// Cloner is implemented by techniques that can produce a structural deep
// copy of themselves. The optimizer's inner loop clones a candidate
// design per evaluation, so CloneTechnique must be cheap: copy the
// struct, deep-copy the policy (its secondary window set is a pointer)
// and any slices, and nothing else. All built-in techniques implement
// it; core.Design.Clone reports an error for techniques that don't.
type Cloner interface {
	// CloneTechnique returns an independent deep copy: mutating the
	// clone's policy, devices or sites must not affect the original.
	CloneTechnique() Technique
}

var (
	_ Cloner = (*Primary)(nil)
	_ Cloner = (*SplitMirror)(nil)
	_ Cloner = (*Snapshot)(nil)
	_ Cloner = (*Mirror)(nil)
	_ Cloner = (*Backup)(nil)
	_ Cloner = (*Vaulting)(nil)
	_ Cloner = (*ErasureCode)(nil)
)

// CloneTechnique implements Cloner.
func (p *Primary) CloneTechnique() Technique {
	c := *p
	return &c
}

// CloneTechnique implements Cloner.
func (s *SplitMirror) CloneTechnique() Technique {
	c := *s
	c.Pol = s.Pol.Clone()
	return &c
}

// CloneTechnique implements Cloner.
func (s *Snapshot) CloneTechnique() Technique {
	c := *s
	c.Pol = s.Pol.Clone()
	return &c
}

// CloneTechnique implements Cloner.
func (m *Mirror) CloneTechnique() Technique {
	c := *m
	c.Pol = m.Pol.Clone()
	return &c
}

// CloneTechnique implements Cloner.
func (b *Backup) CloneTechnique() Technique {
	c := *b
	c.Pol = b.Pol.Clone()
	return &c
}

// CloneTechnique implements Cloner.
func (v *Vaulting) CloneTechnique() Technique {
	c := *v
	c.Pol = v.Pol.Clone()
	return &c
}

// CloneTechnique implements Cloner.
func (e *ErasureCode) CloneTechnique() Technique {
	c := *e
	c.Pol = e.Pol.Clone()
	c.Sites = make([]string, len(e.Sites))
	copy(c.Sites, e.Sites)
	return &c
}
