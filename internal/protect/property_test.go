package protect

import (
	"testing"
	"testing/quick"
	"time"

	"stordep/internal/device"
	"stordep/internal/hierarchy"
	"stordep/internal/units"
	"stordep/internal/workload"
)

// randWorkload builds a valid workload from fuzz inputs.
func randWorkload(capGB uint16, updKB uint16, burst uint8) *workload.Workload {
	cap := units.ByteSize(capGB%5000+1) * units.GB
	upd := units.Rate(updKB%4000+1) * units.KBPerSec
	return &workload.Workload{
		Name:          "fuzz",
		DataCap:       cap,
		AvgAccessRate: 2 * upd,
		AvgUpdateRate: upd,
		BurstMult:     float64(burst%20) + 1,
		BatchCurve: []workload.BatchPoint{
			{Window: time.Minute, Rate: upd * 9 / 10},
			{Window: 24 * time.Hour, Rate: upd / 2},
		},
	}
}

func simplePolicy(accHours uint8, retCnt uint8) hierarchy.Policy {
	acc := time.Duration(accHours%48+1) * time.Hour
	ret := int(retCnt%10) + 1
	return hierarchy.Policy{
		Primary: hierarchy.WindowSet{AccW: acc, PropW: acc / 2, Rep: hierarchy.RepFull},
		RetCnt:  ret,
		RetW:    time.Duration(ret) * acc,
		CopyRep: hierarchy.RepFull,
	}
}

// Property: mirroring protocols' link demands are always ordered
// batch <= async <= sync (coalesced <= raw <= peak).
func TestMirrorProtocolOrderingProperty(t *testing.T) {
	f := func(capGB, updKB uint16, burst, accH uint8) bool {
		w := randWorkload(capGB, updKB, burst)
		if w.Validate() != nil {
			return false
		}
		pol := simplePolicy(accH, 1)
		mk := func(mode MirrorMode) units.Rate {
			m := &Mirror{Mode: mode, DestArray: "d", Links: "l", Pol: pol}
			return m.LinkRate(w)
		}
		batch, async, sync := mk(MirrorAsyncBatch), mk(MirrorAsync), mk(MirrorSync)
		return batch <= async && async <= sync
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every technique's restore size is positive and never exceeds
// object size plus one retention span of unique updates.
func TestRestoreSizeBoundsProperty(t *testing.T) {
	f := func(capGB, updKB uint16, burst, accH, retC uint8) bool {
		w := randWorkload(capGB, updKB, burst)
		if w.Validate() != nil {
			return false
		}
		pol := simplePolicy(accH, retC)
		techs := []Technique{
			&SplitMirror{Array: "a", Pol: pol},
			&Snapshot{Array: "a", Pol: pol},
			&Backup{SourceArray: "a", Target: "b", Pol: pol},
			&Vaulting{BackupDevice: "b", Vault: "v", Transport: "t", Pol: pol},
			&Mirror{Mode: MirrorAsyncBatch, DestArray: "d", Links: "l", Pol: pol},
		}
		for _, tech := range techs {
			size := tech.RestoreSize(w)
			if size < 0 || size > 2*w.DataCap+w.DataCap {
				return false
			}
			// Full-copy techniques restore at least the object.
			switch tech.(type) {
			case *SplitMirror, *Backup, *Vaulting, *Mirror:
				if size < w.DataCap {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: demands are monotone in the workload — scaling the workload
// up never shrinks any device demand.
func TestDemandMonotoneProperty(t *testing.T) {
	newDevs := func() DeviceMap {
		m := DeviceMap{}
		specs := []device.Spec{
			{Name: "a", Kind: device.KindStorage, MaxCapSlots: 1 << 20, SlotCap: units.GB, MaxBWSlots: 1 << 20, SlotBW: units.MBPerSec},
			{Name: "b", Kind: device.KindStorage, MaxCapSlots: 1 << 20, SlotCap: units.GB, MaxBWSlots: 1 << 20, SlotBW: units.MBPerSec},
			{Name: "l", Kind: device.KindInterconnect, MaxBWSlots: 1 << 20, SlotBW: units.MBPerSec},
			{Name: "t", Kind: device.KindTransport},
			{Name: "v", Kind: device.KindStorage, MaxCapSlots: 1 << 20, SlotCap: units.GB},
		}
		for _, s := range specs {
			d, err := device.New(s)
			if err != nil {
				panic(err)
			}
			m[s.Name] = d
		}
		return m
	}
	apply := func(w *workload.Workload, accH, retC uint8) (units.ByteSize, units.Rate, bool) {
		pol := simplePolicy(accH, retC)
		devs := newDevs()
		techs := []Technique{
			&SplitMirror{Array: "a", Pol: pol},
			&Snapshot{InstanceName: "snap", Array: "a", Pol: pol},
			&Backup{SourceArray: "a", Target: "b", Pol: pol},
			&Vaulting{BackupDevice: "b", Vault: "v", Transport: "t", Pol: pol, BackupRetW: pol.RetW},
			&Mirror{Mode: MirrorAsync, DestArray: "b", Links: "l", Pol: pol},
		}
		var cap units.ByteSize
		var bw units.Rate
		for _, tech := range techs {
			if err := tech.ApplyDemands(w, devs); err != nil {
				return 0, 0, false
			}
		}
		for _, d := range devs {
			cap += d.TotalCapacity()
			bw += d.TotalBandwidth()
		}
		return cap, bw, true
	}
	f := func(capGB, updKB uint16, burst, accH, retC uint8) bool {
		small := randWorkload(capGB, updKB, burst)
		if small.Validate() != nil {
			return false
		}
		big, err := small.Scale(2)
		if err != nil {
			return false
		}
		capS, bwS, ok := apply(small, accH, retC)
		if !ok {
			return false
		}
		capB, bwB, ok := apply(big, accH, retC)
		if !ok {
			return false
		}
		return capB >= capS && bwB >= bwS
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: vault shipments per year are inversely proportional to the
// accumulation window.
func TestShipmentsInverseProperty(t *testing.T) {
	f := func(weeks uint8) bool {
		wks := time.Duration(weeks%51+1) * units.Week
		pol := hierarchy.Policy{
			Primary: hierarchy.WindowSet{AccW: wks, PropW: 24 * time.Hour, Rep: hierarchy.RepFull},
			RetCnt:  1, RetW: wks, CopyRep: hierarchy.RepFull,
		}
		if pol.Primary.PropW > pol.Primary.AccW {
			pol.Primary.PropW = pol.Primary.AccW
		}
		v := &Vaulting{BackupDevice: "b", Vault: "v", Transport: "t", Pol: pol}
		got := v.ShipmentsPerYear()
		want := float64(units.Year) / float64(wks)
		return got > 0 && got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the erasure code's total fragment storage equals the n/m
// stretch exactly, for any valid (n, m).
func TestErasureStretchProperty(t *testing.T) {
	f := func(capGB uint16, n8, m8 uint8) bool {
		n := int(n8%8) + 1
		m := int(m8%uint8(n)) + 1
		w := randWorkload(capGB, 100, 2)
		sites := make([]string, n)
		for i := range sites {
			sites[i] = string(rune('a' + i))
		}
		ec := &ErasureCode{Fragments: n, Threshold: m, Sites: sites, Links: "l",
			Pol: simplePolicy(3, 1)}
		if err := ec.Validate(); err != nil {
			return false
		}
		perSite := w.DataCap / units.ByteSize(m)
		total := units.ByteSize(n) * perSite
		// n/m stretch within float tolerance.
		want := float64(w.DataCap) * float64(n) / float64(m)
		diff := float64(total) - want
		if diff < 0 {
			diff = -diff
		}
		return diff < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
