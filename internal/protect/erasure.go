package protect

import (
	"fmt"

	"stordep/internal/device"
	"stordep/internal/hierarchy"
	"stordep/internal/units"
	"stordep/internal/workload"
)

// MultiSited is implemented by techniques whose retained copies span
// several devices with a survival threshold: the level can serve a
// recovery as long as at least SurvivalThreshold of its CopyDevices
// outlive the failure. Techniques that do not implement this interface
// are treated as single-sited (their CopyDevice must survive).
type MultiSited interface {
	// CopyDevices names every device holding a share of the retained RPs.
	CopyDevices() []string
	// SurvivalThreshold is the minimum number of surviving copy devices
	// needed to reconstruct the data.
	SurvivalThreshold() int
}

// ErasureCode is a wide-area erasure-coding technique in the style the
// paper's §2 cites for archival storage (OceanStore [15]): the object is
// encoded into Fragments shares of size dataCap/Threshold, spread across
// distinct sites; any Threshold of them reconstruct the object. Compared
// with full mirroring it buys site-disaster tolerance at a storage
// stretch of Fragments/Threshold instead of a full extra copy per site.
//
// The paper does not model this technique; it is included to demonstrate
// the framework's extension claim — a new technique only has to express
// itself as RP creation/retention/propagation plus device demands.
type ErasureCode struct {
	InstanceName string
	// Fragments (n) and Threshold (m): n shares, any m reconstruct.
	Fragments int
	Threshold int
	// Sites names the destination arrays, one fragment each; length must
	// equal Fragments and the names must be distinct.
	Sites []string
	// Links is the wide-area interconnect carrying dissemination traffic.
	Links string
	// Pol is the RP policy: accW is the dissemination batch window.
	Pol hierarchy.Policy
}

var _ Technique = (*ErasureCode)(nil)
var _ MultiSited = (*ErasureCode)(nil)

// KindErasureCode extends the technique taxonomy.
const KindErasureCode Kind = KindVaulting + 1

// Name implements Technique.
func (e *ErasureCode) Name() string { return nameOr(e.InstanceName, KindErasureCode) }

// Kind implements Technique.
func (e *ErasureCode) Kind() Kind { return KindErasureCode }

// Level implements Technique.
func (e *ErasureCode) Level() hierarchy.Level {
	return hierarchy.Level{Name: e.Name(), Policy: e.Pol}
}

// stretch is the storage expansion factor n/m.
func (e *ErasureCode) stretch() float64 {
	return float64(e.Fragments) / float64(e.Threshold)
}

// ApplyDemands spreads capacity dataCap/m on every fragment site, charges
// the links with the batched unique-update rate times the n/m encoding
// stretch, and each site with its 1/n share of that dissemination stream.
func (e *ErasureCode) ApplyDemands(w *workload.Workload, devs DeviceMap) error {
	links, err := devs.Get(e.Links)
	if err != nil {
		return err
	}
	rate := units.Rate(e.stretch()) * w.BatchUpdateRate(e.Pol.Primary.AccW)
	links.AddDemand(device.Demand{Technique: e.Name(), Bandwidth: rate})
	perSiteCap := w.DataCap / units.ByteSize(e.Threshold)
	perSiteRate := rate / units.Rate(e.Fragments)
	for _, site := range e.Sites {
		arr, err := devs.Get(site)
		if err != nil {
			return err
		}
		arr.AddDemand(device.Demand{
			Technique: e.Name(),
			Bandwidth: perSiteRate,
			Capacity:  units.ByteSize(e.Pol.RetCnt) * perSiteCap,
		})
	}
	return nil
}

// CopyDevice implements Technique: the nominal first site (the full set
// is exposed via CopyDevices; core consults the threshold).
func (e *ErasureCode) CopyDevice() string {
	if len(e.Sites) == 0 {
		return ""
	}
	return e.Sites[0]
}

// CopyDevices implements MultiSited.
func (e *ErasureCode) CopyDevices() []string {
	out := make([]string, len(e.Sites))
	copy(out, e.Sites)
	return out
}

// SurvivalThreshold implements MultiSited.
func (e *ErasureCode) SurvivalThreshold() int { return e.Threshold }

// ReadDevice implements Technique: reconstruction streams from the
// fragment sites (core substitutes a surviving one under failure).
func (e *ErasureCode) ReadDevice() string { return e.CopyDevice() }

// TransportDevice implements Technique: reconstruction crosses the links.
func (e *ErasureCode) TransportDevice() string { return e.Links }

// RestoreSize implements Technique: m fragments of dataCap/m.
func (e *ErasureCode) RestoreSize(w *workload.Workload) units.ByteSize { return w.DataCap }

// Validate implements Technique.
func (e *ErasureCode) Validate() error {
	if e.Threshold < 1 || e.Fragments < e.Threshold {
		return fmt.Errorf("protect: erasure code needs 1 <= threshold (%d) <= fragments (%d)",
			e.Threshold, e.Fragments)
	}
	if len(e.Sites) != e.Fragments {
		return fmt.Errorf("protect: erasure code needs %d sites, got %d", e.Fragments, len(e.Sites))
	}
	seen := make(map[string]bool, len(e.Sites))
	for _, site := range e.Sites {
		if site == "" {
			return fmt.Errorf("%w (erasure fragment site)", ErrNoDeviceName)
		}
		if seen[site] {
			return fmt.Errorf("protect: erasure code sites must be distinct (%q repeated)", site)
		}
		seen[site] = true
	}
	if e.Links == "" {
		return fmt.Errorf("%w (erasure links)", ErrNoDeviceName)
	}
	if err := e.Pol.Validate(); err != nil {
		return fmt.Errorf("erasure code: %w", err)
	}
	return nil
}
