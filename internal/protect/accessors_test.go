package protect

import (
	"math"
	"testing"
	"time"

	"stordep/internal/device"
	"stordep/internal/hierarchy"
	"stordep/internal/units"
	"stordep/internal/workload"
)

// TestTechniqueAccessors pins the identity methods of every technique:
// kind, hierarchy level, and the device roles recovery relies on.
func TestTechniqueAccessors(t *testing.T) {
	pol := splitMirrorPolicy()
	ec := &ErasureCode{Fragments: 3, Threshold: 2, Sites: []string{"f1", "f2", "f3"}, Links: "l", Pol: pol}
	tests := []struct {
		tech      Technique
		kind      Kind
		levelName string
		copyDev   string
		readDev   string
		transport string
	}{
		{&Primary{Array: "a"}, KindPrimary, "", "a", "a", ""},
		{&SplitMirror{Array: "a", Pol: pol}, KindSplitMirror, "split-mirror", "a", "a", ""},
		{&Snapshot{Array: "a", Pol: pol}, KindSnapshot, "virtual-snapshot", "a", "a", ""},
		{&Backup{SourceArray: "a", Target: "b", Pol: pol}, KindBackup, "backup", "b", "b", ""},
		{&Vaulting{BackupDevice: "b", Vault: "v", Transport: "t", Pol: pol}, KindVaulting, "vaulting", "v", "b", "t"},
		{&Mirror{Mode: MirrorSync, DestArray: "d", Links: "l", Pol: pol}, KindSyncMirror, "sync-mirror", "d", "d", "l"},
		{&Mirror{Mode: MirrorAsync, DestArray: "d", Links: "l", Pol: pol}, KindAsyncMirror, "async-mirror", "d", "d", "l"},
		{ec, KindErasureCode, "erasure-code", "f1", "f1", "l"},
	}
	for _, tt := range tests {
		t.Run(tt.tech.Name(), func(t *testing.T) {
			if got := tt.tech.Kind(); got != tt.kind {
				t.Errorf("Kind = %v, want %v", got, tt.kind)
			}
			if got := tt.tech.Level().Name; got != tt.levelName {
				t.Errorf("Level name = %q, want %q", got, tt.levelName)
			}
			if got := tt.tech.CopyDevice(); got != tt.copyDev {
				t.Errorf("CopyDevice = %q, want %q", got, tt.copyDev)
			}
			if got := tt.tech.ReadDevice(); got != tt.readDev {
				t.Errorf("ReadDevice = %q, want %q", got, tt.readDev)
			}
			if got := tt.tech.TransportDevice(); got != tt.transport {
				t.Errorf("TransportDevice = %q, want %q", got, tt.transport)
			}
		})
	}
	if KindErasureCode.String() != "erasure-code" {
		t.Errorf("kind string = %q", KindErasureCode.String())
	}
	if ec.SurvivalThreshold() != 2 || len(ec.CopyDevices()) != 3 {
		t.Error("erasure multi-site accessors")
	}
	// CopyDevices returns a copy.
	sites := ec.CopyDevices()
	sites[0] = "mutated"
	if ec.Sites[0] != "f1" {
		t.Error("CopyDevices exposed internal slice")
	}
	// Empty-site edge.
	if (&ErasureCode{}).CopyDevice() != "" {
		t.Error("empty erasure CopyDevice")
	}
}

func TestErasureApplyDemandsInPackage(t *testing.T) {
	w := workload.Cello()
	m := DeviceMap{}
	for _, name := range []string{"f1", "f2", "f3"} {
		d, err := device.New(device.Spec{
			Name: name, Kind: device.KindStorage,
			MaxCapSlots: 10000, SlotCap: units.GB,
			MaxBWSlots: 100, SlotBW: units.MBPerSec,
		})
		if err != nil {
			t.Fatal(err)
		}
		m[name] = d
	}
	links, err := device.New(device.Spec{Name: "l", Kind: device.KindInterconnect,
		MaxBWSlots: 10, SlotBW: 10 * units.MBPerSec})
	if err != nil {
		t.Fatal(err)
	}
	m["l"] = links

	pol := hierarchy.Policy{
		Primary: hierarchy.WindowSet{AccW: time.Hour, PropW: time.Hour, Rep: hierarchy.RepPartial},
		RetCnt:  1, RetW: time.Hour, CopyRep: hierarchy.RepFull,
	}
	ec := &ErasureCode{Fragments: 3, Threshold: 2, Sites: []string{"f1", "f2", "f3"}, Links: "l", Pol: pol}
	if err := ec.ApplyDemands(w, m); err != nil {
		t.Fatal(err)
	}
	// Links carry 1.5x the hourly batch rate.
	wantLink := 1.5 * float64(w.BatchUpdateRate(time.Hour))
	if got := float64(m["l"].TotalBandwidth()); math.Abs(got-wantLink) > 1 {
		t.Errorf("link demand = %v, want %v", got, wantLink)
	}
	// Each site: half the object, a third of the stream.
	if got := m["f1"].TotalCapacity(); got != w.DataCap/2 {
		t.Errorf("site capacity = %v, want %v", got, w.DataCap/2)
	}
	if got := ec.RestoreSize(w); got != w.DataCap {
		t.Errorf("restore size = %v", got)
	}
	// Unknown devices error.
	bad := &ErasureCode{Fragments: 1, Threshold: 1, Sites: []string{"ghost"}, Links: "l", Pol: pol}
	if err := bad.ApplyDemands(w, m); err == nil {
		t.Error("ghost site accepted")
	}
	badLinks := &ErasureCode{Fragments: 1, Threshold: 1, Sites: []string{"f1"}, Links: "ghost", Pol: pol}
	if err := badLinks.ApplyDemands(w, m); err == nil {
		t.Error("ghost links accepted")
	}
}
