package failure

import (
	"strings"
	"testing"
	"time"
)

func TestCorrKindRoundTrip(t *testing.T) {
	for _, k := range []CorrKind{CorrSharedDevice, CorrRegion, CorrCorruption} {
		if !k.Valid() {
			t.Fatalf("%v not valid", k)
		}
		got, err := ParseCorrKind(k.String())
		if err != nil {
			t.Fatalf("ParseCorrKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("ParseCorrKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := ParseCorrKind("meteor"); err == nil {
		t.Fatal("ParseCorrKind accepted an unknown kind")
	}
	if CorrKind(0).Valid() || CorrKind(99).Valid() {
		t.Fatal("out-of-range CorrKind reported valid")
	}
}

func TestOpFaultKindRoundTrip(t *testing.T) {
	for _, k := range []OpFaultKind{OpWrongRecovery, OpSilentNonWrite, OpMisdirectedRestore} {
		got, err := ParseOpFaultKind(k.String())
		if err != nil {
			t.Fatalf("ParseOpFaultKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("ParseOpFaultKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := ParseOpFaultKind("fat-finger"); err == nil {
		t.Fatal("ParseOpFaultKind accepted an unknown kind")
	}
}

func TestCorrEventValidate(t *testing.T) {
	ok := []CorrEvent{
		{Kind: CorrSharedDevice, Device: "lib-1", From: 0, To: time.Hour, AbortInFlight: true},
		{Kind: CorrRegion, Region: "west", From: time.Hour, To: 2 * time.Hour},
		{Kind: CorrCorruption, Trigger: 9, From: time.Minute, To: time.Hour},
	}
	for i, e := range ok {
		if err := e.Validate(); err != nil {
			t.Fatalf("event %d should validate: %v", i, err)
		}
	}
	bad := []struct {
		name string
		e    CorrEvent
	}{
		{"zero kind", CorrEvent{From: 0, To: time.Hour}},
		{"empty window", CorrEvent{Kind: CorrRegion, Region: "west", From: time.Hour, To: time.Hour}},
		{"negative from", CorrEvent{Kind: CorrRegion, Region: "west", From: -time.Hour, To: time.Hour}},
		{"shared-device without device", CorrEvent{Kind: CorrSharedDevice, From: 0, To: time.Hour}},
		{"region without region", CorrEvent{Kind: CorrRegion, From: 0, To: time.Hour}},
		{"corruption aborting transfers", CorrEvent{Kind: CorrCorruption, AbortInFlight: true, From: 0, To: time.Hour}},
	}
	for _, tc := range bad {
		err := tc.e.Validate()
		if err == nil {
			t.Fatalf("%s: expected a validation error", tc.name)
		}
		if !strings.Contains(err.Error(), "failure: invalid") {
			t.Fatalf("%s: unexpected error text %q", tc.name, err)
		}
	}
}

func TestOpFaultValidate(t *testing.T) {
	ok := []OpFault{
		{Kind: OpWrongRecovery, Object: "a", At: 0, StaleBy: time.Hour},
		{Kind: OpSilentNonWrite, Object: "a", Level: 1, From: 0, To: time.Hour},
		{Kind: OpMisdirectedRestore, Object: "a", WrongObject: "b", At: time.Hour},
	}
	for i, f := range ok {
		if err := f.Validate(); err != nil {
			t.Fatalf("fault %d should validate: %v", i, err)
		}
	}
	bad := []struct {
		name string
		f    OpFault
	}{
		{"zero kind", OpFault{Object: "a"}},
		{"missing object", OpFault{Kind: OpWrongRecovery, StaleBy: time.Hour}},
		{"zero staleBy", OpFault{Kind: OpWrongRecovery, Object: "a", At: time.Hour}},
		{"negative at", OpFault{Kind: OpWrongRecovery, Object: "a", At: -time.Hour, StaleBy: time.Hour}},
		{"silent without level", OpFault{Kind: OpSilentNonWrite, Object: "a", From: 0, To: time.Hour}},
		{"silent empty window", OpFault{Kind: OpSilentNonWrite, Object: "a", Level: 1, From: time.Hour, To: time.Hour}},
		{"misdirected onto itself", OpFault{Kind: OpMisdirectedRestore, Object: "a", WrongObject: "a", At: 0}},
		{"misdirected without wrong object", OpFault{Kind: OpMisdirectedRestore, Object: "a", At: 0}},
	}
	for _, tc := range bad {
		if tc.f.Validate() == nil {
			t.Fatalf("%s: expected a validation error", tc.name)
		}
	}
}

// TestCorruptsDeterministic pins the seeded blast-set draw: a pure
// function of (trigger, object), stable across processes, and actually
// splitting objects (not all-in or all-out) for a realistic trigger.
func TestCorruptsDeterministic(t *testing.T) {
	e := CorrEvent{Kind: CorrCorruption, Trigger: 42, From: 0, To: time.Hour}
	objects := []string{"obj1", "obj2", "obj3", "obj4", "obj5", "obj6", "obj7", "obj8"}
	first := make(map[string]bool)
	hit := 0
	for _, o := range objects {
		first[o] = e.Corrupts(o)
		if first[o] {
			hit++
		}
	}
	if hit == 0 || hit == len(objects) {
		t.Fatalf("trigger 42 hit %d/%d objects — draw is degenerate", hit, len(objects))
	}
	for i := 0; i < 3; i++ {
		for _, o := range objects {
			if e.Corrupts(o) != first[o] {
				t.Fatalf("Corrupts(%q) changed between calls", o)
			}
		}
	}
	// Distinct triggers must be able to produce distinct blast sets.
	other := CorrEvent{Kind: CorrCorruption, Trigger: 43, From: 0, To: time.Hour}
	same := true
	for _, o := range objects {
		if other.Corrupts(o) != first[o] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("triggers 42 and 43 produced identical blast sets over 8 objects")
	}
}
