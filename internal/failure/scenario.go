package failure

import (
	"encoding/binary"
	"hash/fnv"
	"time"
)

// This file widens the scenario vocabulary beyond the paper's independent
// device failures and site disasters: correlated events that strike
// several objects of a multi-object design from one trigger, and the
// operator faults that the human-error literature (Kishani & Asadi) and
// classic fault taxonomies (wrong data, wrong address, silent non-write)
// name as dominant contributors to data unavailability. The types here
// are pure vocabulary — internal/config round-trips them as JSON and
// internal/chaos / internal/mc give them semantics.

// CorrKind classifies a correlated service-level event.
type CorrKind int

const (
	// CorrSharedDevice takes one shared fleet device down: every object
	// level whose propagation depends on that device suffers an outage
	// over the same window.
	CorrSharedDevice CorrKind = iota + 1
	// CorrRegion takes a geographic region down: every object level whose
	// copy or transport device is placed in the region suffers an outage
	// over the same window.
	CorrRegion
	// CorrCorruption is correlated multi-object corruption from a common
	// seeded trigger: the affected objects' first protection level
	// silently captures corrupt data for the window (RPs that report
	// success but retain nothing a restore can use).
	CorrCorruption
)

// String returns the kind name used in reports and repro JSON.
func (k CorrKind) String() string {
	switch k {
	case CorrSharedDevice:
		return "shared-device"
	case CorrRegion:
		return "region"
	case CorrCorruption:
		return "corruption"
	default:
		return "CorrKind(?)"
	}
}

// Valid reports whether the kind is one of the defined constants.
func (k CorrKind) Valid() bool { return k >= CorrSharedDevice && k <= CorrCorruption }

// ParseCorrKind converts a kind name back into its constant.
func ParseCorrKind(s string) (CorrKind, error) {
	switch s {
	case "shared-device":
		return CorrSharedDevice, nil
	case "region":
		return CorrRegion, nil
	case "corruption":
		return CorrCorruption, nil
	default:
		return 0, errBad("correlated event kind", s)
	}
}

// CorrEvent is one correlated event: a single trigger whose per-object
// effects are derived deterministically from the design, so every
// affected object observes the same window and the same cause.
type CorrEvent struct {
	// Kind selects the correlation mechanism.
	Kind CorrKind
	// Device names the shared fleet device (CorrSharedDevice).
	Device string
	// Region names the failed region (CorrRegion).
	Region string
	// Trigger seeds the affected-object draw (CorrCorruption): the event
	// corrupts exactly the objects Corrupts reports, so a repro file
	// replays the same blast set without listing it.
	Trigger int64
	// From and To bound the event window.
	From, To time.Duration
	// AbortInFlight destroys RPs mid-propagation when the event strikes
	// (hardware kinds only).
	AbortInFlight bool
}

// Corrupts reports whether a corruption event's seeded trigger hits the
// named object. The draw is a pure function of (Trigger, object) so the
// blast set survives the repro round trip byte-identically.
func (e CorrEvent) Corrupts(object string) bool {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(e.Trigger))
	h.Write(b[:])
	h.Write([]byte(object))
	return h.Sum64()&1 == 0
}

// Validate checks the event.
func (e CorrEvent) Validate() error {
	if !e.Kind.Valid() {
		return errBad("correlated event kind", e.Kind.String())
	}
	if e.To <= e.From || e.From < 0 {
		return errBad("correlated event window", e.From.String()+".."+e.To.String())
	}
	switch e.Kind {
	case CorrSharedDevice:
		if e.Device == "" {
			return errBad("correlated event", "shared-device event needs a device")
		}
	case CorrRegion:
		if e.Region == "" {
			return errBad("correlated event", "region event needs a region")
		}
	case CorrCorruption:
		if e.AbortInFlight {
			return errBad("correlated event", "corruption does not abort transfers")
		}
	}
	return nil
}

// OpFaultKind classifies an operator fault.
type OpFaultKind int

const (
	// OpWrongRecovery restores a stale recovery point that passes every
	// existing check: the RP is valid and covers the restore instant, but
	// its cut is StaleBy older than the intended target.
	OpWrongRecovery OpFaultKind = iota + 1
	// OpSilentNonWrite is a protection level that reports success but
	// retains nothing: windows closing inside the fault window produce
	// RPs that occupy the schedule yet cannot serve a restore.
	OpSilentNonWrite
	// OpMisdirectedRestore lands a recovery on the wrong object: the
	// intended object stays unrecovered while believing itself restored.
	OpMisdirectedRestore
)

// String returns the kind name used in reports and repro JSON.
func (k OpFaultKind) String() string {
	switch k {
	case OpWrongRecovery:
		return "wrong-recovery"
	case OpSilentNonWrite:
		return "silent-non-write"
	case OpMisdirectedRestore:
		return "misdirected-restore"
	default:
		return "OpFaultKind(?)"
	}
}

// Valid reports whether the kind is one of the defined constants.
func (k OpFaultKind) Valid() bool { return k >= OpWrongRecovery && k <= OpMisdirectedRestore }

// ParseOpFaultKind converts a kind name back into its constant.
func ParseOpFaultKind(s string) (OpFaultKind, error) {
	switch s {
	case "wrong-recovery":
		return OpWrongRecovery, nil
	case "silent-non-write":
		return OpSilentNonWrite, nil
	case "misdirected-restore":
		return OpMisdirectedRestore, nil
	default:
		return 0, errBad("operator fault kind", s)
	}
}

// OpFault is one injected operator fault. Fields beyond Kind and Object
// are per-kind: wrong recovery uses At and StaleBy, silent non-write
// uses Level and the From/To window, misdirected restore uses At and
// WrongObject.
type OpFault struct {
	Kind   OpFaultKind
	Object string
	// Level is the 1-based protection level whose writes silently fail.
	Level int
	// From and To bound the silent non-write window.
	From, To time.Duration
	// At is the instant of the faulty restore.
	At time.Duration
	// StaleBy is how much older than the intended target the restored
	// recovery point is.
	StaleBy time.Duration
	// WrongObject names the object whose data the misdirected restore
	// actually delivers.
	WrongObject string
}

// Validate checks the fault.
func (f OpFault) Validate() error {
	if !f.Kind.Valid() {
		return errBad("operator fault kind", f.Kind.String())
	}
	if f.Object == "" {
		return errBad("operator fault", "needs a target object")
	}
	switch f.Kind {
	case OpWrongRecovery:
		if f.At < 0 || f.StaleBy <= 0 {
			return errBad("operator fault", "wrong recovery needs at >= 0 and staleBy > 0")
		}
	case OpSilentNonWrite:
		if f.Level < 1 {
			return errBad("operator fault", "silent non-write needs a level")
		}
		if f.To <= f.From || f.From < 0 {
			return errBad("operator fault window", f.From.String()+".."+f.To.String())
		}
	case OpMisdirectedRestore:
		if f.WrongObject == "" || f.WrongObject == f.Object {
			return errBad("operator fault", "misdirected restore needs a distinct wrong object")
		}
		if f.At < 0 {
			return errBad("operator fault", "misdirected restore needs at >= 0")
		}
	}
	return nil
}

func errBad(what, got string) error {
	return &scenarioError{what: what, got: got}
}

type scenarioError struct{ what, got string }

func (e *scenarioError) Error() string {
	return "failure: invalid " + e.what + ": " + e.got
}
