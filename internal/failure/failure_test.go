package failure

import (
	"errors"
	"testing"
	"time"

	"stordep/internal/units"
)

func TestScopeString(t *testing.T) {
	tests := []struct {
		scope Scope
		want  string
	}{
		{ScopeObject, "object"},
		{ScopeArray, "array"},
		{ScopeBuilding, "building"},
		{ScopeSite, "site"},
		{ScopeRegion, "region"},
		{Scope(0), "Scope(0)"},
		{Scope(99), "Scope(99)"},
	}
	for _, tt := range tests {
		if got := tt.scope.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestScopeValid(t *testing.T) {
	for s := ScopeObject; s <= ScopeRegion; s++ {
		if !s.Valid() {
			t.Errorf("scope %v should be valid", s)
		}
	}
	if Scope(0).Valid() || Scope(6).Valid() {
		t.Error("out-of-range scopes should be invalid")
	}
}

func TestPlacementSurvives(t *testing.T) {
	primary := Placement{Array: "arr1", Building: "b1", Site: "palo-alto", Region: "west"}
	sameArray := primary
	sameSite := Placement{Array: "arr2", Building: "b2", Site: "palo-alto", Region: "west"}
	remoteSite := Placement{Array: "arr3", Building: "b9", Site: "denver", Region: "central"}
	vault := Placement{Site: "vault-city", Region: "east"}
	courier := Placement{} // no fixed location

	tests := []struct {
		name  string
		p     Placement
		scope Scope
		want  bool
	}{
		{"object failures destroy no hardware", sameArray, ScopeObject, true},
		{"same array fails with array", sameArray, ScopeArray, false},
		{"same site survives array failure", sameSite, ScopeArray, true},
		{"same site fails with site", sameSite, ScopeSite, false},
		{"same building fails with building", sameArray, ScopeBuilding, false},
		{"other building survives building", sameSite, ScopeBuilding, true},
		{"remote site survives site failure", remoteSite, ScopeSite, true},
		{"same region fails with region", sameSite, ScopeRegion, false},
		{"other region survives region", remoteSite, ScopeRegion, true},
		{"vault survives site failure", vault, ScopeSite, true},
		{"courier survives everything", courier, ScopeRegion, true},
		{"unknown scope survives nothing", sameSite, Scope(42), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Survives(tt.scope, primary); got != tt.want {
				t.Errorf("Survives(%v) = %v, want %v", tt.scope, got, tt.want)
			}
		})
	}
}

func TestPlacementEmptyFieldsNeverMatch(t *testing.T) {
	// Two placements both with empty sites are distinct unknown locations,
	// not the same site.
	a, b := Placement{}, Placement{}
	if !a.Survives(ScopeSite, b) {
		t.Error("empty sites should not be treated as co-located")
	}
}

func TestScenarioValidate(t *testing.T) {
	tests := []struct {
		name    string
		sc      Scenario
		wantErr error
	}{
		{"valid now", Scenario{Scope: ScopeArray}, nil},
		{"valid rollback", Scenario{Scope: ScopeObject, TargetAge: 24 * time.Hour, RecoverSize: units.MB}, nil},
		{"bad scope", Scenario{Scope: 0}, ErrBadScope},
		{"negative target", Scenario{Scope: ScopeSite, TargetAge: -time.Hour}, ErrBadTarget},
		{"negative size", Scenario{Scope: ScopeSite, RecoverSize: -1}, ErrBadSize},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.sc.Validate()
			if tt.wantErr == nil {
				if err != nil {
					t.Errorf("Validate() = %v", err)
				}
				return
			}
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("Validate() = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestDisplayName(t *testing.T) {
	sc := Scenario{Scope: ScopeArray}
	if got := sc.DisplayName(); got != "array" {
		t.Errorf("DisplayName = %q", got)
	}
	sc.Name = "primary array crash"
	if got := sc.DisplayName(); got != "primary array crash" {
		t.Errorf("DisplayName = %q", got)
	}
}

func TestCaseStudyScenarios(t *testing.T) {
	scs := CaseStudyScenarios()
	if len(scs) != 3 {
		t.Fatalf("got %d scenarios, want 3", len(scs))
	}
	for _, sc := range scs {
		if err := sc.Validate(); err != nil {
			t.Errorf("scenario %s invalid: %v", sc.DisplayName(), err)
		}
	}
	if scs[0].Scope != ScopeObject || scs[0].TargetAge != 24*time.Hour || scs[0].RecoverSize != units.MB {
		t.Errorf("object scenario = %+v", scs[0])
	}
	if scs[1].Scope != ScopeArray || scs[1].TargetAge != 0 {
		t.Errorf("array scenario = %+v", scs[1])
	}
	if scs[2].Scope != ScopeSite {
		t.Errorf("site scenario = %+v", scs[2])
	}
}

func TestParseScope(t *testing.T) {
	for s := ScopeObject; s <= ScopeRegion; s++ {
		got, err := ParseScope(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScope(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseScope("alien"); !errors.Is(err, ErrBadScope) {
		t.Errorf("ParseScope(alien) = %v", err)
	}
}

func TestScopes(t *testing.T) {
	scopes := Scopes()
	if len(scopes) != 5 {
		t.Fatalf("Scopes() = %d entries, want 5", len(scopes))
	}
	for i, s := range scopes {
		if !s.Valid() {
			t.Errorf("Scopes()[%d] = %v invalid", i, s)
		}
		if i > 0 && scopes[i-1] >= s {
			t.Errorf("Scopes() not ascending at %d: %v then %v", i, scopes[i-1], s)
		}
		// Every enumerated scope round-trips through its name.
		parsed, err := ParseScope(s.String())
		if err != nil || parsed != s {
			t.Errorf("ParseScope(%q) = %v, %v", s.String(), parsed, err)
		}
	}
}
