// Package failure describes the failure scenarios a storage system design
// is evaluated against (§3.1.3 of the paper). A scenario names a failure
// scope — the set of data-copy sites made unavailable — and a recovery
// target: the point in time to which restoration is requested.
//
// Scopes are evaluated as hypothesized disasters, not weighted by
// frequency: disaster-tolerant systems are designed to survive the
// postulated event regardless of how rare it is.
package failure

import (
	"errors"
	"fmt"
	"time"

	"stordep/internal/units"
)

// Scope identifies the set of failed storage and interconnect devices.
type Scope int

// Failure scopes, ordered by blast radius.
const (
	// ScopeObject is loss or corruption of the data object itself (user or
	// software error) with no hardware failure.
	ScopeObject Scope = iota + 1
	// ScopeArray is failure of a single disk array.
	ScopeArray
	// ScopeBuilding fails all devices in one building.
	ScopeBuilding
	// ScopeSite fails all devices on one site.
	ScopeSite
	// ScopeRegion fails all devices in one geographic region.
	ScopeRegion
)

// String returns the scope name used in reports.
func (s Scope) String() string {
	switch s {
	case ScopeObject:
		return "object"
	case ScopeArray:
		return "array"
	case ScopeBuilding:
		return "building"
	case ScopeSite:
		return "site"
	case ScopeRegion:
		return "region"
	default:
		return fmt.Sprintf("Scope(%d)", int(s))
	}
}

// Valid reports whether the scope is one of the defined constants.
func (s Scope) Valid() bool { return s >= ScopeObject && s <= ScopeRegion }

// Scopes returns every defined failure scope in blast-radius order, for
// callers that enumerate or sample hypothesized disasters.
func Scopes() []Scope {
	return []Scope{ScopeObject, ScopeArray, ScopeBuilding, ScopeSite, ScopeRegion}
}

// Placement locates a device or data copy in the physical world. Empty
// strings mean "unspecified", which never matches a failure footprint —
// e.g. a courier service has no fixed site.
type Placement struct {
	Array    string
	Building string
	Site     string
	Region   string
}

// Survives reports whether a resource at placement p remains available
// when a failure of the given scope strikes the resource at placement at.
// Object-scope failures destroy data, not hardware, so every placement
// survives them.
func (p Placement) Survives(scope Scope, at Placement) bool {
	match := func(a, b string) bool { return a != "" && a == b }
	switch scope {
	case ScopeObject:
		return true
	case ScopeArray:
		return !match(p.Array, at.Array)
	case ScopeBuilding:
		return !match(p.Building, at.Building)
	case ScopeSite:
		return !match(p.Site, at.Site)
	case ScopeRegion:
		return !match(p.Region, at.Region)
	default:
		return false
	}
}

// Scenario is one evaluated failure: a scope striking the primary copy's
// placement, and the recovery goals.
type Scenario struct {
	// Name labels the scenario in reports; defaults to the scope name.
	Name string
	// Scope is the failure footprint.
	Scope Scope
	// TargetAge is the age of the recovery target: zero requests "now"
	// (the instant before the failure); a positive age requests rollback
	// to an earlier point (e.g. 24h before a corrupting user error).
	TargetAge time.Duration
	// RecoverSize overrides the amount of data to restore; zero means the
	// whole data object. Object-scope scenarios typically restore only the
	// corrupted object (1 MB in the paper's case study).
	RecoverSize units.ByteSize
}

// Validation errors.
var (
	ErrBadScope  = errors.New("failure: invalid scope")
	ErrBadTarget = errors.New("failure: recovery target age must be non-negative")
	ErrBadSize   = errors.New("failure: recover size must be non-negative")
)

// Validate checks the scenario.
func (sc *Scenario) Validate() error {
	if !sc.Scope.Valid() {
		return fmt.Errorf("%w: %d", ErrBadScope, int(sc.Scope))
	}
	if sc.TargetAge < 0 {
		return fmt.Errorf("%w: %v", ErrBadTarget, sc.TargetAge)
	}
	if sc.RecoverSize < 0 {
		return fmt.Errorf("%w: %v", ErrBadSize, sc.RecoverSize)
	}
	return nil
}

// DisplayName returns the scenario's report label.
func (sc *Scenario) DisplayName() string {
	if sc.Name != "" {
		return sc.Name
	}
	return sc.Scope.String()
}

// CaseStudyScenarios returns the three failure scenarios of the paper's
// case study (§4): a 1 MB object corrupted 24 hours ago, a primary array
// failure, and a primary site disaster (both of the latter restoring the
// whole dataset to "now").
func CaseStudyScenarios() []Scenario {
	return []Scenario{
		{Name: "object", Scope: ScopeObject, TargetAge: 24 * time.Hour, RecoverSize: units.MB},
		{Name: "array", Scope: ScopeArray},
		{Name: "site", Scope: ScopeSite},
	}
}

// ParseScope converts a scope name ("object", "array", "building",
// "site", "region") into its Scope constant.
func ParseScope(s string) (Scope, error) {
	switch s {
	case "object":
		return ScopeObject, nil
	case "array":
		return ScopeArray, nil
	case "building":
		return ScopeBuilding, nil
	case "site":
		return ScopeSite, nil
	case "region":
		return ScopeRegion, nil
	default:
		return 0, fmt.Errorf("%w: unknown scope %q", ErrBadScope, s)
	}
}
