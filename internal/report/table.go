// Package report renders the framework's outputs in the layout of the
// paper's tables and figures: plain-text tables for terminals, CSV for
// downstream tooling, and ASCII bar charts for the cost breakdown of
// Figure 5.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple aligned plain-text table.
type Table struct {
	// Title is printed above the table when non-empty.
	Title  string
	header []string
	rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// AddRow appends a row; missing cells render empty, extras are kept.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(cells))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddSeparator appends a horizontal rule row.
func (t *Table) AddSeparator() {
	t.rows = append(t.rows, nil)
}

// columnWidths returns the width of each column across header and rows.
func (t *Table) columnWidths() []int {
	n := len(t.header)
	for _, r := range t.rows {
		if len(r) > n {
			n = len(r)
		}
	}
	widths := make([]int, n)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	return widths
}

// String renders the table.
func (t *Table) String() string {
	widths := t.columnWidths()
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(row []string) {
		for i, w := range widths {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w, cell)
		}
		// Trim the padding on the last column.
		s := b.String()
		trimmed := strings.TrimRight(s, " ")
		b.Reset()
		b.WriteString(trimmed)
		b.WriteByte('\n')
	}
	rule := func() {
		total := 0
		for _, w := range widths {
			total += w
		}
		total += 2 * (len(widths) - 1)
		b.WriteString(strings.Repeat("-", total))
		b.WriteByte('\n')
	}
	if len(t.header) > 0 {
		writeRow(t.header)
		rule()
	}
	for _, r := range t.rows {
		if r == nil {
			rule()
			continue
		}
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (RFC-4180 quoting for
// cells containing commas, quotes or newlines).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(row []string) {
		for i, c := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	if len(t.header) > 0 {
		writeRow(t.header)
	}
	for _, r := range t.rows {
		if r != nil {
			writeRow(r)
		}
	}
	return b.String()
}

// Bar renders a proportional ASCII bar of the given width for value out of
// max. Values at or below zero produce an empty bar; an infinite or
// max-exceeding value fills it.
func Bar(value, max float64, width int) string {
	if width <= 0 {
		return ""
	}
	if value <= 0 || max <= 0 {
		return strings.Repeat(" ", width)
	}
	n := int(value / max * float64(width))
	if n > width || value > max {
		n = width
	}
	if n == 0 {
		n = 1 // visible sliver for tiny non-zero values
	}
	return strings.Repeat("#", n) + strings.Repeat(" ", width-n)
}

// Markdown renders the table as a GitHub-flavored Markdown table; the
// title becomes a bold caption line.
func (t *Table) Markdown() string {
	widths := t.columnWidths()
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	writeRow := func(row []string) {
		b.WriteByte('|')
		for i := range widths {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			fmt.Fprintf(&b, " %-*s |", widths[i], strings.ReplaceAll(cell, "|", "\\|"))
		}
		b.WriteByte('\n')
	}
	header := t.header
	if len(header) == 0 && len(t.rows) > 0 {
		header = make([]string, len(widths))
	}
	writeRow(header)
	b.WriteByte('|')
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2))
		b.WriteByte('|')
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		if r != nil {
			writeRow(r)
		}
	}
	return b.String()
}
