package report

import (
	"fmt"
	"strings"
	"time"

	"stordep/internal/core"
	"stordep/internal/units"
	"stordep/internal/whatif"
)

// Figure1 renders a design's structure as ASCII (the paper's Figure 1:
// the example storage system with its RP propagation hierarchy).
func Figure1(d *core.Design) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: Storage system design %q\n", d.Name)
	fmt.Fprintf(&b, "  workload %s on primary copy (level 0) @ %s\n",
		d.Workload.Name, d.Primary.Array)
	for i, tech := range d.Levels {
		arrow := "  " + strings.Repeat("  ", i) + "└─ "
		loc := tech.CopyDevice()
		if tr := tech.TransportDevice(); tr != "" {
			loc += " via " + tr
		}
		fmt.Fprintf(&b, "%slevel %d: %s -> %s\n", arrow, i+1, tech.Name(), loc)
	}
	if len(d.Devices) > 0 {
		b.WriteString("  devices:\n")
		for _, pd := range d.Devices {
			site := pd.Placement.Site
			if site == "" {
				site = "(mobile)"
			}
			fmt.Fprintf(&b, "    %-22s %-13s @ %s\n", pd.Spec.Name, pd.Spec.Kind, site)
		}
	}
	if d.Facility != nil {
		fmt.Fprintf(&b, "  recovery facility @ %s (provision %s, %g%% retainer)\n",
			d.Facility.Placement.Site,
			units.FormatDuration(d.Facility.ProvisionTime),
			d.Facility.CostFactor*100)
	}
	return b.String()
}

// DegradedTable renders a degraded-mode study: the marginal loss exposure
// of running with each protection technique out of service.
func DegradedTable(scenario string, rows []whatif.DegradedOutcome) string {
	t := NewTable(
		fmt.Sprintf("Degraded mode exposure (%s failure)", scenario),
		"Degraded level", "Down for", "Healthy loss", "Degraded loss", "Extra penalty")
	for _, r := range rows {
		t.AddRow(
			r.Level,
			units.FormatDuration(r.Outage),
			hours(r.Healthy),
			hours(r.Degraded),
			r.ExtraPenalty.String(),
		)
	}
	return t.String()
}

// ExpectedTable renders a frequency-weighted expected-cost ranking next
// to the worst-case criterion.
func ExpectedTable(worst []whatif.Result, expected []whatif.ExpectedRanking) string {
	t := NewTable("Design ranking: worst-scenario total vs expected annual cost",
		"Design", "Worst-case total", "Expected annual")
	expByName := make(map[string]units.Money, len(expected))
	for _, e := range expected {
		expByName[e.Design] = e.Expected
	}
	for _, r := range worst {
		t.AddRow(r.Design, money(r.WorstTotal()), money(expByName[r.Design]))
	}
	return t.String()
}

// ServiceTable renders a multi-object service assessment: per-object
// recovery with dependency gating, then the service-level critical path.
func ServiceTable(sa *core.ServiceAssessment) string {
	t := NewTable(
		fmt.Sprintf("Multi-object service recovery (%s failure)", sa.Scenario.DisplayName()),
		"Object", "Source", "Own RT", "Effective RT", "Data loss")
	for _, oa := range sa.Objects {
		src := oa.Plan.SourceName
		if oa.WholeObjectLost {
			src = "(unrecoverable)"
		}
		t.AddRow(oa.Object, src,
			hours(oa.RecoveryTime), hours(oa.EffectiveRT), hours(oa.DataLoss))
	}
	t.AddSeparator()
	t.AddRow("service", "", hours(sa.RecoveryTime), hours(sa.RecoveryTime), hours(sa.DataLoss))
	return t.String()
}

// ParetoTable renders a Pareto frontier.
func ParetoTable(title string, pts []whatif.Point) string {
	t := NewTable(title, "Design", "Recovery time", "Data loss", "Outlays")
	for _, p := range pts {
		t.AddRow(p.Design, hours(p.RecoveryTime), hours(p.DataLoss), p.Outlays.String())
	}
	return t.String()
}

// durations below one minute render awkwardly in the hours helper; keep a
// crisp formatter for sub-hour plan steps if needed by future renderers.
func shortDuration(d time.Duration) string {
	if d < time.Hour {
		return units.FormatDuration(d)
	}
	return hours(d)
}
