package report

import (
	"fmt"
	"math"
	"strings"
	"time"

	"stordep/internal/core"
	"stordep/internal/hierarchy"
	"stordep/internal/units"
	"stordep/internal/workload"
)

// hours formats a duration as fractional hours, the unit of the paper's
// dependability tables.
func hours(d time.Duration) string {
	if d == units.Forever {
		return "inf"
	}
	switch {
	case d < time.Second:
		return fmt.Sprintf("%.3g s", d.Seconds())
	case d < time.Hour:
		return fmt.Sprintf("%.2g hr", d.Hours())
	default:
		return fmt.Sprintf("%.4g hr", d.Hours())
	}
}

func pct(u float64) string { return fmt.Sprintf("%.1f%%", u*100) }

func money(m units.Money) string {
	if math.IsInf(float64(m), 1) {
		return "inf"
	}
	return fmt.Sprintf("$%.2fM", float64(m)/1e6)
}

// Table2 renders the workload parameters in the layout of the paper's
// Table 2.
func Table2(w *workload.Workload) string { return Table2Data(w).String() }

// Table2Data builds the Table 2 rows for custom rendering (CSV, ...).
func Table2Data(w *workload.Workload) *Table {
	t := NewTable(
		fmt.Sprintf("Table 2: Parameters for %s workload", w.Name),
		"dataCap", "avgAccessR", "avgUpdateR", "burstM", "batchUpdR(win)")
	var parts []string
	for _, p := range w.BatchCurve {
		parts = append(parts, fmt.Sprintf("%s: %v", units.FormatDuration(p.Window), p.Rate))
	}
	t.AddRow(
		w.DataCap.String(),
		w.AvgAccessRate.String(),
		w.AvgUpdateRate.String(),
		fmt.Sprintf("%.3gX", w.BurstMult),
		strings.Join(parts, "; "),
	)
	return t
}

// Table3 renders a design's data protection technique parameters (the
// paper's Table 3).
func Table3(d *core.Design) string { return Table3Data(d).String() }

// Table3Data builds the Table 3 rows for custom rendering.
func Table3Data(d *core.Design) *Table {
	t := NewTable(
		fmt.Sprintf("Table 3: Data protection technique parameters (%s)", d.Name),
		"Technique", "accW", "propW", "holdW", "cyclePer", "retCnt", "retW", "copyRep", "propRep")
	for _, tech := range d.Levels {
		lvl := tech.Level()
		p := lvl.Policy
		t.AddRow(
			lvl.Name,
			units.FormatDuration(p.Primary.AccW),
			units.FormatDuration(p.Primary.PropW),
			units.FormatDuration(p.Primary.HoldW),
			units.FormatDuration(p.CyclePeriod()),
			fmt.Sprintf("%d", p.RetCnt),
			units.FormatDuration(p.RetW),
			p.CopyRep.String(),
			p.Primary.Rep.String(),
		)
		if p.Secondary != nil {
			t.AddRow(
				fmt.Sprintf("  +%d incrementals", p.CycleCnt),
				units.FormatDuration(p.Secondary.AccW),
				units.FormatDuration(p.Secondary.PropW),
				units.FormatDuration(p.Secondary.HoldW),
				"", "", "", "",
				p.Secondary.Rep.String(),
			)
		}
	}
	return t
}

// Table4 renders a design's device configuration (the paper's Table 4).
func Table4(d *core.Design) string { return Table4Data(d).String() }

// Table4Data builds the Table 4 rows for custom rendering.
func Table4Data(d *core.Design) *Table {
	t := NewTable(
		fmt.Sprintf("Table 4: Device configuration parameters (%s)", d.Name),
		"Device", "capSlots@slotCap", "bwSlots@slotBW", "enclBW", "devDelay", "costs", "spare", "spareTime", "spareDisc")
	for _, pd := range d.Devices {
		s := pd.Spec
		capCol, bwCol, encl := "n/a", "n/a", "n/a"
		if s.MaxCapSlots > 0 {
			capCol = fmt.Sprintf("%d@%v", s.MaxCapSlots, s.SlotCap)
		}
		if s.MaxBWSlots > 0 {
			bwCol = fmt.Sprintf("%d@%v", s.MaxBWSlots, s.SlotBW)
		}
		if s.EnclBW > 0 {
			encl = s.EnclBW.String()
		}
		delay := "n/a"
		if s.Delay > 0 {
			delay = units.FormatDuration(s.Delay)
		}
		var costParts []string
		if s.Cost.Fixed != 0 {
			costParts = append(costParts, fmt.Sprintf("%.0f", float64(s.Cost.Fixed)))
		}
		if s.Cost.PerGB != 0 {
			costParts = append(costParts, fmt.Sprintf("c*%.1f", s.Cost.PerGB))
		}
		if s.Cost.PerMBPerSec != 0 {
			costParts = append(costParts, fmt.Sprintf("b*%.1f", s.Cost.PerMBPerSec))
		}
		if s.Cost.PerShipment != 0 {
			costParts = append(costParts, fmt.Sprintf("s*%.0f", s.Cost.PerShipment))
		}
		spare, spareTime, spareDisc := s.Spare.Kind.String(), "n/a", "n/a"
		if s.HasSpare() {
			spareTime = units.FormatDuration(s.Spare.ProvisionTime)
			spareDisc = fmt.Sprintf("%gX", s.Spare.Discount)
		}
		t.AddRow(s.Name, capCol, bwCol, encl, delay,
			strings.Join(costParts, " + "), spare, spareTime, spareDisc)
	}
	return t
}

// Table5 renders the normal-mode utilization breakdown (the paper's
// Table 5).
func Table5(u core.Utilization) string { return Table5Data(u).String() }

// Table5Data builds the Table 5 rows for custom rendering.
func Table5Data(u core.Utilization) *Table {
	t := NewTable("Table 5: Normal mode bandwidth and capacity utilization",
		"Device / Technique", "Bandwidth", "Capacity")
	for _, du := range u.PerDevice {
		if len(du.Rows) == 0 {
			continue
		}
		t.AddRow(du.Device, "", "")
		for _, r := range du.Rows {
			t.AddRow("  "+r.Technique, pct(r.BWUtil), pct(r.CapUtil))
		}
		t.AddRow("  overall",
			fmt.Sprintf("%s (%v)", pct(du.BWUtil), du.Bandwidth),
			fmt.Sprintf("%s (%v)", pct(du.CapUtil), du.Capacity))
		t.AddSeparator()
	}
	t.AddRow("system",
		fmt.Sprintf("%s (%s)", pct(u.BW), u.BWDevice),
		fmt.Sprintf("%s (%s)", pct(u.Cap), u.CapDevice))
	return t
}

// Table6 renders worst-case recovery time and recent data loss per failure
// scenario (the paper's Table 6).
func Table6(assessments []*core.Assessment) string { return Table6Data(assessments).String() }

// Table6Data builds the Table 6 rows for custom rendering.
func Table6Data(assessments []*core.Assessment) *Table {
	t := NewTable("Table 6: Worst case recovery time and recent data loss",
		"Failure scope", "Recovery source", "Recovery time", "Recent data loss")
	for _, a := range assessments {
		src := a.Plan.SourceName
		loss := hours(a.DataLoss)
		if a.WholeObjectLost {
			src, loss = "(unrecoverable)", "entire object"
		}
		t.AddRow(a.Scenario.DisplayName(), src, hours(a.RecoveryTime), loss)
	}
	return t
}

// WhatIfRow is one design's Table 7 row: outlays plus dependability and
// penalties under the array-failure and site-disaster scenarios.
type WhatIfRow struct {
	Design string
	Array  *core.Assessment
	Site   *core.Assessment
}

// Table7 renders the what-if comparison (the paper's Table 7).
func Table7(rows []WhatIfRow) string { return Table7Data(rows).String() }

// Table7Data builds the Table 7 rows for custom rendering.
func Table7Data(rows []WhatIfRow) *Table {
	t := NewTable("Table 7: Recovery time (RT), recent data loss (DL) and cost, what-if scenarios",
		"Storage system design", "Outlays",
		"RT(arr)", "DL(arr)", "Pen(arr)", "Total(arr)",
		"RT(site)", "DL(site)", "Pen(site)", "Total(site)")
	for _, r := range rows {
		t.AddRow(
			r.Design,
			money(r.Array.Cost.Outlays.Total()),
			hours(r.Array.RecoveryTime), hours(r.Array.DataLoss),
			money(r.Array.Cost.Penalties.Total()), money(r.Array.Cost.Total()),
			hours(r.Site.RecoveryTime), hours(r.Site.DataLoss),
			money(r.Site.Cost.Penalties.Total()), money(r.Site.Cost.Total()),
		)
	}
	return t
}

// Figure5 renders the overall-cost breakdown per failure scenario as an
// ASCII bar chart (the paper's Figure 5): outlays split by technique plus
// the outage and loss penalties.
func Figure5(assessments []*core.Assessment) string {
	const width = 40
	var b strings.Builder
	b.WriteString("Figure 5: Overall system cost by failure scenario\n")

	var max float64
	for _, a := range assessments {
		if tot := float64(a.Cost.Total()); !math.IsInf(tot, 1) && tot > max {
			max = tot
		}
	}
	for _, a := range assessments {
		fmt.Fprintf(&b, "\n%s failure: total %s\n", a.Scenario.DisplayName(), money(a.Cost.Total()))
		byTech, names := a.Cost.Outlays.ByTechnique()
		for _, name := range names {
			v := byTech[name]
			fmt.Fprintf(&b, "  outlay  %-22s %10s |%s|\n",
				name, money(v), Bar(float64(v), max, width))
		}
		fmt.Fprintf(&b, "  penalty %-22s %10s |%s|\n",
			"data outage", money(a.Cost.Penalties.Outage),
			Bar(float64(a.Cost.Penalties.Outage), max, width))
		fmt.Fprintf(&b, "  penalty %-22s %10s |%s|\n",
			"recent data loss", money(a.Cost.Penalties.Loss),
			Bar(float64(a.Cost.Penalties.Loss), max, width))
	}
	return b.String()
}

// Figure2 renders the per-level timing parameters as a textual timeline
// (the paper's Figure 2).
func Figure2(d *core.Design) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: Parameter specification for %s\n", d.Name)
	fmt.Fprintf(&b, "  level 0: primary copy on %s\n", d.Primary.Array)
	for i, tech := range d.Levels {
		lvl := tech.Level()
		p := lvl.Policy
		fmt.Fprintf(&b, "  level %d: %s — every %s accumulate; hold %s; propagate over %s; retain %d for %s\n",
			i+1, lvl.Name,
			units.FormatDuration(p.Primary.AccW),
			units.FormatDuration(p.Primary.HoldW),
			units.FormatDuration(p.Primary.PropW),
			p.RetCnt,
			units.FormatDuration(p.RetW),
		)
		if p.Secondary != nil {
			fmt.Fprintf(&b, "           plus %d incrementals per cycle: every %s, hold %s, propagate over %s\n",
				p.CycleCnt,
				units.FormatDuration(p.Secondary.AccW),
				units.FormatDuration(p.Secondary.HoldW),
				units.FormatDuration(p.Secondary.PropW),
			)
		}
	}
	return b.String()
}

// Figure3 renders each level's guaranteed retrieval-point range (the
// paper's Figure 3).
func Figure3(c hierarchy.Chain) string {
	t := NewTable("Figure 3: Range of RPs guaranteed present at each level",
		"Level", "Technique", "Time lag (min..max)", "Guaranteed range")
	for j := 1; j <= len(c); j++ {
		r := c.GuaranteedRange(j)
		t.AddRow(
			fmt.Sprintf("%d", j),
			c[j-1].Name,
			fmt.Sprintf("%s..%s",
				units.FormatDuration(c.CumTransferLag(j)),
				units.FormatDuration(c.MaxLag(j))),
			r.String(),
		)
	}
	return t.String()
}

// Figure4 renders a recovery plan's dependency chain (the paper's
// Figure 4).
func Figure4(a *core.Assessment) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: Recovery time dependencies (%s failure)\n", a.Scenario.DisplayName())
	if a.WholeObjectLost {
		b.WriteString("  unrecoverable: no surviving level retains a usable RP\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  source: level %d (%s), worst-case loss %s\n",
		a.Plan.SourceLevel, a.Plan.SourceName, hours(a.DataLoss))
	for _, s := range a.Plan.Steps {
		fmt.Fprintf(&b, "  step %-38s parFix=%-8s serFix=%-8s xfer=%v@%v\n",
			s.Name,
			units.FormatDuration(s.ParFix),
			s.SerFix.String(),
			s.Size, s.Bandwidth)
	}
	fmt.Fprintf(&b, "  recovery time: %s\n", hours(a.RecoveryTime))
	return b.String()
}
