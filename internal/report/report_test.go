package report

import (
	"strings"
	"testing"

	"stordep/internal/casestudy"
	"stordep/internal/core"
	"stordep/internal/failure"
	"stordep/internal/workload"
)

func TestTableAlignment(t *testing.T) {
	tbl := NewTable("Title", "A", "BBBB")
	tbl.AddRow("x", "y")
	tbl.AddRow("longer", "z")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "A ") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.Contains(out, "longer  z") {
		t.Errorf("row alignment wrong:\n%s", out)
	}
}

func TestTableSeparatorAndRaggedRows(t *testing.T) {
	tbl := NewTable("", "A", "B")
	tbl.AddRow("1")
	tbl.AddSeparator()
	tbl.AddRow("2", "3", "4") // extra cell is kept
	out := tbl.String()
	if !strings.Contains(out, "---") {
		t.Error("separator missing")
	}
	if !strings.Contains(out, "4") {
		t.Error("extra cell dropped")
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("t", "A", "B")
	tbl.AddRow("plain", `has "quote", and comma`)
	tbl.AddSeparator()
	got := tbl.CSV()
	want := "A,B\nplain,\"has \"\"quote\"\", and comma\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestBar(t *testing.T) {
	tests := []struct {
		value, max float64
		width      int
		want       string
	}{
		{50, 100, 10, "#####     "},
		{100, 100, 10, "##########"},
		{200, 100, 10, "##########"},
		{0, 100, 10, "          "},
		{-5, 100, 10, "          "},
		{0.1, 100, 10, "#         "}, // sliver
		{1, 0, 4, "    "},
		{1, 1, 0, ""},
	}
	for _, tt := range tests {
		if got := Bar(tt.value, tt.max, tt.width); got != tt.want {
			t.Errorf("Bar(%v,%v,%d) = %q, want %q", tt.value, tt.max, tt.width, got, tt.want)
		}
	}
}

func buildBaseline(t *testing.T) (*core.System, []*core.Assessment) {
	t.Helper()
	sys, err := core.Build(casestudy.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	as, err := sys.AssessAll(failure.CaseStudyScenarios())
	if err != nil {
		t.Fatal(err)
	}
	return sys, as
}

func TestTable2(t *testing.T) {
	out := Table2(workload.Cello())
	for _, want := range []string{"1.3TB", "1.0MB/s", "799.0KB/s", "10X", "1min: 727.0KB/s", "12h: 350.0KB/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q:\n%s", want, out)
		}
	}
}

func TestTable3(t *testing.T) {
	out := Table3(casestudy.Baseline())
	for _, want := range []string{"split-mirror", "backup", "vaulting", "12h", "1wk", "4wk12h", "39", "3yr", "full"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table3 missing %q:\n%s", want, out)
		}
	}
	// F+I variant shows the incremental row.
	out = Table3(casestudy.WeeklyVaultFI())
	if !strings.Contains(out, "+5 incrementals") {
		t.Errorf("Table3 missing incremental row:\n%s", out)
	}
}

func TestTable4(t *testing.T) {
	out := Table4(casestudy.Baseline())
	for _, want := range []string{"disk-array", "256@73.0GB", "512.0MB/s", "tape-library", "16@60.0MB/s", "c*17.2", "b*108.6", "s*50", "dedicated", "none", "1X"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table4 missing %q:\n%s", want, out)
		}
	}
}

func TestTable5(t *testing.T) {
	sys, _ := buildBaseline(t)
	out := Table5(sys.Utilization())
	for _, want := range []string{"foreground", "14.6%", "72.8%", "87.3%", "3.4%", "2.7%", "system"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table5 missing %q:\n%s", want, out)
		}
	}
}

func TestTable6(t *testing.T) {
	_, as := buildBaseline(t)
	out := Table6(as)
	for _, want := range []string{"object", "split-mirror", "12 hr", "array", "backup", "217 hr", "site", "vaulting", "0.004 s"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table6 missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "1429 hr") && !strings.Contains(out, "1429") {
		t.Errorf("Table6 missing site loss:\n%s", out)
	}
}

func TestTable7(t *testing.T) {
	arrSc := failure.Scenario{Scope: failure.ScopeArray}
	siteSc := failure.Scenario{Scope: failure.ScopeSite}
	var rows []WhatIfRow
	for _, d := range casestudy.WhatIfDesigns() {
		sys, err := core.Build(d)
		if err != nil {
			t.Fatal(err)
		}
		arr, err := sys.Assess(arrSc)
		if err != nil {
			t.Fatal(err)
		}
		site, err := sys.Assess(siteSc)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, WhatIfRow{Design: d.Name, Array: arr, Site: site})
	}
	out := Table7(rows)
	for _, want := range []string{"Baseline", "Weekly vault, daily F, snapshot", "AsyncB mirror, 10 link(s)", "217 hr", "DL(site)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table7 missing %q:\n%s", want, out)
		}
	}
	lines := strings.Count(out, "\n")
	if lines < 9 {
		t.Errorf("Table7 too short (%d lines):\n%s", lines, out)
	}
}

func TestFigure5(t *testing.T) {
	_, as := buildBaseline(t)
	out := Figure5(as)
	for _, want := range []string{"object failure", "array failure", "site failure", "recent data loss", "data outage", "split-mirror", "|#"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure5 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure2(t *testing.T) {
	out := Figure2(casestudy.Baseline())
	for _, want := range []string{"level 0", "level 1: split-mirror", "every 12h", "level 3", "retain 39 for 3yr"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure2 missing %q:\n%s", want, out)
		}
	}
	out = Figure2(casestudy.WeeklyVaultFI())
	if !strings.Contains(out, "plus 5 incrementals per cycle") {
		t.Errorf("Figure2 missing incrementals:\n%s", out)
	}
}

func TestFigure3(t *testing.T) {
	sys, _ := buildBaseline(t)
	out := Figure3(sys.Chain())
	for _, want := range []string{"split-mirror", "[now-1d12h .. now-12h]", "backup", "vaulting"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure3 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure4(t *testing.T) {
	_, as := buildBaseline(t)
	out := Figure4(as[2]) // site disaster
	for _, want := range []string{"site failure", "vaulting", "parFix", "recovery time"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure4 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure4Unrecoverable(t *testing.T) {
	d := casestudy.Baseline()
	d.Facility = nil
	sys, err := core.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sys.Assess(failure.Scenario{Scope: failure.ScopeSite})
	if err != nil {
		t.Fatal(err)
	}
	out := Figure4(a)
	if !strings.Contains(out, "unrecoverable") {
		t.Errorf("Figure4 should mark unrecoverable:\n%s", out)
	}
	// Table 6 should render it too.
	t6 := Table6([]*core.Assessment{a})
	if !strings.Contains(t6, "entire object") || !strings.Contains(t6, "inf") {
		t.Errorf("Table6 unrecoverable rendering:\n%s", t6)
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := NewTable("Caption", "A", "B")
	tbl.AddRow("x", "y|z")
	tbl.AddSeparator()
	got := tbl.Markdown()
	for _, want := range []string{"**Caption**", "| A ", "| B", "|---", `y\|z`} {
		if !strings.Contains(got, want) {
			t.Errorf("Markdown missing %q:\n%s", want, got)
		}
	}
	// Separators are dropped; exactly one rule line.
	if strings.Count(got, "|----") != 1 {
		t.Errorf("rule lines:\n%s", got)
	}
}

func TestTable6Markdown(t *testing.T) {
	_, as := buildBaseline(t)
	got := Table6Data(as).Markdown()
	if !strings.Contains(got, "| array") || !strings.Contains(got, "217 hr") {
		t.Errorf("Table6 markdown:\n%s", got)
	}
}
