package report

import (
	"strings"
	"testing"
	"time"

	"stordep/internal/casestudy"
	"stordep/internal/core"
	"stordep/internal/cost"
	"stordep/internal/device"
	"stordep/internal/failure"
	"stordep/internal/protect"
	"stordep/internal/units"
	"stordep/internal/whatif"
	"stordep/internal/workload"
)

func TestFigure1(t *testing.T) {
	out := Figure1(casestudy.Baseline())
	for _, want := range []string{
		"Figure 1", "level 0", "level 1: split-mirror", "level 3: vaulting",
		"tape-vault via air-shipment", "disk-array", "(mobile)",
		"recovery facility @ recovery-site", "provision 9h", "20% retainer",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure1 missing %q:\n%s", want, out)
		}
	}
}

func TestDegradedTable(t *testing.T) {
	rows, err := whatif.DegradedStudy(casestudy.Baseline(),
		failure.Scenario{Scope: failure.ScopeArray}, []time.Duration{units.Week})
	if err != nil {
		t.Fatal(err)
	}
	out := DegradedTable("array", rows)
	for _, want := range []string{"Degraded mode exposure", "backup", "1wk", "217 hr", "385 hr", "$8.40M"} {
		if !strings.Contains(out, want) {
			t.Errorf("DegradedTable missing %q:\n%s", want, out)
		}
	}
}

func TestExpectedTable(t *testing.T) {
	results, err := whatif.Evaluate(casestudy.WhatIfDesigns(), []failure.Scenario{
		{Scope: failure.ScopeArray}, {Scope: failure.ScopeSite},
	})
	if err != nil {
		t.Fatal(err)
	}
	worst := whatif.Rank(results)
	expected := whatif.RankExpected(results, whatif.TypicalFrequencies())
	out := ExpectedTable(worst, expected)
	for _, want := range []string{"Expected annual", "Baseline", "AsyncB mirror, 1 link(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("ExpectedTable missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "$") < 14 {
		t.Errorf("ExpectedTable seems incomplete:\n%s", out)
	}
}

func TestServiceTable(t *testing.T) {
	base := casestudy.Baseline()
	md := &core.MultiDesign{
		Name:         "svc",
		Requirements: cost.CaseStudyRequirements(),
		Devices:      base.Devices,
		Facility:     base.Facility,
		Objects: []core.ObjectSpec{
			{
				Name:     "a",
				Workload: workload.FileServer(300 * units.GB),
				Primary:  &protect.Primary{Array: device.NameDiskArray},
				Levels: []protect.Technique{
					&protect.Backup{InstanceName: "a-backup", SourceArray: device.NameDiskArray,
						Target: device.NameTapeLibrary, Pol: casestudy.BackupPolicy()},
				},
			},
			{
				Name:      "b",
				Workload:  workload.OLTP(200 * units.GB),
				Primary:   &protect.Primary{Array: device.NameDiskArray},
				DependsOn: []string{"a"},
				Levels: []protect.Technique{
					&protect.Backup{InstanceName: "b-backup", SourceArray: device.NameDiskArray,
						Target: device.NameTapeLibrary, Pol: casestudy.BackupPolicy()},
				},
			},
		},
	}
	ms, err := core.BuildMulti(md)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := ms.Assess(failure.Scenario{Scope: failure.ScopeArray})
	if err != nil {
		t.Fatal(err)
	}
	out := ServiceTable(sa)
	for _, want := range []string{"Multi-object service recovery (array failure)", "a-backup", "b-backup", "service"} {
		if !strings.Contains(out, want) {
			t.Errorf("ServiceTable missing %q:\n%s", want, out)
		}
	}
}

func TestParetoTable(t *testing.T) {
	results, err := whatif.Evaluate(casestudy.WhatIfDesigns(), []failure.Scenario{
		{Scope: failure.ScopeSite},
	})
	if err != nil {
		t.Fatal(err)
	}
	pts := whatif.Pareto(results, 0)
	out := ParetoTable("Frontier", pts)
	if !strings.Contains(out, "Frontier") || strings.Count(out, "\n") < 3 {
		t.Errorf("ParetoTable:\n%s", out)
	}
}

func TestShortDuration(t *testing.T) {
	if got := shortDuration(30 * time.Minute); got != "30min" {
		t.Errorf("shortDuration = %q", got)
	}
	if got := shortDuration(26 * time.Hour); got != "26 hr" {
		t.Errorf("shortDuration = %q", got)
	}
}
