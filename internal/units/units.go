// Package units provides the dimensioned quantities used throughout the
// dependability modeling framework: byte sizes, transfer rates, money and
// calendar durations (weeks, years). All model inputs in Table 1 of the
// paper are expressed in these units.
//
// The paper mixes decimal prefixes loosely; we standardize on binary
// multiples (1 KB = 1024 B) because that convention reproduces the
// case-study arithmetic (e.g. 12.4 MB/s total array bandwidth in Table 5).
package units

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// ByteSize is a data size in bytes. Sizes in the framework describe data
// capacities, retrieval-point sizes and recovery sizes; they are always
// non-negative.
type ByteSize float64

// Byte size constants using binary multiples.
const (
	Byte ByteSize = 1 << (10 * iota)
	KB
	MB
	GB
	TB
	PB
)

// Bytes returns the size as a float64 number of bytes.
func (b ByteSize) Bytes() float64 { return float64(b) }

// GBytes returns the size expressed in gigabytes (2^30 bytes); several of
// the paper's cost models are per-GB.
func (b ByteSize) GBytes() float64 { return float64(b / GB) }

// IsNegative reports whether the size is negative (always invalid).
func (b ByteSize) IsNegative() bool { return b < 0 }

// String renders the size with the largest prefix that keeps the mantissa
// at or above one, e.g. "1360.0GB".
func (b ByteSize) String() string {
	switch {
	case math.IsNaN(float64(b)):
		return "NaN"
	case b < 0:
		return "-" + (-b).String()
	case b >= PB:
		return fmt.Sprintf("%.1fPB", float64(b/PB))
	case b >= TB:
		return fmt.Sprintf("%.1fTB", float64(b/TB))
	case b >= GB:
		return fmt.Sprintf("%.1fGB", float64(b/GB))
	case b >= MB:
		return fmt.Sprintf("%.1fMB", float64(b/MB))
	case b >= KB:
		return fmt.Sprintf("%.1fKB", float64(b/KB))
	default:
		return fmt.Sprintf("%.0fB", float64(b))
	}
}

// Rate is a data transfer rate in bytes per second. Rates describe device
// bandwidths, workload access/update rates and link speeds.
type Rate float64

// Common rate constants.
const (
	BytePerSec Rate = 1 << (10 * iota)
	KBPerSec
	MBPerSec
	GBPerSec
)

// BytesPerSec returns the rate as a float64 number of bytes per second.
func (r Rate) BytesPerSec() float64 { return float64(r) }

// MBPS returns the rate expressed in MB/s (2^20 bytes per second); several
// of the paper's cost models are per-MB/s.
func (r Rate) MBPS() float64 { return float64(r / MBPerSec) }

// String renders the rate with the largest prefix that keeps the mantissa
// at or above one, e.g. "8.1MB/s".
func (r Rate) String() string {
	switch {
	case math.IsNaN(float64(r)):
		return "NaN"
	case r < 0:
		return "-" + (-r).String()
	case r >= GBPerSec:
		return fmt.Sprintf("%.1fGB/s", float64(r/GBPerSec))
	case r >= MBPerSec:
		return fmt.Sprintf("%.1fMB/s", float64(r/MBPerSec))
	case r >= KBPerSec:
		return fmt.Sprintf("%.1fKB/s", float64(r/KBPerSec))
	default:
		return fmt.Sprintf("%.1fB/s", float64(r))
	}
}

// Over returns the volume of data transferred at rate r for duration d.
func (r Rate) Over(d time.Duration) ByteSize {
	return ByteSize(float64(r) * d.Seconds())
}

// Div divides a size by a rate, yielding the transfer duration. Dividing by
// a zero or negative rate returns an infinite duration, which the recovery
// model treats as "this path cannot transfer data".
func Div(b ByteSize, r Rate) time.Duration {
	if r <= 0 {
		return Forever
	}
	secs := float64(b) / float64(r)
	if secs >= math.MaxInt64/float64(time.Second) {
		return Forever
	}
	return time.Duration(secs * float64(time.Second))
}

// RateOf returns the rate that transfers b in d. A non-positive duration
// yields +Inf, representing an instantaneous transfer requirement.
func RateOf(b ByteSize, d time.Duration) Rate {
	if d <= 0 {
		return Rate(math.Inf(1))
	}
	return Rate(float64(b) / d.Seconds())
}

// Calendar durations. The paper specifies policy windows in hours, days,
// weeks and years (e.g. vault retention of three years); time.Duration has
// no constants above Hour.
const (
	Day  = 24 * time.Hour
	Week = 7 * Day
	// Year is 52 weeks, matching the paper's "4-week cycle, retCnt 39 ≈
	// 3 years" arithmetic (39 × 4 weeks = 156 weeks = 3 × 52 weeks).
	Year = 52 * Week
	// Forever is the sentinel for an unbounded duration (e.g. the recovery
	// time of an unrecoverable design).
	Forever = time.Duration(math.MaxInt64)
)

// Hours returns d expressed in (possibly fractional) hours.
func Hours(d time.Duration) float64 { return d.Hours() }

// Money is an amount of US dollars, stored as floating-point dollars. The
// framework deals in annualized outlays and penalties in the $10^4..$10^8
// range, where float64 precision (15-16 significant digits) is ample.
type Money float64

// String renders the amount as dollars, switching to $x.xxM above one
// million to match the paper's tables.
func (m Money) String() string {
	switch {
	case math.IsInf(float64(m), 1):
		return "unbounded"
	case math.IsNaN(float64(m)):
		return "NaN"
	case m < 0:
		return "-" + (-m).String()
	case m >= 1e6:
		return fmt.Sprintf("$%.2fM", float64(m)/1e6)
	case m >= 1e3:
		return fmt.Sprintf("$%.1fK", float64(m)/1e3)
	default:
		return fmt.Sprintf("$%.2f", float64(m))
	}
}

// PenaltyRate is a cost accrual per unit time (US dollars per second), used
// for the data-unavailability and recent-data-loss penalty rates of §3.1.2.
type PenaltyRate float64

// PerHour constructs a PenaltyRate from a dollars-per-hour figure, the
// granularity used in the paper ($50,000/hr in the case study).
func PerHour(dollars float64) PenaltyRate {
	return PenaltyRate(dollars / time.Hour.Seconds())
}

// Over returns the penalty accrued over duration d. An infinite duration
// (unrecoverable) yields +Inf dollars.
func (p PenaltyRate) Over(d time.Duration) Money {
	if d == Forever {
		return Money(math.Inf(1))
	}
	return Money(float64(p) * d.Seconds())
}

// DollarsPerHour returns the rate in dollars per hour.
func (p PenaltyRate) DollarsPerHour() float64 {
	return float64(p) * time.Hour.Seconds()
}

// Parsing -------------------------------------------------------------------

var errEmpty = errors.New("units: empty quantity")

// suffixes must be checked longest-first so "KB/s" does not match "B/s"
// against the wrong prefix value.
var sizeSuffixes = []struct {
	suffix string
	unit   ByteSize
}{
	{"PB", PB}, {"TB", TB}, {"GB", GB}, {"MB", MB}, {"KB", KB}, {"B", Byte},
}

// ParseByteSize parses strings such as "1360GB", "73 GB", "1.5TB" or "512B".
// Unit suffixes are case-insensitive; binary multiples are used.
func ParseByteSize(s string) (ByteSize, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, errEmpty
	}
	upper := strings.ToUpper(s)
	for _, sf := range sizeSuffixes {
		if !strings.HasSuffix(upper, sf.suffix) {
			continue
		}
		num := strings.TrimSpace(upper[:len(upper)-len(sf.suffix)])
		v, err := strconv.ParseFloat(num, 64)
		if err != nil {
			return 0, fmt.Errorf("units: bad size %q: %w", s, err)
		}
		return ByteSize(v) * sf.unit, nil
	}
	return 0, fmt.Errorf("units: size %q has no recognized unit suffix", s)
}

// ParseRate parses strings such as "799KB/s", "25 MB/s" or "1.5GB/s".
func ParseRate(s string) (Rate, error) {
	s = strings.TrimSpace(s)
	upper := strings.ToUpper(s)
	if !strings.HasSuffix(upper, "/S") {
		return 0, fmt.Errorf("units: rate %q must end in /s", s)
	}
	size, err := ParseByteSize(s[:len(s)-2])
	if err != nil {
		return 0, fmt.Errorf("units: bad rate %q: %w", s, err)
	}
	return Rate(size), nil
}

// ParseDuration parses time.ParseDuration syntax extended with day ("d"),
// week ("w" or "wk") and year ("y" or "yr") units, e.g. "12h", "2d", "4wk",
// "3yr", "4wk12h". Units may be chained just as in time.ParseDuration.
func ParseDuration(s string) (time.Duration, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, errEmpty
	}
	// Replace extended units with stdlib-parsable equivalents. Order
	// matters: "wk" before "w", "yr" before "y", "min" before "m".
	replacements := []struct {
		unit   string
		factor float64
		out    string
	}{
		{"yr", Year.Hours(), "h"}, {"y", Year.Hours(), "h"},
		{"wk", Week.Hours(), "h"}, {"w", Week.Hours(), "h"},
		{"d", Day.Hours(), "h"},
		{"min", 1, "m"},
	}
	var out strings.Builder
	rest := s
	for rest != "" {
		num, unit, tail, err := nextDurationComponent(rest)
		if err != nil {
			return 0, fmt.Errorf("units: bad duration %q: %w", s, err)
		}
		rest = tail
		lower := strings.ToLower(unit)
		replaced := false
		for _, rep := range replacements {
			if lower == rep.unit {
				fmt.Fprintf(&out, "%g%s", num*rep.factor, rep.out)
				replaced = true
				break
			}
		}
		if !replaced {
			fmt.Fprintf(&out, "%g%s", num, unit)
		}
	}
	return time.ParseDuration(out.String())
}

// nextDurationComponent splits the leading "<number><unit>" component off a
// duration string, returning the numeric value, the unit token and the tail.
func nextDurationComponent(s string) (num float64, unit, tail string, err error) {
	i := 0
	if i < len(s) && (s[i] == '+' || s[i] == '-') {
		i++
	}
	start := i
	for i < len(s) && (s[i] == '.' || (s[i] >= '0' && s[i] <= '9')) {
		i++
	}
	if i == start {
		return 0, "", "", fmt.Errorf("missing number at %q", s)
	}
	num, err = strconv.ParseFloat(s[:i], 64)
	if err != nil {
		return 0, "", "", err
	}
	start = i
	for i < len(s) && !(s[i] == '.' || s[i] == '+' || s[i] == '-' || (s[i] >= '0' && s[i] <= '9')) {
		i++
	}
	if i == start {
		return 0, "", "", fmt.Errorf("missing unit at %q", s)
	}
	return num, s[start:i], s[i:], nil
}

// FormatDuration renders a duration compactly in the paper's idiom: "12h",
// "2d", "4wk", "4wk12h", "3yr". It picks the largest calendar unit that
// divides the duration exactly, falling back to fractional hours.
func FormatDuration(d time.Duration) string {
	if d == Forever {
		return "forever"
	}
	if d == 0 {
		return "0h"
	}
	neg := ""
	if d < 0 {
		neg, d = "-", -d
	}
	// Sub-hour durations use minutes and seconds (policy windows such as a
	// one-minute mirroring batch).
	if d < time.Minute {
		if d%time.Second == 0 {
			return fmt.Sprintf("%s%ds", neg, d/time.Second)
		}
		return fmt.Sprintf("%s%gs", neg, d.Seconds())
	}
	if d < time.Hour {
		if d%time.Minute == 0 {
			return fmt.Sprintf("%s%dmin", neg, d/time.Minute)
		}
		return fmt.Sprintf("%s%gmin", neg, d.Minutes())
	}
	type unit struct {
		span time.Duration
		name string
	}
	unitsDesc := []unit{
		{Year, "yr"}, {Week, "wk"}, {Day, "d"},
		{time.Hour, "h"}, {time.Minute, "min"}, {time.Second, "s"},
	}
	var parts []string
	rem := d
	for _, u := range unitsDesc {
		if rem >= u.span && rem%u.span == 0 {
			// The remainder is an exact multiple: finish with one unit
			// ("12h", "4wk12h").
			parts = append(parts, fmt.Sprintf("%d%s", rem/u.span, u.name))
			rem = 0
			break
		}
		if n := rem / u.span; n > 0 {
			parts = append(parts, fmt.Sprintf("%d%s", n, u.name))
			rem -= n * u.span
		}
	}
	if rem > 0 {
		parts = append(parts, fmt.Sprintf("%gs", rem.Seconds()))
	}
	return neg + strings.Join(parts, "")
}
