package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestByteSizeConstants(t *testing.T) {
	tests := []struct {
		name string
		got  ByteSize
		want float64
	}{
		{"KB", KB, 1024},
		{"MB", MB, 1024 * 1024},
		{"GB", GB, 1024 * 1024 * 1024},
		{"TB", TB, 1024 * 1024 * 1024 * 1024},
		{"PB", PB, 1024 * 1024 * 1024 * 1024 * 1024},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.got.Bytes() != tt.want {
				t.Errorf("got %v, want %v", tt.got.Bytes(), tt.want)
			}
		})
	}
}

func TestByteSizeString(t *testing.T) {
	tests := []struct {
		in   ByteSize
		want string
	}{
		{0, "0B"},
		{512 * Byte, "512B"},
		{KB, "1.0KB"},
		{1360 * GB, "1.3TB"},
		{100 * GB, "100.0GB"},
		{1.5 * TB, "1.5TB"},
		{-2 * GB, "-2.0GB"},
		{2 * PB, "2.0PB"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("ByteSize(%v).String() = %q, want %q", float64(tt.in), got, tt.want)
		}
	}
}

func TestRateString(t *testing.T) {
	tests := []struct {
		in   Rate
		want string
	}{
		{799 * KBPerSec, "799.0KB/s"},
		{25 * MBPerSec, "25.0MB/s"},
		{0, "0.0B/s"},
		{-MBPerSec, "-1.0MB/s"},
		{3 * GBPerSec, "3.0GB/s"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("Rate.String() = %q, want %q", got, tt.want)
		}
	}
}

func TestRateOver(t *testing.T) {
	got := (10 * MBPerSec).Over(3 * time.Second)
	if want := 30 * MB; got != want {
		t.Errorf("Over = %v, want %v", got, want)
	}
}

func TestDiv(t *testing.T) {
	tests := []struct {
		name string
		b    ByteSize
		r    Rate
		want time.Duration
	}{
		{"simple", 100 * MB, 10 * MBPerSec, 10 * time.Second},
		{"zero rate", GB, 0, Forever},
		{"negative rate", GB, -1, Forever},
		{"zero size", 0, MBPerSec, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Div(tt.b, tt.r); got != tt.want {
				t.Errorf("Div(%v, %v) = %v, want %v", tt.b, tt.r, got, tt.want)
			}
		})
	}
}

func TestDivOverflowClampsToForever(t *testing.T) {
	if got := Div(PB*1e9, Rate(1e-12)); got != Forever {
		t.Errorf("huge transfer should clamp to Forever, got %v", got)
	}
}

func TestRateOf(t *testing.T) {
	if got := RateOf(100*MB, 10*time.Second); got != 10*MBPerSec {
		t.Errorf("RateOf = %v, want 10MB/s", got)
	}
	if got := RateOf(MB, 0); !math.IsInf(float64(got), 1) {
		t.Errorf("RateOf with zero duration = %v, want +Inf", got)
	}
}

func TestCalendarConstants(t *testing.T) {
	if Day != 24*time.Hour {
		t.Errorf("Day = %v", Day)
	}
	if Week != 7*Day {
		t.Errorf("Week = %v", Week)
	}
	if Year != 52*Week {
		t.Errorf("Year = %v", Year)
	}
	// 39 retained 4-week cycles must cover three years (paper Table 3).
	if got := 39 * 4 * Week; got != 3*Year {
		t.Errorf("39 x 4wk = %v, want %v", got, 3*Year)
	}
}

func TestMoneyString(t *testing.T) {
	tests := []struct {
		in   Money
		want string
	}{
		{11_940_000, "$11.94M"},
		{970_000, "$970.0K"},
		{50, "$50.00"},
		{-1_500_000, "-$1.50M"},
		{0, "$0.00"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("Money(%v).String() = %q, want %q", float64(tt.in), got, tt.want)
		}
	}
}

func TestPenaltyRate(t *testing.T) {
	rate := PerHour(50_000)
	if got := rate.Over(2 * time.Hour); math.Abs(float64(got)-100_000) > 1e-6 {
		t.Errorf("2h at $50k/hr = %v, want $100k", got)
	}
	if got := rate.DollarsPerHour(); math.Abs(got-50_000) > 1e-9 {
		t.Errorf("DollarsPerHour = %v", got)
	}
	if got := rate.Over(Forever); !math.IsInf(float64(got), 1) {
		t.Errorf("penalty over Forever = %v, want +Inf", got)
	}
}

func TestParseByteSize(t *testing.T) {
	tests := []struct {
		in      string
		want    ByteSize
		wantErr bool
	}{
		{"1360GB", 1360 * GB, false},
		{"73 GB", 73 * GB, false},
		{"400gb", 400 * GB, false},
		{"1.5TB", 1.5 * TB, false},
		{"512B", 512 * Byte, false},
		{"727KB", 727 * KB, false},
		{"", 0, true},
		{"12", 0, true},
		{"GB", 0, true},
		{"x12GB", 0, true},
	}
	for _, tt := range tests {
		got, err := ParseByteSize(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseByteSize(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if !tt.wantErr && got != tt.want {
			t.Errorf("ParseByteSize(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestParseRate(t *testing.T) {
	tests := []struct {
		in      string
		want    Rate
		wantErr bool
	}{
		{"799KB/s", 799 * KBPerSec, false},
		{"25 MB/s", 25 * MBPerSec, false},
		{"60MB/s", 60 * MBPerSec, false},
		{"1028KB/s", 1028 * KBPerSec, false},
		{"10MB", 0, true},
		{"", 0, true},
	}
	for _, tt := range tests {
		got, err := ParseRate(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseRate(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if !tt.wantErr && got != tt.want {
			t.Errorf("ParseRate(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestParseDuration(t *testing.T) {
	tests := []struct {
		in      string
		want    time.Duration
		wantErr bool
	}{
		{"12h", 12 * time.Hour, false},
		{"2d", 2 * Day, false},
		{"1wk", Week, false},
		{"4wk", 4 * Week, false},
		{"4wk12h", 4*Week + 12*time.Hour, false},
		{"3yr", 3 * Year, false},
		{"1w", Week, false},
		{"1y", Year, false},
		{"48h", 48 * time.Hour, false},
		{"1m", time.Minute, false}, // stdlib minute is preserved
		{"1min", time.Minute, false},
		{"5min", 5 * time.Minute, false},
		{"30s", 30 * time.Second, false},
		{"", 0, true},
		{"abc", 0, true},
		{"12", 0, true},
	}
	for _, tt := range tests {
		got, err := ParseDuration(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseDuration(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if !tt.wantErr && got != tt.want {
			t.Errorf("ParseDuration(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestFormatDuration(t *testing.T) {
	tests := []struct {
		in   time.Duration
		want string
	}{
		{0, "0h"},
		{12 * time.Hour, "12h"},
		{2 * Day, "2d"},
		{Week, "1wk"},
		{4*Week + 12*time.Hour, "4wk12h"},
		{3 * Year, "3yr"},
		{Forever, "forever"},
		{-12 * time.Hour, "-12h"},
		{90 * time.Minute, "1h30min"},
		{time.Minute, "1min"},
		{30 * time.Second, "30s"},
		{90 * time.Second, "1.5min"},
		{-30 * time.Second, "-30s"},
		{45 * time.Minute, "45min"},
	}
	for _, tt := range tests {
		if got := FormatDuration(tt.in); got != tt.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

// Property: FormatDuration output always reparses to the same duration for
// whole-hour inputs (the policy-window domain the framework uses).
func TestFormatParseRoundTrip(t *testing.T) {
	f := func(hours uint16) bool {
		d := time.Duration(hours) * time.Hour
		s := FormatDuration(d)
		got, err := ParseDuration(s)
		if err != nil {
			return false
		}
		return got == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Div and Over are inverse operations within float tolerance.
func TestDivOverInverse(t *testing.T) {
	f := func(mb uint16, mbps uint8) bool {
		if mbps == 0 {
			return true
		}
		size := ByteSize(mb) * MB
		rate := Rate(mbps) * MBPerSec
		d := Div(size, rate)
		back := rate.Over(d)
		return math.Abs(float64(back-size)) <= 1 // within one byte
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ByteSize parsing of formatted values is close to identity (the
// formatter rounds to one decimal place).
func TestByteSizeStringParseApprox(t *testing.T) {
	f := func(gb uint16) bool {
		size := ByteSize(gb) * GB
		parsed, err := ParseByteSize(size.String())
		if err != nil {
			return false
		}
		diff := math.Abs(float64(parsed - size))
		return diff <= 0.05*math.Max(float64(size), 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMoneyStringSpecials(t *testing.T) {
	if got := Money(math.Inf(1)).String(); got != "unbounded" {
		t.Errorf("inf money = %q", got)
	}
	if got := Money(math.Inf(-1)).String(); got != "-unbounded" {
		t.Errorf("-inf money = %q", got)
	}
	if got := Money(math.NaN()).String(); got != "NaN" {
		t.Errorf("nan money = %q", got)
	}
}
