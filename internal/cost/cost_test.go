package cost

import (
	"math"
	"strings"
	"testing"
	"time"

	"stordep/internal/device"
	"stordep/internal/units"
)

func TestRequirementsValidate(t *testing.T) {
	req := CaseStudyRequirements()
	if err := req.Validate(); err != nil {
		t.Errorf("case study requirements invalid: %v", err)
	}
	bad := Requirements{UnavailPenaltyRate: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative rate accepted")
	}
	bad = Requirements{LossPenaltyRate: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative loss rate accepted")
	}
}

func TestCaseStudyRates(t *testing.T) {
	req := CaseStudyRequirements()
	if got := req.UnavailPenaltyRate.DollarsPerHour(); math.Abs(got-50_000) > 1e-6 {
		t.Errorf("unavail rate = %v", got)
	}
	if got := req.LossPenaltyRate.DollarsPerHour(); math.Abs(got-50_000) > 1e-6 {
		t.Errorf("loss rate = %v", got)
	}
}

// TestAssessTable6Penalties checks the penalty arithmetic against the
// paper's baseline array failure: RT 2.4h and DL 217h at $50k/hr each give
// $10.97M of penalties (Table 7 "Baseline" row).
func TestAssessTable6Penalties(t *testing.T) {
	req := CaseStudyRequirements()
	p := Assess(req, time.Duration(2.4*float64(time.Hour)), 217*time.Hour)
	if got := float64(p.Outage); math.Abs(got-120_000) > 1 {
		t.Errorf("outage penalty = %v, want $120k", p.Outage)
	}
	if got := float64(p.Loss); math.Abs(got-10_850_000) > 1 {
		t.Errorf("loss penalty = %v, want $10.85M", p.Loss)
	}
	if got := float64(p.Total()); math.Abs(got-10_970_000) > 1 {
		t.Errorf("total penalties = %v, want $10.97M", p.Total())
	}
}

func TestAssessUnrecoverable(t *testing.T) {
	req := CaseStudyRequirements()
	p := Assess(req, units.Forever, units.Forever)
	if !math.IsInf(float64(p.Outage), 1) || !math.IsInf(float64(p.Loss), 1) {
		t.Errorf("unrecoverable penalties = %+v, want +Inf", p)
	}
	if !math.IsInf(float64(p.Total()), 1) {
		t.Error("total should be +Inf")
	}
}

func buildDevices(t *testing.T) []*device.Device {
	t.Helper()
	arr, err := device.New(device.MidrangeArray())
	if err != nil {
		t.Fatal(err)
	}
	arr.AddDemand(device.Demand{Technique: "foreground", Capacity: 1360 * units.GB})
	arr.AddDemand(device.Demand{Technique: "split-mirror", Capacity: 5 * 1360 * units.GB})
	vault, err := device.New(device.TapeVault())
	if err != nil {
		t.Fatal(err)
	}
	vault.AddDemand(device.Demand{Technique: "vaulting", Capacity: 39 * 1360 * units.GB})
	return []*device.Device{arr, vault}
}

func TestCollectOutlays(t *testing.T) {
	out := CollectOutlays(buildDevices(t))
	if len(out.Items) != 3 {
		t.Fatalf("items = %d, want 3", len(out.Items))
	}
	// Array foreground: (123297 + 2720x17.2) x2 for the dedicated spare.
	wantFG := 2 * (123297 + 2*1360*17.2)
	var fg units.Money
	for _, it := range out.Items {
		if it.Technique == "foreground" {
			fg += it.Total()
		}
	}
	if math.Abs(float64(fg)-wantFG) > 1 {
		t.Errorf("foreground outlay = %v, want %v", fg, wantFG)
	}
	// Vault has no spare.
	for _, it := range out.Items {
		if it.Device == device.NameTapeVault && it.Spare != 0 {
			t.Errorf("vault spare = %v, want 0", it.Spare)
		}
	}
}

func TestOutlaysByTechnique(t *testing.T) {
	out := CollectOutlays(buildDevices(t))
	m, names := out.ByTechnique()
	if len(names) != 3 {
		t.Fatalf("techniques = %v", names)
	}
	// Sorted by descending outlay: split-mirror carries five mirrors and
	// dominates.
	if names[0] != "split-mirror" {
		t.Errorf("largest outlay = %q, want split-mirror", names[0])
	}
	var sum units.Money
	for _, v := range m {
		sum += v
	}
	if math.Abs(float64(sum-out.Total())) > 1e-6 {
		t.Errorf("ByTechnique sum %v != Total %v", sum, out.Total())
	}
}

func TestSummary(t *testing.T) {
	out := CollectOutlays(buildDevices(t))
	req := CaseStudyRequirements()
	s := Summary{Outlays: out, Penalties: Assess(req, 2*time.Hour, 10*time.Hour)}
	wantPen := units.Money(12 * 50_000)
	if math.Abs(float64(s.Penalties.Total()-wantPen)) > 1 {
		t.Errorf("penalties = %v, want %v", s.Penalties.Total(), wantPen)
	}
	if s.Total() != s.Outlays.Total()+s.Penalties.Total() {
		t.Error("Total mismatch")
	}
	str := s.String()
	if !strings.Contains(str, "outlays") || !strings.Contains(str, "penalties") {
		t.Errorf("String() = %q", str)
	}
}

func TestEmptyOutlays(t *testing.T) {
	var o Outlays
	if o.Total() != 0 {
		t.Error("empty outlays should be zero")
	}
	m, names := o.ByTechnique()
	if len(m) != 0 || len(names) != 0 {
		t.Error("empty outlays should have no techniques")
	}
}

func TestOutlaysByDevice(t *testing.T) {
	out := CollectOutlays(buildDevices(t))
	m, names := out.ByDevice()
	if len(names) != 2 {
		t.Fatalf("devices = %v", names)
	}
	if names[0] != device.NameDiskArray {
		t.Errorf("largest spender = %q", names[0])
	}
	var sum units.Money
	for _, v := range m {
		sum += v
	}
	if math.Abs(float64(sum-out.Total())) > 1e-6 {
		t.Errorf("ByDevice sum %v != Total %v", sum, out.Total())
	}
}
