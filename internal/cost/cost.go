// Package cost implements the overall-cost model of §3.3.5: annualized
// outlays (allocated per data protection technique by each device model)
// plus penalties for data outage and recent data loss under an imposed
// failure scenario.
package cost

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"stordep/internal/device"
	"stordep/internal/units"
)

// Requirements are the business-requirement inputs of §3.1.2.
type Requirements struct {
	// UnavailPenaltyRate accrues while data is unavailable (per unit of
	// recovery time).
	UnavailPenaltyRate units.PenaltyRate
	// LossPenaltyRate accrues per unit of recent updates lost.
	LossPenaltyRate units.PenaltyRate
}

// ErrNegativeRate is returned for negative penalty rates.
var ErrNegativeRate = errors.New("cost: penalty rates must be non-negative")

// Validate checks the requirements.
func (r *Requirements) Validate() error {
	if r.UnavailPenaltyRate < 0 || r.LossPenaltyRate < 0 {
		return ErrNegativeRate
	}
	return nil
}

// CaseStudyRequirements returns the paper's case-study penalty rates:
// $50,000 per hour for both unavailability and loss.
func CaseStudyRequirements() Requirements {
	return Requirements{
		UnavailPenaltyRate: units.PerHour(50_000),
		LossPenaltyRate:    units.PerHour(50_000),
	}
}

// OutlayItem is one device's outlay share for one technique.
type OutlayItem struct {
	Device    string
	Technique string
	Base      units.Money
	Spare     units.Money
}

// Total returns base plus spare cost.
func (o OutlayItem) Total() units.Money { return o.Base + o.Spare }

// Outlays aggregates annualized outlays across a design's devices.
type Outlays struct {
	// Items lists every device/technique outlay share.
	Items []OutlayItem
}

// CollectOutlays gathers the per-technique outlay allocations from every
// device (the device models own the allocation rules; see
// device.Device.Outlays).
func CollectOutlays(devices []*device.Device) Outlays {
	var out Outlays
	for _, d := range devices {
		for _, row := range d.Outlays() {
			out.Items = append(out.Items, OutlayItem{
				Device:    d.Name(),
				Technique: row.Technique,
				Base:      row.Base,
				Spare:     row.SpareCost,
			})
		}
	}
	return out
}

// Total returns the summed annual outlay.
func (o Outlays) Total() units.Money {
	var sum units.Money
	for _, it := range o.Items {
		sum += it.Total()
	}
	return sum
}

// ByTechnique returns technique -> total outlay, for the Figure 5
// breakdown, along with the technique names sorted by descending outlay.
func (o Outlays) ByTechnique() (map[string]units.Money, []string) {
	m := make(map[string]units.Money)
	for _, it := range o.Items {
		m[it.Technique] += it.Total()
	}
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if m[names[i]] != m[names[j]] {
			return m[names[i]] > m[names[j]]
		}
		return names[i] < names[j]
	})
	return m, names
}

// ByDevice returns device -> total outlay, with device names sorted by
// descending outlay — where the money physically goes, complementing the
// per-technique allocation of Figure 5.
func (o Outlays) ByDevice() (map[string]units.Money, []string) {
	m := make(map[string]units.Money)
	for _, it := range o.Items {
		m[it.Device] += it.Total()
	}
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if m[names[i]] != m[names[j]] {
			return m[names[i]] > m[names[j]]
		}
		return names[i] < names[j]
	})
	return m, names
}

// Penalties are the failure-scenario penalties of §3.3.5.
type Penalties struct {
	// Outage is the recovery-time penalty: worst-case RT x unavailability
	// rate.
	Outage units.Money
	// Loss is the recent-data-loss penalty: worst-case loss x loss rate.
	Loss units.Money
}

// Total returns outage plus loss penalties.
func (p Penalties) Total() units.Money { return p.Outage + p.Loss }

// Assess computes the penalties for a failure outcome. A recovery time or
// loss of units.Forever (unrecoverable design) yields infinite penalties,
// which total-cost comparisons propagate naturally.
func Assess(req Requirements, recoveryTime, dataLoss time.Duration) Penalties {
	return Penalties{
		Outage: req.UnavailPenaltyRate.Over(recoveryTime),
		Loss:   req.LossPenaltyRate.Over(dataLoss),
	}
}

// Summary is the overall cost of a design under one failure scenario.
type Summary struct {
	Outlays   Outlays
	Penalties Penalties
}

// Total returns outlays plus penalties — the "overall cost" output metric.
func (s Summary) Total() units.Money {
	return s.Outlays.Total() + s.Penalties.Total()
}

// String renders the summary in the paper's idiom.
func (s Summary) String() string {
	return fmt.Sprintf("outlays %v + penalties %v (outage %v, loss %v) = %v",
		s.Outlays.Total(), s.Penalties.Total(), s.Penalties.Outage, s.Penalties.Loss, s.Total())
}
