// Package parallel is the shared worker-pool substrate behind the
// framework's three hot loops: what-if design-space evaluation
// (whatif.Evaluate), optimizer candidate scoring (opt.Tune /
// opt.Exhaustive) and chaos campaigns (chaos.Campaign.Run).
//
// The pool preserves the two properties the serial loops had, so turning
// parallelism on never changes observable results:
//
//   - input order: results are returned indexed exactly as the inputs
//     were given, regardless of completion order;
//   - first-error semantics: when calls fail, the error of the
//     lowest-index failing call is returned — the same error a serial
//     loop that stops at the first failure would have produced
//     (provided the work function is deterministic per index).
//
// Work is handed out by an atomic counter rather than a channel, so the
// per-item dispatch cost stays tens of nanoseconds; with workers == 1 or
// a single item the pool degenerates to an inline loop with no
// synchronization at all.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count setting: n > 0 is used as given; zero
// and negative values mean runtime.NumCPU(). Command-line frontends
// reject negatives before they get here; the library treats them as the
// default so a zero value is always safe.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines
// (Workers-resolved) and returns the n results in input order. If any
// calls fail, Map returns a nil slice and the error of the lowest-index
// failing call; indices beyond the earliest known failure may be skipped.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return []T{}, nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	out := make([]T, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	var next atomic.Int64
	var firstErr atomic.Int64 // lowest failing index seen so far
	firstErr.Store(int64(n))  // sentinel: no error
	errs := make([]error, n)

	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				// Indices are handed out in increasing order, so any
				// index above the earliest known failure cannot affect
				// the returned error — skip the work.
				if int64(i) > firstErr.Load() {
					continue
				}
				v, err := fn(i)
				if err != nil {
					errs[i] = err
					for {
						cur := firstErr.Load()
						if int64(i) >= cur || firstErr.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()

	if e := firstErr.Load(); e < int64(n) {
		return nil, errs[e]
	}
	return out, nil
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// with Map's first-error semantics, for loops that write their own
// outputs instead of returning values.
func ForEach(workers, n int, fn func(i int) error) error {
	_, err := Map(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
