package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Errorf("Workers(4) = %d", got)
	}
	if got := Workers(0); got != runtime.NumCPU() {
		t.Errorf("Workers(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(-3); got != runtime.NumCPU() {
		t.Errorf("Workers(-3) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
}

// TestMapOrder: results come back in input order whatever the worker
// count, including counts far above the item count.
func TestMapOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		out, err := Map(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || out == nil || len(out) != 0 {
		t.Errorf("Map(_, 0) = %v, %v; want empty slice", out, err)
	}
}

// TestMapFirstError: with several failing indices the lowest one's error
// is returned — identical to a serial loop stopping at the first failure.
func TestMapFirstError(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		_, err := Map(workers, 200, func(i int) (int, error) {
			if i == 7 || i == 50 || i == 199 {
				return 0, fmt.Errorf("fail at %d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "fail at 7" {
			t.Errorf("workers=%d: err = %v, want fail at 7", workers, err)
		}
	}
}

// TestMapErrorSkips: once an early index fails, far-later indices may be
// skipped, but everything below the failure still runs (it could hold an
// even earlier failure).
func TestMapErrorSkips(t *testing.T) {
	var ran atomic.Int64
	_, err := Map(4, 1000, func(i int) (int, error) {
		ran.Add(1)
		if i == 3 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("no error")
	}
	if n := ran.Load(); n == 1000 {
		t.Logf("all indices ran despite early error (legal, but the skip path saved nothing)")
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(8, 1000, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := sum.Load(); got != 999*1000/2 {
		t.Errorf("sum = %d", got)
	}
	sentinel := errors.New("nope")
	if err := ForEach(8, 10, func(i int) error {
		if i >= 2 {
			return sentinel
		}
		return nil
	}); !errors.Is(err, sentinel) {
		t.Errorf("err = %v", err)
	}
}

// TestMapDeterministicError: the returned error is stable across repeats
// and worker counts even when many indices fail.
func TestMapDeterministicError(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		for _, workers := range []int{2, 5, 16} {
			_, err := Map(workers, 64, func(i int) (int, error) {
				if i%2 == 1 {
					return 0, fmt.Errorf("odd %d", i)
				}
				return i, nil
			})
			if err == nil || err.Error() != "odd 1" {
				t.Fatalf("trial %d workers %d: err = %v", trial, workers, err)
			}
		}
	}
}

func BenchmarkMapDispatch(b *testing.B) {
	// Dispatch overhead for trivially cheap work items.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Map(4, 256, func(i int) (int, error) { return i, nil }); err != nil {
			b.Fatal(err)
		}
	}
}
