package parallel

import (
	"sync"
	"sync/atomic"
)

// Reduce streams fn over [0, n) and folds the results into per-worker
// accumulators, so an aggregate over an arbitrarily large index space
// costs O(workers) memory instead of Map's O(n) result slice.
//
// Each of the at most workers goroutines (Workers-resolved) owns one
// accumulator created by acc; fold(a, i) incorporates index i and returns
// the updated accumulator. When the space is drained the per-worker
// accumulators are merged left-to-right in worker-index order. Work is
// handed out by the same atomic counter as Map, so which indices land in
// which accumulator is scheduling-dependent — the overall result is
// deterministic exactly when merge is insensitive to how the index space
// was partitioned. Aggregations that tag values with their index satisfy
// this naturally: an argmin that breaks ties toward the lowest index
// returns the same winner for every partition, because each worker sees
// its indices in increasing order and merge re-applies the same rule.
//
// Errors keep Map's first-error semantics: the error of the lowest-index
// failing call is returned (with a zero accumulator), and indices beyond
// the earliest known failure may be skipped.
func Reduce[A any](workers, n int, acc func() A, fold func(a A, i int) (A, error), merge func(a, b A) A) (A, error) {
	if n <= 0 {
		return acc(), nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		a := acc()
		for i := 0; i < n; i++ {
			var err error
			if a, err = fold(a, i); err != nil {
				var zero A
				return zero, err
			}
		}
		return a, nil
	}

	var next atomic.Int64
	var firstErr atomic.Int64 // lowest failing index seen so far
	firstErr.Store(int64(n))  // sentinel: no error
	var errMu sync.Mutex      // guards errVal; taken only on the error path
	var errVal error          // error of the firstErr index
	accs := make([]A, w)

	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			a := acc()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					break
				}
				// Indices are handed out in increasing order, so any
				// index above the earliest known failure cannot affect
				// the returned error — skip the work.
				if int64(i) > firstErr.Load() {
					continue
				}
				var err error
				if a, err = fold(a, i); err != nil {
					errMu.Lock()
					if int64(i) < firstErr.Load() {
						firstErr.Store(int64(i))
						errVal = err
					}
					errMu.Unlock()
				}
			}
			accs[g] = a
		}(g)
	}
	wg.Wait()

	if firstErr.Load() < int64(n) {
		var zero A
		return zero, errVal
	}
	out := accs[0]
	for _, a := range accs[1:] {
		out = merge(out, a)
	}
	return out, nil
}

// MapReduce is Reduce with the per-index computation separated from the
// fold: fn(i) produces a value, fold incorporates it into the
// accumulator. Convenient when the expensive step returns a result the
// aggregation merely inspects.
func MapReduce[T, A any](workers, n int, fn func(i int) (T, error), acc func() A, fold func(a A, i int, v T) A, merge func(a, b A) A) (A, error) {
	return Reduce(workers, n, acc, func(a A, i int) (A, error) {
		v, err := fn(i)
		if err != nil {
			return a, err
		}
		return fold(a, i, v), nil
	}, merge)
}
