package parallel

import (
	"errors"
	"fmt"
	"testing"
)

// argmin is the canonical partition-insensitive accumulator: lowest
// value wins, ties break to the lowest index.
type argmin struct {
	val float64
	idx int
}

func newArgmin() argmin { return argmin{idx: -1} }

func foldArgmin(a argmin, i int, v float64) argmin {
	if a.idx < 0 || v < a.val || (v == a.val && i < a.idx) {
		return argmin{val: v, idx: i}
	}
	return a
}

func mergeArgmin(a, b argmin) argmin {
	if b.idx < 0 {
		return a
	}
	if a.idx < 0 || b.val < a.val || (b.val == a.val && b.idx < a.idx) {
		return b
	}
	return a
}

// TestReduceArgminDeterminism: the argmin of a value set with duplicate
// minima is identical for every worker count — ties to the lowest index.
func TestReduceArgminDeterminism(t *testing.T) {
	const n = 1000
	val := func(i int) float64 { return float64((i*7919 + 13) % 97) } // min 0 hit repeatedly
	want, err := Reduce(1, n,
		newArgmin,
		func(a argmin, i int) (argmin, error) { return foldArgmin(a, i, val(i)), nil },
		mergeArgmin)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, 8, 33} {
		got, err := Reduce(workers, n,
			newArgmin,
			func(a argmin, i int) (argmin, error) { return foldArgmin(a, i, val(i)), nil },
			mergeArgmin)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("workers=%d: argmin = %+v, want %+v", workers, got, want)
		}
	}
}

// TestReduceSum: a commutative fold (sum) matches the serial total at
// every worker count.
func TestReduceSum(t *testing.T) {
	const n = 512
	want := n * (n - 1) / 2
	for _, workers := range []int{1, 3, 16} {
		got, err := Reduce(workers, n,
			func() int { return 0 },
			func(a, i int) (int, error) { return a + i, nil },
			func(a, b int) int { return a + b })
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("workers=%d: sum = %d, want %d", workers, got, want)
		}
	}
}

// TestReduceFirstError: the lowest-index failure is returned, matching
// Map's serial first-error semantics.
func TestReduceFirstError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Reduce(workers, 100,
			func() int { return 0 },
			func(a, i int) (int, error) {
				if i >= 40 {
					return a, fmt.Errorf("fail at %d", i)
				}
				return a + 1, nil
			},
			func(a, b int) int { return a + b })
		if err == nil || err.Error() != "fail at 40" {
			t.Errorf("workers=%d: err = %v, want fail at 40", workers, err)
		}
	}
}

// TestReduceConstantMemory: allocations are independent of the index
// space — the streaming contract that lets an unbounded exhaustive
// search run without materializing O(n) state.
func TestReduceConstantMemory(t *testing.T) {
	run := func(n int) float64 {
		return testing.AllocsPerRun(3, func() {
			got, err := Reduce(4, n,
				func() int { return 0 },
				func(a, i int) (int, error) { return a + i, nil },
				func(a, b int) int { return a + b })
			if err != nil || got != n*(n-1)/2 {
				t.Fatalf("n=%d: sum = %d, %v", n, got, err)
			}
		})
	}
	small, large := run(1<<10), run(1<<17)
	if large > small+8 {
		t.Errorf("allocs grew with n: %.0f at 2^10 vs %.0f at 2^17", small, large)
	}
}

// TestReduceEmpty: an empty index space returns the fresh accumulator.
func TestReduceEmpty(t *testing.T) {
	got, err := Reduce(4, 0,
		func() int { return 42 },
		func(a, i int) (int, error) { return 0, errors.New("never") },
		func(a, b int) int { return 0 })
	if err != nil || got != 42 {
		t.Errorf("empty reduce = %d, %v; want 42, nil", got, err)
	}
}

// TestMapReduce: the map/fold split composes to the same aggregate.
func TestMapReduce(t *testing.T) {
	const n = 257
	for _, workers := range []int{1, 5} {
		got, err := MapReduce(workers, n,
			func(i int) (float64, error) { return float64(i % 17), nil },
			newArgmin,
			foldArgmin,
			mergeArgmin)
		if err != nil {
			t.Fatal(err)
		}
		if got.idx != 0 || got.val != 0 {
			t.Errorf("workers=%d: argmin = %+v, want idx 0", workers, got)
		}
	}
}
