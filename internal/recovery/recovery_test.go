package recovery

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"stordep/internal/hierarchy"
	"stordep/internal/units"
)

func TestStepDuration(t *testing.T) {
	tests := []struct {
		name string
		step Step
		want time.Duration
	}{
		{"fixed only", Step{SerFix: time.Minute}, time.Minute},
		{"transfer only", Step{Size: 600 * units.MB, Bandwidth: 10 * units.MBPerSec}, time.Minute},
		{"fixed plus transfer", Step{SerFix: 30 * time.Second, Size: 300 * units.MB, Bandwidth: 10 * units.MBPerSec}, time.Minute},
		{"no data no time", Step{}, 0},
		{"impossible transfer", Step{Size: units.GB}, units.Forever},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.step.Duration(); got != tt.want {
				t.Errorf("Duration() = %v, want %v", got, tt.want)
			}
		})
	}
}

// TestTimeFigure4 models the paper's Figure 4 site-disaster path: tape
// shipment from the vault (24h transit), tape load at the recovery site
// library (36s), transfer to the array whose shared-facility provisioning
// (9h) overlaps the shipment. RT = max(24h, 9h) + 36s + transfer.
func TestTimeFigure4(t *testing.T) {
	xferBW := 240 * units.MBPerSec
	steps := []Step{
		{Name: "vault -> site", SerFix: 24 * time.Hour},
		{
			Name:      "tape -> array",
			ParFix:    9 * time.Hour,
			SerFix:    36 * time.Second,
			Size:      1360 * units.GB,
			Bandwidth: xferBW,
		},
	}
	got := Time(steps)
	want := 24*time.Hour + 36*time.Second + units.Div(1360*units.GB, xferBW)
	if got != want {
		t.Errorf("Time = %v, want %v", got, want)
	}
	// The 9h provisioning must be hidden by the 24h shipment.
	if got >= 33*time.Hour {
		t.Error("provisioning was serialized instead of overlapped")
	}
}

func TestTimeParFixDominates(t *testing.T) {
	// When provisioning exceeds upstream readiness, it gates the start.
	steps := []Step{
		{Name: "ship", SerFix: time.Hour},
		{Name: "restore", ParFix: 9 * time.Hour, Size: 36 * units.GB, Bandwidth: units.GBPerSec},
	}
	want := 9*time.Hour + 36*time.Second
	if got := Time(steps); got != want {
		t.Errorf("Time = %v, want %v", got, want)
	}
}

func TestTimeEmptyAndForever(t *testing.T) {
	if got := Time(nil); got != 0 {
		t.Errorf("Time(nil) = %v", got)
	}
	steps := []Step{{Size: units.GB}} // no bandwidth
	if got := Time(steps); got != units.Forever {
		t.Errorf("Time(impossible) = %v, want Forever", got)
	}
}

func baselineChain() hierarchy.Chain {
	return hierarchy.Chain{
		{Name: "split-mirror", Policy: hierarchy.Policy{
			Primary: hierarchy.WindowSet{AccW: 12 * time.Hour, Rep: hierarchy.RepFull},
			RetCnt:  4, RetW: 2 * units.Day, CopyRep: hierarchy.RepFull,
		}},
		{Name: "tape-backup", Policy: hierarchy.Policy{
			Primary: hierarchy.WindowSet{AccW: units.Week, PropW: 48 * time.Hour, HoldW: time.Hour, Rep: hierarchy.RepFull},
			RetCnt:  4, RetW: 4 * units.Week, CopyRep: hierarchy.RepFull,
		}},
		{Name: "remote-vault", Policy: hierarchy.Policy{
			Primary: hierarchy.WindowSet{AccW: 4 * units.Week, PropW: 24 * time.Hour, HoldW: 4*units.Week + 12*time.Hour, Rep: hierarchy.RepFull},
			RetCnt:  39, RetW: 3 * units.Year, CopyRep: hierarchy.RepFull,
		}},
	}
}

func TestSelectSourceObjectFailure(t *testing.T) {
	// All levels survive an object corruption; the 24h-old target is
	// covered by the split mirrors with a 12h worst-case loss (Table 6).
	c := baselineChain()
	got, err := SelectSource(c, []int{1, 2, 3}, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if got.Level != 1 || got.Loss != 12*time.Hour {
		t.Errorf("SelectSource = %+v, want level 1, loss 12h", got)
	}
}

func TestSelectSourceArrayFailure(t *testing.T) {
	// The array failure destroys the mirrors; tape backup serves with
	// 217h worst-case loss (Table 6).
	c := baselineChain()
	got, err := SelectSource(c, []int{2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Level != 2 || got.Loss != 217*time.Hour {
		t.Errorf("SelectSource = %+v, want level 2, loss 217h", got)
	}
}

func TestSelectSourceSiteFailure(t *testing.T) {
	// Only the vault survives: 1429h worst-case loss (Table 6).
	c := baselineChain()
	got, err := SelectSource(c, []int{3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Level != 3 || got.Loss != 1429*time.Hour {
		t.Errorf("SelectSource = %+v, want level 3, loss 1429h", got)
	}
}

func TestSelectSourceUnrecoverable(t *testing.T) {
	c := baselineChain()
	// A ten-year-old target predates every level's retention.
	if _, err := SelectSource(c, []int{1, 2, 3}, 10*units.Year); !errors.Is(err, ErrUnrecoverable) {
		t.Errorf("err = %v, want ErrUnrecoverable", err)
	}
	// No survivors at all.
	if _, err := SelectSource(c, nil, 0); !errors.Is(err, ErrUnrecoverable) {
		t.Errorf("err = %v, want ErrUnrecoverable", err)
	}
	// Out-of-range survivor indices are ignored.
	if _, err := SelectSource(c, []int{0, 7}, 0); !errors.Is(err, ErrUnrecoverable) {
		t.Errorf("err = %v, want ErrUnrecoverable", err)
	}
}

func TestSelectSourcePrefersNearerOnTie(t *testing.T) {
	// Two identical levels: equal loss, pick the nearer one (faster
	// recovery path).
	pol := hierarchy.Policy{
		Primary: hierarchy.WindowSet{AccW: time.Hour, Rep: hierarchy.RepFull},
		RetCnt:  10, RetW: units.Day, CopyRep: hierarchy.RepFull,
	}
	c := hierarchy.Chain{{Name: "a", Policy: pol}, {Name: "b", Policy: pol}}
	got, err := SelectSource(c, []int{2, 1}, 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if got.Level != 1 {
		t.Errorf("tie broken toward level %d, want 1", got.Level)
	}
}

func TestCandidates(t *testing.T) {
	c := baselineChain()
	cands := Candidates(c, []int{1, 2, 3}, 24*time.Hour)
	if len(cands) != 3 {
		t.Fatalf("candidates = %+v, want 3", cands)
	}
	// Deeper levels lose more for a covered/too-recent target.
	if !(cands[0].Loss <= cands[1].Loss && cands[1].Loss <= cands[2].Loss) {
		t.Errorf("losses not monotone: %+v", cands)
	}
	// A target too old for the mirrors drops level 1.
	cands = Candidates(c, []int{1, 2, 3}, units.Week)
	for _, cd := range cands {
		if cd.Level == 1 {
			t.Errorf("split mirror cannot serve a week-old target: %+v", cands)
		}
	}
}

func TestPlan(t *testing.T) {
	p := &Plan{
		SourceLevel: 2,
		SourceName:  "tape-backup",
		Loss:        217 * time.Hour,
		Steps: []Step{
			{Name: "tape -> array", ParFix: 72 * time.Second, SerFix: 36 * time.Second,
				Size: 1360 * units.GB, Bandwidth: 231 * units.MBPerSec},
		},
	}
	rt := p.Time()
	// 72s parFix + 36s load + ~1.68h transfer.
	if rt < 90*time.Minute || rt > 2*time.Hour {
		t.Errorf("plan time = %v, want ~1.7h", rt)
	}
	s := p.String()
	if !strings.Contains(s, "tape-backup") || !strings.Contains(s, "tape -> array") {
		t.Errorf("Plan.String() = %q", s)
	}
}

// Property: recovery time is monotone in transfer size and never below
// the sum of fixed components.
func TestTimeMonotoneProperty(t *testing.T) {
	f := func(gb1, gb2 uint16, parMin, serMin uint8) bool {
		lo, hi := units.ByteSize(gb1)*units.GB, units.ByteSize(gb2)*units.GB
		if lo > hi {
			lo, hi = hi, lo
		}
		mk := func(size units.ByteSize) []Step {
			return []Step{
				{SerFix: time.Duration(serMin) * time.Minute},
				{ParFix: time.Duration(parMin) * time.Minute, Size: size, Bandwidth: 100 * units.MBPerSec},
			}
		}
		tLo, tHi := Time(mk(lo)), Time(mk(hi))
		if tLo > tHi {
			return false
		}
		return tHi >= time.Duration(serMin)*time.Minute
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: overlapping (parallel) preparation never lengthens recovery
// beyond fully-serialized execution, and recovery is at least as long as
// its longest single component.
func TestTimeOverlapBoundsProperty(t *testing.T) {
	f := func(parMin, serMin, xferMin uint8) bool {
		par := time.Duration(parMin) * time.Minute
		ser := time.Duration(serMin) * time.Minute
		size := units.Rate(10 * units.MBPerSec).Over(time.Duration(xferMin) * time.Minute)
		steps := []Step{
			{SerFix: ser},
			{ParFix: par, Size: size, Bandwidth: 10 * units.MBPerSec},
		}
		rt := Time(steps)
		serial := par + ser + time.Duration(xferMin)*time.Minute
		longest := par
		if ser > longest {
			longest = ser
		}
		tol := time.Millisecond
		return rt <= serial+tol && rt+tol >= longest
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeNumericalExample(t *testing.T) {
	// The paper's array-failure intuition: transfer dominates. 1360 GB at
	// 231.9 MB/s available tape bandwidth is ~1.67h.
	steps := []Step{{
		ParFix:    72 * time.Second,
		SerFix:    36 * time.Second,
		Size:      1360 * units.GB,
		Bandwidth: 231.9 * units.MBPerSec,
	}}
	got := Time(steps).Hours()
	if math.Abs(got-1.68) > 0.02 {
		t.Errorf("array restore = %.3fh, want ~1.68h", got)
	}
}
