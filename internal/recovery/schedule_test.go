package recovery

import (
	"errors"
	"testing"
	"time"

	"stordep/internal/units"
)

func TestScheduleDiamond(t *testing.T) {
	// catalog <- orders, catalog <- inventory, {orders, inventory} <- web.
	objs := []ObjectRT{
		{Name: "catalog", RT: 2 * time.Hour},
		{Name: "orders", RT: 3 * time.Hour},
		{Name: "inventory", RT: time.Hour},
		{Name: "web", RT: 30 * time.Minute},
	}
	deps := map[string][]string{
		"orders":    {"catalog"},
		"inventory": {"catalog"},
		"web":       {"orders", "inventory"},
	}
	sched, critical, err := Schedule(objs, deps)
	if err != nil {
		t.Fatal(err)
	}
	want := []Scheduled{
		{Name: "catalog", Start: 0, Finish: 2 * time.Hour},
		{Name: "orders", Start: 2 * time.Hour, Finish: 5 * time.Hour},
		{Name: "inventory", Start: 2 * time.Hour, Finish: 3 * time.Hour},
		{Name: "web", Start: 5 * time.Hour, Finish: 5*time.Hour + 30*time.Minute},
	}
	for i, w := range want {
		if sched[i] != w {
			t.Errorf("sched[%d] = %+v, want %+v", i, sched[i], w)
		}
	}
	if critical != 5*time.Hour+30*time.Minute {
		t.Errorf("critical path = %v", critical)
	}
}

func TestScheduleIndependentObjectsParallel(t *testing.T) {
	objs := []ObjectRT{{Name: "a", RT: 4 * time.Hour}, {Name: "b", RT: time.Hour}}
	sched, critical, err := Schedule(objs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sched[0].Start != 0 || sched[1].Start != 0 {
		t.Errorf("independent objects should start immediately: %+v", sched)
	}
	if critical != 4*time.Hour {
		t.Errorf("critical path = %v, want the slowest object", critical)
	}
}

func TestScheduleForeverPropagates(t *testing.T) {
	objs := []ObjectRT{
		{Name: "lost", RT: units.Forever},
		{Name: "fine", RT: time.Hour},
		{Name: "blocked", RT: time.Minute},
	}
	deps := map[string][]string{"blocked": {"lost"}}
	sched, critical, err := Schedule(objs, deps)
	if err != nil {
		t.Fatal(err)
	}
	if sched[0].Finish != units.Forever {
		t.Error("unrecoverable object should finish at Forever")
	}
	if sched[1].Finish != time.Hour {
		t.Error("independent object should be unaffected")
	}
	if sched[2].Start != units.Forever || sched[2].Finish != units.Forever {
		t.Errorf("dependent of unrecoverable object: %+v", sched[2])
	}
	if critical != units.Forever {
		t.Error("critical path should be Forever")
	}
}

func TestScheduleErrors(t *testing.T) {
	if _, _, err := Schedule([]ObjectRT{{Name: "a", RT: time.Hour}},
		map[string][]string{"a": {"ghost"}}); !errors.Is(err, ErrUnknownDependency) {
		t.Errorf("unknown dep: %v", err)
	}
	objs := []ObjectRT{{Name: "a", RT: time.Hour}, {Name: "b", RT: time.Hour}}
	if _, _, err := Schedule(objs,
		map[string][]string{"a": {"b"}, "b": {"a"}}); !errors.Is(err, ErrDependencyCycle) {
		t.Errorf("cycle: %v", err)
	}
	if _, _, err := Schedule([]ObjectRT{{Name: "a", RT: time.Hour}},
		map[string][]string{"a": {"a"}}); !errors.Is(err, ErrDependencyCycle) {
		t.Errorf("self cycle: %v", err)
	}
}

func TestScheduleEmpty(t *testing.T) {
	sched, critical, err := Schedule(nil, nil)
	if err != nil || len(sched) != 0 || critical != 0 {
		t.Errorf("empty schedule: %v %v %v", sched, critical, err)
	}
}
