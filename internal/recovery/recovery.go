// Package recovery implements the worst-case recovery-time and recent
// data-loss models of §3.3.3–3.3.4.
//
// Recovery proceeds along a recovery path: the reverse of the RP
// propagation hierarchy, starting from the level chosen to serve as the
// data source, optionally skipping levels that would only add latency. At
// each hop, preparatory work that needs no data (device reprovisioning,
// resource negotiation) can proceed in parallel with upstream hops, while
// tape loads and the data transfer itself serialize behind data arrival —
// the structure in Figure 4. The recovery time obeys the recursion
//
//	RT_i = max(RT_{i+1}, parFix_i) + serXfer_i + serFix_i
//
// evaluated from the source level down to the primary copy (level 0).
package recovery

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"stordep/internal/hierarchy"
	"stordep/internal/units"
)

// Step is one hop of a recovery path, ordered from the data source toward
// the primary copy.
type Step struct {
	// Name labels the hop in reports, e.g. "vault -> tape-library".
	Name string
	// ParFix is preparatory work overlapping upstream readiness: spare
	// provisioning, reconfiguration, negotiating shared resources.
	ParFix time.Duration
	// SerFix is fixed work that starts only when data arrives: tape load
	// and seek, or a physical shipment's transit time.
	SerFix time.Duration
	// Size is the data transferred on this hop (zero for pure-latency
	// hops such as shipments).
	Size units.ByteSize
	// Bandwidth is the effective transfer rate: the minimum of sender and
	// receiver available bandwidth. Zero with a non-zero Size means the
	// hop cannot move data and the recovery never completes.
	Bandwidth units.Rate
}

// Duration returns the hop's serialized time: serFix + serXfer.
func (s Step) Duration() time.Duration {
	d := s.SerFix
	if s.Size > 0 {
		xfer := units.Div(s.Size, s.Bandwidth)
		if xfer == units.Forever {
			return units.Forever
		}
		d += xfer
	}
	return d
}

// Time applies the RT recursion over steps ordered source-first and
// returns the overall recovery time (RT_0). An impossible transfer yields
// units.Forever.
func Time(steps []Step) time.Duration {
	var rt time.Duration
	for _, s := range steps {
		if s.ParFix > rt {
			rt = s.ParFix
		}
		d := s.Duration()
		if d == units.Forever {
			return units.Forever
		}
		rt += d
	}
	return rt
}

// Plan is a fully-resolved recovery: the chosen source level, the loss it
// implies, and the timed steps to the primary copy.
type Plan struct {
	// SourceLevel is the 1-based hierarchy index serving the recovery
	// (0 when the primary copy itself survives, e.g. object rollback
	// served from level 0 — not used in practice since objects roll back
	// from PiT copies).
	SourceLevel int
	// SourceName is the level's technique name.
	SourceName string
	// Loss is the worst-case recent data loss (§3.3.3).
	Loss time.Duration
	// Steps are the recovery hops, source first.
	Steps []Step
}

// Time returns the plan's overall recovery time.
func (p *Plan) Time() time.Duration { return Time(p.Steps) }

// String renders the plan for reports.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "recover from %s (loss %s):", p.SourceName, units.FormatDuration(p.Loss))
	for _, s := range p.Steps {
		fmt.Fprintf(&b, " [%s]", s.Name)
	}
	return b.String()
}

// ErrUnrecoverable is returned when no surviving level retains an RP
// usable for the requested target: the data object is lost.
var ErrUnrecoverable = errors.New("recovery: no surviving level can serve the recovery target")

// Candidate pairs a hierarchy level with the data loss it would incur
// serving a given recovery target.
type Candidate struct {
	// Level is the 1-based hierarchy index.
	Level int
	// Loss is the worst-case recent data loss if this level serves.
	Loss time.Duration
}

// SelectSource picks the surviving level whose retained RPs most closely
// match the recovery target (§3.3.3): the candidate with the smallest
// worst-case loss, preferring the nearer (faster) level on ties. surviving
// holds the 1-based indices of levels whose devices outlived the failure;
// order does not matter.
//
// If no surviving level retains a usable RP, ErrUnrecoverable is returned:
// the worst-case loss is the entire data object.
func SelectSource(c hierarchy.Chain, surviving []int, targetAge time.Duration) (Candidate, error) {
	best := Candidate{Level: -1}
	for _, j := range surviving {
		if j < 1 || j > len(c) {
			continue
		}
		loss, ok := c.WorstCaseLoss(j, targetAge)
		if !ok {
			continue
		}
		if best.Level == -1 || loss < best.Loss || (loss == best.Loss && j < best.Level) {
			best = Candidate{Level: j, Loss: loss}
		}
	}
	if best.Level == -1 {
		return Candidate{}, fmt.Errorf("%w (target age %s)",
			ErrUnrecoverable, units.FormatDuration(targetAge))
	}
	return best, nil
}

// Candidates returns the loss every surviving level would incur for the
// target, for what-if reporting. Levels that cannot serve are omitted.
func Candidates(c hierarchy.Chain, surviving []int, targetAge time.Duration) []Candidate {
	var out []Candidate
	for _, j := range surviving {
		if j < 1 || j > len(c) {
			continue
		}
		if loss, ok := c.WorstCaseLoss(j, targetAge); ok {
			out = append(out, Candidate{Level: j, Loss: loss})
		}
	}
	return out
}
