package recovery

import (
	"errors"
	"fmt"
	"time"

	"stordep/internal/units"
)

// Dependency-ordered recovery scheduling for multi-object systems
// (§3.1.1): several data objects share one device fleet, and an object's
// recovery may not begin before every object it depends on is back in
// service. Independent objects recover in parallel; dependent ones
// serialize, so the service-level recovery time is the critical path
// through the dependency DAG.

// ObjectRT pairs a named object with its own (dependency-free) worst-case
// recovery time.
type ObjectRT struct {
	Name string
	RT   time.Duration
}

// Scheduled is one object's slot in a dependency-ordered recovery
// schedule.
type Scheduled struct {
	Name string
	// Start is when the object's recovery may begin: the latest Finish
	// over its dependencies (zero for independent objects).
	Start time.Duration
	// Finish is when the object is back in service: Start plus its own
	// recovery time. units.Forever when the object (or any dependency)
	// cannot recover.
	Finish time.Duration
}

// Scheduling errors.
var (
	ErrUnknownDependency = errors.New("recovery: dependency on unknown object")
	ErrDependencyCycle   = errors.New("recovery: object dependencies form a cycle")
)

// Poison returns a copy of the per-object recovery times with the named
// object's recovery voided (units.Forever) — the service-level model of a
// misdirected restore: the object believes itself restored but holds
// another object's data, so everything gated on it is stalled until the
// mistake is noticed and the recovery redone.
func Poison(objects []ObjectRT, name string) []ObjectRT {
	out := append([]ObjectRT(nil), objects...)
	for i := range out {
		if out[i].Name == name {
			out[i].RT = units.Forever
		}
	}
	return out
}

// Schedule computes the dependency-ordered recovery schedule: for every
// object, when its recovery may start (after every dependency finished)
// and when it finishes, plus the service-level recovery time — the
// critical path over the DAG. Objects are returned in input order. An
// unrecoverable object (RT == units.Forever) poisons everything
// downstream of it, and the critical path, with units.Forever.
func Schedule(objects []ObjectRT, deps map[string][]string) ([]Scheduled, time.Duration, error) {
	rts := make(map[string]time.Duration, len(objects))
	for _, o := range objects {
		rts[o.Name] = o.RT
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(objects))
	finish := make(map[string]time.Duration, len(objects))
	start := make(map[string]time.Duration, len(objects))
	var visit func(string) error
	visit = func(n string) error {
		switch color[n] {
		case gray:
			return fmt.Errorf("%w (at %q)", ErrDependencyCycle, n)
		case black:
			return nil
		}
		color[n] = gray
		var gate time.Duration
		for _, d := range deps[n] {
			if _, ok := rts[d]; !ok {
				return fmt.Errorf("%w: %s -> %q", ErrUnknownDependency, n, d)
			}
			if err := visit(d); err != nil {
				return err
			}
			if finish[d] > gate {
				gate = finish[d]
			}
		}
		start[n] = gate
		own := rts[n]
		if own == units.Forever || gate == units.Forever {
			finish[n] = units.Forever
		} else {
			finish[n] = gate + own
		}
		color[n] = black
		return nil
	}
	for _, o := range objects {
		if err := visit(o.Name); err != nil {
			return nil, 0, err
		}
	}
	out := make([]Scheduled, len(objects))
	var critical time.Duration
	for i, o := range objects {
		out[i] = Scheduled{Name: o.Name, Start: start[o.Name], Finish: finish[o.Name]}
		if out[i].Finish > critical {
			critical = out[i].Finish
		}
	}
	return out, critical, nil
}
