package chaos

import (
	"fmt"
	"math"
	"time"

	"stordep/internal/core"
	"stordep/internal/hierarchy"
	"stordep/internal/sim"
	"stordep/internal/units"
)

// Invariant names reported in summaries and repro files.
const (
	// invLossBound: simulated loss never exceeds the analytic worst-case
	// bound (tight for aligned schedules, conservative otherwise, outage-
	// inflated in degraded mode).
	invLossBound = "loss-bound"
	// invCoverage: the healthy simulation recovers at every steady-state
	// instant whose target age the analytic guaranteed range covers.
	invCoverage = "coverage"
	// invAgeMonotone: analytic worst-case loss is monotone non-increasing
	// in recovery-target age, and recoverability never resumes once the
	// target falls off the end of retention.
	invAgeMonotone = "age-monotone"
	// invRTSane: restore volumes and times are non-negative, at least the
	// data object, ordered (min <= mean <= max), and monotone in volume.
	invRTSane = "rt-sane"
	// invDegDominates: degraded mode is never better than normal mode, in
	// the simulator, the analytic model, and full assessments.
	invDegDominates = "degraded-dominates"
	// invCostSum: reported cost totals equal the sum of their components.
	invCostSum = "cost-sum"
)

func invariantNames() []string {
	return []string{invLossBound, invCoverage, invAgeMonotone, invRTSane, invDegDominates, invCostSum}
}

// runResult is one case's battery outcome.
type runResult struct {
	counts     map[string]int
	skipped    int
	violations []Violation
	digest     string
	// Operator-fault detection ledger (correlated campaigns only):
	// faults whose effect surfaced through the loss-bound machinery vs
	// model-soundness escapes that stayed inside the worst-case envelope.
	opDetected int
	opEscapes  int
}

func (r *runResult) check(name string) { r.counts[name]++ }

func (r *runResult) violate(name, format string, args ...any) {
	r.violations = append(r.violations, Violation{Invariant: name, Detail: fmt.Sprintf(format, args...)})
}

// checkCase runs the full invariant battery on one case.
func checkCase(cs *Case) (*runResult, error) {
	res := &runResult{counts: make(map[string]int)}
	for _, name := range invariantNames() {
		res.counts[name] = 0
	}
	sys, err := core.Build(cs.Design)
	if err != nil {
		return nil, err
	}
	chain := sys.Chain()
	healthy, err := sim.New(chain)
	if err != nil {
		return nil, err
	}
	if err := healthy.Run(cs.Horizon); err != nil {
		return nil, err
	}
	degraded := healthy
	if len(cs.Outages) > 0 {
		degraded, err = sim.New(chain)
		if err != nil {
			return nil, err
		}
		for _, o := range cs.Outages {
			if err := degraded.AddOutage(o); err != nil {
				return nil, err
			}
		}
		if err := degraded.Run(cs.Horizon); err != nil {
			return nil, err
		}
	}
	warm := healthy.WarmUp()
	from := ceilMinute(warm)
	to := cs.Horizon - chainMaxCycle(chain)/2
	var samples []time.Duration
	if from < to {
		samples = sampleInstants(degraded, len(chain), from, to)
	}
	surviving := sys.SurvivingLevels(cs.Scenario)

	maxLoss := checkLossBounds(res, cs, chain, healthy, degraded, surviving, samples)
	checkAgeMonotone(res, chain, cs.Outages)
	checkRTSane(res, cs, healthy, surviving, samples, from, to)
	checkDegradedDominates(res, cs, sys, chain, healthy, degraded, surviving, samples)
	checkCostSum(res, cs, sys)

	rpCounts := make([]int, len(chain))
	for j := 1; j <= len(chain); j++ {
		if rps, err := degraded.RPs(j); err == nil {
			rpCounts[j-1] = len(rps)
		}
	}
	res.digest = fmt.Sprintf("design=%s levels=%d outages=%d scope=%s age=%v horizon=%v rps=%v maxloss=%v samples=%d",
		cs.Design.Name, len(chain), len(cs.Outages), cs.Scenario.Scope, cs.Scenario.TargetAge,
		cs.Horizon, rpCounts, maxLoss, len(samples))
	return res, nil
}

func chainMaxCycle(chain hierarchy.Chain) time.Duration {
	var max time.Duration
	for _, lvl := range chain {
		if c := lvl.Policy.CyclePeriod(); c > max {
			max = c
		}
	}
	return max
}

// sampleInstants builds the failure-instant grid: ~96 uniform steady-state
// instants plus retention-expiry and propagation-completion edges (the
// instant an RP becomes available, the nanosecond before — mid-propagation
// — and the same pair around expiry), strided to a bounded count.
func sampleInstants(s *sim.Simulator, levels int, from, to time.Duration) []time.Duration {
	step := quantize((to - from) / 96)
	var out []time.Duration
	for t := from; t <= to; t += step {
		out = append(out, t)
	}
	for j := 1; j <= levels; j++ {
		rps, err := s.RPs(j)
		if err != nil {
			continue
		}
		var edges []time.Duration
		for _, rp := range rps {
			for _, e := range []time.Duration{
				rp.AvailableAt - time.Nanosecond, rp.AvailableAt,
				rp.ExpiresAt - time.Nanosecond, rp.ExpiresAt,
			} {
				if e >= from && e <= to {
					edges = append(edges, e)
				}
			}
		}
		stride := len(edges)/64 + 1
		for i := 0; i < len(edges); i += stride {
			out = append(out, edges[i])
		}
	}
	return out
}

// effectiveOutages converts the simulated fault schedule into analytic
// per-level outage durations. Each outage is inflated by one cycle period
// (an outage shorter than a cycle still suppresses a whole window close,
// and gaps under one cycle between back-to-back outages suppress closes
// too) and, when in-flight transfers abort, by one transfer lag (the RP
// destroyed mid-propagation was up to one lag from landing).
func effectiveOutages(chain hierarchy.Chain, outs []sim.Outage) []hierarchy.LevelOutage {
	return levelTotals(chain, outs, true)
}

// rawOutages sums the schedule per level without inflation, for
// model-vs-model degraded comparisons.
func rawOutages(chain hierarchy.Chain, outs []sim.Outage) []hierarchy.LevelOutage {
	return levelTotals(chain, outs, false)
}

func levelTotals(chain hierarchy.Chain, outs []sim.Outage, inflate bool) []hierarchy.LevelOutage {
	totals := make([]time.Duration, len(chain))
	for _, o := range outs {
		if o.Level < 1 || o.Level > len(chain) {
			continue
		}
		d := o.To - o.From
		if inflate {
			pol := chain[o.Level-1].Policy
			d += pol.CyclePeriod()
			if o.AbortInFlight {
				d += pol.TransferLag()
			}
		}
		totals[o.Level-1] += d
	}
	var list []hierarchy.LevelOutage
	for i, d := range totals {
		if d > 0 {
			list = append(list, hierarchy.LevelOutage{Level: i + 1, Outage: d})
		}
	}
	return list
}

// SkipReason names why an analytic bound comparison is skipped rather
// than checked. SkipNone means the bound holds and the comparison runs.
type SkipReason string

const (
	// SkipNone: the bound is defensible; compare against it.
	SkipNone SkipReason = ""
	// SkipPastRetention: the target age is beyond what the (possibly
	// degraded) chain retains, so there is no bound to defend.
	SkipPastRetention SkipReason = "past-retention"
	// SkipDegradedBuild: the degraded compound chain could not be built
	// for this outage schedule.
	SkipDegradedBuild SkipReason = "degraded-build"
	// SkipDegradedEmptyRange: the degraded guaranteed range collapsed to
	// empty — the outage swallowed the level's whole retention window.
	SkipDegradedEmptyRange SkipReason = "degraded-empty-range"
	// SkipDegradedRetentionGap: the target age sits inside the degraded
	// retention band but at or past the conservative lag, where the
	// degraded model's retention accounting is known-optimistic (see
	// ROADMAP) — scoped out rather than defended.
	SkipDegradedRetentionGap SkipReason = "degraded-retention-gap"
	// SkipDegradedStarvedBelow: a level below j lost its entire guaranteed
	// range to an outage, so every RP there can expire mid-outage and j's
	// captures run dry — the model only delays j's lag by the outage
	// duration and is known-optimistic by up to one of j's cycles (see
	// ROADMAP). Scoped out rather than defended.
	SkipDegradedStarvedBelow SkipReason = "degraded-starved-below"
)

// analyticBoundReason returns the worst-case loss bound the model is
// prepared to defend for level j at the given target age under the fault
// schedule, or the named reason the comparison is skipped.
func analyticBoundReason(chain hierarchy.Chain, outs []sim.Outage, j int, age time.Duration) (time.Duration, SkipReason) {
	if len(outs) == 0 {
		var loss time.Duration
		var ok bool
		if chain.Aligned() {
			loss, ok = chain.WorstCaseLoss(j, age)
		} else {
			loss, ok = chain.ConservativeWorstCaseLoss(j, age)
		}
		if !ok {
			return 0, SkipPastRetention
		}
		return loss, SkipNone
	}
	eff := effectiveOutages(chain, outs)
	deg, err := chain.DegradedCompound(eff)
	if err != nil {
		return 0, SkipDegradedBuild
	}
	rg := deg.GuaranteedRange(j)
	if rg.Empty() {
		return 0, SkipDegradedEmptyRange
	}
	for _, lo := range eff {
		if lo.Level >= j {
			continue
		}
		// An outage that outlives every guaranteed RP at a level below j
		// starves j's captures dry: the model only delays j's lag by the
		// outage duration, not by the capture cycles j loses on top.
		if sub := chain.GuaranteedRange(lo.Level); sub.Empty() || lo.Outage >= sub.Oldest {
			return 0, SkipDegradedStarvedBelow
		}
	}
	lag := deg.ConservativeMaxLag(j)
	if age >= lag {
		if age <= rg.Oldest {
			return 0, SkipDegradedRetentionGap
		}
		return 0, SkipPastRetention
	}
	return lag, SkipNone
}

// analyticBound is the boolean view of analyticBoundReason: ok=false
// means the comparison is skipped for one of the named reasons.
func analyticBound(chain hierarchy.Chain, outs []sim.Outage, j int, age time.Duration) (time.Duration, bool) {
	bound, reason := analyticBoundReason(chain, outs, j, age)
	return bound, reason == SkipNone
}

// checkLossBounds verifies simulated loss against the analytic worst case
// per surviving level, and that the healthy simulation actually recovers
// wherever the healthy guaranteed range covers the target age. Returns
// the maximum simulated loss observed (for the campaign digest).
func checkLossBounds(res *runResult, cs *Case, chain hierarchy.Chain,
	healthy, degraded *sim.Simulator, surviving []int, samples []time.Duration) time.Duration {
	age := cs.Scenario.TargetAge
	var maxLoss time.Duration
	for _, j := range surviving {
		bound, ok := analyticBound(chain, cs.Outages, j, age)
		if !ok {
			res.skipped++
		} else {
			for _, t := range samples {
				loss, _, lok := degraded.Loss([]int{j}, t, age)
				if !lok {
					continue
				}
				if loss > maxLoss {
					maxLoss = loss
				}
				res.check(invLossBound)
				if loss > bound {
					res.violate(invLossBound,
						"level %d at t=%v age=%v: simulated loss %v exceeds analytic bound %v",
						j, t, age, loss, bound)
					break
				}
			}
		}
		rg := chain.GuaranteedRange(j)
		if rg.Empty() || age > rg.Oldest {
			continue
		}
		for _, t := range samples {
			if t < age {
				continue
			}
			res.check(invCoverage)
			if _, _, lok := healthy.Loss([]int{j}, t, age); !lok {
				res.violate(invCoverage,
					"level %d at t=%v: age %v inside guaranteed range %v but simulation cannot recover",
					j, t, age, rg)
				break
			}
		}
	}
	return maxLoss
}

// agesGrid spans the interesting target ages for level j: now, inside the
// too-recent band, both guaranteed-range endpoints, mid-range, and past
// the end of retention.
func agesGrid(chain hierarchy.Chain, j int) []time.Duration {
	rg := chain.GuaranteedRange(j)
	cycle := chain[j-1].Policy.CyclePeriod()
	return []time.Duration{
		0,
		rg.Newest / 2,
		rg.Newest,
		(rg.Newest + rg.Oldest) / 2,
		rg.Oldest,
		rg.Oldest + cycle,
		rg.Oldest + 10*cycle,
	}
}

// checkAgeMonotone verifies the analytic model alone: worst-case loss is
// monotone non-increasing in target age while the target stays
// recoverable, and recoverability never resumes once lost — for both the
// tight and the conservative bounds, healthy and degraded.
func checkAgeMonotone(res *runResult, chain hierarchy.Chain, outs []sim.Outage) {
	chains := []hierarchy.Chain{chain}
	if len(outs) > 0 {
		if deg, err := chain.DegradedCompound(rawOutages(chain, outs)); err == nil {
			chains = append(chains, deg)
		}
	}
	for _, c := range chains {
		for j := 1; j <= len(c); j++ {
			for _, f := range []func(int, time.Duration) (time.Duration, bool){c.WorstCaseLoss, c.ConservativeWorstCaseLoss} {
				prev := units.Forever
				lost := false
				for _, a := range agesGrid(c, j) {
					loss, ok := f(j, a)
					res.check(invAgeMonotone)
					if !ok {
						lost = true
						continue
					}
					if lost {
						res.violate(invAgeMonotone,
							"level %d: age %v recoverable after an older age was not", j, a)
						break
					}
					if loss > prev {
						res.violate(invAgeMonotone,
							"level %d: loss %v at age %v exceeds loss %v at a younger age", j, loss, a, prev)
						break
					}
					prev = loss
				}
			}
		}
	}
}

// checkRTSane verifies restore volumes and times on the healthy
// simulation: every plan moves at least the data object, study aggregates
// are ordered, and time is monotone in volume at fixed bandwidth.
func checkRTSane(res *runResult, cs *Case, healthy *sim.Simulator,
	surviving []int, samples []time.Duration, from, to time.Duration) {
	if len(surviving) == 0 || len(samples) == 0 {
		return
	}
	w := cs.Design.Workload
	age := cs.Scenario.TargetAge
	var minVol, maxVol units.ByteSize
	seen := false
	for _, t := range samples {
		plan, ok := healthy.Plan(surviving, t, age)
		if !ok {
			continue
		}
		vol := plan.Volume(w)
		res.check(invRTSane)
		if vol < w.DataCap {
			res.violate(invRTSane, "restore volume %v at t=%v below data object size %v", vol, t, w.DataCap)
			break
		}
		if plan.FullCut > plan.Serving.Cut {
			res.violate(invRTSane, "restore plan at t=%v: base full cut %v after serving cut %v",
				t, plan.FullCut, plan.Serving.Cut)
			break
		}
		if !seen || vol < minVol {
			minVol = vol
		}
		if vol > maxVol {
			maxVol = vol
		}
		seen = true
	}
	bw := 50 * units.MBPerSec
	fixed := time.Hour
	if seen {
		res.check(invRTSane)
		if units.Div(maxVol, bw) < units.Div(minVol, bw) {
			res.violate(invRTSane, "restore time not monotone in volume: %v < %v",
				units.Div(maxVol, bw), units.Div(minVol, bw))
		}
	}
	step := quantize((to - from) / 48)
	st, err := healthy.RTStudy(w, surviving, age, from, to, step, bw, fixed)
	if err != nil {
		res.violate(invRTSane, "RTStudy failed: %v", err)
		return
	}
	if st.Samples-st.Unrecoverable <= 0 {
		return
	}
	// ByteSize is floating point; the mean accumulates ulp-level rounding,
	// so the ordering comparisons carry a small relative tolerance.
	res.check(invRTSane)
	if !volLE(st.MinVolume, st.MeanVolume) || !volLE(st.MeanVolume, st.MaxVolume) {
		res.violate(invRTSane, "restore volume aggregates unordered: min %v mean %v max %v",
			st.MinVolume, st.MeanVolume, st.MaxVolume)
	}
	res.check(invRTSane)
	if st.MeanTime < fixed || st.MaxTime < st.MeanTime-time.Microsecond {
		res.violate(invRTSane, "restore time aggregates unordered: fixed %v mean %v max %v",
			fixed, st.MeanTime, st.MaxTime)
	}
}

// checkDegradedDominates verifies degraded mode never beats normal mode:
// pointwise in the simulator (same instant, same age), per level in the
// analytic model, and end-to-end in assessments.
func checkDegradedDominates(res *runResult, cs *Case, sys *core.System, chain hierarchy.Chain,
	healthy, degraded *sim.Simulator, surviving []int, samples []time.Duration) {
	if len(cs.Outages) == 0 {
		return
	}
	// Pointwise simulator dominance only holds for restore-to-now on
	// non-cyclic levels. With a rollback target, an outage-staled RP can
	// land just under the target and legitimately serve it better than
	// the fresher healthy RP would. And on cyclic levels, suppressing a
	// full re-bases later incrementals onto the previous (long-available)
	// full, so degraded mode can genuinely recover where healthy mode's
	// fresh incrementals still wait for their in-flight base full.
	for _, j := range surviving {
		if chain[j-1].Policy.Secondary != nil {
			continue
		}
		for _, t := range samples {
			lossH, _, okH := healthy.Loss([]int{j}, t, 0)
			lossD, _, okD := degraded.Loss([]int{j}, t, 0)
			res.check(invDegDominates)
			if okD && !okH {
				res.violate(invDegDominates,
					"level %d at t=%v: degraded run recovers where healthy run cannot", j, t)
				break
			}
			if okD && okH && lossD < lossH {
				res.violate(invDegDominates,
					"level %d at t=%v: degraded loss %v below healthy loss %v", j, t, lossD, lossH)
				break
			}
		}
	}
	raw := rawOutages(chain, cs.Outages)
	deg, err := chain.DegradedCompound(raw)
	if err != nil {
		return
	}
	for j := 1; j <= len(chain); j++ {
		for _, a := range agesGrid(chain, j) {
			lossH, okH := chain.WorstCaseLoss(j, a)
			if !okH {
				continue
			}
			lossD, okD := deg.WorstCaseLoss(j, a)
			res.check(invDegDominates)
			if !okD {
				res.violate(invDegDominates,
					"level %d age %v: recoverable normally but not in degraded mode", j, a)
				break
			}
			if lossD < lossH {
				res.violate(invDegDominates,
					"level %d age %v: degraded analytic loss %v below normal %v", j, a, lossD, lossH)
				break
			}
		}
	}
	aH, err := sys.Assess(cs.Scenario)
	if err != nil {
		return
	}
	aD, err := sys.AssessDegradedCompound(cs.Scenario, raw)
	if err != nil {
		return
	}
	res.check(invDegDominates)
	if !aH.WholeObjectLost && aD.WholeObjectLost {
		res.violate(invDegDominates, "assessment: object lost in degraded mode but not normally")
		return
	}
	// The end-to-end loss comparison is only sound for restore-to-now:
	// degradation extends each level's guaranteed range at the old end
	// (retention span plus a larger lag), so a rollback target just past
	// healthy retention at a fast level can "resurrect" there in degraded
	// mode and legitimately lower the min-over-levels loss.
	if cs.Scenario.TargetAge == 0 {
		res.check(invDegDominates)
		if !aH.WholeObjectLost && !aD.WholeObjectLost && aD.DataLoss < aH.DataLoss {
			res.violate(invDegDominates, "assessment: degraded loss %v below normal loss %v",
				aD.DataLoss, aH.DataLoss)
		}
	}
}

// volLE reports a <= b up to a relative float tolerance.
func volLE(a, b units.ByteSize) bool {
	return float64(a) <= float64(b)*(1+1e-9)+1
}

// moneyEq compares money with a small relative tolerance. Unrecoverable
// scenarios yield +Inf penalties; equal infinities are equal components
// (Inf-Inf would otherwise poison the comparison with NaN).
func moneyEq(a, b units.Money) bool {
	if math.IsInf(float64(a), 0) || math.IsInf(float64(b), 0) {
		return a == b
	}
	diff := float64(a - b)
	if diff < 0 {
		diff = -diff
	}
	scale := float64(a)
	if scale < 0 {
		scale = -scale
	}
	if s := float64(b); s > scale {
		scale = s
	}
	if scale < 1 {
		scale = 1
	}
	return diff <= 1e-9*scale
}

// checkCostSum verifies an assessment's cost components sum to the
// reported totals, and the basic output-metric sanity (non-negative
// recovery time and loss).
func checkCostSum(res *runResult, cs *Case, sys *core.System) {
	assessments := make([]*core.Assessment, 0, 2)
	if a, err := sys.Assess(cs.Scenario); err == nil {
		assessments = append(assessments, a)
	}
	if len(cs.Outages) > 0 {
		if a, err := sys.AssessDegradedCompound(cs.Scenario, rawOutages(sys.Chain(), cs.Outages)); err == nil {
			assessments = append(assessments, a)
		}
	}
	for _, a := range assessments {
		res.check(invCostSum)
		if a.RecoveryTime < 0 || a.DataLoss < 0 {
			res.violate(invCostSum, "negative output metric: RT %v loss %v", a.RecoveryTime, a.DataLoss)
			continue
		}
		c := a.Cost
		res.check(invCostSum)
		if !moneyEq(c.Total(), c.Outlays.Total()+c.Penalties.Total()) {
			res.violate(invCostSum, "total %v != outlays %v + penalties %v",
				c.Total(), c.Outlays.Total(), c.Penalties.Total())
		}
		res.check(invCostSum)
		if !moneyEq(c.Penalties.Total(), c.Penalties.Outage+c.Penalties.Loss) {
			res.violate(invCostSum, "penalties %v != outage %v + loss %v",
				c.Penalties.Total(), c.Penalties.Outage, c.Penalties.Loss)
		}
		var items units.Money
		for _, it := range c.Outlays.Items {
			items += it.Total()
		}
		res.check(invCostSum)
		if !moneyEq(items, c.Outlays.Total()) {
			res.violate(invCostSum, "outlay items sum %v != outlays total %v", items, c.Outlays.Total())
		}
		byTech, _ := c.Outlays.ByTechnique()
		var techSum units.Money
		for _, m := range byTech {
			techSum += m
		}
		res.check(invCostSum)
		if !moneyEq(techSum, c.Outlays.Total()) {
			res.violate(invCostSum, "per-technique sum %v != outlays total %v", techSum, c.Outlays.Total())
		}
		byDev, _ := c.Outlays.ByDevice()
		var devSum units.Money
		for _, m := range byDev {
			devSum += m
		}
		res.check(invCostSum)
		if !moneyEq(devSum, c.Outlays.Total()) {
			res.violate(invCostSum, "per-device sum %v != outlays total %v", devSum, c.Outlays.Total())
		}
	}
}
