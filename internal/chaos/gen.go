package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"stordep/internal/casestudy"
	"stordep/internal/core"
	"stordep/internal/cost"
	"stordep/internal/device"
	"stordep/internal/failure"
	"stordep/internal/hierarchy"
	"stordep/internal/protect"
	"stordep/internal/rng"
	"stordep/internal/sim"
	"stordep/internal/units"
	"stordep/internal/workload"
)

// The generator draws random-but-valid designs. Every duration it emits
// is a whole number of minutes so designs and schedules survive the
// internal/config round-trip (units.FormatDuration is exact for whole
// seconds) and replay bit-identically.

// horizonCap bounds the simulation horizon; designs whose warm-up pushes
// past it are rejected and resampled (long vault cycles with deep
// retention otherwise make single runs dominate the campaign).
const horizonCap = 170 * units.Week

// Placements for the generated fleet. The tape library flips a coin
// between the primary building and its own, so building-scope failures
// sometimes take the backups down with the array.
var (
	genPrimaryAt = failure.Placement{Array: "arr-primary", Building: "bldg-1", Site: "site-alpha", Region: "west"}
	genLibraryAt = failure.Placement{Array: "lib-1", Building: "bldg-2", Site: "site-alpha", Region: "west"}
	genVaultAt   = failure.Placement{Array: "vault-1", Building: "vault-bldg", Site: "site-beta", Region: "east"}
	genMirrorAt  = failure.Placement{Array: "arr-mirror", Building: "mirror-bldg", Site: "site-gamma", Region: "central"}
)

// runRNG derives the deterministic random stream for one campaign run.
// The derivation lives in internal/rng so the Monte Carlo engine splits
// seeds identically; committed digests depend on it staying fixed.
func runRNG(seed int64, run int) *rand.Rand {
	return rng.Run(seed, run)
}

// quantize truncates to whole minutes, with a one-minute floor.
func quantize(d time.Duration) time.Duration {
	q := d.Truncate(time.Minute)
	if q < time.Minute {
		q = time.Minute
	}
	return q
}

// ceilMinute rounds up to the next whole minute.
func ceilMinute(d time.Duration) time.Duration {
	q := d.Truncate(time.Minute)
	if q < d {
		q += time.Minute
	}
	return q
}

// genCase draws one buildable case, rejection-sampling designs the device
// models refuse (over-utilization) or whose horizon exceeds the cap. It
// returns the case and the number of rejected draws. If every attempt
// fails it falls back to the always-buildable case-study baseline.
func genCase(r *rand.Rand, run, attempts int) (*Case, int) {
	rejects := 0
	for a := 0; a < attempts; a++ {
		if cs := genAttempt(r, run); cs != nil {
			return cs, rejects
		}
		rejects++
	}
	d := casestudy.Baseline()
	d.Name = fmt.Sprintf("chaos-%d-fallback", run)
	cs := scheduleFor(r, d)
	if cs == nil {
		// The baseline always builds; reaching here means the fallback
		// horizon exceeded the cap, which its fixed policies cannot do.
		panic("chaos: case-study fallback failed to build")
	}
	return cs, rejects
}

// genAttempt draws one design and schedule; nil means rejected.
func genAttempt(r *rand.Rand, run int) *Case {
	d := genDesign(r, run)
	if d.Validate() != nil {
		return nil
	}
	return scheduleFor(r, d)
}

// scheduleFor builds the fault schedule and scenario for a design; nil
// means the design does not build or the horizon exceeds the cap.
func scheduleFor(r *rand.Rand, d *core.Design) *Case {
	sys, err := core.Build(d)
	if err != nil {
		return nil
	}
	chain := sys.Chain()
	sm, err := sim.New(chain)
	if err != nil {
		return nil
	}
	warm := sm.WarmUp()
	outages, horizon := genSchedule(r, chain, warm)
	if horizon > horizonCap {
		return nil
	}
	return &Case{
		Design:   d,
		Scenario: genScenario(r, chain),
		Horizon:  horizon,
		Outages:  outages,
	}
}

// genDesign draws a random design: workload, penalty rates, fleet, and a
// one-to-three level protection hierarchy (near-line copy or remote
// mirror, tape backup with optional cyclic incrementals, remote vault).
func genDesign(r *rand.Rand, run int) *core.Design {
	caps := []units.ByteSize{200 * units.GB, 500 * units.GB, 800 * units.GB, 1360 * units.GB}
	capSize := caps[r.Intn(len(caps))]
	var wl *workload.Workload
	switch r.Intn(4) {
	case 0:
		wl = workload.Cello()
	case 1:
		wl = workload.OLTP(capSize)
	case 2:
		wl = workload.FileServer(capSize)
	default:
		wl = workload.Warehouse(capSize)
	}
	penalty := []float64{1_000, 10_000, 50_000}[r.Intn(3)]
	d := &core.Design{
		Name:     fmt.Sprintf("chaos-%d", run),
		Workload: wl,
		Requirements: cost.Requirements{
			UnavailPenaltyRate: units.PerHour(penalty),
			LossPenaltyRate:    units.PerHour(penalty),
		},
		Primary: &protect.Primary{Array: device.NameDiskArray},
		Devices: []core.PlacedDevice{{Spec: device.MidrangeArray(), Placement: genPrimaryAt}},
	}
	// A quarter of the designs deliberately break the paper's schedule
	// alignment so the conservative bounds get exercised.
	misalign := r.Float64() < 0.25

	var prevCycle time.Duration

	// Level 1: near-line copy on the primary array, or a remote mirror.
	switch r.Intn(4) {
	case 0:
		// backup-only hierarchy
	case 1:
		pol := nearLinePolicy(r)
		d.Levels = append(d.Levels, &protect.SplitMirror{Array: device.NameDiskArray, Pol: pol})
		prevCycle = pol.CyclePeriod()
	case 2:
		pol := nearLinePolicy(r)
		d.Levels = append(d.Levels, &protect.Snapshot{Array: device.NameDiskArray, Pol: pol})
		prevCycle = pol.CyclePeriod()
	default:
		pol := mirrorPolicy(r)
		d.Devices = append(d.Devices,
			core.PlacedDevice{Spec: device.RemoteMirrorArray(), Placement: genMirrorAt},
			core.PlacedDevice{Spec: device.WANLinks(1 + r.Intn(4))})
		d.Levels = append(d.Levels, &protect.Mirror{
			Mode:      protect.MirrorAsyncBatch,
			DestArray: device.NameMirrorArray,
			Links:     device.NameWANLinks,
			Pol:       pol,
		})
		prevCycle = pol.CyclePeriod()
	}

	// Tape backup, mandatory when nothing else protects the design.
	if r.Float64() < 0.85 || len(d.Levels) == 0 {
		backupPol := backupPolicy(r, prevCycle, misalign)
		libAt := genLibraryAt
		if r.Intn(2) == 0 {
			libAt.Building = genPrimaryAt.Building
		}
		d.Devices = append(d.Devices, core.PlacedDevice{Spec: device.TapeLibrary(), Placement: libAt})
		d.Levels = append(d.Levels, &protect.Backup{
			SourceArray: device.NameDiskArray,
			Target:      device.NameTapeLibrary,
			Pol:         backupPol,
		})
		if r.Float64() < 0.6 {
			vaultPol := vaultPolicy(r, backupPol.CyclePeriod())
			d.Devices = append(d.Devices,
				core.PlacedDevice{Spec: device.TapeVault(), Placement: genVaultAt},
				core.PlacedDevice{Spec: device.AirShipment()})
			d.Levels = append(d.Levels, &protect.Vaulting{
				BackupDevice: device.NameTapeLibrary,
				Vault:        device.NameTapeVault,
				Transport:    device.NameAirShipment,
				Pol:          vaultPol,
				BackupRetW:   backupPol.RetW,
			})
		}
	}
	if r.Intn(2) == 0 {
		d.Facility = &core.Facility{
			Placement:     failure.Placement{Site: "chaos-recovery-site", Region: "central"},
			ProvisionTime: 9 * time.Hour,
			CostFactor:    0.2,
		}
	}
	return d
}

// finishRetention sets the retention pair consistently: RetW covers the
// retained cycle count plus one transfer lag and one cycle of slack, so
// the analytic guaranteed range never overclaims what simulated retention
// actually holds. (Policy.Validate does not cross-check RetW against
// RetCnt — see the ROADMAP open item.)
func finishRetention(pol *hierarchy.Policy, retCnt int) {
	pol.RetCnt = retCnt
	cycle := pol.CyclePeriod()
	pol.RetW = time.Duration(retCnt)*cycle + pol.TransferLag() + cycle
}

// nearLinePolicy is a split-mirror or snapshot schedule: splits every
// 6-24 hours, immediately available.
func nearLinePolicy(r *rand.Rand) hierarchy.Policy {
	accW := []time.Duration{6 * time.Hour, 12 * time.Hour, 24 * time.Hour}[r.Intn(3)]
	pol := hierarchy.Policy{
		Primary: hierarchy.WindowSet{AccW: accW, Rep: hierarchy.RepFull},
		CopyRep: hierarchy.RepFull,
	}
	finishRetention(&pol, 2+r.Intn(3))
	return pol
}

// mirrorPolicy is an async-batch mirror schedule: sub-hour to two-hour
// batches shipped within half a batch window.
func mirrorPolicy(r *rand.Rand) hierarchy.Policy {
	accW := []time.Duration{30 * time.Minute, time.Hour, 2 * time.Hour}[r.Intn(3)]
	pol := hierarchy.Policy{
		Primary: hierarchy.WindowSet{AccW: accW, PropW: quantize(accW / 2), Rep: hierarchy.RepFull},
		CopyRep: hierarchy.RepFull,
	}
	finishRetention(&pol, 2)
	return pol
}

// backupPolicy is a tape-backup schedule whose full-backup window is a
// multiple of the cycle below (one day to one week), optionally cyclic
// with incrementals on the lower level's grid, and optionally misaligned
// by a few odd minutes.
func backupPolicy(r *rand.Rand, prevCycle time.Duration, misalign bool) hierarchy.Policy {
	base := prevCycle
	if base <= 0 {
		base = []time.Duration{units.Day, 2 * units.Day, units.Week}[r.Intn(3)]
	}
	minMult := int(units.Day / base)
	if minMult < 1 {
		minMult = 1
	}
	maxMult := int(units.Week / base)
	if maxMult < minMult {
		maxMult = minMult
	}
	accW := time.Duration(minMult+r.Intn(maxMult-minMult+1)) * base
	if misalign {
		accW += time.Duration(7+2*r.Intn(5)) * time.Minute
	}
	pol := hierarchy.Policy{
		Primary: hierarchy.WindowSet{
			AccW:  accW,
			PropW: quantize(accW / time.Duration(2+r.Intn(3))),
			HoldW: []time.Duration{0, time.Hour, 6 * time.Hour}[r.Intn(3)],
			Rep:   hierarchy.RepFull,
		},
		CopyRep: hierarchy.RepFull,
	}
	if r.Intn(2) == 0 {
		// Cyclic: incrementals on the lower grid between fulls.
		pol.Secondary = &hierarchy.WindowSet{
			AccW:  base,
			PropW: quantize(base / 2),
			Rep:   hierarchy.RepPartial,
		}
		pol.CycleCnt = 2 + r.Intn(4)
	}
	finishRetention(&pol, 2+r.Intn(3))
	return pol
}

// vaultPolicy ships expired fulls off-site every one or two backup
// cycles.
func vaultPolicy(r *rand.Rand, below time.Duration) hierarchy.Policy {
	accW := time.Duration(1+r.Intn(2)) * below
	if accW > 6*units.Week {
		accW = below
	}
	pol := hierarchy.Policy{
		Primary: hierarchy.WindowSet{
			AccW:  accW,
			PropW: []time.Duration{12 * time.Hour, 24 * time.Hour}[r.Intn(2)],
			HoldW: []time.Duration{0, quantize(accW / 2), accW + 12*time.Hour}[r.Intn(3)],
			Rep:   hierarchy.RepFull,
		},
		CopyRep: hierarchy.RepFull,
	}
	finishRetention(&pol, 2+r.Intn(2))
	return pol
}

// genSchedule draws zero to three possibly-overlapping level outages,
// all after warm-up, and sizes the horizon to leave steady state on both
// sides of the fault window.
func genSchedule(r *rand.Rand, chain hierarchy.Chain, warm time.Duration) ([]sim.Outage, time.Duration) {
	var maxCycle time.Duration
	for _, lvl := range chain {
		if c := lvl.Policy.CyclePeriod(); c > maxCycle {
			maxCycle = c
		}
	}
	n := 0
	switch p := r.Float64(); {
	case p < 0.25:
	case p < 0.55:
		n = 1
	case p < 0.85:
		n = 2
	default:
		n = 3
	}
	base := ceilMinute(warm) + time.Minute
	var outs []sim.Outage
	for i := 0; i < n; i++ {
		lvl := 1 + r.Intn(len(chain))
		cyc := chain[lvl-1].Policy.CyclePeriod()
		dur := quantize(time.Duration((0.3 + 2.2*r.Float64()) * float64(cyc)))
		var from time.Duration
		if len(outs) > 0 && r.Intn(2) == 0 {
			// Overlap or immediately follow a previous outage: compound
			// faults during active propagation and recovery windows.
			prev := outs[r.Intn(len(outs))]
			from = prev.From + quantize(time.Duration(r.Float64()*float64(prev.To-prev.From)))
		} else {
			from = base + quantize(time.Duration(r.Float64()*float64(2*maxCycle)))
		}
		outs = append(outs, sim.Outage{
			Level:         lvl,
			From:          from,
			To:            from + dur,
			AbortInFlight: r.Intn(3) == 0,
		})
	}
	end := base
	for _, o := range outs {
		if o.To > end {
			end = o.To
		}
	}
	return outs, end + 3*maxCycle + time.Hour
}

// genScenario draws the hardware-failure scenario: a random scope and a
// recovery-target age spanning "now", the too-recent band, the covered
// band of a random level, and past the end of retention.
func genScenario(r *rand.Rand, chain hierarchy.Chain) failure.Scenario {
	scopes := failure.Scopes()
	sc := failure.Scenario{Scope: scopes[r.Intn(len(scopes))]}
	j := 1 + r.Intn(len(chain))
	rg := chain.GuaranteedRange(j)
	switch r.Intn(6) {
	case 0, 1:
		// restore to now
	case 2:
		sc.TargetAge = time.Hour
	case 3:
		if !rg.Empty() {
			sc.TargetAge = quantize(rg.Newest)
		}
	case 4:
		if !rg.Empty() {
			sc.TargetAge = quantize((rg.Newest + rg.Oldest) / 2)
		}
	default:
		sc.TargetAge = quantize(chain.GuaranteedRange(len(chain)).Oldest + units.Week)
	}
	if sc.Scope == failure.ScopeObject {
		sc.RecoverSize = units.MB
		if sc.TargetAge == 0 {
			sc.TargetAge = time.Hour
		}
	}
	return sc
}
