package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"stordep/internal/config"
	"stordep/internal/failure"
	"stordep/internal/sim"
	"stordep/internal/units"
)

// Multi-object repro files mirror the single-object ones: the complete
// multi design (the internal/config JSON schema, embedded verbatim under
// "multiDesign") plus the per-object fault schedule and the shared
// scenario. The key name doubles as the format discriminator so replay
// tooling can sniff which loader a file needs.

type multiReproOutage struct {
	Object        string `json:"object"`
	Level         int    `json:"level"`
	From          string `json:"from"`
	To            string `json:"to"`
	AbortInFlight bool   `json:"abortInFlight,omitempty"`
}

type multiReproFile struct {
	ReproMeta
	Scope       string             `json:"scope"`
	TargetAge   string             `json:"targetAge"`
	RecoverSize int64              `json:"recoverSizeBytes,omitempty"`
	Horizon     string             `json:"horizon"`
	Outages     []multiReproOutage `json:"outages,omitempty"`
	// FaultScenario embeds the internal/config scenario JSON (correlated
	// events plus operator faults) verbatim, like MultiDesign.
	FaultScenario json.RawMessage `json:"faultScenario,omitempty"`
	MultiDesign   json.RawMessage `json:"multiDesign"`
}

// IsMultiRepro reports whether repro JSON holds a multi-object case.
func IsMultiRepro(data []byte) bool {
	var probe struct {
		MultiDesign json.RawMessage `json:"multiDesign"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return false
	}
	return len(bytes.TrimSpace(probe.MultiDesign)) > 0
}

// EncodeMultiRepro serializes a multi case and its violation metadata to
// JSON. The design round-trips through internal/config, so durations must
// be whole seconds (the generator emits whole minutes).
func EncodeMultiRepro(mcs *MultiCase, meta ReproMeta) ([]byte, error) {
	design, err := config.MarshalMulti(mcs.Design)
	if err != nil {
		return nil, fmt.Errorf("chaos: marshaling multi design: %w", err)
	}
	rf := multiReproFile{
		ReproMeta:   meta,
		Scope:       mcs.Scenario.Scope.String(),
		TargetAge:   units.FormatDuration(mcs.Scenario.TargetAge),
		RecoverSize: int64(mcs.Scenario.RecoverSize),
		Horizon:     units.FormatDuration(mcs.Horizon),
		MultiDesign: design,
	}
	for _, o := range mcs.Outages {
		rf.Outages = append(rf.Outages, multiReproOutage{
			Object:        o.Object,
			Level:         o.Level,
			From:          units.FormatDuration(o.From),
			To:            units.FormatDuration(o.To),
			AbortInFlight: o.AbortInFlight,
		})
	}
	if len(mcs.Events)+len(mcs.OpFaults) > 0 {
		scenario, err := config.MarshalScenario(mcs.Events, mcs.OpFaults)
		if err != nil {
			return nil, fmt.Errorf("chaos: marshaling fault scenario: %w", err)
		}
		rf.FaultScenario = scenario
	}
	return json.MarshalIndent(rf, "", "  ")
}

// DecodeMultiRepro reconstructs a multi case (and its metadata) from
// repro JSON.
func DecodeMultiRepro(data []byte) (*MultiCase, ReproMeta, error) {
	var rf multiReproFile
	if err := json.Unmarshal(data, &rf); err != nil {
		return nil, ReproMeta{}, fmt.Errorf("chaos: parsing multi repro: %w", err)
	}
	md, err := config.UnmarshalMulti(rf.MultiDesign)
	if err != nil {
		return nil, ReproMeta{}, fmt.Errorf("chaos: multi repro design: %w", err)
	}
	scope, err := failure.ParseScope(rf.Scope)
	if err != nil {
		return nil, ReproMeta{}, fmt.Errorf("chaos: multi repro scenario: %w", err)
	}
	age, err := units.ParseDuration(rf.TargetAge)
	if err != nil {
		return nil, ReproMeta{}, fmt.Errorf("chaos: multi repro target age: %w", err)
	}
	horizon, err := units.ParseDuration(rf.Horizon)
	if err != nil {
		return nil, ReproMeta{}, fmt.Errorf("chaos: multi repro horizon: %w", err)
	}
	mcs := &MultiCase{
		Design: md,
		Scenario: failure.Scenario{
			Scope:       scope,
			TargetAge:   age,
			RecoverSize: units.ByteSize(rf.RecoverSize),
		},
		Horizon: horizon,
	}
	for _, o := range rf.Outages {
		from, err := units.ParseDuration(o.From)
		if err != nil {
			return nil, ReproMeta{}, fmt.Errorf("chaos: multi repro outage: %w", err)
		}
		to, err := units.ParseDuration(o.To)
		if err != nil {
			return nil, ReproMeta{}, fmt.Errorf("chaos: multi repro outage: %w", err)
		}
		mcs.Outages = append(mcs.Outages, ObjectOutage{
			Object: o.Object,
			Outage: sim.Outage{Level: o.Level, From: from, To: to, AbortInFlight: o.AbortInFlight},
		})
	}
	if len(bytes.TrimSpace(rf.FaultScenario)) > 0 {
		events, faults, err := config.UnmarshalScenario(rf.FaultScenario)
		if err != nil {
			return nil, ReproMeta{}, fmt.Errorf("chaos: multi repro fault scenario: %w", err)
		}
		mcs.Events, mcs.OpFaults = events, faults
	}
	return mcs, rf.ReproMeta, nil
}

// SaveMultiRepro writes a multi repro file, creating the directory if
// needed.
func SaveMultiRepro(path string, mcs *MultiCase, meta ReproMeta) error {
	data, err := EncodeMultiRepro(mcs, meta)
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("chaos: %w", err)
		}
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadMultiRepro reads a multi repro file back into a replayable case.
func LoadMultiRepro(path string) (*MultiCase, ReproMeta, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, ReproMeta{}, fmt.Errorf("chaos: %w", err)
	}
	return DecodeMultiRepro(data)
}

// ReplayMulti re-runs the multi invariant battery on a case and returns
// any violations (with Run left zero).
func ReplayMulti(mcs *MultiCase) ([]Violation, error) {
	res, err := checkMultiCase(mcs)
	if err != nil {
		return nil, err
	}
	return res.violations, nil
}

// copyMultiCase deep-copies a multi case by round-tripping it through the
// repro encoding, guaranteeing the shrinker never aliases the original.
func copyMultiCase(mcs *MultiCase) (*MultiCase, error) {
	data, err := EncodeMultiRepro(mcs, ReproMeta{})
	if err != nil {
		return nil, err
	}
	out, _, err := DecodeMultiRepro(data)
	return out, err
}
