package chaos

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"stordep/internal/config"
	"stordep/internal/failure"
	"stordep/internal/sim"
	"stordep/internal/units"
)

// Repro files make a violating case replayable: the full design (the
// internal/config JSON schema, embedded verbatim) plus the fault schedule
// and scenario. Loading one reconstructs the exact Case; Replay re-runs
// the invariant battery on it.

// ReproMeta records why a repro was written.
type ReproMeta struct {
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
	Seed      int64  `json:"seed"`
	Run       int    `json:"run"`
}

type reproOutage struct {
	Level         int    `json:"level"`
	From          string `json:"from"`
	To            string `json:"to"`
	AbortInFlight bool   `json:"abortInFlight,omitempty"`
}

type reproFile struct {
	ReproMeta
	Scope       string          `json:"scope"`
	TargetAge   string          `json:"targetAge"`
	RecoverSize int64           `json:"recoverSizeBytes,omitempty"`
	Horizon     string          `json:"horizon"`
	Outages     []reproOutage   `json:"outages,omitempty"`
	Design      json.RawMessage `json:"design"`
}

// EncodeRepro serializes a case and its violation metadata to JSON. The
// design round-trips through internal/config, so durations must be whole
// seconds (the generator emits whole minutes).
func EncodeRepro(cs *Case, meta ReproMeta) ([]byte, error) {
	design, err := config.Marshal(cs.Design)
	if err != nil {
		return nil, fmt.Errorf("chaos: marshaling design: %w", err)
	}
	rf := reproFile{
		ReproMeta:   meta,
		Scope:       cs.Scenario.Scope.String(),
		TargetAge:   units.FormatDuration(cs.Scenario.TargetAge),
		RecoverSize: int64(cs.Scenario.RecoverSize),
		Horizon:     units.FormatDuration(cs.Horizon),
		Design:      design,
	}
	for _, o := range cs.Outages {
		rf.Outages = append(rf.Outages, reproOutage{
			Level:         o.Level,
			From:          units.FormatDuration(o.From),
			To:            units.FormatDuration(o.To),
			AbortInFlight: o.AbortInFlight,
		})
	}
	return json.MarshalIndent(rf, "", "  ")
}

// DecodeRepro reconstructs a case (and its metadata) from repro JSON.
func DecodeRepro(data []byte) (*Case, ReproMeta, error) {
	var rf reproFile
	if err := json.Unmarshal(data, &rf); err != nil {
		return nil, ReproMeta{}, fmt.Errorf("chaos: parsing repro: %w", err)
	}
	d, err := config.Unmarshal(rf.Design)
	if err != nil {
		return nil, ReproMeta{}, fmt.Errorf("chaos: repro design: %w", err)
	}
	scope, err := failure.ParseScope(rf.Scope)
	if err != nil {
		return nil, ReproMeta{}, fmt.Errorf("chaos: repro scenario: %w", err)
	}
	age, err := units.ParseDuration(rf.TargetAge)
	if err != nil {
		return nil, ReproMeta{}, fmt.Errorf("chaos: repro target age: %w", err)
	}
	horizon, err := units.ParseDuration(rf.Horizon)
	if err != nil {
		return nil, ReproMeta{}, fmt.Errorf("chaos: repro horizon: %w", err)
	}
	cs := &Case{
		Design: d,
		Scenario: failure.Scenario{
			Scope:       scope,
			TargetAge:   age,
			RecoverSize: units.ByteSize(rf.RecoverSize),
		},
		Horizon: horizon,
	}
	for _, o := range rf.Outages {
		from, err := units.ParseDuration(o.From)
		if err != nil {
			return nil, ReproMeta{}, fmt.Errorf("chaos: repro outage: %w", err)
		}
		to, err := units.ParseDuration(o.To)
		if err != nil {
			return nil, ReproMeta{}, fmt.Errorf("chaos: repro outage: %w", err)
		}
		cs.Outages = append(cs.Outages, sim.Outage{
			Level: o.Level, From: from, To: to, AbortInFlight: o.AbortInFlight,
		})
	}
	return cs, rf.ReproMeta, nil
}

// SaveRepro writes a repro file, creating the directory if needed.
func SaveRepro(path string, cs *Case, meta ReproMeta) error {
	data, err := EncodeRepro(cs, meta)
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("chaos: %w", err)
		}
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadRepro reads a repro file back into a replayable case.
func LoadRepro(path string) (*Case, ReproMeta, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, ReproMeta{}, fmt.Errorf("chaos: %w", err)
	}
	return DecodeRepro(data)
}

// Replay re-runs the invariant battery on a case and returns any
// violations (with Run left zero).
func Replay(cs *Case) ([]Violation, error) {
	res, err := checkCase(cs)
	if err != nil {
		return nil, err
	}
	return res.violations, nil
}

// copyCase deep-copies a case by round-tripping it through the repro
// encoding, guaranteeing the shrinker never aliases the original.
func copyCase(cs *Case) (*Case, error) {
	data, err := EncodeRepro(cs, ReproMeta{})
	if err != nil {
		return nil, err
	}
	out, _, err := DecodeRepro(data)
	return out, err
}

// horizonFloor is the smallest horizon a case may shrink to while keeping
// the sampling window meaningful: past warm-up and past every outage,
// with a cycle of slack.
func horizonFloor(cs *Case) (time.Duration, error) {
	sys, err := coreBuild(cs)
	if err != nil {
		return 0, err
	}
	sm, err := sim.New(sys.Chain())
	if err != nil {
		return 0, err
	}
	floor := sm.WarmUp()
	for _, o := range cs.Outages {
		if o.To > floor {
			floor = o.To
		}
	}
	return floor + 2*chainMaxCycle(sys.Chain()), nil
}
