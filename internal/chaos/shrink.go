package chaos

import (
	"stordep/internal/core"
	"stordep/internal/hierarchy"
	"stordep/internal/protect"
)

// The shrinker reduces a violating case to a minimal counterexample by
// greedy mutation: a candidate simplification is kept only if the design
// still validates and builds AND the same invariant still fails. The
// mutation order drops whole dimensions first (outages, hierarchy levels)
// before fine-grained simplifications (horizon, facility, secondary
// windows, hold windows).

func coreBuild(cs *Case) (*core.System, error) { return core.Build(cs.Design) }

// shrinkCase returns the smallest case it can find (within maxSteps
// battery evaluations) that still violates the named invariant. The
// original case is returned unchanged if nothing smaller reproduces it.
func shrinkCase(cs *Case, invariant string, maxSteps int) *Case {
	return shrinkWith(cs, maxSteps, func(c *Case) bool {
		res, err := checkCase(c)
		if err != nil {
			return false
		}
		for _, v := range res.violations {
			if v.Invariant == invariant {
				return true
			}
		}
		return false
	})
}

// shrinkWith runs the greedy reduction against an arbitrary
// still-failing predicate.
func shrinkWith(cs *Case, maxSteps int, fails func(*Case) bool) *Case {
	best := cs
	steps := 0
	for steps < maxSteps {
		improved := false
		for _, cand := range mutations(best) {
			if steps >= maxSteps {
				break
			}
			if cand == nil || !viable(cand) {
				continue
			}
			steps++
			if fails(cand) {
				best = cand
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	return best
}

// viable reports whether a mutated case is still well-formed: the design
// validates and builds, and the horizon leaves a sampling window past
// warm-up and every outage.
func viable(cs *Case) bool {
	if cs.Design.Validate() != nil {
		return false
	}
	floor, err := horizonFloor(cs)
	if err != nil {
		return false
	}
	return cs.Horizon > floor
}

// mutations builds the ordered candidate simplifications of a case.
func mutations(cs *Case) []*Case {
	var out []*Case
	// Drop each outage in turn.
	for i := range cs.Outages {
		if c, err := copyCase(cs); err == nil {
			c.Outages = append(c.Outages[:i], c.Outages[i+1:]...)
			out = append(out, c)
		}
	}
	// Truncate the hierarchy from the end (dependencies point backward).
	if len(cs.Design.Levels) > 1 {
		if c, err := copyCase(cs); err == nil {
			c.Design.Levels = c.Design.Levels[:len(c.Design.Levels)-1]
			kept := c.Outages[:0]
			for _, o := range c.Outages {
				if o.Level <= len(c.Design.Levels) {
					kept = append(kept, o)
				}
			}
			c.Outages = kept
			dropUnusedDevices(c)
			out = append(out, c)
		}
	}
	// Shorten the horizon.
	if c, err := copyCase(cs); err == nil {
		c.Horizon = quantize(c.Horizon * 3 / 4)
		out = append(out, c)
	}
	// Drop the recovery facility.
	if cs.Design.Facility != nil {
		if c, err := copyCase(cs); err == nil {
			c.Design.Facility = nil
			out = append(out, c)
		}
	}
	// Drop secondary (incremental) windows per level.
	for i := range cs.Design.Levels {
		if pol := levelPolicy(cs.Design.Levels[i]); pol == nil || pol.Secondary == nil {
			continue
		}
		if c, err := copyCase(cs); err == nil {
			pol := levelPolicy(c.Design.Levels[i])
			pol.Secondary = nil
			pol.CycleCnt = 0
			out = append(out, c)
		}
	}
	// Zero hold windows per level.
	for i := range cs.Design.Levels {
		if pol := levelPolicy(cs.Design.Levels[i]); pol == nil || pol.Primary.HoldW == 0 {
			continue
		}
		if c, err := copyCase(cs); err == nil {
			pol := levelPolicy(c.Design.Levels[i])
			pol.Primary.HoldW = 0
			if pol.Secondary != nil {
				pol.Secondary.HoldW = 0
			}
			out = append(out, c)
		}
	}
	return out
}

// levelPolicy exposes a technique's RP policy for mutation.
func levelPolicy(t protect.Technique) *hierarchy.Policy {
	switch v := t.(type) {
	case *protect.SplitMirror:
		return &v.Pol
	case *protect.Snapshot:
		return &v.Pol
	case *protect.Mirror:
		return &v.Pol
	case *protect.Backup:
		return &v.Pol
	case *protect.Vaulting:
		return &v.Pol
	case *protect.ErasureCode:
		return &v.Pol
	}
	return nil
}

// dropUnusedDevices removes devices no remaining level references.
func dropUnusedDevices(cs *Case) {
	used := map[string]bool{cs.Design.Primary.Array: true}
	for _, t := range cs.Design.Levels {
		used[t.CopyDevice()] = true
		used[t.ReadDevice()] = true
		if n := t.TransportDevice(); n != "" {
			used[n] = true
		}
	}
	kept := cs.Design.Devices[:0]
	for _, pd := range cs.Design.Devices {
		if used[pd.Spec.Name] {
			kept = append(kept, pd)
		}
	}
	cs.Design.Devices = kept
}
