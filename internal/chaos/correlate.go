package chaos

import (
	"fmt"
	"time"

	"stordep/internal/core"
	"stordep/internal/failure"
	"stordep/internal/hierarchy"
	"stordep/internal/protect"
	"stordep/internal/recovery"
	"stordep/internal/sim"
	"stordep/internal/units"
)

// The correlation engine gives the failure-package scenario vocabulary
// (correlated events, operator faults) its semantics: one trigger is
// materialized against a MultiDesign into per-object observations — the
// same window, the same cause, every dependent object at once — and the
// battery gains three invariants defending the materialization and the
// detection story:
//
//   - corr-consistency: a correlated event's per-object observations
//     agree on timing and scope, and the affected set matches an
//     independent device-first re-derivation.
//   - op-detection: every injected operator fault is classified — either
//     detected (the faulted observation exceeds the fault-unaware
//     analytic bound, or fails where the clean run must succeed) or
//     counted as a model-soundness escape. Nothing passes silently.
//   - op-dominates: an injected fault never improves any observation —
//     faulted loss dominates clean loss pointwise, a stale restore never
//     loses less than the intended one, and a misdirected restore
//     poisons the dependency-ordered service schedule, never shortens it.

// Correlated invariant names.
const (
	invCorrConsistency = "corr-consistency"
	invOpDetection     = "op-detection"
	invOpDominates     = "op-dominates"
)

func correlatedInvariantNames() []string {
	return append(multiInvariantNames(), invCorrConsistency, invOpDetection, invOpDominates)
}

// ObjectSilent targets one protection level of one object with a silent
// capture fault (correlated corruption, operator silent non-write).
type ObjectSilent struct {
	Object string
	sim.SilentFault
}

// derivedEvent is one correlated event materialized against a design:
// the per-object outages (hardware kinds) or silent faults (corruption)
// it induces, in deterministic design order.
type derivedEvent struct {
	event   failure.CorrEvent
	outages []ObjectOutage
	silents []ObjectSilent
}

// deriveEvents materializes correlated events against the design. Every
// event must affect at least one object level — an event that touches
// nothing cannot be correlated with anything and signals a stale repro
// or an over-shrunk case.
func deriveEvents(md *core.MultiDesign, events []failure.CorrEvent) ([]derivedEvent, error) {
	out := make([]derivedEvent, 0, len(events))
	for i, e := range events {
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("chaos: correlated event %d: %w", i, err)
		}
		de := derivedEvent{event: e}
		switch e.Kind {
		case failure.CorrSharedDevice, failure.CorrRegion:
			for _, obj := range md.Objects {
				for j, tech := range obj.Levels {
					if eventHitsLevel(md, e, tech) {
						de.outages = append(de.outages, ObjectOutage{
							Object: obj.Name,
							Outage: sim.Outage{Level: j + 1, From: e.From, To: e.To, AbortInFlight: e.AbortInFlight},
						})
					}
				}
			}
		case failure.CorrCorruption:
			for _, obj := range md.Objects {
				if len(obj.Levels) == 0 || !e.Corrupts(obj.Name) {
					continue
				}
				de.silents = append(de.silents, ObjectSilent{
					Object:      obj.Name,
					SilentFault: sim.SilentFault{Level: 1, From: e.From, To: e.To},
				})
			}
		}
		if len(de.outages)+len(de.silents) == 0 {
			return nil, fmt.Errorf("chaos: correlated event %d (%s) affects nothing in design %s", i, e.Kind, md.Name)
		}
		out = append(out, de)
	}
	return out, nil
}

// eventHitsLevel reports whether a hardware event takes the level's
// propagation devices out of service.
func eventHitsLevel(md *core.MultiDesign, e failure.CorrEvent, tech protect.Technique) bool {
	for _, name := range core.LevelDeviceNames(tech) {
		switch e.Kind {
		case failure.CorrSharedDevice:
			if name == e.Device {
				return true
			}
		case failure.CorrRegion:
			if p, ok := md.DevicePlacement(name); ok && p.Region == e.Region {
				return true
			}
		}
	}
	return false
}

// derivedOutages flattens every event's hardware outages, event order
// then design order.
func derivedOutages(derived []derivedEvent) []ObjectOutage {
	var out []ObjectOutage
	for _, de := range derived {
		out = append(out, de.outages...)
	}
	return out
}

// derivedSilents flattens every corruption event's silent faults.
func derivedSilents(derived []derivedEvent) []ObjectSilent {
	var out []ObjectSilent
	for _, de := range derived {
		out = append(out, de.silents...)
	}
	return out
}

// outagesIn selects the schedule entries for one object.
func outagesIn(list []ObjectOutage, name string) []sim.Outage {
	var out []sim.Outage
	for _, o := range list {
		if o.Object == name {
			out = append(out, o.Outage)
		}
	}
	return out
}

type affectedKey struct {
	Object string
	Level  int
}

// checkCorrConsistency verifies each materialized event against its
// trigger: every per-object observation carries exactly the event's
// window and abort flag (timing agreement), and the affected set equals
// an independent device-first re-derivation (scope agreement). The
// re-derivation walks the fleet before the levels — the reverse of
// deriveEvents's level-first walk — so a drift in either direction of
// the device-to-level attribution surfaces here.
func checkCorrConsistency(res *runResult, mcs *MultiCase, derived []derivedEvent) {
	for i, de := range derived {
		e := de.event
		res.check(invCorrConsistency)
		agreed := true
		for _, o := range de.outages {
			if o.From != e.From || o.To != e.To || o.AbortInFlight != e.AbortInFlight {
				res.violate(invCorrConsistency,
					"event %d (%s): object %s level %d observes [%v,%v) abort=%v, event says [%v,%v) abort=%v",
					i, e.Kind, o.Object, o.Level, o.From, o.To, o.AbortInFlight, e.From, e.To, e.AbortInFlight)
				agreed = false
				break
			}
		}
		for _, sf := range de.silents {
			if !agreed {
				break
			}
			if sf.From != e.From || sf.To != e.To || sf.Level != 1 {
				res.violate(invCorrConsistency,
					"event %d (%s): object %s silent fault [%v,%v) level %d disagrees with event [%v,%v) level 1",
					i, e.Kind, sf.Object, sf.From, sf.To, sf.Level, e.From, e.To)
				agreed = false
			}
		}

		res.check(invCorrConsistency)
		want := independentAffected(mcs.Design, e)
		got := make(map[affectedKey]bool, len(de.outages)+len(de.silents))
		for _, o := range de.outages {
			got[affectedKey{o.Object, o.Level}] = true
		}
		for _, sf := range de.silents {
			got[affectedKey{sf.Object, sf.Level}] = true
		}
		if len(got) != len(want) {
			res.violate(invCorrConsistency,
				"event %d (%s): %d affected pairs materialized, independent derivation finds %d",
				i, e.Kind, len(got), len(want))
			continue
		}
		for k := range want {
			if !got[k] {
				res.violate(invCorrConsistency,
					"event %d (%s): independent derivation affects %s level %d but the event did not materialize there",
					i, e.Kind, k.Object, k.Level)
				break
			}
		}
	}
}

// independentAffected recomputes an event's affected (object, level)
// pairs device-first: collect the fleet devices in the event's scope,
// then test each level's propagation devices against that set via the
// raw protect interface (not core.LevelDeviceNames).
func independentAffected(md *core.MultiDesign, e failure.CorrEvent) map[affectedKey]bool {
	want := make(map[affectedKey]bool)
	if e.Kind == failure.CorrCorruption {
		for _, obj := range md.Objects {
			if len(obj.Levels) > 0 && e.Corrupts(obj.Name) {
				want[affectedKey{obj.Name, 1}] = true
			}
		}
		return want
	}
	scoped := make(map[string]bool)
	switch e.Kind {
	case failure.CorrSharedDevice:
		scoped[e.Device] = true
	case failure.CorrRegion:
		for _, pd := range md.Devices {
			if pd.Placement.Region == e.Region {
				scoped[pd.Spec.Name] = true
			}
		}
	}
	for _, obj := range md.Objects {
		for j, tech := range obj.Levels {
			var names []string
			if multi, ok := tech.(interface{ CopyDevices() []string }); ok {
				names = append(names, multi.CopyDevices()...)
			} else {
				names = append(names, tech.CopyDevice())
			}
			names = append(names, tech.TransportDevice())
			for _, n := range names {
				if n != "" && scoped[n] {
					want[affectedKey{obj.Name, j + 1}] = true
					break
				}
			}
		}
	}
	return want
}

// objSims holds the pair of simulations the detection pass compares for
// one object: clean carries the full hardware schedule (independent plus
// event-derived outages) and nothing else; faulted additionally carries
// every silent capture fault aimed at the object.
type objSims struct {
	chain          hierarchy.Chain
	clean, faulted *sim.Simulator
	surv           []int
	outs           []sim.Outage
}

func buildObjSims(ms *core.MultiSystem, mcs *MultiCase, merged []ObjectOutage, silents []ObjectSilent, name string) (*objSims, error) {
	sys := ms.Object(name)
	chain := sys.Chain()
	outs := outagesIn(merged, name)
	mk := func(withSilents bool) (*sim.Simulator, error) {
		s, err := sim.New(chain)
		if err != nil {
			return nil, err
		}
		for _, o := range outs {
			if err := s.AddOutage(o); err != nil {
				return nil, err
			}
		}
		if withSilents {
			for _, sf := range silents {
				if sf.Object != name {
					continue
				}
				if err := s.AddSilentFault(sf.SilentFault); err != nil {
					return nil, err
				}
			}
		}
		if err := s.Run(mcs.Horizon); err != nil {
			return nil, err
		}
		return s, nil
	}
	clean, err := mk(false)
	if err != nil {
		return nil, err
	}
	faulted, err := mk(true)
	if err != nil {
		return nil, err
	}
	return &objSims{
		chain:   chain,
		clean:   clean,
		faulted: faulted,
		surv:    sys.SurvivingLevels(mcs.Scenario),
		outs:    outs,
	}, nil
}

// checkOpFaults runs the detection pass: every silent capture window
// (correlated corruption and operator silent non-writes) and every
// restore-time operator fault is classified as detected or escaped, and
// the op-dominates comparisons run alongside. The per-object loss-bound
// battery never sees the silent faults — they are invisible by
// definition — so this pass is where they must surface.
func checkOpFaults(res *runResult, mcs *MultiCase, ms *core.MultiSystem, merged []ObjectOutage, silents []ObjectSilent) error {
	sims := make(map[string]*objSims)
	get := func(name string) (*objSims, error) {
		if os, ok := sims[name]; ok {
			return os, nil
		}
		os, err := buildObjSims(ms, mcs, merged, silents, name)
		if err != nil {
			return nil, fmt.Errorf("object %s: %w", name, err)
		}
		sims[name] = os
		return os, nil
	}

	// Silent capture windows, in materialization order. Operator silent
	// non-writes are already folded into `silents` by checkMultiCase.
	for _, sf := range silents {
		os, err := get(sf.Object)
		if err != nil {
			return err
		}
		classifySilentWindow(res, mcs, os, sf)
	}
	for _, f := range mcs.OpFaults {
		os, err := get(f.Object)
		if err != nil {
			return err
		}
		switch f.Kind {
		case failure.OpWrongRecovery:
			classifyWrongRecovery(res, mcs, os, f)
		case failure.OpMisdirectedRestore:
			classifyMisdirected(res, mcs, ms, os, f)
		}
	}
	return nil
}

// probeInstants builds the post-window failure-instant grid a silent
// fault is probed on: from the window start through two cycles past its
// end, clipped to the steady sampling region.
func probeInstants(from, to, horizon, maxCycle time.Duration) []time.Duration {
	end := to + 2*maxCycle
	if m := horizon - maxCycle/2; end > m {
		end = m
	}
	start := ceilMinute(from)
	if start >= end {
		return nil
	}
	step := quantize((end - start) / 24)
	var out []time.Duration
	for t := start; t <= end; t += step {
		out = append(out, t)
	}
	return out
}

// classifySilentWindow probes one silent capture window. Detected means
// the faulted run visibly diverges from the model's promise at some
// probed instant: its loss exceeds the fault-unaware analytic bound, or
// it fails to recover where the clean run recovers. Anything else is an
// escape — the phantoms stayed inside the worst-case envelope, which the
// model tolerates but the summary counts. Dominance is checked at every
// probe: a run with fewer usable RPs can never do better.
func classifySilentWindow(res *runResult, mcs *MultiCase, os *objSims, sf ObjectSilent) {
	age := mcs.Scenario.TargetAge
	cycle := chainMaxCycle(os.chain)
	probes := probeInstants(sf.From, sf.To, mcs.Horizon, cycle)
	res.check(invOpDetection)
	detected := false
	for _, t := range probes {
		lossF, jF, okF := os.faulted.Loss(os.surv, t, age)
		lossC, _, okC := os.clean.Loss(os.surv, t, age)
		res.check(invOpDominates)
		if okF && !okC {
			res.violate(invOpDominates,
				"object %s: silent fault [%v,%v): faulted run recovers at t=%v where clean run cannot",
				sf.Object, sf.From, sf.To, t)
			break
		}
		if okF && okC && lossF < lossC {
			res.violate(invOpDominates,
				"object %s: silent fault [%v,%v): faulted loss %v at t=%v below clean loss %v",
				sf.Object, sf.From, sf.To, lossF, t, lossC)
			break
		}
		if detected {
			continue
		}
		if okC && !okF {
			detected = true
			continue
		}
		if okF {
			if bound, ok := analyticBound(os.chain, os.outs, jF, age); ok && lossF > bound {
				detected = true
			}
		}
	}
	if detected {
		res.opDetected++
	} else {
		res.opEscapes++
	}
}

// classifyWrongRecovery models an operator restoring a recovery point
// StaleBy older than the intended target at instant At. The restored
// point passes every existing check — it is valid, covering, retained —
// so detection rests on the loss it implies: relative to the intended
// target the recovery loses lossStale+StaleBy, and if that exceeds the
// fault-unaware analytic bound the drill flags it. A stale restore that
// stays inside the worst-case envelope is an escape, counted.
func classifyWrongRecovery(res *runResult, mcs *MultiCase, os *objSims, f failure.OpFault) {
	age := mcs.Scenario.TargetAge
	res.check(invOpDetection)
	lossStale, jServe, ok := os.clean.Loss(os.surv, f.At, age+f.StaleBy)
	if !ok {
		// No retained RP is that stale: the wrong restore fails visibly.
		res.opDetected++
		return
	}
	lossActual := lossStale + f.StaleBy
	if lossC, _, okC := os.clean.Loss(os.surv, f.At, age); okC {
		res.check(invOpDominates)
		if lossActual < lossC {
			res.violate(invOpDominates,
				"object %s: wrong recovery at %v staleBy %v loses %v, less than the intended restore's %v",
				f.Object, f.At, f.StaleBy, lossActual, lossC)
		}
	}
	if bound, ok := analyticBound(os.chain, os.outs, jServe, age); ok && lossActual > bound {
		res.opDetected++
		return
	}
	res.opEscapes++
}

// classifyMisdirected models a recovery landing on the wrong object: the
// intended object believes itself restored but holds another object's
// data. Detected means correct data was recoverable at the instant — a
// verification pass against any surviving RP exposes the mismatch; when
// nothing survives to compare against, the wrong data is
// indistinguishable and the fault escapes. The dominance check drives
// the service model: voiding the object's recovery in the
// dependency-ordered schedule must poison every transitive dependent and
// can never shorten the critical path.
func classifyMisdirected(res *runResult, mcs *MultiCase, ms *core.MultiSystem, os *objSims, f failure.OpFault) {
	age := mcs.Scenario.TargetAge
	res.check(invOpDetection)
	if _, _, ok := os.clean.Loss(os.surv, f.At, age); ok {
		res.opDetected++
	} else {
		res.opEscapes++
	}

	sa, err := ms.Assess(mcs.Scenario)
	if err != nil {
		return
	}
	objects := make([]recovery.ObjectRT, len(sa.Objects))
	deps := make(map[string][]string, len(mcs.Design.Objects))
	for i, oa := range sa.Objects {
		objects[i] = recovery.ObjectRT{Name: oa.Object, RT: oa.RecoveryTime}
	}
	for _, obj := range mcs.Design.Objects {
		deps[obj.Name] = obj.DependsOn
	}
	cleanSched, cleanCritical, err := recovery.Schedule(objects, deps)
	if err != nil {
		return
	}
	poisonedSched, poisonedCritical, err := recovery.Schedule(recovery.Poison(objects, f.Object), deps)
	if err != nil {
		res.violate(invOpDominates,
			"object %s: poisoned schedule failed where clean schedule succeeded: %v", f.Object, err)
		return
	}
	res.check(invOpDominates)
	if poisonedCritical < cleanCritical {
		res.violate(invOpDominates,
			"object %s: misdirected restore shortens the service critical path (%v < %v)",
			f.Object, poisonedCritical, cleanCritical)
	}
	// Independent transitive-dependents walk over the design DAG; every
	// object downstream of the poisoned one must be stalled forever.
	downstream := map[string]bool{f.Object: true}
	for changed := true; changed; {
		changed = false
		for _, obj := range mcs.Design.Objects {
			if downstream[obj.Name] {
				continue
			}
			for _, d := range obj.DependsOn {
				if downstream[d] {
					downstream[obj.Name] = true
					changed = true
					break
				}
			}
		}
	}
	cleanFinish := make(map[string]time.Duration, len(cleanSched))
	for _, s := range cleanSched {
		cleanFinish[s.Name] = s.Finish
	}
	for _, s := range poisonedSched {
		res.check(invOpDominates)
		if downstream[s.Name] {
			if s.Finish != units.Forever {
				res.violate(invOpDominates,
					"object %s: %s depends (transitively) on the misdirected object yet finishes at %v",
					f.Object, s.Name, s.Finish)
			}
		} else if s.Finish != cleanFinish[s.Name] {
			res.violate(invOpDominates,
				"object %s: independent object %s moved from finish %v to %v under the poisoned schedule",
				f.Object, s.Name, cleanFinish[s.Name], s.Finish)
		}
	}
}
